"""Legacy shim so editable installs work offline (no wheel package here).

All real metadata lives in pyproject.toml; use
``pip install -e . --no-build-isolation --no-use-pep517``.
"""

from setuptools import setup

setup()
