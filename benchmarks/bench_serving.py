"""Deadline-aware serving: latency distribution and overload soak.

Operational reference for the online path added by the serving layer:

* **Latency** — p50/p99 of one full evaluation tick over the streaming
  random-walk traffic of ``bench_streaming.py``, with and without a
  wall-clock deadline.  The deadline run shows what the degradation
  ladder buys: a bounded tail instead of an unbounded one.
* **Soak** — replay the traffic at 2× the *sustainable* rate (ticks
  arrive twice as fast as an unbudgeted evaluation can finish) for a
  configurable duration.  The run must absorb the overload through the
  designed relief valves — shed pairs, degradation rungs, partial
  scores, bounded-queue drops — with **zero unhandled exceptions**; any
  exception fails the process.

Run directly (``python benchmarks/bench_serving.py [--quick]``); results
land in ``BENCH_serving.json`` at the repository root.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

import numpy as np  # noqa: E402

from jsonbench import write_report  # noqa: E402
from repro.core.grid import Grid  # noqa: E402
from repro.streaming import SightingEvent, StreamingColocationDetector  # noqa: E402

N_DEVICES = 8
EVENTS_PER_DEVICE = 30
AREA = (100.0, 60.0)  # mall-sized; positions bounce off the walls
WINDOW_S = 600.0


def make_events(seed: int = 5) -> list[SightingEvent]:
    """The ``bench_streaming.py`` traffic: reflecting random walks."""
    rng = np.random.default_rng(seed)
    events = []
    for d in range(N_DEVICES):
        x, y = rng.uniform(10, AREA[0] - 10), rng.uniform(10, AREA[1] - 10)
        heading = rng.uniform(0, 2 * np.pi)
        t = float(rng.uniform(0, 30))
        for _ in range(EVENTS_PER_DEVICE):
            dt = float(rng.exponential(10.0))
            t += dt
            x += 1.2 * np.cos(heading) * dt + rng.normal(0, 2)
            y += 1.2 * np.sin(heading) * dt + rng.normal(0, 2)
            if not (0 < x < AREA[0] and 0 < y < AREA[1]):
                heading += np.pi / 2 + rng.uniform(0, np.pi / 2)
                x = float(np.clip(x, 1, AREA[0] - 1))
                y = float(np.clip(y, 1, AREA[1] - 1))
            events.append(SightingEvent(f"dev-{d}", float(x), float(y), t))
    events.sort(key=lambda e: e.t)
    return events


def make_grid() -> Grid:
    return Grid(-10, -10, AREA[0] + 10, AREA[1] + 10, cell_size=3.0)


def shifted(events: list[SightingEvent], offset: float) -> list[SightingEvent]:
    return [SightingEvent(e.object_id, e.x, e.y, e.t + offset) for e in events]


def percentile_ms(latencies_s: list[float], q: float) -> float:
    if not latencies_s:
        return 0.0
    return float(np.percentile(np.asarray(latencies_s), q) * 1000.0)


# ----------------------------------------------------------------------
def calibrate(events: list[SightingEvent], ticks: int) -> float:
    """Median unbudgeted tick latency — the sustainable service time."""
    detector = StreamingColocationDetector(make_grid(), window=WINDOW_S)
    detector.ingest_many(events)
    samples = []
    for _ in range(ticks):
        start = time.perf_counter()
        detector.evaluate()
        samples.append(time.perf_counter() - start)
    return float(np.median(samples))


def latency_run(
    events: list[SightingEvent], ticks: int, deadline_s: float | None
) -> dict:
    """p50/p99 tick latency, replaying one traffic epoch per tick."""
    detector = StreamingColocationDetector(
        make_grid(), window=WINDOW_S, on_error="skip", max_pending=4096
    )
    span = events[-1].t - events[0].t + 30.0
    latencies: list[float] = []
    partial = scored = 0
    for tick in range(ticks):
        for event in shifted(events, tick * span):
            detector.offer(event)
        start = time.perf_counter()
        detector.evaluate(deadline=deadline_s)
        latencies.append(time.perf_counter() - start)
        health = detector.last_health
        partial += health.pairs_partial
        scored += health.pairs_scored
    return {
        "ticks": ticks,
        "deadline_ms": None if deadline_s is None else deadline_s * 1000.0,
        "p50_ms": percentile_ms(latencies, 50),
        "p99_ms": percentile_ms(latencies, 99),
        "max_ms": percentile_ms(latencies, 100),
        "pairs_scored": scored,
        "pairs_partial": partial,
    }


def soak_run(events: list[SightingEvent], duration_s: float, deadline_s: float) -> dict:
    """Ticks arriving at 2× the sustainable rate for ``duration_s``.

    Overload is induced structurally: each tick gets only half the time
    an unbudgeted evaluation needs (``deadline_s`` is half the calibrated
    service time) while a full traffic epoch lands in the (bounded)
    admission queue.  Every relief valve is left enabled; an unhandled
    exception anywhere in the serving loop fails the benchmark.
    """
    detector = StreamingColocationDetector(
        make_grid(), window=WINDOW_S, on_error="skip", max_pending=128
    )
    span = events[-1].t - events[0].t + 30.0
    totals = {
        "ticks": 0,
        "exceptions": 0,
        "deadline_hits": 0,
        "pairs_scored": 0,
        "pairs_partial": 0,
        "pairs_shed": 0,
        "breaker_skips": 0,
        "breaker_trips": 0,
        "queue_shed": 0,
        "degraded_rungs": 0,
    }
    latencies: list[float] = []
    epoch = 0
    start = time.perf_counter()
    while time.perf_counter() - start < duration_s:
        for event in shifted(events, epoch * span):
            detector.offer(event)
        epoch += 1
        tick_start = time.perf_counter()
        try:
            detector.evaluate(deadline=deadline_s)
        except Exception:  # the soak's whole point: this must not happen
            totals["exceptions"] += 1
            raise
        latencies.append(time.perf_counter() - tick_start)
        health = detector.last_health
        totals["ticks"] += 1
        totals["deadline_hits"] += int(health.deadline_hit)
        totals["pairs_scored"] += health.pairs_scored
        totals["pairs_partial"] += health.pairs_partial
        totals["pairs_shed"] += health.pairs_shed
        totals["breaker_skips"] += health.breaker_skips
        totals["breaker_trips"] += health.breaker_trips
        totals["degraded_rungs"] += sum(1 for r in health.rungs if r != "full")
    totals["queue_shed"] = detector.shed_events
    totals["duration_s"] = round(time.perf_counter() - start, 3)
    totals["deadline_ms"] = deadline_s * 1000.0
    totals["p50_ms"] = percentile_ms(latencies, 50)
    totals["p99_ms"] = percentile_ms(latencies, 99)
    return totals


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="short CI-sized run (a few seconds)"
    )
    parser.add_argument(
        "--soak-seconds",
        type=float,
        default=None,
        help="soak duration (default: 60, or 5 with --quick)",
    )
    args = parser.parse_args()
    soak_seconds = args.soak_seconds or (5.0 if args.quick else 60.0)
    latency_ticks = 5 if args.quick else 20

    events = make_events()
    print(f"calibrating sustainable tick time over {len(events)} events ...")
    service_time_s = calibrate(events, ticks=3 if args.quick else 5)
    deadline_s = service_time_s / 2.0  # 2x arrival rate = half the time
    print(
        f"  unbudgeted tick: {service_time_s * 1000:.1f} ms "
        f"-> soak deadline {deadline_s * 1000:.1f} ms"
    )

    print(f"latency: {latency_ticks} ticks without deadline ...")
    no_deadline = latency_run(events, latency_ticks, None)
    print(f"latency: {latency_ticks} ticks with deadline ...")
    with_deadline = latency_run(events, latency_ticks, deadline_s)
    print(f"soak: {soak_seconds:.0f} s at 2x sustainable rate ...")
    soak = soak_run(events, soak_seconds, deadline_s)

    absorbed = (
        soak["pairs_shed"]
        + soak["pairs_partial"]
        + soak["degraded_rungs"]
        + soak["breaker_skips"]
        + soak["queue_shed"]
    )
    payload = {
        "benchmark": "serving",
        "n_devices": N_DEVICES,
        "calibrated_tick_ms": service_time_s * 1000.0,
        "no_deadline": no_deadline,
        "with_deadline": with_deadline,
        "soak": soak,
        "overload_absorbed": absorbed,
    }
    path = write_report("BENCH_serving.json", payload)
    print(f"wrote {path}")
    print(
        f"  p50/p99 no deadline:   {no_deadline['p50_ms']:.1f} / "
        f"{no_deadline['p99_ms']:.1f} ms"
    )
    print(
        f"  p50/p99 with deadline: {with_deadline['p50_ms']:.1f} / "
        f"{with_deadline['p99_ms']:.1f} ms"
    )
    print(
        f"  soak: {soak['ticks']} ticks, {soak['exceptions']} exceptions, "
        f"{absorbed} overload events absorbed"
    )

    if soak["exceptions"]:
        print("FAIL: unhandled exceptions during soak", file=sys.stderr)
        return 1
    if soak["ticks"] == 0:
        print("FAIL: soak produced no ticks", file=sys.stderr)
        return 1
    if absorbed == 0:
        print(
            "FAIL: 2x overload produced no shedding/degradation — "
            "the admission control never engaged",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
