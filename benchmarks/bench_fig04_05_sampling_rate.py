"""Figures 4 & 5: precision / mean rank vs (low) data sampling rate.

Paper shape: precision rises and mean rank falls as the sampling rate
grows; STS leads at every rate, and its margin over the baselines widens
as the rate drops (Section VI-C, "Effect of different data sampling
rates").
"""

import numpy as np
import pytest

from repro.eval import sampling_rate_experiment

RATES = [0.1, 0.3, 0.5, 0.7, 0.9]


@pytest.mark.parametrize("dataset_name", ["mall", "taxi"])
def test_fig04_05_sampling_rate(benchmark, emit, datasets, dataset_name):
    dataset = datasets[dataset_name]
    result = benchmark.pedantic(
        sampling_rate_experiment,
        args=(dataset,),
        kwargs={"rates": RATES, "seed": 0},
        rounds=1,
        iterations=1,
    )
    emit(result)

    precision = result.metrics["precision"]
    mean_rank = result.metrics["mean_rank"]
    # Shape: STS's average precision beats every point/threshold-based
    # baseline (the paper's robustness claim).  SST is excluded from the
    # strict comparison: on piecewise-linear *simulated* paths synchronized
    # linear interpolation is nearly an oracle, which inflates SST relative
    # to the paper (see EXPERIMENTS.md); STS must still be within slack of
    # the best method overall.
    sts_avg = np.mean(precision["STS"])
    for method, series in precision.items():
        if method in ("STS", "SST"):
            continue
        assert sts_avg >= np.mean(series) - 0.02, (method, series)
    best_avg = max(np.mean(series) for series in precision.values())
    assert sts_avg >= best_avg - 0.10
    # Shape: performance does not degrade as the rate increases.
    assert precision["STS"][-1] >= precision["STS"][0] - 0.05
    assert mean_rank["STS"][-1] <= mean_rank["STS"][0] + 0.25
