"""Section V-C: computational complexity of the STS measure.

The paper derives ``O(|Tra|·|Tra'|·|R|²)`` for the literal (dense)
evaluation.  These benchmarks measure how one STS similarity call scales
with the grid resolution and with trajectory length in dense mode, and
how much of that the default FFT mode removes.
"""

import numpy as np
import pytest

from repro.core.grid import Grid
from repro.core.noise import GaussianNoiseModel
from repro.core.sts import STS
from repro.core.trajectory import Trajectory


def make_pair(n_points: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    ts = np.cumsum(rng.uniform(4, 12, n_points))
    xs = np.cumsum(rng.normal(1.2, 0.4, n_points) * np.diff(np.concatenate([[0], ts])))
    ys = 50 + np.cumsum(rng.normal(0, 2.0, n_points))
    a = Trajectory.from_arrays(xs, ys, ts)
    b = Trajectory.from_arrays(xs + rng.normal(0, 3, n_points), ys + rng.normal(0, 3, n_points), ts + 3.0)
    return a, b


def sts_call(mode: str, cell: float, n_points: int) -> float:
    a, b = make_pair(n_points)
    grid = Grid(-50, -50, 350, 150, cell_size=cell)
    measure = STS(grid, noise_model=GaussianNoiseModel(3.0), mode=mode)
    return measure.similarity(a, b)


@pytest.mark.parametrize("cell", [16.0, 8.0, 4.0], ids=["coarse", "medium", "fine"])
def test_dense_scaling_with_grid(benchmark, cell):
    """Dense-mode cost grows steeply as cells shrink (|R| grows)."""
    value = benchmark.pedantic(sts_call, args=("dense", cell, 12), rounds=2, iterations=1)
    assert 0.0 <= value <= 1.0


@pytest.mark.parametrize("cell", [16.0, 8.0, 4.0], ids=["coarse", "medium", "fine"])
def test_fft_scaling_with_grid(benchmark, cell):
    """FFT-mode cost grows near-linearly in |R| (n log n convolutions)."""
    value = benchmark.pedantic(sts_call, args=("fft", cell, 12), rounds=2, iterations=1)
    assert 0.0 <= value <= 1.0


@pytest.mark.parametrize("n_points", [8, 16, 32], ids=["short", "medium", "long"])
def test_scaling_with_trajectory_length(benchmark, n_points):
    """Cost grows with |Tra| + |Tra'| timestamps to evaluate."""
    value = benchmark.pedantic(sts_call, args=("fft", 4.0, n_points), rounds=2, iterations=1)
    assert 0.0 <= value <= 1.0
