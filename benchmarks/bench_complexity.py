"""Section V-C: computational complexity of the STS measure.

The paper derives ``O(|Tra|·|Tra'|·|R|²)`` for the literal (dense)
evaluation.  These benchmarks measure how one STS similarity call scales
with the grid resolution and with trajectory length in dense mode, and
how much of that the default FFT mode removes.

Run directly (``python benchmarks/bench_complexity.py [--quick]``) the
same sweep is timed with a plain wall-clock harness and written as
mean/p50/p95 per configuration to ``BENCH_complexity.json`` at the
repository root.
"""

import argparse
import sys
from pathlib import Path

import numpy as np
import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from repro.core.grid import Grid  # noqa: E402
from repro.core.noise import GaussianNoiseModel  # noqa: E402
from repro.core.sts import STS  # noqa: E402
from repro.core.trajectory import Trajectory  # noqa: E402


def make_pair(n_points: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    ts = np.cumsum(rng.uniform(4, 12, n_points))
    xs = np.cumsum(rng.normal(1.2, 0.4, n_points) * np.diff(np.concatenate([[0], ts])))
    ys = 50 + np.cumsum(rng.normal(0, 2.0, n_points))
    a = Trajectory.from_arrays(xs, ys, ts)
    b = Trajectory.from_arrays(xs + rng.normal(0, 3, n_points), ys + rng.normal(0, 3, n_points), ts + 3.0)
    return a, b


def sts_call(mode: str, cell: float, n_points: int) -> float:
    a, b = make_pair(n_points)
    grid = Grid(-50, -50, 350, 150, cell_size=cell)
    measure = STS(grid, noise_model=GaussianNoiseModel(3.0), mode=mode)
    return measure.similarity(a, b)


@pytest.mark.parametrize("cell", [16.0, 8.0, 4.0], ids=["coarse", "medium", "fine"])
def test_dense_scaling_with_grid(benchmark, cell):
    """Dense-mode cost grows steeply as cells shrink (|R| grows)."""
    value = benchmark.pedantic(sts_call, args=("dense", cell, 12), rounds=2, iterations=1)
    assert 0.0 <= value <= 1.0


@pytest.mark.parametrize("cell", [16.0, 8.0, 4.0], ids=["coarse", "medium", "fine"])
def test_fft_scaling_with_grid(benchmark, cell):
    """FFT-mode cost grows near-linearly in |R| (n log n convolutions)."""
    value = benchmark.pedantic(sts_call, args=("fft", cell, 12), rounds=2, iterations=1)
    assert 0.0 <= value <= 1.0


@pytest.mark.parametrize("n_points", [8, 16, 32], ids=["short", "medium", "long"])
def test_scaling_with_trajectory_length(benchmark, n_points):
    """Cost grows with |Tra| + |Tra'| timestamps to evaluate."""
    value = benchmark.pedantic(sts_call, args=("fft", 4.0, n_points), rounds=2, iterations=1)
    assert 0.0 <= value <= 1.0


# ----------------------------------------------------------------------
# Script mode: the same sweep -> BENCH_complexity.json
# ----------------------------------------------------------------------
def run_complexity_benchmark(repeats: int, quick: bool) -> dict:
    """Time the grid-resolution and trajectory-length sweeps per mode."""
    from jsonbench import time_config

    cells = [16.0, 8.0] if quick else [16.0, 8.0, 4.0]
    lengths = [8, 16] if quick else [8, 16, 32]
    configs: dict[str, dict] = {}
    for mode in ("dense", "fft"):
        for cell in cells:
            label = f"grid_sweep/{mode}/cell_{cell:g}m"
            configs[label] = time_config(
                lambda m=mode, c=cell: sts_call(m, c, 12), repeats=repeats, warmup=1
            )
    for n_points in lengths:
        label = f"length_sweep/fft/n_{n_points}"
        configs[label] = time_config(
            lambda n=n_points: sts_call("fft", 4.0, n), repeats=repeats, warmup=1
        )
    return {
        "benchmark": "complexity",
        "configs": configs,
        "quick": quick,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="smaller sweep, single repeat (CI smoke run)",
    )
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument(
        "--output", default="BENCH_complexity.json",
        help="output filename (written at the repository root)",
    )
    args = parser.parse_args(argv)

    from jsonbench import write_report

    repeats = args.repeats or (1 if args.quick else 3)
    report = run_complexity_benchmark(repeats, args.quick)
    path = write_report(args.output, report)

    print(f"wrote {path}")
    for label, stats in report["configs"].items():
        print(
            f"  {label:>28}: mean {stats['mean_s']:.4f}s  "
            f"p50 {stats['p50_s']:.4f}s  p95 {stats['p95_s']:.4f}s"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
