"""Figure 11: cross-similarity deviation vs data sampling rate (Eq. 13).

Random distinct trajectory pairs; one member is downsampled at rate α and
the relative change of each measure is recorded.  Paper shape: deviation
shrinks as α grows for every method, and STS's deviation is the smallest
at every rate — it preserves similarity regardless of the sampling
strategy (Section VI-D).  The paper compares STS, CATS, WGM and SST here
(EDwP/APM/KF were already out of contention).
"""

import numpy as np
import pytest

from repro.eval import cross_similarity_experiment

RATES = [0.1, 0.3, 0.5, 0.7, 0.9]


@pytest.mark.parametrize("dataset_name", ["mall", "taxi"])
def test_fig11_cross_similarity(benchmark, emit, datasets, dataset_name):
    dataset = datasets[dataset_name]
    result = benchmark.pedantic(
        cross_similarity_experiment,
        args=(dataset,),
        kwargs={"rates": RATES, "n_pairs": 30, "seed": 0},
        rounds=1,
        iterations=1,
    )
    emit(result)

    deviation = result.metrics["deviation"]
    # Shape: deviation decreases from the harshest to the mildest
    # downsampling for every method, and STS ends small.
    for method, series in deviation.items():
        assert series[-1] <= series[0] + 0.05, (method, series)
    assert deviation["STS"][-1] <= 0.25
    # Cross-method shape: STS's deviation is lowest-or-near at every rate.
    # This reproduces on the mall corpus; on the synthetic taxi corpus it
    # does NOT (see EXPERIMENTS.md) — weakly-overlapping taxi pairs make
    # STS's Eq. 10 denominator span-sensitive in a way the paper's corpus
    # apparently did not exercise — so the claim is only asserted indoors.
    if dataset_name == "mall":
        for k in range(len(result.x_values)):
            best = min(series[k] for series in deviation.values())
            assert deviation["STS"][k] <= best + 0.25, (k, deviation)
