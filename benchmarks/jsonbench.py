"""Plain-timer benchmark harness emitting machine-readable JSON.

The pytest-benchmark suites in this directory are for interactive use;
CI and the performance-tracking workflow instead run the bench modules as
scripts (``python benchmarks/bench_throughput.py``), which time each
configuration with :func:`time_config` and write a ``BENCH_*.json``
summary (mean/p50/p95 per configuration) at the repository root.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from pathlib import Path
from typing import Callable

__all__ = ["REPO_ROOT", "time_config", "write_report"]

REPO_ROOT = Path(__file__).resolve().parent.parent


def time_config(fn: Callable[[], object], repeats: int = 3, warmup: int = 0) -> dict:
    """Wall-clock stats of ``repeats`` runs of ``fn`` (seconds).

    ``warmup`` extra runs are executed first and discarded — use 1 for
    paths with one-time process-level setup (FFT plan caches, KDE lookup
    tables) when steady-state cost is the quantity of interest.
    """
    for _ in range(warmup):
        fn()
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    ordered = sorted(times)

    def percentile(q: float) -> float:
        if len(ordered) == 1:
            return ordered[0]
        pos = q * (len(ordered) - 1)
        lo = int(pos)
        hi = min(lo + 1, len(ordered) - 1)
        return ordered[lo] + (pos - lo) * (ordered[hi] - ordered[lo])

    return {
        "repeats": repeats,
        "mean_s": sum(times) / len(times),
        "p50_s": percentile(0.50),
        "p95_s": percentile(0.95),
        "min_s": ordered[0],
        "max_s": ordered[-1],
        "times_s": times,
    }


def write_report(filename: str, payload: dict) -> Path:
    """Write ``payload`` (plus environment metadata) to the repo root."""
    payload = dict(payload)
    payload.setdefault(
        "environment",
        {
            "python": sys.version.split()[0],
            "platform": platform.platform(),
            "cpu_count": __import__("os").cpu_count(),
        },
    )
    path = REPO_ROOT / filename
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path
