"""Plain-timer benchmark harness emitting machine-readable JSON.

The pytest-benchmark suites in this directory are for interactive use;
CI and the performance-tracking workflow instead run the bench modules as
scripts (``python benchmarks/bench_throughput.py``), which time each
configuration with :func:`time_config` and write a ``BENCH_*.json``
summary (mean/p50/p95 per configuration) at the repository root.
"""

from __future__ import annotations

import json
import platform
import subprocess
import sys
import time
from datetime import datetime, timezone
from pathlib import Path
from typing import Callable

__all__ = ["REPO_ROOT", "HISTORY_LIMIT", "time_config", "time_paired", "write_report"]

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Runs kept under each report's ``history`` key (oldest dropped first).
HISTORY_LIMIT = 20


def _git_sha() -> str | None:
    """The current commit SHA, or None outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def _stats(times: list[float]) -> dict:
    ordered = sorted(times)

    def percentile(q: float) -> float:
        if len(ordered) == 1:
            return ordered[0]
        pos = q * (len(ordered) - 1)
        lo = int(pos)
        hi = min(lo + 1, len(ordered) - 1)
        return ordered[lo] + (pos - lo) * (ordered[hi] - ordered[lo])

    return {
        "repeats": len(times),
        "mean_s": sum(times) / len(times),
        "p50_s": percentile(0.50),
        "p95_s": percentile(0.95),
        "min_s": ordered[0],
        "max_s": ordered[-1],
        "times_s": times,
    }


def _timed(fn: Callable[[], object]) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def time_config(fn: Callable[[], object], repeats: int = 3, warmup: int = 0) -> dict:
    """Wall-clock stats of ``repeats`` runs of ``fn`` (seconds).

    ``warmup`` extra runs are executed first and discarded — use 1 for
    paths with one-time process-level setup (FFT plan caches, KDE lookup
    tables) when steady-state cost is the quantity of interest.
    """
    for _ in range(warmup):
        fn()
    return _stats([_timed(fn) for _ in range(repeats)])


def time_paired(
    fn_a: Callable[[], object],
    fn_b: Callable[[], object],
    repeats: int = 3,
    warmup: int = 0,
) -> tuple[dict, dict]:
    """Interleaved A/B stats for two variants of the same workload.

    When the expected difference between two configurations is small
    relative to machine drift (thermal throttling, noisy-neighbour load
    on shared runners), timing them in separate blocks attributes the
    drift to whichever ran later.  Here every round runs both callables
    back-to-back, alternating which goes first (ABBA ordering), so slow
    drift lands on both sides equally and the *difference* stays
    meaningful.  Returns ``(stats_a, stats_b)``, each shaped exactly
    like :func:`time_config`'s result.
    """
    for _ in range(warmup):
        fn_a()
        fn_b()
    times_a: list[float] = []
    times_b: list[float] = []
    for k in range(repeats):
        order = [(fn_a, times_a), (fn_b, times_b)]
        if k % 2:
            order.reverse()
        for fn, sink in order:
            sink.append(_timed(fn))
    return _stats(times_a), _stats(times_b)


def write_report(filename: str, payload: dict) -> Path:
    """Write ``payload`` (plus environment metadata) to the repo root.

    Each write also appends a compact run record — commit SHA, UTC
    timestamp, per-config mean seconds — to the report's ``history``
    list (carried over from the existing file, bounded to the last
    :data:`HISTORY_LIMIT` runs), so regressions can be traced to a
    commit without a separate tracking database.

    Consecutive runs on the *same commit* collapse into one record (the
    newest wins): re-running a bench while iterating locally refreshes
    the tail entry instead of flushing real per-commit history out of
    the bounded window.  Records without a SHA (outside a checkout) are
    never collapsed — there is no evidence they are the same code.
    """
    payload = dict(payload)
    payload.setdefault(
        "environment",
        {
            "python": sys.version.split()[0],
            "platform": platform.platform(),
            "cpu_count": __import__("os").cpu_count(),
        },
    )
    path = REPO_ROOT / filename
    history: list[dict] = []
    if path.exists():
        try:
            history = list(json.loads(path.read_text()).get("history", []))
        except (OSError, json.JSONDecodeError, AttributeError):
            history = []
    record: dict = {
        "git_sha": _git_sha(),
        "timestamp_utc": datetime.now(timezone.utc).isoformat(timespec="seconds"),
    }
    configs = payload.get("configs")
    if isinstance(configs, dict):
        record["mean_s"] = {
            label: stats["mean_s"]
            for label, stats in configs.items()
            if isinstance(stats, dict) and "mean_s" in stats
        }
    if (
        history
        and record["git_sha"] is not None
        and history[-1].get("git_sha") == record["git_sha"]
    ):
        history[-1] = record
    else:
        history.append(record)
    payload["history"] = history[-HISTORY_LIMIT:]
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path
