"""Figures 12–14: grid size vs running time / precision / mean rank.

STS's effectiveness/efficiency trade-off across grid cell sizes (1–6 m
mall, 50–250 m taxi).  Paper shape: larger cells run faster but lose
precision and gain mean rank; the sweet spot sits near the localization
error (Section VI-E).
"""

import pytest

from repro.eval import grid_size_experiment


@pytest.mark.parametrize("dataset_name", ["mall", "taxi"])
def test_fig12_13_14_grid_size(benchmark, emit, datasets, dataset_name):
    dataset = datasets[dataset_name]
    # rate=0.3 restores paper-scale task difficulty so the effectiveness
    # decline of Figs. 13-14 is visible (see grid_size_experiment docs).
    result = benchmark.pedantic(
        grid_size_experiment,
        args=(dataset,),
        kwargs={"grid_sizes": dataset.grid_sizes, "rate": 0.3, "seed": 0},
        rounds=1,
        iterations=1,
    )
    emit(result)

    precision = result.metrics["precision"]["STS"]
    mean_rank = result.metrics["mean_rank"]["STS"]
    timing = result.metrics["running_time_s"]["STS"]
    # Shape: the finest grid is at least as precise as the coarsest, and
    # never worse on mean rank.
    assert precision[0] >= precision[-1] - 1e-9
    assert mean_rank[0] <= mean_rank[-1] + 1e-9
    # Shape: the coarsest grid is not slower than the finest.
    assert timing[-1] <= timing[0] * 1.5
