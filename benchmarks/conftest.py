"""Shared benchmark fixtures: the two evaluation corpora.

Benchmark scale is deliberately smaller than the paper's (Porto has 1.7 M
trajectories; we use gallery sizes in the tens) — the curves' *shape* is
what the harness reproduces; absolute mean ranks scale with gallery size.
Set ``REPRO_BENCH_SIZE`` to run larger galleries.
"""

from __future__ import annotations

import os

import pytest

from repro.datasets import mall_dataset, taxi_dataset

# Gallery sizes: STS pairs are ~20x cheaper on the taxi grid than the
# mall grid, and the taxi task needs a larger gallery to be discriminative
# (confusability there comes from candidate count, as in Porto).
MALL_SIZE = int(os.environ.get("REPRO_BENCH_SIZE", "20"))
TAXI_SIZE = int(os.environ.get("REPRO_BENCH_SIZE", "48"))

# Tight time windows pack the objects into the same period, so galleries
# contain genuinely confusable (temporally overlapping) candidates — the
# regime the paper's full-size corpora are in.
MALL_WINDOW = 1200.0
TAXI_WINDOW = 600.0


@pytest.fixture(scope="session")
def bench_mall():
    return mall_dataset(n_trajectories=MALL_SIZE, seed=101, time_window=MALL_WINDOW)


@pytest.fixture(scope="session")
def bench_taxi():
    return taxi_dataset(n_trajectories=TAXI_SIZE, seed=101, time_window=TAXI_WINDOW)


@pytest.fixture(scope="session")
def datasets(bench_mall, bench_taxi):
    return {"mall": bench_mall, "taxi": bench_taxi}


@pytest.fixture
def emit(capsys):
    """Print a SweepResult's tables straight to the terminal (uncaptured)."""

    def _emit(result, metrics=None):
        with capsys.disabled():
            print()
            for metric in metrics or result.metrics:
                print(result.format_table(metric))
                print()

    return _emit
