"""Figure 10: component ablation — STS vs STS-N / STS-G / STS-F.

Fixed distortion (6 m mall, 20 m taxi).  Paper shape: full STS achieves
the highest precision and lowest mean rank of the four variants — the
noise model, the personalized speed distribution and the speed-based
transition estimator each contribute (Section VI-C, "Effectiveness of
each component").
"""

import pytest

from repro.eval import ablation_experiment


@pytest.mark.parametrize("dataset_name", ["mall", "taxi"])
def test_fig10_ablation(benchmark, emit, datasets, dataset_name):
    dataset = datasets[dataset_name]
    result = benchmark.pedantic(
        ablation_experiment,
        args=(dataset,),
        kwargs={"seed": 0},
        rounds=1,
        iterations=1,
    )
    emit(result)

    precision = result.metrics["precision"]
    mean_rank = result.metrics["mean_rank"]
    assert set(precision) == {"STS", "STS-N", "STS-G", "STS-F"}
    # Shape: full STS is not beaten by any ablated variant (small slack
    # for the tiny-gallery regime; the paper's gaps are a few percent at
    # thousands of queries — see EXPERIMENTS.md).
    for variant in ("STS-N", "STS-G", "STS-F"):
        assert precision["STS"][0] >= precision[variant][0] - 0.10, variant
        assert mean_rank["STS"][0] <= mean_rank[variant][0] + 0.75, variant
