"""Filter-and-refine effectiveness: how much gallery work the index saves.

Not a paper figure — the engineering complement to Section V-C: the STS
measure is expensive per pair, so candidate filtering determines whether a
deployment scales.  Measures (a) exhaustive scan vs (b) indexed query
latency on the taxi gallery, and asserts the filters lose no true match.
"""

import numpy as np
import pytest

from repro.core.noise import GaussianNoiseModel
from repro.core.sts import STS
from repro.eval import build_matching_pair, grid_covering
from repro.index import TrajectoryIndex


@pytest.fixture(scope="module")
def linking_setup(request):
    dataset = request.getfixturevalue("bench_taxi")
    queries, gallery = build_matching_pair(dataset.trajectories)
    corpus = queries + gallery
    grid = grid_covering(corpus, dataset.cell_size, dataset.margin)
    measure = STS(grid, noise_model=GaussianNoiseModel(dataset.location_error))
    index = TrajectoryIndex(grid, dilation=3)
    index.add_all(gallery)
    return queries, gallery, measure, index


def exhaustive_best(measure, query, gallery) -> int:
    scores = [measure.score(query, g) for g in gallery]
    return int(np.argmax(scores))


def test_exhaustive_scan(benchmark, linking_setup):
    queries, gallery, measure, _ = linking_setup
    query = queries[0]
    best = benchmark.pedantic(
        exhaustive_best, args=(measure, query, gallery), rounds=2, iterations=1
    )
    assert 0 <= best < len(gallery)


def test_indexed_query(benchmark, linking_setup):
    queries, gallery, measure, index = linking_setup
    query = queries[0]

    def indexed_best():
        matches = index.query(query, measure, k=1)
        return matches[0].index if matches else -1

    best = benchmark.pedantic(indexed_best, rounds=2, iterations=1)
    assert best == 0  # the true counterpart

    # Coverage: across all queries, the index never drops the true match,
    # and filters a substantial share of candidates.
    scored = 0
    for qid, q in enumerate(queries):
        candidates = index.candidates(q)
        assert qid in candidates, f"index dropped the true match of query {qid}"
        scored += len(candidates)
    filter_rate = 1.0 - scored / (len(queries) * len(gallery))
    assert filter_rate > 0.2, f"index filtered only {filter_rate:.0%}"
