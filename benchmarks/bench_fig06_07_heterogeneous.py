"""Figures 6 & 7: precision / mean rank vs heterogeneous sampling rate α.

Only the gallery set D² is downsampled, so the two sensing systems sample
at different rates.  Paper shape: all methods degrade as α shrinks; STS
stays on top and its advantage grows with the rate gap (Section VI-C,
"Effect of heterogeneous sampling rates").
"""

import numpy as np
import pytest

from repro.eval import heterogeneous_rate_experiment

ALPHAS = [0.1, 0.3, 0.5, 0.7, 0.9]


@pytest.mark.parametrize("dataset_name", ["mall", "taxi"])
def test_fig06_07_heterogeneous_rate(benchmark, emit, datasets, dataset_name):
    dataset = datasets[dataset_name]
    result = benchmark.pedantic(
        heterogeneous_rate_experiment,
        args=(dataset,),
        kwargs={"alphas": ALPHAS, "seed": 0},
        rounds=1,
        iterations=1,
    )
    emit(result)

    precision = result.metrics["precision"]
    # Shape: STS beats the point/threshold-based baselines; SST is held to
    # the looser "within slack of best" bar (see bench_fig04 note).
    sts_avg = np.mean(precision["STS"])
    for method, series in precision.items():
        if method in ("STS", "SST"):
            continue
        assert sts_avg >= np.mean(series) - 0.02, (method, series)
    best_avg = max(np.mean(series) for series in precision.values())
    assert sts_avg >= best_avg - 0.10
    # Shape: matching does not get harder as the rate gap closes (one-query
    # tolerance: a pair of genuinely co-driving taxis can flip either way).
    assert precision["STS"][-1] >= precision["STS"][0] - 0.05
