"""Cluster serving: hedged vs unhedged tail latency under a slow replica.

The scenario hedging exists for (the "tail at scale" shape): one replica
of one shard is injected 10× slow.  Round-robin primary selection routes
roughly half the queries through it, so without hedging the latency
distribution is bimodal and p99 sits at the slow replica's latency.
With hedging, the scatter-gather re-issues the slow shard's request to
the sibling replica after the adaptive hedge delay and takes whichever
answers first — p99 collapses toward (hedge delay + healthy latency),
at the cost of some duplicated work (the *wasted* hedges, logged below).

Method:

1. Calibrate: run healthy queries, take the per-query p50.
2. Inject ``delay_s = 10 × p50`` (floored) into one replica of the
   first populated shard.
3. Time N single-query scatter-gathers with hedging off, then on
   (fresh query objects each time so worker caches don't flatter later
   runs), and compare p50/p99.

Run directly (``python benchmarks/bench_cluster.py [--quick]
[--assert-hedge-wins]``); results land in ``BENCH_cluster.json`` at the
repository root.  ``--assert-hedge-wins`` (used by CI) fails the process
unless hedged p99 ≤ 0.7 × unhedged p99.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

import numpy as np  # noqa: E402

from jsonbench import write_report  # noqa: E402
from repro.cluster import ClusterService  # noqa: E402
from repro.core.grid import Grid  # noqa: E402
from repro.core.sts import STS  # noqa: E402
from repro.core.trajectory import Trajectory  # noqa: E402

GRID = Grid(0, 0, 60, 30, cell_size=2.0)
N_SHARDS = 2
N_REPLICAS = 2
SLOWDOWN = 10.0
MIN_DELAY_S = 0.05  # keep the injected fault well above timer noise
HEDGE_P99_RATIO_MAX = 0.7


def make_gallery(n: int, seed: int = 0) -> list[Trajectory]:
    rng = np.random.default_rng(seed)
    gallery = []
    for i in range(n):
        ts = np.sort(rng.uniform(0.0, 120.0, 8))
        xs = rng.uniform(2.0, 58.0, 8)
        ys = rng.uniform(2.0, 28.0, 8)
        gallery.append(Trajectory.from_arrays(xs, ys, ts, object_id=f"g{i}"))
    return gallery


def make_query(seed: int) -> Trajectory:
    rng = np.random.default_rng(500_000 + seed)
    ts = np.sort(rng.uniform(0.0, 120.0, 8))
    return Trajectory.from_arrays(
        rng.uniform(2.0, 58.0, 8), rng.uniform(2.0, 28.0, 8), ts,
        object_id=f"bench-q{seed}",
    )


def percentile(samples: list[float], q: float) -> float:
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    pos = q * (len(ordered) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(ordered) - 1)
    return ordered[lo] + (pos - lo) * (ordered[hi] - ordered[lo])


def stats(samples: list[float]) -> dict:
    return {
        "repeats": len(samples),
        "mean_s": sum(samples) / len(samples),
        "p50_s": percentile(samples, 0.50),
        "p95_s": percentile(samples, 0.95),
        "p99_s": percentile(samples, 0.99),
        "min_s": min(samples),
        "max_s": max(samples),
    }


def run_queries(service: ClusterService, n: int, seed0: int):
    """Per-query wall seconds plus summed hedge/failover accounting."""
    samples: list[float] = []
    totals = {"hedges_fired": 0, "hedges_won": 0, "hedges_wasted": 0,
              "failovers": 0, "shards_skipped": 0}
    for k in range(n):
        query = make_query(seed0 + k)
        t0 = time.perf_counter()
        _scores, report = service.query_scores(query)
        samples.append(time.perf_counter() - t0)
        if report.coverage < 1.0:
            raise SystemExit(
                f"bench_cluster: query lost coverage ({report.summary()}) — "
                "the bench cluster must never skip shards"
            )
        totals["hedges_fired"] += report.hedges_fired
        totals["hedges_won"] += report.hedges_won
        totals["hedges_wasted"] += report.hedges_wasted
        totals["failovers"] += report.failovers
        totals["shards_skipped"] += len(report.shards_skipped)
    return samples, totals


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smaller gallery and fewer queries (CI smoke)")
    parser.add_argument("--assert-hedge-wins", action="store_true",
                        help="fail unless hedged p99 <= "
                        f"{HEDGE_P99_RATIO_MAX} x unhedged p99")
    args = parser.parse_args()

    n_gallery = 8 if args.quick else 16
    n_queries = 20 if args.quick else 50
    gallery = make_gallery(n_gallery)
    measure = STS(GRID)

    # 1. Calibrate the healthy per-query latency.
    with ClusterService(measure, gallery, n_shards=N_SHARDS,
                        n_replicas=N_REPLICAS, hedge=False) as svc:
        victim = next(s for s, m in enumerate(svc.shard_globals) if m)
        warm, _ = run_queries(svc, max(4, n_queries // 5), seed0=90_000)
    healthy_p50 = percentile(warm, 0.50)
    delay_s = max(MIN_DELAY_S, SLOWDOWN * healthy_p50)
    print(f"calibration: healthy p50 {healthy_p50 * 1e3:.1f} ms -> "
          f"injected delay {delay_s * 1e3:.1f} ms on shard {victim} replica 0")

    faults = {(victim, 0): {"delay_s": delay_s}}

    # 2. Unhedged under the slow replica.
    with ClusterService(measure, gallery, n_shards=N_SHARDS,
                        n_replicas=N_REPLICAS, hedge=False,
                        worker_faults=faults) as svc:
        unhedged_samples, unhedged_totals = run_queries(svc, n_queries, seed0=0)

    # 3. Hedged under the same fault.
    with ClusterService(measure, gallery, n_shards=N_SHARDS,
                        n_replicas=N_REPLICAS, hedge=True,
                        worker_faults=faults) as svc:
        hedged_samples, hedged_totals = run_queries(svc, n_queries, seed0=0)

    unhedged = stats(unhedged_samples)
    hedged = stats(hedged_samples)
    ratio = hedged["p99_s"] / unhedged["p99_s"]
    wasted_rate = (
        hedged_totals["hedges_wasted"] / hedged_totals["hedges_fired"]
        if hedged_totals["hedges_fired"] else 0.0
    )
    print(f"unhedged: p50 {unhedged['p50_s'] * 1e3:.1f} ms  "
          f"p99 {unhedged['p99_s'] * 1e3:.1f} ms")
    print(f"hedged:   p50 {hedged['p50_s'] * 1e3:.1f} ms  "
          f"p99 {hedged['p99_s'] * 1e3:.1f} ms  "
          f"(p99 ratio {ratio:.2f})")
    print(f"hedges: {hedged_totals['hedges_fired']} fired, "
          f"{hedged_totals['hedges_won']} won, "
          f"{hedged_totals['hedges_wasted']} wasted "
          f"(wasted rate {wasted_rate:.0%})")

    write_report("BENCH_cluster.json", {
        "benchmark": "cluster hedged vs unhedged tail latency",
        "topology": {"n_shards": N_SHARDS, "n_replicas": N_REPLICAS},
        "gallery_size": n_gallery,
        "queries": n_queries,
        "healthy_p50_s": healthy_p50,
        "injected_delay_s": delay_s,
        "slow_replica": {"shard": victim, "replica": 0,
                         "slowdown_x": SLOWDOWN},
        "configs": {
            "slow_replica_unhedged": unhedged,
            "slow_replica_hedged": hedged,
        },
        "p99_ratio_hedged_over_unhedged": ratio,
        "hedges": dict(hedged_totals),
        "hedge_wasted_rate": wasted_rate,
        "unhedged_recoveries": dict(unhedged_totals),
    })
    print("wrote BENCH_cluster.json")

    if args.assert_hedge_wins and ratio > HEDGE_P99_RATIO_MAX:
        print(f"FAIL: hedged p99 is {ratio:.2f}x unhedged p99 "
              f"(required <= {HEDGE_P99_RATIO_MAX})", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
