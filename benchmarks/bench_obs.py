"""Observability overhead on the clustered link path, on vs off.

The distributed observability plane (per-query trace stitching, worker
delta piggybacking, parent-side folding) rides on every clustered
scatter-gather, so its cost must be provably negligible.  This bench
times the same 2-shard × 2-replica query workload through two services:

* ``obs_on`` — instrumentation enabled end to end: the parent opens a
  ``cluster.query`` span, every dispatch propagates trace context, each
  worker snapshots a registry delta (throttled, ``REPRO_OBS_DELTA_S``)
  and returns its span subtree, and the parent folds and stitches it
  all per query.
* ``obs_off`` — measure and cluster built under ``set_enabled(False)``
  (the programmatic ``REPRO_OBS=off``), so forked workers inherit the
  disabled flag and run the shared no-op instruments for the whole
  bench.  All scoring happens in the workers; the parent keeps the
  global flag on for the on side, so the off-side parent still opens
  its handful of dispatch spans per query — a bias of microseconds
  against half a second of fleet scoring CPU.

Methodology.  Wall clock is the wrong ruler on a shared machine: the
scatter-gather's wall time swings ±20% from scheduling alone, and even
raw CPU seconds for identical work vary several-fold under cache and
SMT contention bursts lasting whole seconds — longer than any
back-to-back pair of runs, so sequential pairing cannot cancel them.
The bench therefore runs the *same query* through both services
**simultaneously**, one thread per side, a barrier aligning each
pair: an ambient burst lands on both sides of a pair at once and
divides out of the per-pair CPU ratio.  Each side's CPU is its
driving thread's ``time.thread_time()`` plus the nanosecond
``sum_exec_runtime`` of its workers from ``/proc/<pid>/schedstat``
(``stat`` jiffies would quantize a 50 ms score to ±20%).  The gated
figure is the **median of the per-pair on/off CPU ratios** —
reproducible to a few tenths of a percent on a machine where
sequential estimators swing by ±2%.  Total-CPU and per-query wall
stats are reported alongside for context.

Run directly (``python benchmarks/bench_obs.py [--quick]
[--assert-overhead PCT] [--serve PORT] [--hold SECONDS]
[--trace-out FILE]``); results land in ``BENCH_obs.json`` at the
repository root.  ``--serve`` exposes the live registry (plus SLO burn
rates) over HTTP while the bench runs — CI curls the endpoints mid-run;
``--hold`` keeps serving after the timing finishes; ``--trace-out``
writes the final query's stitched Chrome trace for artifact upload.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

import numpy as np  # noqa: E402

from jsonbench import write_report  # noqa: E402
from repro.cluster import ClusterService  # noqa: E402
from repro.core.grid import Grid  # noqa: E402
from repro.core.sts import STS  # noqa: E402
from repro.core.trajectory import Trajectory  # noqa: E402
from repro.obs import (  # noqa: E402
    MetricsExporter,
    SLOTracker,
    default_slos,
    get_registry,
    set_enabled,
)

GRID = Grid(0, 0, 60, 30, cell_size=2.0)
N_SHARDS = 2
N_REPLICAS = 2

_CLK_TCK = os.sysconf("SC_CLK_TCK") if hasattr(os, "sysconf") else 100


def make_gallery(n: int, points: int, seed: int = 0) -> list[Trajectory]:
    rng = np.random.default_rng(seed)
    gallery = []
    for i in range(n):
        ts = np.sort(rng.uniform(0.0, 240.0, points))
        xs = rng.uniform(2.0, 58.0, points)
        ys = rng.uniform(2.0, 28.0, points)
        gallery.append(Trajectory.from_arrays(xs, ys, ts, object_id=f"g{i}"))
    return gallery


def make_queries(n: int, points: int, seed: int = 700_000) -> list[Trajectory]:
    rng = np.random.default_rng(seed)
    queries = []
    for i in range(n):
        ts = np.sort(rng.uniform(0.0, 240.0, points))
        queries.append(Trajectory.from_arrays(
            rng.uniform(2.0, 58.0, points), rng.uniform(2.0, 28.0, points),
            ts, object_id=f"bench-obs-q{i}",
        ))
    return queries


def _proc_cpu_s(pid: int) -> float:
    """CPU seconds one process has consumed (Linux procfs)."""
    try:
        # sum_exec_runtime in nanoseconds — far finer than stat's jiffies,
        # which quantize a 50 ms score to ±20%.
        with open(f"/proc/{pid}/schedstat") as handle:
            return int(handle.read().split()[0]) / 1e9
    except (OSError, ValueError, IndexError):
        pass
    try:
        with open(f"/proc/{pid}/stat") as handle:
            fields = handle.read().rsplit(")", 1)[1].split()
        return (int(fields[11]) + int(fields[12])) / _CLK_TCK
    except (OSError, ValueError, IndexError):
        return 0.0


def workers_cpu_s(service: ClusterService) -> float:
    """CPU seconds consumed so far by every live replica worker."""
    total = 0.0
    for pid in service.replica_pids().values():
        if pid:
            total += _proc_cpu_s(pid)
    return total


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smaller workload and fewer rounds (smoke/CI)")
    parser.add_argument("--assert-overhead", type=float, default=None,
                        metavar="PCT",
                        help="exit non-zero unless the median per-pair fleet "
                             "CPU overhead < PCT%%")
    parser.add_argument("--serve", default=None, metavar="[HOST:]PORT",
                        help="expose /metrics, /slo etc. while running")
    parser.add_argument("--hold", type=float, default=0.0, metavar="SECONDS",
                        help="keep the exporter up after timing finishes")
    parser.add_argument("--trace-out", default=None, metavar="FILE",
                        help="write the final stitched Chrome trace here")
    args = parser.parse_args()

    # Same per-query workload in both modes: shrinking the queries would
    # shrink the scoring work the fixed per-query obs cost amortizes over
    # and inflate the measured overhead; --quick only runs fewer pairs.
    gallery_n, points = 150, 16
    distinct, pairs = (3, 10) if args.quick else (4, 24)

    exporter = None
    if args.serve:
        tracker = SLOTracker(registry=get_registry(), slos=default_slos())
        exporter = MetricsExporter.from_spec(
            args.serve, slo_tracker=tracker
        ).start()
        print(f"serving metrics at {exporter.url}", file=sys.stderr)

    gallery = make_gallery(gallery_n, points)
    queries = make_queries(distinct, points)

    set_enabled(True)
    svc_on = ClusterService(
        STS(GRID), gallery, n_shards=N_SHARDS, n_replicas=N_REPLICAS,
        hedge=False,
    )
    # Built dark: the forked workers inherit the disabled flag, so their
    # scoring runs the shared no-op instruments for the whole bench.
    previous = set_enabled(False)
    try:
        svc_off = ClusterService(
            STS(GRID), gallery, n_shards=N_SHARDS, n_replicas=N_REPLICAS,
            hedge=False,
        )
    finally:
        set_enabled(previous)

    # Warmup: prime KDE tables and worker caches on each side.
    for query in queries:
        svc_on.query_scores(query)
        svc_off.query_scores(query)

    barrier = threading.Barrier(2)
    results: dict[str, object] = {}

    def side(service: ClusterService, tag: str) -> None:
        """Run every pair's query on one variant, in lockstep with the other."""
        trace = None
        walls: list[float] = []
        cpus: list[float] = []
        try:
            for k in range(pairs):
                query = queries[k % distinct]
                barrier.wait()
                cpu0 = time.thread_time() + workers_cpu_s(service)
                t0 = time.perf_counter()
                _, report = service.query_scores(query)
                walls.append(time.perf_counter() - t0)
                cpus.append(time.thread_time() + workers_cpu_s(service) - cpu0)
                if report.coverage < 1.0:
                    raise RuntimeError(f"bench_obs: {tag} query lost coverage")
                if tag == "on" and report.trace:
                    trace = report.trace
        except BaseException as exc:  # surfaced on the main thread
            barrier.abort()
            results[tag] = exc
            return
        results[tag] = (walls, cpus, trace)

    threads = [
        threading.Thread(target=side, args=(svc_on, "on"), name="bench-obs-on"),
        threading.Thread(target=side, args=(svc_off, "off"), name="bench-obs-off"),
    ]
    try:
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    finally:
        svc_on.close()
        svc_off.close()
    for tag in ("on", "off"):
        outcome = results.get(tag)
        if not isinstance(outcome, tuple):
            raise SystemExit(f"bench_obs: {tag} side failed: {outcome!r}")
    wall_on, cpu_on, last_trace = results["on"]
    wall_off, cpu_off, _ = results["off"]

    def wall_stats(samples):
        ordered = sorted(samples)
        return {
            "repeats": len(samples),
            "mean_s": sum(samples) / len(samples),
            "p50_s": ordered[len(ordered) // 2],
            "min_s": ordered[0],
            "max_s": ordered[-1],
            "times_s": samples,
        }

    stats_on, stats_off = wall_stats(wall_on), wall_stats(wall_off)
    ratios = sorted(a / b for a, b in zip(cpu_on, cpu_off))
    overhead_cpu = ratios[len(ratios) // 2] - 1.0
    overhead_total = sum(cpu_on) / sum(cpu_off) - 1.0
    overhead_wall = stats_on["p50_s"] / stats_off["p50_s"] - 1.0
    print(
        f"fleet cpu/query   on {min(cpu_on):7.3f}..{max(cpu_on):.3f} s"
        f"   off {min(cpu_off):7.3f}..{max(cpu_off):.3f} s\n"
        f"overhead   median pair ratio {overhead_cpu * 100:+.2f}%  <- gated   "
        f"(total-cpu {overhead_total * 100:+.2f}%, "
        f"wall-p50 {overhead_wall * 100:+.2f}%)"
    )

    if args.trace_out and last_trace:
        Path(args.trace_out).write_text(
            json.dumps({"traceEvents": last_trace}, indent=2) + "\n"
        )
        print(f"stitched trace -> {args.trace_out}", file=sys.stderr)

    path = write_report("BENCH_obs.json", {
        "benchmark": "observability overhead on the clustered link path",
        "cluster": {"n_shards": N_SHARDS, "n_replicas": N_REPLICAS,
                    "gallery": gallery_n, "points": points,
                    "pairs": pairs, "distinct_queries": distinct},
        "configs": {"obs_on": stats_on, "obs_off": stats_off},
        "fleet_cpu": {"obs_on_s": sum(cpu_on),
                      "obs_off_s": sum(cpu_off),
                      "pair_ratios": [round(r, 4) for r in ratios]},
        "overhead": {"cpu_median_ratio_pct": overhead_cpu * 100,
                     "cpu_total_pct": overhead_total * 100,
                     "wall_p50_pct": overhead_wall * 100},
    })
    print(f"report -> {path}", file=sys.stderr)

    if args.hold > 0 and exporter is not None:
        print(f"holding exporter for {args.hold:.0f}s", file=sys.stderr)
        time.sleep(args.hold)
    if exporter is not None:
        exporter.stop()

    if args.assert_overhead is not None:
        limit = args.assert_overhead / 100.0
        if overhead_cpu >= limit:
            print(
                f"bench_obs: median fleet CPU overhead "
                f"{overhead_cpu * 100:.2f}% exceeds the "
                f"{args.assert_overhead:.1f}% gate",
                file=sys.stderr,
            )
            return 1
        print(
            f"overhead gate ok: {overhead_cpu * 100:.2f}% < "
            f"{args.assert_overhead:.1f}%",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
