"""Application benchmark: companion detection quality (no paper figure).

Section I motivates STS with companion detection; this benchmark scores
the application directly.  A labeled mall corpus mixes companion pairs
with independent visitors in the same time window; every method ranks all
temporally-overlapping pairs and is scored by ROC-AUC / average precision
against the labels.  Expected shape: the spatio-temporal probabilistic
methods (STS first) clearly beat spatial-only DTW, which cannot tell
"same route together" from "same route an hour apart".
"""

import pytest

from repro.core.noise import GaussianNoiseModel
from repro.core.sts import STS
from repro.eval import grid_covering
from repro.eval.companion import companion_corpus, evaluate_companion_detection
from repro.similarity import CATS, DTW, SST


@pytest.fixture(scope="module")
def corpus():
    # route followers are the hard negatives: same route, minutes later —
    # geometrically identical to true companions.
    return companion_corpus(
        n_companion_pairs=5, n_independents=10, n_route_followers=6, seed=7
    )


def test_companion_detection(benchmark, capsys, corpus):
    grid = grid_covering(corpus.trajectories, corpus.location_error, margin=20.0)
    measures = [
        STS(grid, noise_model=GaussianNoiseModel(corpus.location_error)),
        CATS(epsilon=2.0 * grid.cell_size, tau=30.0),
        SST(spatial_scale=grid.cell_size, temporal_scale=30.0),
        DTW(),
    ]

    def run():
        return [evaluate_companion_detection(m, corpus) for m in measures]

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(f"companion detection [mall] — {results[0].n_positive} true pairs "
              f"among {results[0].n_scored} scored")
        for result in results:
            print(f"  {result}")

    by_name = {r.measure: r for r in results}
    # Shape: STS detects companions essentially perfectly, while the
    # time-blind measure (DTW) ranks the route followers above many true
    # companions — its average precision collapses.
    assert by_name["STS"].auc >= 0.9
    assert by_name["STS"].average_precision >= 0.8
    assert by_name["STS"].average_precision >= by_name["DTW"].average_precision + 0.3
