"""Extension: parameter-sensitivity sweep (Section II claim).

No paper figure exists for this, but the paper's central criticism of
CATS/SST/WGM is their dependence on manually-set thresholds.  The sweep
multiplies each method's scale parameters by 0.25x-4x and tracks matching
precision; the spread (max - min) quantifies sensitivity.  Expected shape:
STS's spread is among the smallest — mis-stating the noise σ by 4x hurts
far less than mis-stating CATS's clue thresholds by 4x.
"""

import numpy as np
import pytest

from repro.eval.experiments import parameter_sensitivity_experiment


@pytest.mark.parametrize("dataset_name", ["mall", "taxi"])
def test_parameter_sensitivity(benchmark, emit, datasets, dataset_name):
    dataset = datasets[dataset_name]
    result = benchmark.pedantic(
        parameter_sensitivity_experiment,
        args=(dataset,),
        kwargs={"seed": 0},
        rounds=1,
        iterations=1,
    )
    emit(result)

    precision = result.metrics["precision"]
    spreads = {m: max(s) - min(s) for m, s in precision.items()}
    with_spread = ", ".join(f"{m}: {v:.3f}" for m, v in sorted(spreads.items()))
    # Shape: STS is not the most parameter-sensitive method of the panel.
    assert spreads["STS"] <= max(spreads.values()), with_spread
    # And at the nominal setting (multiplier 1.0) every method is usable.
    nominal_index = result.x_values.index(1.0)
    assert precision["STS"][nominal_index] >= 0.5
