"""Pairwise-similarity throughput of every measure on both corpora.

Not a paper figure — an operational reference: what one similarity call
costs per method, which is what sizes a deployment (the matching task is
``O(n²)`` calls).  Complements Fig. 12's grid-size/running-time sweep.
"""

import pytest

from repro.eval import default_measures, grid_covering


@pytest.fixture(scope="module")
def pair_setups(request):
    datasets = {
        "mall": request.getfixturevalue("bench_mall"),
        "taxi": request.getfixturevalue("bench_taxi"),
    }
    out = {}
    for name, ds in datasets.items():
        corpus = ds.trajectories
        grid = grid_covering(corpus, ds.cell_size, ds.margin)
        measures = default_measures(grid, corpus, ds.location_error)
        out[name] = (measures, corpus[0], corpus[1])
    return out


@pytest.mark.parametrize("dataset_name", ["mall", "taxi"])
@pytest.mark.parametrize("method", ["STS", "CATS", "SST", "WGM", "APM", "EDwP", "KF"])
def test_similarity_call(benchmark, pair_setups, dataset_name, method):
    measures, a, b = pair_setups[dataset_name]
    measure = measures[method]

    def cold_call():
        # Drop per-trajectory caches so every round measures a cold pair,
        # matching the cost profile of a fresh query against a gallery.
        clear = getattr(measure, "clear_cache", None)
        if clear is not None:
            clear()
        return measure.score(a, b)

    value = benchmark.pedantic(cold_call, rounds=3, iterations=1)
    assert value == value  # finite, not NaN
