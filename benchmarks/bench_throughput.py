"""Pairwise-similarity throughput of every measure on both corpora.

Not a paper figure — an operational reference: what one similarity call
costs per method, which is what sizes a deployment (the matching task is
``O(n²)`` calls).  Complements Fig. 12's grid-size/running-time sweep.

Run directly (``python benchmarks/bench_throughput.py [--quick]``) this
module benchmarks the full-gallery STS pairwise matrix instead: the
per-timestamp baseline path against the batched serial path and the
parallel path at several worker counts — each worker count under both
the pickling transport (``parallel_n{k}``) and the shared-memory arena
(``parallel_shm_n{k}``) — writing mean/p50/p95 wall-clock per
configuration, the resulting speedups, and the measured per-pair
dispatch payload of both transports (``dispatch_payload``) to
``BENCH_throughput.json`` at the repository root.
``--assert-shm-beats-pickling`` turns the arena's value proposition
into a hard exit code: shm must beat pickling on wall time and ship
>= 10x fewer serialized bytes per dispatched pair.
"""

import argparse
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from repro.eval import default_measures, grid_covering  # noqa: E402


@pytest.fixture(scope="module")
def pair_setups(request):
    datasets = {
        "mall": request.getfixturevalue("bench_mall"),
        "taxi": request.getfixturevalue("bench_taxi"),
    }
    out = {}
    for name, ds in datasets.items():
        corpus = ds.trajectories
        grid = grid_covering(corpus, ds.cell_size, ds.margin)
        measures = default_measures(grid, corpus, ds.location_error)
        out[name] = (measures, corpus[0], corpus[1])
    return out


@pytest.mark.parametrize("dataset_name", ["mall", "taxi"])
@pytest.mark.parametrize("method", ["STS", "CATS", "SST", "WGM", "APM", "EDwP", "KF"])
def test_similarity_call(benchmark, pair_setups, dataset_name, method):
    measures, a, b = pair_setups[dataset_name]
    measure = measures[method]

    def cold_call():
        # Drop per-trajectory caches so every round measures a cold pair,
        # matching the cost profile of a fresh query against a gallery.
        clear = getattr(measure, "clear_cache", None)
        if clear is not None:
            clear()
        return measure.score(a, b)

    value = benchmark.pedantic(cold_call, rounds=3, iterations=1)
    assert value == value  # finite, not NaN


# ----------------------------------------------------------------------
# Script mode: gallery-scale pairwise throughput -> BENCH_throughput.json
# ----------------------------------------------------------------------
def _per_t_pairwise(measure, gallery):
    """The seed evaluation path: one ``stp(t)`` call per timestamp.

    This reproduces what the repository did before the batched engine:
    every query time resolved individually, every co-location taken with
    a scalar sparse inner product, and the only memoization a per-time
    result dict (the seed's ``TrajectorySTP._cache``) — hand-rolled here
    because the measure it is given has the estimator-level caches
    disabled (the seed had no kernel / plane-FFT / segment caches to
    disable).
    """
    import numpy as np

    from repro.core.colocation import sparse_inner

    n = len(gallery)
    out = np.zeros((n, n))
    memo: dict[int, dict[float, object]] = {}

    def query(stp, t):
        per_stp = memo.setdefault(id(stp), {})
        hit = per_stp.get(t)
        if hit is None:
            hit = per_stp[t] = stp.stp(t)
        return hit

    for i in range(n):
        for j in range(i, n):
            a, b = gallery[i], gallery[j]
            stp1, stp2 = measure.stp_for(a), measure.stp_for(b)
            times = np.concatenate([a.timestamps, b.timestamps])
            total = 0.0
            for t in times:
                total += sparse_inner(query(stp1, float(t)), query(stp2, float(t)))
            out[i, j] = out[j, i] = total / (len(a) + len(b))
    return out


def run_gallery_benchmark(gallery_size: int, repeats: int, n_jobs_list: list[int]) -> dict:
    """Benchmark the pairwise STS matrix on a taxi gallery of given size."""
    import numpy as np

    from jsonbench import time_config, time_paired
    from repro.core import STS
    from repro.datasets import taxi_dataset

    ds = taxi_dataset(n_trajectories=gallery_size, seed=101, time_window=600.0)
    grid = ds.make_grid()
    gallery = ds.trajectories

    configs: dict[str, dict] = {}
    matrices: dict[str, np.ndarray] = {}

    def make_call(fn, holder, **measure_kwargs):
        def call():
            # A fresh measure per round: every round pays the full
            # estimator build + scoring cost, like a fresh service would.
            measure = STS(grid, cache_size=None, **measure_kwargs)
            holder["matrix"] = fn(measure)

        return call

    def run(label, fn, **measure_kwargs):
        holder = {}
        call = make_call(fn, holder, **measure_kwargs)
        configs[label] = time_config(call, repeats=repeats, warmup=1)
        matrices[label] = holder["matrix"]

    # The baseline disables the estimator-level caches this PR introduced
    # (stp_cache_size=0); _per_t_pairwise re-adds the one memo the seed
    # actually had.  The batched/parallel configs run with defaults.
    # parallel_n* pins shm=False (the historical pickling transport) so
    # parallel_shm_n* isolates what the shared-memory broadcast buys;
    # the two transports are timed interleaved (time_paired) because
    # their difference is transport cost only, easily buried by machine
    # drift if the configs run in separate blocks.
    run("per_t_serial", lambda m: _per_t_pairwise(m, gallery), stp_cache_size=0)
    run("batched_serial", lambda m: m.pairwise(gallery))
    for n_jobs in n_jobs_list:
        pickled, arena = {}, {}
        configs[f"parallel_n{n_jobs}"], configs[f"parallel_shm_n{n_jobs}"] = (
            time_paired(
                make_call(
                    lambda m, n=n_jobs: m.pairwise(gallery, n_jobs=n, shm=False),
                    pickled,
                ),
                make_call(
                    lambda m, n=n_jobs: m.pairwise(gallery, n_jobs=n, shm=True),
                    arena,
                ),
                repeats=repeats,
                warmup=1,
            )
        )
        matrices[f"parallel_n{n_jobs}"] = pickled["matrix"]
        matrices[f"parallel_shm_n{n_jobs}"] = arena["matrix"]

    reference = matrices["batched_serial"]
    for label, matrix in matrices.items():
        configs[label]["max_abs_diff_vs_batched"] = float(
            abs(matrix - reference).max()
        )

    base = configs["per_t_serial"]["mean_s"]
    speedups = {
        label: base / stats["mean_s"] for label, stats in configs.items()
    }
    return {
        "benchmark": "throughput",
        "dataset": "taxi",
        "gallery_size": gallery_size,
        "n_pairs": gallery_size * (gallery_size + 1) // 2,
        "configs": configs,
        "speedup_vs_per_t": speedups,
    }


def measure_dispatch_payload(gallery_size: int, n_workers: int = 2) -> dict:
    """Serialized bytes per dispatched pair, pickling vs shared-memory.

    Counts what actually crosses the process boundary for one pairwise
    run: the pool-initializer payload per worker (measure + collections
    on the pickling path; measure + arena handle on the shm path) plus
    the per-chunk index lists, which both transports ship identically.
    The corpus bytes move to the shared segment, not to zero — that
    one-time cost is reported as ``arena_bytes``.
    """
    import pickle

    from repro.core import STS
    from repro.datasets import taxi_dataset
    from repro.parallel import SharedTrajectoryArena, chunk_pairs

    ds = taxi_dataset(n_trajectories=gallery_size, seed=101, time_window=600.0)
    gallery = ds.trajectories
    measure = STS(ds.make_grid(), cache_size=None)
    n = len(gallery)
    pairs = [(i, j) for i in range(n) for j in range(i, n)]
    chunks = chunk_pairs(pairs, n_workers, 4)
    chunk_bytes = sum(len(pickle.dumps(chunk)) for chunk in chunks)

    pickling_init = len(pickle.dumps((measure, gallery, None)))
    with SharedTrajectoryArena.pack(gallery) as arena:
        shm_init = len(pickle.dumps((measure, arena.handle)))
        arena_bytes = arena.nbytes
    pickling_total = pickling_init * n_workers + chunk_bytes
    shm_total = shm_init * n_workers + chunk_bytes
    return {
        "n_workers": n_workers,
        "n_pairs": len(pairs),
        "chunk_bytes": chunk_bytes,
        "pickling_init_bytes_per_worker": pickling_init,
        "shm_init_bytes_per_worker": shm_init,
        "arena_bytes": arena_bytes,
        "pickling_bytes_per_pair": pickling_total / len(pairs),
        "shm_bytes_per_pair": shm_total / len(pairs),
        "reduction_x": pickling_total / shm_total,
    }


#: Instrumented / uninstrumented wall-time ratio the guard tolerates.
OBS_OVERHEAD_LIMIT = 1.02


def measure_obs_overhead(gallery_size: int, rounds: int = 3) -> dict:
    """Wall time of the batched pairwise path, instrumented vs obs-off.

    Runs interleave (enabled, disabled, enabled, disabled, ...) and the
    per-mode minimum of ``rounds`` runs is compared, so scheduler noise
    hits both modes alike and the ratio reflects instrumentation cost,
    not machine weather.
    """
    import time

    from repro.core import STS
    from repro.datasets import taxi_dataset
    from repro.obs import set_enabled

    ds = taxi_dataset(n_trajectories=gallery_size, seed=101, time_window=600.0)
    grid = ds.make_grid()
    gallery = ds.trajectories

    def run_once() -> float:
        measure = STS(grid, cache_size=None)
        start = time.perf_counter()
        measure.pairwise(gallery)
        return time.perf_counter() - start

    run_once()  # warmup: FFT plans, KDE tables
    enabled_times: list[float] = []
    disabled_times: list[float] = []
    # min-of-10 floor: at quick-mode workload sizes (~0.2 s per run) the
    # environment shows ±4% noise bands lasting several rounds, so the
    # minimum needs enough rounds to catch a quiet window for both modes.
    for _ in range(max(10, rounds)):
        enabled_times.append(run_once())
        previous = set_enabled(False)
        try:
            disabled_times.append(run_once())
        finally:
            set_enabled(previous)
    enabled_s = min(enabled_times)
    disabled_s = min(disabled_times)
    return {
        "enabled_min_s": enabled_s,
        "disabled_min_s": disabled_s,
        "ratio": enabled_s / disabled_s,
        "limit": OBS_OVERHEAD_LIMIT,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="small gallery, single repeat (CI smoke run)",
    )
    parser.add_argument("--gallery-size", type=int, default=None)
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument(
        "--output", default="BENCH_throughput.json",
        help="output filename (written at the repository root)",
    )
    parser.add_argument(
        "--metrics-out", default=None, metavar="FILE",
        help="dump the metrics registry when done "
        "(.json → JSON snapshot, anything else → Prometheus text)",
    )
    parser.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help="dump the span tracer as Chrome trace-event JSON when done",
    )
    parser.add_argument(
        "--no-overhead-guard", action="store_true",
        help="measure but do not enforce the instrumentation overhead limit",
    )
    parser.add_argument(
        "--assert-shm-beats-pickling", action="store_true",
        help="exit non-zero unless parallel_shm_n2 is faster than "
        "parallel_n2 and the dispatch payload shrinks at least 10x",
    )
    parser.add_argument(
        "--shm-tolerance", type=float, default=0.0, metavar="FRAC",
        help="slack for the shm wall-clock guard on noisy shared runners: "
        "accept parallel_shm_n2 mean < parallel_n2 mean * (1 + FRAC) "
        "(default 0.0 = strictly faster)",
    )
    args = parser.parse_args(argv)

    from jsonbench import write_report

    gallery_size = args.gallery_size or (12 if args.quick else 50)
    repeats = args.repeats or (1 if args.quick else 3)
    n_jobs_list = [2] if args.quick else [2, 4]

    report = run_gallery_benchmark(gallery_size, repeats, n_jobs_list)
    report["quick"] = args.quick
    report["dispatch_payload"] = measure_dispatch_payload(gallery_size)
    overhead = measure_obs_overhead(gallery_size, rounds=repeats)
    if overhead["ratio"] > OBS_OVERHEAD_LIMIT:
        # Noise only ever inflates the ratio; one re-measure separates a
        # loaded machine from a real instrumentation regression.
        retry = measure_obs_overhead(gallery_size, rounds=repeats)
        if retry["ratio"] < overhead["ratio"]:
            overhead = retry
    report["obs_overhead"] = overhead
    path = write_report(args.output, report)

    print(f"wrote {path}")
    for label, stats in report["configs"].items():
        print(
            f"  {label:>16}: mean {stats['mean_s']:.3f}s  p50 {stats['p50_s']:.3f}s  "
            f"p95 {stats['p95_s']:.3f}s  speedup x{report['speedup_vs_per_t'][label]:.2f}"
        )
    overhead = report["obs_overhead"]
    print(
        f"  obs overhead: x{overhead['ratio']:.4f} "
        f"(instrumented {overhead['enabled_min_s']:.3f}s vs "
        f"off {overhead['disabled_min_s']:.3f}s, limit x{OBS_OVERHEAD_LIMIT})"
    )

    if args.metrics_out or args.trace_out:
        import json

        from repro.obs import get_registry, get_tracer

        if args.metrics_out:
            registry = get_registry()
            if args.metrics_out.endswith(".json"):
                text = json.dumps(registry.snapshot(), indent=2, sort_keys=True) + "\n"
            else:
                text = registry.to_prometheus()
            Path(args.metrics_out).write_text(text)
            print(f"wrote metrics to {args.metrics_out}")
        if args.trace_out:
            Path(args.trace_out).write_text(
                json.dumps(get_tracer().to_chrome_trace()) + "\n"
            )
            print(f"wrote trace to {args.trace_out}")

    payload = report["dispatch_payload"]
    print(
        f"  dispatch payload: {payload['pickling_bytes_per_pair']:.0f} B/pair "
        f"pickled vs {payload['shm_bytes_per_pair']:.0f} B/pair via arena "
        f"(x{payload['reduction_x']:.1f} smaller; arena {payload['arena_bytes']} B once)"
    )

    if overhead["ratio"] > OBS_OVERHEAD_LIMIT and not args.no_overhead_guard:
        print(
            f"FAIL: instrumentation overhead x{overhead['ratio']:.4f} exceeds "
            f"the x{OBS_OVERHEAD_LIMIT} limit",
            file=sys.stderr,
        )
        return 1
    if args.assert_shm_beats_pickling:
        from repro.parallel.pool import available_cpus

        # The payload reduction is deterministic — no slack, no skipping.
        if payload["reduction_x"] < 10.0:
            print(
                f"FAIL: dispatch payload shrank only x{payload['reduction_x']:.1f} "
                "(expected >= x10)",
                file=sys.stderr,
            )
            return 1
        # The wall-clock leg is only meaningful with real cores: on a
        # single-CPU box both transports time-slice one core and their
        # difference (a few ms of serialization) drowns in scheduler
        # noise, so enforcing it there produces flaky verdicts, not
        # information.  Hosted CI runners are multi-core, where the gate
        # is live.
        shm_mean = report["configs"]["parallel_shm_n2"]["mean_s"]
        pickled_mean = report["configs"]["parallel_n2"]["mean_s"]
        limit = pickled_mean * (1.0 + args.shm_tolerance)
        if available_cpus() < 2:
            print(
                f"  shm wall-clock guard SKIPPED (single CPU): parallel_shm_n2 "
                f"{shm_mean:.3f}s vs parallel_n2 {pickled_mean:.3f}s, "
                f"payload x{payload['reduction_x']:.1f} smaller"
            )
            return 0
        if not shm_mean < limit:
            print(
                f"FAIL: parallel_shm_n2 mean {shm_mean:.3f}s is not below "
                f"parallel_n2 mean {pickled_mean:.3f}s"
                + (
                    f" (+{args.shm_tolerance:.0%} tolerance = {limit:.3f}s)"
                    if args.shm_tolerance
                    else ""
                ),
                file=sys.stderr,
            )
            return 1
        print(
            f"  shm guard OK: parallel_shm_n2 {shm_mean:.3f}s vs "
            f"parallel_n2 {pickled_mean:.3f}s (limit {limit:.3f}s), "
            f"payload x{payload['reduction_x']:.1f} smaller"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
