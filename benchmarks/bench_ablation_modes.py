"""Engineering ablation: S-T probability evaluation modes.

DESIGN.md §5 motivates two optimizations over the paper's literal
``O(|R|²)`` Eq. 4 evaluation: support pruning and FFT convolution.  These
benchmarks measure each mode on a representative mall-scale configuration
and verify they agree numerically — the speedups are free.
"""

import numpy as np
import pytest

from repro.core.grid import Grid
from repro.core.noise import GaussianNoiseModel
from repro.core.speed import KDESpeedModel
from repro.core.stprob import TrajectorySTP
from repro.core.transition import SpeedTransitionModel
from repro.core.trajectory import Trajectory


@pytest.fixture(scope="module")
def setup():
    rng = np.random.default_rng(0)
    n = 30
    ts = np.cumsum(rng.uniform(5, 30, n))
    xs = np.cumsum(rng.normal(1.2, 0.5, n) * np.diff(np.concatenate([[0], ts])))
    ys = 60 + np.cumsum(rng.normal(0, 3.0, n))
    traj = Trajectory.from_arrays(xs, ys, ts)
    grid = Grid(-50, 0, 250, 120, cell_size=3.0)  # mall-scale: ~4000 cells
    noise = GaussianNoiseModel(3.0)
    transition = SpeedTransitionModel(KDESpeedModel.from_trajectory(traj))
    query_times = np.linspace(ts[0] + 1, ts[-1] - 1, 10)
    return traj, grid, noise, transition, query_times


def run_mode(setup_data, mode):
    traj, grid, noise, transition, query_times = setup_data
    stp = TrajectorySTP(traj, grid, noise, transition, mode=mode)
    return [stp.stp_dense(float(t)) for t in query_times]


@pytest.mark.parametrize("mode", ["fft", "pruned", "dense"])
def test_stp_mode_timing(benchmark, setup, mode):
    results = benchmark.pedantic(run_mode, args=(setup, mode), rounds=3, iterations=1)
    # Distributions are normalized at every query time.
    for dense in results:
        assert dense.sum() == pytest.approx(1.0)


def test_modes_agree_on_this_configuration(setup):
    fft = run_mode(setup, "fft")
    pruned = run_mode(setup, "pruned")
    dense = run_mode(setup, "dense")
    for a, b, c in zip(fft, pruned, dense):
        np.testing.assert_allclose(a, c, atol=1e-8)
        np.testing.assert_allclose(b, c, atol=1e-8)
