"""Extension ablation: KDE speed model vs Brownian-bridge Gaussian (STS-B).

Section II of the paper positions the Brownian bridge as the special case
of STS with a Gaussian speed assumption, and argues the non-parametric
KDE matters because real speed distributions are arbitrary.  Mall visitors
are the test case: their walk/dwell behaviour is bimodal (≈1.3 m/s and
≈0 m/s), which a single Gaussian fits poorly.
"""

import numpy as np
import pytest

from repro.core.noise import GaussianNoiseModel
from repro.core.sts import STS, sts_b
from repro.eval import build_matching_pair, evaluate_matching, grid_covering
from repro.simulation.sampling import downsample


@pytest.mark.parametrize("dataset_name", ["mall", "taxi"])
def test_kde_vs_brownian_speed_model(benchmark, emit, datasets, dataset_name):
    dataset = datasets[dataset_name]

    def run():
        rng = np.random.default_rng(0)
        d1_full, d2_full = build_matching_pair(dataset.trajectories)
        d1 = [downsample(t, 0.3, rng) for t in d1_full]
        d2 = [downsample(t, 0.3, rng) for t in d2_full]
        corpus = d1 + d2
        grid = grid_covering(corpus, dataset.cell_size, dataset.margin)
        noise = GaussianNoiseModel(dataset.location_error)
        outcomes = {}
        for measure in (STS(grid, noise_model=noise), sts_b(grid, noise_model=noise)):
            outcomes[measure.name] = evaluate_matching(measure, d1, d2)
        return outcomes

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    from repro.eval.experiments import SweepResult

    table = SweepResult(
        experiment="ablation_brownian",
        dataset=dataset_name,
        x_label="variant (rate=0.3)",
        x_values=[0.3],
    )
    for name, outcome in outcomes.items():
        table.record("precision", name, outcome.precision)
        table.record("mean_rank", name, outcome.mean_rank)
    emit(table)

    # Shape: the KDE speed model is at least as good as the Gaussian one.
    assert outcomes["STS"].precision >= outcomes["STS-B"].precision - 0.10
    assert outcomes["STS"].mean_rank <= outcomes["STS-B"].mean_rank + 0.75
