"""Verification-layer benchmarks: oracle cost and matrix runtime.

The oracle is *supposed* to be slow — it trades every optimization for
auditability — but the verification loop only stays runnable on every
push if "slow" stays within a couple orders of magnitude of production.
These benchmarks track that ratio and the end-to-end cost of the
in-process differential matrix, so a corpus or oracle change that makes
`repro verify` impractically expensive shows up as a number, not as CI
timeouts.
"""

import numpy as np
import pytest

from repro.verify import OracleSTS, run_verification, verification_corpus


@pytest.fixture(scope="module")
def corpus():
    return verification_corpus()


def _score_matrix(measure, corpus):
    out = np.zeros((len(corpus.queries), len(corpus.gallery)))
    for i, q in enumerate(corpus.queries):
        for j, g in enumerate(corpus.gallery):
            out[i, j] = measure.similarity(q, g)
    return out


def test_production_matrix(benchmark, corpus):
    benchmark(lambda: _score_matrix(corpus.measure(), corpus))


def test_oracle_matrix(benchmark, corpus):
    oracle = OracleSTS(corpus.grid, corpus.sigma)
    benchmark(lambda: _score_matrix(oracle, corpus))


def test_inprocess_verification(benchmark, corpus):
    # Serial-comparable paths + the full relation suite; the
    # process-spawning paths are excluded so the benchmark measures
    # verification arithmetic, not fork/exec.
    benchmark(lambda: run_verification(
        paths=["batch", "parallel-thread", "anytime", "oracle"],
        corpus=corpus))


def test_oracle_single_stp(benchmark, corpus):
    # One mid-segment Markov-bridge query: the oracle's unit of work.
    oracle = OracleSTS(corpus.grid, corpus.sigma)
    tra = corpus.gallery[0]
    t = 0.5 * float(tra.timestamps[0] + tra.timestamps[1])
    benchmark(lambda: oracle.stp(tra, t))
