"""Streaming detector throughput: ingest rate, evaluation latency, and
the cost of durability.

Operational reference for the online co-location layer: how many sighting
events per second the sliding window sustains, what one full pairwise
evaluation tick costs at a given number of active devices, and what the
write-ahead log adds on top.

Two ways to run it:

* **pytest-benchmark** (interactive): ``pytest benchmarks/bench_streaming.py``.
* **script mode** (CI / performance tracking):
  ``python benchmarks/bench_streaming.py [--quick]`` measures per-event
  ingest latency (p50/p99) with the WAL off and on across the fsync
  batching knob (``fsync_every`` ∈ {1, 8, 64}), times the full
  streaming pipeline (offer + evaluation tick per traffic epoch) WAL
  off vs on, and writes a bounded-history ``BENCH_streaming.json`` at
  the repository root.  With ``--assert-wal-overhead PCT`` it fails when
  the WAL-on *pipeline* at the default batch size
  (``fsync_every=64``, automatic snapshots on) is more than ``PCT``
  percent slower end-to-end than WAL-off (the CI regression guard; 15%
  by default).

  The guard is deliberately end-to-end: a bare in-memory ingest is ~2 µs,
  so *any* durable journaling — encode, buffer, amortized fsync — is
  multiples of it, and a per-ingest percentage budget would be a vanity
  metric tuned to whatever the hardware does.  What operators actually
  pay is the tick loop, where evaluation dominates; there the journal
  must stay in the noise, and 15% is a real budget.  The raw per-event
  numbers (including ``fsync_every=1``, a durability choice rather than
  a regression) are reported alongside, unguarded.
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path
from time import perf_counter

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

import numpy as np  # noqa: E402
import pytest  # noqa: E402

from repro.core.grid import Grid  # noqa: E402
from repro.streaming import SightingEvent, StreamingColocationDetector  # noqa: E402
from repro.streaming_wal import StreamingWAL  # noqa: E402

N_DEVICES = 8
EVENTS_PER_DEVICE = 30
AREA = (100.0, 60.0)  # mall-sized; positions bounce off the walls

#: The fsync batching settings script mode sweeps, and the one the
#: overhead guard pins (bounded staleness of at most 63 tail records).
FSYNC_SWEEP = (1, 8, 64)
DEFAULT_FSYNC_BATCH = 64


def make_events(seed: int = 5) -> list[SightingEvent]:
    """Reflecting random walks for ``N_DEVICES`` devices, time-sorted."""
    rng = np.random.default_rng(seed)
    events = []
    for d in range(N_DEVICES):
        x, y = rng.uniform(10, AREA[0] - 10), rng.uniform(10, AREA[1] - 10)
        heading = rng.uniform(0, 2 * np.pi)
        t = float(rng.uniform(0, 30))
        for _ in range(EVENTS_PER_DEVICE):
            dt = float(rng.exponential(10.0))
            t += dt
            x += 1.2 * np.cos(heading) * dt + rng.normal(0, 2)
            y += 1.2 * np.sin(heading) * dt + rng.normal(0, 2)
            if not (0 < x < AREA[0] and 0 < y < AREA[1]):
                heading += np.pi / 2 + rng.uniform(0, np.pi / 2)
                x = float(np.clip(x, 1, AREA[0] - 1))
                y = float(np.clip(y, 1, AREA[1] - 1))
            events.append(SightingEvent(f"dev-{d}", float(x), float(y), t))
    events.sort(key=lambda e: e.t)
    return events


def make_grid() -> Grid:
    return Grid(-10, -10, AREA[0] + 10, AREA[1] + 10, cell_size=3.0)


@pytest.fixture(scope="module")
def event_stream():
    return make_events()


@pytest.fixture
def grid():
    return make_grid()


def test_ingest_throughput(benchmark, grid, event_stream):
    def ingest_all():
        detector = StreamingColocationDetector(grid, window=600.0)
        detector.ingest_many(event_stream)
        return len(detector.active_objects)

    active = benchmark(ingest_all)
    assert active > 0


def test_evaluation_tick(benchmark, grid, event_stream):
    detector = StreamingColocationDetector(grid, window=2000.0)
    detector.ingest_many(event_stream)

    scores = benchmark.pedantic(detector.evaluate, rounds=2, iterations=1)
    # all-pairs over the scorable devices
    assert isinstance(scores, list)


def test_wal_pipeline_overhead_bounded(tmp_path):
    """The WAL-on pipeline at the default batch stays within 15% of
    WAL-off end-to-end.

    The same guard script mode enforces with ``--assert-wal-overhead``;
    here it runs on a shorter stream so it rides along with pytest runs
    of this file.  Three attempts absorb scheduler noise — the guard
    must hold at least once.
    """
    epochs = make_epochs(2)
    for attempt in range(3):
        off = pipeline_run(epochs, wal_dir=None)
        on = pipeline_run(epochs, wal_dir=tmp_path / f"wal-{attempt}")
        overhead = 100.0 * (on["total_s"] / off["total_s"] - 1.0)
        if overhead < 15.0:
            return
    pytest.fail(f"WAL pipeline overhead {overhead:.1f}% >= 15% in 3 attempts")


# ----------------------------------------------------------------------
# Script mode: BENCH_streaming.json + the WAL overhead guard
# ----------------------------------------------------------------------
def shifted(events: list[SightingEvent], offset: float) -> list[SightingEvent]:
    return [SightingEvent(e.object_id, e.x, e.y, e.t + offset) for e in events]


def make_epochs(epochs: int) -> list[list[SightingEvent]]:
    """``epochs`` back-to-back copies of the base traffic, time-shifted."""
    base = make_events()
    span = base[-1].t - base[0].t + 30.0
    return [shifted(base, epoch * span) for epoch in range(epochs)]


def make_traffic(epochs: int) -> list[SightingEvent]:
    return [event for epoch in make_epochs(epochs) for event in epoch]


def _percentile_us(latencies_s: list[float], q: float) -> float:
    return float(np.percentile(np.asarray(latencies_s), q) * 1e6)


def ingest_run(
    events: list[SightingEvent],
    wal_dir: Path | None,
    fsync_every: int = DEFAULT_FSYNC_BATCH,
) -> dict:
    """Per-event ingest latency over ``events``, WAL optional."""
    wal = None
    if wal_dir is not None:
        wal = StreamingWAL(
            wal_dir,
            fsync_every=fsync_every,
            snapshot_every=None,  # snapshot cadence is measured separately
            segment_max_records=8192,
        )
    detector = StreamingColocationDetector(
        make_grid(), window=600.0, on_error="skip", wal=wal
    )
    latencies: list[float] = []
    start = perf_counter()
    for event in events:
        t0 = perf_counter()
        detector.ingest(event)
        latencies.append(perf_counter() - t0)
    total = perf_counter() - start
    detector.close()
    return {
        "events": len(events),
        "fsync_every": None if wal_dir is None else fsync_every,
        "total_s": total,
        "events_per_s": len(events) / total,
        "p50_us": _percentile_us(latencies, 50),
        "p99_us": _percentile_us(latencies, 99),
    }


def pipeline_run(
    epochs: list[list[SightingEvent]],
    wal_dir: Path | None,
    fsync_every: int = DEFAULT_FSYNC_BATCH,
) -> dict:
    """The operator's loop: offer one traffic epoch, evaluate, repeat.

    This is the denominator the WAL overhead guard divides by — the
    whole serving tick, not a bare deque append.  Automatic snapshots
    stay on (default cadence) so the guard prices the entire durability
    layer, not just the journal.
    """
    wal = None
    if wal_dir is not None:
        wal = StreamingWAL(wal_dir, fsync_every=fsync_every)
    detector = StreamingColocationDetector(
        make_grid(), window=600.0, on_error="skip", max_pending=4096, wal=wal
    )
    ticks: list[float] = []
    start = perf_counter()
    for epoch in epochs:
        for event in epoch:
            detector.offer(event)
        t0 = perf_counter()
        detector.evaluate()
        ticks.append(perf_counter() - t0)
    total = perf_counter() - start
    detector.close()
    return {
        "ticks": len(ticks),
        "events": sum(len(epoch) for epoch in epochs),
        "fsync_every": None if wal_dir is None else fsync_every,
        "total_s": total,
        "tick_p50_ms": _percentile_us(ticks, 50) / 1000.0,
        "tick_p99_ms": _percentile_us(ticks, 99) / 1000.0,
    }


def main() -> int:
    import argparse

    from jsonbench import write_report

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="short CI-sized run (a few seconds)"
    )
    parser.add_argument(
        "--epochs",
        type=int,
        default=None,
        help="traffic epochs to ingest (default: 8, or 2 with --quick)",
    )
    parser.add_argument(
        "--assert-wal-overhead",
        type=float,
        nargs="?",
        const=15.0,
        default=None,
        metavar="PCT",
        help="fail when the WAL-on pipeline at the default batch size "
        f"(fsync_every={DEFAULT_FSYNC_BATCH}) is more than PCT%% slower "
        "end-to-end than WAL-off (default threshold: 15)",
    )
    args = parser.parse_args()
    epochs_n = args.epochs or (2 if args.quick else 8)

    epochs = make_epochs(epochs_n)
    traffic = [event for epoch in epochs for event in epoch]
    print(f"ingest: {len(traffic)} events, WAL off ...")
    ingest_run(traffic, wal_dir=None)  # warm-up: imports, allocator, cache
    off = ingest_run(traffic, wal_dir=None)
    runs = []
    with tempfile.TemporaryDirectory(prefix="bench-wal-") as scratch:
        for batch in FSYNC_SWEEP:
            print(f"ingest: {len(traffic)} events, WAL on, fsync_every={batch} ...")
            runs.append(
                ingest_run(
                    traffic,
                    wal_dir=Path(scratch) / f"fsync-{batch}",
                    fsync_every=batch,
                )
            )
        print(f"pipeline: {epochs_n} epochs (offer + evaluate), WAL off ...")
        pipe_off = pipeline_run(epochs, wal_dir=None)
        print(
            f"pipeline: {epochs_n} epochs, WAL on, "
            f"fsync_every={DEFAULT_FSYNC_BATCH}, snapshots on ..."
        )
        pipe_on = pipeline_run(epochs, wal_dir=Path(scratch) / "pipeline")
    overhead_pct = 100.0 * (pipe_on["total_s"] / pipe_off["total_s"] - 1.0)

    payload = {
        "benchmark": "streaming",
        "n_devices": N_DEVICES,
        "epochs": epochs_n,
        "ingest_wal_off": off,
        "ingest_wal_on": runs,
        "pipeline_wal_off": pipe_off,
        "pipeline_wal_on": pipe_on,
        "default_fsync_every": DEFAULT_FSYNC_BATCH,
        "wal_pipeline_overhead_pct": overhead_pct,
    }
    path = write_report("BENCH_streaming.json", payload)
    print(f"wrote {path}")
    print(
        f"  ingest, WAL off:             p50 {off['p50_us']:.1f} us  "
        f"p99 {off['p99_us']:.1f} us  ({off['events_per_s']:.0f} ev/s)"
    )
    for run in runs:
        print(
            f"  ingest, WAL fsync_every={run['fsync_every']:>3}: "
            f"p50 {run['p50_us']:.1f} us  p99 {run['p99_us']:.1f} us  "
            f"({run['events_per_s']:.0f} ev/s)"
        )
    print(
        f"  pipeline, WAL off: {pipe_off['total_s']:.3f} s "
        f"(tick p50 {pipe_off['tick_p50_ms']:.1f} ms)"
    )
    print(
        f"  pipeline, WAL on:  {pipe_on['total_s']:.3f} s "
        f"(tick p50 {pipe_on['tick_p50_ms']:.1f} ms)"
    )
    print(f"  WAL pipeline overhead: {overhead_pct:+.1f}%")

    if args.assert_wal_overhead is not None and overhead_pct > args.assert_wal_overhead:
        print(
            f"FAIL: WAL pipeline overhead {overhead_pct:.1f}% exceeds the "
            f"{args.assert_wal_overhead:.1f}% budget at "
            f"fsync_every={DEFAULT_FSYNC_BATCH}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
