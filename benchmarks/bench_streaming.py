"""Streaming detector throughput: ingest rate and evaluation latency.

Operational reference for the online co-location layer: how many sighting
events per second the sliding window sustains, and what one full pairwise
evaluation tick costs at a given number of active devices.
"""

import numpy as np
import pytest

from repro.core.grid import Grid
from repro.streaming import SightingEvent, StreamingColocationDetector

N_DEVICES = 8
EVENTS_PER_DEVICE = 30
AREA = (100.0, 60.0)  # mall-sized; positions bounce off the walls


@pytest.fixture(scope="module")
def event_stream():
    rng = np.random.default_rng(5)
    events = []
    for d in range(N_DEVICES):
        x, y = rng.uniform(10, AREA[0] - 10), rng.uniform(10, AREA[1] - 10)
        heading = rng.uniform(0, 2 * np.pi)
        t = float(rng.uniform(0, 30))
        for _ in range(EVENTS_PER_DEVICE):
            dt = float(rng.exponential(10.0))
            t += dt
            x += 1.2 * np.cos(heading) * dt + rng.normal(0, 2)
            y += 1.2 * np.sin(heading) * dt + rng.normal(0, 2)
            if not (0 < x < AREA[0] and 0 < y < AREA[1]):
                heading += np.pi / 2 + rng.uniform(0, np.pi / 2)
                x = float(np.clip(x, 1, AREA[0] - 1))
                y = float(np.clip(y, 1, AREA[1] - 1))
            events.append(SightingEvent(f"dev-{d}", float(x), float(y), t))
    events.sort(key=lambda e: e.t)
    return events


@pytest.fixture
def grid():
    return Grid(-10, -10, AREA[0] + 10, AREA[1] + 10, cell_size=3.0)


def test_ingest_throughput(benchmark, grid, event_stream):
    def ingest_all():
        detector = StreamingColocationDetector(grid, window=600.0)
        detector.ingest_many(event_stream)
        return len(detector.active_objects)

    active = benchmark(ingest_all)
    assert active > 0


def test_evaluation_tick(benchmark, grid, event_stream):
    detector = StreamingColocationDetector(grid, window=2000.0)
    detector.ingest_many(event_stream)

    scores = benchmark.pedantic(detector.evaluate, rounds=2, iterations=1)
    # all-pairs over the scorable devices
    assert isinstance(scores, list)
