"""Figures 8 & 9: precision / mean rank vs location noise β (Eq. 14).

Both trajectory sets are distorted with Gaussian noise of radius β
(2–8 m mall, 20–100 m taxi).  Paper shape: every method declines as β
grows; STS declines most gracefully, and the gap to the baselines widens
with the noise (Section VI-C, "Effect of location noise").
"""

import numpy as np
import pytest

from repro.eval import noise_experiment


@pytest.mark.parametrize("dataset_name", ["mall", "taxi"])
def test_fig08_09_noise(benchmark, emit, datasets, dataset_name):
    dataset = datasets[dataset_name]
    betas = [0.0, *dataset.noise_levels]
    result = benchmark.pedantic(
        noise_experiment,
        args=(dataset,),
        kwargs={"betas": betas, "seed": 0},
        rounds=1,
        iterations=1,
    )
    emit(result)

    precision = result.metrics["precision"]
    # Shape: STS beats the point/threshold-based baselines; SST is held to
    # the looser "within slack of best" bar (see bench_fig04 note).
    sts_avg = np.mean(precision["STS"])
    for method, series in precision.items():
        if method in ("STS", "SST"):
            continue
        assert sts_avg >= np.mean(series) - 0.02, (method, series)
    best_avg = max(np.mean(series) for series in precision.values())
    assert sts_avg >= best_avg - 0.10
    # Shape: the clean corpus is not harder than the noisiest one (one-query
    # tolerance: genuinely co-driving taxis can flip either way).
    assert precision["STS"][0] >= precision["STS"][-1] - 0.05
