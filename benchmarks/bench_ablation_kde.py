"""Engineering ablation: exact KDE vs interpolation-table evaluation.

The S-T probability inner loops evaluate the speed kernel density at
thousands of points per query; the lookup-table path trades an O(|S|)
kernel sum per point for one `np.interp`.  This benchmark quantifies the
speedup and bounds the approximation error.
"""

import numpy as np
import pytest

from repro.core.speed import KDESpeedModel


@pytest.fixture(scope="module")
def speeds():
    rng = np.random.default_rng(1)
    samples = np.abs(rng.normal(1.3, 0.5, size=40))
    queries = rng.uniform(0.0, 5.0, size=20_000)
    return samples, queries


@pytest.mark.parametrize("approx", [True, False], ids=["interp-table", "exact"])
def test_kde_batch_evaluation(benchmark, speeds, approx):
    samples, queries = speeds
    model = KDESpeedModel(samples, approx=approx)
    result = benchmark(model.transition_weight, queries)
    assert np.asarray(result).shape == queries.shape


def test_interp_error_bounded(speeds):
    samples, queries = speeds
    exact = KDESpeedModel(samples, approx=False)
    approx = KDESpeedModel(samples, approx=True)
    err = np.abs(
        np.asarray(approx.transition_weight(queries))
        - np.asarray(exact.transition_weight(queries))
    )
    assert err.max() < 1e-5
