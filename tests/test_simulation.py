"""Unit tests for the mobility simulation substrate."""

import networkx as nx
import numpy as np
import pytest

from repro.simulation.floorplan import FloorPlan
from repro.simulation.pedestrian import (
    simulate_companions,
    simulate_pedestrian_path,
    simulate_visitors,
)
from repro.simulation.roadnet import RoadNetwork
from repro.simulation.vehicle import simulate_taxi_fleet, simulate_taxi_path


class TestRoadNetwork:
    @pytest.fixture(scope="class")
    def network(self):
        return RoadNetwork.manhattan(n_rows=8, n_cols=8, rng=np.random.default_rng(0))

    def test_connected(self, network):
        assert nx.is_connected(network.graph)

    def test_requires_connected_graph(self):
        g = nx.Graph()
        g.add_node(0, pos=(0, 0))
        g.add_node(1, pos=(1, 1))
        with pytest.raises(ValueError, match="connected"):
            RoadNetwork(g)

    def test_requires_nodes(self):
        with pytest.raises(ValueError, match="node"):
            RoadNetwork(nx.Graph())

    def test_too_small_grid_rejected(self):
        with pytest.raises(ValueError, match="2x2"):
            RoadNetwork.manhattan(n_rows=1, n_cols=5)

    def test_edges_have_lengths(self, network):
        for _u, _v, data in network.graph.edges(data=True):
            assert data["length"] > 0

    def test_bounding_box_sane(self, network):
        min_x, min_y, max_x, max_y = network.bounding_box()
        assert max_x - min_x > 700  # 8 blocks of ~150 m
        assert max_y - min_y > 700

    def test_route_endpoints(self, network):
        rng = np.random.default_rng(1)
        a, b = network.random_od_pair(rng, min_distance=400)
        route = network.route(a, b)
        np.testing.assert_allclose(route[0], network.position(a))
        np.testing.assert_allclose(route[-1], network.position(b))

    def test_od_pair_respects_min_distance(self, network):
        rng = np.random.default_rng(2)
        for _ in range(10):
            a, b = network.random_od_pair(rng, min_distance=600)
            d = np.hypot(*(network.position(a) - network.position(b)))
            assert d >= 600

    def test_od_pair_impossible_distance_raises(self, network):
        rng = np.random.default_rng(3)
        with pytest.raises(RuntimeError, match="O-D pair"):
            network.random_od_pair(rng, min_distance=1e9)

    def test_removal_keeps_connectivity(self):
        net = RoadNetwork.manhattan(
            n_rows=6, n_cols=6, removal_fraction=0.4, rng=np.random.default_rng(4)
        )
        assert nx.is_connected(net.graph)

    def test_deterministic_with_seed(self):
        a = RoadNetwork.manhattan(n_rows=5, n_cols=5, rng=np.random.default_rng(7))
        b = RoadNetwork.manhattan(n_rows=5, n_cols=5, rng=np.random.default_rng(7))
        assert sorted(a.graph.edges()) == sorted(b.graph.edges())


class TestTaxiSimulation:
    @pytest.fixture(scope="class")
    def network(self):
        return RoadNetwork.manhattan(n_rows=8, n_cols=8, rng=np.random.default_rng(0))

    def test_path_is_time_ordered(self, network):
        path = simulate_taxi_path(network, np.random.default_rng(1))
        assert np.all(np.diff(path.t) >= 0)

    def test_path_speeds_plausible(self, network):
        path = simulate_taxi_path(network, np.random.default_rng(2))
        seg = np.diff(path.xy, axis=0)
        dt = np.diff(path.t)
        speeds = np.hypot(seg[:, 0], seg[:, 1])[dt > 0] / dt[dt > 0]
        assert (speeds > 0.3).all()
        assert (speeds < 31.0).all()

    def test_min_trip_distance_honored(self, network):
        path = simulate_taxi_path(network, np.random.default_rng(3), min_trip_distance=800)
        start = path.xy[0]
        end = path.xy[-1]
        assert np.hypot(*(end - start)) >= 800 * 0.99

    def test_start_time_offset(self, network):
        path = simulate_taxi_path(network, np.random.default_rng(4), start_time=500.0)
        assert path.start_time == pytest.approx(500.0)

    def test_fleet_size_and_ids(self, network):
        fleet = simulate_taxi_fleet(network, 5, np.random.default_rng(5))
        assert len(fleet) == 5
        assert len({p.object_id for p in fleet}) == 5

    def test_fleet_start_times_spread(self, network):
        fleet = simulate_taxi_fleet(network, 20, np.random.default_rng(6), time_window=3600)
        starts = [p.start_time for p in fleet]
        assert max(starts) - min(starts) > 600

    def test_fleet_invalid_count(self, network):
        with pytest.raises(ValueError):
            simulate_taxi_fleet(network, 0, np.random.default_rng(0))


class TestFloorPlan:
    @pytest.fixture(scope="class")
    def plan(self):
        return FloorPlan.generate(rng=np.random.default_rng(0))

    def test_connected(self, plan):
        assert nx.is_connected(plan.graph)

    def test_has_stores_and_corridors(self, plan):
        assert len(plan.stores) > 0
        assert len(plan.corridors) > 0

    def test_store_nodes_kind(self, plan):
        for s in plan.stores:
            assert plan.graph.nodes[s]["kind"] == "store"

    def test_too_small_lattice_rejected(self):
        with pytest.raises(ValueError, match="2x2"):
            FloorPlan.generate(n_corridors_x=1)

    def test_route_walkable(self, plan):
        rng = np.random.default_rng(1)
        a = plan.random_entrance(rng)
        b = plan.random_store(rng)
        route = plan.route(a, b)
        np.testing.assert_allclose(route[0], plan.position(a))
        np.testing.assert_allclose(route[-1], plan.position(b))

    def test_entrance_on_boundary(self, plan):
        rng = np.random.default_rng(2)
        min_x, min_y, max_x, max_y = plan.bounding_box()
        corridor_pts = np.array([plan.position(n) for n in plan.corridors])
        cmn, cmx = corridor_pts.min(axis=0), corridor_pts.max(axis=0)
        for _ in range(10):
            e = plan.random_entrance(rng)
            x, y = plan.position(e)
            assert x in (cmn[0], cmx[0]) or y in (cmn[1], cmx[1])


class TestPedestrianSimulation:
    @pytest.fixture(scope="class")
    def plan(self):
        return FloorPlan.generate(rng=np.random.default_rng(0))

    def test_path_time_ordered(self, plan):
        path = simulate_pedestrian_path(plan, np.random.default_rng(1))
        assert np.all(np.diff(path.t) >= 0)

    def test_walking_speeds_human(self, plan):
        path = simulate_pedestrian_path(plan, np.random.default_rng(2))
        seg = np.diff(path.xy, axis=0)
        dt = np.diff(path.t)
        moving = np.hypot(seg[:, 0], seg[:, 1]) > 1e-9
        speeds = np.hypot(seg[moving, 0], seg[moving, 1]) / dt[moving]
        assert (speeds < 3.1).all()

    def test_dwell_creates_stationary_segments(self, plan):
        path = simulate_pedestrian_path(plan, np.random.default_rng(3), dwell_mean=300.0)
        seg = np.diff(path.xy, axis=0)
        dt = np.diff(path.t)
        stationary = (np.hypot(seg[:, 0], seg[:, 1]) < 1e-9) & (dt > 1.0)
        assert stationary.any()

    def test_invalid_stops(self, plan):
        with pytest.raises(ValueError):
            simulate_pedestrian_path(plan, np.random.default_rng(0), n_stops=0)

    def test_visitors_spread_and_ids(self, plan):
        visitors = simulate_visitors(plan, 8, np.random.default_rng(4))
        assert len(visitors) == 8
        assert len({v.object_id for v in visitors}) == 8

    def test_visitors_invalid_count(self, plan):
        with pytest.raises(ValueError):
            simulate_visitors(plan, 0, np.random.default_rng(0))

    def test_companions_colocated(self, plan):
        leader, follower = simulate_companions(
            plan, np.random.default_rng(5), lateral_offset=1.0
        )
        assert leader.start_time == follower.start_time
        # At every shared instant the two are exactly 1 m apart.
        for frac in [0.0, 0.25, 0.5, 0.75, 1.0]:
            t = leader.start_time + frac * (leader.end_time - leader.start_time)
            la = np.array(leader.locate(t))
            fo = np.array(follower.locate(t))
            assert np.hypot(*(la - fo)) == pytest.approx(1.0, abs=1e-9)
