"""Unit tests for co-location probability (Eq. 8–9, Algorithm 1)."""

import numpy as np
import pytest

from repro.core.colocation import (
    colocation_probability,
    colocation_series,
    sparse_inner,
)
from repro.core.grid import Grid
from repro.core.noise import DeterministicNoiseModel, GaussianNoiseModel
from repro.core.speed import KDESpeedModel
from repro.core.stprob import TrajectorySTP
from repro.core.transition import SpeedTransitionModel
from repro.core.trajectory import Trajectory


def make_stp(traj, grid, noise=None):
    noise = noise if noise is not None else GaussianNoiseModel(2.0)
    transition = SpeedTransitionModel(KDESpeedModel.from_trajectory(traj, approx=False))
    return TrajectorySTP(traj, grid, noise, transition)


@pytest.fixture
def grid():
    return Grid(0, 0, 40, 20, cell_size=2.0)


class TestSparseInner:
    def test_disjoint_supports(self):
        a = (np.array([0, 1]), np.array([0.5, 0.5]))
        b = (np.array([2, 3]), np.array([0.5, 0.5]))
        assert sparse_inner(a, b) == 0.0

    def test_identical_point_masses(self):
        a = (np.array([7]), np.array([1.0]))
        assert sparse_inner(a, a) == pytest.approx(1.0)

    def test_partial_overlap(self):
        a = (np.array([0, 1, 2]), np.array([0.2, 0.3, 0.5]))
        b = (np.array([1, 2, 3]), np.array([0.4, 0.1, 0.5]))
        assert sparse_inner(a, b) == pytest.approx(0.3 * 0.4 + 0.5 * 0.1)

    def test_empty_distribution(self):
        empty = (np.empty(0, dtype=int), np.empty(0))
        a = (np.array([0]), np.array([1.0]))
        assert sparse_inner(a, empty) == 0.0
        assert sparse_inner(empty, empty) == 0.0

    def test_bounded_by_one(self, rng):
        for _ in range(20):
            cells = np.sort(rng.choice(100, size=10, replace=False))
            pa = rng.dirichlet(np.ones(10))
            pb = rng.dirichlet(np.ones(10))
            value = sparse_inner((cells, pa), (cells, pb))
            assert 0.0 <= value <= 1.0

    def test_matches_dense_dot(self, rng):
        cells_a = np.sort(rng.choice(50, size=8, replace=False))
        cells_b = np.sort(rng.choice(50, size=12, replace=False))
        pa = rng.dirichlet(np.ones(8))
        pb = rng.dirichlet(np.ones(12))
        dense_a = np.zeros(50)
        dense_a[cells_a] = pa
        dense_b = np.zeros(50)
        dense_b[cells_b] = pb
        assert sparse_inner((cells_a, pa), (cells_b, pb)) == pytest.approx(dense_a @ dense_b)


class TestColocationProbability:
    def test_same_trajectory_high(self, grid):
        traj = Trajectory.from_arrays([2, 6, 10], [10, 10, 10], [0, 4, 8])
        stp = make_stp(traj, grid, noise=DeterministicNoiseModel())
        assert colocation_probability(stp, stp, 4.0) == pytest.approx(1.0)

    def test_far_apart_low(self, grid):
        a = Trajectory.from_arrays([2, 6], [2, 2], [0, 4])
        b = Trajectory.from_arrays([2, 6], [18, 18], [0, 4])
        cp = colocation_probability(make_stp(a, grid), make_stp(b, grid), 2.0)
        assert cp < 1e-6

    def test_no_temporal_overlap_zero(self, grid):
        a = Trajectory.from_arrays([2, 6], [10, 10], [0, 4])
        b = Trajectory.from_arrays([2, 6], [10, 10], [100, 104])
        assert colocation_probability(make_stp(a, grid), make_stp(b, grid), 2.0) == 0.0
        assert colocation_probability(make_stp(a, grid), make_stp(b, grid), 102.0) == 0.0

    def test_colocated_people_with_noise(self, grid):
        # Same true path, independently noisy observations: CP should be
        # clearly above the far-apart case.
        rng = np.random.default_rng(0)
        base_x = np.array([2.0, 6.0, 10.0, 14.0])
        ts = np.array([0.0, 4.0, 8.0, 12.0])
        a = Trajectory.from_arrays(base_x + rng.normal(0, 1, 4), 10 + rng.normal(0, 1, 4), ts)
        b = Trajectory.from_arrays(base_x + rng.normal(0, 1, 4), 10 + rng.normal(0, 1, 4), ts)
        cp = colocation_probability(make_stp(a, grid), make_stp(b, grid), 4.0)
        assert cp > 0.05

    def test_series_matches_pointwise(self, grid):
        a = Trajectory.from_arrays([2, 6, 10], [10, 10, 10], [0, 4, 8])
        b = Trajectory.from_arrays([3, 7, 11], [10, 10, 10], [1, 5, 9])
        sa, sb = make_stp(a, grid), make_stp(b, grid)
        times = np.array([0.0, 2.0, 5.0])
        series = colocation_series(sa, sb, times)
        for t, v in zip(times, series):
            assert v == pytest.approx(colocation_probability(sa, sb, float(t)))

    def test_symmetric(self, grid):
        a = Trajectory.from_arrays([2, 6, 10], [8, 10, 12], [0, 4, 8])
        b = Trajectory.from_arrays([4, 8, 12], [10, 10, 10], [1, 5, 9])
        sa, sb = make_stp(a, grid), make_stp(b, grid)
        for t in [1.0, 3.0, 7.5]:
            assert colocation_probability(sa, sb, t) == pytest.approx(
                colocation_probability(sb, sa, t)
            )
