"""Public-API surface checks: exports resolve, public items are documented."""

import importlib
import inspect
import pkgutil

import pytest

import repro

MODULES = [
    name
    for _, name, _ in pkgutil.walk_packages(repro.__path__, prefix="repro.")
    if not name.endswith("__main__")
]


@pytest.mark.parametrize("module_name", MODULES)
def test_module_imports_and_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} lacks a module docstring"


@pytest.mark.parametrize("module_name", [m for m in MODULES if "cli" not in m])
def test_all_exports_resolve(module_name):
    module = importlib.import_module(module_name)
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{module_name}.__all__ lists missing {name!r}"


def _public_items():
    items = []
    for module_name in MODULES:
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            obj = getattr(module, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if obj.__module__.startswith("repro"):
                    items.append((f"{module_name}.{name}", obj))
    return items


@pytest.mark.parametrize("qualname,obj", _public_items())
def test_public_items_documented(qualname, obj):
    assert inspect.getdoc(obj), f"{qualname} lacks a docstring"


@pytest.mark.parametrize(
    "qualname,obj",
    [(q, o) for q, o in _public_items() if inspect.isclass(o)],
)
def test_public_classes_document_their_methods(qualname, obj):
    for name, member in inspect.getmembers(obj, predicate=inspect.isfunction):
        if name.startswith("_") or member.__module__ is None:
            continue
        if not member.__module__.startswith("repro"):
            continue
        assert inspect.getdoc(member), f"{qualname}.{name} lacks a docstring"


def test_top_level_version():
    assert repro.__version__
    assert all(part.isdigit() for part in repro.__version__.split("."))
