"""Unit tests for the uniform spatial grid."""

import numpy as np
import pytest

from repro.core.grid import Grid


class TestConstruction:
    def test_cell_counts(self, small_grid):
        assert small_grid.n_cols == 10
        assert small_grid.n_rows == 10
        assert small_grid.n_cells == 100

    def test_non_divisible_extent_rounds_up(self):
        grid = Grid(0, 0, 10.5, 4.1, cell_size=2.0)
        assert grid.n_cols == 6
        assert grid.n_rows == 3
        assert grid.max_x == 12.0
        assert grid.max_y == 6.0

    def test_invalid_cell_size(self):
        with pytest.raises(ValueError, match="cell_size"):
            Grid(0, 0, 10, 10, cell_size=0.0)
        with pytest.raises(ValueError, match="cell_size"):
            Grid(0, 0, 10, 10, cell_size=-1.0)

    def test_invalid_extent(self):
        with pytest.raises(ValueError, match="extent"):
            Grid(0, 0, 0, 10, cell_size=1.0)
        with pytest.raises(ValueError, match="extent"):
            Grid(5, 0, 4, 10, cell_size=1.0)

    def test_covering_points(self):
        pts = np.array([[1.0, 2.0], [9.0, 14.0]])
        grid = Grid.covering(pts, cell_size=3.0)
        assert grid.min_x <= 1.0 and grid.min_y <= 2.0
        assert grid.max_x >= 9.0 and grid.max_y >= 14.0

    def test_covering_with_margin(self):
        pts = np.array([[0.0, 0.0], [10.0, 10.0]])
        grid = Grid.covering(pts, cell_size=1.0, margin=5.0)
        assert grid.min_x <= -5.0
        assert grid.max_x >= 15.0

    def test_covering_single_point(self):
        grid = Grid.covering(np.array([[3.0, 3.0]]), cell_size=2.0)
        assert grid.n_cells >= 1
        assert grid.cell_of(3.0, 3.0) >= 0

    def test_covering_empty_raises(self):
        with pytest.raises(ValueError, match="zero points"):
            Grid.covering(np.empty((0, 2)), cell_size=1.0)

    def test_equality_and_hash(self):
        a = Grid(0, 0, 10, 10, 2.0)
        b = Grid(0, 0, 10, 10, 2.0)
        c = Grid(0, 0, 10, 10, 5.0)
        assert a == b and hash(a) == hash(b)
        assert a != c


class TestMapping:
    def test_cell_of_origin(self, small_grid):
        assert small_grid.cell_of(0.1, 0.1) == 0

    def test_cell_of_row_major(self, small_grid):
        # one row up = +n_cols
        assert small_grid.cell_of(0.1, 2.1) == small_grid.n_cols

    def test_cell_of_clamps_outside(self, small_grid):
        assert small_grid.cell_of(-100.0, -100.0) == 0
        assert small_grid.cell_of(100.0, 100.0) == small_grid.n_cells - 1

    def test_cells_of_matches_scalar(self, small_grid, rng):
        pts = rng.uniform(-5, 25, size=(50, 2))
        vector = small_grid.cells_of(pts)
        scalar = [small_grid.cell_of(x, y) for x, y in pts]
        np.testing.assert_array_equal(vector, scalar)

    def test_center_roundtrip(self, small_grid):
        for idx in [0, 5, 37, 99]:
            cx, cy = small_grid.center_of(idx)
            assert small_grid.cell_of(cx, cy) == idx

    def test_center_of_out_of_range(self, small_grid):
        with pytest.raises(IndexError):
            small_grid.center_of(100)
        with pytest.raises(IndexError):
            small_grid.center_of(-1)

    def test_centers_shape_and_order(self, small_grid):
        centers = small_grid.centers()
        assert centers.shape == (100, 2)
        np.testing.assert_allclose(centers[0], [1.0, 1.0])
        np.testing.assert_allclose(centers[1], [3.0, 1.0])  # next column
        np.testing.assert_allclose(centers[10], [1.0, 3.0])  # next row

    def test_centers_read_only_and_cached(self, small_grid):
        centers = small_grid.centers()
        assert centers is small_grid.centers()
        with pytest.raises(ValueError):
            centers[0, 0] = 1e9


class TestRangeQueries:
    def test_cells_within_zero_radius(self, small_grid):
        # radius 0 around a cell center returns exactly that cell
        cx, cy = small_grid.center_of(55)
        cells = small_grid.cells_within(cx, cy, 0.0)
        np.testing.assert_array_equal(cells, [55])

    def test_cells_within_matches_bruteforce(self, small_grid, rng):
        centers = small_grid.centers()
        for _ in range(20):
            x, y = rng.uniform(-2, 22, size=2)
            radius = rng.uniform(0, 15)
            expected = np.nonzero(np.hypot(centers[:, 0] - x, centers[:, 1] - y) <= radius)[0]
            got = small_grid.cells_within(x, y, radius)
            np.testing.assert_array_equal(got, expected)

    def test_cells_within_far_away_empty(self, small_grid):
        assert len(small_grid.cells_within(1000.0, 1000.0, 5.0)) == 0

    def test_cells_within_negative_radius_raises(self, small_grid):
        with pytest.raises(ValueError, match="radius"):
            small_grid.cells_within(0, 0, -1.0)

    def test_cells_within_sorted(self, small_grid):
        cells = small_grid.cells_within(10.0, 10.0, 6.0)
        assert np.all(np.diff(cells) > 0)

    def test_distances_from_all(self, small_grid):
        d = small_grid.distances_from(1.0, 1.0)
        assert d.shape == (100,)
        assert d[0] == pytest.approx(0.0)

    def test_distances_from_subset(self, small_grid):
        d = small_grid.distances_from(1.0, 1.0, cells=[0, 1])
        assert d.shape == (2,)
        assert d[1] == pytest.approx(2.0)


class TestCoarsen:
    def test_factor_one_is_identity(self, small_grid):
        assert small_grid.coarsen(1) is small_grid

    def test_factor_two_merges_cells(self, small_grid):
        coarse = small_grid.coarsen(2)
        assert coarse.cell_size == 4.0
        assert coarse.n_cols == 5 and coarse.n_rows == 5
        assert (coarse.min_x, coarse.min_y) == (small_grid.min_x, small_grid.min_y)

    def test_coarse_grid_covers_original_extent(self):
        grid = Grid(1.0, 2.0, 11.5, 8.1, cell_size=2.0)
        for factor in (2, 3, 4):
            coarse = grid.coarsen(factor)
            assert coarse.min_x == grid.min_x and coarse.min_y == grid.min_y
            assert coarse.max_x >= grid.max_x and coarse.max_y >= grid.max_y
            assert coarse.cell_size == grid.cell_size * factor

    def test_every_point_keeps_a_cell(self, small_grid, rng):
        coarse = small_grid.coarsen(4)
        pts = rng.uniform(0, 20, size=(50, 2))
        for x, y in pts:
            assert 0 <= coarse.cell_of(x, y) < coarse.n_cells

    def test_invalid_factor(self, small_grid):
        with pytest.raises(ValueError, match="factor"):
            small_grid.coarsen(0)
        with pytest.raises(ValueError, match="factor"):
            small_grid.coarsen(1.5)
