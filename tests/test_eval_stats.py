"""Unit tests for bootstrap CIs and paired method comparison."""

import numpy as np
import pytest

from repro.eval.stats import (
    ConfidenceInterval,
    PairedComparison,
    bootstrap_ci,
    compare_ranks,
)


class TestBootstrapCI:
    def test_contains_point_estimate(self):
        ranks = np.array([1.0, 1.0, 2.0, 1.0, 3.0, 1.0])
        ci = bootstrap_ci(ranks, "precision")
        assert ci.estimate in ci
        assert ci.low <= ci.estimate <= ci.high

    def test_degenerate_all_perfect(self):
        ci = bootstrap_ci(np.ones(10), "precision")
        assert ci.estimate == 1.0
        assert ci.low == 1.0 and ci.high == 1.0

    def test_mean_rank_metric(self):
        ranks = np.array([1.0, 3.0, 5.0])
        ci = bootstrap_ci(ranks, "mean_rank")
        assert ci.estimate == pytest.approx(3.0)
        assert ci.low >= 1.0

    def test_custom_metric(self):
        ranks = np.array([1.0, 2.0, 9.0])
        ci = bootstrap_ci(ranks, metric=lambda r: float(np.median(r)))
        assert ci.estimate == 2.0

    def test_width_shrinks_with_more_queries(self):
        rng = np.random.default_rng(0)
        small = rng.integers(1, 5, size=10).astype(float)
        big = np.tile(small, 40)
        ci_small = bootstrap_ci(small, "mean_rank", seed=1)
        ci_big = bootstrap_ci(big, "mean_rank", seed=1)
        assert (ci_big.high - ci_big.low) < (ci_small.high - ci_small.low)

    def test_deterministic_given_seed(self):
        ranks = np.array([1.0, 2.0, 1.0, 4.0])
        a = bootstrap_ci(ranks, "precision", seed=7)
        b = bootstrap_ci(ranks, "precision", seed=7)
        assert (a.low, a.high) == (b.low, b.high)

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_ci(np.array([]), "precision")
        with pytest.raises(ValueError):
            bootstrap_ci(np.ones(3), "precision", confidence=1.5)
        with pytest.raises(ValueError):
            bootstrap_ci(np.ones(3), "precision", n_resamples=0)
        with pytest.raises(ValueError):
            bootstrap_ci(np.ones(3), "nope")

    def test_str(self):
        ci = ConfidenceInterval(0.5, 0.3, 0.7, 0.95)
        assert "0.500" in str(ci) and "95%" in str(ci)


class TestCompareRanks:
    def test_clear_winner(self):
        a = np.ones(20)
        b = np.full(20, 5.0)
        outcome = compare_ranks(a, b)
        assert outcome.wins_a == 20
        assert outcome.wins_b == 0
        assert outcome.significant(0.05)

    def test_identical_methods(self):
        ranks = np.array([1.0, 2.0, 3.0])
        outcome = compare_ranks(ranks, ranks)
        assert outcome.ties == 3
        assert outcome.p_value == 1.0
        assert not outcome.significant()

    def test_balanced_split_not_significant(self):
        a = np.array([1.0, 2.0] * 10)
        b = np.array([2.0, 1.0] * 10)
        outcome = compare_ranks(a, b)
        assert outcome.wins_a == outcome.wins_b == 10
        assert not outcome.significant()

    def test_counts_partition_queries(self):
        a = np.array([1.0, 2.0, 2.0, 4.0])
        b = np.array([2.0, 2.0, 1.0, 4.0])
        outcome = compare_ranks(a, b)
        assert outcome.n == 4
        assert (outcome.wins_a, outcome.wins_b, outcome.ties) == (1, 1, 2)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="align"):
            compare_ranks(np.ones(3), np.ones(4))

    def test_empty(self):
        with pytest.raises(ValueError, match="empty"):
            compare_ranks(np.array([]), np.array([]))

    def test_str(self):
        outcome = PairedComparison(3, 1, 2, 0.62)
        assert "3" in str(outcome) and "p=0.62" in str(outcome)

    def test_small_advantage_needs_evidence(self):
        # 6-4 split: not significant at 0.05
        a = np.array([1.0] * 6 + [3.0] * 4)
        b = np.array([2.0] * 10)
        assert not compare_ranks(a, b).significant(0.05)
