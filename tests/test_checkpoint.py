"""Unit tests for the atomic checkpoint journals of :mod:`repro.checkpoint`."""

from __future__ import annotations

import json

import pytest

from repro.checkpoint import (
    ExperimentCheckpoint,
    PairwiseCheckpoint,
    write_json_atomic,
)
from repro.datasets.synthetic import taxi_dataset
from repro.errors import CheckpointError, ReproError
from repro.eval import runner as runner_mod
from repro.eval.runner import run_all_experiments


class TestWriteJsonAtomic:
    def test_round_trips_and_leaves_no_temporary_file(self, tmp_path):
        target = tmp_path / "state.json"
        payload = {"a": 1, "scores": [0.1, 0.2]}
        write_json_atomic(target, payload)
        assert json.loads(target.read_text()) == payload
        assert list(tmp_path.iterdir()) == [target]

    def test_overwrites_atomically(self, tmp_path):
        target = tmp_path / "state.json"
        write_json_atomic(target, {"gen": 1})
        write_json_atomic(target, {"gen": 2})
        assert json.loads(target.read_text()) == {"gen": 2}
        assert list(tmp_path.iterdir()) == [target]

    def test_float_repr_round_trip_is_exact(self, tmp_path):
        # The bitwise-identical-resume guarantee rests on this.
        target = tmp_path / "floats.json"
        values = [0.1, 1 / 3, 2**-52, 1e308, 0.30000000000000004]
        write_json_atomic(target, {"v": values})
        assert json.loads(target.read_text())["v"] == values


class TestPairwiseCheckpoint:
    FP = {"kind": "pairwise", "n_pairs": 3, "n_chunks": 2}

    def test_record_and_reload(self, tmp_path):
        path = tmp_path / "journal.json"
        ckpt = PairwiseCheckpoint(path, self.FP)
        ckpt.record(0, [(0, 0, 1.0), (0, 2, 0.25)])
        ckpt.record(1, [(1, 1, 1.0)])
        reloaded = PairwiseCheckpoint(path, self.FP)
        assert reloaded.completed == {
            0: [(0, 0, 1.0), (0, 2, 0.25)],
            1: [(1, 1, 1.0)],
        }

    def test_flush_every_batches_writes(self, tmp_path):
        path = tmp_path / "journal.json"
        ckpt = PairwiseCheckpoint(path, self.FP, flush_every=2)
        ckpt.record(0, [(0, 0, 1.0)])
        assert not path.exists()  # first record only buffered
        ckpt.record(1, [(1, 1, 1.0)])
        assert path.exists()

    def test_fingerprint_mismatch_raises(self, tmp_path):
        path = tmp_path / "journal.json"
        PairwiseCheckpoint(path, self.FP).record(0, [(0, 0, 1.0)])
        with pytest.raises(CheckpointError, match="different run"):
            PairwiseCheckpoint(path, {**self.FP, "n_chunks": 99})

    def test_corrupt_file_raises(self, tmp_path):
        path = tmp_path / "journal.json"
        path.write_text("{not json")
        with pytest.raises(CheckpointError, match="unreadable"):
            PairwiseCheckpoint(path, self.FP)

    def test_checkpoint_error_is_a_repro_error(self):
        assert issubclass(CheckpointError, ReproError)

    def test_flush_every_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError):
            PairwiseCheckpoint(tmp_path / "j.json", self.FP, flush_every=0)


class TestExperimentCheckpoint:
    FP = {"dataset": "taxi", "seed": 0}

    def test_store_and_load(self, tmp_path):
        ckpt = ExperimentCheckpoint(tmp_path, self.FP)
        assert ckpt.load("fig10") is None
        ckpt.store("fig10", {"metric": [1.0, 2.0]}, 3.5)
        result, runtime = ckpt.load("fig10")
        assert result == {"metric": [1.0, 2.0]}
        assert runtime == 3.5

    def test_different_configs_coexist_in_one_directory(self, tmp_path):
        # The fingerprint hash in the filename keeps runs with different
        # configurations from colliding: each sees only its own journal.
        ckpt_a = ExperimentCheckpoint(tmp_path, self.FP)
        ckpt_b = ExperimentCheckpoint(tmp_path, {"dataset": "taxi", "seed": 1})
        ckpt_a.store("fig10", {"metric": [1.0]}, 1.0)
        ckpt_b.store("fig10", {"metric": [2.0]}, 2.0)
        assert ckpt_a.load("fig10")[0] == {"metric": [1.0]}
        assert ckpt_b.load("fig10")[0] == {"metric": [2.0]}
        assert len(list(tmp_path.glob("fig10-*.json"))) == 2

    def test_filename_includes_fingerprint_hash(self, tmp_path):
        ckpt = ExperimentCheckpoint(tmp_path, self.FP)
        ckpt.store("fig10", {}, 0.0)
        (only,) = tmp_path.iterdir()
        assert only.name == f"fig10-{ckpt.fingerprint_hash}.json"
        assert ckpt.fingerprint_hash in only.name

    def test_legacy_unhashed_journal_is_resumed_when_matching(self, tmp_path):
        # Journals written before filenames carried the hash are still
        # honoured — but only when the embedded fingerprint matches.
        write_json_atomic(
            tmp_path / "fig10.json",
            {"version": 1, "fingerprint": self.FP, "result": {"m": [9.0]}, "runtime": 4.0},
        )
        assert ExperimentCheckpoint(tmp_path, self.FP).load("fig10") == ({"m": [9.0]}, 4.0)
        other = ExperimentCheckpoint(tmp_path, {"dataset": "taxi", "seed": 1})
        assert other.load("fig10") is None  # not ours; recompute, don't error

    def test_tampered_hashed_journal_still_raises(self, tmp_path):
        # The load-time fingerprint check stays: a hand-renamed file from
        # another run must not be spliced in silently.
        ckpt = ExperimentCheckpoint(tmp_path, self.FP)
        other = ExperimentCheckpoint(tmp_path, {"dataset": "taxi", "seed": 1})
        other.store("fig10", {}, 0.0)
        (other._path("fig10")).rename(ckpt._path("fig10"))
        with pytest.raises(CheckpointError, match="different run"):
            ckpt.load("fig10")


class TestRunnerCheckpointing:
    def test_checkpointed_rerun_skips_completed_experiments(
        self, tmp_path, monkeypatch
    ):
        calls = {"n": 0}
        real_runner, label = runner_mod._EXPERIMENTS["fig10"]

        def counting_runner(dataset, seed=0):
            calls["n"] += 1
            return real_runner(dataset, seed=seed)

        monkeypatch.setitem(
            runner_mod._EXPERIMENTS, "fig10", (counting_runner, label)
        )
        dataset = taxi_dataset(n_trajectories=4, seed=4)
        first = run_all_experiments(
            dataset, only=["fig10"], checkpoint_dir=str(tmp_path)
        )
        assert calls["n"] == 1
        assert first.resumed == []

        second = run_all_experiments(
            dataset, only=["fig10"], checkpoint_dir=str(tmp_path)
        )
        assert calls["n"] == 1  # not re-invoked
        assert second.resumed == ["fig10"]
        assert (
            second.results["fig10"].to_dict() == first.results["fig10"].to_dict()
        )
