"""Unit tests for the classic measures: DTW, LCSS, EDR, ERP, Fréchet, Hausdorff."""

import numpy as np
import pytest

from repro.core.trajectory import Trajectory
from repro.similarity import (
    DTW,
    EDR,
    ERP,
    LCSS,
    Frechet,
    Hausdorff,
    dtw_distance,
    edr_distance,
    erp_distance,
    frechet_distance,
    hausdorff_distance,
    lcss_similarity,
)

SQUARE = np.array([[0.0, 0.0], [1.0, 0.0], [1.0, 1.0], [0.0, 1.0]])
LINE = np.array([[0.0, 0.0], [1.0, 0.0], [2.0, 0.0]])


def traj(xy, ts=None):
    xy = np.asarray(xy, dtype=float)
    ts = np.arange(len(xy), dtype=float) if ts is None else ts
    return Trajectory.from_arrays(xy[:, 0], xy[:, 1], ts)


class TestDTW:
    def test_identical_is_zero(self):
        assert dtw_distance(SQUARE, SQUARE) == pytest.approx(0.0)

    def test_known_value(self):
        a = np.array([[0.0, 0.0], [1.0, 0.0]])
        b = np.array([[0.0, 1.0], [1.0, 1.0]])
        # optimal alignment pairs index-to-index at distance 1 each
        assert dtw_distance(a, b) == pytest.approx(2.0)

    def test_symmetric(self):
        assert dtw_distance(SQUARE, LINE) == pytest.approx(dtw_distance(LINE, SQUARE))

    def test_handles_unequal_lengths(self):
        a = np.array([[0.0, 0.0], [5.0, 0.0]])
        b = np.array([[0.0, 0.0], [2.5, 0.0], [5.0, 0.0]])
        assert dtw_distance(a, b) == pytest.approx(2.5)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            dtw_distance(np.empty((0, 2)), SQUARE)

    def test_window_constrains(self):
        a = np.column_stack([np.arange(10.0), np.zeros(10)])
        b = np.column_stack([np.arange(10.0)[::-1], np.zeros(10)])
        unconstrained = dtw_distance(a, b)
        banded = dtw_distance(a, b, window=1)
        assert banded >= unconstrained

    def test_measure_orientation(self):
        m = DTW()
        a, b = traj(SQUARE), traj(LINE)
        assert not m.higher_is_better
        assert m.score(a, b) == -m(a, b)

    def test_repeated_points_free(self):
        a = np.array([[0.0, 0.0], [1.0, 0.0]])
        b = np.array([[0.0, 0.0], [0.0, 0.0], [1.0, 0.0], [1.0, 0.0]])
        assert dtw_distance(a, b) == pytest.approx(0.0)


class TestLCSS:
    def test_identical_is_one(self):
        assert lcss_similarity(SQUARE, SQUARE, epsilon=0.1) == pytest.approx(1.0)

    def test_disjoint_is_zero(self):
        far = SQUARE + 100.0
        assert lcss_similarity(SQUARE, far, epsilon=0.1) == 0.0

    def test_epsilon_widens_matches(self):
        shifted = SQUARE + 0.5
        tight = lcss_similarity(SQUARE, shifted, epsilon=0.1)
        loose = lcss_similarity(SQUARE, shifted, epsilon=2.0)
        assert loose > tight

    def test_delta_restricts_matching(self):
        a = np.column_stack([np.arange(6.0), np.zeros(6)])
        b = a[::-1].copy()  # reversed: matches need large index offsets
        free = lcss_similarity(a, b, epsilon=0.1)
        windowed = lcss_similarity(a, b, epsilon=0.1, delta=1)
        assert windowed <= free

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            lcss_similarity(SQUARE, SQUARE, epsilon=0.0)

    def test_range(self):
        value = lcss_similarity(SQUARE, LINE, epsilon=0.5)
        assert 0.0 <= value <= 1.0

    def test_measure_class(self):
        m = LCSS(epsilon=0.5)
        assert m.higher_is_better
        assert m(traj(SQUARE), traj(SQUARE)) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            LCSS(epsilon=-1.0)


class TestEDR:
    def test_identical_is_zero(self):
        assert edr_distance(SQUARE, SQUARE, epsilon=0.1) == 0.0

    def test_completely_different(self):
        far = SQUARE + 100.0
        # all 4 points must be substituted
        assert edr_distance(SQUARE, far, epsilon=0.1) == 4.0

    def test_length_difference_costs_insertions(self):
        a = LINE
        b = LINE[:2]
        assert edr_distance(a, b, epsilon=0.1) == 1.0

    def test_bounded_by_max_length(self):
        value = edr_distance(SQUARE, LINE, epsilon=0.01)
        assert value <= max(len(SQUARE), len(LINE))

    def test_symmetric(self):
        assert edr_distance(SQUARE, LINE, 0.5) == pytest.approx(edr_distance(LINE, SQUARE, 0.5))

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            edr_distance(SQUARE, LINE, epsilon=-1.0)

    def test_measure_class(self):
        m = EDR(epsilon=0.5)
        assert not m.higher_is_better
        assert m(traj(SQUARE), traj(SQUARE)) == 0.0


class TestERP:
    def test_identical_is_zero(self):
        assert erp_distance(SQUARE, SQUARE, gap=(0.0, 0.0)) == pytest.approx(0.0)

    def test_triangle_inequality_with_fixed_gap(self, rng):
        g = (0.0, 0.0)
        for _ in range(10):
            a = rng.normal(size=(4, 2))
            b = rng.normal(size=(5, 2))
            c = rng.normal(size=(3, 2))
            ab = erp_distance(a, b, gap=g)
            bc = erp_distance(b, c, gap=g)
            ac = erp_distance(a, c, gap=g)
            assert ac <= ab + bc + 1e-9

    def test_gap_cost_for_extra_points(self):
        a = np.array([[1.0, 0.0]])
        b = np.array([[1.0, 0.0], [3.0, 0.0]])
        # extra point costs its distance to the gap point
        assert erp_distance(a, b, gap=(0.0, 0.0)) == pytest.approx(3.0)

    def test_default_gap_is_centroid(self):
        value = erp_distance(SQUARE, SQUARE)
        assert value == pytest.approx(0.0)

    def test_symmetric(self):
        g = (0.0, 0.0)
        assert erp_distance(SQUARE, LINE, gap=g) == pytest.approx(erp_distance(LINE, SQUARE, gap=g))

    def test_measure_class(self):
        m = ERP(gap=(0.0, 0.0))
        assert not m.higher_is_better
        assert m(traj(SQUARE), traj(SQUARE)) == pytest.approx(0.0)


class TestFrechet:
    def test_identical_is_zero(self):
        assert frechet_distance(SQUARE, SQUARE) == pytest.approx(0.0)

    def test_parallel_lines(self):
        a = np.column_stack([np.arange(5.0), np.zeros(5)])
        b = np.column_stack([np.arange(5.0), np.full(5, 3.0)])
        assert frechet_distance(a, b) == pytest.approx(3.0)

    def test_sensitive_to_single_outlier(self):
        a = np.column_stack([np.arange(5.0), np.zeros(5)])
        b = a.copy()
        b[2, 1] = 50.0  # one noisy point dominates
        assert frechet_distance(a, b) == pytest.approx(50.0)

    def test_at_least_endpoint_distance(self, rng):
        a = rng.normal(size=(6, 2))
        b = rng.normal(size=(4, 2))
        d = frechet_distance(a, b)
        assert d >= np.hypot(*(a[0] - b[0])) - 1e-9
        assert d >= np.hypot(*(a[-1] - b[-1])) - 1e-9

    def test_symmetric(self):
        assert frechet_distance(SQUARE, LINE) == pytest.approx(frechet_distance(LINE, SQUARE))

    def test_measure_class(self):
        m = Frechet()
        assert not m.higher_is_better


class TestHausdorff:
    def test_identical_is_zero(self):
        assert hausdorff_distance(SQUARE, SQUARE) == 0.0

    def test_order_invariant(self):
        shuffled = SQUARE[[2, 0, 3, 1]]
        assert hausdorff_distance(SQUARE, shuffled) == 0.0

    def test_known_value(self):
        a = np.array([[0.0, 0.0]])
        b = np.array([[3.0, 4.0], [0.0, 1.0]])
        assert hausdorff_distance(a, b) == pytest.approx(5.0)

    def test_symmetric(self):
        assert hausdorff_distance(SQUARE, LINE) == pytest.approx(
            hausdorff_distance(LINE, SQUARE)
        )

    def test_measure_class(self):
        m = Hausdorff()
        assert not m.higher_is_better
        assert m(traj(SQUARE), traj(SQUARE)) == 0.0
