"""Unit tests for the STS measure (Eq. 10) and its ablation variants."""

import numpy as np
import pytest

from repro.core.grid import Grid
from repro.core.noise import DeterministicNoiseModel, GaussianNoiseModel
from repro.core.speed import GaussianSpeedModel
from repro.core.sts import STS, sts_b, sts_f, sts_g, sts_n
from repro.core.transition import SpeedTransitionModel
from repro.core.trajectory import Trajectory


@pytest.fixture
def grid():
    return Grid(0, 0, 40, 20, cell_size=2.0)


@pytest.fixture
def walker():
    xs = [2.0, 6.0, 10.0, 14.0, 18.0, 22.0]
    return Trajectory.from_arrays(xs, [10.0] * 6, [0.0, 4.0, 8.0, 12.0, 16.0, 20.0])


@pytest.fixture
def companion():
    """Same route as walker, sampled at offset times (sporadic sampling)."""
    xs = [4.0, 8.0, 12.0, 16.0, 20.0]
    return Trajectory.from_arrays(xs, [10.0] * 5, [2.0, 6.0, 10.0, 14.0, 18.0])


@pytest.fixture
def stranger():
    """Different corridor, same times as walker."""
    xs = [2.0, 6.0, 10.0, 14.0, 18.0, 22.0]
    return Trajectory.from_arrays(xs, [2.0] * 6, [0.0, 4.0, 8.0, 12.0, 16.0, 20.0])


class TestConstruction:
    def test_default_noise_model(self, grid):
        measure = STS(grid)
        assert isinstance(measure.noise_model, GaussianNoiseModel)
        assert measure.noise_model.sigma == grid.cell_size

    def test_invalid_transition_type(self, grid):
        with pytest.raises(TypeError, match="transition"):
            STS(grid, transition="personalized")  # type: ignore[arg-type]

    def test_shared_transition_instance(self, grid, walker, companion):
        shared = SpeedTransitionModel(GaussianSpeedModel(1.0, 0.3))
        measure = STS(grid, transition=shared)
        assert measure.stp_for(walker).transition_model is shared
        assert measure.stp_for(companion).transition_model is shared

    def test_transition_factory_called_per_trajectory(self, grid, walker, companion):
        seen = []
        factory = lambda t: seen.append(t) or SpeedTransitionModel(  # noqa: E731
            GaussianSpeedModel(1.0, 0.3)
        )
        measure = STS(grid, transition=factory)
        measure.similarity(walker, companion)
        assert walker in seen and companion in seen


class TestSimilarityBehaviour:
    def test_empty_rejected(self, grid, walker):
        with pytest.raises(ValueError, match="empty"):
            STS(grid).similarity(walker, Trajectory([]))

    def test_range(self, grid, walker, companion, stranger):
        measure = STS(grid)
        for a, b in [(walker, companion), (walker, stranger), (walker, walker)]:
            value = measure.similarity(a, b)
            assert 0.0 <= value <= 1.0

    def test_symmetric(self, grid, walker, companion):
        measure = STS(grid)
        assert measure.similarity(walker, companion) == pytest.approx(
            measure.similarity(companion, walker)
        )

    def test_companion_beats_stranger(self, grid, walker, companion, stranger):
        # The headline behaviour: co-moving trajectories with disjoint
        # timestamps score far above spatially-separated ones.
        measure = STS(grid)
        assert measure.similarity(walker, companion) > 5 * measure.similarity(walker, stranger)

    def test_self_similarity_highest(self, grid, walker, companion, stranger):
        measure = STS(grid)
        self_sim = measure.similarity(walker, walker)
        assert self_sim >= measure.similarity(walker, companion)
        assert self_sim >= measure.similarity(walker, stranger)

    def test_no_temporal_overlap_is_zero(self, grid, walker):
        later = walker.shifted(dt=1000.0)
        assert STS(grid).similarity(walker, later) == 0.0

    def test_callable_and_score_aliases(self, grid, walker, companion):
        measure = STS(grid)
        value = measure.similarity(walker, companion)
        assert measure(walker, companion) == pytest.approx(value)
        assert measure.score(walker, companion) == pytest.approx(value)
        assert measure.higher_is_better

    def test_eq10_average_formula(self, grid, walker, companion):
        # Recompute Eq. 10 from the co-location probabilities directly.
        from repro.core.colocation import colocation_probability

        measure = STS(grid)
        stp_a = measure.stp_for(walker)
        stp_b = measure.stp_for(companion)
        total = sum(
            colocation_probability(stp_a, stp_b, float(t)) for t in walker.timestamps
        ) + sum(colocation_probability(stp_a, stp_b, float(t)) for t in companion.timestamps)
        expected = total / (len(walker) + len(companion))
        assert measure.similarity(walker, companion) == pytest.approx(expected)

    def test_colocation_profile(self, grid, walker, companion):
        measure = STS(grid)
        times, cps = measure.colocation_profile(walker, companion)
        assert len(times) == len(np.union1d(walker.timestamps, companion.timestamps))
        assert (cps >= 0).all() and (cps <= 1).all()

    def test_modes_agree(self, grid, walker, companion):
        values = {
            mode: STS(grid, mode=mode).similarity(walker, companion)
            for mode in ("fft", "pruned", "dense")
        }
        assert values["fft"] == pytest.approx(values["dense"], abs=1e-9)
        assert values["pruned"] == pytest.approx(values["dense"], abs=1e-9)


class TestPairwise:
    def test_pairwise_symmetric_gallery(self, grid, walker, companion, stranger):
        measure = STS(grid)
        gallery = [walker, companion, stranger]
        matrix = measure.pairwise(gallery)
        assert matrix.shape == (3, 3)
        np.testing.assert_allclose(matrix, matrix.T)

    def test_pairwise_query_gallery(self, grid, walker, companion, stranger):
        measure = STS(grid)
        matrix = measure.pairwise([companion, stranger], queries=[walker])
        assert matrix.shape == (1, 2)
        assert matrix[0, 0] > matrix[0, 1]  # companion beats stranger

    def test_cache_reused_and_clearable(self, grid, walker, companion):
        measure = STS(grid)
        measure.similarity(walker, companion)
        assert len(measure._stp_cache) == 2
        assert measure.stp_for(walker) is measure.stp_for(walker)
        measure.clear_cache()
        assert len(measure._stp_cache) == 0


class TestCacheBounds:
    def test_cache_size_bounds_estimator_cache(self, grid, walker, companion, stranger):
        measure = STS(grid, cache_size=2)
        for trajectory in (walker, companion, stranger):
            measure.stp_for(trajectory)
        assert len(measure._stp_cache) == 2  # LRU evicted the oldest

    def test_cache_size_none_is_unbounded(self, grid, walker, companion, stranger):
        measure = STS(grid, cache_size=None)
        for trajectory in (walker, companion, stranger):
            measure.stp_for(trajectory)
        assert len(measure._stp_cache) == 3

    def test_stp_cache_size_forwarded_to_estimators(self, grid, walker):
        stp = STS(grid, stp_cache_size=16).stp_for(walker)
        assert stp._cache.maxsize == 16
        stp_off = STS(grid, stp_cache_size=0).stp_for(walker)
        assert stp_off._cache.maxsize == 0
        assert stp_off._kernel_cache.maxsize == 0

    def test_query_results_memoized_within_capacity(self, grid, walker):
        stp = STS(grid).stp_for(walker)
        t = float(walker.timestamps[0]) + 1.3
        first = stp.stp(t)
        again = stp.stp(t)
        assert first[0] is again[0] and first[1] is again[1]  # cache hit


class TestProfileVsSimilarityAccounting:
    """Regression pin: Eq. 10 vs :meth:`colocation_profile` on shared times.

    ``similarity`` counts a timestamp present in *both* trajectories twice
    (once per Σ in Eq. 10, denominator ``|Tra| + |Tra'|``); the profile is
    a deduplicated union — an inspection view, not the measure's terms.
    Both behaviours are documented in the ``colocation_profile`` docstring
    and pinned here so neither silently drifts into the other.
    """

    @pytest.fixture
    def twin(self, walker):
        """Same timestamps as walker (full overlap), slightly offset path."""
        return Trajectory.from_arrays(
            walker.xy[:, 0] + 1.0, walker.xy[:, 1], walker.timestamps.copy()
        )

    def test_shared_timestamps_counted_twice_in_similarity(self, grid, walker, twin):
        measure = STS(grid)
        times, cps = measure.colocation_profile(walker, twin)
        # Full timestamp overlap: union has |Tra| entries, not 2|Tra|.
        assert len(times) == len(walker)
        # Eq. 10 counts each shared time once per trajectory: the sum over
        # the deduplicated profile appears twice in the numerator, and the
        # denominator is |Tra| + |Tra'| — so the measure equals the plain
        # profile mean here, but via 2·Σ/(2n), not Σ/n over 2n terms.
        expected = 2.0 * float(cps.sum()) / (len(walker) + len(twin))
        assert measure.similarity(walker, twin) == pytest.approx(expected, abs=1e-12)

    def test_profile_mean_differs_under_partial_overlap(self, grid, walker):
        # One shared timestamp: profile mean averages over |union| = 10
        # terms, Eq. 10 over |Tra| + |Tra'| = 11 — they must not agree.
        other = Trajectory.from_arrays(
            walker.xy[:, 0] + 1.0, walker.xy[:, 1], walker.timestamps + 4.0
        )
        assert np.intersect1d(walker.timestamps, other.timestamps).size == 5
        measure = STS(grid)
        times, cps = measure.colocation_profile(walker, other)
        assert len(times) == 7  # 6 + 6 timestamps, 5 shared
        sim = measure.similarity(walker, other)
        assert sim != pytest.approx(float(cps.mean()), abs=1e-15)
        # And the exact relation between the two accountings holds:
        shared_mask = np.isin(times, np.intersect1d(walker.timestamps, other.timestamps))
        expected = (cps.sum() + cps[shared_mask].sum()) / (len(walker) + len(other))
        assert sim == pytest.approx(expected, abs=1e-12)


class TestVariants:
    def test_sts_n_ignores_noise(self, grid, walker):
        variant = sts_n(grid)
        assert variant.name == "STS-N"
        assert isinstance(variant.noise_model, DeterministicNoiseModel)

    def test_sts_g_shares_global_speed(self, grid, walker, companion):
        variant = sts_g(grid, [walker, companion])
        assert variant.name == "STS-G"
        tm_a = variant.stp_for(walker).transition_model
        tm_b = variant.stp_for(companion).transition_model
        assert tm_a is tm_b  # one global model

    def test_sts_f_uses_frequency_transitions(self, grid, walker, companion):
        variant = sts_f(grid, [walker, companion])
        assert variant.name == "STS-F"
        from repro.core.transition import FrequencyTransitionModel

        assert isinstance(variant.stp_for(walker).transition_model, FrequencyTransitionModel)

    def test_variants_produce_valid_similarities(self, grid, walker, companion):
        corpus = [walker, companion]
        for variant in (sts_n(grid), sts_g(grid, corpus), sts_f(grid, corpus), sts_b(grid)):
            value = variant.similarity(walker, companion)
            assert 0.0 <= value <= 1.0

    def test_sts_b_uses_gaussian_speed_law(self, grid, walker):
        from repro.core.speed import GaussianSpeedModel
        from repro.core.transition import SpeedTransitionModel

        variant = sts_b(grid)
        assert variant.name == "STS-B"
        tm = variant.stp_for(walker).transition_model
        assert isinstance(tm, SpeedTransitionModel)
        assert isinstance(tm.speed_model, GaussianSpeedModel)
        # walker moves at a constant 1 m/s; the fitted mean reflects that
        assert tm.speed_model.mean == pytest.approx(1.0)

    def test_sts_b_single_point_trajectory(self, grid):
        lonely = Trajectory.from_arrays([10.0], [10.0], [5.0])
        variant = sts_b(grid)
        assert variant.similarity(lonely, lonely) > 0.0

    def test_full_sts_more_stable_than_sts_n_under_noise(self, grid):
        # The value of the noise model: across independent noise draws of
        # the same co-moving pair, full STS's similarity is far more stable
        # than STS-N's (whose score swings with whichever cells the noisy
        # points happen to land in).  Robustness is what drives the paper's
        # Fig. 8–10 gap.
        ts = np.arange(0.0, 24.0, 4.0)
        base = 2.0 + ts  # 1 m/s east
        full_vals, bare_vals = [], []
        for seed in range(8):
            rng = np.random.default_rng(seed)
            a = Trajectory.from_arrays(
                base + rng.normal(0, 2, len(ts)), 10 + rng.normal(0, 2, len(ts)), ts
            )
            b = Trajectory.from_arrays(
                base + rng.normal(0, 2, len(ts)), 10 + rng.normal(0, 2, len(ts)), ts + 2.0
            )
            full_vals.append(STS(grid, noise_model=GaussianNoiseModel(2.0)).similarity(a, b))
            bare_vals.append(sts_n(grid).similarity(a, b))
        cv = lambda v: np.std(v) / np.mean(v)  # noqa: E731
        assert cv(full_vals) < cv(bare_vals)
