"""Batched evaluation must match the per-time path exactly.

``TrajectorySTP.stp_batch`` / ``colocation_batch`` / the prewarmed
``STS.pairwise`` are pure performance features: they group queries by
bracketing segment and amortize kernel/FFT work, but every distribution is
produced by the same evaluation core as a singleton ``stp(t)`` call.  The
tests here pin that contract *bitwise* — not "close", identical — across
all four estimator modes, for observed / interpolated / duplicated /
out-of-span query times.
"""

import numpy as np
import pytest

from repro.core.colocation import colocation_batch, sparse_inner
from repro.core.grid import Grid
from repro.core.sts import STS, sts_f
from repro.core.trajectory import Trajectory

MODES = ["dense", "pruned", "fft", "auto"]


@pytest.fixture
def grid():
    return Grid(0, 0, 40, 20, cell_size=2.0)


@pytest.fixture
def walker():
    xs = [2.0, 6.0, 10.0, 14.0, 18.0, 22.0]
    return Trajectory.from_arrays(xs, [10.0] * 6, [0.0, 4.0, 8.0, 12.0, 16.0, 20.0])


@pytest.fixture
def companion():
    xs = [4.0, 8.0, 12.0, 16.0, 20.0]
    return Trajectory.from_arrays(xs, [10.0] * 5, [2.0, 6.0, 10.0, 14.0, 18.0])


def query_times(trajectory, partner):
    """A deliberately nasty query set: observed times, the partner's times,
    off-grid midpoints, duplicates, and times outside the observed span."""
    own = trajectory.timestamps
    other = partner.timestamps
    mids = (own[:-1] + own[1:]) / 2.0
    out_of_span = np.array([own[0] - 5.0, own[-1] + 5.0])
    times = np.concatenate([own, other, mids, mids[:2], own[:2], out_of_span])
    return times


def assert_distributions_identical(batch, singles):
    assert len(batch) == len(singles)
    for k, ((bc, bp), (sc, sp)) in enumerate(zip(batch, singles)):
        assert np.array_equal(bc, sc), f"cells differ at query {k}"
        assert np.array_equal(bp, sp), f"probs differ at query {k}"


class TestStpBatchMatchesPerT:
    @pytest.mark.parametrize("mode", MODES)
    def test_bitwise_identity_all_modes(self, grid, walker, companion, mode):
        times = query_times(walker, companion)
        batch = STS(grid, mode=mode).stp_for(walker).stp_batch(times)
        # Fresh estimator for the singleton path so neither run can serve
        # the other from a cache.
        single_stp = STS(grid, mode=mode).stp_for(walker)
        singles = [single_stp.stp(float(t)) for t in times]
        assert_distributions_identical(batch, singles)

    @pytest.mark.parametrize("mode", ["pruned", "dense"])
    def test_bitwise_identity_frequency_transitions(self, grid, walker, companion, mode):
        corpus = [walker, companion]
        times = query_times(walker, companion)
        batch = sts_f(grid, corpus, mode=mode).stp_for(walker).stp_batch(times)
        single_stp = sts_f(grid, corpus, mode=mode).stp_for(walker)
        singles = [single_stp.stp(float(t)) for t in times]
        assert_distributions_identical(batch, singles)

    def test_bitwise_identity_with_caches_disabled(self, grid, walker, companion):
        times = query_times(walker, companion)
        batch = STS(grid, stp_cache_size=0).stp_for(walker).stp_batch(times)
        singles_stp = STS(grid, stp_cache_size=0).stp_for(walker)
        singles = [singles_stp.stp(float(t)) for t in times]
        assert_distributions_identical(batch, singles)

    def test_duplicate_times_share_one_result(self, grid, walker):
        t = float(walker.timestamps[0]) + 1.7
        batch = STS(grid).stp_for(walker).stp_batch([t, t, t])
        assert_distributions_identical(batch[1:], [batch[0]] * 2)

    def test_out_of_span_times_are_empty(self, grid, walker):
        batch = STS(grid).stp_for(walker).stp_batch([-100.0, 1e6])
        for cells, probs in batch:
            assert cells.size == 0 and probs.size == 0

    def test_empty_input(self, grid, walker):
        assert STS(grid).stp_for(walker).stp_batch([]) == []


class TestColocationBatch:
    def test_matches_per_t_inner_products(self, grid, walker, companion):
        measure = STS(grid)
        stp1, stp2 = measure.stp_for(walker), measure.stp_for(companion)
        times = np.concatenate([walker.timestamps, companion.timestamps])
        batch = colocation_batch(stp1, stp2, times)

        ref_measure = STS(grid)
        ref1, ref2 = ref_measure.stp_for(walker), ref_measure.stp_for(companion)
        singles = np.array(
            [sparse_inner(ref1.stp(float(t)), ref2.stp(float(t))) for t in times]
        )
        assert np.array_equal(batch, singles)
        assert ((batch >= 0.0) & (batch <= 1.0)).all()

    def test_empty_times(self, grid, walker, companion):
        measure = STS(grid)
        out = colocation_batch(measure.stp_for(walker), measure.stp_for(companion), [])
        assert out.size == 0


class TestPrewarmedPairwise:
    def test_symmetric_matrix_matches_per_pair_similarity(self, grid, walker, companion):
        gallery = [walker, companion]
        matrix = STS(grid).pairwise(gallery)

        ref = STS(grid)
        expected = np.array(
            [[ref.similarity(a, b) for b in gallery] for a in gallery]
        )
        assert np.array_equal(matrix, expected)
        assert np.array_equal(matrix, matrix.T)

    def test_query_gallery_matrix_matches_per_pair_similarity(self, grid, walker, companion):
        matrix = STS(grid).pairwise([walker, companion], queries=[companion])
        ref = STS(grid)
        expected = np.array(
            [[ref.similarity(companion, walker), ref.similarity(companion, companion)]]
        )
        assert np.array_equal(matrix, expected)

    def test_prewarm_skipped_when_caches_disabled(self, grid, walker, companion):
        # With stp_cache_size=0 the prewarm pass would be pure waste; the
        # result must still be identical through the plain per-pair path.
        matrix = STS(grid, stp_cache_size=0).pairwise([walker, companion])
        expected = STS(grid).pairwise([walker, companion])
        assert np.allclose(matrix, expected, rtol=0, atol=0)
