"""Unit tests for the personalized speed models (Eq. 6–7)."""

import numpy as np
import pytest

from repro.core.speed import (
    GaussianSpeedModel,
    KDESpeedModel,
    silverman_bandwidth,
)
from repro.core.trajectory import Trajectory


class TestSilvermanBandwidth:
    def test_formula(self):
        samples = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        sigma = samples.std()
        expected = (4.0 * sigma**5 / (3.0 * 5)) ** 0.2
        assert silverman_bandwidth(samples) == pytest.approx(expected)

    def test_empty_samples_floor(self):
        assert silverman_bandwidth(np.array([])) == pytest.approx(1e-3)

    def test_single_sample_scales_with_magnitude(self):
        h = silverman_bandwidth(np.array([10.0]))
        assert h == pytest.approx(0.5)  # 0.05 * 10

    def test_zero_variance_floor(self):
        h = silverman_bandwidth(np.array([2.0, 2.0, 2.0]))
        assert h > 0
        assert h == pytest.approx(0.1)  # 0.05 * 2

    def test_shrinks_with_more_samples(self):
        rng = np.random.default_rng(0)
        small = rng.normal(5, 1, size=10)
        big = np.concatenate([small] * 100)
        assert silverman_bandwidth(big) < silverman_bandwidth(small)


class TestKDESpeedModel:
    def test_rejects_negative_samples(self):
        with pytest.raises(ValueError, match="non-negative"):
            KDESpeedModel([1.0, -0.5])

    def test_rejects_non_finite(self):
        with pytest.raises(ValueError, match="finite"):
            KDESpeedModel([1.0, np.nan])

    def test_rejects_bad_bandwidth(self):
        with pytest.raises(ValueError, match="bandwidth"):
            KDESpeedModel([1.0, 2.0], bandwidth=0.0)

    def test_density_matches_eq6(self):
        samples = np.array([1.0, 2.0, 3.0])
        model = KDESpeedModel(samples, bandwidth=0.5, approx=False)
        v = 1.7
        kernel = lambda z: np.exp(-0.5 * z * z) / np.sqrt(2 * np.pi)  # noqa: E731
        expected = np.mean([kernel((v - s) / 0.5) for s in samples]) / 0.5
        assert model.density(v) == pytest.approx(expected)

    def test_transition_weight_is_h_times_density(self):
        model = KDESpeedModel([1.0, 2.0, 4.0], bandwidth=0.3, approx=False)
        v = 2.2
        assert model.transition_weight(v) == pytest.approx(0.3 * model.density(v))

    def test_density_integrates_to_one(self):
        model = KDESpeedModel([1.0, 1.5, 2.0, 3.0], approx=False)
        xs = np.linspace(-20, 30, 20001)
        integral = np.trapezoid(model.density(xs), xs)
        assert integral == pytest.approx(1.0, abs=1e-4)

    def test_density_peaks_near_samples(self):
        model = KDESpeedModel([2.0] * 10, bandwidth=0.2, approx=False)
        assert model.density(2.0) > model.density(3.0)
        assert model.density(2.0) > model.density(1.0)

    def test_vector_and_scalar_agree(self):
        model = KDESpeedModel([1.0, 2.0], approx=False)
        vec = model.density(np.array([1.5, 2.5]))
        assert vec[0] == pytest.approx(model.density(1.5))
        assert vec[1] == pytest.approx(model.density(2.5))

    def test_interpolated_close_to_exact(self):
        rng = np.random.default_rng(1)
        samples = np.abs(rng.normal(2.0, 0.7, size=200))
        exact = KDESpeedModel(samples, approx=False)
        approx = KDESpeedModel(samples, approx=True)
        vs = np.linspace(0, exact.max_plausible_speed(), 500)
        # interp path only triggers on large batches
        np.testing.assert_allclose(
            approx.transition_weight(vs), exact.transition_weight(vs), atol=1e-6
        )

    def test_interp_zero_beyond_plausible(self):
        model = KDESpeedModel(np.full(100, 2.0), bandwidth=0.1)
        vs = np.full(100, model.max_plausible_speed() * 2)
        assert np.all(model.transition_weight(vs) == 0.0)

    def test_from_trajectory(self, straight_trajectory):
        model = KDESpeedModel.from_trajectory(straight_trajectory)
        np.testing.assert_allclose(model.samples, np.ones(9))

    def test_from_trajectories_pools(self, straight_trajectory):
        fast = Trajectory.from_arrays([0, 10], [0, 0], [0, 1])
        model = KDESpeedModel.from_trajectories([straight_trajectory, fast])
        assert len(model.samples) == 10
        assert 10.0 in model.samples

    def test_degenerate_single_point_trajectory(self, single_point_trajectory):
        model = KDESpeedModel.from_trajectory(single_point_trajectory)
        assert len(model.samples) == 0
        assert model.transition_weight(0.0) > 0  # nearly-stationary prior
        assert model.transition_weight(100.0) == pytest.approx(0.0, abs=1e-9)

    def test_max_plausible_speed(self):
        model = KDESpeedModel([1.0, 5.0], bandwidth=0.5, truncate=4.0)
        assert model.max_plausible_speed() == pytest.approx(5.0 + 2.0)

    def test_repr(self):
        assert "n=2" in repr(KDESpeedModel([1.0, 2.0]))


class TestGaussianSpeedModel:
    def test_invalid_std(self):
        with pytest.raises(ValueError):
            GaussianSpeedModel(mean=1.0, std=0.0)

    def test_density_is_normal_pdf(self):
        model = GaussianSpeedModel(mean=2.0, std=0.5)
        from scipy.stats import norm

        assert model.density(2.3) == pytest.approx(norm.pdf(2.3, 2.0, 0.5))

    def test_transition_weight_peak_at_mean(self):
        model = GaussianSpeedModel(mean=2.0, std=0.5)
        assert model.transition_weight(2.0) > model.transition_weight(3.0)
        assert model.transition_weight(2.0) == pytest.approx(1 / np.sqrt(2 * np.pi))

    def test_max_plausible_speed(self):
        model = GaussianSpeedModel(mean=2.0, std=0.5, truncate=3.0)
        assert model.max_plausible_speed() == pytest.approx(3.5)

    def test_vectorized(self):
        model = GaussianSpeedModel(mean=1.0, std=1.0)
        out = model.density(np.array([0.0, 1.0, 2.0]))
        assert out.shape == (3,)
        assert out[1] == max(out)
