"""Unit tests for the trajectory data model."""

import math

import numpy as np
import pytest

from repro.core.trajectory import Path, Trajectory, TrajectoryPoint


class TestTrajectoryPoint:
    def test_location_property(self):
        p = TrajectoryPoint(1.0, 2.0, 3.0)
        assert p.location == (1.0, 2.0)

    def test_distance_is_euclidean(self):
        a = TrajectoryPoint(0.0, 0.0, 0.0)
        b = TrajectoryPoint(3.0, 4.0, 1.0)
        assert a.distance_to(b) == pytest.approx(5.0)

    def test_distance_is_symmetric(self):
        a = TrajectoryPoint(1.0, 1.0, 0.0)
        b = TrajectoryPoint(-2.0, 5.0, 9.0)
        assert a.distance_to(b) == pytest.approx(b.distance_to(a))

    def test_speed_to(self):
        a = TrajectoryPoint(0.0, 0.0, 0.0)
        b = TrajectoryPoint(6.0, 8.0, 5.0)
        assert a.speed_to(b) == pytest.approx(2.0)

    def test_speed_same_timestamp_raises(self):
        a = TrajectoryPoint(0.0, 0.0, 7.0)
        b = TrajectoryPoint(1.0, 0.0, 7.0)
        with pytest.raises(ValueError):
            a.speed_to(b)

    def test_frozen(self):
        p = TrajectoryPoint(0.0, 0.0, 0.0)
        with pytest.raises(AttributeError):
            p.x = 1.0  # type: ignore[misc]

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf")])
    def test_non_finite_rejected(self, bad):
        with pytest.raises(ValueError, match="finite"):
            TrajectoryPoint(bad, 0.0, 0.0)
        with pytest.raises(ValueError, match="finite"):
            TrajectoryPoint(0.0, bad, 0.0)
        with pytest.raises(ValueError, match="finite"):
            TrajectoryPoint(0.0, 0.0, bad)

    def test_non_finite_rejected_via_from_arrays(self):
        with pytest.raises(ValueError, match="finite"):
            Trajectory.from_arrays([0.0, float("nan")], [0.0, 0.0], [0.0, 1.0])


class TestTrajectoryConstruction:
    def test_points_sorted_by_time(self):
        pts = [TrajectoryPoint(2, 0, 2), TrajectoryPoint(0, 0, 0), TrajectoryPoint(1, 0, 1)]
        traj = Trajectory(pts)
        assert [p.t for p in traj] == [0, 1, 2]
        assert [p.x for p in traj] == [0, 1, 2]

    def test_from_arrays_roundtrip(self, straight_trajectory):
        assert len(straight_trajectory) == 10
        np.testing.assert_allclose(straight_trajectory.xy[:, 0], np.arange(10.0))
        np.testing.assert_allclose(straight_trajectory.timestamps, np.arange(10.0))

    def test_from_arrays_length_mismatch(self):
        with pytest.raises(ValueError, match="equal length"):
            Trajectory.from_arrays([1, 2], [1], [1, 2])

    def test_empty_allowed_but_guarded(self):
        traj = Trajectory([])
        assert len(traj) == 0
        with pytest.raises(ValueError):
            _ = traj.start_time

    def test_equality_and_hash(self):
        a = Trajectory.from_arrays([0, 1], [0, 0], [0, 1])
        b = Trajectory.from_arrays([0, 1], [0, 0], [0, 1])
        c = Trajectory.from_arrays([0, 2], [0, 0], [0, 1])
        assert a == b
        assert hash(a) == hash(b)
        assert a != c

    def test_array_views_read_only(self, straight_trajectory):
        with pytest.raises(ValueError):
            straight_trajectory.xy[0, 0] = 99.0
        with pytest.raises(ValueError):
            straight_trajectory.timestamps[0] = 99.0

    def test_repr_mentions_id_and_span(self, straight_trajectory):
        text = repr(straight_trajectory)
        assert "straight" in text
        assert "n=10" in text


class TestTemporalQueries:
    def test_span(self, straight_trajectory):
        assert straight_trajectory.start_time == 0.0
        assert straight_trajectory.end_time == 9.0
        assert straight_trajectory.duration == 9.0

    def test_covers_time(self, straight_trajectory):
        assert straight_trajectory.covers_time(0.0)
        assert straight_trajectory.covers_time(4.5)
        assert straight_trajectory.covers_time(9.0)
        assert not straight_trajectory.covers_time(-0.1)
        assert not straight_trajectory.covers_time(9.1)

    def test_index_of_time(self, straight_trajectory):
        assert straight_trajectory.index_of_time(3.0) == 3
        assert straight_trajectory.index_of_time(3.5) is None
        assert straight_trajectory.index_of_time(100.0) is None

    def test_bracketing_indices(self, straight_trajectory):
        assert straight_trajectory.bracketing_indices(3.5) == (3, 4)
        assert straight_trajectory.bracketing_indices(0.1) == (0, 1)

    def test_bracketing_none_at_observation(self, straight_trajectory):
        assert straight_trajectory.bracketing_indices(3.0) is None

    def test_bracketing_none_outside(self, straight_trajectory):
        assert straight_trajectory.bracketing_indices(-1.0) is None
        assert straight_trajectory.bracketing_indices(10.0) is None


class TestGeometry:
    def test_length(self, l_shaped_trajectory):
        assert l_shaped_trajectory.length() == pytest.approx(20.0)

    def test_length_single_point(self, single_point_trajectory):
        assert single_point_trajectory.length() == 0.0

    def test_speeds_constant(self, straight_trajectory):
        np.testing.assert_allclose(straight_trajectory.speeds(), np.ones(9))

    def test_speeds_skip_zero_dt(self):
        traj = Trajectory.from_arrays([0, 1, 1, 2], [0, 0, 0, 0], [0, 1, 1, 2])
        speeds = traj.speeds()
        assert len(speeds) == 2  # the duplicate timestamp pair is skipped
        np.testing.assert_allclose(speeds, [1.0, 1.0])

    def test_speeds_empty_for_short(self, single_point_trajectory):
        assert len(single_point_trajectory.speeds()) == 0

    def test_bounding_box(self, l_shaped_trajectory):
        assert l_shaped_trajectory.bounding_box() == (0.0, 0.0, 10.0, 10.0)


class TestTransformations:
    def test_shifted(self, straight_trajectory):
        moved = straight_trajectory.shifted(dx=1.0, dy=-2.0, dt=10.0)
        assert moved[0].x == 1.0
        assert moved[0].y == -2.0
        assert moved[0].t == 10.0
        assert len(moved) == len(straight_trajectory)
        # original unchanged
        assert straight_trajectory[0].x == 0.0

    def test_subsample(self, straight_trajectory):
        sub = straight_trajectory.subsample([0, 3, 7])
        assert [p.x for p in sub] == [0.0, 3.0, 7.0]

    def test_slice_returns_trajectory(self, straight_trajectory):
        sub = straight_trajectory[2:5]
        assert isinstance(sub, Trajectory)
        assert len(sub) == 3
        assert sub.object_id == "straight"

    def test_with_object_id(self, straight_trajectory):
        renamed = straight_trajectory.with_object_id("other")
        assert renamed.object_id == "other"
        assert renamed == straight_trajectory  # points unchanged

    def test_interpolate_at_midpoint(self, straight_trajectory):
        x, y = straight_trajectory.interpolate_at(4.5)
        assert x == pytest.approx(4.5)
        assert y == pytest.approx(0.0)

    def test_interpolate_at_observation(self, straight_trajectory):
        assert straight_trajectory.interpolate_at(3.0) == (3.0, 0.0)

    def test_interpolate_outside_raises(self, straight_trajectory):
        with pytest.raises(ValueError, match="outside"):
            straight_trajectory.interpolate_at(99.0)


class TestPath:
    def test_locate_linear(self):
        path = Path(np.array([[0.0, 0.0], [10.0, 0.0]]), np.array([0.0, 10.0]))
        assert path.locate(5.0) == (5.0, 0.0)

    def test_locate_outside_raises(self):
        path = Path(np.array([[0.0, 0.0], [10.0, 0.0]]), np.array([0.0, 10.0]))
        with pytest.raises(ValueError):
            path.locate(11.0)

    def test_sample_produces_trajectory(self):
        path = Path(np.array([[0.0, 0.0], [10.0, 10.0]]), np.array([0.0, 10.0]), object_id="p")
        traj = path.sample([0.0, 5.0, 10.0])
        assert isinstance(traj, Trajectory)
        assert traj.object_id == "p"
        assert traj[1].x == pytest.approx(5.0)
        assert traj[1].y == pytest.approx(5.0)

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="equal length"):
            Path(np.zeros((3, 2)), np.zeros(2))

    def test_decreasing_time_raises(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            Path(np.zeros((2, 2)), np.array([1.0, 0.0]))

    def test_span_properties(self):
        path = Path(np.zeros((3, 2)), np.array([1.0, 2.0, 4.0]))
        assert path.start_time == 1.0
        assert path.end_time == 4.0
        assert len(path) == 3

    def test_locate_matches_hypotenuse(self):
        path = Path(np.array([[0.0, 0.0], [3.0, 4.0]]), np.array([0.0, 1.0]))
        x, y = path.locate(0.5)
        assert math.hypot(x, y) == pytest.approx(2.5)
