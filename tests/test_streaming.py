"""Unit tests for the streaming co-location detector."""

import numpy as np
import pytest

from repro.core.grid import Grid
from repro.streaming import PairScore, SightingEvent, StreamingColocationDetector


@pytest.fixture
def grid():
    return Grid(0, 0, 100, 40, cell_size=2.0)


def feed_walk(detector, oid, x0, y, t0, n=8, dt=5.0, speed=1.0):
    for k in range(n):
        detector.ingest(SightingEvent(oid, x0 + speed * k * dt, y, t0 + k * dt))


class TestIngestAndWindows:
    def test_invalid_params(self, grid):
        with pytest.raises(ValueError):
            StreamingColocationDetector(grid, window=0.0)
        with pytest.raises(ValueError):
            StreamingColocationDetector(grid, min_points=0)

    def test_stream_time_advances(self, grid):
        detector = StreamingColocationDetector(grid)
        assert detector.stream_time == float("-inf")
        detector.ingest(SightingEvent("a", 1, 1, 100.0))
        assert detector.stream_time == 100.0
        detector.ingest(SightingEvent("a", 1, 1, 50.0))  # late event
        assert detector.stream_time == 100.0

    def test_window_eviction(self, grid):
        detector = StreamingColocationDetector(grid, window=30.0)
        feed_walk(detector, "a", 0, 10, t0=0.0, n=10, dt=10.0)  # spans 0..90
        window = detector.window_of("a")
        assert window.start_time >= detector.stream_time - 30.0

    def test_too_late_events_dropped(self, grid):
        detector = StreamingColocationDetector(grid, window=30.0)
        detector.ingest(SightingEvent("a", 0, 0, 100.0))
        detector.ingest(SightingEvent("a", 0, 0, 10.0))  # far before horizon
        assert len(detector.window_of("a")) == 1

    def test_out_of_order_events_sorted(self, grid):
        detector = StreamingColocationDetector(grid, window=100.0)
        detector.ingest(SightingEvent("a", 0, 0, 10.0))
        detector.ingest(SightingEvent("a", 2, 0, 30.0))
        detector.ingest(SightingEvent("a", 1, 0, 20.0))  # arrives late
        window = detector.window_of("a")
        assert list(window.timestamps) == [10.0, 20.0, 30.0]

    def test_active_objects(self, grid):
        detector = StreamingColocationDetector(grid, window=50.0)
        detector.ingest(SightingEvent("b", 0, 0, 0.0))
        detector.ingest(SightingEvent("a", 0, 0, 10.0))
        assert detector.active_objects == ["a", "b"]
        # advance time far enough to expire both
        detector.ingest(SightingEvent("c", 0, 0, 1000.0))
        assert detector.active_objects == ["c"]

    def test_ingest_many(self, grid):
        detector = StreamingColocationDetector(grid)
        detector.ingest_many(SightingEvent("a", k, 0, float(k)) for k in range(5))
        assert len(detector.window_of("a")) == 5


class TestEvaluation:
    def test_companions_score_highest(self, grid):
        detector = StreamingColocationDetector(grid, window=300.0)
        feed_walk(detector, "alice", x0=0, y=10, t0=0.0)
        feed_walk(detector, "bob", x0=1, y=11, t0=2.0)  # walks with alice
        feed_walk(detector, "carol", x0=0, y=35, t0=1.0)  # different corridor
        scores = detector.evaluate()
        assert scores[0].object_a == "alice" and scores[0].object_b == "bob"

    def test_threshold_filters(self, grid):
        detector = StreamingColocationDetector(grid, window=300.0)
        feed_walk(detector, "alice", x0=0, y=10, t0=0.0)
        feed_walk(detector, "carol", x0=0, y=35, t0=1.0)
        assert detector.evaluate(threshold=0.5) == []

    def test_min_points_guard(self, grid):
        detector = StreamingColocationDetector(grid, window=300.0, min_points=5)
        feed_walk(detector, "a", 0, 10, 0.0, n=3)
        feed_walk(detector, "b", 0, 10, 0.0, n=8)
        assert detector.evaluate() == []  # only one scorable object

    def test_companions_of(self, grid):
        detector = StreamingColocationDetector(grid, window=300.0)
        feed_walk(detector, "alice", x0=0, y=10, t0=0.0)
        feed_walk(detector, "bob", x0=1, y=10.5, t0=2.0)
        feed_walk(detector, "carol", x0=0, y=35, t0=1.0)
        companions = detector.companions_of("alice")
        assert companions[0].object_b == "bob"
        assert all(c.similarity <= companions[0].similarity for c in companions)

    def test_companions_of_sparse_target(self, grid):
        detector = StreamingColocationDetector(grid, min_points=5)
        feed_walk(detector, "a", 0, 10, 0.0, n=2)
        assert detector.companions_of("a") == []

    def test_windowing_forgets_old_companionship(self, grid):
        detector = StreamingColocationDetector(grid, window=60.0)
        # together long ago
        feed_walk(detector, "alice", x0=0, y=10, t0=0.0)
        feed_walk(detector, "bob", x0=1, y=10.5, t0=1.0)
        # alice continues alone much later; bob's window expires
        feed_walk(detector, "alice", x0=50, y=10, t0=500.0)
        scores = detector.evaluate()
        assert all({s.object_a, s.object_b} != {"alice", "bob"} for s in scores)

    def test_pair_score_str(self):
        assert "a ~ b" in str(PairScore("a", "b", 0.25))
