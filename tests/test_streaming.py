"""Unit tests for the streaming co-location detector."""

import numpy as np
import pytest

from repro.core.grid import Grid
from repro.streaming import PairScore, SightingEvent, StreamingColocationDetector


@pytest.fixture
def grid():
    return Grid(0, 0, 100, 40, cell_size=2.0)


def feed_walk(detector, oid, x0, y, t0, n=8, dt=5.0, speed=1.0):
    for k in range(n):
        detector.ingest(SightingEvent(oid, x0 + speed * k * dt, y, t0 + k * dt))


class TestIngestAndWindows:
    def test_invalid_params(self, grid):
        with pytest.raises(ValueError):
            StreamingColocationDetector(grid, window=0.0)
        with pytest.raises(ValueError):
            StreamingColocationDetector(grid, min_points=0)

    def test_stream_time_advances(self, grid):
        detector = StreamingColocationDetector(grid)
        assert detector.stream_time == float("-inf")
        detector.ingest(SightingEvent("a", 1, 1, 100.0))
        assert detector.stream_time == 100.0
        detector.ingest(SightingEvent("a", 1, 1, 50.0))  # late event
        assert detector.stream_time == 100.0

    def test_window_eviction(self, grid):
        detector = StreamingColocationDetector(grid, window=30.0)
        feed_walk(detector, "a", 0, 10, t0=0.0, n=10, dt=10.0)  # spans 0..90
        window = detector.window_of("a")
        assert window.start_time >= detector.stream_time - 30.0

    def test_too_late_events_dropped(self, grid):
        detector = StreamingColocationDetector(grid, window=30.0)
        detector.ingest(SightingEvent("a", 0, 0, 100.0))
        detector.ingest(SightingEvent("a", 0, 0, 10.0))  # far before horizon
        assert len(detector.window_of("a")) == 1

    def test_out_of_order_events_sorted(self, grid):
        detector = StreamingColocationDetector(grid, window=100.0)
        detector.ingest(SightingEvent("a", 0, 0, 10.0))
        detector.ingest(SightingEvent("a", 2, 0, 30.0))
        detector.ingest(SightingEvent("a", 1, 0, 20.0))  # arrives late
        window = detector.window_of("a")
        assert list(window.timestamps) == [10.0, 20.0, 30.0]

    def test_active_objects(self, grid):
        detector = StreamingColocationDetector(grid, window=50.0)
        detector.ingest(SightingEvent("b", 0, 0, 0.0))
        detector.ingest(SightingEvent("a", 0, 0, 10.0))
        assert detector.active_objects == ["a", "b"]
        # advance time far enough to expire both
        detector.ingest(SightingEvent("c", 0, 0, 1000.0))
        assert detector.active_objects == ["c"]

    def test_ingest_many(self, grid):
        detector = StreamingColocationDetector(grid)
        detector.ingest_many(SightingEvent("a", k, 0, float(k)) for k in range(5))
        assert len(detector.window_of("a")) == 5


class TestEvaluation:
    def test_companions_score_highest(self, grid):
        detector = StreamingColocationDetector(grid, window=300.0)
        feed_walk(detector, "alice", x0=0, y=10, t0=0.0)
        feed_walk(detector, "bob", x0=1, y=11, t0=2.0)  # walks with alice
        feed_walk(detector, "carol", x0=0, y=35, t0=1.0)  # different corridor
        scores = detector.evaluate()
        assert scores[0].object_a == "alice" and scores[0].object_b == "bob"

    def test_threshold_filters(self, grid):
        detector = StreamingColocationDetector(grid, window=300.0)
        feed_walk(detector, "alice", x0=0, y=10, t0=0.0)
        feed_walk(detector, "carol", x0=0, y=35, t0=1.0)
        assert detector.evaluate(threshold=0.5) == []

    def test_min_points_guard(self, grid):
        detector = StreamingColocationDetector(grid, window=300.0, min_points=5)
        feed_walk(detector, "a", 0, 10, 0.0, n=3)
        feed_walk(detector, "b", 0, 10, 0.0, n=8)
        assert detector.evaluate() == []  # only one scorable object

    def test_companions_of(self, grid):
        detector = StreamingColocationDetector(grid, window=300.0)
        feed_walk(detector, "alice", x0=0, y=10, t0=0.0)
        feed_walk(detector, "bob", x0=1, y=10.5, t0=2.0)
        feed_walk(detector, "carol", x0=0, y=35, t0=1.0)
        companions = detector.companions_of("alice")
        assert companions[0].object_b == "bob"
        assert all(c.similarity <= companions[0].similarity for c in companions)

    def test_companions_of_sparse_target(self, grid):
        detector = StreamingColocationDetector(grid, min_points=5)
        feed_walk(detector, "a", 0, 10, 0.0, n=2)
        assert detector.companions_of("a") == []

    def test_windowing_forgets_old_companionship(self, grid):
        detector = StreamingColocationDetector(grid, window=60.0)
        # together long ago
        feed_walk(detector, "alice", x0=0, y=10, t0=0.0)
        feed_walk(detector, "bob", x0=1, y=10.5, t0=1.0)
        # alice continues alone much later; bob's window expires
        feed_walk(detector, "alice", x0=50, y=10, t0=500.0)
        scores = detector.evaluate()
        assert all({s.object_a, s.object_b} != {"alice", "bob"} for s in scores)

    def test_pair_score_str(self):
        assert "a ~ b" in str(PairScore("a", "b", 0.25))


class TestSanitizedIngest:
    """Regression: a single non-finite sighting must not poison the stream."""

    BAD = [
        SightingEvent("a", float("nan"), 0.0, 1.0),
        SightingEvent("a", 0.0, float("inf"), 1.0),
        SightingEvent("a", 0.0, 0.0, float("inf")),
        SightingEvent("a", 0.0, 0.0, float("nan")),
    ]

    def test_raise_policy_rejects_before_time_advances(self, grid):
        from repro.errors import MalformedRecordError

        detector = StreamingColocationDetector(grid)  # on_error="raise"
        for event in self.BAD:
            with pytest.raises(MalformedRecordError):
                detector.ingest(event)
        # Crucially, t=inf never became stream time.
        assert detector.stream_time == float("-inf")
        detector.ingest(SightingEvent("a", 0.0, 0.0, 5.0))
        assert detector.stream_time == 5.0
        assert len(detector.window_of("a")) == 1

    def test_skip_policy_drops_and_counts(self, grid):
        detector = StreamingColocationDetector(grid, on_error="skip")
        for event in self.BAD:
            detector.ingest(event)
        assert detector.malformed_dropped == 4
        assert detector.stream_time == float("-inf")
        assert len(detector.window_of("a")) == 0
        # The stream keeps working, and the counter lands in health.
        feed_walk(detector, "a", 0, 10, 0.0)
        feed_walk(detector, "b", 1, 10, 0.0)
        detector.evaluate()
        assert detector.last_health.malformed_events == 4

    def test_invalid_policy_rejected(self, grid):
        with pytest.raises(ValueError):
            StreamingColocationDetector(grid, on_error="explode")


class TestDuplicateTimestamps:
    """The pinned out-of-order / duplicate policy (class docstring)."""

    def test_raise_policy_rejects_duplicate(self, grid):
        from repro.errors import MalformedRecordError

        detector = StreamingColocationDetector(grid)  # on_error="raise"
        detector.ingest(SightingEvent("a", 1.0, 2.0, 10.0))
        with pytest.raises(MalformedRecordError, match="duplicate timestamp"):
            detector.ingest(SightingEvent("a", 9.0, 9.0, 10.0))
        # The original observation survives untouched.
        window = detector.window_of("a")
        assert [(p.x, p.y, p.t) for p in window.points] == [(1.0, 2.0, 10.0)]

    def test_skip_policy_keeps_first_write(self, grid):
        detector = StreamingColocationDetector(grid, on_error="skip")
        detector.ingest(SightingEvent("a", 1.0, 2.0, 10.0))
        detector.ingest(SightingEvent("a", 9.0, 9.0, 10.0))
        assert detector.duplicate_dropped == 1
        assert detector.duplicate_repaired == 0
        window = detector.window_of("a")
        assert [(p.x, p.y, p.t) for p in window.points] == [(1.0, 2.0, 10.0)]

    def test_repair_policy_is_last_write_wins(self, grid):
        detector = StreamingColocationDetector(grid, on_error="repair")
        detector.ingest(SightingEvent("a", 1.0, 2.0, 10.0))
        detector.ingest(SightingEvent("a", 9.0, 9.0, 10.0))
        assert detector.duplicate_repaired == 1
        assert detector.duplicate_dropped == 0
        window = detector.window_of("a")
        assert [(p.x, p.y, p.t) for p in window.points] == [(9.0, 9.0, 10.0)]

    def test_duplicate_found_mid_window(self, grid):
        detector = StreamingColocationDetector(grid, on_error="repair")
        for t in (10.0, 20.0, 30.0):
            detector.ingest(SightingEvent("a", t, 0.0, t))
        detector.ingest(SightingEvent("a", 99.0, 0.0, 20.0))
        window = detector.window_of("a")
        assert [(p.x, p.t) for p in window.points] == [
            (10.0, 10.0), (99.0, 20.0), (30.0, 30.0),
        ]
        assert detector.duplicate_repaired == 1

    def test_same_timestamp_on_other_object_is_fine(self, grid):
        detector = StreamingColocationDetector(grid)  # on_error="raise"
        detector.ingest(SightingEvent("a", 1.0, 2.0, 10.0))
        detector.ingest(SightingEvent("b", 3.0, 4.0, 10.0))
        assert len(detector.window_of("b")) == 1

    def test_in_window_out_of_order_accepted_under_raise(self, grid):
        detector = StreamingColocationDetector(grid)  # on_error="raise"
        detector.ingest(SightingEvent("a", 0.0, 0.0, 30.0))
        detector.ingest(SightingEvent("a", 1.0, 0.0, 10.0))  # older, unique
        window = detector.window_of("a")
        assert list(window.timestamps) == [10.0, 30.0]

    @pytest.mark.parametrize("policy", ["raise", "skip", "repair"])
    def test_late_event_dropped_under_every_policy(self, grid, policy):
        detector = StreamingColocationDetector(grid, window=30.0, on_error=policy)
        detector.ingest(SightingEvent("a", 0.0, 0.0, 100.0))
        detector.ingest(SightingEvent("a", 1.0, 1.0, 10.0))  # behind horizon
        assert len(detector.window_of("a")) == 1
        assert detector.duplicate_dropped == detector.duplicate_repaired == 0

    @pytest.mark.parametrize("policy", ["raise", "skip", "repair"])
    def test_duplicate_policy_replays_across_recovery(self, grid, tmp_path, policy):
        """The duplicate decision is deterministic across a crash boundary."""
        from contextlib import suppress

        from repro.errors import MalformedRecordError
        from repro.obs import MetricsRegistry
        from repro.streaming_wal import StreamingWAL

        def build(wal=None):
            return StreamingColocationDetector(
                grid, window=200.0, on_error=policy, wal=wal,
                registry=MetricsRegistry(),
            )

        def feed(detector):
            detector.ingest(SightingEvent("a", 1.0, 2.0, 10.0))
            detector.ingest(SightingEvent("a", 3.0, 4.0, 20.0))
            with suppress(MalformedRecordError):
                detector.ingest(SightingEvent("a", 9.0, 9.0, 10.0))  # duplicate
            detector.ingest(SightingEvent("a", 5.0, 6.0, 30.0))

        reference = build()
        feed(reference)
        live = build(
            wal=StreamingWAL(tmp_path / "wal", registry=MetricsRegistry())
        )
        feed(live)
        # Crash without close(); fsync_every=1 made every command durable.
        del live
        recovered = StreamingColocationDetector.recover(
            tmp_path / "wal", registry=MetricsRegistry()
        )
        assert recovered._state_dict() == reference._state_dict()
        assert recovered.duplicate_dropped == reference.duplicate_dropped
        assert recovered.duplicate_repaired == reference.duplicate_repaired
        assert [
            (p.x, p.y, p.t) for p in recovered.window_of("a").points
        ] == [(p.x, p.y, p.t) for p in reference.window_of("a").points]
        recovered.close()


class TestAdmissionQueue:
    def test_offer_is_bounded(self, grid):
        detector = StreamingColocationDetector(grid, max_pending=3)
        for k in range(10):
            detector.offer(SightingEvent("a", float(k), 0.0, float(k)))
            assert detector.pending <= 3  # never grows past the cap
        assert detector.shed_events == 7

    def test_freshest_events_survive_shedding(self, grid):
        detector = StreamingColocationDetector(grid, max_pending=2)
        for k in range(5):
            detector.offer(SightingEvent("a", float(k), 0.0, float(k)))
        detector.drain()
        # The two freshest sightings (t=3, t=4) are the ones applied.
        assert list(detector.window_of("a").timestamps) == [3.0, 4.0]

    def test_stale_incoming_event_is_the_one_shed(self, grid):
        detector = StreamingColocationDetector(grid, max_pending=1)
        assert detector.offer(SightingEvent("a", 0.0, 0.0, 100.0))
        assert not detector.offer(SightingEvent("a", 0.0, 0.0, 1.0))  # staler
        assert detector.pending == 1
        detector.drain()
        assert list(detector.window_of("a").timestamps) == [100.0]

    def test_accepted_through_covers_queued_events(self, grid):
        detector = StreamingColocationDetector(grid, on_error="skip")
        assert detector.accepted_through == float("-inf")
        detector.offer(SightingEvent("a", 1.0, 1.0, 50.0))
        # Queued but not applied: stream time lags, the mark does not.
        assert detector.stream_time == float("-inf")
        assert detector.accepted_through == 50.0
        detector.drain()
        assert detector.stream_time == 50.0
        assert detector.accepted_through == 50.0
        # A non-finite queued timestamp never poisons the mark.
        detector.offer(SightingEvent("a", 1.0, 1.0, float("nan")))
        assert detector.accepted_through == 50.0

    def test_drain_limit_and_auto_drain_on_evaluate(self, grid):
        detector = StreamingColocationDetector(grid)
        for k in range(6):
            detector.offer(SightingEvent("a", float(k), 10.0, float(k)))
        assert detector.drain(limit=2) == 2
        assert detector.pending == 4
        detector.evaluate()  # evaluate drains the rest
        assert detector.pending == 0
        assert len(detector.window_of("a")) == 6

    def test_queued_malformed_events_follow_policy(self, grid):
        detector = StreamingColocationDetector(grid, on_error="skip")
        detector.offer(SightingEvent("a", float("nan"), 0.0, 1.0))
        detector.drain()
        assert detector.malformed_dropped == 1

    def test_invalid_max_pending(self, grid):
        with pytest.raises(ValueError):
            StreamingColocationDetector(grid, max_pending=0)


class TestDegenerateWindows:
    def test_thin_windows_are_skipped_and_counted(self, grid):
        # Eviction shrank "a" below min_points: the evaluation must skip
        # it (not crash) and account for it.
        detector = StreamingColocationDetector(grid, window=60.0, min_points=3)
        feed_walk(detector, "a", 0, 10, t0=0.0, n=3, dt=5.0)  # spans 0..10
        feed_walk(detector, "b", 0, 10, t0=30.0, n=6, dt=5.0)  # spans 30..55
        feed_walk(detector, "c", 1, 10, t0=30.0, n=6, dt=5.0)
        # Stream time is 55; horizon 55-60 leaves "a" only partially evicted?
        detector.ingest(SightingEvent("b", 30, 10, 65.0))  # horizon now 5
        scores = detector.evaluate()
        health = detector.last_health
        assert health.degenerate_objects == 1  # "a" is down to 2 points
        assert any(e.kind == "degenerate" and e.subject == "a" for e in health.events)
        assert {frozenset((s.object_a, s.object_b)) for s in scores} == {
            frozenset(("b", "c"))
        }

    def test_scoring_errors_are_skipped_and_counted(self, grid):
        from repro.errors import DegenerateTrajectoryError

        class ExplodingMeasure:
            name = "exploding"

            def similarity(self, tra1, tra2):
                raise DegenerateTrajectoryError("injected: window too thin")

        detector = StreamingColocationDetector(
            grid, measure_factory=ExplodingMeasure
        )
        feed_walk(detector, "a", 0, 10, 0.0)
        feed_walk(detector, "b", 1, 10, 0.0)
        scores = detector.evaluate()  # must not raise
        assert scores == []
        health = detector.last_health
        assert health.degenerate_pairs == 1
        assert health.pairs_scored == 0
        assert not health.ok


class TestDeadlineEvaluation:
    def companions(self, grid, **kwargs):
        detector = StreamingColocationDetector(grid, window=300.0, **kwargs)
        feed_walk(detector, "alice", x0=0, y=10, t0=0.0)
        feed_walk(detector, "bob", x0=1, y=11, t0=2.0)
        feed_walk(detector, "carol", x0=0, y=35, t0=1.0)
        return detector

    def test_unbounded_evaluate_reports_healthy(self, grid):
        detector = self.companions(grid)
        scores = detector.evaluate()
        health = detector.last_health
        assert health.ok and not health.degraded
        assert health.pairs_scored == 3
        assert health.rungs == ["full"] * 3
        assert all(s.completed and s.rung == "full" for s in scores)

    def test_zero_deadline_sheds_every_pair(self, grid):
        detector = self.companions(grid)
        scores = detector.evaluate(deadline=0.0)
        health = detector.last_health
        assert scores == []
        assert health.deadline_hit
        assert health.pairs_shed == 3
        assert health.pairs_scored == 0
        assert sum(1 for e in health.events if e.kind == "shed-pair") == 3

    def test_term_budget_degrades_with_bounds(self, grid):
        from repro.serving import Budget

        detector = self.companions(grid)
        exact = {
            frozenset((s.object_a, s.object_b)): s.similarity
            for s in detector.evaluate()
        }
        scores = detector.evaluate(budget=Budget(max_terms=4))
        health = detector.last_health
        assert health.pairs_scored == 3
        assert health.degraded
        assert len(health.rungs) == 3  # one rung on record per scored pair
        for score in scores:
            assert not score.completed
            assert score.rung in ("coarse-2x", "coarse-4x", "filter-only")
            key = frozenset((score.object_a, score.object_b))
            assert score.lower <= exact[key] <= score.upper
            assert score.lower <= score.similarity <= score.upper

    def test_deadline_and_budget_are_exclusive(self, grid):
        from repro.serving import Budget

        detector = self.companions(grid)
        with pytest.raises(ValueError, match="not both"):
            detector.evaluate(deadline=1.0, budget=Budget(deadline_ms=5.0))
        with pytest.raises(ValueError, match="deadline"):
            detector.evaluate(deadline=-1.0)

    def test_companions_of_honors_budget(self, grid):
        from repro.serving import Budget

        detector = self.companions(grid)
        companions = detector.companions_of("alice", budget=Budget(max_terms=4))
        health = detector.last_health
        assert health.pairs_scored == 2
        assert all(not c.completed for c in companions)


class TestOverloadAcceptance:
    """The issue's acceptance scenario: injected slow pairs + a deadline."""

    DELAY = 0.02
    DEADLINE = 0.25

    def overloaded_detector(self, grid, sleep=None, **kwargs):
        from tests.faultinjection.faults import SlowMeasure

        from repro.core.sts import STS

        slow_kwargs = {} if sleep is None else {"sleep": sleep}
        detector = StreamingColocationDetector(
            grid,
            window=300.0,
            measure_factory=lambda: SlowMeasure(
                STS(grid), delay=self.DELAY, **slow_kwargs
            ),
            **kwargs,
        )
        # 20 points per window -> 40 Eq. 10 terms per pair, more than one
        # anytime batch, so the full rung can actually run out of slice.
        for idx, oid in enumerate(["alice", "bob", "carol", "dave"]):
            feed_walk(detector, oid, x0=idx, y=10 + idx, t0=float(idx), n=20)
        return detector

    @pytest.mark.timing  # asserts real wall-clock latency; irreducible
    def test_returns_within_1_5x_deadline_with_bounded_scores(self, grid):
        import time

        detector = self.overloaded_detector(grid)
        start = time.monotonic()
        scores = detector.evaluate(deadline=self.DEADLINE)
        elapsed = time.monotonic() - start
        assert elapsed <= 1.5 * self.DEADLINE
        health = detector.last_health
        # Every scored pair has exactly one rung on the record, and the
        # overload shows up as degradation/shedding, never an exception.
        assert len(health.rungs) == health.pairs_scored
        assert health.deadline_hit or health.degraded
        assert health.pairs_scored + health.pairs_shed + health.breaker_skips == 6
        for score in scores:
            if not score.completed:
                assert score.lower <= score.similarity <= score.upper

    def test_repeated_misses_trip_the_pair_breaker(self, grid):
        # Fully deterministic: a fake clock drives the budget, the
        # breaker and the injected slowness (SlowMeasure "sleeps" by
        # advancing the clock), so no real time is spent or measured.
        from repro.serving import Budget, CircuitBreaker

        class FakeClock:
            def __init__(self):
                self.t = 0.0

            def __call__(self) -> float:
                return self.t

            def advance(self, dt: float) -> None:
                self.t += dt

        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, cooldown_base=3600.0, clock=clock)
        detector = self.overloaded_detector(
            grid, breaker=breaker, sleep=clock.advance
        )
        detector.evaluate(
            budget=Budget(deadline_ms=self.DEADLINE * 1000.0, clock=clock)
        )
        first = detector.last_health
        assert first.breaker_trips >= 1
        assert any(e.kind == "breaker-trip" for e in first.events)
        detector.evaluate(
            budget=Budget(deadline_ms=self.DEADLINE * 1000.0, clock=clock)
        )
        second = detector.last_health
        assert second.breaker_skips >= first.breaker_trips
        assert any(e.kind == "breaker-open" for e in second.events)
