"""Unit tests for the paper's baselines: CATS, EDwP, APM, KF, WGM, SST."""

import numpy as np
import pytest

from repro.core.grid import Grid
from repro.core.trajectory import Trajectory
from repro.similarity import (
    APM,
    CATS,
    KF,
    SST,
    WGM,
    EDwP,
    KalmanSmoother,
    calibrate_to_anchors,
    cats_similarity,
    edwp_distance,
    sst_similarity,
    wgm_similarity,
)


def east_walk(offset_y=0.0, t0=0.0, n=6, step=2.0, dt=1.0):
    xs = np.arange(n) * step
    return Trajectory.from_arrays(xs, np.full(n, offset_y), t0 + np.arange(n) * dt)


class TestCATS:
    def test_identical_is_one(self):
        a = east_walk()
        assert cats_similarity(a, a, epsilon=1.0, tau=0.5) == pytest.approx(1.0)

    def test_spatially_far_is_zero(self):
        a = east_walk()
        b = east_walk(offset_y=100.0)
        assert cats_similarity(a, b, epsilon=5.0, tau=0.5) == 0.0

    def test_temporally_far_is_zero(self):
        a = east_walk()
        b = east_walk(t0=1000.0)
        assert cats_similarity(a, b, epsilon=5.0, tau=10.0) == 0.0

    def test_symmetric(self):
        a = east_walk()
        b = east_walk(offset_y=1.0, t0=0.3)
        assert cats_similarity(a, b, 3.0, 2.0) == pytest.approx(cats_similarity(b, a, 3.0, 2.0))

    def test_linear_decay_with_distance(self):
        a = east_walk()
        near = east_walk(offset_y=1.0)
        far = east_walk(offset_y=3.0)
        assert cats_similarity(a, near, 5.0, 0.5) > cats_similarity(a, far, 5.0, 0.5)

    def test_wider_tau_finds_more_clues(self):
        a = east_walk()
        b = east_walk(t0=1.5)  # offset sampling times
        tight = cats_similarity(a, b, 5.0, 0.4)
        loose = cats_similarity(a, b, 5.0, 3.0)
        assert loose >= tight

    def test_parameter_validation(self):
        a = east_walk()
        with pytest.raises(ValueError):
            cats_similarity(a, a, epsilon=0.0, tau=1.0)
        with pytest.raises(ValueError):
            cats_similarity(a, a, epsilon=1.0, tau=0.0)
        with pytest.raises(ValueError):
            CATS(epsilon=-1.0, tau=1.0)

    def test_range(self):
        a = east_walk()
        b = east_walk(offset_y=0.5, t0=0.2)
        assert 0.0 <= cats_similarity(a, b, 2.0, 1.0) <= 1.0


class TestEDwP:
    def test_identical_is_zero(self):
        a = east_walk()
        assert edwp_distance(a.xy, a.xy) == pytest.approx(0.0)

    def test_subsampled_route_stays_close(self):
        # EDwP's selling point: a downsampled version of the same geometry
        # is much closer than a parallel route.
        dense = east_walk(n=9, step=1.0)
        sparse = dense.subsample([0, 4, 8])
        other = east_walk(offset_y=5.0, n=9, step=1.0)
        assert edwp_distance(dense.xy, sparse.xy) < edwp_distance(dense.xy, other.xy)

    def test_on_segment_points_are_free(self):
        # inserting a point that lies exactly on the other's segment
        a = np.array([[0.0, 0.0], [10.0, 0.0]])
        b = np.array([[0.0, 0.0], [5.0, 0.0], [10.0, 0.0]])
        assert edwp_distance(a, b) == pytest.approx(0.0, abs=1e-9)

    def test_symmetric(self):
        a = east_walk(n=4).xy
        b = east_walk(offset_y=2.0, n=5).xy
        assert edwp_distance(a, b) == pytest.approx(edwp_distance(b, a))

    def test_grows_with_separation(self):
        a = east_walk()
        near = east_walk(offset_y=1.0)
        far = east_walk(offset_y=10.0)
        assert edwp_distance(a.xy, far.xy) > edwp_distance(a.xy, near.xy)

    def test_single_point_inputs(self):
        a = np.array([[0.0, 0.0]])
        b = np.array([[3.0, 4.0]])
        assert edwp_distance(a, a) == pytest.approx(0.0)
        assert edwp_distance(a, b) > 0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            edwp_distance(np.empty((0, 2)), np.array([[0.0, 0.0]]))

    def test_measure_orientation(self):
        m = EDwP()
        assert not m.higher_is_better


class TestAPM:
    @pytest.fixture
    def grid(self):
        return Grid(-5, -5, 30, 30, cell_size=2.0)

    def test_calibration_snaps_to_centers(self, grid):
        traj = east_walk()
        anchors = calibrate_to_anchors(traj, grid)
        centers = grid.centers()
        for anchor in anchors:
            assert any(np.allclose(anchor, c) for c in centers)

    def test_calibration_dedupes_consecutive(self, grid):
        # A stationary trajectory (within one cell) calibrates to one anchor.
        traj = Trajectory.from_arrays([1.2, 1.3, 1.4], [1.2, 1.2, 1.3], [0, 1, 2])
        anchors = calibrate_to_anchors(traj, grid)
        assert len(anchors) == 1

    def test_calibration_unifies_sampling(self, grid):
        dense = east_walk(n=11, step=1.0)
        sparse = dense.subsample([0, 5, 10])
        a1 = calibrate_to_anchors(dense, grid)
        a2 = calibrate_to_anchors(sparse, grid)
        np.testing.assert_allclose(a1, a2)

    def test_empty_trajectory_raises(self, grid):
        with pytest.raises(ValueError):
            calibrate_to_anchors(Trajectory([]), grid)

    def test_invalid_step_fraction(self, grid):
        with pytest.raises(ValueError):
            calibrate_to_anchors(east_walk(), grid, step_fraction=0.0)

    def test_measure_identical_zero(self, grid):
        m = APM(grid)
        a = east_walk()
        assert m(a, a) == pytest.approx(0.0)

    def test_measure_caches_calibration(self, grid):
        m = APM(grid)
        a, b = east_walk(), east_walk(offset_y=4.0)
        m(a, b)
        assert len(m._cache) == 2
        m.clear_cache()
        assert len(m._cache) == 0


class TestKalman:
    def test_smoother_tracks_constant_velocity(self):
        rng = np.random.default_rng(0)
        ts = np.arange(20.0)
        xs = 2.0 * ts + rng.normal(0, 1.0, 20)
        traj = Trajectory.from_arrays(xs, np.zeros(20), ts)
        smoother = KalmanSmoother(traj, measurement_std=1.0, accel_std=0.1)
        smoothed = smoother.smoothed_positions
        raw_err = np.abs(xs - 2.0 * ts).mean()
        smooth_err = np.abs(smoothed[:, 0] - 2.0 * ts).mean()
        assert smooth_err < raw_err  # smoothing reduces noise

    def test_estimate_interpolates(self):
        ts = np.arange(10.0)
        traj = Trajectory.from_arrays(3.0 * ts, np.zeros(10), ts)
        smoother = KalmanSmoother(traj, measurement_std=0.5, accel_std=0.1)
        x, y = smoother.estimate(4.5)
        assert x == pytest.approx(13.5, abs=1.0)

    def test_estimate_extrapolates_beyond_span(self):
        ts = np.arange(10.0)
        traj = Trajectory.from_arrays(3.0 * ts, np.zeros(10), ts)
        smoother = KalmanSmoother(traj, measurement_std=0.5, accel_std=0.1)
        x, _ = smoother.estimate(11.0)
        assert x > 27.0  # keeps moving east

    def test_resample_count_and_span(self):
        traj = east_walk(n=8)
        smoother = KalmanSmoother(traj, measurement_std=0.5)
        pts = smoother.resample(5)
        assert pts.shape == (5, 2)

    def test_resample_single_point_trajectory(self):
        traj = Trajectory.from_arrays([1.0], [2.0], [0.0])
        smoother = KalmanSmoother(traj, measurement_std=0.5)
        pts = smoother.resample(4)
        assert pts.shape == (4, 2)
        np.testing.assert_allclose(pts, np.tile(pts[0], (4, 1)))

    def test_invalid_params(self):
        traj = east_walk()
        with pytest.raises(ValueError):
            KalmanSmoother(traj, measurement_std=0.0)
        with pytest.raises(ValueError):
            KalmanSmoother(traj, accel_std=-1.0)
        with pytest.raises(ValueError):
            KalmanSmoother(Trajectory([]))

    def test_kf_measure_identical_near_zero(self):
        m = KF(measurement_std=0.5, n_resample=10)
        a = east_walk(n=10)
        assert m(a, a) == pytest.approx(0.0, abs=1e-9)

    def test_kf_measure_separates(self):
        m = KF(measurement_std=0.5, n_resample=10)
        a = east_walk(n=10)
        near = east_walk(offset_y=1.0, n=10)
        far = east_walk(offset_y=20.0, n=10)
        assert m(a, far) > m(a, near)

    def test_resample_invalid(self):
        smoother = KalmanSmoother(east_walk())
        with pytest.raises(ValueError):
            smoother.resample(0)


class TestWGM:
    def test_identical_is_one(self):
        a = east_walk()
        assert wgm_similarity(a, a, spatial_scale=2.0, temporal_scale=2.0) == pytest.approx(1.0)

    def test_decays_with_distance(self):
        a = east_walk()
        near = east_walk(offset_y=1.0)
        far = east_walk(offset_y=10.0)
        s_near = wgm_similarity(a, near, 2.0, 2.0)
        s_far = wgm_similarity(a, far, 2.0, 2.0)
        assert s_near > s_far

    def test_decays_with_time_gap(self):
        a = east_walk()
        sync = east_walk()
        late = east_walk(t0=10.0)
        assert wgm_similarity(a, sync, 2.0, 2.0) > wgm_similarity(a, late, 2.0, 2.0)

    def test_weight_extremes(self):
        a = east_walk()
        b = east_walk(offset_y=5.0, t0=0.0)  # spatial gap only
        spatial_only = wgm_similarity(a, b, 2.0, 2.0, weight=1.0)
        temporal_only = wgm_similarity(a, b, 2.0, 2.0, weight=0.0)
        assert temporal_only == pytest.approx(1.0)  # same timestamps
        assert spatial_only < 1.0

    def test_n_points_two_uses_endpoints(self):
        # n_points=2 ignores mid-trajectory differences entirely.
        a = east_walk(n=5)
        wiggly_xs = [0.0, 2.0, 100.0, 6.0, 8.0]
        wiggly = Trajectory.from_arrays(wiggly_xs, np.zeros(5), np.arange(5.0))
        assert wgm_similarity(a, wiggly, 2.0, 2.0, n_points=2) == pytest.approx(1.0)
        assert wgm_similarity(a, wiggly, 2.0, 2.0, n_points=5) < 1.0

    def test_parameter_validation(self):
        a = east_walk()
        with pytest.raises(ValueError):
            wgm_similarity(a, a, 0.0, 1.0)
        with pytest.raises(ValueError):
            wgm_similarity(a, a, 1.0, 1.0, weight=1.5)
        with pytest.raises(ValueError):
            wgm_similarity(a, a, 1.0, 1.0, n_points=0)
        with pytest.raises(ValueError):
            WGM(spatial_scale=1.0, temporal_scale=-1.0)

    def test_symmetric(self):
        a = east_walk()
        b = east_walk(offset_y=2.0, t0=1.0, n=4)
        assert wgm_similarity(a, b, 2.0, 2.0) == pytest.approx(wgm_similarity(b, a, 2.0, 2.0))


class TestSST:
    def test_identical_is_one(self):
        a = east_walk()
        assert sst_similarity(a, a, spatial_scale=2.0, temporal_scale=2.0) == pytest.approx(1.0)

    def test_synchronized_interpolation(self):
        # b samples the same path at offset times; synchronized comparison
        # should still see them as nearly identical.
        a = east_walk(n=11, step=1.0)  # x = t
        b = Trajectory.from_arrays(
            np.arange(0.5, 10.0, 1.0), np.zeros(10), np.arange(0.5, 10.0, 1.0)
        )
        assert sst_similarity(a, b, 2.0, 2.0) > 0.95

    def test_out_of_span_penalized(self):
        a = east_walk()
        late = east_walk(t0=100.0)
        assert sst_similarity(a, late, 2.0, 2.0) < 0.01

    def test_decays_with_lateral_offset(self):
        a = east_walk()
        near = east_walk(offset_y=1.0)
        far = east_walk(offset_y=10.0)
        assert sst_similarity(a, near, 2.0, 2.0) > sst_similarity(a, far, 2.0, 2.0)

    def test_symmetric(self):
        a = east_walk(n=6)
        b = east_walk(offset_y=2.0, t0=1.5, n=4)
        assert sst_similarity(a, b, 2.0, 2.0) == pytest.approx(sst_similarity(b, a, 2.0, 2.0))

    def test_parameter_validation(self):
        a = east_walk()
        with pytest.raises(ValueError):
            sst_similarity(a, a, 0.0, 1.0)
        with pytest.raises(ValueError):
            SST(spatial_scale=1.0, temporal_scale=0.0)

    def test_range(self):
        a = east_walk()
        b = east_walk(offset_y=3.0, t0=2.0)
        assert 0.0 <= sst_similarity(a, b, 2.0, 2.0) <= 1.0
