"""Unit tests for co-location event detection."""

import numpy as np
import pytest

from repro.core.events import (
    ColocationEvent,
    colocation_timeline,
    detect_colocation_events,
)
from repro.core.grid import Grid
from repro.core.noise import GaussianNoiseModel
from repro.core.sts import STS
from repro.core.trajectory import Trajectory


@pytest.fixture
def grid():
    return Grid(0, 0, 100, 20, cell_size=2.0)


@pytest.fixture
def measure(grid):
    return STS(grid, noise_model=GaussianNoiseModel(1.0))


def walker(x0, speed, ts, y=10.0):
    ts = np.asarray(ts, dtype=float)
    return Trajectory.from_arrays(x0 + speed * ts, np.full(len(ts), y), ts)


class TestColocationTimeline:
    def test_no_temporal_overlap_empty(self, measure):
        a = walker(0, 1.0, np.arange(0, 10))
        b = walker(0, 1.0, np.arange(100, 110))
        times, cps = colocation_timeline(measure, a, b)
        assert times.size == 0 and cps.size == 0

    def test_covers_overlap_window(self, measure):
        a = walker(0, 1.0, np.arange(0, 21, 2))
        b = walker(0, 1.0, np.arange(10, 31, 2))
        times, cps = colocation_timeline(measure, a, b)
        assert times[0] == pytest.approx(10.0)
        assert times[-1] == pytest.approx(20.0)
        assert len(times) == len(cps)

    def test_includes_observed_timestamps(self, measure):
        a = walker(0, 1.0, [0.0, 7.3, 20.0])
        b = walker(0, 1.0, [1.0, 13.7, 20.0])
        times, _ = colocation_timeline(measure, a, b, time_step=5.0)
        assert 7.3 in times and 13.7 in times

    def test_spans_touching_at_an_instant(self, measure):
        a = walker(0, 1.0, np.arange(0, 11))
        b = walker(0, 1.0, np.arange(10, 21))  # shares exactly t=10
        times, cps = colocation_timeline(measure, a, b)
        assert len(times) == 1
        assert times[0] == 10.0
        assert 0.0 <= cps[0] <= 1.0

    def test_invalid_time_step(self, measure):
        a = walker(0, 1.0, np.arange(0, 10))
        with pytest.raises(ValueError, match="time_step"):
            colocation_timeline(measure, a, a, time_step=0.0)

    def test_probabilities_in_range(self, measure):
        a = walker(0, 1.0, np.arange(0, 20, 3))
        b = walker(0.5, 1.0, np.arange(1, 20, 3))
        _, cps = colocation_timeline(measure, a, b)
        assert (cps >= 0).all() and (cps <= 1).all()


class TestDetectEvents:
    def test_co_movers_single_long_event(self, measure):
        a = walker(0, 1.0, np.arange(0, 30, 3))
        b = walker(0.5, 1.0, np.arange(1, 30, 3))
        self_level = measure.similarity(a, a)
        events = detect_colocation_events(measure, a, b, threshold=0.3 * self_level)
        assert len(events) == 1
        assert events[0].duration > 20.0

    def test_crossing_walkers_brief_event(self, measure):
        # opposite directions: one crossing near t=25 at x=30
        a = walker(5, 1.0, np.arange(0, 50, 4))
        b = walker(55, -1.0, np.arange(0, 50, 4))
        events = detect_colocation_events(measure, a, b, threshold=0.01, time_step=2.0)
        assert len(events) >= 1
        main = max(events, key=lambda e: e.peak_probability)
        assert 15.0 < main.peak_time < 35.0
        # the crossing is brief relative to the walk
        assert main.duration < 30.0

    def test_separated_walkers_no_events(self, measure):
        a = walker(0, 1.0, np.arange(0, 30, 3), y=2.0)
        b = walker(0, 1.0, np.arange(0, 30, 3), y=18.0)
        assert detect_colocation_events(measure, a, b, threshold=0.01) == []

    def test_min_duration_filters(self, measure):
        a = walker(5, 1.0, np.arange(0, 50, 4))
        b = walker(55, -1.0, np.arange(0, 50, 4))
        all_events = detect_colocation_events(measure, a, b, threshold=0.01, time_step=2.0)
        long_only = detect_colocation_events(
            measure, a, b, threshold=0.01, time_step=2.0, min_duration=1e6
        )
        assert len(long_only) < max(len(all_events), 1) or long_only == []

    def test_exposure_positive_for_events(self, measure):
        a = walker(0, 1.0, np.arange(0, 30, 3))
        b = walker(0.5, 1.0, np.arange(1, 30, 3))
        events = detect_colocation_events(measure, a, b, threshold=0.005)
        assert events and all(e.exposure > 0 for e in events)

    def test_invalid_threshold(self, measure):
        a = walker(0, 1.0, np.arange(0, 10))
        with pytest.raises(ValueError, match="threshold"):
            detect_colocation_events(measure, a, a, threshold=0.0)

    def test_no_overlap_returns_empty(self, measure):
        a = walker(0, 1.0, np.arange(0, 10))
        b = walker(0, 1.0, np.arange(50, 60))
        assert detect_colocation_events(measure, a, b) == []

    def test_event_str(self):
        event = ColocationEvent(10.0, 20.0, 0.5, 15.0, 4.2)
        text = str(event)
        assert "10s" in text and "0.500" in text
        assert event.duration == 10.0
