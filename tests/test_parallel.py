"""Tests for the parallel pairwise scoring package (:mod:`repro.parallel`).

The contract under test: the parallel matrix equals the serial one to the
last bit (same scoring code per entry, deterministic assembly), for both
backends, any worker count, and both the symmetric and query-vs-gallery
shapes.
"""

import os

import numpy as np
import pytest

from repro.core.grid import Grid
from repro.core.sts import STS
from repro.core.trajectory import Trajectory
from repro.parallel import ParallelSTS, chunk_pairs, resolve_n_jobs


@pytest.fixture
def grid():
    return Grid(0, 0, 40, 20, cell_size=2.0)


@pytest.fixture
def gallery():
    """Four short overlapping trajectories in two corridors."""
    specs = [
        ([2.0, 8.0, 14.0, 20.0], 10.0, 0.0),
        ([4.0, 10.0, 16.0, 22.0], 10.0, 2.0),
        ([2.0, 8.0, 14.0, 20.0], 4.0, 0.0),
        ([20.0, 14.0, 8.0, 2.0], 6.0, 1.0),
    ]
    return [
        Trajectory.from_arrays(xs, [y] * len(xs), np.array([0.0, 5.0, 10.0, 15.0]) + t0)
        for xs, y, t0 in specs
    ]


class TestResolveNJobs:
    def test_none_and_one_are_serial(self):
        assert resolve_n_jobs(None) == 1
        assert resolve_n_jobs(1) == 1

    def test_positive_passthrough(self):
        assert resolve_n_jobs(3) == 3

    def test_minus_one_is_available_cpus(self):
        from repro.parallel import available_cpus

        assert resolve_n_jobs(-1) == available_cpus()

    def test_sklearn_negative_convention(self):
        from repro.parallel import available_cpus

        assert resolve_n_jobs(-2) == max(1, available_cpus() - 1)

    def test_available_cpus_prefers_affinity(self, monkeypatch):
        # A cgroup-limited container may expose 64 cores via cpu_count
        # while pinning the process to 2; the pool must size to the 2.
        monkeypatch.setattr(os, "sched_getaffinity", lambda pid: {0, 5}, raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: 64)
        from repro.parallel import available_cpus

        assert available_cpus() == 2
        assert resolve_n_jobs(-1) == 2

    def test_available_cpus_falls_back_without_affinity(self, monkeypatch):
        def boom(pid):
            raise AttributeError("no sched_getaffinity on this platform")

        monkeypatch.setattr(os, "sched_getaffinity", boom, raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: 7)
        from repro.parallel import available_cpus

        assert available_cpus() == 7

    def test_zero_rejected(self):
        with pytest.raises(ValueError, match="n_jobs"):
            resolve_n_jobs(0)


class TestChunkPairs:
    def test_partitions_without_loss_or_duplication(self):
        pairs = [(i, j) for i in range(7) for j in range(i, 7)]
        chunks = chunk_pairs(pairs, n_workers=3)
        flat = [p for chunk in chunks for p in chunk]
        assert sorted(flat) == sorted(pairs)
        assert all(chunk for chunk in chunks)

    def test_chunk_count_bounded_by_pairs(self):
        pairs = [(0, 0), (0, 1), (1, 1)]
        chunks = chunk_pairs(pairs, n_workers=8, chunks_per_worker=4)
        assert len(chunks) == len(pairs)

    def test_interleaved_assignment(self):
        pairs = list(enumerate(range(8)))
        chunks = chunk_pairs(pairs, n_workers=1, chunks_per_worker=2)
        assert chunks == [pairs[0::2], pairs[1::2]]

    def test_empty(self):
        assert chunk_pairs([], n_workers=4) == []


class TestParallelMatchesSerial:
    def test_thread_backend_symmetric(self, grid, gallery):
        serial = STS(grid).pairwise(gallery)
        parallel = STS(grid).pairwise(gallery, n_jobs=4, backend="thread")
        assert abs(parallel - serial).max() <= 1e-12
        assert np.array_equal(parallel, parallel.T)

    def test_thread_backend_query_gallery(self, grid, gallery):
        serial = STS(grid).pairwise(gallery[:3], queries=gallery[3:])
        parallel = STS(grid).pairwise(
            gallery[:3], queries=gallery[3:], n_jobs=2, backend="thread"
        )
        assert abs(parallel - serial).max() <= 1e-12

    def test_process_backend_symmetric(self, grid, gallery):
        serial = STS(grid).pairwise(gallery)
        parallel = STS(grid).pairwise(gallery, n_jobs=2, backend="process")
        assert abs(parallel - serial).max() <= 1e-12

    def test_n_jobs_one_delegates_to_serial(self, grid, gallery):
        measure = STS(grid)
        wrapper = ParallelSTS(measure, n_jobs=1)
        assert np.array_equal(wrapper.pairwise(gallery), measure.pairwise(gallery))

    def test_single_pair_passthrough(self, grid, gallery):
        measure = STS(grid)
        wrapper = ParallelSTS(measure, n_jobs=2, backend="thread")
        assert wrapper.similarity(gallery[0], gallery[1]) == measure.similarity(
            gallery[0], gallery[1]
        )

    def test_empty_gallery(self, grid):
        out = ParallelSTS(STS(grid), n_jobs=2, backend="thread").pairwise([])
        assert out.shape == (0, 0)


class TestBackendSelection:
    def test_invalid_backend_rejected(self, grid, gallery):
        with pytest.raises(ValueError, match="backend"):
            STS(grid).pairwise(gallery, n_jobs=2, backend="fork")

    def test_auto_falls_back_to_threads_for_unpicklable_measure(self, grid, gallery):
        # A closure-based transition policy cannot cross a process
        # boundary; "auto" must quietly use the thread backend instead.
        from repro.core.speed import GaussianSpeedModel
        from repro.core.transition import SpeedTransitionModel

        measure = STS(grid, transition=lambda t: SpeedTransitionModel(GaussianSpeedModel(1.0, 0.3)))
        serial = np.array(
            [[measure.similarity(a, b) for b in gallery] for a in gallery]
        )
        parallel = ParallelSTS(measure, n_jobs=2, backend="auto").pairwise(gallery)
        assert abs(parallel - serial).max() <= 1e-12

    def test_process_backend_raises_for_unpicklable_measure_unsupervised(
        self, grid, gallery
    ):
        from repro.core.speed import GaussianSpeedModel
        from repro.core.transition import SpeedTransitionModel

        measure = STS(grid, transition=lambda t: SpeedTransitionModel(GaussianSpeedModel(1.0, 0.3)))
        with pytest.raises(Exception):
            ParallelSTS(
                measure, n_jobs=2, backend="process", supervised=False
            ).pairwise(gallery)

    def test_process_backend_degrades_for_unpicklable_measure_supervised(
        self, grid, gallery
    ):
        # The supervised executor steps down the process→thread→serial
        # ladder instead of failing, and records the degradation.
        from repro.core.speed import GaussianSpeedModel
        from repro.core.transition import SpeedTransitionModel

        measure = STS(grid, transition=lambda t: SpeedTransitionModel(GaussianSpeedModel(1.0, 0.3)))
        serial = np.array(
            [[measure.similarity(a, b) for b in gallery] for a in gallery]
        )
        wrapper = ParallelSTS(measure, n_jobs=2, backend="process")
        parallel = wrapper.pairwise(gallery)
        assert abs(parallel - serial).max() <= 1e-12
        assert wrapper.last_health is not None
        assert wrapper.last_health.degradations
        assert "process" not in wrapper.last_health.backends_used
