"""Unit tests for location-noise models (Eq. 3)."""

import numpy as np
import pytest

from repro.core.grid import Grid
from repro.core.noise import (
    DeterministicNoiseModel,
    GaussianNoiseModel,
    UniformDiskNoiseModel,
)


class TestGaussianNoiseModel:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            GaussianNoiseModel(sigma=0.0)
        with pytest.raises(ValueError):
            GaussianNoiseModel(sigma=-1.0)
        with pytest.raises(ValueError):
            GaussianNoiseModel(sigma=1.0, truncate=0.0)

    def test_distribution_sums_to_one(self, small_grid):
        model = GaussianNoiseModel(sigma=2.0)
        cells, probs = model.cell_distribution(small_grid, 10.0, 10.0)
        assert probs.sum() == pytest.approx(1.0)
        assert len(cells) == len(probs)
        assert (probs > 0).all()

    def test_mass_concentrated_near_observation(self, small_grid):
        model = GaussianNoiseModel(sigma=1.0)
        cells, probs = model.cell_distribution(small_grid, 11.0, 11.0)
        best = cells[np.argmax(probs)]
        assert best == small_grid.cell_of(11.0, 11.0)

    def test_probability_decays_with_distance(self, small_grid):
        model = GaussianNoiseModel(sigma=2.0)
        dense = model.dense_distribution(small_grid, 11.0, 11.0)
        centers = small_grid.centers()
        d = np.hypot(centers[:, 0] - 11.0, centers[:, 1] - 11.0)
        order = np.argsort(d)
        # probabilities non-increasing with distance (allowing fp ties)
        sorted_probs = dense[order]
        assert np.all(np.diff(sorted_probs) <= 1e-12)

    def test_dense_matches_sparse(self, small_grid):
        model = GaussianNoiseModel(sigma=2.0, truncate=10.0)  # wide: covers all
        cells, probs = model.cell_distribution(small_grid, 9.0, 9.0)
        dense = model.dense_distribution(small_grid, 9.0, 9.0)
        sparse_dense = np.zeros(small_grid.n_cells)
        sparse_dense[cells] = probs
        np.testing.assert_allclose(sparse_dense, dense, atol=1e-12)

    def test_truncation_limits_support(self, small_grid):
        tight = GaussianNoiseModel(sigma=1.0, truncate=2.0)
        wide = GaussianNoiseModel(sigma=1.0, truncate=6.0)
        cells_tight, _ = tight.cell_distribution(small_grid, 10.0, 10.0)
        cells_wide, _ = wide.cell_distribution(small_grid, 10.0, 10.0)
        assert len(cells_tight) < len(cells_wide)

    def test_support_includes_containing_cell(self, small_grid):
        model = GaussianNoiseModel(sigma=0.01)  # tiny noise
        cells, probs = model.cell_distribution(small_grid, 5.0, 5.0)
        assert small_grid.cell_of(5.0, 5.0) in cells
        assert probs.sum() == pytest.approx(1.0)

    def test_observation_outside_grid_clamped(self, small_grid):
        model = GaussianNoiseModel(sigma=2.0)
        cells, probs = model.cell_distribution(small_grid, -50.0, -50.0)
        assert len(cells) >= 1
        assert probs.sum() == pytest.approx(1.0)

    def test_literal_paper_form(self, small_grid):
        # squared=False reproduces the printed Eq. 3 (Laplace-like kernel);
        # still normalized, heavier tails than the Gaussian.
        gauss = GaussianNoiseModel(sigma=2.0, squared=True)
        laplace = GaussianNoiseModel(sigma=2.0, squared=False)
        dg = gauss.dense_distribution(small_grid, 10.0, 10.0)
        dl = laplace.dense_distribution(small_grid, 10.0, 10.0)
        assert dg.sum() == pytest.approx(1.0)
        assert dl.sum() == pytest.approx(1.0)
        # Laplace puts more mass far away: compare tail mass beyond 4 m.
        centers = small_grid.centers()
        far = np.hypot(centers[:, 0] - 10.0, centers[:, 1] - 10.0) > 4.0
        assert dl[far].sum() > dg[far].sum()

    def test_sigma_equals_paper_mall_setting(self):
        # 3 m error on a 3 m grid: support stays local (a few dozen cells).
        grid = Grid(0, 0, 150, 150, cell_size=3.0)
        model = GaussianNoiseModel(sigma=3.0)
        cells, _ = model.cell_distribution(grid, 75.0, 75.0)
        assert 4 < len(cells) < 100


class TestDeterministicNoiseModel:
    def test_point_mass(self, small_grid):
        model = DeterministicNoiseModel()
        cells, probs = model.cell_distribution(small_grid, 7.3, 3.1)
        assert len(cells) == 1
        assert cells[0] == small_grid.cell_of(7.3, 3.1)
        assert probs[0] == pytest.approx(1.0)

    def test_dense_point_mass(self, small_grid):
        model = DeterministicNoiseModel()
        dense = model.dense_distribution(small_grid, 7.3, 3.1)
        assert dense.sum() == pytest.approx(1.0)
        assert dense[small_grid.cell_of(7.3, 3.1)] == pytest.approx(1.0)

    def test_zero_support_radius(self, small_grid):
        assert DeterministicNoiseModel().support_radius(small_grid) == 0.0


class TestUniformDiskNoiseModel:
    def test_invalid_radius(self):
        with pytest.raises(ValueError):
            UniformDiskNoiseModel(radius=0.0)

    def test_uniform_over_disk(self, small_grid):
        model = UniformDiskNoiseModel(radius=5.0)
        cells, probs = model.cell_distribution(small_grid, 10.0, 10.0)
        assert len(cells) > 1
        # all in-disk cells get equal probability
        np.testing.assert_allclose(probs, probs[0])
        assert probs.sum() == pytest.approx(1.0)

    def test_support_matches_radius(self, small_grid):
        model = UniformDiskNoiseModel(radius=5.0)
        cells, _ = model.cell_distribution(small_grid, 10.0, 10.0)
        centers = small_grid.centers()[cells]
        d = np.hypot(centers[:, 0] - 10.0, centers[:, 1] - 10.0)
        assert (d <= 5.0 + 1e-9).all()
