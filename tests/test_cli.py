"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_matching_defaults(self):
        args = build_parser().parse_args(["matching"])
        assert args.dataset == "taxi"
        assert args.size == 30
        assert args.seed == 0

    def test_experiment_figure_choices(self):
        args = build_parser().parse_args(["experiment", "fig10", "--dataset", "mall"])
        assert args.figure == "fig10"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])

    def test_generate_requires_out(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["generate"])


class TestCommands:
    def test_list_measures(self, capsys):
        assert main(["list-measures"]) == 0
        out = capsys.readouterr().out
        for name in ["dtw", "cats", "edwp", "sst", "wgm"]:
            assert name in out

    def test_generate_writes_csv(self, tmp_path, capsys):
        out_file = tmp_path / "corpus.csv"
        code = main(
            ["generate", "--dataset", "taxi", "--size", "2", "--seed", "1", "--out", str(out_file)]
        )
        assert code == 0
        assert out_file.exists()
        from repro.datasets import load_trajectories_csv

        assert len(load_trajectories_csv(out_file)) == 2

    def test_matching_subset(self, capsys):
        code = main(
            ["matching", "--dataset", "taxi", "--size", "4", "--seed", "2", "--methods", "WGM", "SST"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "WGM" in out and "SST" in out and "precision" in out

    def test_experiment_fig10_mall(self, capsys):
        code = main(["experiment", "fig10", "--dataset", "mall", "--size", "4", "--seed", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "STS-N" in out and "STS-F" in out

    def test_report_to_file(self, tmp_path, capsys):
        out_file = tmp_path / "report.md"
        code = main(
            [
                "report",
                "--dataset",
                "taxi",
                "--size",
                "4",
                "--seed",
                "2",
                "--only",
                "fig10",
                "--out",
                str(out_file),
            ]
        )
        assert code == 0
        assert "component ablation" in out_file.read_text()

    def test_link_command(self, tmp_path, capsys):
        corpus = tmp_path / "corpus.csv"
        main(["generate", "--dataset", "taxi", "--size", "3", "--seed", "5", "--out", str(corpus)])
        capsys.readouterr()
        code = main(
            [
                "link",
                "--queries",
                str(corpus),
                "--gallery",
                str(corpus),
                "--cell",
                "100",
                "--sigma",
                "10",
                "--top",
                "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        # every query's best match is itself
        for line in out.strip().splitlines():
            query_id = line.split(":")[0]
            assert f"{query_id}: {query_id}" in line

    def test_events_command(self, tmp_path, capsys):
        corpus = tmp_path / "corpus.csv"
        main(["generate", "--dataset", "mall", "--size", "2", "--seed", "5", "--out", str(corpus)])
        capsys.readouterr()
        code = main(
            [
                "events",
                "--corpus",
                str(corpus),
                "--a",
                "visitor-0000",
                "--b",
                "visitor-0001",
                "--cell",
                "3",
                "--sigma",
                "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "STS(visitor-0000, visitor-0001)" in out

    def test_groups_command(self, tmp_path, capsys):
        corpus = tmp_path / "corpus.csv"
        main(["generate", "--dataset", "mall", "--size", "3", "--seed", "5", "--out", str(corpus)])
        capsys.readouterr()
        code = main(
            ["groups", "--corpus", str(corpus), "--cell", "3", "--sigma", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "trajectories" in out and "threshold" in out

    def test_groups_needs_two(self, tmp_path, capsys):
        corpus = tmp_path / "one.csv"
        main(["generate", "--dataset", "mall", "--size", "1", "--seed", "5", "--out", str(corpus)])
        with pytest.raises(SystemExit, match="two"):
            main(["groups", "--corpus", str(corpus), "--cell", "3", "--sigma", "3"])

    def test_events_unknown_object(self, tmp_path, capsys):
        corpus = tmp_path / "corpus.csv"
        main(["generate", "--dataset", "mall", "--size", "2", "--seed", "5", "--out", str(corpus)])
        with pytest.raises(SystemExit, match="not in corpus"):
            main(
                [
                    "events",
                    "--corpus",
                    str(corpus),
                    "--a",
                    "nobody",
                    "--b",
                    "visitor-0001",
                    "--cell",
                    "3",
                    "--sigma",
                    "3",
                ]
            )
