"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_matching_defaults(self):
        args = build_parser().parse_args(["matching"])
        assert args.dataset == "taxi"
        assert args.size == 30
        assert args.seed == 0

    def test_experiment_figure_choices(self):
        args = build_parser().parse_args(["experiment", "fig10", "--dataset", "mall"])
        assert args.figure == "fig10"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])

    def test_generate_requires_out(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["generate"])


class TestCommands:
    def test_list_measures(self, capsys):
        assert main(["list-measures"]) == 0
        out = capsys.readouterr().out
        for name in ["dtw", "cats", "edwp", "sst", "wgm"]:
            assert name in out

    def test_generate_writes_csv(self, tmp_path, capsys):
        out_file = tmp_path / "corpus.csv"
        code = main(
            ["generate", "--dataset", "taxi", "--size", "2", "--seed", "1", "--out", str(out_file)]
        )
        assert code == 0
        assert out_file.exists()
        from repro.datasets import load_trajectories_csv

        assert len(load_trajectories_csv(out_file)) == 2

    def test_matching_subset(self, capsys):
        code = main(
            ["matching", "--dataset", "taxi", "--size", "4", "--seed", "2", "--methods", "WGM", "SST"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "WGM" in out and "SST" in out and "precision" in out

    def test_experiment_fig10_mall(self, capsys):
        code = main(["experiment", "fig10", "--dataset", "mall", "--size", "4", "--seed", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "STS-N" in out and "STS-F" in out

    def test_report_to_file(self, tmp_path, capsys):
        out_file = tmp_path / "report.md"
        code = main(
            [
                "report",
                "--dataset",
                "taxi",
                "--size",
                "4",
                "--seed",
                "2",
                "--only",
                "fig10",
                "--out",
                str(out_file),
            ]
        )
        assert code == 0
        assert "component ablation" in out_file.read_text()

    def test_link_command(self, tmp_path, capsys):
        corpus = tmp_path / "corpus.csv"
        main(["generate", "--dataset", "taxi", "--size", "3", "--seed", "5", "--out", str(corpus)])
        capsys.readouterr()
        code = main(
            [
                "link",
                "--queries",
                str(corpus),
                "--gallery",
                str(corpus),
                "--cell",
                "100",
                "--sigma",
                "10",
                "--top",
                "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        # every query's best match is itself
        for line in out.strip().splitlines():
            query_id = line.split(":")[0]
            assert f"{query_id}: {query_id}" in line

    def test_events_command(self, tmp_path, capsys):
        corpus = tmp_path / "corpus.csv"
        main(["generate", "--dataset", "mall", "--size", "2", "--seed", "5", "--out", str(corpus)])
        capsys.readouterr()
        code = main(
            [
                "events",
                "--corpus",
                str(corpus),
                "--a",
                "visitor-0000",
                "--b",
                "visitor-0001",
                "--cell",
                "3",
                "--sigma",
                "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "STS(visitor-0000, visitor-0001)" in out

    def test_groups_command(self, tmp_path, capsys):
        corpus = tmp_path / "corpus.csv"
        main(["generate", "--dataset", "mall", "--size", "3", "--seed", "5", "--out", str(corpus)])
        capsys.readouterr()
        code = main(
            ["groups", "--corpus", str(corpus), "--cell", "3", "--sigma", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "trajectories" in out and "threshold" in out

    def test_groups_needs_two(self, tmp_path, capsys):
        corpus = tmp_path / "one.csv"
        main(["generate", "--dataset", "mall", "--size", "1", "--seed", "5", "--out", str(corpus)])
        with pytest.raises(SystemExit, match="two"):
            main(["groups", "--corpus", str(corpus), "--cell", "3", "--sigma", "3"])

    def test_events_unknown_object(self, tmp_path, capsys):
        corpus = tmp_path / "corpus.csv"
        main(["generate", "--dataset", "mall", "--size", "2", "--seed", "5", "--out", str(corpus)])
        with pytest.raises(SystemExit, match="not in corpus"):
            main(
                [
                    "events",
                    "--corpus",
                    str(corpus),
                    "--a",
                    "nobody",
                    "--b",
                    "visitor-0001",
                    "--cell",
                    "3",
                    "--sigma",
                    "3",
                ]
            )


class TestStreamCommand:
    @staticmethod
    def write_sightings(path, n=40, seed=7):
        import csv

        import numpy as np

        rng = np.random.default_rng(seed)
        t = 0.0
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["object_id", "x", "y", "t"])
            for _ in range(n):
                t += float(rng.exponential(2.0))
                writer.writerow(
                    [
                        f"dev-{int(rng.integers(0, 3))}",
                        float(rng.uniform(0, 40)),
                        float(rng.uniform(0, 20)),
                        t,
                    ]
                )

    def test_stream_without_wal(self, tmp_path, capsys):
        corpus = tmp_path / "sightings.csv"
        self.write_sightings(corpus)
        code = main(
            [
                "stream", "--corpus", str(corpus), "--cell", "2", "--sigma",
                "2", "--window", "60", "--on-error", "skip",
            ]
        )
        assert code == 0
        assert "streamed 40 sighting(s)" in capsys.readouterr().out

    def test_stream_with_wal_then_resume(self, tmp_path, capsys):
        corpus = tmp_path / "sightings.csv"
        self.write_sightings(corpus)
        wal_dir = tmp_path / "wal"
        base = [
            "stream", "--corpus", str(corpus), "--cell", "2", "--sigma", "2",
            "--window", "60", "--on-error", "skip", "--wal-dir", str(wal_dir),
            "--snapshot-every", "16",
        ]
        assert main(base) == 0
        first = capsys.readouterr().out
        assert (wal_dir / "wal-meta.json").exists()
        # Resume replays nothing new (every event is already ingested)
        # and reproduces the identical ranking.
        assert main(base + ["--resume"]) == 0
        captured = capsys.readouterr()
        assert "recovered from" in captured.err
        assert "streamed 0 sighting(s)" in captured.out
        assert captured.out.splitlines()[1:] == first.splitlines()[1:]

    def test_stream_resume_after_crash_before_drain(self, tmp_path, capsys):
        """A crash while sightings are still queued must not re-offer them.

        The WAL journals ``offer`` commands before ``drain`` applies any,
        so a kill in that window recovers a detector whose stream time is
        still behind the queued events.  Resume has to skip past the
        *queued* high-water mark, or it would offer the same timestamps
        twice and trip the duplicate policy."""
        import csv

        from repro import Grid
        from repro.core.noise import GaussianNoiseModel
        from repro.streaming import SightingEvent, StreamingColocationDetector
        from repro.streaming_wal import StreamingWAL

        corpus = tmp_path / "sightings.csv"
        self.write_sightings(corpus)
        with open(corpus, newline="") as handle:
            events = [
                SightingEvent(r["object_id"], float(r["x"]), float(r["y"]), float(r["t"]))
                for r in csv.DictReader(handle)
            ]
        wal_dir = tmp_path / "wal"
        detector = StreamingColocationDetector(
            Grid(0, 0, 40, 20, cell_size=2.0),
            window=60.0,
            noise_model=GaussianNoiseModel(2.0),
            on_error="skip",
            wal=StreamingWAL(wal_dir, snapshot_every=None),
        )
        for event in events[:25]:
            detector.offer(event)  # journaled + durable, never drained
        del detector  # crash: no drain, no snapshot, no close
        code = main(
            [
                "stream", "--corpus", str(corpus), "--cell", "2", "--sigma",
                "2", "--window", "60", "--on-error", "skip", "--wal-dir",
                str(wal_dir), "--resume",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "recovered from" in captured.err
        # Only the 15 never-offered events stream; the 25 queued ones are
        # recognized as already journaled.
        assert "streamed 15 sighting(s)" in captured.out
        assert "dropped 0 malformed / 0 duplicate" in captured.out

    def test_stream_resume_requires_wal_dir(self, tmp_path):
        corpus = tmp_path / "sightings.csv"
        self.write_sightings(corpus, n=5)
        with pytest.raises(SystemExit, match="--resume requires --wal-dir"):
            main(
                [
                    "stream", "--corpus", str(corpus), "--cell", "2",
                    "--sigma", "2", "--resume",
                ]
            )
