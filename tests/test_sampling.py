"""Unit tests for sampling, splitting and distortion treatments."""

import numpy as np
import pytest

from repro.core.trajectory import Path, Trajectory
from repro.simulation.sampling import (
    alternate_split,
    distort,
    downsample,
    periodic_times,
    poisson_times,
    sample_path,
)


@pytest.fixture
def line_path():
    return Path(np.array([[0.0, 0.0], [100.0, 0.0]]), np.array([0.0, 100.0]), object_id="line")


class TestSamplingTimes:
    def test_periodic_spacing(self):
        times = periodic_times(0.0, 60.0, 15.0)
        np.testing.assert_allclose(times, [0, 15, 30, 45, 60])

    def test_periodic_includes_endpoint_when_divisible(self):
        assert periodic_times(0.0, 45.0, 15.0)[-1] == pytest.approx(45.0)

    def test_periodic_invalid(self):
        with pytest.raises(ValueError):
            periodic_times(0, 10, 0.0)
        with pytest.raises(ValueError):
            periodic_times(10, 0, 1.0)

    def test_poisson_starts_at_start(self, rng):
        times = poisson_times(5.0, 100.0, 10.0, rng)
        assert times[0] == 5.0
        assert (times <= 100.0).all()
        assert np.all(np.diff(times) > 0)

    def test_poisson_mean_interval(self, rng):
        times = poisson_times(0.0, 100000.0, 10.0, rng)
        gaps = np.diff(times)
        assert gaps.mean() == pytest.approx(10.0, rel=0.1)

    def test_poisson_invalid(self, rng):
        with pytest.raises(ValueError):
            poisson_times(0, 10, -1.0, rng)
        with pytest.raises(ValueError):
            poisson_times(10, 0, 1.0, rng)


class TestSamplePath:
    def test_noise_free_on_path(self, line_path):
        traj = sample_path(line_path, np.array([0.0, 50.0, 100.0]))
        assert traj[1].x == pytest.approx(50.0)
        assert traj[1].y == pytest.approx(0.0)

    def test_out_of_span_times_dropped(self, line_path):
        traj = sample_path(line_path, np.array([-10.0, 50.0, 500.0]))
        assert len(traj) == 1

    def test_noise_requires_rng(self, line_path):
        with pytest.raises(ValueError, match="rng"):
            sample_path(line_path, np.array([0.0]), noise_std=1.0)

    def test_noise_perturbs(self, line_path, rng):
        clean = sample_path(line_path, np.arange(0.0, 101.0, 10.0))
        noisy = sample_path(line_path, np.arange(0.0, 101.0, 10.0), noise_std=5.0, rng=rng)
        assert not np.allclose(clean.xy, noisy.xy)
        # but stays within a few sigma
        assert np.abs(noisy.xy - clean.xy).max() < 5.0 * 5

    def test_object_id_propagation(self, line_path):
        traj = sample_path(line_path, np.array([0.0]))
        assert traj.object_id == "line"
        traj2 = sample_path(line_path, np.array([0.0]), object_id="override")
        assert traj2.object_id == "override"


class TestAlternateSplit:
    def test_partition(self, straight_trajectory):
        first, second = alternate_split(straight_trajectory)
        assert len(first) == 5 and len(second) == 5
        merged = sorted([p.t for p in first] + [p.t for p in second])
        np.testing.assert_allclose(merged, straight_trajectory.timestamps)

    def test_interleaved_times(self, straight_trajectory):
        first, second = alternate_split(straight_trajectory)
        assert first.timestamps[0] < second.timestamps[0]
        assert (first.timestamps == np.arange(0, 10, 2)).all()

    def test_odd_length(self):
        traj = Trajectory.from_arrays(np.arange(7.0), np.zeros(7), np.arange(7.0))
        first, second = alternate_split(traj)
        assert len(first) == 4 and len(second) == 3

    def test_too_short_raises(self, single_point_trajectory):
        with pytest.raises(ValueError):
            alternate_split(single_point_trajectory)

    def test_no_shared_points(self, straight_trajectory):
        first, second = alternate_split(straight_trajectory)
        assert set(p.t for p in first).isdisjoint(p.t for p in second)


class TestDownsample:
    def test_keeps_fraction(self, rng):
        traj = Trajectory.from_arrays(np.arange(100.0), np.zeros(100), np.arange(100.0))
        sub = downsample(traj, 0.3, rng)
        assert len(sub) == 30

    def test_preserves_order_and_membership(self, rng, straight_trajectory):
        sub = downsample(straight_trajectory, 0.5, rng)
        assert np.all(np.diff(sub.timestamps) > 0)
        original_times = set(straight_trajectory.timestamps)
        assert all(p.t in original_times for p in sub)

    def test_rate_one_identity(self, rng, straight_trajectory):
        assert downsample(straight_trajectory, 1.0, rng) == straight_trajectory

    def test_min_points_floor(self, rng, straight_trajectory):
        sub = downsample(straight_trajectory, 0.01, rng, min_points=2)
        assert len(sub) == 2

    def test_invalid_rate(self, rng, straight_trajectory):
        with pytest.raises(ValueError):
            downsample(straight_trajectory, 0.0, rng)
        with pytest.raises(ValueError):
            downsample(straight_trajectory, 1.5, rng)

    def test_empty_raises(self, rng):
        with pytest.raises(ValueError):
            downsample(Trajectory([]), 0.5, rng)

    def test_deterministic_given_seed(self, straight_trajectory):
        a = downsample(straight_trajectory, 0.4, np.random.default_rng(9))
        b = downsample(straight_trajectory, 0.4, np.random.default_rng(9))
        assert a == b


class TestDistort:
    def test_zero_beta_identity(self, rng, straight_trajectory):
        assert distort(straight_trajectory, 0.0, rng) is straight_trajectory

    def test_preserves_timestamps_and_length(self, rng, straight_trajectory):
        noisy = distort(straight_trajectory, 3.0, rng)
        assert len(noisy) == len(straight_trajectory)
        np.testing.assert_allclose(noisy.timestamps, straight_trajectory.timestamps)

    def test_noise_magnitude_matches_eq14(self):
        traj = Trajectory.from_arrays(np.zeros(5000), np.zeros(5000), np.arange(5000.0))
        noisy = distort(traj, 4.0, np.random.default_rng(0))
        assert noisy.xy[:, 0].std() == pytest.approx(4.0, rel=0.1)
        assert noisy.xy[:, 1].std() == pytest.approx(4.0, rel=0.1)

    def test_negative_beta_raises(self, rng, straight_trajectory):
        with pytest.raises(ValueError):
            distort(straight_trajectory, -1.0, rng)

    def test_object_id_preserved(self, rng, straight_trajectory):
        assert distort(straight_trajectory, 1.0, rng).object_id == "straight"
