"""Unit tests for the cluster layer: placement, hedging, parity, guards."""

from __future__ import annotations

import os
import subprocess
import sys

import numpy as np
import pytest

from repro.cluster import ClusterMatcher, ClusterService, ShardPlan, gallery_keys
from repro.cluster.service import _LatencyTracker
from repro.core.grid import Grid
from repro.core.sts import STS
from repro.core.trajectory import Trajectory
from repro.index.matcher import FilteredMatcher
from repro.obs import MetricsRegistry


def make_gallery(n: int, seed: int = 0) -> list[Trajectory]:
    rng = np.random.default_rng(seed)
    gallery = []
    for i in range(n):
        ts = np.sort(rng.uniform(0.0, 60.0, 6))
        xs = rng.uniform(2.0, 38.0, 6)
        ys = rng.uniform(2.0, 18.0, 6)
        gallery.append(Trajectory.from_arrays(xs, ys, ts, object_id=f"g{i}"))
    return gallery


# ----------------------------------------------------------------------
# ShardPlan properties
# ----------------------------------------------------------------------
class TestShardPlan:
    def test_every_key_on_exactly_r_distinct_replicas(self):
        plan = ShardPlan(n_shards=5, n_replicas=3)
        for key in (f"traj-{i}" for i in range(500)):
            replicas = plan.replicas_of(key)
            assert len(replicas) == 3
            assert len(set(replicas)) == 3  # distinct workers
            shards = {shard for shard, _ in replicas}
            assert len(shards) == 1  # all replicas of the owning shard
            assert 0 <= next(iter(shards)) < 5

    def test_assign_is_a_partition(self):
        plan = ShardPlan(n_shards=4)
        keys = [f"k{i}" for i in range(200)]
        assignment = plan.assign(keys)
        seen = [pos for members in assignment for pos in members]
        assert sorted(seen) == list(range(200))
        for shard, members in enumerate(assignment):
            for pos in members:
                assert plan.shard_of(keys[pos]) == shard

    def test_deterministic_within_process(self):
        plan = ShardPlan(n_shards=7, n_replicas=2)
        keys = [f"object-{i}" for i in range(300)]
        assert plan.assign(keys) == plan.assign(keys)
        assert ShardPlan(7, 2).assign(keys) == plan.assign(keys)

    def test_deterministic_across_processes(self):
        """Placement must not depend on the per-process ``hash`` salt."""
        snippet = (
            "from repro.cluster import ShardPlan;"
            "plan = ShardPlan(5, 2);"
            "print([plan.shard_of(f'traj-{i}') for i in range(100)])"
        )
        env = dict(os.environ, PYTHONPATH="src", PYTHONHASHSEED="12345")
        runs = []
        for seed in ("12345", "99999"):
            env["PYTHONHASHSEED"] = seed
            out = subprocess.run(
                [sys.executable, "-c", snippet],
                capture_output=True, text=True, env=env, check=True,
                cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            )
            runs.append(out.stdout.strip())
        assert runs[0] == runs[1]
        plan = ShardPlan(5, 2)
        assert runs[0] == str([plan.shard_of(f"traj-{i}") for i in range(100)])

    def test_adding_a_shard_moves_about_one_in_n_keys(self):
        keys = [f"traj-{i}" for i in range(3000)]
        n = 5
        before = [ShardPlan(n, 1).shard_of(k) for k in keys]
        after = [ShardPlan(n + 1, 1).shard_of(k) for k in keys]
        moved = [i for i in range(len(keys)) if before[i] != after[i]]
        # Rendezvous hashing moves ~1/(n+1) of keys, all to the new shard.
        expected = len(keys) / (n + 1)
        assert 0.5 * expected <= len(moved) <= 1.5 * expected
        assert all(after[i] == n for i in moved)

    def test_fingerprint_pins_topology_and_keys(self):
        keys = ["a", "b", "c"]
        base = ShardPlan(2, 2).fingerprint(keys)
        assert base == ShardPlan(2, 2).fingerprint(keys)
        assert base != ShardPlan(3, 2).fingerprint(keys)
        assert base != ShardPlan(2, 3).fingerprint(keys)
        assert base != ShardPlan(2, 2).fingerprint(["a", "b", "x"])
        assert base != ShardPlan(2, 2).fingerprint()

    def test_invalid_topology_rejected(self):
        with pytest.raises(ValueError):
            ShardPlan(0)
        with pytest.raises(ValueError):
            ShardPlan(2, 0)

    def test_gallery_keys_prefers_unique_object_ids(self):
        gallery = make_gallery(4)
        assert gallery_keys(gallery) == ["g0", "g1", "g2", "g3"]
        gallery[1] = Trajectory.from_arrays([1.0], [1.0], [0.0], object_id="g0")
        assert gallery_keys(gallery) == ["#0", "#1", "#2", "#3"]


# ----------------------------------------------------------------------
# Hedge-delay policy
# ----------------------------------------------------------------------
class TestLatencyTracker:
    def test_initial_delay_until_enough_samples(self):
        tracker = _LatencyTracker(initial_s=0.05)
        for _ in range(7):
            tracker.observe(0.5)
            assert tracker.hedge_delay_s() == 0.05
        tracker.observe(0.5)
        assert tracker.hedge_delay_s() != 0.05

    def test_p95_capped_at_three_times_median(self):
        """A chronically slow replica cannot inflate its own hedge trigger."""
        tracker = _LatencyTracker()
        # 75% fast (10 ms), 25% slow (100 ms): raw p95 would be ~100 ms,
        # which would never hedge the slow replica.  The 3×p50 cap keeps
        # the trigger at 30 ms.
        for _ in range(30):
            tracker.observe(0.010)
            tracker.observe(0.010)
            tracker.observe(0.010)
            tracker.observe(0.100)
        assert tracker.hedge_delay_s() == pytest.approx(0.030, rel=0.2)

    def test_floor(self):
        tracker = _LatencyTracker(floor_s=0.001)
        for _ in range(20):
            tracker.observe(0.00001)
        assert tracker.hedge_delay_s() == 0.001

    def test_uniform_latency_tracks_p95(self):
        tracker = _LatencyTracker()
        for _ in range(50):
            tracker.observe(0.020)
        assert tracker.hedge_delay_s() == pytest.approx(0.020, rel=0.01)


# ----------------------------------------------------------------------
# Service behaviour (healthy path)
# ----------------------------------------------------------------------
class TestClusterService:
    def test_healthy_scores_bitwise_identical_to_serial(self):
        grid = Grid(0, 0, 40, 20, cell_size=2.0)
        gallery = make_gallery(8, seed=3)
        measure = STS(grid)
        query = make_gallery(1, seed=77)[0]
        expected = [float(STS(grid).similarity(query, g)) for g in gallery]
        with ClusterService(STS(grid), gallery, n_shards=3, n_replicas=2) as svc:
            scores, report = svc.query_scores(query)
        assert report.coverage == 1.0
        assert report.shards_skipped == ()
        assert [scores[i] for i in range(len(gallery))] == expected

    def test_matches_gallery_is_identity_not_equality(self):
        grid = Grid(0, 0, 40, 20, cell_size=2.0)
        gallery = make_gallery(4)
        with ClusterService(STS(grid), gallery, n_shards=2, n_replicas=1) as svc:
            assert svc.matches_gallery(gallery)
            assert not svc.matches_gallery(make_gallery(4))
            assert not svc.matches_gallery(gallery[:3])

    def test_wrong_gallery_rejected_by_matcher_and_pairwise(self):
        grid = Grid(0, 0, 40, 20, cell_size=2.0)
        gallery = make_gallery(4)
        other = make_gallery(4)
        measure = STS(grid)
        with ClusterService(measure, gallery, n_shards=2, n_replicas=1) as svc:
            matcher = FilteredMatcher(measure, spatial_slack=None, cluster=svc)
            with pytest.raises(ValueError, match="different gallery"):
                matcher.query(gallery[0], other)
            with pytest.raises(ValueError, match="different gallery"):
                measure.pairwise(other, cluster=svc)

    def test_pairwise_queries_bitwise_identical_to_serial(self):
        grid = Grid(0, 0, 40, 20, cell_size=2.0)
        gallery = make_gallery(5, seed=9)
        queries = make_gallery(3, seed=31)
        serial = STS(grid).pairwise(gallery, queries)
        measure = STS(grid)
        with ClusterService(measure, gallery, n_shards=2, n_replicas=2) as svc:
            clustered = measure.pairwise(gallery, queries, cluster=svc)
        np.testing.assert_array_equal(clustered, serial)

    def test_pairwise_self_matrix_symmetric_to_roundoff(self):
        """The serial self-matrix mirrors each unordered pair; the cluster
        scores both orientations — equal to float round-off, not bitwise."""
        grid = Grid(0, 0, 40, 20, cell_size=2.0)
        gallery = make_gallery(5, seed=9)
        serial = STS(grid).pairwise(gallery)
        measure = STS(grid)
        with ClusterService(measure, gallery, n_shards=2, n_replicas=2) as svc:
            clustered = measure.pairwise(gallery, cluster=svc)
        np.testing.assert_allclose(clustered, serial, rtol=1e-12, atol=1e-15)

    def test_closed_service_refuses_queries(self):
        grid = Grid(0, 0, 40, 20, cell_size=2.0)
        gallery = make_gallery(3)
        svc = ClusterService(STS(grid), gallery, n_shards=2, n_replicas=1)
        svc.close()
        svc.close()  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            svc.query_scores(gallery[0])


class TestClusterMatcher:
    def test_healthy_topk_bitwise_identical_to_filtered_matcher(self):
        grid = Grid(0, 0, 40, 20, cell_size=2.0)
        gallery = make_gallery(10, seed=5)
        query = make_gallery(1, seed=42)[0]
        reference = FilteredMatcher(
            STS(grid), grid=grid, spatial_slack=100.0
        ).query(query, gallery, k=5)
        with ClusterMatcher(
            STS(grid), gallery, grid=grid, spatial_slack=100.0,
            n_shards=3, n_replicas=2,
        ) as matcher:
            report = matcher.query(query, k=5)
        assert report.coverage == 1.0
        assert report.complete
        assert [(m.index, m.score) for m in report.matches] == [
            (m.index, m.score) for m in reference.matches
        ]

    def test_adopting_a_service_does_not_close_it(self):
        grid = Grid(0, 0, 40, 20, cell_size=2.0)
        gallery = make_gallery(4)
        measure = STS(grid)
        svc = ClusterService(measure, gallery, n_shards=2, n_replicas=1)
        try:
            with ClusterMatcher(measure, svc.gallery, grid=grid, service=svc):
                pass
            scores, report = svc.query_scores(gallery[0])  # still alive
            assert report.coverage == 1.0
        finally:
            svc.close()


# ----------------------------------------------------------------------
# Nested-parallelism guard
# ----------------------------------------------------------------------
class TestNestedParallelismGuard:
    def test_resolve_n_jobs_clamps_inside_cluster_worker(self):
        from repro.parallel import pool

        env_before = os.environ.get(pool._CLUSTER_WORKER_ENV)
        flag_before = pool._IN_CLUSTER_WORKER
        try:
            pool.mark_cluster_worker()
            assert pool.in_cluster_worker()
            assert pool.resolve_n_jobs(-1) == 1
            assert pool.resolve_n_jobs(8) == 1
            assert pool.resolve_n_jobs(None) == 1
        finally:
            pool._IN_CLUSTER_WORKER = flag_before
            if env_before is None:
                os.environ.pop(pool._CLUSTER_WORKER_ENV, None)
            else:
                os.environ[pool._CLUSTER_WORKER_ENV] = env_before
        assert pool.resolve_n_jobs(2) == 2  # guard fully lifted again

    def test_total_process_count_is_shards_times_replicas(self):
        """An N×R cluster forks exactly N·R workers — never grandchildren.

        Each worker asks for ``n_jobs=-1`` (every core) and must still
        come up serial; this is the fork-bomb regression test.
        """
        grid = Grid(0, 0, 40, 20, cell_size=2.0)
        gallery = make_gallery(8, seed=1)
        n_shards, n_replicas = 2, 2
        with ClusterService(
            STS(grid), gallery, n_shards=n_shards, n_replicas=n_replicas
        ) as svc:
            svc.query_scores(make_gallery(1, seed=2)[0])  # warm the scorers
            info = svc.worker_info()
            assert len(info) == n_shards * n_replicas
            for label, payload in info.items():
                assert payload["resolved_n_jobs"] == 1, label
                assert payload["scorer_n_jobs"] == 1, label
                assert payload["child_processes"] == 0, label
            worker_pids = {pid for pid in svc.replica_pids().values() if pid}
            assert len(worker_pids) == n_shards * n_replicas
            # Parent-side check: every worker is a direct child of this
            # process, and none of them has children of its own.
            for pid in worker_pids:
                with open(f"/proc/{pid}/task/{pid}/children") as handle:
                    assert handle.read().split() == [], f"worker {pid} forked"


# ----------------------------------------------------------------------
# Partial-result semantics without chaos (deterministic skip)
# ----------------------------------------------------------------------
class TestCoverageSemantics:
    def test_dead_shard_reports_partial_coverage(self):
        grid = Grid(0, 0, 40, 20, cell_size=2.0)
        gallery = make_gallery(9, seed=11)
        registry = MetricsRegistry()
        with ClusterService(
            STS(grid), gallery, n_shards=3, n_replicas=2,
            max_restarts=0, registry=registry,
        ) as svc:
            victim = next(s for s, m in enumerate(svc.shard_globals) if m)
            assert svc.kill_replica(victim, 0)
            assert svc.kill_replica(victim, 1)
            scores, report = svc.query_scores(make_gallery(1, seed=3)[0])
            assert report.coverage < 1.0
            assert victim in report.shards_skipped
            dead = set(svc.shard_globals[victim])
            assert set(scores) == set(range(len(gallery))) - dead
            expected_cov = 1.0 - len(dead) / len(gallery)
            assert report.coverage == pytest.approx(expected_cov)
            skipped = sum(
                registry.value("repro_cluster_shard_skipped_total").values()
            )
            assert skipped >= 1

    def test_pairwise_nans_only_on_dead_shard(self):
        grid = Grid(0, 0, 40, 20, cell_size=2.0)
        gallery = make_gallery(6, seed=21)
        measure = STS(grid)
        with ClusterService(
            measure, gallery, n_shards=3, n_replicas=1, max_restarts=0
        ) as svc:
            victim = next(s for s, m in enumerate(svc.shard_globals) if m)
            svc.kill_replica(victim, 0)
            matrix = measure.pairwise(gallery, queries=gallery[:2], cluster=svc)
        dead_cols = set(svc.shard_globals[victim])
        for j in range(len(gallery)):
            if j in dead_cols:
                assert np.isnan(matrix[:, j]).all()
            else:
                assert np.isfinite(matrix[:, j]).all()
