"""Unit tests for the similarity-query helpers."""

import numpy as np
import pytest

from repro.core.trajectory import Trajectory
from repro.eval.queries import most_similar, rank_gallery, top_k
from repro.similarity import DTW, SST


def walker(y, oid):
    xs = np.arange(10.0)
    return Trajectory.from_arrays(xs, np.full(10, float(y)), np.arange(10.0), oid)


@pytest.fixture
def gallery():
    return [walker(0, "near"), walker(5, "mid"), walker(50, "far")]


@pytest.fixture
def query():
    return walker(0.5, "query")


class TestRankGallery:
    def test_sorted_most_similar_first(self, query, gallery):
        ranked = rank_gallery(DTW(), query, gallery)
        assert [m.trajectory.object_id for m in ranked] == ["near", "mid", "far"]
        assert ranked[0].score >= ranked[1].score >= ranked[2].score

    def test_indices_point_into_gallery(self, query, gallery):
        ranked = rank_gallery(DTW(), query, gallery)
        for match in ranked:
            assert gallery[match.index] is match.trajectory

    def test_similarity_measure_orientation(self, query, gallery):
        ranked = rank_gallery(SST(spatial_scale=2.0, temporal_scale=5.0), query, gallery)
        assert ranked[0].trajectory.object_id == "near"

    def test_empty_gallery_raises(self, query):
        with pytest.raises(ValueError, match="empty"):
            rank_gallery(DTW(), query, [])

    def test_stable_under_ties(self, query):
        twins = [walker(3, "first"), walker(3, "second")]
        ranked = rank_gallery(DTW(), query, twins)
        assert [m.trajectory.object_id for m in ranked] == ["first", "second"]


class TestTopKAndBest:
    def test_top_k_truncates(self, query, gallery):
        assert len(top_k(DTW(), query, gallery, 2)) == 2
        assert len(top_k(DTW(), query, gallery, 99)) == 3

    def test_top_k_invalid(self, query, gallery):
        with pytest.raises(ValueError):
            top_k(DTW(), query, gallery, 0)

    def test_most_similar(self, query, gallery):
        best = most_similar(DTW(), query, gallery)
        assert best.trajectory.object_id == "near"
        assert "near" in str(best)

    def test_works_with_sts(self, query, gallery):
        from repro.core.grid import Grid
        from repro.core.noise import GaussianNoiseModel
        from repro.core.sts import STS

        grid = Grid(-5, -5, 60, 60, cell_size=2.0)
        measure = STS(grid, noise_model=GaussianNoiseModel(1.0))
        best = most_similar(measure, query, gallery)
        assert best.trajectory.object_id == "near"
