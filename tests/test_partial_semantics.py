"""Lock down partial-result semantics across the serving surfaces.

Three behaviors the robustness docs promise but nothing unit-tested:
NaN cells (never silent zeros) for unreachable shards in
``STS.pairwise(cluster=)``, the "PARTIAL" rendering of
:class:`MatchReport`, and :meth:`Budget.sub_budget` on a parent that has
already expired.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.cluster import ClusterService
from repro.core.sts import STS
from repro.core.trajectory import Trajectory
from repro.eval.queries import RankedMatch
from repro.index.matcher import MatchReport
from repro.serving import Budget


class FakeClock:
    def __init__(self, t: float = 0.0):
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


def _walks(small_grid, n=4, points=5):
    rng = np.random.default_rng(11)
    out = []
    for idx in range(n):
        ts = np.arange(points, dtype=float) * 3.0
        xs = 2.0 + idx * 3.0 + rng.normal(scale=0.4, size=points).cumsum()
        ys = 2.0 + idx * 2.0 + rng.normal(scale=0.4, size=points).cumsum()
        out.append(Trajectory.from_arrays(
            np.clip(xs, 0.5, 19.5), np.clip(ys, 0.5, 19.5), ts,
            object_id=f"obj-{idx}"))
    return out


class TestClusterNaNCells:
    def test_dead_shard_yields_nan_columns_not_zeros(self, small_grid):
        measure = STS(small_grid)
        gallery = _walks(small_grid)
        queries = _walks(small_grid, n=2)
        with ClusterService(measure, gallery, n_shards=2, n_replicas=2,
                            max_restarts=0) as svc:
            victim = next(
                s for s, cols in enumerate(svc.shard_globals) if cols)
            dead_cols = list(svc.shard_globals[victim])
            svc.kill_replica(victim, 0)
            svc.kill_replica(victim, 1)
            matrix = measure.pairwise(gallery, queries, cluster=svc)

        assert matrix.shape == (len(queries), len(gallery))
        # Unreachable candidates are NaN — explicitly unknown.
        assert np.isnan(matrix[:, dead_cols]).all()
        # Every other cell is a real score, bitwise equal to serial.
        live_cols = [j for j in range(len(gallery)) if j not in dead_cols]
        assert np.isfinite(matrix[:, live_cols]).all()
        serial = STS(small_grid)
        for i, q in enumerate(queries):
            for j in live_cols:
                assert matrix[i, j] == serial.similarity(q, gallery[j])

    def test_healthy_cluster_has_no_nan_cells(self, small_grid):
        measure = STS(small_grid)
        gallery = _walks(small_grid)
        with ClusterService(measure, gallery, n_shards=2,
                            n_replicas=2) as svc:
            matrix = measure.pairwise(gallery, _walks(small_grid, n=2),
                                      cluster=svc)
        assert np.isfinite(matrix).all()


class TestMatchReportPartialRendering:
    def _report(self, **overrides):
        kwargs = dict(matches=[RankedMatch(index=0, trajectory=None,
                                           score=0.5)],
                      gallery_size=10, candidates_scored=4)
        kwargs.update(overrides)
        return MatchReport(**kwargs)

    def test_full_coverage_renders_without_partial(self):
        text = str(self._report())
        assert "PARTIAL" not in text
        assert "scored 4/10 candidates" in text

    def test_partial_coverage_renders_marker_and_shards(self):
        text = str(self._report(coverage=0.6, shards_skipped=(1, 3)))
        assert "PARTIAL coverage 60.00%" in text
        assert "shards skipped [1, 3]" in text

    def test_partial_wins_over_degraded_in_rendering(self):
        text = str(self._report(coverage=0.5, shards_skipped=(0,),
                                shards_degraded=(1,)))
        assert "PARTIAL" in text
        assert "degraded" not in text

    def test_degraded_only_renders_degraded(self):
        text = str(self._report(shards_degraded=(2,)))
        assert "degraded shards [2]" in text
        assert "PARTIAL" not in text

    def test_complete_property_tracks_coverage(self):
        assert self._report().complete
        assert not self._report(coverage=0.99).complete


class TestSubBudgetOfExpiredParent:
    def test_deadline_expired_parent_yields_zero_deadline_child(self):
        clock = FakeClock()
        parent = Budget(deadline_ms=100.0, clock=clock).start()
        clock.advance(0.2)  # 200 ms: past the deadline
        assert parent.expired()
        child = parent.sub_budget(0.5)
        assert child.deadline_ms == 0.0
        assert child.started
        assert child.expired()

    def test_terms_exhausted_parent_yields_dead_child(self):
        clock = FakeClock()
        parent = Budget(deadline_ms=100.0, max_terms=8, clock=clock).start()
        # No time has passed, but the term cap is already spent.
        child = parent.sub_budget(0.5, terms_done=8)
        assert child.deadline_ms == 0.0
        assert child.expired()

    def test_memory_expired_parent_yields_dead_child(self):
        parent = Budget(deadline_ms=100.0, max_rss_mb=1e-6,
                        clock=FakeClock()).start()
        assert parent.expired()  # any real process exceeds 1 byte-ish
        child = parent.sub_budget(1.0)
        assert child.deadline_ms == 0.0

    def test_live_parent_child_gets_fraction_of_remaining(self):
        clock = FakeClock()
        parent = Budget(deadline_ms=100.0, clock=clock).start()
        clock.advance(0.04)  # 40 ms spent, 60 ms left
        child = parent.sub_budget(0.5)
        assert child.deadline_ms == pytest.approx(30.0)
        assert not child.expired()

    def test_unbounded_parent_yields_unbounded_child(self):
        child = Budget(clock=FakeClock()).start().sub_budget(0.25)
        assert child.deadline_ms is None
        assert child.remaining_ms() == math.inf
        assert not child.expired()

    def test_child_max_terms_is_independent_of_parent_exhaustion(self):
        clock = FakeClock()
        parent = Budget(deadline_ms=100.0, max_terms=8, clock=clock).start()
        child = parent.sub_budget(0.5, max_terms=4, terms_done=8)
        assert child.max_terms == 4
        # Dead via the inherited zero deadline, not via its term cap.
        assert child.terms_allowance(0) == 4
        assert child.expired()