"""Unit tests for the candidate pre-filters and the filtered matcher."""

import numpy as np
import pytest

from repro.core.grid import Grid
from repro.core.trajectory import Trajectory
from repro.index import (
    FilteredMatcher,
    bounding_box_filter,
    cell_signature_filter,
    time_overlap_filter,
)
from repro.similarity import SST


def walker(x0=0.0, y=0.0, t0=0.0, n=10, oid=None):
    xs = x0 + np.arange(n, dtype=float)
    return Trajectory.from_arrays(xs, np.full(n, float(y)), t0 + np.arange(n, dtype=float), oid)


class TestTimeOverlapFilter:
    def test_keeps_overlapping(self):
        query = walker(t0=0.0)
        gallery = [walker(t0=5.0), walker(t0=100.0), walker(t0=-5.0)]
        keep = time_overlap_filter(query, gallery)
        np.testing.assert_array_equal(keep, [0, 2])

    def test_touching_spans_kept(self):
        query = walker(t0=0.0, n=10)  # span [0, 9]
        gallery = [walker(t0=9.0)]
        assert len(time_overlap_filter(query, gallery)) == 1

    def test_min_overlap(self):
        query = walker(t0=0.0, n=10)
        gallery = [walker(t0=8.0)]  # 1 second shared
        assert len(time_overlap_filter(query, gallery, min_overlap=2.0)) == 0
        assert len(time_overlap_filter(query, gallery, min_overlap=1.0)) == 1

    def test_invalid_min_overlap(self):
        with pytest.raises(ValueError):
            time_overlap_filter(walker(), [walker()], min_overlap=-1.0)

    def test_lossless_for_sts(self):
        # filtered-out candidates would score exactly 0 under STS
        from repro.core.noise import GaussianNoiseModel
        from repro.core.sts import STS

        query = walker(t0=0.0)
        rejected = walker(t0=1000.0)
        grid = Grid(-5, -5, 30, 30, 2.0)
        measure = STS(grid, noise_model=GaussianNoiseModel(1.0))
        assert measure.similarity(query, rejected) == 0.0
        assert len(time_overlap_filter(query, [rejected])) == 0


class TestBoundingBoxFilter:
    def test_keeps_nearby(self):
        query = walker(x0=0.0, y=0.0)
        gallery = [walker(x0=0.0, y=3.0), walker(x0=0.0, y=500.0)]
        keep = bounding_box_filter(query, gallery, slack=10.0)
        np.testing.assert_array_equal(keep, [0])

    def test_slack_widens(self):
        query = walker(y=0.0)
        gallery = [walker(y=20.0)]
        assert len(bounding_box_filter(query, gallery, slack=5.0)) == 0
        assert len(bounding_box_filter(query, gallery, slack=25.0)) == 1

    def test_overlapping_boxes_always_kept(self):
        query = walker()
        assert len(bounding_box_filter(query, [query], slack=0.0)) == 1

    def test_invalid_slack(self):
        with pytest.raises(ValueError):
            bounding_box_filter(walker(), [walker()], slack=-1.0)


class TestCellSignatureFilter:
    @pytest.fixture
    def grid(self):
        return Grid(-10, -60, 60, 60, cell_size=2.0)

    def test_shared_route_kept(self, grid):
        query = walker(y=0.0)
        gallery = [walker(y=0.5), walker(y=-50.0)]
        keep = cell_signature_filter(query, gallery, grid)
        np.testing.assert_array_equal(keep, [0])

    def test_dilation_zero_exact_cells(self, grid):
        query = walker(y=0.0)
        neighbor = walker(y=2.5)  # one cell row away
        assert len(cell_signature_filter(query, [neighbor], grid, dilation=0)) == 0
        assert len(cell_signature_filter(query, [neighbor], grid, dilation=1)) == 1

    def test_min_shared(self, grid):
        query = walker(n=10, y=0.0)
        # candidate crosses the query's route at a single cell
        crosser = Trajectory.from_arrays(
            np.full(10, 5.0), np.linspace(-9, 9, 10), np.arange(10.0)
        )
        assert len(cell_signature_filter(query, [crosser], grid, min_shared=1)) == 1
        assert len(cell_signature_filter(query, [crosser], grid, min_shared=8)) == 0

    def test_invalid_params(self, grid):
        with pytest.raises(ValueError):
            cell_signature_filter(walker(), [walker()], grid, dilation=-1)
        with pytest.raises(ValueError):
            cell_signature_filter(walker(), [walker()], grid, min_shared=0)


class TestFilteredMatcher:
    @pytest.fixture
    def measure(self):
        return SST(spatial_scale=2.0, temporal_scale=5.0)

    def test_query_ranks_survivors(self, measure):
        query = walker(y=0.5, oid="q")
        gallery = [
            walker(y=0.0, oid="true"),
            walker(y=5.0, oid="near"),
            walker(y=0.0, t0=1000.0, oid="wrong-time"),
            walker(x0=500.0, oid="wrong-place"),
        ]
        matcher = FilteredMatcher(measure, spatial_slack=20.0)
        report = matcher.query(query, gallery)
        assert report.gallery_size == 4
        assert report.candidates_scored == 2  # time + box filters fired
        assert report.matches[0].trajectory.object_id == "true"
        assert report.filter_rate == pytest.approx(0.5)

    def test_top_k(self, measure):
        query = walker(y=0.5)
        gallery = [walker(y=float(dy)) for dy in range(5)]
        matcher = FilteredMatcher(measure, spatial_slack=100.0)
        report = matcher.query(query, gallery, k=2)
        assert len(report.matches) == 2

    def test_invalid_k(self, measure):
        matcher = FilteredMatcher(measure)
        with pytest.raises(ValueError):
            matcher.query(walker(), [walker()], k=0)

    def test_all_filtered_returns_empty(self, measure):
        query = walker(t0=0.0)
        gallery = [walker(t0=1e6)]
        report = FilteredMatcher(measure).query(query, gallery)
        assert report.matches == []
        assert report.candidates_scored == 0
        assert "filtered" in str(report)

    def test_grid_signature_stage(self, measure):
        grid = Grid(-10, -60, 600, 60, cell_size=2.0)
        query = walker(y=0.0)
        parallel_far = walker(y=50.0)  # overlaps in time and x-range
        matcher = FilteredMatcher(measure, grid=grid, spatial_slack=200.0, signature_dilation=2)
        report = matcher.query(query, [parallel_far])
        assert report.candidates_scored == 0

    def test_matches_unfiltered_ranking_on_survivors(self, measure):
        from repro.eval import rank_gallery

        query = walker(y=0.5)
        gallery = [walker(y=float(dy)) for dy in range(4)]
        matcher = FilteredMatcher(measure, spatial_slack=100.0)
        filtered = matcher.query(query, gallery).matches
        full = rank_gallery(measure, query, gallery)
        assert [m.index for m in filtered] == [m.index for m in full]


class TestFilteredMatcherEdgeCases:
    """query() must return a well-formed MatchReport, never raise."""

    @pytest.fixture
    def measure(self):
        return SST(spatial_scale=2.0, temporal_scale=5.0)

    def test_empty_gallery(self, measure):
        report = FilteredMatcher(measure).query(walker(), [])
        assert report.matches == []
        assert report.gallery_size == 0
        assert report.candidates_scored == 0
        assert report.filter_rate == 0.0
        assert "0/0" in str(report)

    def test_empty_gallery_with_k(self, measure):
        report = FilteredMatcher(measure).query(walker(), [], k=5)
        assert report.matches == []

    def test_k_larger_than_gallery(self, measure):
        gallery = [walker(y=0.0), walker(y=1.0)]
        matcher = FilteredMatcher(measure, spatial_slack=50.0)
        report = matcher.query(walker(y=0.5), gallery, k=10)
        assert len(report.matches) == 2  # everything, no padding, no raise

    def test_k_larger_than_survivors(self, measure):
        gallery = [walker(y=0.0), walker(t0=1e6)]  # second is filtered out
        matcher = FilteredMatcher(measure, spatial_slack=50.0)
        report = matcher.query(walker(y=0.5), gallery, k=10)
        assert len(report.matches) == 1
        assert report.candidates_scored == 1

    def test_empty_gallery_with_deadline(self, measure):
        report = FilteredMatcher(measure).query(walker(), [], deadline=0.5)
        assert report.matches == []
        assert report.health is not None
        assert report.health.pairs_scored == 0


class TestDeadlineQueries:
    @pytest.fixture
    def sts(self):
        from repro.core.sts import STS

        return STS(Grid(-5, -5, 30, 30, 2.0))

    def galleried(self, n=4):
        return [walker(y=float(dy), oid=f"g{dy}") for dy in range(n)]

    def test_unbudgeted_query_has_no_health(self, sts):
        report = FilteredMatcher(sts, spatial_slack=50.0).query(
            walker(y=0.5), self.galleried()
        )
        assert report.health is None

    def test_expired_budget_sheds_all_candidates(self, sts):
        from repro.serving import Budget

        matcher = FilteredMatcher(sts, spatial_slack=50.0)
        report = matcher.query(walker(y=0.5), self.galleried(), deadline=0.0)
        assert report.matches == []
        assert report.candidates_scored == 0
        assert report.health.deadline_hit
        assert report.health.pairs_shed == 4
        # Shed candidates are named in the health events.
        assert {e.subject for e in report.health.events if e.kind == "shed-pair"} == {
            "g0", "g1", "g2", "g3"
        }

    def test_term_budget_degrades_every_candidate(self, sts):
        from repro.serving import Budget

        matcher = FilteredMatcher(sts, spatial_slack=50.0)
        report = matcher.query(
            walker(y=0.5), self.galleried(), budget=Budget(max_terms=4)
        )
        assert report.candidates_scored == 4
        assert report.health.degraded
        assert report.health.pairs_partial == 4
        assert len(report.health.rungs) == 4
        scores = [m.score for m in report.matches]
        assert scores == sorted(scores, reverse=True)  # still ranked

    def test_non_sts_measure_scores_directly_under_budget(self):
        from repro.serving import Budget

        measure = SST(spatial_scale=2.0, temporal_scale=5.0)
        matcher = FilteredMatcher(measure, spatial_slack=50.0)
        report = matcher.query(
            walker(y=0.5), self.galleried(), budget=Budget(deadline_ms=5000.0)
        )
        assert report.candidates_scored == 4
        assert report.health.rungs == ["full"] * 4

    def test_deadline_and_budget_are_exclusive(self, sts):
        from repro.serving import Budget

        with pytest.raises(ValueError, match="not both"):
            FilteredMatcher(sts).query(
                walker(), [walker()], deadline=1.0, budget=Budget(deadline_ms=5.0)
            )
        with pytest.raises(ValueError, match="deadline"):
            FilteredMatcher(sts).query(walker(), [walker()], deadline=-1.0)
