"""Tests for the measure registry and the Measure protocol surface."""

import numpy as np
import pytest

from repro.core.trajectory import Trajectory
from repro.similarity import (
    available_measures,
    get_measure_factory,
    register_measure,
)
from repro.similarity.base import Measure


class TestRegistry:
    def test_all_builtins_registered(self):
        names = available_measures()
        for expected in [
            "dtw", "lcss", "edr", "erp", "frechet", "hausdorff",
            "cats", "edwp", "apm", "kf", "wgm", "sst", "stlip",
        ]:
            assert expected in names

    def test_lookup_case_insensitive(self):
        assert get_measure_factory("DTW") is get_measure_factory("dtw")

    def test_unknown_name_lists_available(self):
        with pytest.raises(KeyError, match="available"):
            get_measure_factory("no-such-measure")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_measure("dtw", object)

    def test_factories_construct_measures(self):
        # parameterless factories must construct without arguments
        for name in ("dtw", "frechet", "hausdorff", "edwp", "stlip", "erp"):
            instance = get_measure_factory(name)()
            assert isinstance(instance, Measure)


class TestMeasureProtocol:
    def test_pairwise_matrix_shape_and_values(self):
        from repro.similarity import DTW

        a = Trajectory.from_arrays([0, 1], [0, 0], [0, 1])
        b = Trajectory.from_arrays([5, 6], [0, 0], [0, 1])
        m = DTW()
        matrix = m.pairwise([a, b], [a, b, b])
        assert matrix.shape == (2, 3)
        assert matrix[0, 0] == pytest.approx(0.0)
        assert matrix[0, 1] == pytest.approx(m(a, b))

    def test_repr_mentions_name(self):
        from repro.similarity import CATS

        assert "CATS" in repr(CATS(epsilon=1.0, tau=1.0))

    def test_default_orientation_is_similarity(self):
        class Dummy(Measure):
            name = "dummy"

            def __call__(self, a, b):
                return 0.7

        d = Dummy()
        traj = Trajectory.from_arrays([0.0], [0.0], [0.0])
        assert d.score(traj, traj) == 0.7  # higher_is_better default True

    def test_sts_duck_types_measure(self):
        # STS is not a Measure subclass but satisfies the protocol the
        # evaluation harness relies on.
        from repro.core.grid import Grid
        from repro.core.sts import STS

        measure = STS(Grid(0, 0, 10, 10, 1.0))
        assert hasattr(measure, "score")
        assert hasattr(measure, "name")
        assert measure.higher_is_better
