"""Unit tests for the terminal visualization helpers."""

import numpy as np
import pytest

from repro.core.grid import Grid
from repro.core.noise import GaussianNoiseModel
from repro.core.speed import KDESpeedModel
from repro.core.stprob import TrajectorySTP
from repro.core.transition import SpeedTransitionModel
from repro.core.trajectory import Trajectory
from repro.viz import render_profile, render_stp, render_trajectories


@pytest.fixture
def grid():
    return Grid(0, 0, 40, 20, cell_size=2.0)


@pytest.fixture
def traj():
    return Trajectory.from_arrays(
        [2, 10, 18, 26], [10, 10, 10, 10], [0, 8, 16, 24], "walker"
    )


class TestRenderTrajectories:
    def test_contains_labels_and_legend(self, grid, traj):
        other = traj.shifted(dy=6.0).with_object_id("other")
        text = render_trajectories(grid, [traj, other])
        assert "a" in text and "b" in text
        assert "a=walker" in text and "b=other" in text

    def test_overlap_marked(self, grid, traj):
        text = render_trajectories(grid, [traj, traj.with_object_id("copy")])
        assert "+" in text

    def test_empty_raises(self, grid):
        with pytest.raises(ValueError):
            render_trajectories(grid, [])

    def test_respects_max_cols(self, traj):
        wide_grid = Grid(0, 0, 4000, 20, cell_size=2.0)
        text = render_trajectories(wide_grid, [traj], max_cols=40)
        body = text.splitlines()[0]
        assert len(body) <= 41

    def test_north_up(self, grid):
        # a trajectory at high y should appear in the first rendered row
        top = Trajectory.from_arrays([20.0], [19.0], [0.0], "top")
        bottom = Trajectory.from_arrays([20.0], [1.0], [0.0], "bottom")
        text = render_trajectories(grid, [top, bottom])
        lines = text.splitlines()
        assert "a" in lines[0]
        assert "b" in lines[-2]  # last map row before the legend


class TestRenderSTP:
    def make_stp(self, grid, traj):
        return TrajectorySTP(
            traj,
            grid,
            GaussianNoiseModel(2.0),
            SpeedTransitionModel(KDESpeedModel.from_trajectory(traj)),
        )

    def test_shows_peak_and_shading(self, grid, traj):
        stp = self.make_stp(grid, traj)
        text = render_stp(stp, 8.0)
        assert "peak cell prob" in text
        assert "@" in text  # the darkest shade marks the peak

    def test_blank_outside_span(self, grid, traj):
        stp = self.make_stp(grid, traj)
        text = render_stp(stp, 1000.0)
        body = text.splitlines()[1:]
        assert all(set(line) <= {" "} for line in body)

    def test_interpolated_time_renders(self, grid, traj):
        stp = self.make_stp(grid, traj)
        text = render_stp(stp, 12.0)
        assert any(ch in text for ch in "#%@")


class TestRenderProfile:
    def test_bars_scale_with_values(self):
        text = render_profile(np.array([0.0, 1.0]), np.array([0.5, 1.0]), width=10)
        lines = text.splitlines()
        assert lines[1].count("#") == 10
        assert lines[0].count("#") == 5

    def test_empty(self):
        assert "empty" in render_profile(np.array([]), np.array([]))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            render_profile(np.array([1.0]), np.array([1.0, 2.0]))

    def test_all_zero_values(self):
        text = render_profile(np.array([0.0, 1.0]), np.zeros(2))
        assert "#" not in text
