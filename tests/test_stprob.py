"""Unit tests for spatial-temporal probability estimation (Eq. 4–5)."""

import numpy as np
import pytest

from repro.core.grid import Grid
from repro.core.noise import DeterministicNoiseModel, GaussianNoiseModel
from repro.core.speed import KDESpeedModel
from repro.core.stprob import TrajectorySTP
from repro.core.transition import FrequencyTransitionModel, SpeedTransitionModel
from repro.core.trajectory import Trajectory


@pytest.fixture
def grid():
    return Grid(0, 0, 40, 20, cell_size=2.0)


@pytest.fixture
def walker():
    """Walks east at 1 m/s along y=10, sampled every 4 s."""
    xs = [2.0, 6.0, 10.0, 14.0, 18.0, 22.0]
    return Trajectory.from_arrays(xs, [10.0] * 6, [0.0, 4.0, 8.0, 12.0, 16.0, 20.0])


def make_stp(traj, grid, mode="auto", noise=None, transition=None):
    noise = noise if noise is not None else GaussianNoiseModel(2.0)
    transition = transition or SpeedTransitionModel(
        KDESpeedModel.from_trajectory(traj, approx=False)
    )
    return TrajectorySTP(traj, grid, noise, transition, mode=mode)


class TestConstruction:
    def test_empty_trajectory_rejected(self, grid):
        with pytest.raises(ValueError, match="empty"):
            make_stp(Trajectory([]), grid)

    def test_invalid_mode(self, grid, walker):
        with pytest.raises(ValueError, match="mode"):
            make_stp(walker, grid, mode="warp")

    def test_fft_requires_isotropic(self, grid, walker):
        freq = FrequencyTransitionModel(grid).fit([walker])
        with pytest.raises(ValueError, match="isotropic"):
            make_stp(walker, grid, mode="fft", transition=freq)

    def test_auto_resolves_by_model(self, grid, walker):
        stp = make_stp(walker, grid, mode="auto")
        assert stp._resolved_mode == "fft"
        freq = FrequencyTransitionModel(grid).fit([walker])
        stp2 = make_stp(walker, grid, mode="auto", transition=freq)
        assert stp2._resolved_mode == "pruned"


class TestEq5Cases:
    def test_outside_span_is_zero(self, grid, walker):
        stp = make_stp(walker, grid)
        cells, probs = stp.stp(-5.0)
        assert len(cells) == 0 and len(probs) == 0
        assert stp.stp_dense(25.0).sum() == 0.0

    def test_observed_time_returns_noise_distribution(self, grid, walker):
        noise = GaussianNoiseModel(2.0)
        stp = make_stp(walker, grid, noise=noise)
        cells, probs = stp.stp(8.0)  # third observation at (10, 10)
        exp_cells, exp_probs = noise.cell_distribution(grid, 10.0, 10.0)
        np.testing.assert_array_equal(cells, exp_cells)
        np.testing.assert_allclose(probs, exp_probs)

    def test_interpolated_sums_to_one(self, grid, walker):
        stp = make_stp(walker, grid)
        for t in [1.0, 2.0, 6.5, 13.7, 19.9]:
            _, probs = stp.stp(t)
            assert probs.sum() == pytest.approx(1.0)

    def test_interpolated_mass_near_expected_position(self, grid, walker):
        stp = make_stp(walker, grid)
        cells, probs = stp.stp(10.0)  # expect near x=12, y=10
        centers = grid.centers()[cells]
        mean_x = float(np.dot(probs, centers[:, 0]))
        mean_y = float(np.dot(probs, centers[:, 1]))
        assert mean_x == pytest.approx(12.0, abs=2.5)
        assert mean_y == pytest.approx(10.0, abs=2.5)

    def test_interpolation_follows_time(self, grid, walker):
        stp = make_stp(walker, grid)
        xs = []
        for t in [1.0, 5.0, 9.0, 13.0, 17.0]:
            cells, probs = stp.stp(t)
            centers = grid.centers()[cells]
            xs.append(float(np.dot(probs, centers[:, 0])))
        assert all(a < b for a, b in zip(xs, xs[1:]))  # drifts east over time


class TestModeAgreement:
    @pytest.mark.parametrize("t", [1.0, 6.5, 10.0, 15.3, 19.0])
    def test_pruned_matches_dense(self, grid, walker, t):
        dense = make_stp(walker, grid, mode="dense")
        pruned = make_stp(walker, grid, mode="pruned")
        np.testing.assert_allclose(
            pruned.stp_dense(t), dense.stp_dense(t), atol=1e-9
        )

    @pytest.mark.parametrize("t", [1.0, 6.5, 10.0, 15.3, 19.0])
    def test_fft_matches_dense(self, grid, walker, t):
        dense = make_stp(walker, grid, mode="dense")
        fft = make_stp(walker, grid, mode="fft")
        np.testing.assert_allclose(fft.stp_dense(t), dense.stp_dense(t), atol=1e-9)

    def test_fft_matches_dense_with_deterministic_noise(self, grid, walker):
        dense = make_stp(walker, grid, mode="dense", noise=DeterministicNoiseModel())
        fft = make_stp(walker, grid, mode="fft", noise=DeterministicNoiseModel())
        for t in [2.0, 9.5, 18.0]:
            np.testing.assert_allclose(fft.stp_dense(t), dense.stp_dense(t), atol=1e-9)


class TestCachingAndFallback:
    def test_cache_returns_same_object(self, grid, walker):
        stp = make_stp(walker, grid)
        a = stp.stp(6.5)
        b = stp.stp(6.5)
        assert a[0] is b[0]

    def test_clear_cache(self, grid, walker):
        stp = make_stp(walker, grid)
        stp.stp(6.5)
        stp.clear_cache()
        assert stp._cache == {}

    def test_underflow_falls_back_to_linear_interpolation(self, grid):
        # Consecutive points 30 m apart in 1 s but the speed model believes
        # ~0.1 m/s: every transition weight underflows to 0.
        traj = Trajectory.from_arrays([2.0, 32.0], [10.0, 10.0], [0.0, 1.0])
        slow = SpeedTransitionModel(KDESpeedModel([0.1], bandwidth=0.001, approx=False))
        stp = TrajectorySTP(traj, grid, GaussianNoiseModel(1.0), slow)
        cells, probs = stp.stp(0.5)
        assert len(cells) == 1
        assert probs[0] == pytest.approx(1.0)
        # Mass sits at the midpoint cell (17, 10).
        assert cells[0] == grid.cell_of(17.0, 10.0)

    def test_duplicate_timestamp_uses_first_observation(self, grid):
        traj = Trajectory.from_arrays([2.0, 4.0, 6.0], [10.0, 10.0, 10.0], [0.0, 5.0, 5.0])
        stp = make_stp(traj, grid)
        cells, probs = stp.stp(5.0)
        assert probs.sum() == pytest.approx(1.0)


class TestCredibleCells:
    def test_mass_covered(self, grid, walker):
        stp = make_stp(walker, grid)
        for t in (4.0, 6.5, 13.7):
            for mass in (0.5, 0.9, 1.0):
                region = stp.credible_cells(t, mass=mass)
                cells, probs = stp.stp(t)
                lookup = dict(zip(cells.tolist(), probs.tolist()))
                covered = sum(lookup[c] for c in region.tolist())
                assert covered >= mass - 1e-9

    def test_minimal_region(self, grid, walker):
        # dropping the least-probable member must fall below the mass
        stp = make_stp(walker, grid)
        region = stp.credible_cells(6.5, mass=0.9)
        cells, probs = stp.stp(6.5)
        lookup = dict(zip(cells.tolist(), probs.tolist()))
        members = sorted(region.tolist(), key=lambda c: lookup[c])
        without_smallest = sum(lookup[c] for c in members[1:])
        assert without_smallest < 0.9

    def test_tighter_mass_smaller_region(self, grid, walker):
        stp = make_stp(walker, grid)
        small = stp.credible_cells(6.5, mass=0.5)
        big = stp.credible_cells(6.5, mass=0.99)
        assert len(small) <= len(big)
        assert set(small.tolist()) <= set(big.tolist())

    def test_outside_span_empty(self, grid, walker):
        stp = make_stp(walker, grid)
        assert len(stp.credible_cells(-10.0)) == 0

    def test_point_mass_single_cell(self, grid, walker):
        stp = make_stp(walker, grid, noise=DeterministicNoiseModel())
        region = stp.credible_cells(4.0, mass=1.0)
        assert len(region) == 1

    def test_invalid_mass(self, grid, walker):
        stp = make_stp(walker, grid)
        with pytest.raises(ValueError, match="mass"):
            stp.credible_cells(4.0, mass=0.0)
        with pytest.raises(ValueError, match="mass"):
            stp.credible_cells(4.0, mass=1.5)


class TestFrequencyBackend:
    def test_frequency_transition_stp_normalizes(self, grid, walker):
        freq = FrequencyTransitionModel(grid).fit([walker])
        stp = make_stp(walker, grid, transition=freq)
        _, probs = stp.stp(6.0)
        assert probs.sum() == pytest.approx(1.0)

    def test_single_point_trajectory_stp(self, grid):
        traj = Trajectory.from_arrays([10.0], [10.0], [5.0])
        stp = make_stp(traj, grid)
        cells, probs = stp.stp(5.0)
        assert probs.sum() == pytest.approx(1.0)
        assert len(stp.stp(4.0)[0]) == 0  # outside span


class TestCacheStats:
    def test_counts_grow_with_queries_and_reset_on_clear(self, grid, walker):
        stp = make_stp(walker, grid)
        assert all(s["size"] == 0 for s in stp.cache_stats().values())
        stp.stp(2.5)
        stp.stp(7.5)
        stats = stp.cache_stats()
        assert stats["results"]["size"] == 2
        assert sum(s["size"] for s in stats.values()) > 2  # kernels/planes too
        stp.clear_cache()
        assert all(s["size"] == 0 for s in stp.cache_stats().values())

    def test_stats_report_capacity_and_hit_miss_eviction(self, grid, walker):
        stp = make_stp(walker, grid)
        stp.stp(2.5)
        stp.stp(2.5)  # second query hits the result cache
        stats = stp.cache_stats()
        results = stats["results"]
        assert set(results) == {"size", "max", "hits", "misses", "evictions"}
        assert results["max"] == 4096
        assert results["hits"] >= 1
        assert results["misses"] >= 1
        assert results["evictions"] == 0
