"""Integration tests: instrumentation wired through the real pipelines."""

from __future__ import annotations

import json
import time

import numpy as np
import pytest

from repro.core.sts import STS
from repro.datasets import taxi_dataset
from repro.obs import MetricsRegistry, Tracer, set_enabled, set_registry, set_tracer
from repro.parallel import ParallelSTS


@pytest.fixture
def fresh_registry():
    """A private registry installed as the process default, then restored."""
    registry = MetricsRegistry()
    previous = set_registry(registry)
    yield registry
    set_registry(previous)


@pytest.fixture
def fresh_tracer():
    tracer = Tracer()
    previous = set_tracer(tracer)
    yield tracer
    set_tracer(previous)


@pytest.fixture(scope="module")
def corpus():
    return taxi_dataset(n_trajectories=6, seed=5)


class TestScoringMetrics:
    def test_pairwise_populates_stage_timings_and_cache_counters(
        self, fresh_registry, corpus
    ):
        measure = STS(corpus.make_grid())
        measure.pairwise(corpus.trajectories[:4])
        snap = fresh_registry.snapshot()

        stages = snap["counters"]["repro_stage_seconds_total"]
        assert stages['component="stp",stage="bridge-interp"'] > 0.0
        assert stages['component="sts",stage="prewarm"'] > 0.0
        assert stages['component="sts",stage="pair-loop"'] > 0.0

        hits = snap["counters"]["repro_cache_hits_total"]
        misses = snap["counters"]["repro_cache_misses_total"]
        assert misses['cache="stp-results"'] > 0
        assert hits['cache="stp-kernels"'] >= 0
        assert snap["gauges"]["repro_cache_entries"]['cache="stp-results"'] > 0

        assert snap["counters"]["repro_sts_similarity_calls_total"][""] == 10
        assert snap["histograms"]["repro_pairwise_seconds"][""]["count"] == 1

    def test_fft_canvas_reuse_counted(self, fresh_registry):
        from repro.core.grid import Grid
        from repro.core.trajectory import Trajectory

        # Interleaved timestamps force bridge interpolation (the FFT path).
        a = Trajectory.from_arrays(
            np.arange(0.0, 100.0, 10.0), np.zeros(10), np.arange(0.0, 100.0, 10.0), "a"
        )
        b = Trajectory.from_arrays(
            np.arange(0.0, 100.0, 10.0), np.ones(10), np.arange(5.0, 105.0, 10.0), "b"
        )
        grid = Grid(-20.0, -20.0, 120.0, 20.0, cell_size=4.0)
        measure = STS(grid, mode="fft")
        measure.similarity(a, b)
        measure.similarity(a, b)
        snap = fresh_registry.snapshot()
        assert snap["counters"]["repro_fft_plane_transforms_total"][""] > 0

    def test_explicit_registry_keeps_global_clean(self, corpus):
        private = MetricsRegistry()
        measure = STS(corpus.make_grid(), registry=private)
        a, b = corpus.trajectories[:2]
        measure.similarity(a, b)
        assert private.snapshot()["counters"]["repro_sts_similarity_calls_total"]

    def test_disabled_measure_records_nothing(self, fresh_registry, corpus):
        previous = set_enabled(False)
        try:
            measure = STS(corpus.make_grid())
            a, b = corpus.trajectories[:2]
            measure.similarity(a, b)
        finally:
            set_enabled(previous)
        assert fresh_registry.snapshot()["counters"] == {}


class TestServingMetrics:
    def test_ladder_rung_counts(self, fresh_registry, corpus):
        from repro.serving import Budget, DeadlineScorer

        measure = STS(corpus.make_grid())
        scorer = DeadlineScorer(measure)
        a, b = corpus.trajectories[:2]
        scorer.score(a, b)  # unbounded -> full
        scorer.score(a, b, budget=Budget(deadline_ms=10_000.0))
        rungs = fresh_registry.snapshot()["counters"]["repro_ladder_rung_total"]
        assert sum(rungs.values()) == 2
        assert set(rungs) <= {
            'rung="full"', 'rung="coarse-2x"', 'rung="coarse-4x"', 'rung="filter-only"'
        }
        score_hist = fresh_registry.snapshot()["histograms"][
            "repro_serving_score_seconds"
        ][""]
        assert score_hist["count"] == 2

    def test_breaker_transitions_counted(self, fresh_registry):
        from repro.serving.breaker import CircuitBreaker

        fake_now = [0.0]
        breaker = CircuitBreaker(threshold=1, cooldown_base=1.0, clock=lambda: fake_now[0])
        breaker.record_timeout("pair")  # trips -> open
        fake_now[0] = 2.0
        breaker.allow("pair")  # cooldown over -> half-open probe
        breaker.record_success("pair")  # -> closed
        states = fresh_registry.snapshot()["counters"]["repro_breaker_transitions_total"]
        assert states['state="open"'] == 1
        assert states['state="half-open"'] == 1
        assert states['state="closed"'] == 1

    def test_matcher_report_carries_metrics(self, fresh_registry, corpus):
        from repro.index import FilteredMatcher

        measure = STS(corpus.make_grid())
        matcher = FilteredMatcher(measure)
        report = matcher.query(corpus.trajectories[0], corpus.trajectories[1:4])
        assert report.metrics is not None
        candidates = report.metrics["counters"]["repro_matcher_candidates_total"]
        assert candidates['stage="considered"'] == 3
        assert report.metrics["histograms"]["repro_matcher_query_seconds"][""]["count"] == 1

    def test_streaming_health_carries_metrics(self, fresh_registry, corpus):
        from repro.streaming import SightingEvent, StreamingColocationDetector

        detector = StreamingColocationDetector(
            corpus.make_grid(), window=600.0, on_error="skip"
        )
        for traj in corpus.trajectories[:2]:
            for p in traj:
                detector.ingest(SightingEvent(traj.object_id, p.x, p.y, p.t))
        detector.ingest(SightingEvent("bad", float("nan"), 0.0, 1.0))
        detector.evaluate()
        health = detector.last_health
        assert health.metrics is not None
        events = health.metrics["counters"]["repro_stream_events_total"]
        assert events['outcome="ingested"'] > 0
        assert events['outcome="malformed"'] == 1
        assert health.metrics["gauges"]["repro_stream_active_windows"][""] >= 1


class TestParallelMetrics:
    def test_supervisor_chunk_lifecycle_and_health_metrics(
        self, fresh_registry, corpus
    ):
        measure = STS(corpus.make_grid())
        wrapper = ParallelSTS(measure, n_jobs=2, backend="thread")
        wrapper.pairwise(corpus.trajectories[:4])
        health = wrapper.last_health
        assert health.metrics is not None
        chunks = health.metrics["counters"]["repro_supervisor_chunks_total"]
        assert chunks['event="queued"'] > 0
        assert chunks['event="completed"'] == chunks['event="queued"']
        assert health.metrics["histograms"]["repro_pairwise_seconds"][""]["count"] == 1

    def test_span_tree_nests_across_thread_backend(
        self, fresh_registry, fresh_tracer, corpus
    ):
        measure = STS(corpus.make_grid())
        wrapper = ParallelSTS(measure, n_jobs=2, backend="thread")
        wrapper.pairwise(corpus.trajectories[:4])
        roots = fresh_tracer.roots()
        by_name: dict[str, list] = {}
        for root in roots:
            by_name.setdefault(root.name, []).append(root)
        # The orchestrating span runs on the caller's thread...
        assert len(by_name["parallel.pairwise"]) == 1
        parent = by_name["parallel.pairwise"][0]
        assert parent.attrs["backend"] == "thread"
        # ...and each worker chunk opens its own root on its worker thread.
        chunk_spans = by_name["parallel.chunk"]
        assert len(chunk_spans) == parent.attrs["chunks"]
        assert all(s.wall_s >= 0.0 for s in chunk_spans)
        worker_tids = {s.tid for s in chunk_spans}
        assert worker_tids  # recorded per-thread ids
        events = fresh_tracer.to_chrome_trace()
        assert {"parallel.pairwise", "parallel.chunk"} <= {e["name"] for e in events}
        json.dumps(events)


class TestRunnerStageTimes:
    def test_report_and_checkpoint_carry_stage_breakdown(
        self, fresh_registry, tmp_path
    ):
        from repro.checkpoint import ExperimentCheckpoint
        from repro.eval.runner import run_all_experiments

        dataset = taxi_dataset(n_trajectories=5, seed=4)
        report = run_all_experiments(
            dataset, only=["fig10"], checkpoint_dir=str(tmp_path)
        )
        assert "fig10" in report.stage_times
        stages = report.stage_times["fig10"]
        assert any(key.startswith("stp/") for key in stages)
        assert all(v > 0.0 for v in stages.values())

        checkpoint = ExperimentCheckpoint(
            str(tmp_path), {"dataset": dataset.name, "seed": 0}
        )
        assert checkpoint.load_stages("fig10") == pytest.approx(stages)

        # A resumed run reads the breakdown back from the journal.
        resumed = run_all_experiments(
            dataset, only=["fig10"], checkpoint_dir=str(tmp_path)
        )
        assert resumed.resumed == ["fig10"]
        assert resumed.stage_times["fig10"] == pytest.approx(stages)

    def test_markdown_mentions_stage_breakdown(self, fresh_registry):
        from repro.eval.runner import render_markdown, run_all_experiments

        dataset = taxi_dataset(n_trajectories=5, seed=4)
        report = run_all_experiments(dataset, only=["fig10"])
        assert "Stage breakdown:" in render_markdown(report)


class TestOverheadGuard:
    @pytest.mark.timing  # compares real wall-clock runs; irreducible
    def test_instrumentation_within_two_percent(self, corpus):
        """Instrumented pairwise within 2% of REPRO_OBS=off (min-of-N).

        Noise only inflates the ratio, so the guard takes the best of
        three measurement attempts before declaring a regression.
        """
        grid = corpus.make_grid()
        gallery = corpus.trajectories

        def run_once() -> float:
            measure = STS(grid, cache_size=None)
            start = time.perf_counter()
            measure.pairwise(gallery)
            return time.perf_counter() - start

        run_once()  # warmup

        def measure_ratio(rounds: int = 10) -> float:
            enabled_times, disabled_times = [], []
            for _ in range(rounds):
                enabled_times.append(run_once())
                previous = set_enabled(False)
                try:
                    disabled_times.append(run_once())
                finally:
                    set_enabled(previous)
            return min(enabled_times) / min(disabled_times)

        best = measure_ratio()
        for _ in range(2):
            if best <= 1.02:
                break
            best = min(best, measure_ratio())
        assert best <= 1.02, f"instrumentation overhead x{best:.4f} exceeds 2%"


class TestCliObs:
    def test_obs_demo_renders_counters(self, fresh_registry, capsys):
        from repro.cli import main

        assert main(["obs"]) == 0
        out = capsys.readouterr().out
        assert "repro_stage_seconds_total" in out
        assert "repro_ladder_rung_total" in out
        assert "repro_cache_hits_total" in out
        assert "Span flamegraph:" in out

    def test_obs_check_accepts_valid_and_rejects_invalid(self, tmp_path, capsys):
        from repro.cli import main

        good = tmp_path / "good.prom"
        good.write_text('# TYPE x_total counter\nx_total{a="b"} 1\n')
        assert main(["obs", "--check", str(good)]) == 0
        assert "OK" in capsys.readouterr().out

        bad = tmp_path / "bad.prom"
        bad.write_text("!!! not prometheus\n")
        assert main(["obs", "--check", str(bad)]) == 1
        assert "FAILED" in capsys.readouterr().out

    def test_obs_input_pretty_prints(self, tmp_path, capsys):
        from repro.cli import main

        snap = tmp_path / "snap.json"
        snap.write_text(json.dumps({"counters": {"x_total": {"": 2.0}}}))
        assert main(["obs", "--input", str(snap)]) == 0
        assert "x_total" in capsys.readouterr().out

    def test_metrics_out_on_any_subcommand(self, fresh_registry, tmp_path, capsys):
        from repro.cli import main

        out_json = tmp_path / "metrics.json"
        assert main(["list-measures", "--metrics-out", str(out_json)]) == 0
        assert json.loads(out_json.read_text()).keys() == {
            "counters", "gauges", "histograms"
        }

        out_prom = tmp_path / "metrics.prom"
        assert main(["obs", "--format", "flame", "--metrics-out", str(out_prom)]) == 0
        from repro.obs import validate_prometheus_text

        assert validate_prometheus_text(out_prom.read_text()) == []


class TestBenchHistory:
    def test_write_report_appends_bounded_history(self, tmp_path, monkeypatch):
        import importlib.util
        import sys
        from pathlib import Path

        bench_dir = Path(__file__).resolve().parent.parent / "benchmarks"
        spec = importlib.util.spec_from_file_location(
            "jsonbench_under_test", bench_dir / "jsonbench.py"
        )
        jsonbench = importlib.util.module_from_spec(spec)
        sys.modules[spec.name] = jsonbench
        spec.loader.exec_module(jsonbench)
        monkeypatch.setattr(jsonbench, "REPO_ROOT", tmp_path)

        payload = {"configs": {"fast": {"mean_s": 0.5, "p50_s": 0.5}}}
        path = jsonbench.write_report("BENCH_x.json", dict(payload))
        first = json.loads(path.read_text())
        assert len(first["history"]) == 1
        record = first["history"][0]
        assert set(record) == {"git_sha", "timestamp_utc", "mean_s"}
        assert record["mean_s"] == {"fast": 0.5}
        assert record["timestamp_utc"].startswith("20")

        for _ in range(jsonbench.HISTORY_LIMIT + 5):
            jsonbench.write_report("BENCH_x.json", dict(payload))
        final = json.loads(path.read_text())
        assert len(final["history"]) == jsonbench.HISTORY_LIMIT

    def test_corrupt_existing_file_does_not_break_write(self, tmp_path, monkeypatch):
        import importlib.util
        import sys
        from pathlib import Path

        bench_dir = Path(__file__).resolve().parent.parent / "benchmarks"
        spec = importlib.util.spec_from_file_location(
            "jsonbench_under_test2", bench_dir / "jsonbench.py"
        )
        jsonbench = importlib.util.module_from_spec(spec)
        sys.modules[spec.name] = jsonbench
        spec.loader.exec_module(jsonbench)
        monkeypatch.setattr(jsonbench, "REPO_ROOT", tmp_path)

        (tmp_path / "BENCH_y.json").write_text("{ torn")
        path = jsonbench.write_report("BENCH_y.json", {"configs": {}})
        assert len(json.loads(path.read_text())["history"]) == 1


class TestPickleRoundTrips:
    def test_sts_pickles_without_registry_state(self, fresh_registry, corpus):
        import pickle

        measure = STS(corpus.make_grid())
        a, b = corpus.trajectories[:2]
        expected = measure.similarity(a, b)
        clone = pickle.loads(pickle.dumps(measure))
        assert clone.similarity(a, b) == pytest.approx(expected)
