"""Unit tests for dataset generators and loaders."""

import numpy as np
import pytest

from repro.core.trajectory import Trajectory
from repro.datasets import (
    MIN_TRAJECTORY_LENGTH,
    load_mall_records,
    load_porto_csv,
    load_trajectories_csv,
    mall_dataset,
    project_lonlat,
    save_trajectories_csv,
    taxi_dataset,
)
from repro.datasets.porto import iter_porto_rows


class TestSyntheticDatasets:
    def test_taxi_dataset_shape(self, tiny_taxi_dataset):
        ds = tiny_taxi_dataset
        assert ds.name == "taxi"
        assert len(ds) == 6
        assert all(len(t) >= MIN_TRAJECTORY_LENGTH for t in ds.trajectories)

    def test_taxi_report_interval(self, tiny_taxi_dataset):
        for traj in tiny_taxi_dataset.trajectories:
            gaps = np.diff(traj.timestamps)
            np.testing.assert_allclose(gaps, 15.0)

    def test_mall_dataset_shape(self, tiny_mall_dataset):
        ds = tiny_mall_dataset
        assert ds.name == "mall"
        assert len(ds) == 6
        assert all(len(t) >= MIN_TRAJECTORY_LENGTH for t in ds.trajectories)

    def test_mall_sampling_sporadic(self, tiny_mall_dataset):
        # Poisson gaps: heterogeneous, not all equal.
        gaps = np.concatenate([np.diff(t.timestamps) for t in tiny_mall_dataset.trajectories])
        assert gaps.std() > 1.0

    def test_deterministic_given_seed(self):
        a = taxi_dataset(n_trajectories=3, seed=2)
        b = taxi_dataset(n_trajectories=3, seed=2)
        for ta, tb in zip(a.trajectories, b.trajectories):
            assert ta == tb

    def test_different_seeds_differ(self):
        a = mall_dataset(n_trajectories=3, seed=1)
        b = mall_dataset(n_trajectories=3, seed=2)
        assert any(ta != tb for ta, tb in zip(a.trajectories, b.trajectories))

    def test_make_grid_covers_all_points(self, tiny_mall_dataset):
        grid = tiny_mall_dataset.make_grid()
        pts = tiny_mall_dataset.all_points()
        assert (pts[:, 0] >= grid.min_x).all()
        assert (pts[:, 0] <= grid.max_x).all()
        assert (pts[:, 1] >= grid.min_y).all()
        assert (pts[:, 1] <= grid.max_y).all()

    def test_make_grid_custom_cell(self, tiny_mall_dataset):
        grid = tiny_mall_dataset.make_grid(cell_size=6.0)
        assert grid.cell_size == 6.0

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            taxi_dataset(n_trajectories=0)
        with pytest.raises(ValueError):
            mall_dataset(n_trajectories=-1)

    def test_metadata_present(self, tiny_taxi_dataset, tiny_mall_dataset):
        assert tiny_taxi_dataset.cell_size == 100.0
        assert tiny_mall_dataset.cell_size == 3.0
        assert tiny_taxi_dataset.noise_levels
        assert tiny_mall_dataset.grid_sizes

    def test_time_window_controls_start_spread(self):
        tight = taxi_dataset(n_trajectories=6, seed=3, time_window=60.0)
        wide = taxi_dataset(n_trajectories=6, seed=3, time_window=3600.0)
        spread = lambda ds: max(t.start_time for t in ds.trajectories) - min(  # noqa: E731
            t.start_time for t in ds.trajectories
        )
        assert spread(tight) < spread(wide)


class TestTrajectoryCSV:
    def test_roundtrip(self, tmp_path, straight_trajectory, l_shaped_trajectory):
        path = tmp_path / "out.csv"
        rows = save_trajectories_csv([straight_trajectory, l_shaped_trajectory], path)
        assert rows == len(straight_trajectory) + len(l_shaped_trajectory)
        loaded = load_trajectories_csv(path)
        assert loaded[0] == straight_trajectory
        assert loaded[1] == l_shaped_trajectory
        assert loaded[0].object_id == "straight"

    def test_anonymous_trajectories_get_ids(self, tmp_path):
        anon = Trajectory.from_arrays([0, 1], [0, 0], [0, 1])
        path = tmp_path / "anon.csv"
        save_trajectories_csv([anon], path)
        loaded = load_trajectories_csv(path)
        assert loaded[0].object_id == "trajectory-000000"

    def test_min_length_filter(self, tmp_path, straight_trajectory, single_point_trajectory):
        path = tmp_path / "mixed.csv"
        save_trajectories_csv([straight_trajectory, single_point_trajectory], path)
        loaded = load_trajectories_csv(path, min_length=5)
        assert len(loaded) == 1

    def test_missing_columns_raise(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(ValueError, match="missing required columns"):
            load_trajectories_csv(path)

    def test_malformed_row_raises_with_line(self, tmp_path):
        path = tmp_path / "bad2.csv"
        path.write_text("object_id,x,y,t\nid,1.0,oops,3.0\n")
        with pytest.raises(ValueError, match=":2:"):
            load_trajectories_csv(path)

    def test_float_precision_roundtrip(self, tmp_path):
        traj = Trajectory.from_arrays([0.1 + 0.2], [1e-17], [123456789.123456], "p")
        path = tmp_path / "prec.csv"
        save_trajectories_csv([traj], path)
        loaded = load_trajectories_csv(path)
        assert loaded[0] == traj


PORTO_HEADER = (
    '"TRIP_ID","CALL_TYPE","ORIGIN_CALL","ORIGIN_STAND","TAXI_ID",'
    '"TIMESTAMP","DAY_TYPE","MISSING_DATA","POLYLINE"\n'
)


def porto_row(trip_id, timestamp, polyline, missing="False"):
    import json

    return (
        f'"{trip_id}","A","","","20000001","{timestamp}","A","{missing}",'
        f'"{json.dumps(polyline)}"\n'
    )


class TestPortoLoader:
    @pytest.fixture
    def porto_csv(self, tmp_path):
        poly_long = [[-8.61 + 0.0001 * k, 41.14 + 0.0001 * k] for k in range(25)]
        poly_short = [[-8.61, 41.14]] * 3
        path = tmp_path / "porto.csv"
        path.write_text(
            PORTO_HEADER
            + porto_row("T1", 1372636858, poly_long)
            + porto_row("T2", 1372637000, poly_short)
            + porto_row("T3", 1372638000, poly_long, missing="True")
            + porto_row("T4", 1372639000, [])
            + porto_row("T5", 1372640000, poly_long)
        )
        return path

    def test_loads_and_filters(self, porto_csv):
        trajectories = load_porto_csv(porto_csv, min_length=20)
        assert [t.object_id for t in trajectories] == ["T1", "T5"]
        assert all(len(t) == 25 for t in trajectories)

    def test_timestamps_every_15s(self, porto_csv):
        traj = load_porto_csv(porto_csv, min_length=20)[0]
        np.testing.assert_allclose(np.diff(traj.timestamps), 15.0)
        assert traj.start_time == 1372636858.0

    def test_max_trajectories(self, porto_csv):
        assert len(load_porto_csv(porto_csv, min_length=20, max_trajectories=1)) == 1

    def test_iter_rows_skips_missing_and_empty(self, porto_csv):
        rows = list(iter_porto_rows(porto_csv))
        assert [r["TRIP_ID"] for r in rows] == ["T1", "T2", "T5"]

    def test_not_porto_format(self, tmp_path):
        path = tmp_path / "nope.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(ValueError, match="POLYLINE"):
            list(iter_porto_rows(path))

    def test_projection_scale(self):
        # 0.001 degrees of latitude is ~111 m everywhere.
        x, y = project_lonlat(-8.61, 41.141, -8.61, 41.14)
        assert x == pytest.approx(0.0)
        assert y == pytest.approx(111.0, rel=0.01)

    def test_projection_longitude_shrinks_with_latitude(self):
        x_eq, _ = project_lonlat(0.001, 0.0, 0.0, 0.0)
        x_north, _ = project_lonlat(0.001, 60.0, 0.0, 60.0)
        assert x_north == pytest.approx(x_eq * 0.5, rel=0.01)


class TestMallLoader:
    @pytest.fixture
    def mall_csv(self, tmp_path):
        lines = ["mac,x,y,timestamp\n"]
        # device A: 25 sightings; device B: 3 sightings (filtered); junk row
        for k in range(25):
            lines.append(f"aa:bb,{k * 1.5},{k % 7},{1000 + 20 * k}\n")
        for k in range(3):
            lines.append(f"cc:dd,{k},{k},{2000 + k}\n")
        lines.append("ee:ff,not_a_number,0,0\n")
        path = tmp_path / "mall.csv"
        path.write_text("".join(lines))
        return path

    def test_groups_by_mac_and_filters(self, mall_csv):
        trajectories = load_mall_records(mall_csv, min_length=20)
        assert len(trajectories) == 1
        assert trajectories[0].object_id == "aa:bb"
        assert len(trajectories[0]) == 25

    def test_sorted_by_time(self, tmp_path):
        path = tmp_path / "unsorted.csv"
        path.write_text(
            "mac,x,y,timestamp\n"
            + "".join(f"m,{k},0,{100 - k}\n" for k in range(25))
        )
        traj = load_mall_records(path, min_length=20)[0]
        assert np.all(np.diff(traj.timestamps) > 0)

    def test_missing_columns(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("mac,x,y\nm,1,2\n")
        with pytest.raises(ValueError, match="missing required columns"):
            load_mall_records(path)

    def test_junk_rows_skipped_not_fatal(self, mall_csv):
        trajectories = load_mall_records(mall_csv, min_length=1)
        macs = {t.object_id for t in trajectories}
        assert "ee:ff" not in macs
