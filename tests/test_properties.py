"""Property-based tests (hypothesis) for core invariants.

Covers the invariants the paper's math promises:

* STS ∈ [0, 1], symmetric;
* STP distributions are normalized over the grid;
* co-location probability ∈ [0, 1], symmetric;
* classic measures: identity, symmetry, non-negativity;
* grid point↔cell consistency;
* KDE positivity and Eq. 7 range.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.grid import Grid
from repro.core.noise import GaussianNoiseModel
from repro.core.speed import KDESpeedModel
from repro.core.stprob import TrajectorySTP
from repro.core.sts import STS
from repro.core.transition import SpeedTransitionModel
from repro.core.trajectory import Trajectory, TrajectoryPoint
from repro.similarity import (
    CATS,
    DTW,
    EDR,
    LCSS,
    SST,
    WGM,
    Frechet,
    Hausdorff,
    dtw_distance,
    edr_distance,
    frechet_distance,
    hausdorff_distance,
    lcss_similarity,
)

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
coord = st.floats(min_value=0.0, max_value=50.0, allow_nan=False, allow_infinity=False)


@st.composite
def trajectories(draw, min_points=2, max_points=8):
    """Small trajectories inside [0, 50]² with strictly increasing times."""
    n = draw(st.integers(min_points, max_points))
    xs = draw(st.lists(coord, min_size=n, max_size=n))
    ys = draw(st.lists(coord, min_size=n, max_size=n))
    gaps = draw(
        st.lists(st.floats(0.5, 20.0, allow_nan=False), min_size=n, max_size=n)
    )
    ts = np.cumsum(gaps)
    return Trajectory(
        [TrajectoryPoint(x, y, float(t)) for x, y, t in zip(xs, ys, ts)]
    )


GRID = Grid(-10, -10, 60, 60, cell_size=5.0)
SLOW = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def sts_measure():
    return STS(GRID, noise_model=GaussianNoiseModel(3.0))


# ----------------------------------------------------------------------
# STS invariants
# ----------------------------------------------------------------------
class TestSTSProperties:
    @SLOW
    @given(a=trajectories(), b=trajectories())
    def test_range_and_symmetry(self, a, b):
        measure = sts_measure()
        ab = measure.similarity(a, b)
        ba = measure.similarity(b, a)
        assert 0.0 <= ab <= 1.0 + 1e-12
        assert ab == pytest.approx(ba, abs=1e-9)

    @SLOW
    @given(a=trajectories())
    def test_self_similarity_positive(self, a):
        measure = sts_measure()
        assert measure.similarity(a, a) > 0.0

    @SLOW
    @given(a=trajectories(), b=trajectories())
    def test_disjoint_time_spans_zero(self, a, b):
        far = b.shifted(dt=a.end_time - b.start_time + 1000.0)
        assert sts_measure().similarity(a, far) == 0.0

    @SLOW
    @given(a=trajectories(), dt=st.floats(0.0, 100.0, allow_nan=False))
    def test_time_translation_invariance(self, a, dt):
        measure = sts_measure()
        base = measure.similarity(a, a)
        shifted = a.shifted(dt=dt)
        also = sts_measure().similarity(shifted, shifted)
        assert also == pytest.approx(base, abs=1e-9)


class TestSTPProperties:
    @SLOW
    @given(a=trajectories(), frac=st.floats(0.0, 1.0, allow_nan=False))
    def test_stp_normalized_inside_span(self, a, frac):
        stp = TrajectorySTP(
            a,
            GRID,
            GaussianNoiseModel(3.0),
            SpeedTransitionModel(KDESpeedModel.from_trajectory(a)),
        )
        t = a.start_time + frac * (a.end_time - a.start_time)
        cells, probs = stp.stp(t)
        assert len(cells) == len(probs)
        assert probs.sum() == pytest.approx(1.0)
        assert (probs >= 0).all()
        assert len(np.unique(cells)) == len(cells)

    @SLOW
    @given(a=trajectories())
    def test_stp_zero_outside_span(self, a):
        stp = TrajectorySTP(
            a,
            GRID,
            GaussianNoiseModel(3.0),
            SpeedTransitionModel(KDESpeedModel.from_trajectory(a)),
        )
        assert len(stp.stp(a.start_time - 1.0)[0]) == 0
        assert len(stp.stp(a.end_time + 1.0)[0]) == 0


# ----------------------------------------------------------------------
# KDE invariants
# ----------------------------------------------------------------------
class TestSpeedProperties:
    @given(
        samples=st.lists(st.floats(0.0, 30.0, allow_nan=False), min_size=1, max_size=30),
        v=st.floats(0.0, 50.0, allow_nan=False),
    )
    def test_density_non_negative(self, samples, v):
        model = KDESpeedModel(samples, approx=False)
        assert model.density(v) >= 0.0

    @given(
        samples=st.lists(st.floats(0.0, 30.0, allow_nan=False), min_size=1, max_size=30),
        v=st.floats(0.0, 50.0, allow_nan=False),
    )
    def test_transition_weight_bounded(self, samples, v):
        # Eq. 7 value is a kernel mean, bounded by K(0) = 1/sqrt(2π).
        model = KDESpeedModel(samples, approx=False)
        assert 0.0 <= model.transition_weight(v) <= 1.0 / np.sqrt(2 * np.pi) + 1e-12


# ----------------------------------------------------------------------
# Grid invariants
# ----------------------------------------------------------------------
class TestGridProperties:
    @given(x=st.floats(-10, 60, allow_nan=False), y=st.floats(-10, 60, allow_nan=False))
    def test_point_in_own_cell(self, x, y):
        idx = GRID.cell_of(x, y)
        cx, cy = GRID.center_of(idx)
        # point is within half a cell diagonal of its cell's center
        assert abs(cx - x) <= GRID.cell_size / 2 + 1e-9
        assert abs(cy - y) <= GRID.cell_size / 2 + 1e-9

    @given(
        x=st.floats(0, 50, allow_nan=False),
        y=st.floats(0, 50, allow_nan=False),
        r=st.floats(0, 30, allow_nan=False),
    )
    def test_cells_within_radius_sound(self, x, y, r):
        cells = GRID.cells_within(x, y, r)
        centers = GRID.centers()
        for c in cells:
            assert np.hypot(centers[c, 0] - x, centers[c, 1] - y) <= r + 1e-9


# ----------------------------------------------------------------------
# Classic measures
# ----------------------------------------------------------------------
class TestIndexProperties:
    @SLOW
    @given(q=trajectories(), gallery=st.lists(trajectories(), min_size=1, max_size=5))
    def test_time_filter_lossless_for_sts(self, q, gallery):
        # Every gallery entry the time filter rejects scores exactly 0
        # under STS, so filtering cannot change any ranking of positives.
        from repro.index import time_overlap_filter

        measure = sts_measure()
        kept = set(time_overlap_filter(q, gallery).tolist())
        for i, candidate in enumerate(gallery):
            if i not in kept:
                assert measure.similarity(q, candidate) == 0.0

    @SLOW
    @given(q=trajectories(), gallery=st.lists(trajectories(), min_size=1, max_size=5))
    def test_filtered_matcher_subset_of_rank_gallery(self, q, gallery):
        from repro.eval import rank_gallery
        from repro.index import FilteredMatcher
        from repro.similarity import SST

        measure = SST(spatial_scale=5.0, temporal_scale=10.0)
        matcher = FilteredMatcher(measure, spatial_slack=1000.0)
        filtered = matcher.query(q, gallery).matches
        full = {m.index: m.score for m in rank_gallery(measure, q, gallery)}
        # survivors keep their exact scores, and appear in score order
        scores = [m.score for m in filtered]
        assert scores == sorted(scores, reverse=True)
        for m in filtered:
            assert m.score == pytest.approx(full[m.index])


class TestPreprocessProperties:
    @SLOW
    @given(a=trajectories(min_points=2, max_points=12), max_speed=st.floats(0.5, 10.0))
    def test_despiked_speeds_bounded(self, a, max_speed):
        from repro.preprocess import remove_speed_outliers

        out = remove_speed_outliers(a, max_speed=max_speed)
        assert len(out) >= 1
        assert (out.speeds() <= max_speed + 1e-9).all()
        # only original observations survive, in order
        original = set(a.points)
        assert all(p in original for p in out)

    @SLOW
    @given(a=trajectories(min_points=2, max_points=12), max_gap=st.floats(0.5, 30.0))
    def test_split_segments_have_no_internal_gaps(self, a, max_gap):
        from repro.preprocess import split_on_gaps

        segments = split_on_gaps(a, max_gap=max_gap, min_points=1)
        total = sum(len(s) for s in segments)
        assert total == len(a)  # partition, nothing lost with min_points=1
        for seg in segments:
            gaps = np.diff(seg.timestamps)
            assert (gaps <= max_gap + 1e-9).all()

    @SLOW
    @given(a=trajectories(min_points=2, max_points=12))
    def test_dedup_strictly_increasing(self, a):
        from repro.preprocess import deduplicate_timestamps

        out = deduplicate_timestamps(a)
        assert (np.diff(out.timestamps) > 0).all() or len(out) <= 1


class TestMeasureProperties:
    @SLOW
    @given(a=trajectories(), b=trajectories())
    def test_distances_non_negative_and_symmetric(self, a, b):
        for fn in (dtw_distance, frechet_distance, hausdorff_distance):
            ab = fn(a.xy, b.xy)
            assert ab >= 0.0
            assert ab == pytest.approx(fn(b.xy, a.xy), rel=1e-9, abs=1e-9)

    @SLOW
    @given(a=trajectories())
    def test_identity_of_indiscernibles(self, a):
        assert dtw_distance(a.xy, a.xy) == pytest.approx(0.0, abs=1e-9)
        assert frechet_distance(a.xy, a.xy) == pytest.approx(0.0, abs=1e-9)
        assert hausdorff_distance(a.xy, a.xy) == 0.0
        assert edr_distance(a.xy, a.xy, epsilon=1.0) == 0.0
        assert lcss_similarity(a.xy, a.xy, epsilon=1.0) == 1.0

    @SLOW
    @given(a=trajectories(), b=trajectories())
    def test_similarity_measures_in_unit_interval(self, a, b):
        for measure in (
            CATS(epsilon=5.0, tau=10.0),
            SST(spatial_scale=5.0, temporal_scale=10.0),
            WGM(spatial_scale=5.0, temporal_scale=10.0),
            LCSS(epsilon=5.0),
        ):
            value = measure(a, b)
            assert 0.0 <= value <= 1.0 + 1e-12

    @SLOW
    @given(a=trajectories(), b=trajectories())
    def test_score_orientation_consistent(self, a, b):
        for measure in (DTW(), Frechet(), Hausdorff(), EDR(epsilon=2.0)):
            assert measure.score(a, b) == -measure(a, b)

    @SLOW
    @given(a=trajectories(), b=trajectories())
    def test_dtw_lower_bounded_by_endpoint_costs(self, a, b):
        # any warping path pairs the two start points and the two end points
        d = dtw_distance(a.xy, b.xy)
        start = np.hypot(*(a.xy[0] - b.xy[0]))
        end = np.hypot(*(a.xy[-1] - b.xy[-1]))
        assert d >= max(start, end) - 1e-9
