"""Unit tests for the deadline-aware serving layer (:mod:`repro.serving`).

The load-bearing acceptance property lives in
:class:`TestAnytimeSimilarity` / :class:`TestDeadlineScorer`: for *any*
budget the exact Eq. 10 score provably lies within the returned
``AnytimeScore.bounds``, and an unbounded run is **bitwise** equal to
``STS.similarity``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.sts import STS
from repro.core.trajectory import Trajectory
from repro.errors import DegenerateTrajectoryError
from repro.serving import (
    AnytimeScore,
    Budget,
    CircuitBreaker,
    DeadlineScorer,
    ServiceEvent,
    ServiceHealth,
    anytime_similarity,
    current_rss_mb,
    filter_only_estimate,
)
from repro.serving import budget as budget_mod


class FakeClock:
    """Deterministic monotonic clock for budget/breaker tests."""

    def __init__(self, t: float = 0.0):
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


@pytest.fixture
def clock() -> FakeClock:
    return FakeClock()


@pytest.fixture
def measure(small_grid) -> STS:
    return STS(small_grid)


@pytest.fixture
def pair(straight_trajectory, l_shaped_trajectory):
    """Two overlapping-span trajectories (21 Eq. 10 terms total)."""
    return straight_trajectory, l_shaped_trajectory


# ----------------------------------------------------------------------
class TestCurrentRss:
    def test_reports_positive_mib(self):
        assert current_rss_mb() > 0.0


class TestBudget:
    def test_unbounded_never_expires(self):
        budget = Budget.unbounded()
        assert not budget.bounded
        assert not budget.expired()
        assert not budget.expired(10**9)
        assert budget.remaining_ms() == float("inf")
        assert budget.terms_allowance(10**9) == float("inf")

    def test_deadline_expiry_with_fake_clock(self, clock):
        budget = Budget(deadline_ms=100.0, clock=clock).start()
        assert not budget.expired()
        clock.advance(0.05)
        assert budget.remaining_ms() == pytest.approx(50.0)
        clock.advance(0.06)
        assert budget.expired()
        assert budget.remaining_ms() == 0.0
        assert budget.elapsed_ms() == pytest.approx(110.0)

    def test_start_is_lazy_and_idempotent(self, clock):
        budget = Budget(deadline_ms=100.0, clock=clock)
        assert not budget.started
        assert budget.elapsed_ms() == 0.0
        clock.advance(5.0)  # time before first query does not count
        assert budget.remaining_ms() == pytest.approx(100.0)
        assert budget.started
        clock.advance(0.03)
        budget.start()  # second start must not re-anchor
        assert budget.remaining_ms() == pytest.approx(70.0)

    def test_max_terms_cap(self):
        budget = Budget(max_terms=5)
        assert budget.bounded
        assert budget.terms_allowance(3) == 2
        assert not budget.expired(4)
        assert budget.expired(5)

    def test_memory_ceiling(self, monkeypatch):
        budget = Budget(max_rss_mb=100.0)
        monkeypatch.setattr(budget_mod, "current_rss_mb", lambda: 50.0)
        assert not budget.expired()
        monkeypatch.setattr(budget_mod, "current_rss_mb", lambda: 200.0)
        assert budget.over_memory()
        assert budget.expired()

    def test_sub_budget_slices_remaining_deadline(self, clock):
        # The (uncrossed) memory ceiling must be inherited, not consulted.
        budget = Budget(deadline_ms=100.0, max_rss_mb=1e6, clock=clock).start()
        clock.advance(0.04)
        child = budget.sub_budget(0.5)
        assert child.deadline_ms == pytest.approx(30.0)  # half of the 60 left
        assert child.max_rss_mb == 1e6
        assert child.clock is clock
        assert child.started

    def test_sub_budget_of_unbounded_is_unbounded(self):
        child = Budget.unbounded().sub_budget(0.5)
        assert child.deadline_ms is None
        assert not child.expired()

    def test_sub_budget_fraction_validation(self):
        for fraction in (0.0, -0.5, 1.5):
            with pytest.raises(ValueError, match="fraction"):
                Budget.unbounded().sub_budget(fraction)

    def test_sub_budget_of_expired_deadline_is_born_expired(self, clock):
        budget = Budget(deadline_ms=100.0, clock=clock).start()
        clock.advance(0.25)  # well past the deadline
        child = budget.sub_budget(0.5)
        assert child.deadline_ms == 0.0
        assert child.expired()
        assert child.remaining_ms() == 0.0

    def test_sub_budget_of_terms_exhausted_parent_is_born_expired(self, clock):
        """An unbounded-deadline parent exhausted via max_terms must not
        hand out a live (unbounded) child — the slice sheds cleanly."""
        budget = Budget(max_terms=5, clock=clock)
        live = budget.sub_budget(0.5, terms_done=4)
        assert live.deadline_ms is None  # parent still live: unchanged
        dead = budget.sub_budget(0.5, terms_done=5)
        assert dead.deadline_ms == 0.0
        assert dead.expired()

    def test_sub_budget_of_over_memory_parent_is_born_expired(self, monkeypatch):
        budget = Budget(max_rss_mb=100.0)
        monkeypatch.setattr(budget_mod, "current_rss_mb", lambda: 200.0)
        child = budget.sub_budget(1.0)
        assert child.deadline_ms == 0.0
        assert child.expired()

    def test_sub_budget_never_propagates_negative_deadline(self, clock):
        budget = Budget(deadline_ms=10.0, clock=clock).start()
        clock.advance(5.0)  # 4990 ms past the deadline
        child = budget.sub_budget(1.0)
        assert child.deadline_ms == 0.0  # clamped, not -4990

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="deadline_ms"):
            Budget(deadline_ms=-1.0)
        with pytest.raises(ValueError, match="max_rss_mb"):
            Budget(max_rss_mb=0.0)
        with pytest.raises(ValueError, match="max_terms"):
            Budget(max_terms=-1)

    def test_repr(self):
        assert repr(Budget.unbounded()) == "Budget(unbounded)"
        assert "deadline_ms=100" in repr(Budget(deadline_ms=100.0))


# ----------------------------------------------------------------------
class TestAnytimeSimilarity:
    def test_unbounded_is_bitwise_equal_to_exact(self, measure, pair):
        tra1, tra2 = pair
        exact = measure.similarity(tra1, tra2)
        score = anytime_similarity(measure, tra1, tra2)
        assert score.completed
        assert score.value == exact  # bitwise, not approx
        assert score.bounds == (exact, exact)
        assert score.width == 0.0
        assert float(score) == exact

    def test_exact_within_bounds_for_any_term_budget(self, measure, pair):
        # The acceptance property: sweep every possible partial budget.
        tra1, tra2 = pair
        exact = measure.similarity(tra1, tra2)
        n_terms = len(tra1) + len(tra2)
        for k in range(n_terms + 1):
            score = anytime_similarity(
                measure, tra1, tra2, budget=Budget(max_terms=k), batch_size=1
            )
            assert score.lower <= exact <= score.upper, f"violated at max_terms={k}"
            assert score.lower <= score.value <= score.upper
            if score.completed:
                assert score.value == exact

    def test_bounds_narrow_monotonically(self, measure, pair):
        tra1, tra2 = pair
        n_terms = len(tra1) + len(tra2)
        lowers, uppers = [], []
        for k in range(n_terms + 1):
            score = anytime_similarity(
                measure, tra1, tra2, budget=Budget(max_terms=k), batch_size=1
            )
            lowers.append(score.lower)
            uppers.append(score.upper)
        assert all(a <= b for a, b in zip(lowers, lowers[1:]))
        assert all(a >= b for a, b in zip(uppers, uppers[1:]))

    def test_zero_budget_still_bounds_exact(self, measure, pair):
        tra1, tra2 = pair
        score = anytime_similarity(measure, tra1, tra2, budget=Budget(max_terms=0))
        assert score.evaluated_terms == 0
        assert not score.completed
        assert score.lower == 0.0
        assert score.upper <= 1.0
        assert score.lower <= measure.similarity(tra1, tra2) <= score.upper

    def test_expired_deadline_short_circuits(self, measure, pair, clock):
        tra1, tra2 = pair
        budget = Budget(deadline_ms=10.0, clock=clock).start()
        clock.advance(1.0)  # deadline long gone before the first batch
        score = anytime_similarity(measure, tra1, tra2, budget=budget)
        assert score.evaluated_terms == 0
        assert not score.completed

    def test_disjoint_spans_complete_for_free(self, measure, straight_trajectory):
        # Every term is out-of-overlap -> exact 0 with no budget consumed.
        late = Trajectory.from_arrays(
            np.arange(5.0), np.zeros(5), 1000.0 + np.arange(5.0), "late"
        )
        score = anytime_similarity(
            measure, straight_trajectory, late, budget=Budget(max_terms=0)
        )
        assert score.completed
        assert score.value == 0.0
        assert score.value == measure.similarity(straight_trajectory, late)

    def test_empty_trajectory_raises(self, measure, straight_trajectory):
        empty = Trajectory([], object_id="empty")
        with pytest.raises(DegenerateTrajectoryError):
            anytime_similarity(measure, straight_trajectory, empty)

    def test_batch_size_validation(self, measure, pair):
        with pytest.raises(ValueError, match="batch_size"):
            anytime_similarity(measure, *pair, batch_size=0)

    def test_str_forms(self, measure, pair):
        done = anytime_similarity(measure, *pair)
        partial = anytime_similarity(measure, *pair, budget=Budget(max_terms=3))
        assert "exact" in str(done)
        assert "∈" in str(partial) and "3/21 terms" in str(partial)


class TestFilterOnlyEstimate:
    def test_bound_contains_exact(self, measure, pair):
        tra1, tra2 = pair
        estimate = filter_only_estimate(tra1, tra2)
        assert estimate.rung == "filter-only"
        assert not estimate.completed
        assert estimate.lower <= measure.similarity(tra1, tra2) <= estimate.upper

    def test_zero_overlap_is_exact_zero(self, measure, straight_trajectory):
        late = Trajectory.from_arrays(
            np.arange(5.0), np.zeros(5), 1000.0 + np.arange(5.0), "late"
        )
        estimate = filter_only_estimate(straight_trajectory, late)
        assert estimate.completed
        assert estimate.value == 0.0
        assert estimate.bounds == (0.0, 0.0)

    def test_empty_trajectory_raises(self, straight_trajectory):
        with pytest.raises(DegenerateTrajectoryError):
            filter_only_estimate(straight_trajectory, Trajectory([]))


# ----------------------------------------------------------------------
class TestDeadlineScorer:
    def test_unbounded_is_bitwise_exact_full_rung(self, measure, pair):
        scorer = DeadlineScorer(measure)
        health = ServiceHealth()
        score = scorer.score(*pair, health=health, subject="a~b")
        assert score.completed
        assert score.rung == "full"
        assert score.value == measure.similarity(*pair)
        assert health.rungs == ["full"]
        assert health.ok  # a full-fidelity score is not an incident

    def test_exact_within_bounds_whatever_rung_answers(self, measure, pair):
        # Acceptance sweep through the whole ladder: small budgets land on
        # coarse or filter-only rungs, large ones on the full grid — the
        # exact full-grid score must be inside the interval every time.
        tra1, tra2 = pair
        exact = measure.similarity(tra1, tra2)
        scorer = DeadlineScorer(measure)
        rungs_seen = set()
        for k in range(0, len(tra1) + len(tra2) + 1):
            score = scorer.score(tra1, tra2, budget=Budget(max_terms=k))
            rungs_seen.add(score.rung)
            assert score.lower <= exact <= score.upper, f"violated at max_terms={k}"
            if score.completed:
                assert score.value == exact
        assert len(rungs_seen) >= 2  # the sweep actually exercised the ladder

    def test_large_term_budget_completes_on_full_grid(self, measure, pair):
        tra1, tra2 = pair
        score = DeadlineScorer(measure).score(
            tra1, tra2, budget=Budget(max_terms=len(tra1) + len(tra2))
        )
        assert score.completed
        assert score.rung == "full"
        assert score.value == measure.similarity(tra1, tra2)

    def test_expired_budget_falls_to_filter_only(self, measure, pair, clock):
        budget = Budget(deadline_ms=5.0, clock=clock).start()
        clock.advance(1.0)
        health = ServiceHealth(deadline_ms=5.0)
        score = DeadlineScorer(measure).score(*pair, budget=budget, health=health)
        assert score.rung == "filter-only"
        assert not score.completed
        assert health.rungs == ["filter-only"]
        assert health.degraded

    def test_coarse_completion_is_rebounded_not_exact(self, measure, pair):
        # A coarse-grid score approximates a different discretization:
        # it must come back open, clipped into the always-valid filter bound.
        tra1, tra2 = pair
        score = DeadlineScorer(measure).score(tra1, tra2, budget=Budget(max_terms=2))
        assert score.rung.startswith("coarse-")
        assert not score.completed
        reference = filter_only_estimate(tra1, tra2)
        assert score.bounds == reference.bounds
        assert score.lower <= score.value <= score.upper

    def test_non_full_rungs_are_recorded_as_events(self, measure, pair):
        health = ServiceHealth()
        DeadlineScorer(measure).score(
            *pair, budget=Budget(max_terms=2), health=health, subject="a~b"
        )
        assert health.degraded
        assert any(e.kind == "rung" and e.subject == "a~b" for e in health.events)

    def test_coarse_measures_are_cached_and_coarsened(self, measure):
        scorer = DeadlineScorer(measure)
        coarse = scorer.coarse_measure(2)
        assert coarse is scorer.coarse_measure(2)
        assert coarse.grid.cell_size == measure.grid.cell_size * 2
        assert coarse.name.endswith("@2x")

    def test_rungs_property(self, measure):
        assert DeadlineScorer(measure).rungs == (
            "full", "coarse-2x", "coarse-4x", "filter-only",
        )

    def test_validation(self, measure):
        with pytest.raises(ValueError, match="coarse factors"):
            DeadlineScorer(measure, coarse_factors=(1,))
        with pytest.raises(ValueError, match="rung fractions"):
            DeadlineScorer(measure, coarse_factors=(2,), rung_fractions=(0.5, 0.5, 0.5))

    def test_overloaded_full_rung_degrades(self, measure, pair):
        # Injected latency on the full-fidelity STP path: the deadline
        # forces the ladder below the full rung, yet the returned interval
        # still brackets the exact score.
        from tests.faultinjection.faults import SlowMeasure

        slow = SlowMeasure(measure, delay=0.02)
        health = ServiceHealth(deadline_ms=30.0)
        score = DeadlineScorer(slow, batch_size=4).score(
            *pair, budget=Budget(deadline_ms=30.0), health=health, subject="a~b"
        )
        assert score.rung != "full" or not score.completed
        assert score.lower <= measure.similarity(*pair) <= score.upper
        assert health.rungs  # the rung taken is on the record


# ----------------------------------------------------------------------
class TestCircuitBreaker:
    def test_trips_after_consecutive_timeouts(self, clock):
        breaker = CircuitBreaker(threshold=2, cooldown_base=1.0, clock=clock)
        assert breaker.allow("pair")
        assert not breaker.record_timeout("pair")  # 1 of 2
        assert breaker.allow("pair")
        assert breaker.record_timeout("pair")  # trips
        assert not breaker.allow("pair")
        assert breaker.is_open("pair")
        assert breaker.open_keys == ["pair"]

    def test_half_open_probe_after_cooldown(self, clock):
        breaker = CircuitBreaker(threshold=1, cooldown_base=1.0, clock=clock)
        breaker.record_timeout("pair")
        assert not breaker.allow("pair")
        clock.advance(1.0)
        assert breaker.allow("pair")  # the probe
        breaker.record_success("pair")
        assert breaker.allow("pair")
        assert not breaker.is_open("pair")

    def test_failed_probe_doubles_cooldown(self, clock):
        breaker = CircuitBreaker(threshold=2, cooldown_base=1.0, clock=clock)
        breaker.record_timeout("pair")
        breaker.record_timeout("pair")  # trip 1: cooldown 1 s
        clock.advance(1.0)
        assert breaker.allow("pair")
        assert breaker.record_timeout("pair")  # probe fails: immediate re-trip
        clock.advance(1.5)
        assert not breaker.allow("pair")  # trip 2 waits 2 s, not 1
        clock.advance(0.5)
        assert breaker.allow("pair")

    def test_cooldown_is_capped(self, clock):
        breaker = CircuitBreaker(
            threshold=1, cooldown_base=1.0, cooldown_max=3.0, clock=clock
        )
        for _ in range(10):  # uncapped backoff would be 512 s by now
            breaker.record_timeout("pair")
            clock.advance(3.0)
            assert breaker.allow("pair")

    def test_success_resets_the_count(self, clock):
        breaker = CircuitBreaker(threshold=2, clock=clock)
        breaker.record_timeout("pair")
        breaker.record_success("pair")
        assert not breaker.record_timeout("pair")  # back to 1 of 2
        assert breaker.allow("pair")

    def test_keys_are_independent(self, clock):
        breaker = CircuitBreaker(threshold=1, clock=clock)
        breaker.record_timeout(("a", "b"))
        assert not breaker.allow(("a", "b"))
        assert breaker.allow(("a", "c"))

    def test_validation(self):
        with pytest.raises(ValueError, match="threshold"):
            CircuitBreaker(threshold=0)
        with pytest.raises(ValueError, match="cooldown"):
            CircuitBreaker(cooldown_base=0.0)

    def test_half_open_single_probe_under_concurrency(self, clock):
        """Regression: threads racing past the same cooldown boundary must
        not all win the half-open probe — granting it re-arms the cooldown
        under the breaker's lock, so exactly one contender gets through."""
        import threading

        breaker = CircuitBreaker(threshold=1, cooldown_base=1.0, clock=clock)
        breaker.record_timeout("pair")
        clock.advance(1.0)
        grants = []
        barrier = threading.Barrier(8)

        def contend():
            barrier.wait()
            if breaker.allow("pair"):
                grants.append(threading.get_ident())

        threads = [threading.Thread(target=contend) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(grants) == 1

    def test_probe_grant_rearms_cooldown(self, clock):
        """A probe whose outcome is never reported forfeits its window
        instead of wedging the breaker half-open forever."""
        breaker = CircuitBreaker(threshold=1, cooldown_base=1.0, clock=clock)
        breaker.record_timeout("pair")
        clock.advance(1.0)
        assert breaker.allow("pair")  # probe granted; outcome lost
        assert not breaker.allow("pair")  # same window: no double probe
        clock.advance(1.0)
        assert breaker.allow("pair")  # next window: self-heals
        breaker.record_success("pair")
        assert not breaker.is_open("pair")

    def test_snapshot_restore_round_trips_residual_cooldown(self, clock):
        import json

        breaker = CircuitBreaker(threshold=2, cooldown_base=1.0, clock=clock)
        breaker.record_timeout(("a", "b"))
        breaker.record_timeout(("a", "b"))  # trips: open for 1 s
        breaker.record_timeout("solo")  # 1 of 2, not yet open
        clock.advance(0.4)
        entries = json.loads(json.dumps(breaker.snapshot_states()))
        restored = CircuitBreaker(
            threshold=2, cooldown_base=1.0, clock=FakeClock(1000.0)
        )
        restored.restore_states(entries)
        assert restored.is_open(("a", "b"))  # 0.6 s residual cooldown
        restored.clock.advance(0.6)
        assert restored.allow(("a", "b"))  # probe after the residual
        assert restored.record_timeout("solo")  # 2 of 2: trips now
        assert restored.allow("other")  # untouched keys unaffected


# ----------------------------------------------------------------------
class TestServiceHealth:
    def test_clean_call_is_ok(self):
        health = ServiceHealth()
        health.pairs_scored = 3
        health.take_rung("full", "a~b")
        assert health.ok
        assert not health.degraded
        assert "healthy" in health.summary()

    def test_degradation_flips_ok(self):
        health = ServiceHealth(deadline_ms=50.0)
        health.take_rung("coarse-2x", "a~b")
        assert not health.ok
        assert health.degraded
        assert health.events[0].kind == "rung"

    def test_to_dict_round_trips_through_json(self):
        import json

        health = ServiceHealth(deadline_ms=100.0)
        health.pairs_shed = 2
        health.record(ServiceEvent("shed-pair", "a~b", "deadline expired"))
        payload = json.loads(json.dumps(health.to_dict()))
        assert payload["pairs_shed"] == 2
        assert payload["events"][0]["kind"] == "shed-pair"

    def test_summary_names_the_deadline(self):
        health = ServiceHealth(deadline_ms=100.0, elapsed_ms=120.0, deadline_hit=True)
        health.pairs_shed = 1
        assert "deadline HIT" in health.summary()
        assert "120/100 ms" in health.summary()

    def test_event_str(self):
        event = ServiceEvent("breaker-open", "a~b", "cooling down")
        assert str(event) == "breaker-open on a~b: cooling down"
