"""Tests for the shared-memory arena transport (:mod:`repro.parallel.shm`).

The contract under test: the arena is a pure transport — every score
computed against a worker's zero-copy views is bitwise identical to the
serial path — plus the ownership protocol (parent unlinks exactly once,
views never copy) and the announce-on-fallback guarantee.
"""

import os
import warnings

import numpy as np
import pytest

from repro.core.grid import Grid
from repro.core.sts import STS
from repro.core.trajectory import Trajectory
from repro.parallel import (
    ParallelSTS,
    SharedTrajectoryArena,
    chunk_pairs_by_cost,
    pair_costs,
)


@pytest.fixture
def grid():
    return Grid(0, 0, 40, 20, cell_size=2.0)


@pytest.fixture
def gallery():
    """Four short overlapping trajectories in two corridors."""
    specs = [
        ([2.0, 8.0, 14.0, 20.0], 10.0, 0.0),
        ([4.0, 10.0, 16.0, 22.0], 10.0, 2.0),
        ([2.0, 8.0, 14.0, 20.0], 4.0, 0.0),
        ([20.0, 14.0, 8.0, 2.0], 6.0, 1.0),
    ]
    return [
        Trajectory.from_arrays(
            xs, [y] * len(xs), np.array([0.0, 5.0, 10.0, 15.0]) + t0,
            object_id=f"obj-{k}",
        )
        for k, (xs, y, t0) in enumerate(specs)
    ]


class TestArenaRoundtrip:
    def test_pack_attach_is_exact(self, gallery):
        with SharedTrajectoryArena.pack(gallery) as arena:
            view = SharedTrajectoryArena.attach(arena.handle)
            try:
                assert len(view.gallery) == len(gallery)
                assert view.queries is None
                for original, packed in zip(gallery, view.gallery):
                    assert np.array_equal(original.xy, packed.xy)
                    assert np.array_equal(original.timestamps, packed.timestamps)
                    assert original.object_id == packed.object_id
            finally:
                view.close()

    def test_views_are_zero_copy(self, gallery):
        with SharedTrajectoryArena.pack(gallery) as arena:
            view = SharedTrajectoryArena.attach(arena.handle)
            try:
                for packed in view.gallery:
                    assert not packed.xy.flags["OWNDATA"]
                    assert not packed.timestamps.flags["OWNDATA"]
            finally:
                view.close()

    def test_gallery_and_queries_split(self, gallery):
        with SharedTrajectoryArena.pack(gallery[:3], gallery[3:]) as arena:
            view = SharedTrajectoryArena.attach(arena.handle)
            try:
                assert len(view.gallery) == 3
                assert view.queries is not None and len(view.queries) == 1
                assert np.array_equal(view.queries[0].xy, gallery[3].xy)
            finally:
                view.close()

    def test_empty_corpus_packs(self):
        with SharedTrajectoryArena.pack([]) as arena:
            view = SharedTrajectoryArena.attach(arena.handle)
            try:
                assert view.gallery == []
            finally:
                view.close()

    def test_close_is_idempotent_and_unlinks(self, gallery):
        arena = SharedTrajectoryArena.pack(gallery)
        name = arena.handle.shm_name
        arena.close()
        arena.close()
        assert arena.closed
        from multiprocessing import shared_memory

        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_matches_requires_identity(self, gallery):
        with SharedTrajectoryArena.pack(gallery) as arena:
            assert arena.matches(gallery)
            assert not arena.matches(list(reversed(gallery)))
            assert not arena.matches(gallery[:3])
            assert not arena.matches(gallery, queries=gallery[:1])
        assert not arena.matches(gallery)  # closed arena never matches


class TestParallelShmParity:
    def test_process_shm_matches_serial_bitwise(self, grid, gallery):
        serial = STS(grid).pairwise(gallery)
        wrapper = ParallelSTS(STS(grid), n_jobs=2, backend="process", shm=True)
        assert np.array_equal(serial, wrapper.pairwise(gallery))

    def test_cost_chunking_matches_serial_bitwise(self, grid, gallery):
        serial = STS(grid).pairwise(gallery)
        wrapper = ParallelSTS(
            STS(grid), n_jobs=2, backend="process", shm=True, chunking="cost"
        )
        assert np.array_equal(serial, wrapper.pairwise(gallery))

    def test_query_vs_gallery_shape(self, grid, gallery):
        serial = STS(grid).pairwise(gallery[:3], queries=gallery[3:])
        wrapper = ParallelSTS(STS(grid), n_jobs=2, backend="process", shm=True)
        assert np.array_equal(
            serial, wrapper.pairwise(gallery[:3], queries=gallery[3:])
        )

    def test_query_row(self, grid, gallery):
        measure = STS(grid)
        expected = np.array(
            [measure.similarity(gallery[0], g) for g in gallery[1:]]
        )
        wrapper = ParallelSTS(STS(grid), n_jobs=2, backend="process", shm=True)
        row = wrapper.query(gallery[0], gallery[1:])
        assert np.array_equal(row, expected)

    def test_query_cols_subset(self, grid, gallery):
        measure = STS(grid)
        wrapper = ParallelSTS(STS(grid), n_jobs=2, backend="process", shm=True)
        row = wrapper.query(gallery[0], gallery, cols=[2, 0])
        expected = np.array(
            [measure.similarity(gallery[0], gallery[c]) for c in (2, 0)]
        )
        assert np.array_equal(row, expected)

    def test_shm_false_still_matches(self, grid, gallery):
        serial = STS(grid).pairwise(gallery)
        wrapper = ParallelSTS(STS(grid), n_jobs=2, backend="process", shm=False)
        assert np.array_equal(serial, wrapper.pairwise(gallery))


class TestPersistentPool:
    def test_arena_and_pool_reused_across_calls(self, grid, gallery):
        with ParallelSTS(
            STS(grid), n_jobs=2, backend="process", shm=True, persistent=True
        ) as wrapper:
            first = wrapper.pairwise(gallery)
            arena_name = wrapper._arena.handle.shm_name
            warm = wrapper._warm["executor"]
            second = wrapper.pairwise(gallery)
            assert wrapper._arena.handle.shm_name == arena_name
            assert wrapper._warm["executor"] is warm
            assert np.array_equal(first, second)
        assert wrapper._arena is None and wrapper._warm is None

    def test_query_after_pairwise_repacks_gallery_only(self, grid, gallery):
        measure = STS(grid)
        expected = np.array([measure.similarity(gallery[0], g) for g in gallery])
        with ParallelSTS(
            STS(grid), n_jobs=2, backend="process", shm=True, persistent=True
        ) as wrapper:
            wrapper.pairwise(gallery[:3], queries=gallery[3:])
            row1 = wrapper.query(gallery[0], gallery)
            name = wrapper._arena.handle.shm_name
            row2 = wrapper.query(gallery[0], gallery)
            assert wrapper._arena.handle.shm_name == name  # reused
        assert np.array_equal(row1, expected)
        assert np.array_equal(row2, expected)

    def test_new_gallery_repacks(self, grid, gallery):
        with ParallelSTS(
            STS(grid), n_jobs=2, backend="process", shm=True, persistent=True
        ) as wrapper:
            wrapper.pairwise(gallery)
            name = wrapper._arena.handle.shm_name
            other = [gallery[0], gallery[2]]
            out = wrapper.pairwise(other)
            assert wrapper._arena.handle.shm_name != name
        assert np.array_equal(out, STS(grid).pairwise(other))

    def test_new_gallery_invalidates_warm_pool_without_arena(self, grid, gallery):
        # With shm=False the warm-pool key has shm_name None on both
        # sides; reuse must still be refused for a different gallery, or
        # the warm workers would score the *old* corpus at the new
        # indices.  Regression test for collection-identity keying.
        with ParallelSTS(
            STS(grid), n_jobs=2, backend="process", shm=False, persistent=True
        ) as wrapper:
            wrapper.pairwise(gallery)
            warm = wrapper._warm["executor"]
            other = [gallery[3], gallery[1]]
            out = wrapper.pairwise(other)
            assert wrapper._warm["executor"] is not warm
        assert np.array_equal(out, STS(grid).pairwise(other))

    def test_new_gallery_invalidates_warm_pool_thread_backend(self, grid, gallery):
        with ParallelSTS(
            STS(grid), n_jobs=2, backend="thread", persistent=True
        ) as wrapper:
            wrapper.pairwise(gallery)
            other = [gallery[3], gallery[1]]
            out = wrapper.pairwise(other)
        assert np.array_equal(out, STS(grid).pairwise(other))

    def test_same_gallery_reuses_warm_pool_without_arena(self, grid, gallery):
        # The flip side: identity keying must not *break* warm reuse when
        # the collections genuinely are the same objects.
        with ParallelSTS(
            STS(grid), n_jobs=2, backend="process", shm=False, persistent=True
        ) as wrapper:
            first = wrapper.pairwise(gallery)
            warm = wrapper._warm["executor"]
            second = wrapper.pairwise(gallery)
            assert wrapper._warm["executor"] is warm
        assert np.array_equal(first, second)

    def test_no_arena_packed_for_single_worker(self, grid, gallery):
        # n_jobs=1 runs on the serial rung even when a checkpoint forces
        # the supervised path; packing an arena there would be pure
        # waste, never attached by anyone.
        wrapper = ParallelSTS(STS(grid), n_jobs=1, backend="process", shm=True)
        assert not wrapper._shm_wanted()
        out = wrapper.pairwise(gallery, deadline=60.0)
        assert wrapper._arena is None
        assert np.array_equal(out, STS(grid).pairwise(gallery))


class TestCostChunking:
    def test_partition_without_loss_or_duplication(self):
        pairs = [(i, j) for i in range(7) for j in range(i, 7)]
        lengths = [5 * (i + 1) for i in range(7)]
        costs = pair_costs(pairs, lengths, lengths)
        chunks = chunk_pairs_by_cost(pairs, costs, n_workers=3)
        flat = [p for chunk in chunks for p in chunk]
        assert sorted(flat) == sorted(pairs)
        assert len(flat) == len(set(flat))

    def test_balances_skewed_costs(self):
        # One giant pair plus many tiny ones: count-chunking would put
        # several tiny pairs alongside the giant; cost-chunking gives the
        # giant its own chunk (2 chunks requested via 1 worker x 2).
        pairs = [(0, j) for j in range(9)]
        costs = [1000] + [1] * 8
        chunks = chunk_pairs_by_cost(pairs, costs, n_workers=1, chunks_per_worker=2)
        totals = sorted(sum(costs[pairs.index(p)] for p in c) for c in chunks)
        assert totals == [8, 1000]

    def test_deterministic(self):
        pairs = [(i, j) for i in range(6) for j in range(i, 6)]
        costs = pair_costs(pairs, [3, 1, 4, 1, 5, 9], [3, 1, 4, 1, 5, 9])
        assert chunk_pairs_by_cost(pairs, costs, 4) == chunk_pairs_by_cost(
            pairs, costs, 4
        )

    def test_empty(self):
        assert chunk_pairs_by_cost([], [], 4) == []


class TestFallbackAnnouncement:
    def test_unpicklable_measure_warns_and_counts(self, grid, gallery):
        from repro.core.speed import GaussianSpeedModel
        from repro.core.transition import SpeedTransitionModel
        from repro.obs.registry import MetricsRegistry

        measure = STS(
            grid,
            transition=lambda t: SpeedTransitionModel(GaussianSpeedModel(1.0, 0.3)),
        )
        registry = MetricsRegistry()
        wrapper = ParallelSTS(
            measure, n_jobs=2, backend="auto", shm=True, registry=registry
        )
        with pytest.warns(RuntimeWarning, match="falling back to the pickling"):
            out = wrapper.pairwise(gallery)
        expected = np.array(
            [[measure.similarity(a, b) for b in gallery] for a in gallery]
        )
        assert np.allclose(out, expected)
        snapshot = registry.snapshot()
        fallback = snapshot["counters"]["repro_parallel_shm_fallback_total"]
        assert sum(fallback.values()) >= 1

    def test_shm_false_never_warns(self, grid, gallery):
        wrapper = ParallelSTS(STS(grid), n_jobs=2, backend="thread", shm=False)
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            wrapper.pairwise(gallery)


class TestCheckpointFingerprint:
    def test_chunking_policy_is_part_of_the_fingerprint(self, grid, gallery):
        count = ParallelSTS(STS(grid), n_jobs=2, chunking="count")
        cost = ParallelSTS(STS(grid), n_jobs=2, chunking="cost")
        fp_count = count._fingerprint(4, 4, 10, 8, True)
        fp_cost = cost._fingerprint(4, 4, 10, 8, True)
        assert fp_count != fp_cost
        assert fp_count["chunking"] == "count"
        assert fp_cost["chunking"] == "cost"

    def test_checkpoint_resume_still_works_with_shm(self, grid, gallery, tmp_path):
        path = str(tmp_path / "pairwise.ckpt")
        serial = STS(grid).pairwise(gallery)
        wrapper = ParallelSTS(STS(grid), n_jobs=2, backend="process", shm=True)
        first = wrapper.pairwise(gallery, checkpoint=path)
        assert os.path.exists(path)
        resumed = ParallelSTS(STS(grid), n_jobs=2, backend="process", shm=True)
        second = resumed.pairwise(gallery, checkpoint=path)
        assert resumed.last_health.resumed_chunks == resumed.last_health.n_chunks
        assert np.array_equal(first, serial)
        assert np.array_equal(second, serial)


class TestDefaults:
    def test_invalid_values_rejected(self, grid):
        with pytest.raises(ValueError, match="chunking"):
            ParallelSTS(STS(grid), chunking="weighted")
        with pytest.raises(ValueError, match="shm"):
            ParallelSTS(STS(grid), shm="yes")

    def test_process_wide_defaults_resolve(self, grid):
        from repro.parallel import get_parallel_defaults, set_parallel_defaults

        before = get_parallel_defaults()
        try:
            set_parallel_defaults(shm=False, chunking="cost")
            wrapper = ParallelSTS(STS(grid), n_jobs=2)
            assert wrapper.shm is False
            assert wrapper.chunking == "cost"
            explicit = ParallelSTS(STS(grid), n_jobs=2, shm=True, chunking="count")
            assert explicit.shm is True
            assert explicit.chunking == "count"
        finally:
            set_parallel_defaults(**before)
