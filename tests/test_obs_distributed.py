"""Distributed observability plane: fleet aggregation, trace stitching,
the live exporter, SLO burn-rate states, and structured worker logs.

The acceptance scenario throughout is a healthy 2-shard × 2-replica
cluster: the parent's folded metrics must equal every worker's own
cumulative dump, and one stitched Chrome trace must carry spans from all
four replica processes with correct parent/child nesting.
"""

from __future__ import annotations

import json
import urllib.request

import numpy as np
import pytest

from repro.cluster import ClusterService
from repro.core.grid import Grid
from repro.core.sts import STS
from repro.core.trajectory import Trajectory
from repro.index.matcher import FilteredMatcher
from repro.obs import (
    SLO,
    JsonlLogger,
    MetricsExporter,
    MetricsRegistry,
    SLOTracker,
    Tracer,
    default_slos,
    merge_records,
    parse_label_str,
    read_log_dir,
    render_records,
    set_registry,
    set_tracer,
    validate_chrome_trace,
    validate_metrics_snapshot,
    validate_prometheus_text,
    validate_slo_report,
)
from repro.similarity import SST


@pytest.fixture
def fresh_registry():
    """A private registry installed as the process default, then restored.

    Installed *before* the measure and the cluster are built, so forked
    workers inherit a zero baseline and their cumulative dumps are
    directly comparable to the parent's folded series.
    """
    registry = MetricsRegistry()
    previous = set_registry(registry)
    yield registry
    set_registry(previous)


@pytest.fixture
def fresh_tracer():
    tracer = Tracer()
    previous = set_tracer(tracer)
    yield tracer
    set_tracer(previous)


def make_gallery(n: int, seed: int = 0) -> list[Trajectory]:
    rng = np.random.default_rng(seed)
    gallery = []
    for i in range(n):
        ts = np.sort(rng.uniform(0.0, 60.0, 6))
        xs = rng.uniform(2.0, 38.0, 6)
        ys = rng.uniform(2.0, 18.0, 6)
        gallery.append(Trajectory.from_arrays(xs, ys, ts, object_id=f"g{i}"))
    return gallery


def make_measure():
    return STS(Grid(0, 0, 40, 20, cell_size=2.0))


def counter_total(snapshot: dict, name: str) -> float:
    return sum((snapshot.get("counters") or {}).get(name, {}).values())


SIM_CALLS = "repro_sts_similarity_calls_total"


# ----------------------------------------------------------------------
# Fleet aggregation: parent metrics == per-worker ground truth
# ----------------------------------------------------------------------
class TestFleetAccounting:
    def test_parent_folds_every_replica_exactly(self, fresh_registry, fresh_tracer):
        gallery = make_gallery(12, seed=3)
        queries = make_gallery(3, seed=9)
        with ClusterService(
            make_measure(), gallery, n_shards=2, n_replicas=2,
            hedge=True, hedge_initial_ms=0.0,
        ) as svc:
            for query in queries:
                _, report = svc.query_scores(query)
                assert report.coverage == 1.0
            # Telemetry is eventually consistent: a hedge loser's reply
            # (carrying its delta) may still sit in the pipe.  The
            # health sweep drains and absorbs everything outstanding.
            assert all(v == "alive" for v in svc.health_check().values())
            info = svc.worker_info()
            assert len(info) == 4

            folded = fresh_registry.snapshot()["counters"].get(SIM_CALLS, {})
            worker_series = {
                key: value
                for key, value in folded.items()
                if parse_label_str(key).get("process") == "worker"
            }
            ground_truth = {
                label: counter_total(payload["metrics"], SIM_CALLS)
                for label, payload in info.items()
            }
            # Every unit of scoring work any replica did — including
            # hedge losers whose answers were discarded — is credited in
            # the parent, exactly once.
            assert sum(worker_series.values()) == sum(ground_truth.values())
            assert sum(ground_truth.values()) > 0

            # Per-replica attribution matches each worker's own dump.
            for label, payload in info.items():
                shard, replica = label.removeprefix("shard").split("-r")
                series = sum(
                    value
                    for key, value in worker_series.items()
                    if parse_label_str(key).get("shard") == shard
                    and parse_label_str(key).get("replica") == replica
                )
                assert series == ground_truth[label], label

    def test_worker_series_carry_fleet_labels(self, fresh_registry, fresh_tracer):
        gallery = make_gallery(8, seed=1)
        with ClusterService(
            make_measure(), gallery, n_shards=2, n_replicas=2,
            hedge=True, hedge_initial_ms=0.0,
        ) as svc:
            svc.query_scores(make_gallery(1, seed=2)[0])
            svc.health_check()
            folded = fresh_registry.snapshot()["counters"].get(SIM_CALLS, {})
            labelled = [parse_label_str(k) for k in folded if k]
            worker_rows = [l for l in labelled if l.get("process") == "worker"]
            assert worker_rows
            for labels in worker_rows:
                assert set(labels) >= {"process", "shard", "replica"}
                assert labels["shard"] in {"0", "1"}
                assert labels["replica"] in {"0", "1"}


# ----------------------------------------------------------------------
# Cluster-wide trace stitching
# ----------------------------------------------------------------------
class TestTraceStitching:
    def test_one_forest_covers_all_four_replicas(self, fresh_registry, fresh_tracer):
        gallery = make_gallery(12, seed=5)
        queries = make_gallery(3, seed=11)
        with ClusterService(
            make_measure(), gallery, n_shards=2, n_replicas=2,
            hedge=True, hedge_initial_ms=0.0,
        ) as svc:
            expected_pids = {p for p in svc.replica_pids().values() if p}
            assert len(expected_pids) == 4
            for query in queries:
                svc.query_scores(query)
            svc.health_check()

            events = fresh_tracer.to_chrome_trace()
            assert validate_chrome_trace(events) == []

            by_name: dict[str, list[dict]] = {}
            for event in events:
                by_name.setdefault(event["name"], []).append(event)
            worker_pids = {
                e["pid"] for e in by_name.get("cluster.worker.score", [])
            }
            assert worker_pids == expected_pids

            # Nesting: worker.score → cluster.dispatch → cluster.query.
            span_index = {
                e["args"]["span_id"]: e for e in events if "span_id" in e["args"]
            }
            for event in by_name["cluster.worker.score"]:
                parent = span_index[event["args"]["parent_span_id"]]
                assert parent["name"] == "cluster.dispatch"
                grandparent = span_index[parent["args"]["parent_span_id"]]
                assert grandparent["name"] == "cluster.query"
            # Dispatch spans carry the shard/replica they went to.
            for event in by_name["cluster.dispatch"]:
                assert {"shard", "replica", "hedge"} <= set(event["args"])

    def test_per_query_report_trace_validates(self, fresh_registry, fresh_tracer):
        gallery = make_gallery(10, seed=7)
        with ClusterService(
            make_measure(), gallery, n_shards=2, n_replicas=2,
            hedge=True, hedge_initial_ms=0.0,
        ) as svc:
            _, report = svc.query_scores(make_gallery(1, seed=8)[0])
            assert report.trace is not None
            assert validate_chrome_trace(report.trace) == []
            names = {e["name"] for e in report.trace}
            assert {"cluster.query", "cluster.dispatch"} <= names
            assert "cluster.worker.score" in names
            assert report.to_dict()["trace"] is report.trace

    def test_matcher_trace_shows_filter_and_refine(self, fresh_registry, fresh_tracer):
        def walker(y=0.0, oid=None):
            xs = np.arange(10.0)
            return Trajectory.from_arrays(xs, np.full(10, y), xs, oid)

        matcher = FilteredMatcher(
            SST(spatial_scale=2.0, temporal_scale=5.0), spatial_slack=20.0
        )
        report = matcher.query(walker(0.5, "q"), [walker(0.0, "a"), walker(5.0, "b")])
        assert report.trace is not None
        assert validate_chrome_trace(report.trace) == []
        names = {e["name"] for e in report.trace}
        assert {"matcher.query", "matcher.filter", "matcher.refine"} <= names


# ----------------------------------------------------------------------
# Live exporter endpoints
# ----------------------------------------------------------------------
class TestExporterEndpoints:
    @pytest.fixture
    def exporter(self, fresh_registry):
        fresh_registry.counter("requests_total").inc(5, route="link")
        fresh_registry.histogram("repro_matcher_query_seconds").observe(0.01)
        tracker = SLOTracker(registry=fresh_registry, slos=default_slos())
        exporter = MetricsExporter(
            registry=fresh_registry, slo_tracker=tracker, port=0
        ).start()
        yield exporter
        exporter.stop()

    @staticmethod
    def fetch(exporter, path):
        with urllib.request.urlopen(exporter.url + path, timeout=5.0) as resp:
            return resp.status, resp.read().decode("utf-8")

    def test_metrics_is_valid_prometheus_text(self, exporter):
        status, body = self.fetch(exporter, "/metrics")
        assert status == 200
        assert validate_prometheus_text(body) == []
        assert "requests_total" in body

    def test_metrics_json_is_valid_snapshot(self, exporter):
        status, body = self.fetch(exporter, "/metrics.json")
        assert status == 200
        snapshot = json.loads(body)
        assert validate_metrics_snapshot(snapshot) == []
        assert snapshot["counters"]["requests_total"]['route="link"'] == 5.0

    def test_slo_report_validates(self, exporter):
        status, body = self.fetch(exporter, "/slo")
        assert status == 200
        report = json.loads(body)
        assert validate_slo_report(report) == []
        assert {s["name"] for s in report["slos"]} == {
            s.name for s in default_slos()
        }

    def test_healthz_and_unknown_path(self, exporter):
        status, body = self.fetch(exporter, "/healthz")
        assert status == 200 and json.loads(body)["status"] == "ok"
        with pytest.raises(urllib.error.HTTPError) as err:
            self.fetch(exporter, "/nope")
        assert err.value.code == 404

    def test_from_spec_forwards_kwargs(self, fresh_registry):
        exporter = MetricsExporter.from_spec("127.0.0.1:0", registry=fresh_registry)
        assert exporter.address == ("127.0.0.1", 0)


# ----------------------------------------------------------------------
# SLO burn-rate states
# ----------------------------------------------------------------------
def error_snapshot(bad: float, total: float) -> dict:
    return {
        "counters": {"err_total": {"": bad}, "req_total": {"": total}},
        "gauges": {},
        "histograms": {},
    }


ERR_SLO = SLO(
    name="err",
    objective=0.99,
    signal="error_ratio",
    bad_counter="err_total",
    total_counter="req_total",
)


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


class TestSLOBurnRates:
    def one_shot_state(self, bad, total):
        tracker = SLOTracker(slos=(ERR_SLO,), clock=FakeClock())
        report = tracker.evaluate(error_snapshot(bad, total))
        assert validate_slo_report(report) == []
        return report["slos"][0]["state"]

    def test_lifetime_states(self):
        assert self.one_shot_state(0, 0) == "no_data"
        assert self.one_shot_state(1, 1000) == "ok"
        assert self.one_shot_state(80, 1000) == "warn"
        assert self.one_shot_state(200, 1000) == "page"

    def test_recent_spike_pages_despite_clean_lifetime(self):
        """A fresh burst of errors pages even when the lifetime error
        rate is comfortably inside budget — the point of burn rates."""
        clock = FakeClock()
        tracker = SLOTracker(slos=(ERR_SLO,), clock=clock)
        tracker.sample(error_snapshot(0, 1000))
        clock.t = 400.0  # past the fast window, inside the slow one
        report = tracker.evaluate(error_snapshot(50, 1050))
        row = report["slos"][0]
        assert row["fast"]["bad"] == 50 and row["fast"]["total"] == 50
        assert row["state"] == "page"

    def test_old_spike_decays_back_to_ok(self):
        clock = FakeClock()
        tracker = SLOTracker(slos=(ERR_SLO,), clock=clock)
        tracker.sample(error_snapshot(50, 1000))
        clock.t = 4000.0  # spike now outside even the slow window
        report = tracker.evaluate(error_snapshot(50, 100000))
        assert report["slos"][0]["state"] == "ok"

    def test_evaluate_snapshot_one_shot(self):
        report = SLOTracker.evaluate_snapshot(
            error_snapshot(0, 500), slos=(ERR_SLO,)
        )
        assert report["slos"][0]["state"] == "ok"


# ----------------------------------------------------------------------
# Structured worker logs
# ----------------------------------------------------------------------
class TestStructuredLogs:
    def test_logger_roundtrip_and_merge(self, tmp_path):
        for name, shard in (("a.log", 0), ("b.log", 1)):
            with open(tmp_path / name, "w") as stream:
                log = JsonlLogger(stream=stream, shard=shard, replica=0)
                log.info("ready", n=8)
                log.warning("slow", seconds=1.5)
        records = read_log_dir(tmp_path)
        assert len(records) == 4
        assert all(r["shard"] in (0, 1) for r in records)
        merged = merge_records(records)
        assert [r["ts"] for r in merged] == sorted(r["ts"] for r in records)
        rendered = render_records(merged)
        assert "READY" not in rendered  # message text is not upcased
        assert "ready" in rendered and "WARNING" in rendered
        assert "shard=1" in rendered

    def test_cluster_workers_write_jsonl_logs(
        self, fresh_registry, fresh_tracer, tmp_path
    ):
        gallery = make_gallery(8, seed=4)
        with ClusterService(
            make_measure(), gallery, n_shards=2, n_replicas=2,
            hedge=True, hedge_initial_ms=0.0, log_dir=str(tmp_path),
        ) as svc:
            svc.query_scores(make_gallery(1, seed=6)[0])
        records = read_log_dir(tmp_path)
        ready = [r for r in records if r.get("message") == "ready"]
        assert {(r["shard"], r["replica"]) for r in ready} == {
            (s, r) for s in (0, 1) for r in (0, 1)
        }
        for record in records:
            assert {"ts", "level", "message", "pid"} <= set(record)


# ----------------------------------------------------------------------
# CLI: dump validation and log rendering
# ----------------------------------------------------------------------
class TestCliSurface:
    def run_cli(self, *argv):
        from repro.cli import main

        return main(list(argv))

    def test_check_accepts_all_four_dump_formats(
        self, fresh_registry, fresh_tracer, tmp_path, capsys
    ):
        gallery = make_gallery(8, seed=2)
        with ClusterService(
            make_measure(), gallery, n_shards=2, n_replicas=1,
            hedge=False,
        ) as svc:
            _, report = svc.query_scores(make_gallery(1, seed=3)[0])
        dumps = {
            "trace.json": json.dumps(report.trace),
            "metrics.json": json.dumps(fresh_registry.snapshot()),
            "metrics.prom": "# TYPE x_total counter\nx_total 1.0\n",
            "slo.json": json.dumps(
                SLOTracker.evaluate_snapshot(
                    error_snapshot(0, 10), slos=(ERR_SLO,)
                )
            ),
        }
        for name, payload in dumps.items():
            path = tmp_path / name
            path.write_text(payload)
            assert self.run_cli("obs", "--check", str(path)) == 0, name
            capsys.readouterr()

    def test_check_rejects_malformed_trace(self, tmp_path, capsys):
        bad = [{"name": "x", "ph": "X", "ts": 2.0, "dur": -1.0, "pid": 1}]
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"traceEvents": bad}))
        assert self.run_cli("obs", "--check", str(path)) != 0
        out = capsys.readouterr()
        assert "tid" in (out.out + out.err)

    def test_obs_logs_renders_merged_directory(self, tmp_path, capsys):
        with open(tmp_path / "w.log", "w") as stream:
            JsonlLogger(stream=stream, shard=0, replica=1).info("ready", n=3)
        assert self.run_cli("obs", "logs", str(tmp_path)) == 0
        out = capsys.readouterr().out
        assert "ready" in out and "replica=1" in out
