"""Unit tests for geographic coordinate support."""

import numpy as np
import pytest

from repro.geo import LocalProjector, haversine_distance, trajectories_to_geojson


class TestHaversine:
    def test_zero_distance(self):
        assert haversine_distance(-8.61, 41.14, -8.61, 41.14) == 0.0

    def test_one_degree_latitude(self):
        # 1 degree of latitude ≈ 111.2 km everywhere
        d = haversine_distance(0.0, 0.0, 0.0, 1.0)
        assert d == pytest.approx(111_195, rel=0.01)

    def test_longitude_shrinks_with_latitude(self):
        at_equator = haversine_distance(0.0, 0.0, 1.0, 0.0)
        at_60 = haversine_distance(0.0, 60.0, 1.0, 60.0)
        assert at_60 == pytest.approx(at_equator * 0.5, rel=0.01)

    def test_symmetric(self):
        a = haversine_distance(-8.61, 41.14, -8.60, 41.15)
        b = haversine_distance(-8.60, 41.15, -8.61, 41.14)
        assert a == pytest.approx(b)


class TestLocalProjector:
    @pytest.fixture
    def porto(self):
        return LocalProjector(ref_lon=-8.62, ref_lat=41.15)

    def test_reference_maps_to_origin(self, porto):
        assert porto.to_xy(-8.62, 41.15) == (pytest.approx(0.0), pytest.approx(0.0))

    def test_invalid_latitude(self):
        with pytest.raises(ValueError):
            LocalProjector(0.0, 90.0)
        with pytest.raises(ValueError):
            LocalProjector(0.0, -95.0)

    def test_roundtrip_exact(self, porto, rng):
        lons = -8.62 + rng.uniform(-0.1, 0.1, 50)
        lats = 41.15 + rng.uniform(-0.1, 0.1, 50)
        x, y = porto.to_xy(lons, lats)
        back_lon, back_lat = porto.to_lonlat(x, y)
        np.testing.assert_allclose(back_lon, lons, rtol=1e-12)
        np.testing.assert_allclose(back_lat, lats, rtol=1e-12)

    def test_matches_haversine_at_city_scale(self, porto, rng):
        # projected Euclidean distance vs great-circle, within 0.5% over ~10 km
        for _ in range(20):
            lon = -8.62 + rng.uniform(-0.05, 0.05)
            lat = 41.15 + rng.uniform(-0.05, 0.05)
            x, y = porto.to_xy(lon, lat)
            planar = float(np.hypot(x, y))
            great_circle = haversine_distance(-8.62, 41.15, lon, lat)
            assert planar == pytest.approx(great_circle, rel=5e-3)

    def test_scalar_and_array_forms(self, porto):
        xs, ys = porto.to_xy(np.array([-8.62, -8.61]), np.array([41.15, 41.16]))
        assert xs.shape == (2,)
        x0, y0 = porto.to_xy(-8.61, 41.16)
        assert x0 == pytest.approx(xs[1])
        assert y0 == pytest.approx(ys[1])

    def test_centered_on(self):
        projector = LocalProjector.centered_on([-8.60, -8.64], [41.10, 41.20])
        assert projector.ref_lon == pytest.approx(-8.62)
        assert projector.ref_lat == pytest.approx(41.15)
        with pytest.raises(ValueError):
            LocalProjector.centered_on([], [])

    def test_trajectory_roundtrip(self, porto):
        lons = [-8.620, -8.619, -8.618]
        lats = [41.150, 41.151, 41.152]
        ts = [0.0, 15.0, 30.0]
        traj = porto.trajectory_from_lonlat(lons, lats, ts, object_id="trip")
        assert traj.object_id == "trip"
        assert len(traj) == 3
        back_lons, back_lats, back_ts = porto.trajectory_to_lonlat(traj)
        np.testing.assert_allclose(back_lons, lons, rtol=1e-12)
        np.testing.assert_allclose(back_lats, lats, rtol=1e-12)
        np.testing.assert_allclose(back_ts, ts)

    def test_trajectory_length_mismatch(self, porto):
        with pytest.raises(ValueError, match="equal length"):
            porto.trajectory_from_lonlat([0.0], [0.0, 1.0], [0.0])

    def test_geojson_export(self, porto):
        import json

        from repro.core.trajectory import Trajectory

        traj = porto.trajectory_from_lonlat(
            [-8.620, -8.619], [41.150, 41.151], [0.0, 15.0], object_id="trip"
        )
        point = porto.trajectory_from_lonlat([-8.618], [41.152], [30.0], object_id="lone")
        collection = trajectories_to_geojson(
            porto, [traj, point, Trajectory([])], properties={"source": "test"}
        )
        assert collection["type"] == "FeatureCollection"
        assert len(collection["features"]) == 2  # empty one skipped
        line, lone = collection["features"]
        assert line["geometry"]["type"] == "LineString"
        assert line["properties"]["object_id"] == "trip"
        assert line["properties"]["source"] == "test"
        assert line["properties"]["times"] == [0.0, 15.0]
        np.testing.assert_allclose(
            line["geometry"]["coordinates"][0], [-8.620, 41.150], rtol=1e-12
        )
        assert lone["geometry"]["type"] == "Point"
        json.dumps(collection)  # serializable

    def test_agrees_with_porto_loader_projection(self):
        from repro.datasets.porto import project_lonlat

        projector = LocalProjector(-8.62, 41.15)
        x1, y1 = projector.to_xy(-8.61, 41.16)
        x2, y2 = project_lonlat(-8.61, 41.16, -8.62, 41.15)
        assert x1 == pytest.approx(x2)
        assert y1 == pytest.approx(y2)
