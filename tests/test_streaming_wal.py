"""Unit tests for the streaming write-ahead log (:mod:`repro.streaming_wal`).

The chaos harness (``tests/faultinjection/test_streaming_recovery.py``)
covers whole-process kills; here we test the WAL mechanics in-process:
frame codec, rotation, retention, torn-tail truncation vs. mid-log
corruption, disk-full rollback, and snapshot round-trips.
"""

from __future__ import annotations

import json
import math
import os
import struct

import pytest

import repro.streaming_wal as sw
from repro.core.grid import Grid
from repro.core.noise import GaussianNoiseModel, UniformDiskNoiseModel
from repro.errors import WALCorruptionError, WALError, WALWriteError
from repro.obs import MetricsRegistry
from repro.streaming import SightingEvent, StreamingColocationDetector
from repro.streaming_wal import StreamingWAL, load_wal, read_meta


GRID = (0.0, 0.0, 40.0, 20.0)
CELL = 2.0


def make_detector(wal=None, registry=None, **kw):
    kw.setdefault("window", 60.0)
    kw.setdefault("on_error", "skip")
    kw.setdefault("noise_model", GaussianNoiseModel(CELL))
    return StreamingColocationDetector(
        Grid(*GRID, cell_size=CELL),
        wal=wal,
        registry=registry if registry is not None else MetricsRegistry(),
        **kw,
    )


def make_wal(directory, **kw):
    kw.setdefault("registry", MetricsRegistry())
    kw.setdefault("snapshot_every", None)
    return StreamingWAL(directory, **kw)


def offer_walk(detector, n, t0=0.0, dt=4.0):
    """Deterministic offers for two objects walking the grid."""
    for k in range(n):
        oid = "ab"[k % 2]
        detector.offer(SightingEvent(oid, 2.0 + k, 10.0, t0 + k * dt))


def state_of(detector):
    return detector._state_dict()


class TestFrameCodec:
    @pytest.mark.parametrize(
        "op",
        [
            ("offer", "a", 1.5, -2.25, 3.125),
            ("offer", "装置-7", 0.0, -0.0, 1e-308),
            ("ingest", "b", float("inf"), 2.0, 9.75),
            ("drain", -1),
            ("drain", 7),
        ],
    )
    def test_roundtrip(self, op):
        assert sw._decode_op(sw._encode_op(op)) == op

    def test_nan_roundtrip(self):
        kind, oid, x, y, t = sw._decode_op(
            sw._encode_op(("ingest", "a", float("nan"), 1.0, 2.0))
        )
        assert (kind, oid, y, t) == ("ingest", "a", 1.0, 2.0)
        assert math.isnan(x)

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError):
            sw._encode_op(("evict", "a"))
        with pytest.raises(ValueError):
            sw._decode_op(b"\x7fgarbage")
        with pytest.raises(ValueError):
            sw._decode_op(b"")
        with pytest.raises(ValueError):
            sw._decode_op(bytes([sw.OP_OFFER]) + b"short")


class TestParams:
    def test_ctor_validation(self, tmp_path):
        for bad in (
            dict(fsync_every=0),
            dict(segment_max_records=0),
            dict(snapshot_every=0),
            dict(keep_snapshots=0),
        ):
            with pytest.raises(ValueError):
                StreamingWAL(tmp_path / "w", registry=MetricsRegistry(), **bad)

    def test_append_requires_bind(self, tmp_path):
        wal = make_wal(tmp_path / "w")
        with pytest.raises(WALError, match="not bound"):
            wal.append(("drain", -1))

    def test_resume_at_after_bind_rejected(self, tmp_path):
        wal = make_wal(tmp_path / "w")
        make_detector(wal=wal)
        with pytest.raises(WALError, match="before bind"):
            wal.resume_at(5)
        wal.close()

    def test_double_attach_rejected(self, tmp_path):
        wal = make_wal(tmp_path / "w")
        detector = make_detector(wal=wal)
        with pytest.raises(WALError, match="already attached"):
            detector.attach_wal(make_wal(tmp_path / "w2"))
        wal.close()


class TestBindAndMeta:
    def test_bind_writes_meta(self, tmp_path):
        wal = make_wal(tmp_path / "w")
        detector = make_detector(wal=wal)
        meta = read_meta(tmp_path / "w")
        assert meta["fingerprint"] == wal.fingerprint
        assert len(wal.fingerprint) == 16
        assert meta["config"]["window"] == detector.window
        wal.close()

    def test_read_meta_missing(self, tmp_path):
        with pytest.raises(WALError, match="no WAL metadata"):
            read_meta(tmp_path)

    def test_read_meta_unreadable(self, tmp_path):
        (tmp_path / sw.META_NAME).write_text("{not json")
        with pytest.raises(WALError, match="unreadable"):
            read_meta(tmp_path)

    def test_fingerprint_mismatch(self, tmp_path):
        with make_wal(tmp_path / "w") as wal:
            make_detector(wal=wal, window=60.0)
        with pytest.raises(WALError, match="different detector configuration"):
            make_detector(wal=make_wal(tmp_path / "w"), window=61.0)

    def test_fresh_bind_refuses_history(self, tmp_path):
        with make_wal(tmp_path / "w") as wal:
            detector = make_detector(wal=wal)
            offer_walk(detector, 3)
        with pytest.raises(WALError, match="already holds journaled history"):
            make_detector(wal=make_wal(tmp_path / "w"))

    def test_recover_empty_dir(self, tmp_path):
        with pytest.raises(WALError, match="nothing to recover"):
            StreamingColocationDetector.recover(
                tmp_path / "nowhere", registry=MetricsRegistry()
            )

    def test_bound_but_empty_wal_recovers_fresh(self, tmp_path):
        with make_wal(tmp_path / "w") as wal:
            make_detector(wal=wal)
        recovered = StreamingColocationDetector.recover(
            tmp_path / "w", registry=MetricsRegistry()
        )
        assert recovered.stream_time == float("-inf")
        assert recovered.pending == 0
        assert recovered.last_recovery.replayed == 0
        recovered.close()


class TestJournalAndReplay:
    def test_commands_journaled_in_order(self, tmp_path):
        with make_wal(tmp_path / "w") as wal:
            detector = make_detector(wal=wal)
            detector.offer(SightingEvent("a", 1.0, 2.0, 3.0))
            detector.ingest(SightingEvent("b", 4.0, 5.0, 6.0))
            detector.drain(2)
            detector.drain()  # empty queue: journals nothing
        recovery = load_wal(tmp_path / "w", registry=MetricsRegistry())
        assert recovery.ops == [
            ("offer", "a", 1.0, 2.0, 3.0),
            ("ingest", "b", 4.0, 5.0, 6.0),
            ("drain", 2),
        ]
        assert recovery.next_lsn == 3

    def test_drain_internal_ingests_not_journaled(self, tmp_path):
        """One drain record covers the batch (exactly-once on replay)."""
        with make_wal(tmp_path / "w") as wal:
            detector = make_detector(wal=wal)
            offer_walk(detector, 4)
            detector.drain()
        recovery = load_wal(tmp_path / "w", registry=MetricsRegistry())
        kinds = [op[0] for op in recovery.ops]
        assert kinds == ["offer"] * 4 + ["drain"]

    def test_recover_matches_reference(self, tmp_path):
        events = [
            SightingEvent("a", 2.0, 10.0, 0.0),
            SightingEvent("b", 3.0, 10.0, 1.0),
            SightingEvent("a", 4.0, 10.0, 4.0),
            SightingEvent("a", 9.0, 9.0, 4.0),  # duplicate t (skip policy)
            SightingEvent("b", float("nan"), 10.0, 5.0),  # malformed (skip)
            SightingEvent("b", 5.0, 10.0, 8.0),
            SightingEvent("a", 6.0, 10.0, 2.0),  # in-window out-of-order
        ]
        reference = make_detector(max_pending=3)
        with make_wal(tmp_path / "w") as wal:
            live = make_detector(wal=wal, max_pending=3)
            for event in events:
                live.offer(event)
                reference.offer(event)
            live.drain(4)
            reference.drain(4)
        recovered = StreamingColocationDetector.recover(
            tmp_path / "w", registry=MetricsRegistry()
        )
        assert state_of(recovered) == state_of(reference)
        assert recovered.stream_time == reference.stream_time
        assert list(recovered._pending) == list(reference._pending)
        recovered.close()

    def test_recover_is_exactly_once(self, tmp_path):
        """A second recover of the same directory yields the same state."""
        with make_wal(tmp_path / "w") as wal:
            detector = make_detector(wal=wal)
            offer_walk(detector, 6)
            detector.drain()
        first = StreamingColocationDetector.recover(
            tmp_path / "w", registry=MetricsRegistry()
        )
        first_state = state_of(first)
        first.close()
        second = StreamingColocationDetector.recover(
            tmp_path / "w", registry=MetricsRegistry()
        )
        assert state_of(second) == first_state
        second.close()

    def test_recover_requires_custom_noise_back(self, tmp_path):
        noise = UniformDiskNoiseModel(3.0)
        with make_wal(tmp_path / "w") as wal:
            make_detector(wal=wal, noise_model=noise)
        with pytest.raises(WALError, match="noise model"):
            StreamingColocationDetector.recover(
                tmp_path / "w", registry=MetricsRegistry()
            )
        recovered = StreamingColocationDetector.recover(
            tmp_path / "w", noise_model=UniformDiskNoiseModel(3.0),
            registry=MetricsRegistry(),
        )
        recovered.close()

    def test_recover_requires_measure_factory_back(self, tmp_path):
        from repro.core.sts import STS

        factory = lambda: STS(Grid(*GRID, cell_size=CELL))  # noqa: E731
        with make_wal(tmp_path / "w") as wal:
            make_detector(wal=wal, measure_factory=factory)
        with pytest.raises(WALError, match="measure_factory"):
            StreamingColocationDetector.recover(
                tmp_path / "w", registry=MetricsRegistry()
            )


class TestRotationAndDurability:
    def test_segments_rotate(self, tmp_path):
        with make_wal(tmp_path / "w", segment_max_records=3) as wal:
            detector = make_detector(wal=wal)
            offer_walk(detector, 8)
        starts = [lsn for lsn, _ in sw._list_segments(tmp_path / "w")]
        assert starts == [0, 3, 6]
        recovery = load_wal(tmp_path / "w", registry=MetricsRegistry())
        assert len(recovery.ops) == 8
        assert recovery.next_lsn == 8

    def test_fsync_batching_bounds_staleness(self, tmp_path):
        """Unflushed tail records die with the process; flushed ones don't."""
        wal = make_wal(tmp_path / "w", fsync_every=4)
        detector = make_detector(wal=wal)
        offer_walk(detector, 10)
        # Simulated crash: drop the handles without flushing the buffer.
        os.close(wal._fd)
        wal._fd = None
        recovery = load_wal(tmp_path / "w", registry=MetricsRegistry())
        assert len(recovery.ops) == 8  # two full batches of 4; 2 lost
        assert recovery.ops == [
            ("offer", "ab"[k % 2], 2.0 + k, 10.0, k * 4.0) for k in range(8)
        ]

    def test_flush_persists_buffered_tail(self, tmp_path):
        with make_wal(tmp_path / "w", fsync_every=4) as wal:
            detector = make_detector(wal=wal)
            offer_walk(detector, 10)
            wal.flush()
        recovery = load_wal(tmp_path / "w", registry=MetricsRegistry())
        assert len(recovery.ops) == 10


class TestTornTailAndCorruption:
    def _journal(self, directory, n=5, **kw):
        with make_wal(directory, **kw) as wal:
            detector = make_detector(wal=wal)
            offer_walk(detector, n)
        return sw._list_segments(directory)

    def test_torn_tail_truncated_with_metric(self, tmp_path):
        segments = self._journal(tmp_path / "w")
        last = segments[-1][1]
        garbage = sw._HEADER.pack(100, 0) + b"torn"
        with open(last, "ab") as handle:
            handle.write(garbage)
        registry = MetricsRegistry()
        recovery = load_wal(tmp_path / "w", registry=registry)
        assert len(recovery.ops) == 5
        assert recovery.report.truncated_records == 1
        assert recovery.report.truncated_bytes == len(garbage)
        counts = registry.value("repro_wal_records_total")
        assert counts.get('outcome="truncated"') == 1.0
        # The truncation is persistent: a second load sees a clean tail.
        again = load_wal(tmp_path / "w", registry=MetricsRegistry())
        assert again.report.truncated_records == 0
        assert len(again.ops) == 5

    def test_crc_mismatch_in_tail_truncated(self, tmp_path):
        segments = self._journal(tmp_path / "w")
        last = segments[-1][1]
        data = bytearray(last.read_bytes())
        data[-1] ^= 0xFF  # flip a payload byte of the final frame
        last.write_bytes(data)
        recovery = load_wal(tmp_path / "w", registry=MetricsRegistry())
        assert len(recovery.ops) == 4
        assert recovery.report.truncated_records == 1

    def test_torn_segment_header_unlinked(self, tmp_path):
        """A crash during rotation can leave a segment with torn magic."""
        self._journal(tmp_path / "w", n=3)
        torn = sw._segment_path(tmp_path / "w", 3)
        torn.write_bytes(sw.SEGMENT_MAGIC[:3])
        recovery = load_wal(tmp_path / "w", registry=MetricsRegistry())
        assert len(recovery.ops) == 3
        assert not torn.exists()

    def test_corrupt_middle_segment_refuses_replay(self, tmp_path):
        segments = self._journal(tmp_path / "w", n=8, segment_max_records=3)
        assert len(segments) >= 2
        middle = segments[0][1]
        data = bytearray(middle.read_bytes())
        data[len(sw.SEGMENT_MAGIC) + 2] ^= 0xFF
        middle.write_bytes(data)
        with pytest.raises(WALCorruptionError, match="non-final"):
            load_wal(tmp_path / "w", registry=MetricsRegistry())

    def test_missing_segment_is_a_gap(self, tmp_path):
        segments = self._journal(tmp_path / "w", n=8, segment_max_records=3)
        assert len(segments) == 3
        segments[1][1].unlink()
        with pytest.raises(WALCorruptionError, match="segment gap"):
            load_wal(tmp_path / "w", registry=MetricsRegistry())

    def test_missing_prefix_before_first_segment(self, tmp_path):
        segments = self._journal(tmp_path / "w", n=8, segment_max_records=3)
        segments[0][1].unlink()
        with pytest.raises(WALCorruptionError, match="missing records"):
            load_wal(tmp_path / "w", registry=MetricsRegistry())

    def test_unrecognized_segment_name(self, tmp_path):
        self._journal(tmp_path / "w", n=2)
        (tmp_path / "w" / "wal-bogus.log").write_bytes(b"?")
        with pytest.raises(WALCorruptionError, match="unrecognized"):
            load_wal(tmp_path / "w", registry=MetricsRegistry())


class TestDiskFull:
    def test_append_failure_leaves_state_unchanged(self, tmp_path, monkeypatch):
        wal = make_wal(tmp_path / "w")
        detector = make_detector(wal=wal, max_pending=4)
        offer_walk(detector, 2)
        before = state_of(detector)

        def no_space(fd, data):
            raise OSError(28, "No space left on device")

        monkeypatch.setattr(sw, "_os_write", no_space)
        with pytest.raises(WALWriteError, match="No space left"):
            detector.offer(SightingEvent("c", 9.0, 9.0, 99.0))
        # Journal-before-apply: the rejected command touched nothing.
        assert state_of(detector) == before
        monkeypatch.undo()

        # Space freed: the producer retries and the stream continues.
        assert detector.offer(SightingEvent("c", 9.0, 9.0, 99.0))
        wal.close()
        recovery = load_wal(tmp_path / "w", registry=MetricsRegistry())
        assert [op[1] for op in recovery.ops] == ["a", "b", "c"]
        assert recovery.next_lsn == 3

    def test_failed_fsync_rolls_back_file(self, tmp_path, monkeypatch):
        wal = make_wal(tmp_path / "w")
        detector = make_detector(wal=wal)
        offer_walk(detector, 2)
        path = sw._list_segments(tmp_path / "w")[-1][1]
        size_before = path.stat().st_size

        def no_sync(fd):
            raise OSError(28, "No space left on device")

        monkeypatch.setattr(sw, "_os_fsync", no_sync)
        with pytest.raises(WALWriteError):
            detector.offer(SightingEvent("c", 9.0, 9.0, 99.0))
        monkeypatch.undo()
        # The torn frame was truncated away, not left mid-file.
        assert path.stat().st_size == size_before
        wal.close()
        assert len(load_wal(tmp_path / "w", registry=MetricsRegistry()).ops) == 2


class TestSnapshotsAndRetention:
    def test_snapshot_roundtrip_is_bitwise(self, tmp_path):
        with make_wal(tmp_path / "w") as wal:
            detector = make_detector(wal=wal, max_pending=2, window=20.0)
            events = [
                SightingEvent("a", 1.0, 2.0, 0.5),
                SightingEvent("b", 1.5, 2.0, 1.0),
                SightingEvent("a", 2.0, 2.0, 1.5),
                SightingEvent("b", float("inf"), 2.0, 2.0),  # malformed
                SightingEvent("a", 2.0, 2.5, 1.5),  # duplicate t
                SightingEvent("b", 3.0, 2.0, 40.0),
                SightingEvent("a", 0.0, 0.0, 0.1),  # shed or late
            ]
            for event in events:
                detector.offer(event)
            detector.drain(5)
            detector.snapshot()
            expected = state_of(detector)
        recovered = StreamingColocationDetector.recover(
            tmp_path / "w", registry=MetricsRegistry()
        )
        assert state_of(recovered) == expected
        assert recovered.last_recovery.replayed == 0  # snapshot covered all
        recovered.close()

    def test_snapshot_then_tail_replay(self, tmp_path):
        reference = make_detector()
        with make_wal(tmp_path / "w") as wal:
            detector = make_detector(wal=wal)
            offer_walk(detector, 4)
            offer_walk(reference, 4)
            detector.snapshot()
            detector.drain()
            reference.drain()
            offer_walk(detector, 2, t0=100.0)
            offer_walk(reference, 2, t0=100.0)
        recovered = StreamingColocationDetector.recover(
            tmp_path / "w", registry=MetricsRegistry()
        )
        assert recovered.last_recovery.snapshot_lsn == 4
        assert recovered.last_recovery.replayed == 3  # drain + 2 offers
        assert state_of(recovered) == state_of(reference)
        recovered.close()

    def test_automatic_snapshots_and_retention(self, tmp_path):
        with make_wal(
            tmp_path / "w", snapshot_every=4, segment_max_records=4,
            keep_snapshots=2,
        ) as wal:
            detector = make_detector(wal=wal)
            offer_walk(detector, 20)
        snaps = sw._list_snapshots(tmp_path / "w")
        assert len(snaps) == 2
        segments = sw._list_segments(tmp_path / "w")
        # Every retained segment still matters: nothing below the oldest
        # retained snapshot survives, and the journal is still loadable.
        assert segments[0][0] >= snaps[0][0] or len(segments) == 1
        recovered = StreamingColocationDetector.recover(
            tmp_path / "w", registry=MetricsRegistry()
        )
        reference = make_detector()
        offer_walk(reference, 20)
        assert state_of(recovered) == state_of(reference)
        recovered.close()

    def test_invalid_newest_snapshot_falls_back(self, tmp_path):
        with make_wal(tmp_path / "w", keep_snapshots=2) as wal:
            detector = make_detector(wal=wal)
            offer_walk(detector, 3)
            detector.snapshot()
            offer_walk(detector, 3, t0=50.0)
            detector.snapshot()
        snaps = sw._list_snapshots(tmp_path / "w")
        assert len(snaps) == 2
        snaps[-1][1].write_text("{torn snapsho")  # newest snapshot is torn
        recovery = load_wal(tmp_path / "w", registry=MetricsRegistry())
        assert recovery.report.invalid_snapshots == 1
        assert recovery.report.snapshot_lsn == snaps[0][0]
        # The tail after the older snapshot is still there to replay.
        recovered = StreamingColocationDetector.recover(
            tmp_path / "w", registry=MetricsRegistry()
        )
        reference = make_detector()
        offer_walk(reference, 3)
        offer_walk(reference, 3, t0=50.0)
        assert state_of(recovered) == state_of(reference)
        recovered.close()

    def test_foreign_snapshot_fingerprint_ignored(self, tmp_path):
        with make_wal(tmp_path / "w") as wal:
            detector = make_detector(wal=wal)
            offer_walk(detector, 3)
        bogus = tmp_path / "w" / sw._SNAPSHOT_FMT.format(99)
        bogus.write_text(json.dumps(
            {"version": 1, "fingerprint": "not-this-detector", "lsn": 99,
             "state": {}}
        ))
        recovery = load_wal(tmp_path / "w", registry=MetricsRegistry())
        assert recovery.report.invalid_snapshots == 1
        assert recovery.state is None
        assert len(recovery.ops) == 3
