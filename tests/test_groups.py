"""Unit tests for group detection."""

import numpy as np
import pytest

from repro.core.grid import Grid
from repro.core.noise import GaussianNoiseModel
from repro.core.sts import STS
from repro.core.trajectory import Trajectory
from repro.groups import GroupResult, detect_groups, similarity_graph
from repro.similarity import SST


def walker(x0=0.0, y=0.0, t0=0.0, n=8, oid=None):
    xs = x0 + np.arange(n, dtype=float)
    return Trajectory.from_arrays(xs, np.full(n, float(y)), t0 + np.arange(n, dtype=float), oid)


@pytest.fixture
def measure():
    return SST(spatial_scale=2.0, temporal_scale=5.0)


class TestSimilarityGraph:
    def test_edges_above_threshold_only(self, measure):
        trajectories = [walker(y=0.0), walker(y=0.5), walker(y=50.0)]
        graph, scored = similarity_graph(measure, trajectories, threshold=0.5)
        assert graph.has_edge(0, 1)
        assert not graph.has_edge(0, 2)
        assert scored == 3  # all pairs overlap temporally

    def test_temporal_prefilter_skips_scoring(self, measure):
        trajectories = [walker(t0=0.0), walker(t0=1000.0)]
        _graph, scored = similarity_graph(measure, trajectories, threshold=0.5)
        assert scored == 0

    def test_edge_carries_similarity(self, measure):
        trajectories = [walker(y=0.0), walker(y=0.5)]
        graph, _ = similarity_graph(measure, trajectories, threshold=0.1)
        assert graph.edges[0, 1]["similarity"] == pytest.approx(
            measure(trajectories[0], trajectories[1])
        )

    def test_invalid_threshold(self, measure):
        with pytest.raises(ValueError):
            similarity_graph(measure, [walker()], threshold=0.0)

    def test_all_nodes_present(self, measure):
        trajectories = [walker(y=float(100 * k)) for k in range(4)]
        graph, _ = similarity_graph(measure, trajectories, threshold=0.5)
        assert graph.number_of_nodes() == 4


class TestDetectGroups:
    def test_finds_one_group(self, measure):
        trajectories = [
            walker(y=0.0, oid="a"),
            walker(y=0.5, oid="b"),
            walker(y=80.0, oid="loner"),
        ]
        result = detect_groups(measure, trajectories, threshold=0.5)
        assert result.groups == ((0, 1),)
        assert result.group_of(0) == (0, 1)
        assert result.group_of(2) is None

    def test_transitive_group(self, measure):
        # chain: a~b and b~c but a-c weaker; one component of three
        trajectories = [walker(y=0.0), walker(y=1.2), walker(y=2.4)]
        result = detect_groups(measure, trajectories, threshold=0.4)
        assert result.groups == ((0, 1, 2),)

    def test_two_separate_groups(self, measure):
        trajectories = [
            walker(y=0.0),
            walker(y=0.5),
            walker(y=60.0),
            walker(y=60.5),
        ]
        result = detect_groups(measure, trajectories, threshold=0.5)
        assert result.groups == ((0, 1), (2, 3))

    def test_no_groups(self, measure):
        trajectories = [walker(y=float(100 * k)) for k in range(3)]
        result = detect_groups(measure, trajectories, threshold=0.5)
        assert result.groups == ()
        assert result.edges == ()

    def test_edges_sorted_and_scored_count(self, measure):
        trajectories = [walker(y=0.0), walker(y=0.5), walker(y=1.0)]
        result = detect_groups(measure, trajectories, threshold=0.3)
        assert result.pairs_scored == 3
        assert list(result.edges) == sorted(result.edges)

    def test_with_sts(self):
        grid = Grid(-5, -5, 40, 40, cell_size=2.0)
        measure = STS(grid, noise_model=GaussianNoiseModel(1.0))
        rng = np.random.default_rng(2)
        base = walker(y=10.0, n=10)
        companion = Trajectory(
            [type(p)(p.x + rng.normal(0, 0.5), p.y + rng.normal(0, 0.5), p.t + 0.5) for p in base]
        )
        loner = walker(y=30.0, n=10)
        self_level = measure.similarity(base, base)
        result = detect_groups(measure, [base, companion, loner], threshold=0.2 * self_level)
        assert result.groups == ((0, 1),)

    def test_empty_collection(self, measure):
        result = detect_groups(measure, [], threshold=0.5)
        assert result.groups == ()
        assert result.pairs_scored == 0

    def test_group_result_immutable(self):
        result = GroupResult(groups=((0, 1),), edges=((0, 1, 0.9),), pairs_scored=1)
        with pytest.raises(AttributeError):
            result.groups = ()  # type: ignore[misc]
