"""Property tests for the mergeable-snapshot algebra (repro.obs.aggregate).

Seeded-random loops (no third-party property-testing dependency) over
the three invariants the distributed observability plane rests on:

* :func:`merge_snapshots` is associative and commutative;
* merged-histogram quantiles agree with the pooled-sample quantiles to
  within one bucket width;
* delta piggybacking credits every unit of work exactly once, including
  across worker restarts (counter resets).
"""

from __future__ import annotations

import math
import random

import numpy as np
import pytest

from repro.obs import (
    MetricsRegistry,
    hist_stats_quantile,
    merge_into_registry,
    merge_snapshots,
    parse_label_str,
    snapshot_delta,
    snapshot_is_empty,
)
from repro.obs.aggregate import DeltaSource
from repro.obs.registry import _label_key, _label_str

BUCKETS = tuple(float(b) for b in range(1, 21))


def random_snapshot(rng: random.Random, tag: str) -> dict:
    """A snapshot built through a real registry from random activity.

    Values are small integers, so float sums are exact and the
    associativity check is not confounded by rounding.
    """
    registry = MetricsRegistry()
    counter = registry.counter(f"prop_{tag}_total")
    gauge = registry.gauge(f"prop_{tag}_gauge")
    hist = registry.histogram(f"prop_{tag}_seconds", buckets=BUCKETS)
    shared = registry.counter("prop_shared_total")  # collides across snapshots
    for _ in range(rng.randint(1, 30)):
        counter.inc(rng.randint(1, 5), shard=str(rng.randint(0, 2)))
        shared.inc(rng.randint(1, 3), origin=tag)
    gauge.set(rng.randint(0, 100), shard=str(rng.randint(0, 1)))
    for _ in range(rng.randint(1, 40)):
        hist.observe(rng.randint(0, 20) + 0.5)
    return registry.snapshot()


def canonical(snapshot: dict) -> dict:
    """Order-independent comparable form (dicts sorted, floats exact)."""
    out = {}
    for section, series_by_name in snapshot.items():
        out[section] = {
            name: dict(sorted(series.items()))
            if section != "histograms"
            else {
                key: (s["count"], s["sum"], tuple(tuple(b) for b in s["buckets"]))
                for key, s in sorted(series.items())
            }
            for name, series in sorted(series_by_name.items())
        }
    return out


class TestMergeAlgebra:
    def test_merge_is_commutative(self):
        rng = random.Random(101)
        for trial in range(25):
            a = random_snapshot(rng, "a")
            b = random_snapshot(rng, "b")
            assert canonical(merge_snapshots(a, b)) == canonical(
                merge_snapshots(b, a)
            ), f"trial {trial}"

    def test_merge_is_associative(self):
        rng = random.Random(202)
        for trial in range(25):
            a = random_snapshot(rng, "a")
            b = random_snapshot(rng, "b")
            c = random_snapshot(rng, "c")
            left = merge_snapshots(merge_snapshots(a, b), c)
            right = merge_snapshots(a, merge_snapshots(b, c))
            assert canonical(left) == canonical(right), f"trial {trial}"

    def test_merge_does_not_mutate_inputs(self):
        rng = random.Random(303)
        a = random_snapshot(rng, "a")
        b = random_snapshot(rng, "b")
        ca, cb = canonical(a), canonical(b)
        merge_snapshots(a, b)
        assert canonical(a) == ca and canonical(b) == cb

    def test_empty_is_identity(self):
        rng = random.Random(404)
        a = random_snapshot(rng, "a")
        assert canonical(merge_snapshots(a, {})) == canonical(a)
        assert snapshot_is_empty(merge_snapshots({}, {}))


class TestMergedQuantiles:
    def test_merged_quantiles_within_one_bucket_width(self):
        """p50/p95/p99 of a merged histogram ≈ pooled-sample quantiles.

        A bucketed estimator cannot localize better than its bucket, so
        the tolerance is the width of the bucket containing the true
        quantile (one, not half: interpolation assumes uniformity).
        """
        rng = np.random.default_rng(7)
        for trial in range(20):
            parts = []
            pooled = []
            for _ in range(rng.integers(2, 5)):
                registry = MetricsRegistry()
                hist = registry.histogram("q_seconds", buckets=BUCKETS)
                samples = rng.uniform(0.0, 20.0, size=int(rng.integers(5, 200)))
                for s in samples:
                    hist.observe(float(s))
                pooled.extend(samples.tolist())
                parts.append(registry.snapshot())
            merged = parts[0]
            for part in parts[1:]:
                merged = merge_snapshots(merged, part)
            stats = merged["histograms"]["q_seconds"][""]
            assert stats["count"] == len(pooled)
            assert stats["sum"] == pytest.approx(sum(pooled))
            for q in (0.50, 0.95, 0.99):
                true = float(np.quantile(pooled, q))
                est = hist_stats_quantile(stats, q)
                idx = min(
                    range(len(BUCKETS)), key=lambda i: (BUCKETS[i] < true, i)
                )
                lo = BUCKETS[idx - 1] if idx > 0 else 0.0
                width = BUCKETS[idx] - lo
                assert abs(est - true) <= width + 1e-9, (
                    f"trial {trial} q={q}: est {est} vs true {true}"
                )

    def test_quantile_of_empty_stats_is_nan(self):
        stats = {
            "count": 0,
            "sum": 0.0,
            "min": math.inf,
            "max": -math.inf,
            "buckets": [[b, 0] for b in BUCKETS] + [["+Inf", 0]],
        }
        assert math.isnan(hist_stats_quantile(stats, 0.5))


class TestDeltaExactness:
    def test_delta_stream_sums_to_cumulative(self):
        rng = random.Random(11)
        worker = MetricsRegistry()
        counter = worker.counter("w_total")
        hist = worker.histogram("w_seconds", buckets=BUCKETS)
        source = DeltaSource(worker)
        folded = {}
        for _ in range(30):
            for _ in range(rng.randint(0, 6)):
                counter.inc(1, shard="0")
                hist.observe(rng.randint(0, 20) + 0.5)
            delta = source.delta()
            if delta is not None:
                folded = merge_snapshots(folded, delta)
        final = worker.snapshot()
        assert canonical(folded) == canonical(final)

    def test_restart_never_double_counts(self):
        """Sum of folded deltas == total work across worker incarnations.

        A restarted worker starts with a fresh :class:`DeltaSource`, so
        its first delta is its whole cumulative snapshot: nothing is
        lost and nothing is credited twice.
        """
        rng = random.Random(23)
        for trial in range(10):
            parent = MetricsRegistry()
            total_work = 0
            for incarnation in range(rng.randint(2, 4)):
                worker = MetricsRegistry()  # restart: counters reset to zero
                counter = worker.counter("work_total")
                source = DeltaSource(worker)
                for _ in range(rng.randint(1, 5)):
                    work = rng.randint(1, 9)
                    counter.inc(work, shard="0")
                    total_work += work
                    delta = source.delta()
                    merge_into_registry(parent, delta, {"process": "worker"})
            folded = parent.snapshot()["counters"]["work_total"]
            assert sum(folded.values()) == total_work, f"trial {trial}"

    def test_counter_reset_detected_by_negative_delta(self):
        """If the parent diffs cumulatives itself, a shrinking counter
        (a restart) contributes the restarted worker's full cumulative
        rather than a negative delta."""
        a = MetricsRegistry()
        a.counter("work_total").inc(10)
        b = MetricsRegistry()
        b.counter("work_total").inc(4)
        delta = snapshot_delta(a.snapshot(), b.snapshot())
        assert delta["counters"]["work_total"][""] == 4.0

    def test_primed_source_excludes_forked_history(self):
        registry = MetricsRegistry()
        counter = registry.counter("inherited_total")
        counter.inc(100)  # parent history the fork copy carries
        source = DeltaSource(registry, prime=True)
        assert source.delta() is None
        counter.inc(3)
        delta = source.delta()
        assert delta["counters"]["inherited_total"][""] == 3.0

    def test_histogram_reset_takes_full_snapshot(self):
        a = MetricsRegistry()
        a.histogram("h_seconds", buckets=BUCKETS).observe(5.0)
        big = a.snapshot()
        b = MetricsRegistry()
        b.histogram("h_seconds", buckets=BUCKETS).observe(2.0)
        small = b.snapshot()  # "went backwards": a restart
        delta = snapshot_delta(big, small)
        assert delta["histograms"]["h_seconds"][""]["count"] == 1


class TestLabelRoundTrip:
    def test_parse_label_str_inverts_label_str(self):
        cases = [
            {},
            {"shard": "0"},
            {"a": "x", "b": "y", "process": "worker"},
            {"msg": 'quote " inside'},
            {"msg": "back\\slash"},
            {"msg": "line\nbreak"},
            {"msg": 'all \\ of " it\n at once', "k": "v"},
        ]
        for labels in cases:
            encoded = _label_str(_label_key(labels))
            assert parse_label_str(encoded) == labels, labels


class TestFoldSafety:
    def test_bucket_mismatch_dropped_and_counted(self):
        parent = MetricsRegistry()
        parent.histogram("h_seconds", buckets=(1.0, 2.0)).observe(0.5)
        skewed = MetricsRegistry()
        skewed.histogram("h_seconds", buckets=(10.0, 20.0)).observe(15.0)
        merge_into_registry(parent, skewed.snapshot(), {"process": "worker"})
        snap = parent.snapshot()
        dropped = snap["counters"]["repro_obs_merge_dropped_total"]
        assert sum(dropped.values()) == 1.0
        # the parent histogram is untouched by the skewed worker
        assert snap["histograms"]["h_seconds"][""]["count"] == 1

    def test_gauges_fold_as_distinct_series(self):
        parent = MetricsRegistry()
        parent.gauge("depth").set(4.0)
        worker = MetricsRegistry()
        worker.gauge("depth").set(9.0)
        merge_into_registry(parent, worker.snapshot(), {"process": "worker"})
        series = parent.snapshot()["gauges"]["depth"]
        assert series[""] == 4.0
        assert series['process="worker"'] == 9.0
