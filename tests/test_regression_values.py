"""Numeric regression pins.

These freeze exact measure values on small fixed inputs.  A failure here
does not necessarily mean a bug — it means the numeric behaviour of a
measure changed, which must be a conscious decision (and a changelog
entry), never an accident of refactoring.
"""

import pytest

from repro.core.grid import Grid
from repro.core.noise import GaussianNoiseModel
from repro.core.sts import STS, sts_n
from repro.core.trajectory import Trajectory
from repro.similarity import CATS, DTW, EDR, SST, WGM, EDwP, Frechet


@pytest.fixture
def grid():
    return Grid(0, 0, 40, 20, 2.0)


@pytest.fixture
def walkers():
    a = Trajectory.from_arrays([2, 6, 10, 14, 18], [10] * 5, [0, 4, 8, 12, 16])
    b = Trajectory.from_arrays([4, 8, 12, 16], [11] * 4, [2, 6, 10, 14])
    c = Trajectory.from_arrays([2, 6, 10, 14, 18], [2] * 5, [0, 4, 8, 12, 16])
    return a, b, c


class TestSTSPins:
    def test_companion_pair(self, grid, walkers):
        a, b, _c = walkers
        measure = STS(grid, noise_model=GaussianNoiseModel(2.0))
        assert measure.similarity(a, b) == pytest.approx(0.0655505, rel=1e-5)

    def test_stranger_pair(self, grid, walkers):
        a, _b, c = walkers
        measure = STS(grid, noise_model=GaussianNoiseModel(2.0))
        assert measure.similarity(a, c) == pytest.approx(0.00180748, rel=1e-5)

    def test_self_pair(self, grid, walkers):
        a, _b, _c = walkers
        measure = STS(grid, noise_model=GaussianNoiseModel(2.0))
        assert measure.similarity(a, a) == pytest.approx(0.0842947, rel=1e-5)

    def test_sts_n_pair(self, grid, walkers):
        a, b, _c = walkers
        assert sts_n(grid).similarity(a, b) == pytest.approx(7.0 / 9.0, rel=1e-9)

    def test_modes_pin_identically(self, grid, walkers):
        a, b, _c = walkers
        for mode in ("fft", "pruned", "dense"):
            measure = STS(grid, noise_model=GaussianNoiseModel(2.0), mode=mode)
            assert measure.similarity(a, b) == pytest.approx(0.0655505, rel=1e-5)


class TestBaselinePins:
    def test_cats(self, walkers):
        a, b, _c = walkers
        assert CATS(4.0, 3.0)(a, b) == pytest.approx(0.4409830, rel=1e-6)

    def test_sst(self, walkers):
        a, b, _c = walkers
        assert SST(2.0, 4.0)(a, b) == pytest.approx(0.5248822, rel=1e-6)

    def test_wgm(self, walkers):
        a, b, _c = walkers
        assert WGM(4.0, 4.0)(a, b) == pytest.approx(0.5888943, rel=1e-6)

    def test_dtw(self, walkers):
        a, b, _c = walkers
        assert DTW()(a, b) == pytest.approx(11.1803399, rel=1e-6)

    def test_edwp(self, walkers):
        a, b, _c = walkers
        assert EDwP()(a, b) == pytest.approx(90.6099034, rel=1e-6)

    def test_frechet(self, walkers):
        a, b, _c = walkers
        assert Frechet()(a, b) == pytest.approx(2.2360680, rel=1e-6)

    def test_edr(self, walkers):
        a, b, _c = walkers
        assert EDR(2.5)(a, b) == 1.0
