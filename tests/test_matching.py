"""Unit tests for the trajectory-matching harness."""

import numpy as np
import pytest

from repro.core.trajectory import Trajectory
from repro.eval.matching import MatchingResult, build_matching_pair, evaluate_matching
from repro.similarity import DTW


def make_corpus(n=6, length=12, spacing=50.0):
    """Well-separated straight-line trajectories (easy to re-identify)."""
    corpus = []
    for k in range(n):
        xs = np.arange(length, dtype=float)
        ys = np.full(length, k * spacing)
        corpus.append(Trajectory.from_arrays(xs, ys, np.arange(length, dtype=float), f"obj-{k}"))
    return corpus


class TestBuildMatchingPair:
    def test_splits_every_trajectory(self):
        corpus = make_corpus()
        d1, d2 = build_matching_pair(corpus)
        assert len(d1) == len(d2) == len(corpus)
        for original, first, second in zip(corpus, d1, d2):
            assert len(first) + len(second) == len(original)

    def test_empty_corpus_raises(self):
        with pytest.raises(ValueError):
            build_matching_pair([])


class TestEvaluateMatching:
    def test_perfect_measure(self):
        corpus = make_corpus()
        d1, d2 = build_matching_pair(corpus)
        result = evaluate_matching(DTW(), d1, d2)
        assert result.precision == 1.0
        assert result.mean_rank == 1.0
        assert result.measure == "DTW"
        assert result.n_queries == len(corpus)

    def test_mismatched_lengths_raise(self):
        corpus = make_corpus()
        d1, d2 = build_matching_pair(corpus)
        with pytest.raises(ValueError, match="1:1"):
            evaluate_matching(DTW(), d1[:-1], d2)

    def test_adversarial_measure_ranks_last(self):
        class AntiDTW:
            name = "anti"

            def score(self, a, b):
                return DTW()(a, b)  # distance as similarity: worst ordering

        corpus = make_corpus()
        d1, d2 = build_matching_pair(corpus)
        result = evaluate_matching(AntiDTW(), d1, d2)
        assert result.precision == 0.0
        assert result.mean_rank > len(corpus) / 2

    def test_result_str(self):
        result = MatchingResult("X", 0.5, 2.25, np.array([1.0, 3.5]))
        text = str(result)
        assert "X" in text and "0.500" in text and "2.25" in text

    def test_sts_end_to_end_small(self):
        from repro.core.grid import Grid
        from repro.core.noise import GaussianNoiseModel
        from repro.core.sts import STS

        corpus = make_corpus(n=4, length=10, spacing=30.0)
        d1, d2 = build_matching_pair(corpus)
        pts = np.vstack([t.xy for t in corpus])
        grid = Grid.covering(pts, cell_size=5.0, margin=10.0)
        measure = STS(grid, noise_model=GaussianNoiseModel(3.0))
        result = evaluate_matching(measure, d1, d2)
        assert result.precision == 1.0
