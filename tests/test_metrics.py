"""Unit tests for evaluation metrics (Eq. 11–13)."""

import numpy as np
import pytest

from repro.eval.metrics import (
    cross_similarity_deviation,
    mean_rank,
    precision,
    ranks_from_scores,
)


class TestRanksFromScores:
    def test_perfect_diagonal(self):
        scores = np.eye(4)
        np.testing.assert_allclose(ranks_from_scores(scores), np.ones(4))

    def test_worst_case(self):
        # true match scored strictly below every other candidate
        scores = np.ones((3, 3))
        np.fill_diagonal(scores, 0.0)
        np.testing.assert_allclose(ranks_from_scores(scores), [3, 3, 3])

    def test_middle_rank(self):
        scores = np.array(
            [
                [0.5, 0.9, 0.1],  # one better -> rank 2
                [0.0, 1.0, 0.0],  # best -> rank 1
                [0.9, 0.8, 0.7],  # two better -> rank 3
            ]
        )
        np.testing.assert_allclose(ranks_from_scores(scores), [2, 1, 3])

    def test_ties_average(self):
        # constant scores: every query ties with all others
        scores = np.ones((5, 5))
        expected = 1.0 + 0.5 * 4
        np.testing.assert_allclose(ranks_from_scores(scores), expected)

    def test_non_square_rejected(self):
        with pytest.raises(ValueError, match="square"):
            ranks_from_scores(np.ones((2, 3)))


class TestPrecisionAndMeanRank:
    def test_precision_eq11(self):
        ranks = np.array([1.0, 2.0, 1.0, 5.0])
        assert precision(ranks) == pytest.approx(0.5)

    def test_precision_all_correct(self):
        assert precision(np.ones(7)) == 1.0

    def test_precision_tied_first_not_counted(self):
        # average-rank 1.5 (tie with one other) is not an exact top-1
        assert precision(np.array([1.5])) == 0.0

    def test_mean_rank_eq12(self):
        assert mean_rank(np.array([1.0, 3.0, 5.0])) == pytest.approx(3.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            precision(np.array([]))
        with pytest.raises(ValueError):
            mean_rank(np.array([]))

    def test_constant_measure_is_chance_level(self):
        # A degenerate measure must not look good: mean rank = (n+1)/2.
        n = 9
        ranks = ranks_from_scores(np.full((n, n), 0.42))
        assert mean_rank(ranks) == pytest.approx((n + 1) / 2)
        assert precision(ranks) == 0.0


class TestCrossSimilarityDeviation:
    def test_eq13(self):
        assert cross_similarity_deviation(2.0, 1.5) == pytest.approx(0.25)

    def test_zero_when_unchanged(self):
        assert cross_similarity_deviation(0.7, 0.7) == 0.0

    def test_sign_irrelevant(self):
        assert cross_similarity_deviation(2.0, 2.5) == pytest.approx(
            cross_similarity_deviation(2.0, 1.5)
        )

    def test_zero_reference_zero_sub(self):
        assert cross_similarity_deviation(0.0, 0.0) == 0.0

    def test_zero_reference_nonzero_sub(self):
        assert cross_similarity_deviation(0.0, 1.0) > 1e6  # guarded blow-up

    def test_negative_reference(self):
        # distances passed as scores may be negated; |.| handles it
        assert cross_similarity_deviation(-2.0, -1.0) == pytest.approx(0.5)
