"""Deterministic fault injectors for the supervision/recovery tests.

:class:`FaultyMeasure` wraps a real similarity measure and injects one
fault — ``"raise"``, ``"crash"`` (kills the worker process), ``"hang"``
or ``"corrupt"`` (returns NaN) — the *first* time a chosen trajectory
pair is scored, then behaves normally forever after.  "First time" is
enforced across process boundaries with an ``O_CREAT | O_EXCL`` token
file: whichever worker (or retry attempt) gets there first atomically
claims the token and fires the fault; every later attempt sees the
token and scores cleanly.  That makes each test's fault schedule fully
deterministic regardless of pool size or chunk order.

The wrapper is picklable (it carries only the base measure, plain
strings and numbers), so it travels to process-pool workers the same
way a real measure does.
"""

from __future__ import annotations

import os
import time


class OneShotToken:
    """Cross-process "exactly once" latch backed by an exclusive file."""

    def __init__(self, path):
        self.path = str(path)

    def fire(self) -> bool:
        """Atomically claim the token; True only for the first caller."""
        try:
            fd = os.open(self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        os.close(fd)
        return True

    @property
    def fired(self) -> bool:
        return os.path.exists(self.path)


class FaultyMeasure:
    """Similarity measure that injects one fault on a chosen pair.

    Parameters
    ----------
    base:
        The real measure to wrap (scores delegate to it).
    kind:
        ``"raise"`` — raise ``RuntimeError``;
        ``"crash"`` — ``os._exit(1)`` the scoring process (worker death);
        ``"hang"`` — sleep ``hang_seconds`` (simulated wedge);
        ``"corrupt"`` — return NaN instead of the true score.
    target:
        Unordered pair of ``object_id`` values that triggers the fault.
    token_path:
        File path for the exactly-once latch (use a tmp path per test).
    """

    def __init__(self, base, kind: str, target, token_path, hang_seconds: float = 30.0):
        if kind not in ("raise", "crash", "hang", "corrupt"):
            raise ValueError(f"unknown fault kind {kind!r}")
        self.base = base
        self.kind = kind
        self.target = frozenset(target)
        self.token = OneShotToken(token_path)
        self.hang_seconds = float(hang_seconds)

    @property
    def name(self) -> str:
        return f"faulty-{self.kind}({getattr(self.base, 'name', 'measure')})"

    def similarity(self, tra1, tra2) -> float:
        if {tra1.object_id, tra2.object_id} == self.target and self.token.fire():
            if self.kind == "raise":
                raise RuntimeError("injected fault: scoring failure")
            if self.kind == "crash":
                os._exit(1)
            if self.kind == "hang":
                time.sleep(self.hang_seconds)
            elif self.kind == "corrupt":
                return float("nan")
        return self.base.similarity(tra1, tra2)
