"""Deterministic fault injectors for the supervision/recovery tests.

:class:`FaultyMeasure` wraps a real similarity measure and injects one
fault — ``"raise"``, ``"crash"`` (kills the worker process), ``"hang"``
or ``"corrupt"`` (returns NaN) — the *first* time a chosen trajectory
pair is scored, then behaves normally forever after.  "First time" is
enforced across process boundaries with an ``O_CREAT | O_EXCL`` token
file: whichever worker (or retry attempt) gets there first atomically
claims the token and fires the fault; every later attempt sees the
token and scores cleanly.  That makes each test's fault schedule fully
deterministic regardless of pool size or chunk order.

The wrapper is picklable (it carries only the base measure, plain
strings and numbers), so it travels to process-pool workers the same
way a real measure does.
"""

from __future__ import annotations

import os
import time


class OneShotToken:
    """Cross-process "exactly once" latch backed by an exclusive file."""

    def __init__(self, path):
        self.path = str(path)

    def fire(self) -> bool:
        """Atomically claim the token; True only for the first caller."""
        try:
            fd = os.open(self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        os.close(fd)
        return True

    @property
    def fired(self) -> bool:
        return os.path.exists(self.path)


class FaultyMeasure:
    """Similarity measure that injects one fault on a chosen pair.

    Parameters
    ----------
    base:
        The real measure to wrap (scores delegate to it).
    kind:
        ``"raise"`` — raise ``RuntimeError``;
        ``"crash"`` — ``os._exit(1)`` the scoring process (worker death);
        ``"hang"`` — sleep ``hang_seconds`` (simulated wedge);
        ``"corrupt"`` — return NaN instead of the true score.
    target:
        Unordered pair of ``object_id`` values that triggers the fault.
    token_path:
        File path for the exactly-once latch (use a tmp path per test).
    """

    def __init__(self, base, kind: str, target, token_path, hang_seconds: float = 30.0):
        if kind not in ("raise", "crash", "hang", "corrupt"):
            raise ValueError(f"unknown fault kind {kind!r}")
        self.base = base
        self.kind = kind
        self.target = frozenset(target)
        self.token = OneShotToken(token_path)
        self.hang_seconds = float(hang_seconds)

    @property
    def name(self) -> str:
        return f"faulty-{self.kind}({getattr(self.base, 'name', 'measure')})"

    def similarity(self, tra1, tra2) -> float:
        if {tra1.object_id, tra2.object_id} == self.target and self.token.fire():
            if self.kind == "raise":
                raise RuntimeError("injected fault: scoring failure")
            if self.kind == "crash":
                os._exit(1)
            if self.kind == "hang":
                time.sleep(self.hang_seconds)
            elif self.kind == "corrupt":
                return float("nan")
        return self.base.similarity(tra1, tra2)


class _SlowSTP:
    """STP proxy that sleeps before every (batched) evaluation."""

    def __init__(self, base, delay: float, sleep=time.sleep):
        self._base = base
        self._delay = delay
        self._sleep = sleep

    def stp(self, t):
        self._sleep(self._delay)
        return self._base.stp(t)

    def stp_batch(self, times):
        self._sleep(self._delay)
        return self._base.stp_batch(times)

    def __getattr__(self, name):
        return getattr(self._base, name)


class SlowMeasure:
    """STS wrapper injecting wall-clock latency into every STP evaluation.

    The anytime scorer never calls ``similarity`` — it drives
    ``stp_for(...)`` + the batched co-location path directly — so
    overload has to be injected at the STP layer: every ``stp``/
    ``stp_batch`` call on a trajectory's estimator sleeps ``delay``
    seconds first.  Scores are untouched, so deadline tests can compare
    against the wrapped measure's exact results.

    Note the degradation ladder builds its *coarse* measures fresh from
    ``grid.coarsen(...)`` — those are real, fast STS instances, so a
    ladder over a SlowMeasure exercises exactly the intended scenario:
    the full-fidelity rung is overloaded, the degraded rungs are not.
    """

    def __init__(self, base, delay: float, sleep=time.sleep):
        self.base = base
        self.delay = float(delay)
        self._sleep = sleep

    @property
    def name(self) -> str:
        return f"slow({getattr(self.base, 'name', 'measure')})"

    def stp_for(self, trajectory):
        return _SlowSTP(self.base.stp_for(trajectory), self.delay, self._sleep)

    def similarity(self, tra1, tra2, budget=None) -> float:
        self._sleep(self.delay)
        if budget is not None:
            return self.base.similarity(tra1, tra2, budget=budget)
        return self.base.similarity(tra1, tra2)

    def score(self, tra1, tra2) -> float:
        return self.similarity(tra1, tra2)

    def __getattr__(self, name):
        # grid, noise_model, mode, _transition_factory, stp_cache_size, ...
        return getattr(self.base, name)
