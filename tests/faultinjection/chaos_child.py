"""Subprocess driver for the streaming-recovery chaos harness.

Runs a seeded, fully deterministic command schedule (offers, direct
ingests, drains, duplicates, malformed and stale sightings) against a
WAL-attached :class:`~repro.streaming.StreamingColocationDetector`, and
``SIGKILL``s itself *immediately before* applying the command at index
``KILL_AT`` — the hardest possible crash: no flush, no atexit, no
``close()``.  The parent test recovers the WAL directory and compares
against an in-process reference detector fed the same command prefix.

Usage::

    python chaos_child.py WAL_DIR SEED KILL_AT FSYNC_EVERY SNAPSHOT_EVERY SEGMENT_MAX

``KILL_AT = -1`` runs the whole schedule, closes cleanly and prints
``DONE <stream_time>``.  ``SNAPSHOT_EVERY = 0`` disables automatic
snapshots.  The schedule generator and detector configuration live here
(not in the test) so parent and child can never drift apart.
"""

from __future__ import annotations

import os
import signal
import sys

import numpy as np

from repro.core.grid import Grid
from repro.core.noise import GaussianNoiseModel
from repro.streaming import SightingEvent, StreamingColocationDetector
from repro.streaming_wal import StreamingWAL

GRID = (0.0, 0.0, 40.0, 20.0)
CELL_SIZE = 2.0
WINDOW = 90.0
SIGMA = 2.0
MIN_POINTS = 3
MAX_PENDING = 12
N_OPS = 120


def make_detector(wal=None, registry=None):
    """The one detector configuration the whole harness agrees on."""
    return StreamingColocationDetector(
        Grid(*GRID, cell_size=CELL_SIZE),
        window=WINDOW,
        noise_model=GaussianNoiseModel(SIGMA),
        min_points=MIN_POINTS,
        on_error="skip",
        max_pending=MAX_PENDING,
        wal=wal,
        registry=registry,
    )


def command_schedule(seed, n_ops=N_OPS):
    """A deterministic mixed workload exercising every ingest path.

    Mostly in-order offers and ingests for five objects, salted with
    duplicate timestamps, malformed (NaN) sightings, stale events far
    behind the window horizon, and partial/full drains — so shedding,
    late-drop, duplicate and malformed accounting all replay.
    """
    rng = np.random.default_rng(seed)
    t = 0.0
    last_t = {}
    ops = []
    for _ in range(n_ops):
        roll = float(rng.uniform())
        oid = f"dev-{int(rng.integers(0, 5))}"
        x = float(rng.uniform(*GRID[0::2]))
        y = float(rng.uniform(*GRID[1::2]))
        if roll < 0.55:  # fresh offer through the admission queue
            t += float(rng.exponential(2.0))
            ops.append(("offer", oid, x, y, t))
            last_t[oid] = t
        elif roll < 0.72:  # direct ingest, bypassing the queue
            t += float(rng.exponential(2.0))
            ops.append(("ingest", oid, x, y, t))
            last_t[oid] = t
        elif roll < 0.80 and last_t:  # duplicate timestamp, new coords
            dup = sorted(last_t)[int(rng.integers(0, len(last_t)))]
            ops.append(("ingest", dup, x, y, last_t[dup]))
        elif roll < 0.86:  # malformed sighting (skipped + counted)
            ops.append(("offer", oid, float("nan"), y, t))
        elif roll < 0.92:  # stale event far behind the horizon
            ops.append(("ingest", oid, x, y, max(0.0, t - 10.0 * WINDOW)))
        else:  # drain part (or all) of the queue
            limit = int(rng.integers(1, 8)) if roll < 0.97 else -1
            ops.append(("drain", limit))
    return ops


def apply_op(detector, op):
    """Apply one schedule command through the public detector API."""
    kind = op[0]
    if kind == "offer":
        detector.offer(SightingEvent(*op[1:]))
    elif kind == "ingest":
        detector.ingest(SightingEvent(*op[1:]))
    else:
        detector.drain(None if op[1] < 0 else op[1])


def main(argv):
    wal_dir, seed, kill_at = argv[1], int(argv[2]), int(argv[3])
    fsync_every, snapshot_every, segment_max = (int(a) for a in argv[4:7])
    wal = StreamingWAL(
        wal_dir,
        fsync_every=fsync_every,
        snapshot_every=snapshot_every or None,
        segment_max_records=segment_max,
    )
    detector = make_detector(wal=wal)
    for index, op in enumerate(command_schedule(seed)):
        if index == kill_at:
            os.kill(os.getpid(), signal.SIGKILL)
        apply_op(detector, op)
    detector.close()
    print(f"DONE {detector.stream_time!r}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
