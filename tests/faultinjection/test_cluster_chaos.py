"""Chaos harness for the sharded gallery service (ISSUE 8 scenarios).

Three scenarios, each across three seeds (the seeded gallery changes the
shard layout and the scoring workload):

a. **Healthy cluster** — the cluster top-k is bitwise identical to the
   single-process :class:`~repro.index.FilteredMatcher` over the same
   gallery.
b. **Replica SIGKILLed mid-query** — a fault-injected worker kills
   itself (``SIGKILL``, no cleanup) upon *receiving* its first score
   request; the scatter-gather must fail over to the sibling replica and
   still return ``coverage == 1.0`` with the identical top-k.
c. **Whole shard down** — every replica of one shard is killed with
   restarts disabled; the query must complete (never hang), report
   ``coverage < 1.0`` in the :class:`~repro.index.matcher.MatchReport`,
   and bump ``repro_cluster_shard_skipped_total``.

Plus a hedging integration scenario: one replica injected 10× slow; the
hedge must fire to the sibling and the result must stay correct with
every duplicate reply counted (``stale``/``wasted``), never
double-scored.

``REPRO_CHAOS_SEED`` selects a single seed (the CI matrix runs one per
job); unset, all three run.  Every query is wrapped in a SIGALRM
watchdog so a regression that *hangs* fails loudly instead of stalling
the suite — the CI job's ``timeout-minutes`` is the backstop.  Worker
stdout/stderr goes to ``REPRO_CLUSTER_LOG_DIR`` when set; CI uploads
that directory on failure.
"""

from __future__ import annotations

import contextlib
import os
import signal

import numpy as np
import pytest

from repro.cluster import ClusterMatcher, ClusterService
from repro.core.grid import Grid
from repro.core.sts import STS
from repro.core.trajectory import Trajectory
from repro.index.matcher import FilteredMatcher
from repro.obs import MetricsRegistry

ALL_SEEDS = (0, 1, 2)
QUERY_TIMEOUT_S = 60  # watchdog per scatter-gather; well above any honest run


def _selected_seeds():
    chosen = os.environ.get("REPRO_CHAOS_SEED")
    if chosen is None:
        return ALL_SEEDS
    return (int(chosen),)


@pytest.fixture(params=_selected_seeds())
def seed(request):
    return request.param


@contextlib.contextmanager
def deadline_guard(seconds: int = QUERY_TIMEOUT_S):
    """Fail (don't hang) if the guarded block stalls: scenario (c)'s
    'never a hang' clause, enforced in-process via SIGALRM."""

    def _alarm(signum, frame):
        raise TimeoutError(f"cluster query hung for more than {seconds}s")

    previous = signal.signal(signal.SIGALRM, _alarm)
    signal.alarm(seconds)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


GRID = Grid(0, 0, 40, 20, cell_size=2.0)


def seeded_gallery(seed: int, n: int = 12) -> list[Trajectory]:
    rng = np.random.default_rng(10_000 + seed)
    gallery = []
    for i in range(n):
        ts = np.sort(rng.uniform(0.0, 80.0, 6))
        xs = rng.uniform(2.0, 38.0, 6)
        ys = rng.uniform(2.0, 18.0, 6)
        gallery.append(Trajectory.from_arrays(xs, ys, ts, object_id=f"s{seed}-g{i}"))
    return gallery


def seeded_query(seed: int) -> Trajectory:
    rng = np.random.default_rng(77_000 + seed)
    ts = np.sort(rng.uniform(0.0, 80.0, 6))
    return Trajectory.from_arrays(
        rng.uniform(2.0, 38.0, 6), rng.uniform(2.0, 18.0, 6), ts,
        object_id=f"s{seed}-q",
    )


def reference_topk(seed: int, gallery, k: int = 5):
    report = FilteredMatcher(STS(GRID), grid=GRID, spatial_slack=100.0).query(
        seeded_query(seed), gallery, k=k
    )
    return [(m.index, m.score) for m in report.matches]


def victim_shard(service: ClusterService) -> int:
    """The first shard that actually owns gallery members."""
    return next(s for s, members in enumerate(service.shard_globals) if members)


# ----------------------------------------------------------------------
class TestScenarioAHealthyParity:
    def test_healthy_topk_bitwise_identical(self, seed):
        gallery = seeded_gallery(seed)
        expected = reference_topk(seed, gallery)
        with ClusterMatcher(
            STS(GRID), gallery, grid=GRID, spatial_slack=100.0,
            n_shards=3, n_replicas=2, registry=MetricsRegistry(),
        ) as matcher, deadline_guard():
            report = matcher.query(seeded_query(seed), k=5)
        assert report.coverage == 1.0
        assert report.shards_skipped == ()
        assert [(m.index, m.score) for m in report.matches] == expected


class TestScenarioBReplicaSigkillMidQuery:
    def test_failover_preserves_full_coverage_and_topk(self, seed):
        gallery = seeded_gallery(seed)
        expected = reference_topk(seed, gallery)
        registry = MetricsRegistry()
        measure = STS(GRID)
        # Probe the layout first (ShardPlan is deterministic), then
        # arm the victim: the primary replica of the first populated
        # shard SIGKILLs itself upon receiving its first score request —
        # after the request is on the wire, before any reply.
        with ClusterService(measure, gallery, n_shards=3, n_replicas=2) as probe:
            victim = victim_shard(probe)
        # Hedging off: with it on, the hedge can recover the dead shard
        # before the EOF is even noticed (covered by the hedging tests
        # below); this scenario isolates the failover machinery itself.
        with ClusterService(
            measure, gallery, n_shards=3, n_replicas=2,
            registry=registry, hedge=False,
            worker_faults={(victim, 0): {"crash_on_score": 1}},
        ) as svc:
            matcher = FilteredMatcher(
                measure, grid=GRID, spatial_slack=100.0, cluster=svc,
                registry=registry,
            )
            with deadline_guard():
                report = matcher.query(seeded_query(seed), gallery, k=5)
            creport = report.cluster
            assert report.coverage == 1.0, creport.summary()
            assert report.shards_skipped == ()
            assert [(m.index, m.score) for m in report.matches] == expected
            # The death was detected and routed around, not ignored.
            assert creport.failovers >= 1, creport.summary()
            assert victim in report.shards_degraded
            # A later query still has full coverage (sibling, or the
            # supervisor restarted the dead worker and re-attached it).
            with deadline_guard():
                again = matcher.query(seeded_query(seed), gallery, k=5)
            assert again.coverage == 1.0
            assert [(m.index, m.score) for m in again.matches] == expected


class TestScenarioCWholeShardDown:
    def test_partial_coverage_reported_never_hangs(self, seed):
        gallery = seeded_gallery(seed)
        registry = MetricsRegistry()
        measure = STS(GRID)
        with ClusterService(
            measure, gallery, n_shards=3, n_replicas=2,
            max_restarts=0, registry=registry,
        ) as svc:
            victim = victim_shard(svc)
            assert svc.kill_replica(victim, 0)
            assert svc.kill_replica(victim, 1)
            dead = set(svc.shard_globals[victim])
            matcher = FilteredMatcher(
                measure, grid=GRID, spatial_slack=100.0, cluster=svc,
                registry=registry,
            )
            before = sum(
                registry.value("repro_cluster_shard_skipped_total").values()
            )
            with deadline_guard():
                report = matcher.query(seeded_query(seed), gallery, k=5)
            # Completed, with the gap explicit in the MatchReport.
            assert report.coverage < 1.0
            assert report.coverage == pytest.approx(1.0 - len(dead) / len(gallery))
            assert report.shards_skipped == (victim,)
            assert not report.complete
            assert "PARTIAL" in str(report)
            after = sum(
                registry.value("repro_cluster_shard_skipped_total").values()
            )
            assert after == before + 1
            # Surviving shards still answer, bitwise — and the dead
            # shard's candidates are absent, never silently zero-scored.
            scored = {m.index for m in report.matches}
            assert scored.isdisjoint(dead)
            single = STS(GRID)
            for m in report.matches:
                assert m.score == float(
                    single.similarity(seeded_query(seed), gallery[m.index])
                )


class TestHedgingUnderSlowReplica:
    def test_hedge_fires_and_result_stays_correct(self, seed):
        gallery = seeded_gallery(seed)
        expected = reference_topk(seed, gallery)
        registry = MetricsRegistry()
        measure = STS(GRID)
        with ClusterService(measure, gallery, n_shards=2, n_replicas=2) as probe:
            victim = victim_shard(probe)
        # The victim's primary replica answers 10×-slow (0.8 s); the
        # hedge delay starts at 40 ms, so the sibling is hedged long
        # before the primary replies.  First answer wins; the primary's
        # late reply must be discarded as stale, not double-scored.
        with ClusterService(
            measure, gallery, n_shards=2, n_replicas=2,
            registry=registry, hedge_initial_ms=40.0,
            worker_faults={(victim, 0): {"delay_s": 0.8}},
        ) as svc:
            matcher = FilteredMatcher(
                measure, grid=GRID, spatial_slack=100.0, cluster=svc,
                registry=registry,
            )
            with deadline_guard():
                report = matcher.query(seeded_query(seed), gallery, k=5)
            creport = report.cluster
            assert report.coverage == 1.0
            assert [(m.index, m.score) for m in report.matches] == expected
            assert creport.hedges_fired >= 1, creport.summary()
            fired = sum(registry.value("repro_cluster_hedges_total").values())
            assert fired >= 1
            # Exactly one answer per shard was scored: every hedge is
            # accounted as won or (once the straggler replies) wasted.
            assert creport.hedges_won + creport.hedges_wasted <= creport.hedges_fired
            # The straggler's reply, whenever it lands, is drained as
            # stale — the next query must not mis-assemble because of it.
            with deadline_guard():
                again = matcher.query(seeded_query(seed), gallery, k=5)
            assert again.coverage == 1.0
            assert [(m.index, m.score) for m in again.matches] == expected

    def test_no_hedge_flag_disables_hedging(self, seed):
        gallery = seeded_gallery(seed)
        registry = MetricsRegistry()
        measure = STS(GRID)
        with ClusterService(
            measure, gallery, n_shards=2, n_replicas=2,
            hedge=False, registry=registry, hedge_initial_ms=1.0,
            worker_faults={(0, 0): {"delay_s": 0.2}},
        ) as svc, deadline_guard():
            scores, creport = svc.query_scores(seeded_query(seed))
            assert creport.hedges_fired == 0
            assert creport.coverage == 1.0
