"""Shared fixtures: a small gallery, its STS measure, and the clean matrix."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.grid import Grid
from repro.core.sts import STS
from repro.core.trajectory import Trajectory


@pytest.fixture(scope="module")
def grid():
    return Grid(0, 0, 40, 20, cell_size=2.0)


@pytest.fixture(scope="module")
def gallery():
    """Five short overlapping trajectories with stable object ids."""
    specs = [
        ("a", [2.0, 8.0, 14.0, 20.0], 10.0, 0.0),
        ("b", [4.0, 10.0, 16.0, 22.0], 10.0, 2.0),
        ("c", [2.0, 8.0, 14.0, 20.0], 4.0, 0.0),
        ("d", [20.0, 14.0, 8.0, 2.0], 6.0, 1.0),
        ("e", [6.0, 12.0, 18.0, 24.0], 8.0, 3.0),
    ]
    return [
        Trajectory.from_arrays(
            xs, [y] * len(xs), np.array([0.0, 5.0, 10.0, 15.0]) + t0, object_id=oid
        )
        for oid, xs, y, t0 in specs
    ]


@pytest.fixture(scope="module")
def measure(grid):
    return STS(grid)


@pytest.fixture(scope="module")
def clean_serial(measure, gallery):
    """The reference matrix from an uninterrupted serial run."""
    return STS(measure.grid).pairwise(gallery)
