"""A corpus with injected degenerate records survives ``on_error="skip"``.

Builds a clean CSV from the shared gallery, injects a known set of
degenerate records — unparseable rows, non-finite coordinates, a
truncated row, a too-short group, a duplicate-timestamp trajectory —
and proves the skip policy completes while reporting **exactly** the
injected records, and that the survivors still score a fully finite
pairwise matrix.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.sts import STS
from repro.datasets.io import (
    load_trajectories_csv,
    load_trajectories_csv_report,
    save_trajectories_csv,
)
from repro.errors import MalformedRecordError
from repro.preprocess import sanitize_trajectories

#: Injected record-level faults: rows the CSV loader must drop (and count).
_BAD_ROWS = [
    "bad1,not-a-number,3.0,1.0",  # unparseable coordinate
    "bad2,1.0,nan,2.0",  # non-finite coordinate
    "bad3,1.0",  # truncated row (missing y and t)
]
#: A group with a single valid row — dropped by ``min_length=2``.
_SHORT_ROWS = ["short,5.0,5.0,0.0"]
#: A loadable group whose observations share a timestamp — caught by the
#: sanitization gate, not the loader.
_DUP_ROWS = ["dup,6.0,6.0,0.0", "dup,7.0,6.0,5.0", "dup,8.0,6.0,5.0"]


@pytest.fixture()
def corpus_csv(gallery, tmp_path):
    path = tmp_path / "corpus.csv"
    n_clean = save_trajectories_csv(gallery, path)
    with open(path, "a", encoding="utf-8") as handle:
        for row in _BAD_ROWS + _SHORT_ROWS + _DUP_ROWS:
            handle.write(row + "\n")
    return path, n_clean


class TestLoaderPolicies:
    def test_raise_policy_names_file_and_line(self, corpus_csv):
        path, n_clean = corpus_csv
        first_bad_line = 2 + n_clean  # header is line 1, data starts at 2
        with pytest.raises(MalformedRecordError, match=f"{first_bad_line}"):
            load_trajectories_csv(path, min_length=2, on_error="raise")

    def test_skip_policy_reports_exactly_the_injected_records(
        self, corpus_csv, gallery
    ):
        path, n_clean = corpus_csv
        kept, report = load_trajectories_csv_report(
            path, min_length=2, on_error="skip"
        )
        assert report.n_seen == n_clean + len(_BAD_ROWS) + len(_SHORT_ROWS) + len(
            _DUP_ROWS
        )
        assert report.skipped_records == len(_BAD_ROWS)
        assert report.skipped_trajectories == 1  # the "short" group
        record_issues = [i for i in report.issues if i.kind == "malformed-record"]
        assert len(record_issues) == len(_BAD_ROWS)
        assert all(str(path) in i.subject for i in record_issues)
        assert [t.object_id for t in kept] == [
            t.object_id for t in gallery
        ] + ["dup"]


class TestSanitizationGate:
    def test_skip_drops_only_the_duplicate_timestamp_trajectory(
        self, corpus_csv, gallery
    ):
        path, _ = corpus_csv
        loaded = load_trajectories_csv(path, min_length=2, on_error="skip")
        kept, report = sanitize_trajectories(loaded, on_error="skip", min_points=2)
        assert [t.object_id for t in kept] == [t.object_id for t in gallery]
        assert report.skipped_trajectories == 1
        (issue,) = report.issues
        assert issue.kind == "duplicate-timestamps"
        assert issue.subject == "dup"

    def test_repair_collapses_duplicates_and_keeps_everything(self, corpus_csv):
        path, _ = corpus_csv
        loaded = load_trajectories_csv(path, min_length=2, on_error="skip")
        kept, report = sanitize_trajectories(loaded, on_error="repair", min_points=2)
        assert len(kept) == len(loaded)
        assert report.repaired == 1
        repaired = next(t for t in kept if t.object_id == "dup")
        assert len(repaired) == 2  # three rows, two distinct timestamps
        assert np.all(np.diff(repaired.timestamps) > 0)


class TestEndToEnd:
    def test_survivors_score_a_finite_matrix(self, corpus_csv, grid, clean_serial):
        path, _ = corpus_csv
        loaded = load_trajectories_csv(path, min_length=2, on_error="skip")
        kept, _ = sanitize_trajectories(loaded, on_error="repair", min_points=2)
        out = STS(grid).pairwise(kept)
        assert out.shape == (len(kept), len(kept))
        assert np.isfinite(out).all()
        assert np.array_equal(out, out.T)
        # The clean gallery block is untouched by the injected garbage.
        n = clean_serial.shape[0]
        assert np.array_equal(out[:n, :n], clean_serial)
