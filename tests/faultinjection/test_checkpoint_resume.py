"""Checkpoint-resume survives a real SIGKILL and a truncated journal.

Two acceptance scenarios from the robustness issue:

* a ``run_all_experiments`` process killed with ``SIGKILL`` between
  experiments resumes from its checkpoint directory, skips the
  completed experiments, and produces a report identical to a clean
  uninterrupted run;
* a pairwise journal truncated mid-run resumes by recomputing only the
  missing chunks, and the final matrix is bitwise-identical.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

import repro
from repro.core.sts import STS
from repro.datasets.synthetic import taxi_dataset
from repro.errors import CheckpointError
from repro.eval.runner import run_all_experiments
from repro.parallel import ParallelSTS

SRC_DIR = str(Path(repro.__file__).resolve().parents[1])

#: Child process: completes fig10 (journaled), then SIGKILLs itself in
#: place of the second experiment — no cleanup handlers get to run.
_CHILD_SCRIPT = """
import os, signal
import repro.eval.runner as runner_mod
from repro.datasets.synthetic import taxi_dataset

def killer(dataset, seed=0):
    os.kill(os.getpid(), signal.SIGKILL)

runner_mod._EXPERIMENTS = dict(runner_mod._EXPERIMENTS)
runner_mod._EXPERIMENTS["ext_sensitivity"] = (killer, "killer stand-in")
dataset = taxi_dataset(n_trajectories=4, seed=4)
runner_mod.run_all_experiments(
    dataset, only=["fig10", "ext_sensitivity"], checkpoint_dir={ckpt_dir!r}
)
raise SystemExit("unreachable: the killer experiment should have fired")
"""


class TestExperimentSigkillResume:
    def test_sigkilled_run_resumes_and_matches_clean_run(self, tmp_path):
        ckpt_dir = str(tmp_path / "ckpt")
        script = tmp_path / "child.py"
        script.write_text(_CHILD_SCRIPT.format(ckpt_dir=ckpt_dir))

        proc = subprocess.run(
            [sys.executable, str(script)],
            env={**os.environ, "PYTHONPATH": SRC_DIR},
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == -signal.SIGKILL, proc.stderr
        # Journal filenames carry the run's fingerprint hash.
        assert list(Path(ckpt_dir).glob("fig10-*.json"))
        assert not list(Path(ckpt_dir).glob("ext_sensitivity*.json"))

        dataset = taxi_dataset(n_trajectories=4, seed=4)
        resumed = run_all_experiments(
            dataset, only=["fig10", "ext_sensitivity"], checkpoint_dir=ckpt_dir
        )
        assert resumed.resumed == ["fig10"]

        clean = run_all_experiments(dataset, only=["fig10", "ext_sensitivity"])
        assert clean.resumed == []
        assert set(resumed.results) == set(clean.results)
        for exp_id in clean.results:
            assert (
                resumed.results[exp_id].to_dict() == clean.results[exp_id].to_dict()
            ), f"resumed {exp_id} differs from clean run"

    def test_different_seed_gets_its_own_journal_in_shared_dir(self, tmp_path):
        # Fingerprint-hashed filenames: a different configuration sharing
        # the directory computes into its own journal instead of erroring.
        ckpt_dir = str(tmp_path / "ckpt")
        dataset = taxi_dataset(n_trajectories=4, seed=4)
        first = run_all_experiments(dataset, only=["fig10"], checkpoint_dir=ckpt_dir)
        assert first.resumed == []
        other = run_all_experiments(
            dataset, seed=1, only=["fig10"], checkpoint_dir=ckpt_dir
        )
        assert other.resumed == []  # computed fresh, not spliced from seed 0
        assert len(list(Path(ckpt_dir).glob("fig10-*.json"))) == 2
        # And each run resumes from its own journal on rerun.
        again = run_all_experiments(
            dataset, seed=1, only=["fig10"], checkpoint_dir=ckpt_dir
        )
        assert again.resumed == ["fig10"]
        assert again.results["fig10"].to_dict() == other.results["fig10"].to_dict()


class TestPairwiseJournalResume:
    def test_truncated_journal_resumes_bitwise_identical(
        self, grid, gallery, clean_serial, tmp_path
    ):
        journal = tmp_path / "pairwise.json"
        wrapper = ParallelSTS(STS(grid), n_jobs=2, backend="thread")
        first = wrapper.pairwise(gallery, checkpoint=journal)
        assert np.array_equal(first, clean_serial)
        data = json.loads(journal.read_text())
        n_chunks = len(data["chunks"])
        assert n_chunks >= 2

        # Simulate a run killed halfway: keep only half the journaled chunks.
        kept = dict(sorted(data["chunks"].items())[: n_chunks // 2])
        data["chunks"] = kept
        journal.write_text(json.dumps(data))

        resumed = ParallelSTS(STS(grid), n_jobs=2, backend="thread")
        out = resumed.pairwise(gallery, checkpoint=journal)
        assert np.array_equal(out, clean_serial)
        health = resumed.last_health
        assert health.resumed_chunks == len(kept)
        assert health.n_chunks == n_chunks

    def test_serial_pairwise_honors_checkpoint_argument(
        self, grid, gallery, clean_serial, tmp_path
    ):
        journal = tmp_path / "pairwise.json"
        out = STS(grid).pairwise(gallery, checkpoint=journal)
        assert np.array_equal(out, clean_serial)
        assert journal.exists()
        # A full journal means a rerun recomputes nothing.
        rerun = ParallelSTS(STS(grid), n_jobs=1, backend="serial")
        again = rerun.pairwise(gallery, checkpoint=journal)
        assert np.array_equal(again, clean_serial)
        health = rerun.last_health
        assert health.resumed_chunks == health.n_chunks > 0

    def test_journal_fingerprint_mismatch_raises(self, grid, gallery, tmp_path):
        journal = tmp_path / "pairwise.json"
        ParallelSTS(STS(grid), n_jobs=2, backend="thread").pairwise(
            gallery, checkpoint=journal
        )
        with pytest.raises(CheckpointError, match="different run"):
            # Different gallery size -> different fingerprint.
            ParallelSTS(STS(grid), n_jobs=2, backend="thread").pairwise(
                gallery[:3], checkpoint=journal
            )
