"""Leak-safety of the shared-memory arena under faults.

The ownership protocol says the parent owns the segment and unlinks it
exactly once, no matter how the run ends: clean exit, a worker taken by
SIGKILL, a hang that forces the supervisor to kill the pool, or a
degradation off the process rung entirely.  These tests assert the
protocol's observable consequence — ``/dev/shm`` holds no new ``psm_*``
segment after the run — and that Python's ``resource_tracker`` agrees
(no "leaked shared_memory" warning at interpreter shutdown).
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.core.sts import STS
from repro.parallel import ParallelSTS

from .faults import FaultyMeasure

SHM_DIR = Path("/dev/shm")

pytestmark = pytest.mark.skipif(
    not SHM_DIR.is_dir(), reason="needs a POSIX /dev/shm to observe segments"
)


def _segments() -> set[str]:
    """The Python shared-memory segments currently in /dev/shm."""
    return {p.name for p in SHM_DIR.iterdir() if p.name.startswith("psm_")}


class ProcessAllergicMeasure:
    """Kills any worker *process* that scores with it; fine in threads.

    Deterministic degradation driver: every process-pool round dies with
    a SIGKILL-equivalent (``os._exit``), so the supervisor must walk the
    ladder to the thread rung — where the pid check passes — while the
    arena it broadcast for the process rung has to be cleaned up.
    """

    def __init__(self, base):
        self.base = base
        self.home_pid = os.getpid()

    @property
    def name(self) -> str:
        return f"process-allergic({getattr(self.base, 'name', 'measure')})"

    def similarity(self, tra1, tra2) -> float:
        if os.getpid() != self.home_pid:
            os._exit(1)
        return self.base.similarity(tra1, tra2)


class TestNoLeakedSegments:
    def test_normal_run_leaves_no_segment(self, grid, gallery, clean_serial):
        before = _segments()
        wrapper = ParallelSTS(STS(grid), n_jobs=2, backend="process", shm=True)
        out = wrapper.pairwise(gallery)
        assert np.array_equal(out, clean_serial)
        assert _segments() <= before

    def test_persistent_close_releases_segment(self, grid, gallery, clean_serial):
        before = _segments()
        with ParallelSTS(
            STS(grid), n_jobs=2, backend="process", shm=True, persistent=True
        ) as wrapper:
            out = wrapper.pairwise(gallery)
            assert np.array_equal(out, clean_serial)
            assert wrapper._arena is not None  # still broadcast while warm
        assert _segments() <= before

    def test_sigkilled_worker_leaves_no_segment(
        self, grid, gallery, clean_serial, tmp_path
    ):
        before = _segments()
        faulty = FaultyMeasure(
            STS(grid), "crash", ("a", "c"), tmp_path / "crash.token"
        )
        wrapper = ParallelSTS(
            faulty, n_jobs=2, backend="process", shm=True,
            max_retries=3, backoff_base=0.0,
        )
        out = wrapper.pairwise(gallery)
        assert np.array_equal(out, clean_serial)
        assert wrapper.last_health.worker_crashes >= 1
        assert _segments() <= before

    def test_hung_worker_killed_pool_leaves_no_segment(
        self, grid, gallery, clean_serial, tmp_path
    ):
        before = _segments()
        faulty = FaultyMeasure(
            STS(grid), "hang", ("a", "c"), tmp_path / "hang.token",
            hang_seconds=60.0,
        )
        wrapper = ParallelSTS(
            faulty, n_jobs=2, backend="process", shm=True,
            chunk_timeout=1.5, max_retries=3, backoff_base=0.0,
        )
        out = wrapper.pairwise(gallery)
        assert np.array_equal(out, clean_serial)
        assert wrapper.last_health.timeouts >= 1
        assert _segments() <= before

    def test_degradation_to_threads_announces_and_leaves_no_segment(
        self, grid, gallery, clean_serial
    ):
        before = _segments()
        wrapper = ParallelSTS(
            ProcessAllergicMeasure(STS(grid)),
            n_jobs=2, backend="process", shm=True,
            max_retries=1, backoff_base=0.0,
        )
        with pytest.warns(RuntimeWarning, match="falling back to the pickling"):
            out = wrapper.pairwise(gallery)
        assert np.array_equal(out, clean_serial)
        health = wrapper.last_health
        assert any(step.startswith("process->") for step in health.degradations)
        assert "thread" in health.backends_used
        assert _segments() <= before


class TestResourceTrackerSilence:
    """The tracker's shutdown audit must not flag our segments."""

    _SCRIPT = """
import numpy as np
from repro.core.grid import Grid
from repro.core.sts import STS
from repro.core.trajectory import Trajectory
from repro.parallel import ParallelSTS

grid = Grid(0, 0, 40, 20, cell_size=2.0)
gallery = [
    Trajectory.from_arrays(
        xs, [y] * len(xs), np.array([0.0, 5.0, 10.0, 15.0]) + t0, object_id=oid
    )
    for oid, xs, y, t0 in [
        ("a", [2.0, 8.0, 14.0, 20.0], 10.0, 0.0),
        ("b", [4.0, 10.0, 16.0, 22.0], 10.0, 2.0),
        ("c", [2.0, 8.0, 14.0, 20.0], 4.0, 0.0),
    ]
]
serial = STS(grid).pairwise(gallery)
parallel = ParallelSTS(STS(grid), n_jobs=2, backend="process", shm=True)
assert np.array_equal(parallel.pairwise(gallery), serial)
print("OK")
"""

    def test_no_leak_warning_at_interpreter_exit(self):
        src = str(Path(__file__).resolve().parents[2] / "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = src + os.pathsep * bool(env.get("PYTHONPATH")) + env.get(
            "PYTHONPATH", ""
        )
        proc = subprocess.run(
            [sys.executable, "-W", "error::UserWarning", "-c", self._SCRIPT],
            capture_output=True,
            text=True,
            env=env,
            timeout=300,
        )
        assert proc.returncode == 0, proc.stderr
        assert "OK" in proc.stdout
        assert "leaked shared_memory" not in proc.stderr
        assert "resource_tracker" not in proc.stderr
