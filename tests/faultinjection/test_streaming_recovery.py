"""Chaos harness for the streaming WAL: kill, corrupt, fill the disk.

Each scenario drives the seeded workload from
:mod:`tests.faultinjection.chaos_child` into a fault, recovers the WAL
directory with :meth:`StreamingColocationDetector.recover`, and asserts
the durability invariants of ``repro.streaming_wal``:

* after a ``SIGKILL`` at *any* schedule point, the recovered detector's
  state — windows, pending queue, stream clock, shed/malformed/duplicate
  counters — is **bitwise identical** to an uncrashed reference fed the
  same command prefix, and so are its :class:`PairScore` results;
* no command acknowledged by ``offer``/``ingest``/``drain`` before the
  kill is lost (exactly-once resume, including crash → recover → crash);
* torn tail frames are truncated and *counted*, never crashed on;
* damage to acknowledged history (a corrupt middle segment) refuses
  recovery loudly with :class:`WALCorruptionError`;
* a full disk fails the *command*, not the detector: state is unchanged
  and the stream resumes once space frees up.

Seeds come from the fixed matrix ``{0, 1, 2}``; CI shards them via the
``REPRO_CHAOS_SEED`` environment variable.  When
``REPRO_CHAOS_ARTIFACT_DIR`` is set, WAL directories are created under
it (instead of pytest's tmp dir) so a failing run's journal can be
uploaded for post-mortem.
"""

from __future__ import annotations

import json
import os
import shutil
import signal
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.errors import WALCorruptionError, WALWriteError
from repro.obs import MetricsRegistry
from repro.streaming import StreamingColocationDetector
from repro.streaming_wal import StreamingWAL, _list_segments, load_wal

from . import chaos_child

CHILD = Path(chaos_child.__file__).resolve()
SRC = CHILD.parents[2] / "src"

ALL_SEEDS = (0, 1, 2)


def _selected_seeds():
    chosen = os.environ.get("REPRO_CHAOS_SEED")
    if chosen is None:
        return ALL_SEEDS
    return tuple(int(s) for s in chosen.split(","))


@pytest.fixture(params=_selected_seeds())
def seed(request):
    return request.param


@pytest.fixture
def wal_dir(tmp_path, request):
    base = os.environ.get("REPRO_CHAOS_ARTIFACT_DIR")
    if not base:
        return tmp_path / "wal"
    safe = "".join(c if c.isalnum() or c in "._-" else "_" for c in request.node.name)
    path = Path(base).resolve() / safe
    shutil.rmtree(path, ignore_errors=True)
    path.parent.mkdir(parents=True, exist_ok=True)
    return path


def kill_point(seed, lo=20, hi=chaos_child.N_OPS - 10):
    """Deterministic per-seed fault point inside the schedule."""
    return int(np.random.default_rng(1000 + seed).integers(lo, hi))


def run_child(wal_dir, seed, kill_at, *, fsync_every=1, snapshot_every=25,
              segment_max=32):
    env = dict(os.environ, PYTHONPATH=str(SRC))
    return subprocess.run(
        [
            sys.executable, str(CHILD), str(wal_dir), str(seed), str(kill_at),
            str(fsync_every), str(snapshot_every), str(segment_max),
        ],
        capture_output=True, text=True, timeout=120, env=env,
    )


def reference_after(seed, upto):
    """An uncrashed detector fed the first ``upto`` schedule commands."""
    detector = chaos_child.make_detector(registry=MetricsRegistry())
    for op in chaos_child.command_schedule(seed)[:upto]:
        chaos_child.apply_op(detector, op)
    return detector


def state_json(detector):
    """Canonical bitwise state: JSON reprs are exact for IEEE doubles,
    and NaN/±Infinity serialize to stable literals (dict equality would
    trip over NaN != NaN in the pending queue)."""
    return json.dumps(detector._state_dict(), sort_keys=True)


def assert_bitwise_equal(recovered, reference, scores=True):
    assert state_json(recovered) == state_json(reference)
    if scores:
        assert recovered.evaluate() == reference.evaluate()


class TestSigkill:
    def test_kill_mid_stream_recovers_bitwise(self, wal_dir, seed):
        kill_at = kill_point(seed)
        proc = run_child(wal_dir, seed, kill_at)
        assert proc.returncode == -signal.SIGKILL, proc.stderr
        recovered = StreamingColocationDetector.recover(
            wal_dir, registry=MetricsRegistry()
        )
        # Every command acknowledged before the kill — and nothing else.
        report = recovered.last_recovery
        assert report.snapshot_lsn + report.replayed + report.skipped >= kill_at
        assert_bitwise_equal(recovered, reference_after(seed, kill_at))
        recovered.close()

    def test_kill_recover_kill_recover(self, wal_dir, seed):
        """Exactly-once survives repeated crashes with resumed ingest."""
        first = kill_point(seed, lo=20, hi=60)
        second = kill_point(seed, lo=70, hi=chaos_child.N_OPS - 10)
        proc = run_child(wal_dir, seed, first)
        assert proc.returncode == -signal.SIGKILL, proc.stderr
        survivor = StreamingColocationDetector.recover(
            wal_dir, registry=MetricsRegistry(), snapshot_every=25,
            segment_max_records=32,
        )
        ops = chaos_child.command_schedule(seed)
        for op in ops[first:second]:
            chaos_child.apply_op(survivor, op)
        # Second crash: abandon the survivor without flush or close
        # (fsync_every=1 made every acknowledged command durable).
        del survivor
        recovered = StreamingColocationDetector.recover(
            wal_dir, registry=MetricsRegistry()
        )
        assert_bitwise_equal(recovered, reference_after(seed, second))
        recovered.close()

    def test_uncrashed_child_completes(self, wal_dir, seed):
        proc = run_child(wal_dir, seed, -1)
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.startswith("DONE")
        recovered = StreamingColocationDetector.recover(
            wal_dir, registry=MetricsRegistry()
        )
        assert_bitwise_equal(
            recovered, reference_after(seed, chaos_child.N_OPS), scores=False
        )
        recovered.close()


class TestKillDuringSnapshot:
    def test_kill_between_snapshot_and_rotation(self, wal_dir, seed, monkeypatch):
        """Crash after the snapshot rename but before segment rotation.

        The directory then holds a snapshot covering the whole journal
        *plus* an un-rotated segment full of records below the snapshot
        LSN — recovery must skip them all and still match the reference.
        """
        kill_at = kill_point(seed)

        class Killed(BaseException):
            pass

        def killed(self):
            raise Killed

        wal = StreamingWAL(
            wal_dir, fsync_every=1, snapshot_every=None,
            segment_max_records=10_000, registry=MetricsRegistry(),
        )
        detector = chaos_child.make_detector(wal=wal, registry=MetricsRegistry())
        for op in chaos_child.command_schedule(seed)[:kill_at]:
            chaos_child.apply_op(detector, op)
        monkeypatch.setattr(StreamingWAL, "_rotate", killed)
        with pytest.raises(Killed):
            detector.snapshot()
        monkeypatch.undo()
        del detector, wal

        recovery = load_wal(wal_dir, registry=MetricsRegistry())
        assert recovery.state is not None
        assert recovery.report.replayed == 0  # snapshot covers every record
        recovered = StreamingColocationDetector.recover(
            wal_dir, registry=MetricsRegistry()
        )
        assert_bitwise_equal(
            recovered, reference_after(seed, kill_at), scores=False
        )
        recovered.close()


class TestTornAndCorrupt:
    def test_torn_append_truncated_and_counted(self, wal_dir, seed):
        """A partial frame at the tail — the on-disk shape of a kill
        mid-``write()`` — is truncated, counted, and costs nothing that
        was acknowledged."""
        kill_at = kill_point(seed)
        proc = run_child(wal_dir, seed, kill_at)
        assert proc.returncode == -signal.SIGKILL, proc.stderr
        segments = _list_segments(wal_dir)
        with open(segments[-1][1], "ab") as handle:
            handle.write(b"\xde\xad\xbe\xef\x00torn-frame")
        registry = MetricsRegistry()
        recovered = StreamingColocationDetector.recover(wal_dir, registry=registry)
        assert recovered.last_recovery.truncated_records >= 1
        assert registry.value("repro_wal_records_total")['outcome="truncated"'] >= 1
        assert_bitwise_equal(
            recovered, reference_after(seed, kill_at), scores=False
        )
        recovered.close()

    def test_corrupt_middle_segment_refuses_loudly(self, wal_dir, seed):
        proc = run_child(wal_dir, seed, -1, snapshot_every=0, segment_max=16)
        assert proc.returncode == 0, proc.stderr
        segments = _list_segments(wal_dir)
        assert len(segments) >= 3
        victim = segments[len(segments) // 2][1]
        blob = bytearray(victim.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        victim.write_bytes(blob)
        with pytest.raises(WALCorruptionError):
            StreamingColocationDetector.recover(wal_dir, registry=MetricsRegistry())


class TestDiskFull:
    def test_quota_exhaustion_fails_command_not_detector(self, wal_dir, seed,
                                                         monkeypatch):
        """A tiny write quota: appends fail with WALWriteError once the
        budget runs out, the failing command leaves state untouched, and
        retrying after "freeing space" resumes exactly-once."""
        import repro.streaming_wal as sw

        quota = {"left": 900}
        real_write = os.write

        def metered_write(fd, data):
            if quota["left"] <= 0:
                raise OSError(28, "No space left on device")
            allowed = data[: quota["left"]]
            written = real_write(fd, allowed)
            quota["left"] -= written
            return written

        monkeypatch.setattr(sw, "_os_write", metered_write)
        wal = StreamingWAL(
            wal_dir, fsync_every=1, snapshot_every=None,
            segment_max_records=10_000, registry=MetricsRegistry(),
        )
        detector = chaos_child.make_detector(wal=wal, registry=MetricsRegistry())
        failures = 0
        for op in chaos_child.command_schedule(seed):
            for attempt in (1, 2):
                before = state_json(detector)
                try:
                    chaos_child.apply_op(detector, op)
                    break
                except WALWriteError:
                    failures += 1
                    assert state_json(detector) == before
                    quota["left"] = 10**9  # operator frees disk space
            else:  # pragma: no cover - retry after refill must succeed
                pytest.fail("append still failing after space was freed")
        assert failures >= 1
        detector.close()
        monkeypatch.undo()
        recovered = StreamingColocationDetector.recover(
            wal_dir, registry=MetricsRegistry()
        )
        assert_bitwise_equal(
            recovered,
            reference_after(seed, chaos_child.N_OPS),
            scores=False,
        )
        recovered.close()
