"""Fault-injection suite: prove every recovery path actually recovers.

The measures in :mod:`tests.faultinjection.faults` deterministically
crash a worker process, hang it, raise, or corrupt a score — exactly
once — so these tests exercise the supervisor's retry/timeout/degrade
ladder, the checkpoint-resume machinery (including a real ``SIGKILL``),
and the degenerate-input sanitization gate end-to-end.
"""
