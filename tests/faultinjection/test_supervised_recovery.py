"""Worker death, hangs, raised errors and corrupt scores all recover.

The acceptance bar: after any injected fault the supervised run's final
matrix is **bitwise-identical** to a clean serial run, and the
:class:`~repro.parallel.supervisor.RunHealth` report says what happened.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.sts import STS
from repro.parallel import ParallelSTS

from .faults import FaultyMeasure


def _faulty(grid, kind, tmp_path, **kwargs):
    return FaultyMeasure(
        STS(grid), kind, target=("a", "d"), token_path=tmp_path / "token", **kwargs
    )


class TestWorkerDeath:
    def test_crashed_worker_chunk_is_retried_bitwise_identical(
        self, grid, gallery, clean_serial, tmp_path
    ):
        faulty = _faulty(grid, "crash", tmp_path)
        wrapper = ParallelSTS(
            faulty, n_jobs=2, backend="process", max_retries=3, backoff_base=0.0
        )
        out = wrapper.pairwise(gallery)
        assert np.array_equal(out, clean_serial)
        health = wrapper.last_health
        assert health.worker_crashes >= 1
        assert health.retries >= 1
        assert not health.ok
        assert faulty.token.fired

    def test_clean_run_reports_healthy(self, grid, gallery, clean_serial):
        wrapper = ParallelSTS(STS(grid), n_jobs=2, backend="process")
        out = wrapper.pairwise(gallery)
        assert np.array_equal(out, clean_serial)
        assert wrapper.last_health.ok


class TestHang:
    def test_hung_worker_is_timed_out_killed_and_retried(
        self, grid, gallery, clean_serial, tmp_path
    ):
        faulty = _faulty(grid, "hang", tmp_path, hang_seconds=60.0)
        wrapper = ParallelSTS(
            faulty,
            n_jobs=2,
            backend="process",
            chunk_timeout=1.5,
            max_retries=3,
            backoff_base=0.0,
        )
        out = wrapper.pairwise(gallery)
        assert np.array_equal(out, clean_serial)
        health = wrapper.last_health
        assert health.timeouts >= 1
        assert any(e.kind == "timeout" for e in health.events)


class TestRaisedError:
    @pytest.mark.parametrize("backend", ["process", "thread"])
    def test_raised_error_is_retried(self, grid, gallery, clean_serial, tmp_path, backend):
        faulty = _faulty(grid, "raise", tmp_path)
        wrapper = ParallelSTS(
            faulty, n_jobs=2, backend=backend, max_retries=3, backoff_base=0.0
        )
        out = wrapper.pairwise(gallery)
        assert np.array_equal(out, clean_serial)
        health = wrapper.last_health
        assert health.retries >= 1
        assert any(e.kind == "error" for e in health.events)


class TestCorruptScore:
    def test_nan_score_is_detected_and_rescored(
        self, grid, gallery, clean_serial, tmp_path
    ):
        faulty = _faulty(grid, "corrupt", tmp_path)
        wrapper = ParallelSTS(
            faulty, n_jobs=2, backend="thread", max_retries=3, backoff_base=0.0
        )
        out = wrapper.pairwise(gallery)
        assert np.array_equal(out, clean_serial)
        assert np.isfinite(out).all()
        health = wrapper.last_health
        assert health.corrupt_scores >= 1
        assert any(e.kind == "corrupt-score" for e in health.events)


class TestDegradationLadder:
    def test_persistent_failure_degrades_and_skip_policy_fills_nan(
        self, grid, gallery, tmp_path
    ):
        class AlwaysFails:
            """Raises on the target pair every single time."""

            name = "always-fails"

            def __init__(self, base):
                self.base = base

            def similarity(self, tra1, tra2):
                if {tra1.object_id, tra2.object_id} == {"a", "d"}:
                    raise RuntimeError("permanent fault")
                return self.base.similarity(tra1, tra2)

        wrapper = ParallelSTS(
            AlwaysFails(STS(grid)),
            n_jobs=2,
            backend="thread",
            max_retries=1,
            backoff_base=0.0,
            on_error="skip",
        )
        out = wrapper.pairwise(gallery)
        health = wrapper.last_health
        assert health.degradations == ["thread->serial"]
        assert health.skipped_pairs >= 1
        # Only the poisoned pair is NaN; everything else was scored.
        assert np.isnan(out[0, 3]) and np.isnan(out[3, 0])
        mask = ~np.isnan(out)
        assert mask.sum() == out.size - 2
        assert np.isfinite(out[mask]).all()

    def test_persistent_failure_raises_by_default(self, grid, gallery, tmp_path):
        class AlwaysFails:
            name = "always-fails"

            def __init__(self, base):
                self.base = base

            def similarity(self, tra1, tra2):
                if {tra1.object_id, tra2.object_id} == {"a", "d"}:
                    raise RuntimeError("permanent fault")
                return self.base.similarity(tra1, tra2)

        wrapper = ParallelSTS(
            AlwaysFails(STS(grid)),
            n_jobs=2,
            backend="thread",
            max_retries=1,
            backoff_base=0.0,
        )
        with pytest.raises(RuntimeError, match="permanent fault"):
            wrapper.pairwise(gallery)
