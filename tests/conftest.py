"""Shared fixtures: small deterministic trajectories, grids and corpora."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.grid import Grid
from repro.core.trajectory import Trajectory, TrajectoryPoint
from repro.datasets import mall_dataset, taxi_dataset


@pytest.fixture
def straight_trajectory() -> Trajectory:
    """Ten points walking east at exactly 1 m/s, one sample per second."""
    return Trajectory.from_arrays(
        xs=np.arange(10.0), ys=np.zeros(10), ts=np.arange(10.0), object_id="straight"
    )


@pytest.fixture
def l_shaped_trajectory() -> Trajectory:
    """East for 5 s then north for 5 s, at 2 m/s."""
    xs = [0, 2, 4, 6, 8, 10, 10, 10, 10, 10, 10]
    ys = [0, 0, 0, 0, 0, 0, 2, 4, 6, 8, 10]
    return Trajectory.from_arrays(xs, ys, np.arange(11.0), object_id="l-shape")


@pytest.fixture
def single_point_trajectory() -> Trajectory:
    return Trajectory([TrajectoryPoint(3.0, 4.0, 5.0)], object_id="lonely")


@pytest.fixture
def small_grid() -> Grid:
    """A 10x10 grid of 2 m cells over [0, 20] x [0, 20]."""
    return Grid(0.0, 0.0, 20.0, 20.0, cell_size=2.0)


@pytest.fixture(scope="session")
def tiny_mall_dataset():
    """Session-cached small mall corpus (simulation is the slow part)."""
    return mall_dataset(n_trajectories=6, seed=5)


@pytest.fixture(scope="session")
def tiny_taxi_dataset():
    """Session-cached small taxi corpus."""
    return taxi_dataset(n_trajectories=6, seed=5)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(42)
