"""Shared fixtures: small deterministic trajectories, grids and corpora.

Also the process-wide isolation layer: tests that flip
``set_parallel_defaults`` or the ``REPRO_*`` environment switches used
to leak into whichever test ran next; the autouse fixtures below
snapshot and restore that state around every test.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.grid import Grid
from repro.core.trajectory import Trajectory, TrajectoryPoint
from repro.datasets import mall_dataset, taxi_dataset
from repro.parallel import get_parallel_defaults, set_parallel_defaults

#: Environment switches that alter process-wide behavior when set.
_REPRO_ENV_VARS = (
    "REPRO_OBS",
    "REPRO_OBS_DELTA_S",
    "REPRO_CLUSTER_WORKER",
    "REPRO_CLUSTER_LOG_DIR",
)


@pytest.fixture(autouse=True)
def _isolate_parallel_defaults():
    """Snapshot/restore the process-wide shm/chunking defaults."""
    saved = get_parallel_defaults()
    yield
    set_parallel_defaults(**saved)


@pytest.fixture(autouse=True)
def _isolate_repro_env():
    """Snapshot/restore the ``REPRO_*`` environment switches."""
    saved = {name: os.environ.get(name) for name in _REPRO_ENV_VARS}
    yield
    for name, value in saved.items():
        if value is None:
            os.environ.pop(name, None)
        else:
            os.environ[name] = value


@pytest.fixture
def straight_trajectory() -> Trajectory:
    """Ten points walking east at exactly 1 m/s, one sample per second."""
    return Trajectory.from_arrays(
        xs=np.arange(10.0), ys=np.zeros(10), ts=np.arange(10.0), object_id="straight"
    )


@pytest.fixture
def l_shaped_trajectory() -> Trajectory:
    """East for 5 s then north for 5 s, at 2 m/s."""
    xs = [0, 2, 4, 6, 8, 10, 10, 10, 10, 10, 10]
    ys = [0, 0, 0, 0, 0, 0, 2, 4, 6, 8, 10]
    return Trajectory.from_arrays(xs, ys, np.arange(11.0), object_id="l-shape")


@pytest.fixture
def single_point_trajectory() -> Trajectory:
    return Trajectory([TrajectoryPoint(3.0, 4.0, 5.0)], object_id="lonely")


@pytest.fixture
def small_grid() -> Grid:
    """A 10x10 grid of 2 m cells over [0, 20] x [0, 20]."""
    return Grid(0.0, 0.0, 20.0, 20.0, cell_size=2.0)


@pytest.fixture(scope="session")
def tiny_mall_dataset():
    """Session-cached small mall corpus (simulation is the slow part)."""
    return mall_dataset(n_trajectories=6, seed=5)


@pytest.fixture(scope="session")
def tiny_taxi_dataset():
    """Session-cached small taxi corpus."""
    return taxi_dataset(n_trajectories=6, seed=5)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(42)
