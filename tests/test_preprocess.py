"""Unit tests for trajectory preprocessing."""

import numpy as np
import pytest

from repro.core.trajectory import Trajectory
from repro.preprocess import (
    clean,
    deduplicate_timestamps,
    remove_speed_outliers,
    smooth,
    split_on_gaps,
)


class TestDeduplicateTimestamps:
    def test_collapses_duplicates_to_centroid(self):
        traj = Trajectory.from_arrays([0, 2, 4, 10], [0, 2, 0, 0], [0, 1, 1, 2])
        out = deduplicate_timestamps(traj)
        assert len(out) == 3
        assert out[1].x == pytest.approx(3.0)
        assert out[1].y == pytest.approx(1.0)
        assert out[1].t == 1.0

    def test_no_duplicates_is_identity(self, straight_trajectory):
        out = deduplicate_timestamps(straight_trajectory)
        assert out == straight_trajectory

    def test_empty(self):
        empty = Trajectory([])
        assert len(deduplicate_timestamps(empty)) == 0

    def test_preserves_object_id(self, straight_trajectory):
        assert deduplicate_timestamps(straight_trajectory).object_id == "straight"

    def test_all_same_timestamp(self):
        traj = Trajectory.from_arrays([0, 2, 4], [0, 0, 0], [5, 5, 5])
        out = deduplicate_timestamps(traj)
        assert len(out) == 1
        assert out[0].x == pytest.approx(2.0)


class TestSplitOnGaps:
    def test_splits_at_large_gaps(self):
        ts = [0, 1, 2, 100, 101, 102]
        traj = Trajectory.from_arrays(np.arange(6.0), np.zeros(6), ts, "dev")
        segments = split_on_gaps(traj, max_gap=10.0)
        assert len(segments) == 2
        assert [len(s) for s in segments] == [3, 3]
        assert segments[0].object_id == "dev#0"
        assert segments[1].object_id == "dev#1"

    def test_no_gap_keeps_one_segment_same_id(self, straight_trajectory):
        segments = split_on_gaps(straight_trajectory, max_gap=10.0)
        assert len(segments) == 1
        assert segments[0].object_id == "straight"

    def test_short_segments_dropped(self):
        ts = [0, 100, 101, 102]
        traj = Trajectory.from_arrays(np.arange(4.0), np.zeros(4), ts)
        segments = split_on_gaps(traj, max_gap=10.0, min_points=2)
        assert len(segments) == 1
        assert len(segments[0]) == 3

    def test_empty_input(self):
        assert split_on_gaps(Trajectory([]), max_gap=10.0) == []

    def test_validation(self, straight_trajectory):
        with pytest.raises(ValueError):
            split_on_gaps(straight_trajectory, max_gap=0.0)
        with pytest.raises(ValueError):
            split_on_gaps(straight_trajectory, max_gap=1.0, min_points=0)

    def test_boundary_gap_exactly_max_not_split(self):
        traj = Trajectory.from_arrays([0, 1], [0, 0], [0, 10])
        assert len(split_on_gaps(traj, max_gap=10.0)) == 1


class TestRemoveSpeedOutliers:
    def test_removes_gps_jump(self):
        # steady 1 m/s walk with one 1000 m teleport in the middle
        xs = [0.0, 1.0, 2.0, 1000.0, 4.0, 5.0]
        traj = Trajectory.from_arrays(xs, np.zeros(6), np.arange(6.0))
        out = remove_speed_outliers(traj, max_speed=10.0)
        assert 1000.0 not in [p.x for p in out]
        assert len(out) == 5

    def test_clean_trajectory_unchanged(self, straight_trajectory):
        out = remove_speed_outliers(straight_trajectory, max_speed=10.0)
        assert out == straight_trajectory

    def test_consecutive_jumps_removed(self):
        xs = [0.0, 1.0, 500.0, 501.0, 4.0, 5.0]
        traj = Trajectory.from_arrays(xs, np.zeros(6), np.arange(6.0))
        out = remove_speed_outliers(traj, max_speed=10.0)
        assert all(p.x < 100 for p in out)

    def test_first_point_always_kept(self):
        traj = Trajectory.from_arrays([0.0, 1.0], [0.0, 0.0], [0.0, 1.0])
        out = remove_speed_outliers(traj, max_speed=0.1)
        assert out[0] == traj[0]

    def test_validation(self, straight_trajectory):
        with pytest.raises(ValueError):
            remove_speed_outliers(straight_trajectory, max_speed=0.0)
        with pytest.raises(ValueError):
            remove_speed_outliers(straight_trajectory, max_speed=1.0, max_passes=0)

    def test_resulting_speeds_bounded(self, rng):
        xs = np.cumsum(rng.normal(1, 0.2, 30))
        xs[10] += 300.0  # spike
        traj = Trajectory.from_arrays(xs, np.zeros(30), np.arange(30.0))
        out = remove_speed_outliers(traj, max_speed=5.0)
        assert (out.speeds() <= 5.0 + 1e-9).all()


class TestSmooth:
    def test_reduces_noise(self, rng):
        ts = np.arange(50.0)
        clean_xs = 2.0 * ts
        noisy = Trajectory.from_arrays(clean_xs + rng.normal(0, 3, 50), np.zeros(50), ts)
        smoothed = smooth(noisy, window=5)
        raw_err = np.abs(noisy.xy[:, 0] - clean_xs).mean()
        new_err = np.abs(smoothed.xy[:, 0] - clean_xs).mean()
        assert new_err < raw_err

    def test_preserves_timestamps_and_length(self, straight_trajectory):
        out = smooth(straight_trajectory, window=3)
        assert len(out) == len(straight_trajectory)
        np.testing.assert_allclose(out.timestamps, straight_trajectory.timestamps)

    def test_window_one_identity(self, straight_trajectory):
        assert smooth(straight_trajectory, window=1) == straight_trajectory

    def test_even_window_rejected(self, straight_trajectory):
        with pytest.raises(ValueError, match="odd"):
            smooth(straight_trajectory, window=4)

    def test_straight_line_invariant(self, straight_trajectory):
        out = smooth(straight_trajectory, window=3)
        np.testing.assert_allclose(out.xy[:, 1], 0.0)
        # interior points of a uniform line are unchanged
        np.testing.assert_allclose(out.xy[1:-1, 0], straight_trajectory.xy[1:-1, 0])


class TestCleanPipeline:
    def test_end_to_end(self):
        # duplicate timestamps + a GPS spike + a session gap
        xs = [0.0, 0.5, 1.0, 800.0, 3.0, 4.0, 100.0, 101.0, 102.0]
        ys = [0.0] * 9
        ts = [0.0, 0.0, 1.0, 2.0, 3.0, 4.0, 500.0, 501.0, 502.0]
        traj = Trajectory.from_arrays(xs, ys, ts, "dev")
        trips = clean(traj, max_speed=10.0, max_gap=60.0)
        assert len(trips) == 2
        for trip in trips:
            assert (trip.speeds() <= 10.0 + 1e-9).all()
        assert len(trips[0]) == 4  # dedup merged the first two, spike removed

    def test_everything_filtered(self):
        traj = Trajectory.from_arrays([0.0], [0.0], [0.0])
        assert clean(traj, max_speed=10.0, max_gap=60.0, min_points=2) == []
