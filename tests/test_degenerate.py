"""Degenerate trajectories end-to-end: defined where the math is, typed errors where it is not.

The paper's machinery is defined for inputs that look pathological:

* a **single-point** trajectory has no speed samples, so its speed model
  degenerates to a near-stationary point mass and its STP at the lone
  observation time is just the normalized noise distribution (Eq. 5);
* **shared timestamps** carry no speed information and are simply
  skipped by the sample extractor (Eq. 6's ``S``);
* **zero-variance speeds** are kept well-defined by the KDE bandwidth
  floor (Silverman's rule degenerates at zero spread).

These tests pin that the whole stack — ``KDESpeedModel`` →
``TrajectorySTP`` → ``STS.similarity`` — computes *defined, finite*
scores for all three, and that the genuinely undefined cases raise the
structured errors of :mod:`repro.errors` (which still subclass
``ValueError`` for backward compatibility).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.grid import Grid
from repro.core.noise import GaussianNoiseModel
from repro.core.speed import KDESpeedModel
from repro.core.stprob import TrajectorySTP
from repro.core.sts import STS
from repro.core.trajectory import Trajectory, TrajectoryPoint
from repro.core.transition import SpeedTransitionModel
from repro.errors import (
    DegenerateTrajectoryError,
    MalformedRecordError,
    ReproError,
)
from repro.preprocess import sanitize_trajectories


@pytest.fixture()
def grid():
    return Grid(0, 0, 20, 20, cell_size=2.0)


def _traj(coords, object_id="x"):
    return Trajectory(
        [TrajectoryPoint(x, y, t) for x, y, t in coords], object_id=object_id
    )


def _stp_for(trajectory, grid):
    speed = KDESpeedModel.from_trajectory(trajectory)
    return TrajectorySTP(
        trajectory, grid, GaussianNoiseModel(grid.cell_size), SpeedTransitionModel(speed)
    )


class TestSinglePoint:
    def test_stp_at_own_timestamp_is_the_normalized_noise_distribution(self, grid):
        single = _traj([(10.0, 10.0, 5.0)])
        stp = _stp_for(single, grid)
        cells, probs = stp.stp(5.0)
        assert cells.size > 0
        assert probs.sum() == pytest.approx(1.0)
        # Eq. 5 case 1: the mass is the noise model's cell distribution
        # around the lone observation, renormalized over the grid.
        noise = GaussianNoiseModel(grid.cell_size)
        ref_cells, ref_probs = noise.cell_distribution(grid, 10.0, 10.0)
        ref = dict(zip(ref_cells.tolist(), (ref_probs / ref_probs.sum()).tolist()))
        got = dict(zip(cells.tolist(), probs.tolist()))
        assert set(got) == set(ref)
        for cell, p in got.items():
            assert p == pytest.approx(ref[cell])

    def test_sts_between_single_point_and_normal_trajectory_is_defined(self, grid):
        single = _traj([(10.0, 10.0, 5.0)], object_id="single")
        normal = _traj(
            [(8.0, 10.0, 0.0), (10.0, 10.0, 5.0), (12.0, 10.0, 10.0)],
            object_id="normal",
        )
        score = STS(grid).similarity(single, normal)
        assert np.isfinite(score)
        assert 0.0 <= score <= 1.0

    def test_speed_model_degenerates_to_stationary_point_mass(self):
        single = _traj([(10.0, 10.0, 5.0)])
        model = KDESpeedModel.from_trajectory(single)
        assert model.density(0.0) > model.density(5.0)


class TestSharedTimestamps:
    def test_speed_samples_skip_zero_dt_pairs(self):
        dup = _traj([(2.0, 2.0, 0.0), (4.0, 2.0, 5.0), (5.0, 2.0, 5.0)])
        speeds = dup.speeds()
        assert speeds.shape == (1,)  # only the 0 -> 5 s segment counts
        assert speeds[0] == pytest.approx(2.0 / 5.0)

    def test_sts_with_duplicate_timestamps_is_defined(self, grid):
        dup = _traj(
            [(2.0, 2.0, 0.0), (4.0, 2.0, 5.0), (5.0, 2.0, 5.0)], object_id="dup"
        )
        other = _traj(
            [(2.0, 4.0, 0.0), (4.0, 4.0, 5.0), (6.0, 4.0, 10.0)], object_id="other"
        )
        score = STS(grid).similarity(dup, other)
        assert np.isfinite(score)
        assert 0.0 <= score <= 1.0

    def test_pairwise_speed_at_zero_dt_raises_typed_error(self):
        a = TrajectoryPoint(0.0, 0.0, 3.0)
        b = TrajectoryPoint(1.0, 0.0, 3.0)
        with pytest.raises(DegenerateTrajectoryError):
            a.speed_to(b)


class TestZeroVarianceSpeeds:
    def test_constant_speed_kde_is_well_defined(self):
        # Equal spacing in time and space: every sample is exactly 1 m/s.
        traj = _traj([(float(k), 2.0, float(k)) for k in range(5)])
        speeds = traj.speeds()
        assert np.allclose(speeds, 1.0)
        model = KDESpeedModel.from_trajectory(traj)
        assert np.isfinite(model.density(1.0))
        assert model.density(1.0) > 0

    def test_sts_between_constant_speed_trajectories_is_defined(self, grid):
        a = _traj([(float(k), 2.0, float(k)) for k in range(5)], object_id="a")
        b = _traj([(float(k), 4.0, float(k)) for k in range(5)], object_id="b")
        score = STS(grid).similarity(a, b)
        assert np.isfinite(score)
        assert 0.0 <= score <= 1.0


class TestUndefinedCases:
    def test_empty_trajectory_raises_degenerate_error(self, grid):
        empty = Trajectory([], object_id="empty")
        ok = _traj([(2.0, 2.0, 0.0), (4.0, 2.0, 5.0)], object_id="ok")
        with pytest.raises(DegenerateTrajectoryError):
            STS(grid).similarity(empty, ok)
        with pytest.raises(DegenerateTrajectoryError):
            _stp_for(empty, grid)

    def test_non_finite_observation_raises_malformed_error(self):
        with pytest.raises(MalformedRecordError):
            TrajectoryPoint(float("nan"), 0.0, 0.0)
        with pytest.raises(MalformedRecordError):
            TrajectoryPoint(0.0, float("inf"), 0.0)

    def test_typed_errors_remain_valueerrors(self):
        # Backward compatibility: callers catching ValueError keep working.
        assert issubclass(DegenerateTrajectoryError, ValueError)
        assert issubclass(MalformedRecordError, ValueError)
        assert issubclass(DegenerateTrajectoryError, ReproError)
        assert issubclass(MalformedRecordError, ReproError)


class TestSanitizationEndToEnd:
    def test_skip_policy_keeps_defined_inputs_and_drops_undefined_ones(self, grid):
        corpus = [
            _traj([(2.0, 2.0, 0.0), (4.0, 2.0, 5.0)], object_id="good"),
            Trajectory([], object_id="empty"),
            _traj([(10.0, 10.0, 5.0)], object_id="single"),
        ]
        kept, report = sanitize_trajectories(corpus, on_error="skip", min_points=1)
        assert [t.object_id for t in kept] == ["good", "single"]
        assert report.skipped_trajectories == 1
        out = STS(grid).pairwise(kept)
        assert np.isfinite(out).all()
