"""Integration tests: full pipelines across modules.

These exercise the end-to-end flows the examples and benchmarks rely on:
simulate → sample → treat → measure → evaluate, on tiny corpora.
"""

import numpy as np
import pytest

from repro.core.noise import GaussianNoiseModel
from repro.core.sts import STS, sts_f, sts_g, sts_n
from repro.datasets import load_trajectories_csv, save_trajectories_csv
from repro.eval import (
    build_matching_pair,
    default_measures,
    evaluate_matching,
    grid_covering,
)
from repro.simulation import (
    FloorPlan,
    distort,
    downsample,
    poisson_times,
    sample_path,
    simulate_companions,
    simulate_visitors,
)


class TestCompanionDetection:
    """The paper's motivating application: detect people walking together."""

    @pytest.fixture(scope="class")
    def scenario(self):
        rng = np.random.default_rng(17)
        plan = FloorPlan.generate(rng=rng)
        leader_path, follower_path = simulate_companions(plan, rng, lateral_offset=1.5)
        stranger_paths = simulate_visitors(plan, 3, rng, time_window=0.0)

        def observe(path, oid):
            times = poisson_times(path.start_time, path.end_time, 15.0, rng)
            return sample_path(path, times, noise_std=3.0, rng=rng, object_id=oid)

        leader = observe(leader_path, "leader")
        follower = observe(follower_path, "follower")
        strangers = [observe(p, f"s{i}") for i, p in enumerate(stranger_paths)]
        corpus = [leader, follower, *strangers]
        grid = grid_covering(corpus, 3.0, margin=20.0)
        return leader, follower, strangers, grid

    def test_sts_detects_companion(self, scenario):
        leader, follower, strangers, grid = scenario
        measure = STS(grid, noise_model=GaussianNoiseModel(3.0))
        companion_score = measure.similarity(leader, follower)
        stranger_scores = [measure.similarity(leader, s) for s in strangers]
        assert companion_score > max(stranger_scores)

    def test_variants_also_rank_companion_first(self, scenario):
        leader, follower, strangers, grid = scenario
        corpus = [leader, follower, *strangers]
        for variant in (sts_n(grid), sts_g(grid, corpus), sts_f(grid, corpus)):
            companion = variant.similarity(leader, follower)
            others = [variant.similarity(leader, s) for s in strangers]
            assert companion >= max(others), variant.name


class TestMatchingPipeline:
    def test_full_pipeline_with_treatments(self, tiny_taxi_dataset):
        rng = np.random.default_rng(3)
        d1, d2 = build_matching_pair(tiny_taxi_dataset.trajectories)
        d1 = [distort(downsample(t, 0.6, rng), 10.0, rng) for t in d1]
        d2 = [distort(downsample(t, 0.6, rng), 10.0, rng) for t in d2]
        corpus = d1 + d2
        grid = grid_covering(corpus, tiny_taxi_dataset.cell_size, tiny_taxi_dataset.margin)
        measures = default_measures(grid, corpus, 15.0, include=["STS", "CATS"])
        for measure in measures.values():
            result = evaluate_matching(measure, d1, d2)
            assert result.precision >= 0.5  # tiny gallery, mild treatment

    def test_sts_survives_csv_roundtrip(self, tmp_path, tiny_mall_dataset):
        # similarity computed on reloaded trajectories matches the original
        trajectories = tiny_mall_dataset.trajectories[:3]
        path = tmp_path / "corpus.csv"
        save_trajectories_csv(trajectories, path)
        reloaded = load_trajectories_csv(path)
        grid = grid_covering(trajectories, 3.0, margin=20.0)
        measure = STS(grid, noise_model=GaussianNoiseModel(3.0))
        for orig, back in zip(trajectories, reloaded):
            assert orig == back
        a = measure.similarity(trajectories[0], trajectories[1])
        b = measure.similarity(reloaded[0], reloaded[1])
        assert a == pytest.approx(b)


class TestRobustnessShape:
    """Coarse shape assertions matching the paper's headline claims."""

    def test_sts_beats_wgm_under_heterogeneous_sampling(self, tiny_taxi_dataset):
        rng = np.random.default_rng(5)
        d1, d2full = build_matching_pair(tiny_taxi_dataset.trajectories)
        d2 = [downsample(t, 0.2, rng) for t in d2full]
        corpus = d1 + d2
        grid = grid_covering(corpus, tiny_taxi_dataset.cell_size, tiny_taxi_dataset.margin)
        measures = default_measures(grid, corpus, 10.0, include=["STS", "WGM"])
        sts_result = evaluate_matching(measures["STS"], d1, d2)
        wgm_result = evaluate_matching(measures["WGM"], d1, d2)
        assert sts_result.mean_rank <= wgm_result.mean_rank

    def test_precision_degrades_with_noise(self, tiny_mall_dataset):
        # sanity: more injected noise should not improve STS matching
        rng = np.random.default_rng(7)
        d1, d2 = build_matching_pair(tiny_mall_dataset.trajectories)
        results = []
        for beta in (0.0, 12.0):
            q = [distort(t, beta, rng) for t in d1]
            g = [distort(t, beta, rng) for t in d2]
            corpus = q + g
            grid = grid_covering(corpus, 3.0, margin=60.0)
            sigma = max(3.0, beta)
            measure = STS(grid, noise_model=GaussianNoiseModel(sigma))
            results.append(evaluate_matching(measure, q, g).mean_rank)
        assert results[0] <= results[1] + 0.51  # allow small-sample wiggle
