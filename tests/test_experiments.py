"""Tests for the per-figure experiment runners (reduced scale)."""

import numpy as np
import pytest

from repro.datasets import mall_dataset, taxi_dataset
from repro.eval.experiments import (
    SweepResult,
    ablation_experiment,
    cross_similarity_experiment,
    default_measures,
    grid_covering,
    grid_size_experiment,
    heterogeneous_rate_experiment,
    median_sampling_interval,
    noise_experiment,
    parameter_sensitivity_experiment,
    sampling_rate_experiment,
)

FAST_METHODS = ["STS", "CATS", "SST", "WGM"]


@pytest.fixture(scope="module")
def small_taxi():
    return taxi_dataset(n_trajectories=6, seed=9)


@pytest.fixture(scope="module")
def small_mall():
    return mall_dataset(n_trajectories=6, seed=9)


class TestHelpers:
    def test_median_sampling_interval(self, small_taxi):
        assert median_sampling_interval(small_taxi.trajectories) == pytest.approx(15.0)

    def test_median_interval_empty_raises(self):
        with pytest.raises(ValueError):
            median_sampling_interval([])

    def test_grid_covering(self, small_taxi):
        grid = grid_covering(small_taxi.trajectories, 100.0, margin=50.0)
        pts = np.vstack([t.xy for t in small_taxi.trajectories])
        assert (pts[:, 0] >= grid.min_x).all() and (pts[:, 0] <= grid.max_x).all()

    def test_default_measures_full_set(self, small_taxi):
        grid = grid_covering(small_taxi.trajectories, 100.0, 50.0)
        measures = default_measures(grid, small_taxi.trajectories, 10.0)
        assert set(measures) == {"STS", "CATS", "SST", "WGM", "APM", "EDwP", "KF"}

    def test_default_measures_subset_and_unknown(self, small_taxi):
        grid = grid_covering(small_taxi.trajectories, 100.0, 50.0)
        subset = default_measures(grid, small_taxi.trajectories, 10.0, include=["STS", "WGM"])
        assert list(subset) == ["STS", "WGM"]
        with pytest.raises(KeyError, match="unknown"):
            default_measures(grid, small_taxi.trajectories, 10.0, include=["nope"])


class TestSweepResult:
    def test_record_and_series(self):
        result = SweepResult("exp", "ds", "x", [0.1, 0.2])
        result.record("precision", "STS", 0.9)
        result.record("precision", "STS", 1.0)
        assert result.series("precision", "STS") == [0.9, 1.0]

    def test_format_table(self):
        result = SweepResult("exp", "ds", "rate", [0.1, 0.2])
        result.record("precision", "STS", 0.913)
        result.record("precision", "STS", 1.0)
        table = result.format_table("precision")
        assert "STS" in table and "0.913" in table and "rate" in table

    def test_format_table_handles_extreme_values(self):
        result = SweepResult("exp", "ds", "rate", [0.1])
        result.record("deviation", "WGM", 5.398e7)
        result.record("deviation", "STS", 1.2e-9)
        table = result.format_table("deviation")
        # general formatting keeps the columns aligned and parseable
        rows = table.splitlines()
        assert "5.398e+07" in table
        assert all(len(r.split()) == 2 for r in rows[2:])

    def test_json_roundtrip(self, tmp_path):
        result = SweepResult("exp", "ds", "rate", [0.1, 0.2])
        result.record("precision", "STS", 0.9)
        result.record("precision", "STS", 1.0)
        result.record("mean_rank", "STS", 1.5)
        result.record("mean_rank", "STS", 1.0)
        path = tmp_path / "result.json"
        result.save(path)
        loaded = SweepResult.load(path)
        assert loaded.experiment == "exp"
        assert loaded.x_values == [0.1, 0.2]
        assert loaded.series("precision", "STS") == [0.9, 1.0]
        assert loaded.series("mean_rank", "STS") == [1.5, 1.0]

    def test_from_dict_roundtrip(self):
        result = SweepResult("e", "d", "x", [1.0])
        result.record("m", "A", 0.5)
        assert SweepResult.from_dict(result.to_dict()) == result


class TestExperimentRunners:
    def test_sampling_rate_experiment(self, small_taxi):
        result = sampling_rate_experiment(
            small_taxi, rates=[0.4, 0.8], methods=FAST_METHODS, seed=1
        )
        assert result.x_values == [0.4, 0.8]
        for method in FAST_METHODS:
            assert len(result.series("precision", method)) == 2
            assert len(result.series("mean_rank", method)) == 2
            assert all(0 <= v <= 1 for v in result.series("precision", method))
            assert all(v >= 1 for v in result.series("mean_rank", method))

    def test_heterogeneous_rate_experiment(self, small_mall):
        result = heterogeneous_rate_experiment(
            small_mall, alphas=[0.5], methods=["STS", "WGM"], seed=1
        )
        assert set(result.metrics["precision"]) == {"STS", "WGM"}

    def test_noise_experiment_includes_clean_reference(self, small_taxi):
        result = noise_experiment(small_taxi, betas=None, methods=["WGM"], seed=1)
        assert result.x_values[0] == 0.0
        assert result.x_values[1:] == small_taxi.noise_levels

    def test_noise_experiment_custom_betas(self, small_mall):
        result = noise_experiment(small_mall, betas=[2.0], methods=["CATS"], seed=1)
        assert result.x_values == [2.0]

    def test_ablation_experiment_variants(self, small_mall):
        result = ablation_experiment(small_mall, beta=3.0, seed=1)
        assert set(result.metrics["precision"]) == {"STS", "STS-N", "STS-G", "STS-F"}
        assert result.x_values == [3.0]

    def test_ablation_default_beta_by_dataset(self, small_mall):
        result = ablation_experiment(small_mall, seed=1)
        assert result.x_values == [6.0]

    def test_cross_similarity_experiment(self):
        # A tight time window guarantees temporally-overlapping pairs that
        # every method scores meaningfully.
        dataset = taxi_dataset(n_trajectories=8, seed=9, time_window=300.0)
        result = cross_similarity_experiment(
            dataset, rates=[0.3, 0.7], n_pairs=5, seed=1, methods=["STS", "WGM"]
        )
        for method in ["STS", "WGM"]:
            series = result.series("deviation", method)
            assert len(series) == 2
            assert all(v >= 0 for v in series)
        assert result.metrics["n_pairs"]["all"][0] >= 1

    def test_cross_similarity_needs_two(self):
        ds = taxi_dataset(n_trajectories=1, seed=0)
        with pytest.raises(ValueError, match="two"):
            cross_similarity_experiment(ds, rates=[0.5], n_pairs=2)

    def test_parameter_sensitivity_experiment(self, small_taxi):
        result = parameter_sensitivity_experiment(
            small_taxi, multipliers=[0.5, 1.0, 2.0], seed=1
        )
        assert result.x_values == [0.5, 1.0, 2.0]
        assert set(result.metrics["precision"]) == {"STS", "CATS", "SST", "WGM"}
        for series in result.metrics["precision"].values():
            assert len(series) == 3
            assert all(0 <= v <= 1 for v in series)

    def test_ablation_with_rate(self, small_mall):
        result = ablation_experiment(small_mall, beta=3.0, rate=0.5, seed=1)
        assert set(result.metrics["precision"]) == {"STS", "STS-N", "STS-G", "STS-F"}

    def test_grid_size_experiment(self, small_mall):
        result = grid_size_experiment(small_mall, grid_sizes=[3.0, 6.0], seed=1)
        assert len(result.series("running_time_s", "STS")) == 2
        assert all(v > 0 for v in result.series("running_time_s", "STS"))
        assert all(0 <= v <= 1 for v in result.series("precision", "STS"))
