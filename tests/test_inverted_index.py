"""Unit tests for the inverted spatio-temporal trajectory index."""

import numpy as np
import pytest

from repro.core.grid import Grid
from repro.core.trajectory import Trajectory
from repro.index import TrajectoryIndex
from repro.similarity import SST


def walker(x0=0.0, y=0.0, t0=0.0, n=10, oid=None):
    xs = x0 + np.arange(n, dtype=float)
    return Trajectory.from_arrays(xs, np.full(n, float(y)), t0 + np.arange(n, dtype=float), oid)


@pytest.fixture
def grid():
    return Grid(-10, -60, 120, 60, cell_size=2.0)


class TestBuild:
    def test_add_returns_sequential_ids(self, grid):
        index = TrajectoryIndex(grid)
        assert index.add(walker()) == 0
        assert index.add(walker(y=5)) == 1
        assert len(index) == 2

    def test_add_all_and_get(self, grid):
        index = TrajectoryIndex(grid)
        trajectories = [walker(oid="a"), walker(y=5, oid="b")]
        ids = index.add_all(trajectories)
        assert ids == [0, 1]
        assert index.get(1).object_id == "b"

    def test_empty_trajectory_rejected(self, grid):
        with pytest.raises(ValueError, match="empty"):
            TrajectoryIndex(grid).add(Trajectory([]))

    def test_invalid_dilation(self, grid):
        with pytest.raises(ValueError, match="dilation"):
            TrajectoryIndex(grid, dilation=-1)

    def test_repr(self, grid):
        index = TrajectoryIndex(grid)
        index.add(walker())
        assert "n=1" in repr(index)


class TestCandidates:
    def test_spatial_and_temporal_filtering(self, grid):
        index = TrajectoryIndex(grid)
        index.add(walker(y=0.5, oid="true"))          # 0: co-located
        index.add(walker(y=50.0, oid="far"))          # 1: wrong place
        index.add(walker(y=0.5, t0=900.0, oid="late"))  # 2: wrong time
        ids = index.candidates(walker(y=0.0))
        np.testing.assert_array_equal(ids, [0])

    def test_empty_index(self, grid):
        assert len(TrajectoryIndex(grid).candidates(walker())) == 0

    def test_min_time_overlap(self, grid):
        index = TrajectoryIndex(grid)
        index.add(walker(t0=8.0))  # overlaps query [0, 9] by 1 s
        assert len(index.candidates(walker(), min_time_overlap=2.0)) == 0
        assert len(index.candidates(walker(), min_time_overlap=0.5)) == 1

    def test_negative_overlap_rejected(self, grid):
        with pytest.raises(ValueError):
            TrajectoryIndex(grid).candidates(walker(), min_time_overlap=-1.0)

    def test_dilation_widens_recall(self, grid):
        tight = TrajectoryIndex(grid, dilation=0)
        wide = TrajectoryIndex(grid, dilation=2)
        neighbor = walker(y=3.0)  # ~1.5 cells away
        tight.add(neighbor)
        wide.add(neighbor)
        query = walker(y=0.0)
        assert len(tight.candidates(query)) == 0
        assert len(wide.candidates(query)) == 1

    def test_matches_linear_scan(self, grid, rng):
        # the index's candidate set equals the brute-force filter result
        from repro.index import cell_signature_filter, time_overlap_filter

        index = TrajectoryIndex(grid, dilation=1)
        gallery = [
            walker(x0=float(rng.uniform(0, 80)), y=float(rng.uniform(-40, 40)),
                   t0=float(rng.uniform(0, 30)))
            for _ in range(30)
        ]
        index.add_all(gallery)
        query = walker(x0=40.0, y=0.0, t0=10.0)
        got = set(index.candidates(query).tolist())
        time_keep = set(time_overlap_filter(query, gallery).tolist())
        sig_keep = set(cell_signature_filter(query, gallery, grid, dilation=1).tolist())
        assert got == (time_keep & sig_keep)


class TestQuery:
    def test_ranks_candidates(self, grid):
        index = TrajectoryIndex(grid)
        index.add(walker(y=0.0, oid="best"))
        index.add(walker(y=4.0, oid="worse"))
        index.add(walker(y=200.0, oid="filtered"))
        measure = SST(spatial_scale=2.0, temporal_scale=5.0)
        matches = index.query(walker(y=0.5), measure)
        assert [m.trajectory.object_id for m in matches] == ["best", "worse"]

    def test_top_k(self, grid):
        index = TrajectoryIndex(grid)
        for dy in range(5):
            index.add(walker(y=float(dy)))
        measure = SST(spatial_scale=2.0, temporal_scale=5.0)
        assert len(index.query(walker(y=0.5), measure, k=2)) == 2

    def test_invalid_k(self, grid):
        index = TrajectoryIndex(grid)
        index.add(walker())
        with pytest.raises(ValueError):
            index.query(walker(), SST(2.0, 5.0), k=0)

    def test_ids_resolve_via_get(self, grid):
        index = TrajectoryIndex(grid)
        index.add_all([walker(y=0.0), walker(y=1.0)])
        measure = SST(spatial_scale=2.0, temporal_scale=5.0)
        for match in index.query(walker(y=0.5), measure):
            assert index.get(match.index) is match.trajectory
