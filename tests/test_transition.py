"""Unit tests for transition probability estimators (Eq. 7 and STS-F)."""

import numpy as np
import pytest

from repro.core.grid import Grid
from repro.core.speed import GaussianSpeedModel, KDESpeedModel
from repro.core.transition import FrequencyTransitionModel, SpeedTransitionModel
from repro.core.trajectory import Trajectory


class TestSpeedTransitionModel:
    @pytest.fixture
    def model(self):
        return SpeedTransitionModel(KDESpeedModel([1.0, 1.2, 0.8], approx=False))

    def test_isotropic_flag(self, model):
        assert model.isotropic

    def test_weight_matches_speed_density(self, model):
        # moving 10 m in 10 s = 1 m/s, the mode of the sample speeds
        w_likely = model.weights([[0.0, 0.0]], [[10.0, 0.0]], dt=10.0)
        w_unlikely = model.weights([[0.0, 0.0]], [[100.0, 0.0]], dt=10.0)
        assert w_likely[0, 0] > w_unlikely[0, 0]

    def test_weight_shape(self, model):
        w = model.weights(np.zeros((3, 2)), np.ones((5, 2)), dt=2.0)
        assert w.shape == (3, 5)

    def test_weights_match_eq7(self, model):
        dist = 7.0
        dt = 4.0
        w = model.weights([[0.0, 0.0]], [[dist, 0.0]], dt=dt)
        expected = model.speed_model.transition_weight(dist / dt)
        assert w[0, 0] == pytest.approx(expected)

    def test_distance_weights_match_weights(self, model):
        dists = np.array([[0.0, 5.0], [10.0, 3.0]])
        from_xy = [[0.0, 0.0]]
        for d in dists.ravel():
            w = model.weights(from_xy, [[d, 0.0]], dt=2.0)[0, 0]
            dw = model.distance_weights(np.array([d]), dt=2.0)[0]
            assert w == pytest.approx(dw)

    def test_negative_dt_raises(self, model):
        with pytest.raises(ValueError, match="non-negative"):
            model.weights([[0, 0]], [[1, 1]], dt=-1.0)

    def test_zero_dt_indicator(self, model):
        w = model.weights([[0.0, 0.0]], [[0.0, 0.0], [5.0, 0.0]], dt=0.0)
        assert w[0, 0] == 1.0
        assert w[0, 1] == 0.0

    def test_reachable_radius_grows_with_dt(self, model):
        assert model.reachable_radius(10.0) > model.reachable_radius(1.0)
        assert model.reachable_radius(0.0) == 0.0

    def test_symmetry(self, model):
        a = np.array([[0.0, 0.0]])
        b = np.array([[3.0, 4.0]])
        assert model.weights(a, b, 2.0)[0, 0] == pytest.approx(model.weights(b, a, 2.0)[0, 0])

    def test_brownian_special_case(self):
        # Gaussian speed law: transition weight peaks at mean speed distance
        model = SpeedTransitionModel(GaussianSpeedModel(mean=2.0, std=0.1))
        near = model.weights([[0, 0]], [[20.0, 0.0]], dt=10.0)[0, 0]  # 2 m/s
        far = model.weights([[0, 0]], [[40.0, 0.0]], dt=10.0)[0, 0]  # 4 m/s
        assert near > far


class TestFrequencyTransitionModel:
    @pytest.fixture
    def grid(self):
        return Grid(0, 0, 10, 10, cell_size=1.0)

    @pytest.fixture
    def corpus(self):
        # Everyone walks east along y=0.5, one cell per second.
        return [
            Trajectory.from_arrays(
                np.arange(8) + 0.5, np.full(8, 0.5), np.arange(8.0)
            )
            for _ in range(5)
        ]

    def test_requires_fit(self, grid):
        model = FrequencyTransitionModel(grid)
        with pytest.raises(RuntimeError, match="fitted"):
            model.weights([[0.5, 0.5]], [[1.5, 0.5]], dt=1.0)

    def test_fit_empty_raises(self, grid):
        with pytest.raises(ValueError, match="empty corpus"):
            FrequencyTransitionModel(grid).fit([])

    def test_invalid_max_steps(self, grid):
        with pytest.raises(ValueError, match="max_steps"):
            FrequencyTransitionModel(grid, max_steps=0)

    def test_learns_eastward_bias(self, grid, corpus):
        model = FrequencyTransitionModel(grid).fit(corpus)
        east = model.weights([[0.5, 0.5]], [[1.5, 0.5]], dt=1.0)[0, 0]
        north = model.weights([[0.5, 0.5]], [[0.5, 1.5]], dt=1.0)[0, 0]
        assert east > north

    def test_rows_are_stochastic(self, grid, corpus):
        model = FrequencyTransitionModel(grid).fit(corpus)
        row_sums = np.asarray(model._power(1).sum(axis=1)).ravel()
        np.testing.assert_allclose(row_sums, 1.0)

    def test_step_duration_defaults_to_median_gap(self, grid, corpus):
        model = FrequencyTransitionModel(grid).fit(corpus)
        assert model.step_duration == pytest.approx(1.0)

    def test_multi_step_spreads_mass(self, grid, corpus):
        model = FrequencyTransitionModel(grid).fit(corpus)
        one = model.weights([[0.5, 0.5]], [[3.5, 0.5]], dt=1.0)[0, 0]
        three = model.weights([[0.5, 0.5]], [[3.5, 0.5]], dt=3.0)[0, 0]
        assert three > one  # 3 cells east takes ~3 steps

    def test_max_steps_caps_power(self, grid, corpus):
        model = FrequencyTransitionModel(grid, max_steps=2).fit(corpus)
        w_big = model.weights([[0.5, 0.5]], [[2.5, 0.5]], dt=100.0)
        w_cap = model.weights([[0.5, 0.5]], [[2.5, 0.5]], dt=2.0)
        assert w_big[0, 0] == pytest.approx(w_cap[0, 0])

    def test_unseen_cell_self_transitions(self, grid, corpus):
        model = FrequencyTransitionModel(grid).fit(corpus)
        # cell at (9.5, 9.5) never appears in the corpus
        w_self = model.weights([[9.5, 9.5]], [[9.5, 9.5]], dt=1.0)[0, 0]
        w_move = model.weights([[9.5, 9.5]], [[8.5, 9.5]], dt=1.0)[0, 0]
        assert w_self == pytest.approx(1.0)
        assert w_move == pytest.approx(0.0)

    def test_reachable_radius_finite_after_fit(self, grid, corpus):
        model = FrequencyTransitionModel(grid)
        assert np.isinf(model.reachable_radius(1.0))
        model.fit(corpus)
        assert np.isfinite(model.reachable_radius(1.0))

    def test_not_isotropic(self, grid, corpus):
        model = FrequencyTransitionModel(grid).fit(corpus)
        assert not model.isotropic
        with pytest.raises(NotImplementedError):
            model.distance_weights(np.array([1.0]), dt=1.0)

    def test_negative_dt_raises(self, grid, corpus):
        model = FrequencyTransitionModel(grid).fit(corpus)
        with pytest.raises(ValueError, match="non-negative"):
            model.weights([[0.5, 0.5]], [[1.5, 0.5]], dt=-1.0)
