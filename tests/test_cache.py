"""Unit tests for the bounded LRU cache behind the evaluation hot paths."""

import pickle
import threading

import pytest

from repro.core.cache import LRUCache


class TestBasics:
    def test_get_put_roundtrip(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.get("missing") is None
        assert cache.get("missing", default=-1) == -1

    def test_len_contains_iter(self):
        cache = LRUCache(4)
        for k in "abc":
            cache.put(k, k.upper())
        assert len(cache) == 3
        assert "b" in cache
        assert "z" not in cache
        assert sorted(cache) == ["a", "b", "c"]

    def test_eq_against_plain_dict(self):
        cache = LRUCache(4)
        cache.put("x", 1)
        cache.put("y", 2)
        assert cache == {"x": 1, "y": 2}
        assert cache != {"x": 1}

    def test_negative_maxsize_rejected(self):
        with pytest.raises(ValueError, match="maxsize"):
            LRUCache(-1)


class TestEviction:
    def test_oldest_entry_evicted_at_capacity(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)
        assert "a" not in cache
        assert cache == {"b": 2, "c": 3}

    def test_get_refreshes_recency(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # now "b" is the least recently used
        cache.put("c", 3)
        assert "a" in cache and "c" in cache and "b" not in cache

    def test_put_of_existing_key_refreshes_recency(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)
        cache.put("c", 3)
        assert cache == {"a": 10, "c": 3}

    def test_maxsize_none_is_unbounded(self):
        cache = LRUCache(None)
        for i in range(10_000):
            cache.put(i, i)
        assert len(cache) == 10_000

    def test_maxsize_zero_disables_caching(self):
        cache = LRUCache(0)
        cache.put("a", 1)
        assert len(cache) == 0
        assert cache.get("a") is None
        calls = []
        assert cache.get_or_compute("a", lambda: calls.append(1) or 7) == 7
        assert cache.get_or_compute("a", lambda: calls.append(1) or 7) == 7
        assert len(calls) == 2  # recomputed every time, never stored


class TestGetOrCompute:
    def test_computes_once_then_hits(self):
        cache = LRUCache(4)
        calls = []
        for _ in range(3):
            value = cache.get_or_compute("k", lambda: calls.append(1) or 42)
            assert value == 42
        assert len(calls) == 1
        assert cache.hits >= 2

    def test_counters_and_clear(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        cache.get("a")
        cache.get("nope")
        assert cache.hits == 1 and cache.misses >= 1
        cache.clear()
        assert len(cache) == 0
        assert cache.maxsize == 4  # capacity survives a clear


class TestConcurrencyAndPickling:
    def test_thread_safety_under_contention(self):
        cache = LRUCache(64)
        errors = []

        def worker(seed: int):
            try:
                for i in range(500):
                    cache.put((seed, i % 80), i)
                    cache.get((seed, (i * 7) % 80))
                    cache.get_or_compute((seed, "x", i % 10), lambda: i)
            except Exception as exc:  # pragma: no cover - only on failure
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(s,)) for s in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(cache) <= 64

    def test_pickles_empty_but_keeps_capacity(self):
        cache = LRUCache(7)
        cache.put("a", 1)
        cache.get("a")
        clone = pickle.loads(pickle.dumps(cache))
        assert clone.maxsize == 7
        assert len(clone) == 0  # workers restart cold
        assert clone.hits == 0 and clone.misses == 0
        clone.put("b", 2)  # and the clone is fully functional
        assert clone.get("b") == 2
