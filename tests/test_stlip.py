"""Unit tests for the STLIP measure."""

import numpy as np
import pytest

from repro.core.trajectory import Trajectory
from repro.similarity import STLIP, lip_distance, stlip_distance


def route(y, ts=None, n=11, length=10.0):
    xs = np.linspace(0.0, length, n)
    ts = np.linspace(0.0, 10.0, n) if ts is None else ts
    return Trajectory.from_arrays(xs, np.full(n, float(y)), ts)


class TestLIP:
    def test_identical_routes_zero(self):
        a = route(0.0)
        assert lip_distance(a, a) == pytest.approx(0.0, abs=1e-9)

    def test_parallel_routes_area(self):
        # Two parallel 10 m segments 3 m apart enclose a 30 m² strip.
        a = route(0.0)
        b = route(3.0)
        assert lip_distance(a, b) == pytest.approx(30.0, rel=0.02)

    def test_grows_with_separation(self):
        a = route(0.0)
        assert lip_distance(a, route(5.0)) > lip_distance(a, route(1.0))

    def test_sampling_invariance(self):
        # LIP depends on the geometry, not on how densely it was sampled.
        a_dense = route(0.0, n=41)
        a_sparse = route(0.0, n=3)
        b = route(4.0)
        dense = lip_distance(a_dense, b)
        sparse = lip_distance(a_sparse, b)
        assert dense == pytest.approx(sparse, rel=0.05)

    def test_stationary_trajectory(self):
        still = Trajectory.from_arrays([5.0, 5.0], [2.0, 2.0], [0.0, 10.0])
        moving = route(0.0)
        assert lip_distance(still, moving) > 0

    def test_invalid_inputs(self):
        a = route(0.0)
        with pytest.raises(ValueError):
            lip_distance(Trajectory([]), a)
        with pytest.raises(ValueError):
            lip_distance(a, a, n_samples=1)


class TestSTLIP:
    def test_reduces_to_lip_when_kappa_zero(self):
        a = route(0.0)
        b = route(3.0)
        assert stlip_distance(a, b, kappa=0.0) == pytest.approx(lip_distance(a, b))

    def test_time_shift_inflates_distance(self):
        a = route(0.0)
        sync = route(2.0)
        late = route(2.0, ts=np.linspace(5.0, 15.0, 11))
        assert stlip_distance(a, late, kappa=1.0) > stlip_distance(a, sync, kappa=1.0)

    def test_symmetric(self):
        a = route(0.0)
        b = route(3.0, ts=np.linspace(2.0, 9.0, 11))
        assert stlip_distance(a, b) == pytest.approx(stlip_distance(b, a))

    def test_kappa_scales_penalty(self):
        a = route(0.0)
        late = route(2.0, ts=np.linspace(5.0, 15.0, 11))
        weak = stlip_distance(a, late, kappa=0.5)
        strong = stlip_distance(a, late, kappa=2.0)
        assert strong > weak

    def test_invalid_kappa(self):
        a = route(0.0)
        with pytest.raises(ValueError):
            stlip_distance(a, a, kappa=-1.0)
        with pytest.raises(ValueError):
            STLIP(kappa=-0.1)

    def test_measure_orientation_and_registry(self):
        m = STLIP()
        assert not m.higher_is_better
        a, b = route(0.0), route(3.0)
        assert m.score(a, b) == -m(a, b)
        from repro.similarity import available_measures

        assert "stlip" in available_measures()
