"""Unit tests for the observability layer: registry, tracing, rendering."""

from __future__ import annotations

import json
import pickle
import threading

import numpy as np
import pytest

from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    Tracer,
    enabled,
    get_registry,
    render_snapshot,
    set_enabled,
    set_registry,
    trace_span,
    traced,
    validate_prometheus_text,
)
from repro.obs.registry import DEFAULT_TIME_BUCKETS


class TestCounter:
    def test_unlabelled_increment(self):
        counter = Counter("c_total")
        counter.inc()
        counter.inc(2.5)
        assert counter.values() == {(): 3.5}

    def test_labelled_series_are_independent(self):
        counter = Counter("c_total")
        counter.inc(stage="a")
        counter.inc(3, stage="b")
        values = {k: v for k, v in counter.values().items()}
        assert values[(("stage", "a"),)] == 1.0
        assert values[(("stage", "b"),)] == 3.0

    def test_child_handle_shares_storage(self):
        counter = Counter("c_total")
        bound = counter.child(stage="hot")
        bound.inc()
        bound.inc(4)
        assert counter.values()[(("stage", "hot"),)] == 5.0

    def test_label_order_is_canonical(self):
        counter = Counter("c_total")
        counter.inc(b="2", a="1")
        counter.inc(a="1", b="2")
        assert len(counter.values()) == 1


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("g")
        gauge.set(10.0)
        gauge.inc(5.0)
        assert gauge.values()[()] == 15.0
        bound = gauge.child()
        bound.dec(3.0)
        assert gauge.values()[()] == 12.0


class TestRegistryThreadSafety:
    def test_concurrent_increments_lose_nothing(self):
        """8 threads x 5000 increments each must sum exactly."""
        registry = MetricsRegistry()
        counter = registry.counter("race_total")
        bound = counter.child(worker="shared")
        n_threads, per_thread = 8, 5000

        barrier = threading.Barrier(n_threads)

        def hammer():
            barrier.wait()
            for _ in range(per_thread):
                bound.inc()

        threads = [threading.Thread(target=hammer) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.values()[(("worker", "shared"),)] == n_threads * per_thread

    def test_concurrent_histogram_observations(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h_seconds")
        bound = hist.child()
        n_threads, per_thread = 4, 2000

        def hammer():
            for i in range(per_thread):
                bound.observe(0.001 * (i % 10 + 1))

        threads = [threading.Thread(target=hammer) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert hist.stats()[""]["count"] == n_threads * per_thread


class TestHistogram:
    def test_rejects_bad_buckets(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=[])
        with pytest.raises(ValueError):
            Histogram("h", buckets=[1.0, 1.0])
        with pytest.raises(ValueError):
            Histogram("h", buckets=[2.0, 1.0])

    def test_quantiles_against_numpy(self):
        """Bucket-interpolated quantiles track numpy within a bucket width."""
        rng = np.random.default_rng(0)
        samples = rng.uniform(0.0003, 0.4, size=5000)
        hist = Histogram("h_seconds", buckets=DEFAULT_TIME_BUCKETS)
        for s in samples:
            hist.observe(float(s))
        buckets = np.asarray([0.0] + list(DEFAULT_TIME_BUCKETS))
        for q in (0.50, 0.95, 0.99):
            estimate = hist.quantile(q)
            exact = float(np.quantile(samples, q))
            # The estimate must land within the bucket containing the
            # exact quantile (that is all fixed buckets can promise).
            idx = int(np.searchsorted(buckets, exact))
            lo = buckets[max(idx - 1, 0)]
            hi = buckets[min(idx, len(buckets) - 1)]
            assert lo <= estimate <= hi * 1.0000001, (q, estimate, exact)

    def test_quantile_clamped_to_observed_range(self):
        hist = Histogram("h_seconds")
        for _ in range(5):
            hist.observe(0.003)
        assert hist.quantile(0.5) == pytest.approx(0.003)
        assert hist.quantile(0.99) == pytest.approx(0.003)

    def test_quantile_nan_when_empty(self):
        hist = Histogram("h_seconds")
        assert np.isnan(hist.quantile(0.5))

    def test_stats_shape(self):
        hist = Histogram("h_seconds")
        hist.observe(0.01, mode="fft")
        stats = hist.stats()['mode="fft"']
        assert stats["count"] == 1
        assert stats["sum"] == pytest.approx(0.01)
        assert stats["min"] == stats["max"] == pytest.approx(0.01)
        assert stats["buckets"][-1][0] == "+Inf"
        assert sum(c for _, c in stats["buckets"]) == 1


class TestRegistry:
    def test_instrument_creation_is_idempotent(self):
        registry = MetricsRegistry()
        assert registry.counter("x_total") is registry.counter("x_total")

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x_total")
        with pytest.raises(TypeError):
            registry.gauge("x_total")

    def test_snapshot_merges_collector_samples(self):
        registry = MetricsRegistry()

        class Source:
            def __init__(self, hits):
                self.hits = hits

            def collect(self):
                return [("counter", "hits_total", {"cache": "a"}, self.hits)]

        one, two = Source(3), Source(4)
        registry.register_collector(one.collect)
        registry.register_collector(two.collect)
        snap = registry.snapshot()
        assert snap["counters"]["hits_total"]['cache="a"'] == 7.0

    def test_dead_collectors_are_pruned(self):
        registry = MetricsRegistry()

        class Source:
            def collect(self):
                return [("gauge", "depth", {}, 1.0)]

        source = Source()
        registry.register_collector(source.collect)
        assert registry.snapshot()["gauges"]["depth"][""] == 1.0
        del source
        assert "depth" not in registry.snapshot().get("gauges", {})

    def test_value_reads_one_metric(self):
        registry = MetricsRegistry()
        registry.counter("x_total").inc(2, kind="a")
        assert registry.value("x_total") == {'kind="a"': 2.0}
        assert registry.value("missing_total") == {}

    def test_reset_clears_everything(self):
        registry = MetricsRegistry()
        registry.counter("x_total").inc()
        registry.reset()
        assert registry.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_pickles_to_empty(self):
        registry = MetricsRegistry()
        registry.counter("x_total").inc()
        clone = pickle.loads(pickle.dumps(registry))
        assert clone.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}


class TestPrometheusExport:
    def test_golden_output(self):
        """Pin the exposition format for a small known registry."""
        registry = MetricsRegistry()
        registry.counter("demo_calls_total", "Calls").inc(3, method="fft")
        registry.gauge("demo_depth", "Queue depth").set(2)
        hist = registry.histogram("demo_seconds", "Latency", buckets=[0.1, 1.0])
        hist.observe(0.05)
        hist.observe(0.5)
        hist.observe(5.0)
        expected = "\n".join(
            [
                '# HELP demo_calls_total Calls',
                '# TYPE demo_calls_total counter',
                'demo_calls_total{method="fft"} 3',
                '# HELP demo_depth Queue depth',
                '# TYPE demo_depth gauge',
                'demo_depth 2',
                '# HELP demo_seconds Latency',
                '# TYPE demo_seconds histogram',
                'demo_seconds_bucket{le="0.1"} 1',
                'demo_seconds_bucket{le="1"} 2',
                'demo_seconds_bucket{le="+Inf"} 3',
                'demo_seconds_sum 5.55',
                'demo_seconds_count 3',
            ]
        ) + "\n"
        assert registry.to_prometheus() == expected

    def test_output_validates(self):
        registry = MetricsRegistry()
        registry.counter("a_total", "Help with spaces").inc(1, k='quote"inside')
        registry.histogram("b_seconds").observe(0.2, mode="x")
        assert validate_prometheus_text(registry.to_prometheus()) == []

    def test_validator_flags_garbage(self):
        assert validate_prometheus_text("not a metric line !!!\n")
        assert validate_prometheus_text("# TYPE x bogus_kind\n")
        dup = "# TYPE x counter\nx 1\n# TYPE x counter\nx 2\n"
        assert validate_prometheus_text(dup)

    def test_empty_registry_emits_empty_string(self):
        assert MetricsRegistry().to_prometheus() == ""


class TestRenderSnapshot:
    def test_renders_sections(self):
        registry = MetricsRegistry()
        registry.counter("x_total").inc(2, stage="s")
        registry.gauge("g").set(1)
        registry.histogram("h_seconds").observe(0.01)
        text = render_snapshot(registry.snapshot())
        assert "counters:" in text
        assert 'stage="s"' in text
        assert "histograms:" in text

    def test_empty_snapshot(self):
        assert "no metrics" in render_snapshot({})


class TestNullRegistry:
    def test_everything_is_a_noop(self):
        registry = NullRegistry()
        registry.counter("x").inc(5, a="b")
        registry.gauge("y").set(2)
        registry.histogram("z").observe(1.0)
        registry.histogram("z").child(a="b").observe(1.0)
        registry.register_collector(lambda: [("counter", "x", {}, 1.0)])
        assert registry.snapshot() == {}
        assert registry.to_prometheus() == ""
        assert registry.enabled is False

    def test_global_switch_hands_out_null(self):
        previous = set_enabled(False)
        try:
            assert not enabled()
            assert isinstance(get_registry(), NullRegistry)
        finally:
            set_enabled(previous)
        assert isinstance(get_registry(), MetricsRegistry)


class TestTracer:
    def test_span_nesting(self):
        tracer = Tracer()
        with tracer.span("outer", run=1):
            with tracer.span("inner"):
                pass
            with tracer.span("inner"):
                pass
        roots = tracer.roots()
        assert [r.name for r in roots] == ["outer"]
        assert [c.name for c in roots[0].children] == ["inner", "inner"]
        assert roots[0].attrs == {"run": 1}
        assert roots[0].wall_s >= sum(c.wall_s for c in roots[0].children) * 0.5

    def test_roots_bounded(self):
        tracer = Tracer(max_roots=4)
        for i in range(10):
            with tracer.span(f"s{i}"):
                pass
        assert len(tracer.roots()) == 4
        assert tracer.roots()[0].name == "s6"

    def test_clear(self):
        tracer = Tracer()
        with tracer.span("x"):
            pass
        tracer.clear()
        assert tracer.roots() == []

    def test_chrome_trace_events(self):
        tracer = Tracer()
        with tracer.span("parent"):
            with tracer.span("child", n=3):
                pass
        events = tracer.to_chrome_trace()
        names = {e["name"] for e in events}
        assert names == {"parent", "child"}
        for event in events:
            assert event["ph"] == "X"
            assert event["ts"] >= 0.0
            assert event["dur"] >= 0.0
        child = next(e for e in events if e["name"] == "child")
        assert child["args"]["n"] == 3
        json.dumps(events)  # must be serializable

    def test_flamegraph_merges_by_path(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("work"):
                with tracer.span("sub"):
                    pass
        text = tracer.flamegraph()
        assert "work" in text and "(x3" in text
        assert "sub" in text

    def test_flamegraph_empty(self):
        assert "no spans" in Tracer().flamegraph()

    def test_pickles_to_empty(self):
        tracer = Tracer(max_roots=7)
        with tracer.span("x"):
            pass
        clone = pickle.loads(pickle.dumps(tracer))
        assert clone.roots() == []
        with clone.span("y"):
            pass
        assert [r.name for r in clone.roots()] == ["y"]

    def test_out_of_order_exit_unwinds(self):
        tracer = Tracer()
        outer = tracer.span("outer")
        inner = tracer.span("inner")
        outer.__enter__()
        inner.__enter__()
        # Close outer first (generator-teardown ordering): must not wedge.
        outer.__exit__(None, None, None)
        assert [r.name for r in tracer.roots()] == ["outer"]

    def test_trace_span_disabled_is_noop(self):
        previous = set_enabled(False)
        try:
            with trace_span("ignored") as span:
                assert span.name == ""
        finally:
            set_enabled(previous)

    def test_traced_decorator(self):
        tracer = Tracer()
        from repro.obs import set_tracer

        previous = set_tracer(tracer)
        try:

            @traced("decorated")
            def fn(x):
                return x + 1

            assert fn(1) == 2
        finally:
            set_tracer(previous)
        assert [r.name for r in tracer.roots()] == ["decorated"]


class TestRegistrySwap:
    def test_set_registry_round_trip(self):
        fresh = MetricsRegistry()
        previous = set_registry(fresh)
        try:
            assert get_registry() is fresh
        finally:
            set_registry(previous)
        assert get_registry() is previous
