"""Tests for the differential verification subsystem (repro.verify)."""

import json

import numpy as np
import pytest

from repro import cli
from repro.verify import (
    ORACLE_ATOL,
    PATHS,
    RELATIONS,
    OracleSTS,
    PathSpec,
    run_relations,
    run_verification,
    ulp_distance,
    verification_corpus,
)
from repro.verify.diffrunner import BASELINE_PATH


@pytest.fixture(scope="module")
def corpus():
    return verification_corpus()


@pytest.fixture(scope="module")
def serial_matrix(corpus):
    measure = corpus.measure()
    out = np.zeros((len(corpus.queries), len(corpus.gallery)))
    for i, q in enumerate(corpus.queries):
        for j, g in enumerate(corpus.gallery):
            out[i, j] = measure.similarity(q, g)
    return out


class TestCorpus:
    def test_deterministic_across_builds(self, corpus):
        again = verification_corpus()
        assert corpus.fingerprint() == again.fingerprint()
        for a, b in zip(corpus.gallery + corpus.queries,
                        again.gallery + again.queries):
            np.testing.assert_array_equal(a.xy, b.xy)
            np.testing.assert_array_equal(a.timestamps, b.timestamps)

    def test_seed_changes_fingerprint(self, corpus):
        assert corpus.fingerprint() != verification_corpus(seed=8).fingerprint()

    def test_comover_pair_shares_exact_timestamps(self, corpus):
        walker_a, walker_b = corpus.gallery[0], corpus.gallery[1]
        np.testing.assert_array_equal(walker_a.timestamps, walker_b.timestamps)

    def test_late_is_temporally_disjoint(self, corpus):
        late = next(t for t in corpus.gallery if t.object_id == "late")
        for other in corpus.gallery + corpus.queries:
            if other.object_id == "late":
                continue
            assert (late.start_time > other.end_time
                    or late.end_time < other.start_time)

    def test_fresh_measure_per_call(self, corpus):
        assert corpus.measure() is not corpus.measure()


class TestOracle:
    def test_matches_production_within_documented_tolerance(
            self, corpus, serial_matrix):
        oracle = OracleSTS(corpus.grid, corpus.sigma)
        got = oracle.pairwise(corpus.gallery, corpus.queries)
        assert np.abs(got - serial_matrix).max() <= ORACLE_ATOL

    def test_stp_is_a_distribution_inside_span(self, corpus):
        oracle = OracleSTS(corpus.grid, corpus.sigma)
        tra = corpus.gallery[0]
        for t in (tra.timestamps[0], 0.5 * (tra.timestamps[0] + tra.timestamps[1])):
            vec = oracle.stp(tra, float(t))
            assert vec.min() >= 0.0
            assert vec.sum() == pytest.approx(1.0, abs=1e-12)

    def test_stp_observation_branch_is_the_noise_distribution(self, corpus):
        oracle = OracleSTS(corpus.grid, corpus.sigma)
        tra = corpus.gallery[0]
        point = tra[0]
        np.testing.assert_array_equal(
            oracle.stp(tra, float(point.t)),
            oracle.noise_distribution(point.x, point.y))

    def test_stp_zero_outside_span(self, corpus):
        oracle = OracleSTS(corpus.grid, corpus.sigma)
        tra = corpus.gallery[0]
        assert not oracle.stp(tra, tra.start_time - 1.0).any()
        assert not oracle.stp(tra, tra.end_time + 1.0).any()

    def test_disjoint_spans_score_exactly_zero(self, corpus):
        oracle = OracleSTS(corpus.grid, corpus.sigma)
        late = next(t for t in corpus.gallery if t.object_id == "late")
        assert oracle.similarity(late, corpus.gallery[0]) == 0.0

    def test_symmetric(self, corpus):
        oracle = OracleSTS(corpus.grid, corpus.sigma)
        a, b = corpus.gallery[0], corpus.queries[0]
        assert oracle.similarity(a, b) == pytest.approx(
            oracle.similarity(b, a), rel=1e-12)

    def test_rejects_bad_sigma(self, corpus):
        with pytest.raises(ValueError):
            OracleSTS(corpus.grid, sigma=0.0)


class TestUlpDistance:
    def test_identical_arrays_are_zero(self):
        a = np.array([0.1, -2.5, 0.0])
        assert ulp_distance(a, a.copy()) == 0

    def test_negative_and_positive_zero_coincide(self):
        assert ulp_distance(np.array([0.0]), np.array([-0.0])) == 0

    def test_adjacent_doubles_are_one_ulp(self):
        a = np.array([1.0])
        b = np.nextafter(a, 2.0)
        assert ulp_distance(a, b) == 1

    def test_counts_across_the_sign_boundary(self):
        tiny = np.nextafter(np.array([0.0]), 1.0)
        neg_tiny = -tiny
        assert ulp_distance(tiny, neg_tiny) == 2


class TestRelations:
    def test_all_relations_pass_on_committed_corpus(self, corpus):
        results = run_relations(corpus)
        failed = [r for r in results if not r.passed]
        assert failed == []
        # every catalogue entry actually contributed checks
        assert {r.relation for r in results} == set(RELATIONS)

    def test_unknown_relation_name_raises(self, corpus):
        with pytest.raises(ValueError, match="no-such-relation"):
            run_relations(corpus, names=["no-such-relation"])

    def test_subset_selection(self, corpus):
        results = run_relations(corpus, names=["zero_overlap"])
        assert results
        assert {r.relation for r in results} == {"zero_overlap"}


class TestDiffRunner:
    # In-process paths only: the process/shm/pool/cluster paths are
    # exercised by `repro verify` itself (run in the CI verify job).
    LIGHT_PATHS = ["batch", "parallel-thread", "anytime", "oracle"]

    def test_light_paths_pass_bitwise(self, corpus):
        report = run_verification(paths=self.LIGHT_PATHS, relations=[],
                                  corpus=corpus)
        assert report.passed
        by_name = {c.name: c for c in report.checks}
        for name in ("batch", "parallel-thread", "anytime"):
            assert by_name[name].max_ulp == 0
            assert by_name[name].tolerance is None
        assert by_name["oracle"].max_abs_diff <= ORACLE_ATOL

    def test_unknown_path_name_raises(self, corpus):
        with pytest.raises(ValueError, match="no-such-path"):
            run_verification(paths=["no-such-path"], relations=[],
                             corpus=corpus)

    def test_detects_a_diverging_path(self, corpus, monkeypatch):
        def broken(c):
            out = PATHS[BASELINE_PATH].run(c)
            out[0, 0] += 1e-9
            return out

        monkeypatch.setitem(
            PATHS, "batch",
            PathSpec("batch", "deliberately broken", broken))
        report = run_verification(paths=["batch"], relations=[],
                                  corpus=corpus)
        assert not report.passed
        (check,) = report.checks
        assert check.max_ulp > 0
        assert "ulp" in check.detail

    def test_detects_a_crashing_path(self, corpus, monkeypatch):
        def crash(c):
            raise RuntimeError("worker exploded")

        monkeypatch.setitem(
            PATHS, "batch", PathSpec("batch", "crashes", crash))
        report = run_verification(paths=["batch"], relations=[],
                                  corpus=corpus)
        assert not report.passed
        assert "worker exploded" in report.checks[0].detail

    def test_nan_cells_fail_even_within_tolerance(self, corpus, monkeypatch):
        def nan_path(c):
            out = PATHS[BASELINE_PATH].run(c)
            out[0, 0] = np.nan
            return out

        monkeypatch.setitem(
            PATHS, "batch",
            PathSpec("batch", "NaN cell", nan_path, tolerance=1.0))
        report = run_verification(paths=["batch"], relations=[],
                                  corpus=corpus)
        assert not report.passed
        assert "non-finite" in report.checks[0].detail

    def test_counters_record_outcomes(self, corpus):
        from repro.obs.registry import MetricsRegistry

        registry = MetricsRegistry()
        run_verification(paths=["batch"], relations=["zero_overlap"],
                         corpus=corpus, registry=registry)
        series = registry.snapshot()["counters"]["repro_verify_checks_total"]
        assert series  # both the path check and the relation checks landed
        assert any('path="batch"' in labels and 'relation="equivalence"' in labels
                   for labels in series)
        assert any('relation="zero_overlap"' in labels for labels in series)
        for labels, value in series.items():
            assert 'outcome="pass"' in labels
            assert value >= 1


class TestReport:
    def test_json_roundtrip(self, corpus):
        # stp_norm included deliberately: its drift values come out of
        # numpy, and the report must still serialize (plain JSON types).
        report = run_verification(paths=["batch"],
                                  relations=["zero_overlap", "stp_norm"],
                                  corpus=corpus)
        payload = json.loads(report.to_json())
        assert payload["passed"] is True
        assert payload["corpus"]["fingerprint"] == corpus.fingerprint()
        assert payload["n_checks"] == len(report.checks)
        kinds = {c["kind"] for c in payload["checks"]}
        assert kinds == {"path", "relation"}

    def test_markdown_mentions_paths_and_verdict(self, corpus):
        report = run_verification(paths=["batch"], relations=["zero_overlap"],
                                  corpus=corpus)
        text = report.to_markdown()
        assert "**PASS**" in text
        assert "| batch |" in text
        assert "zero_overlap" in text


class TestCli:
    ARGS = ["verify", "--paths", "batch", "--relations", "zero_overlap"]

    def test_exit_zero_and_report_file(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        code = cli.main(self.ARGS + ["--report-out", str(out)])
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["passed"] is True
        assert "**PASS**" in capsys.readouterr().out

    def test_markdown_report_file(self, tmp_path):
        out = tmp_path / "report.md"
        assert cli.main(self.ARGS + ["--report-out", str(out)]) == 0
        assert "# Differential verification report" in out.read_text()

    def test_exit_nonzero_on_violation(self, monkeypatch, capsys):
        def broken(c):
            out = PATHS[BASELINE_PATH].run(c)
            out[:] += 1e-9
            return out

        monkeypatch.setitem(
            PATHS, "batch", PathSpec("batch", "broken", broken))
        assert cli.main(self.ARGS) == 1
        assert "**FAIL**" in capsys.readouterr().out

    def test_unknown_name_exits_two(self, capsys):
        assert cli.main(["verify", "--paths", "nope"]) == 2
        assert "unknown path" in capsys.readouterr().err

    def test_list(self, capsys):
        assert cli.main(["verify", "--list"]) == 0
        out = capsys.readouterr().out
        assert "cluster-2x2" in out
        assert "anytime_bounds" in out
