"""Tests for the run-everything report runner."""

import pytest

from repro.datasets import taxi_dataset
from repro.eval.runner import ExperimentReport, render_markdown, run_all_experiments


@pytest.fixture(scope="module")
def small_dataset():
    return taxi_dataset(n_trajectories=5, seed=4)


class TestRunAll:
    def test_subset_selection(self, small_dataset):
        report = run_all_experiments(small_dataset, only=["fig10"])
        assert list(report.results) == ["fig10"]
        assert report.runtimes["fig10"] > 0
        assert report.total_runtime == report.runtimes["fig10"]

    def test_unknown_id_raises_naming_it_and_listing_valid_ids(self, small_dataset):
        with pytest.raises(ValueError, match=r"fig99.*valid ids.*fig10"):
            run_all_experiments(small_dataset, only=["fig99"])

    def test_results_carry_dataset_name(self, small_dataset):
        report = run_all_experiments(small_dataset, only=["fig10"])
        assert report.dataset == "taxi"
        assert report.results["fig10"].dataset == "taxi"

    def test_extension_experiment_available(self, small_dataset):
        report = run_all_experiments(small_dataset, only=["ext_sensitivity"])
        result = report.results["ext_sensitivity"]
        assert "STS" in result.metrics["precision"]
        text = render_markdown(report)
        assert "parameter sensitivity" in text


class TestRenderMarkdown:
    def test_renders_tables_and_runtimes(self, small_dataset):
        report = run_all_experiments(small_dataset, only=["fig10"])
        text = render_markdown(report)
        assert "# Evaluation report — taxi corpus" in text
        assert "Fig. 10: component ablation" in text
        assert "STS-N" in text
        assert "Runtime:" in text

    def test_empty_report(self):
        text = render_markdown(ExperimentReport(dataset="x"))
        assert "x corpus" in text
