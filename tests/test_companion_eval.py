"""Unit tests for the companion-detection evaluation harness."""

import numpy as np
import pytest

from repro.eval.companion import (
    CompanionCorpus,
    average_precision,
    companion_corpus,
    evaluate_companion_detection,
    roc_auc,
)


class TestROCAUC:
    def test_perfect_separation(self):
        labels = np.array([0, 0, 1, 1], dtype=bool)
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        assert roc_auc(labels, scores) == 1.0

    def test_inverted_separation(self):
        labels = np.array([1, 1, 0, 0], dtype=bool)
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        assert roc_auc(labels, scores) == 0.0

    def test_random_is_half(self):
        rng = np.random.default_rng(0)
        labels = rng.random(2000) < 0.3
        scores = rng.random(2000)
        assert roc_auc(labels, scores) == pytest.approx(0.5, abs=0.05)

    def test_ties_half_credit(self):
        labels = np.array([1, 0], dtype=bool)
        scores = np.array([0.5, 0.5])
        assert roc_auc(labels, scores) == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError, match="positive"):
            roc_auc(np.zeros(3, dtype=bool), np.ones(3))
        with pytest.raises(ValueError, match="align"):
            roc_auc(np.ones(2, dtype=bool), np.ones(3))

    def test_matches_pair_counting(self):
        rng = np.random.default_rng(1)
        labels = rng.random(60) < 0.4
        scores = rng.normal(size=60)
        pos = scores[labels]
        neg = scores[~labels]
        brute = np.mean([(p > n) + 0.5 * (p == n) for p in pos for n in neg])
        assert roc_auc(labels, scores) == pytest.approx(float(brute))


class TestAveragePrecision:
    def test_perfect_ranking(self):
        labels = np.array([1, 1, 0, 0], dtype=bool)
        scores = np.array([0.9, 0.8, 0.2, 0.1])
        assert average_precision(labels, scores) == 1.0

    def test_worst_ranking(self):
        labels = np.array([0, 0, 1], dtype=bool)
        scores = np.array([0.9, 0.8, 0.1])
        assert average_precision(labels, scores) == pytest.approx(1.0 / 3.0)

    def test_known_interleaving(self):
        # positions 1 and 3 in the ranking are positive: AP = (1/1 + 2/3)/2
        labels = np.array([1, 0, 1, 0], dtype=bool)
        scores = np.array([0.9, 0.8, 0.7, 0.6])
        assert average_precision(labels, scores) == pytest.approx((1.0 + 2.0 / 3.0) / 2.0)

    def test_validation(self):
        with pytest.raises(ValueError, match="positive"):
            average_precision(np.zeros(3, dtype=bool), np.ones(3))


class TestCompanionCorpus:
    def test_structure(self):
        corpus = companion_corpus(n_companion_pairs=3, n_independents=4, seed=1)
        assert len(corpus.trajectories) == 10
        assert len(corpus.companion_pairs) == 3
        assert corpus.is_companion(0, 1)
        assert corpus.is_companion(1, 0)  # order-insensitive
        assert not corpus.is_companion(0, 2)

    def test_companions_overlap_in_time(self):
        corpus = companion_corpus(n_companion_pairs=2, n_independents=0, seed=2)
        for i, j in corpus.companion_pairs:
            a, b = corpus.trajectories[i], corpus.trajectories[j]
            assert min(a.end_time, b.end_time) > max(a.start_time, b.start_time)

    def test_deterministic(self):
        a = companion_corpus(seed=5)
        b = companion_corpus(seed=5)
        for ta, tb in zip(a.trajectories, b.trajectories):
            assert ta == tb

    def test_validation(self):
        with pytest.raises(ValueError):
            companion_corpus(n_companion_pairs=0)
        with pytest.raises(ValueError):
            companion_corpus(n_independents=-1)


class TestEvaluateDetection:
    @pytest.fixture(scope="class")
    def corpus(self):
        return companion_corpus(n_companion_pairs=3, n_independents=5, seed=3)

    def test_sts_detects_well(self, corpus):
        from repro.core.noise import GaussianNoiseModel
        from repro.core.sts import STS
        from repro.eval import grid_covering

        grid = grid_covering(corpus.trajectories, corpus.location_error, margin=20.0)
        measure = STS(grid, noise_model=GaussianNoiseModel(corpus.location_error))
        result = evaluate_companion_detection(measure, corpus)
        assert result.n_positive == 3
        assert result.auc > 0.9
        assert result.average_precision > 0.7
        assert "AUC" in str(result)

    def test_degenerate_measure_is_chance(self, corpus):
        class Constant:
            name = "const"

            def score(self, a, b):
                return 0.5

        result = evaluate_companion_detection(Constant(), corpus)
        assert result.auc == pytest.approx(0.5)

    def test_spatial_only_weaker_than_sts(self, corpus):
        # DTW ignores time entirely — it should not beat STS on this task.
        from repro.core.noise import GaussianNoiseModel
        from repro.core.sts import STS
        from repro.eval import grid_covering
        from repro.similarity import DTW

        grid = grid_covering(corpus.trajectories, corpus.location_error, margin=20.0)
        sts_result = evaluate_companion_detection(
            STS(grid, noise_model=GaussianNoiseModel(corpus.location_error)), corpus
        )
        dtw_result = evaluate_companion_detection(DTW(), corpus)
        assert sts_result.auc >= dtw_result.auc - 0.05
