"""Live group monitoring from a sighting stream.

The batch examples assume trajectories at rest; this one replays a mall's
sensing feed as a time-ordered stream of ``(device, x, y, t)`` events into
the sliding-window :class:`~repro.streaming.StreamingColocationDetector`,
and reports which devices are currently moving together at periodic
evaluation ticks — the GruMon-style group monitoring the paper cites as a
motivating application.

Run:  python examples/live_monitoring.py
"""

import numpy as np

from repro.eval import grid_covering
from repro.simulation import (
    FloorPlan,
    poisson_times,
    sample_path,
    simulate_companions,
    simulate_visitors,
)
from repro.streaming import SightingEvent, StreamingColocationDetector

NOISE = 3.0
WINDOW = 240.0  # the detector only remembers the last 4 minutes
EVAL_EVERY = 120.0

rng = np.random.default_rng(31)
plan = FloorPlan.generate(rng=rng)

# Ground truth: devices 0+1 shop together; 2-5 are independent visitors.
leader, follower = simulate_companions(plan, rng, lateral_offset=1.2)
others = simulate_visitors(plan, 4, rng, time_window=200.0)
paths = {"dev-0": leader, "dev-1": follower}
paths.update({f"dev-{i + 2}": p for i, p in enumerate(others)})

# Turn every path into sporadic noisy sightings, then merge into one
# time-ordered stream (what a sensing backend actually emits).
events = []
for device_id, path in paths.items():
    for t in poisson_times(path.start_time, path.end_time, 12.0, rng):
        traj = sample_path(path, np.array([t]), noise_std=NOISE, rng=rng)
        if len(traj):
            p = traj[0]
            events.append(SightingEvent(device_id, p.x, p.y, p.t))
events.sort(key=lambda e: e.t)
print(f"replaying {len(events)} sightings from {len(paths)} devices\n")

grid = grid_covering(
    [sample_path(p, poisson_times(p.start_time, p.end_time, 30.0, rng)) for p in paths.values()],
    cell_size=NOISE,
    margin=25.0,
)
detector = StreamingColocationDetector(grid, window=WINDOW)

next_eval = events[0].t + EVAL_EVERY
for event in events:
    detector.ingest(event)
    if event.t >= next_eval:
        top = detector.evaluate(threshold=0.003)[:3]
        listing = "; ".join(str(s) for s in top) if top else "(no co-moving pairs)"
        print(f"t={event.t:7.0f}s  active={len(detector.active_objects)}  {listing}")
        next_eval += EVAL_EVERY

final = detector.evaluate(threshold=0.0)
if final:
    best = final[0]
    verdict = "correct" if {best.object_a, best.object_b} == {"dev-0", "dev-1"} else "UNEXPECTED"
    print(f"\nfinal top pair: {best}  ({verdict} — ground truth is dev-0 + dev-1)")
else:
    print("\nno pairs scorable in the final window")
