"""Contact tracing with co-location events.

Given one "index case" device in a simulated mall, find every other device
whose trajectory probably overlapped with it, and report *when* and *how
long* — the co-location events behind the STS score.  Exposure is the
time-integral of the co-location probability, so brief corridor crossings
and long shared dwells are distinguished.

Run:  python examples/contact_tracing.py
"""

import numpy as np

from repro import STS, GaussianNoiseModel, detect_colocation_events
from repro.eval import grid_covering
from repro.simulation import (
    FloorPlan,
    poisson_times,
    sample_path,
    simulate_companions,
    simulate_visitors,
)

NOISE = 3.0
MEAN_SIGHTING_GAP = 12.0

rng = np.random.default_rng(23)
plan = FloorPlan.generate(rng=rng)

# The index case shops with a companion; five other visitors browse
# independently in the same window (some will cross paths briefly).
index_path, companion_path = simulate_companions(plan, rng, lateral_offset=1.2)
other_paths = simulate_visitors(plan, 5, rng, time_window=120.0)


def observe(path, device_id):
    times = poisson_times(path.start_time, path.end_time, MEAN_SIGHTING_GAP, rng)
    return sample_path(path, times, noise_std=NOISE, rng=rng, object_id=device_id)


index_case = observe(index_path, "index-case")
others = [observe(companion_path, "companion")] + [
    observe(p, f"visitor-{i}") for i, p in enumerate(other_paths)
]

corpus = [index_case, *others]
grid = grid_covering(corpus, cell_size=NOISE, margin=20.0)
measure = STS(grid, noise_model=GaussianNoiseModel(NOISE))

# Calibrate the event threshold against self-similarity: even a perfectly
# co-located pair cannot exceed the self co-location level under noise.
self_level = measure.similarity(index_case, index_case)
threshold = 0.1 * self_level

print(f"index case observed {len(index_case)} times; "
      f"event threshold = {threshold:.3f} (10% of self level {self_level:.3f})\n")

report = []
for device in others:
    events = detect_colocation_events(
        measure, index_case, device, threshold=threshold, time_step=5.0
    )
    exposure = sum(e.exposure for e in events)
    report.append((device.object_id, events, exposure))

report.sort(key=lambda row: -row[2])
print(f"{'device':<12}{'events':>8}{'total exposure':>16}   strongest events")
for device_id, events, exposure in report:
    strongest = sorted(events, key=lambda e: -e.exposure)[:3]
    detail = "; ".join(str(e) for e in strongest) if strongest else "-"
    if len(events) > 3:
        detail += f"; ... ({len(events) - 3} more)"
    print(f"{device_id:<12}{len(events):>8}{exposure:>16.1f}   {detail}")

top = report[0]
print(f"\nhighest exposure: {top[0]} "
      f"({'correct' if top[0] == 'companion' else 'UNEXPECTED'} — ground truth is 'companion')")
