"""Companion detection in a shopping mall (contact-tracing scenario).

Simulates a mall with WiFi-style sensing: two companions walk the mall
side by side while other visitors browse independently.  Each device is
seen sporadically (Poisson sightings) with ~3 m localization error.  The
task — one of the paper's motivating applications — is to find which pair
of devices moved together, for contact tracing or group analytics.

STS is compared against DTW (spatial-only) to show why the temporal
dimension and the probabilistic location model matter indoors.

Run:  python examples/companion_detection.py
"""

import itertools

import numpy as np

from repro import STS, GaussianNoiseModel
from repro.eval import grid_covering
from repro.similarity import DTW
from repro.simulation import (
    FloorPlan,
    poisson_times,
    sample_path,
    simulate_companions,
    simulate_visitors,
)

NOISE = 3.0  # localization error of the sensing system, meters
MEAN_SIGHTING_GAP = 15.0  # seconds between WiFi sightings, on average

rng = np.random.default_rng(42)
plan = FloorPlan.generate(rng=rng)

# Ground truth: device 0 and device 1 walk together; 2-7 are independent.
leader_path, follower_path = simulate_companions(plan, rng, lateral_offset=1.5)
other_paths = simulate_visitors(plan, 6, rng, time_window=300.0)
paths = [leader_path, follower_path, *other_paths]


def observe(path, device_id):
    """Sporadic noisy sightings of one device."""
    times = poisson_times(path.start_time, path.end_time, MEAN_SIGHTING_GAP, rng)
    return sample_path(path, times, noise_std=NOISE, rng=rng, object_id=device_id)


devices = [observe(p, f"device-{i}") for i, p in enumerate(paths)]
grid = grid_covering(devices, cell_size=NOISE, margin=20.0)

sts = STS(grid, noise_model=GaussianNoiseModel(NOISE))
dtw = DTW()

print(f"mall: {grid.n_cols}x{grid.n_rows} cells; {len(devices)} devices observed\n")
print("top device pairs by each measure (truth: device-0 + device-1):\n")

for name, scored in [
    ("STS  (higher = together)", lambda a, b: sts.similarity(a, b)),
    ("DTW  (lower = together) ", lambda a, b: -dtw(a, b)),
]:
    ranking = sorted(
        itertools.combinations(devices, 2),
        key=lambda pair: scored(pair[0], pair[1]),
        reverse=True,
    )
    print(f"  {name}")
    for a, b in ranking[:3]:
        marker = "  <-- true companions" if {a.object_id, b.object_id} == {
            "device-0",
            "device-1",
        } else ""
        print(f"    {a.object_id} + {b.object_id}: score={scored(a, b):+.4f}{marker}")
    print()

best_pair = max(
    itertools.combinations(devices, 2), key=lambda pair: sts.similarity(pair[0], pair[1])
)
found = {best_pair[0].object_id, best_pair[1].object_id} == {"device-0", "device-1"}
print("STS identified the companions:", "YES" if found else "NO")
