"""Group analytics: find shopping parties in a simulated mall.

Two parties (a pair and a trio — simulated as companions of companions)
shop alongside independent visitors.  The pipeline: clean the sighting
logs (:mod:`repro.preprocess`), score pairwise STS with a temporal
pre-filter, and read co-moving groups off the similarity graph
(:mod:`repro.groups`).

Run:  python examples/group_analytics.py
"""

import numpy as np

from repro import STS, GaussianNoiseModel, Trajectory
from repro.eval import grid_covering
from repro.groups import detect_groups
from repro.preprocess import clean
from repro.simulation import (
    FloorPlan,
    poisson_times,
    sample_path,
    simulate_companions,
    simulate_pedestrian_path,
    simulate_visitors,
)

NOISE = 3.0
rng = np.random.default_rng(77)
plan = FloorPlan.generate(rng=rng)

# Party A: two people side by side.  Party B: three people (leader + two
# offset followers).  Plus three independent visitors, same time window.
a1, a2 = simulate_companions(plan, rng, lateral_offset=1.3)
b_leader = simulate_pedestrian_path(plan, rng, start_time=30.0)
b2_xy = b_leader.xy + np.array([1.0, 0.8])
b3_xy = b_leader.xy + np.array([-0.9, 1.1])
from repro.core.trajectory import Path  # noqa: E402 - example-local import

b2 = Path(b2_xy, b_leader.t.copy(), object_id="b2")
b3 = Path(b3_xy, b_leader.t.copy(), object_id="b3")
independents = simulate_visitors(plan, 3, rng, time_window=120.0)

paths = {
    "partyA-1": a1, "partyA-2": a2,
    "partyB-1": b_leader, "partyB-2": b2, "partyB-3": b3,
    "solo-1": independents[0], "solo-2": independents[1], "solo-3": independents[2],
}


def observe(path, device_id) -> Trajectory:
    times = poisson_times(path.start_time, path.end_time, 12.0, rng)
    return sample_path(path, times, noise_std=NOISE, rng=rng, object_id=device_id)


# Raw logs -> cleaned trajectories (drop GPS-style spikes, split sessions).
devices = []
for device_id, path in paths.items():
    raw = observe(path, device_id)
    trips = clean(raw, max_speed=4.0, max_gap=300.0)
    devices.extend(trips)

grid = grid_covering(devices, cell_size=NOISE, margin=20.0)
measure = STS(grid, noise_model=GaussianNoiseModel(NOISE))
self_level = float(np.mean([measure.similarity(d, d) for d in devices]))
threshold = 0.2 * self_level

result = detect_groups(measure, devices, threshold=threshold, min_time_overlap=60.0)
print(f"{len(devices)} devices; scored {result.pairs_scored} temporally-plausible pairs; "
      f"threshold {threshold:.3f}\n")

print("detected groups:")
for group in result.groups:
    members = ", ".join(devices[i].object_id or str(i) for i in group)
    print(f"  {{{members}}}")
if not result.groups:
    print("  (none)")

print("\nstrongest co-movement edges:")
for i, j, sim in sorted(result.edges, key=lambda e: -e[2])[:5]:
    print(f"  {devices[i].object_id} ~ {devices[j].object_id}: {sim:.4f}")

truth = [{"partyA-1", "partyA-2"}, {"partyB-1", "partyB-2", "partyB-3"}]
found = [set(devices[i].object_id for i in g) for g in result.groups]
verdict = "YES" if all(t in found for t in truth) else "PARTIAL/NO"
print(f"\nboth ground-truth parties recovered exactly: {verdict}")
