"""Robustness to location noise: STS vs the baselines (Figs. 8-9 in miniature).

Distorts a small mall corpus with increasing Gaussian noise (Eq. 14) and
tracks matching precision for STS, CATS, SST and WGM.  The paper's claim —
the gap between STS and threshold/point-based measures widens as noise
grows — is visible even at this tiny scale.

Run:  python examples/noise_robustness.py
"""

import numpy as np

from repro.datasets import mall_dataset
from repro.eval import (
    build_matching_pair,
    default_measures,
    evaluate_matching,
    grid_covering,
)
from repro.simulation import distort

BETAS = [0.0, 2.0, 4.0, 6.0, 8.0]
METHODS = ["STS", "CATS", "SST", "WGM"]

rng = np.random.default_rng(11)
dataset = mall_dataset(n_trajectories=12, seed=11)
d1_clean, d2_clean = build_matching_pair(dataset.trajectories)

print(f"matching precision vs injected location noise ({len(d1_clean)} pedestrians)\n")
print(f"{'noise β (m)':<14}" + "".join(f"{m:>8}" for m in METHODS))

series: dict[str, list[float]] = {m: [] for m in METHODS}
for beta in BETAS:
    d1 = [distort(t, beta, rng) for t in d1_clean]
    d2 = [distort(t, beta, rng) for t in d2_clean]
    corpus = d1 + d2
    grid = grid_covering(corpus, dataset.cell_size, dataset.margin)
    sigma = float(np.hypot(dataset.location_error, beta))
    measures = default_measures(grid, corpus, sigma, include=METHODS)
    row = []
    for name in METHODS:
        precision = evaluate_matching(measures[name], d1, d2).precision
        series[name].append(precision)
        row.append(precision)
    print(f"{beta:<14g}" + "".join(f"{v:>8.2f}" for v in row))

print("\naverage precision across the sweep:")
for name in METHODS:
    print(f"  {name:<6} {np.mean(series[name]):.3f}")
