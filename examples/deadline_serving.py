"""Deadline-aware serving: anytime scores, budgets and graceful degradation.

A latency-bound deployment cannot wait for the full STS computation on
every tick.  This example shows the three layers of the serving story:

1. ``anytime_similarity`` — a partial Eq. 10 evaluation whose
   ``AnytimeScore`` carries a *rigorous* ``[lower, upper]`` interval
   around the exact score, tightening as the budget grows;
2. ``DeadlineScorer`` — the degradation ladder (full grid → coarsened
   grid → filter-only bound) that always answers within a ``Budget``;
3. ``StreamingColocationDetector.evaluate(deadline=...)`` — the online
   loop with bounded admission queue, freshest-first shedding, per-pair
   circuit breakers, and a ``ServiceHealth`` account of every trade-off
   made to meet the deadline.

Run:  python examples/deadline_serving.py
"""

import numpy as np

from repro import (
    STS,
    AnytimeScore,
    Budget,
    DeadlineScorer,
    Grid,
    Trajectory,
    anytime_similarity,
)
from repro.streaming import SightingEvent, StreamingColocationDetector

rng = np.random.default_rng(7)

# ----------------------------------------------------------------------
# Two companions walking a mall corridor, sporadically sampled.
# ----------------------------------------------------------------------
def sporadic_walk(oid, x0, y, n=20):
    ts = np.sort(rng.uniform(0.0, 300.0, size=n))
    xs = x0 + 1.2 * ts / 10.0 + rng.normal(0, 1.5, size=n)
    ys = y + rng.normal(0, 1.5, size=n)
    return Trajectory.from_arrays(xs, ys, ts, oid)


alice = sporadic_walk("alice", 0.0, 10.0)
bob = sporadic_walk("bob", 1.0, 11.0)
grid = Grid(-10, 0, 60, 25, cell_size=2.0)
measure = STS(grid)
exact = measure.similarity(alice, bob)
print(f"exact STS(alice, bob) = {exact:.4f}\n")

# ----------------------------------------------------------------------
# 1. Anytime evaluation: the interval tightens as the budget grows.
# ----------------------------------------------------------------------
print("anytime evaluation under growing term budgets:")
for k in (0, 5, 10, 20, 40):
    score: AnytimeScore = anytime_similarity(
        measure, alice, bob, budget=Budget(max_terms=k), batch_size=4
    )
    inside = score.lower <= exact <= score.upper
    print(f"  {k:3d} terms -> {score}   contains exact: {inside}")
print("  (an unbounded run is bitwise equal to STS.similarity)\n")

# ----------------------------------------------------------------------
# 2. The degradation ladder under a wall-clock deadline.
# ----------------------------------------------------------------------
from repro.serving import ServiceHealth

scorer = DeadlineScorer(measure)
for deadline_ms in (0.5, 50.0, None):
    budget = Budget(deadline_ms=deadline_ms)
    health = ServiceHealth(deadline_ms=deadline_ms)
    result = scorer.score(alice, bob, budget=budget, health=health, subject="alice~bob")
    label = "unbounded" if deadline_ms is None else f"{deadline_ms:g} ms"
    print(f"deadline {label:>9}: rung={result.rung:<11} {result}")
print()

# ----------------------------------------------------------------------
# 3. The streaming loop: bounded queue + deadline + health report.
# ----------------------------------------------------------------------
detector = StreamingColocationDetector(
    grid,
    window=600.0,
    on_error="skip",       # malformed sightings are dropped and counted
    max_pending=64,        # bounded admission queue: stalest shed first
)

# A realistic feed: four devices (fresh random walks, so pair scores
# differ from the batch section above), one malformed record, and one
# burst that overflows the admission queue.
for oid, x0, y in [("alice", 0, 10), ("bob", 1, 11), ("carol", 0, 20), ("dave", 30, 5)]:
    for p in sporadic_walk(oid, x0, y):
        detector.offer(SightingEvent(oid, p.x, p.y, p.t))
detector.ingest(SightingEvent("noisy", float("nan"), 0.0, 50.0))  # dropped, counted
for k in range(80):  # burst beyond max_pending: stalest sightings shed
    detector.offer(SightingEvent("burst", float(k % 40), 3.0, 200.0 + k / 10))

scores = detector.evaluate(deadline=0.25)  # a 250 ms tick
health = detector.last_health

print("evaluation tick under a 250 ms deadline:")
for s in scores[:4]:
    print(f"  {s}")
print()
print(f"health: {health.summary()}")
print(f"  rungs taken:      {health.rungs}")
print(f"  pairs shed:       {health.pairs_shed}")
print(f"  malformed events: {health.malformed_events}")
print(f"  queue shed:       {health.shed_events}")
print(f"  deadline hit:     {health.deadline_hit}")
print()

# ----------------------------------------------------------------------
# 4. The metrics registry: the cumulative rung distribution across
#    everything this process scored (sections 2 and 3 combined).
# ----------------------------------------------------------------------
from repro import get_registry

snapshot = get_registry().snapshot()
rung_counts = snapshot.get("counters", {}).get("repro_ladder_rung_total", {})
if rung_counts:
    total = sum(rung_counts.values())
    print("ladder-rung distribution (repro_ladder_rung_total):")
    for label, count in sorted(rung_counts.items(), key=lambda kv: -kv[1]):
        rung = label.split('"')[1] if '"' in label else label
        print(f"  {rung:<12} {int(count):3d}  ({count / total:.0%})")
else:
    print("(metrics disabled: run without REPRO_OBS=off to see the rung distribution)")
