"""End-to-end pipeline on Porto-format data.

Shows the exact steps a user with the real Porto taxi CSV (ECML/PKDD 2015
challenge format) would run: parse + project the polylines, filter short
trips, alternate-split into two "sensing systems", and evaluate trajectory
matching.  Without the real download (this repository is built offline),
the script writes a small synthetic file in the same CSV format first, so
the loader code path is exercised either way.

Run:  python examples/porto_pipeline.py [path/to/train.csv]
"""

import csv
import json
import sys
import tempfile
from pathlib import Path

import numpy as np

from repro.datasets import load_porto_csv
from repro.datasets.porto import PORTO_REPORT_INTERVAL
from repro.eval import (
    build_matching_pair,
    default_measures,
    evaluate_matching,
    grid_covering,
)

PORTO_CENTER = (-8.62, 41.15)  # lon, lat


def write_synthetic_porto_csv(path: Path, n_trips: int = 12, seed: int = 3) -> None:
    """A small file in the challenge's exact CSV format (for demo only)."""
    rng = np.random.default_rng(seed)
    header = [
        "TRIP_ID", "CALL_TYPE", "ORIGIN_CALL", "ORIGIN_STAND",
        "TAXI_ID", "TIMESTAMP", "DAY_TYPE", "MISSING_DATA", "POLYLINE",
    ]
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        for k in range(n_trips):
            # A random-walk drive starting near the city center; one fix
            # per 15 s, 25-40 fixes per trip.
            n_fixes = int(rng.integers(25, 41))
            lon, lat = PORTO_CENTER
            lon += rng.normal(0, 0.01)
            lat += rng.normal(0, 0.01)
            heading = rng.uniform(0, 2 * np.pi)
            polyline = []
            for _ in range(n_fixes):
                polyline.append([round(lon, 6), round(lat, 6)])
                heading += rng.normal(0, 0.4)
                step = rng.uniform(0.0008, 0.0018)  # ~90-200 m per 15 s
                lon += step * np.cos(heading)
                lat += step * np.sin(heading) * 0.75
            writer.writerow(
                [f"trip-{k}", "A", "", "", f"2000{k:04d}",
                 1372636858 + k * 600, "A", "False", json.dumps(polyline)]
            )


def main() -> None:
    if len(sys.argv) > 1:
        csv_path = Path(sys.argv[1])
        print(f"loading real Porto data from {csv_path}")
    else:
        csv_path = Path(tempfile.gettempdir()) / "porto_demo.csv"
        write_synthetic_porto_csv(csv_path)
        print(f"no CSV given — wrote a synthetic Porto-format demo file to {csv_path}")

    trajectories = load_porto_csv(csv_path, max_trajectories=30, min_length=20)
    print(f"loaded {len(trajectories)} trips of >= 20 fixes "
          f"(one per {PORTO_REPORT_INTERVAL:.0f} s)")
    lengths = [len(t) for t in trajectories]
    print(f"trip lengths: min={min(lengths)} median={int(np.median(lengths))} max={max(lengths)}")

    # The paper's matching protocol (Fig. 3) on the loaded corpus.
    d1, d2 = build_matching_pair(trajectories)
    corpus = d1 + d2
    grid = grid_covering(corpus, cell_size=100.0, margin=400.0)
    print(f"grid: {grid.n_cols}x{grid.n_rows} cells of {grid.cell_size:.0f} m\n")

    measures = default_measures(grid, corpus, location_error=10.0,
                                include=["STS", "CATS", "SST", "WGM"])
    for measure in measures.values():
        print(f"  {evaluate_matching(measure, d1, d2)}")


if __name__ == "__main__":
    main()
