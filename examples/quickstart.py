"""Quickstart: measure spatial-temporal similarity between two trajectories.

Builds two trajectories of people walking the same corridor with noisy,
asynchronously sampled observations (the exact setting of the paper's
Figure 1), computes their STS, and contrasts it with a passer-by heading
the opposite way at the same time.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import STS, GaussianNoiseModel, Grid, Trajectory

rng = np.random.default_rng(0)

# ----------------------------------------------------------------------
# Two people walking together east along y=10 at ~1.2 m/s.  Their sensors
# fire at different times (sporadic sampling) and each fix carries ~2 m of
# localization error (location noise) — so the raw points never coincide.
# ----------------------------------------------------------------------
def observe(times, speed=1.2, y=10.0, noise=2.0, reverse=False):
    times = np.asarray(times, dtype=float)
    xs = 5.0 + speed * times
    if reverse:
        xs = 65.0 - speed * times
    return Trajectory.from_arrays(
        xs + rng.normal(0, noise, len(times)),
        y + rng.normal(0, noise, len(times)),
        times,
    )


alice = observe(times=[0, 7, 15, 21, 30, 38, 45])
bob = observe(times=[3, 11, 18, 26, 33, 41, 48])          # same walk, offset clock
carol = observe(times=[2, 9, 17, 25, 34, 42, 47], reverse=True)  # opposite direction

# ----------------------------------------------------------------------
# Configure STS: a grid over the area (cell ≈ localization error, as the
# paper recommends) and the sensing system's noise level.  The speed model
# is estimated per trajectory automatically (Eq. 6) — no training data.
# ----------------------------------------------------------------------
grid = Grid(min_x=-10, min_y=-10, max_x=80, max_y=30, cell_size=2.0)
measure = STS(grid, noise_model=GaussianNoiseModel(sigma=2.0))

print("STS(alice, bob)   =", f"{measure.similarity(alice, bob):.4f}   (walking together)")
print("STS(alice, carol) =", f"{measure.similarity(alice, carol):.4f}   (opposite direction)")
print("STS(alice, alice) =", f"{measure.similarity(alice, alice):.4f}   (self)")

# ----------------------------------------------------------------------
# Inspect the per-timestamp co-location probabilities behind Eq. 10.
# Alice and Carol cross paths mid-corridor: their co-location probability
# spikes exactly once, while Alice and Bob stay co-located throughout.
# ----------------------------------------------------------------------
times, cps = measure.colocation_profile(alice, carol)
peak = times[np.argmax(cps)]
print(f"\nalice-carol co-location peaks at t={peak:.0f}s (they cross mid-corridor):")
for t, cp in zip(times, cps):
    bar = "#" * int(cp * 60)
    print(f"  t={t:4.0f}s  CP={cp:.3f} {bar}")
