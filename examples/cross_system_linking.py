"""Cross-system trajectory linking on a taxi corpus (Section VI protocol).

A vehicle observed by two different sensing systems leaves two different
trajectories; re-identifying which trajectory in system B belongs to which
in system A is the paper's evaluation task.  This example builds a
Porto-like synthetic taxi corpus, alternately splits every trajectory into
the two "systems" (Fig. 3), downsamples system B more aggressively
(heterogeneous rates), and scores all seven measures on precision and
mean rank.

Run:  python examples/cross_system_linking.py
"""

import numpy as np

from repro.datasets import taxi_dataset
from repro.eval import (
    build_matching_pair,
    default_measures,
    evaluate_matching,
    grid_covering,
)
from repro.simulation import downsample

N_TAXIS = 20
SYSTEM_B_RATE = 0.4  # system B keeps only 40% of its sightings

rng = np.random.default_rng(7)
dataset = taxi_dataset(n_trajectories=N_TAXIS, seed=7)

# Fig. 3 protocol: alternate split manufactures ground truth.
system_a, system_b_full = build_matching_pair(dataset.trajectories)
system_b = [downsample(t, SYSTEM_B_RATE, rng) for t in system_b_full]

corpus = system_a + system_b
grid = grid_covering(corpus, dataset.cell_size, dataset.margin)
measures = default_measures(grid, corpus, dataset.location_error)

print(
    f"linking {N_TAXIS} taxis across two systems "
    f"(system B downsampled to {SYSTEM_B_RATE:.0%})\n"
)
print(f"{'measure':<8}{'precision':>12}{'mean rank':>12}")
results = []
for measure in measures.values():
    outcome = evaluate_matching(measure, system_a, system_b)
    results.append(outcome)
    print(f"{outcome.measure:<8}{outcome.precision:>12.3f}{outcome.mean_rank:>12.2f}")

best = max(results, key=lambda r: (r.precision, -r.mean_rank))
print(f"\nbest measure under heterogeneous sampling: {best.measure}")

# Where the losses come from: queries whose counterpart was not ranked 1st.
sts_result = next(r for r in results if r.measure == "STS")
missed = np.nonzero(sts_result.ranks > 1)[0]
if missed.size:
    print(f"STS missed {missed.size} queries (ranks: {sts_result.ranks[missed].tolist()})")
else:
    print("STS re-identified every taxi correctly.")
