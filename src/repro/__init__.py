"""repro — reproduction of "Spatial-Temporal Similarity for Trajectories
with Location Noise and Sporadic Sampling" (Li et al., ICDE 2021).

Public API highlights:

* :class:`repro.Trajectory`, :class:`repro.Grid` — data model;
* :class:`repro.STS` — the paper's similarity measure (plus the
  :func:`repro.sts_n` / :func:`repro.sts_g` / :func:`repro.sts_f`
  ablation variants);
* :mod:`repro.similarity` — CATS, EDwP, APM, KF, WGM, SST and the
  classic DTW/LCSS/EDR/ERP/Fréchet/Hausdorff measures;
* :mod:`repro.datasets` — synthetic taxi/mall corpora and loaders for the
  real Porto CSV and mall-style sighting logs;
* :mod:`repro.eval` — the matching task, metrics and per-figure
  experiment runners of the paper's Section VI;
* :mod:`repro.errors` — the structured error taxonomy
  (:class:`repro.ReproError` and friends) and the ``on_error``
  policy knob shared by the sanitization, loading and scoring layers;
* :mod:`repro.serving` — the deadline-aware online path:
  :class:`repro.Budget`, :class:`repro.AnytimeScore`,
  :class:`repro.DeadlineScorer`, :class:`repro.CircuitBreaker` and the
  :class:`repro.ServiceHealth` degradation report;
* :mod:`repro.obs` — zero-dependency observability:
  :func:`repro.get_registry` (metrics), :func:`repro.trace_span`
  (hierarchical tracing), disabled globally with ``REPRO_OBS=off``.
"""

from .errors import (
    CheckpointError,
    ChunkTimeoutError,
    DegenerateTrajectoryError,
    MalformedRecordError,
    ReproError,
    ScoreCorruptionError,
    WALCorruptionError,
    WALError,
    WALWriteError,
    WorkerCrashError,
)
from .core import (
    STS,
    ColocationEvent,
    DeterministicNoiseModel,
    FrequencyTransitionModel,
    GaussianNoiseModel,
    GaussianSpeedModel,
    Grid,
    KDESpeedModel,
    NoiseModel,
    Path,
    SpeedTransitionModel,
    Trajectory,
    TrajectoryPoint,
    TrajectorySTP,
    TransitionModel,
    UniformDiskNoiseModel,
    colocation_probability,
    colocation_timeline,
    detect_colocation_events,
    sts_b,
    sts_f,
    sts_g,
    sts_n,
)
from .obs import MetricsRegistry, Tracer, get_registry, get_tracer, trace_span
from .serving import (
    AnytimeScore,
    Budget,
    CircuitBreaker,
    DeadlineScorer,
    ServiceEvent,
    ServiceHealth,
    anytime_similarity,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "Trajectory",
    "TrajectoryPoint",
    "Path",
    "Grid",
    "NoiseModel",
    "GaussianNoiseModel",
    "DeterministicNoiseModel",
    "UniformDiskNoiseModel",
    "KDESpeedModel",
    "GaussianSpeedModel",
    "TransitionModel",
    "SpeedTransitionModel",
    "FrequencyTransitionModel",
    "TrajectorySTP",
    "colocation_probability",
    "ColocationEvent",
    "colocation_timeline",
    "detect_colocation_events",
    "STS",
    "sts_n",
    "sts_g",
    "sts_f",
    "sts_b",
    "ReproError",
    "MalformedRecordError",
    "DegenerateTrajectoryError",
    "WorkerCrashError",
    "ChunkTimeoutError",
    "ScoreCorruptionError",
    "CheckpointError",
    "WALError",
    "WALWriteError",
    "WALCorruptionError",
    "AnytimeScore",
    "Budget",
    "CircuitBreaker",
    "DeadlineScorer",
    "ServiceEvent",
    "ServiceHealth",
    "anytime_similarity",
    "MetricsRegistry",
    "Tracer",
    "get_registry",
    "get_tracer",
    "trace_span",
]
