"""Crash-safe journaling for long runs: atomic write-rename checkpoints.

Two consumers:

* :class:`PairwiseCheckpoint` — journals completed *chunks* of a
  pairwise similarity matrix (:meth:`repro.core.STS.pairwise` /
  :class:`repro.parallel.ParallelSTS`), so a run killed halfway resumes
  from the last completed chunk instead of rescoring everything.
* :class:`ExperimentCheckpoint` — journals completed *experiments* of
  :func:`repro.eval.runner.run_all_experiments`, one file per
  experiment id.

Both write with the atomic write-rename idiom
(:func:`write_json_atomic`): the payload is written to a sibling
temporary file, fsynced, then ``os.replace``d over the target.  A
``SIGKILL`` at any instant leaves either the previous complete
checkpoint or the new complete checkpoint — never a torn file.

Every checkpoint embeds a *fingerprint* of the run that produced it
(dataset, seed, matrix shape, chunk plan, ...).  Resuming against a
file whose fingerprint does not match raises
:class:`~repro.errors.CheckpointError`: silently splicing results from
a different run would be far worse than recomputing.

Scores round-trip exactly: JSON serializes Python floats via
``repr``, which is lossless for IEEE-754 doubles, so a resumed matrix
is bitwise-identical to an uninterrupted one.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path as FilePath

from .errors import CheckpointError

__all__ = [
    "write_json_atomic",
    "fsync_directory",
    "fingerprint_digest",
    "PairwiseCheckpoint",
    "ExperimentCheckpoint",
]


def fsync_directory(directory: str | FilePath) -> None:
    """fsync a directory so a just-renamed entry survives power loss.

    ``os.replace`` makes the rename atomic, but on ext4/xfs the *directory
    entry* update lives in the parent directory's metadata and is not
    durable until the directory itself is fsynced — a crash right after
    the rename can roll the directory back to a state where the new name
    never existed.  Platforms whose directories cannot be opened or
    fsynced (Windows) are skipped: rename durability there is
    best-effort, exactly as it was before this helper existed.
    """
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(fd)


def fingerprint_digest(fingerprint: dict, length: int = 10) -> str:
    """A short stable hex digest of a JSON-serializable fingerprint."""
    digest = hashlib.sha1(
        json.dumps(fingerprint, sort_keys=True, default=str).encode("utf-8")
    ).hexdigest()
    return digest[:length]


def write_json_atomic(path: str | FilePath, payload: dict) -> None:
    """Write ``payload`` as JSON to ``path`` atomically *and durably*.

    Write-rename: the payload is written to a sibling temporary file
    (same directory, so the final ``os.replace`` stays within one
    filesystem — rename atomicity holds only then), fsynced, renamed
    over the target, and then the parent directory is fsynced so the
    rename itself survives a crash (see :func:`fsync_directory`).
    """
    path = FilePath(path)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    fsync_directory(path.parent)


def _read_json(path: FilePath, what: str) -> dict:
    try:
        with open(path, encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise CheckpointError(f"unreadable {what} checkpoint {path}: {exc}") from exc


def _check_fingerprint(found: dict, expected: dict, path: FilePath, what: str) -> None:
    if found != expected:
        raise CheckpointError(
            f"{what} checkpoint {path} belongs to a different run: "
            f"found fingerprint {found!r}, expected {expected!r}"
        )


class PairwiseCheckpoint:
    """Chunk journal for one pairwise matrix computation.

    Parameters
    ----------
    path:
        Journal file.  Created on the first completed chunk; an existing
        file is loaded and validated against ``fingerprint``.
    fingerprint:
        JSON-serializable identity of the computation (shape, pair
        count, chunk count, measure name).  The chunk plan must be
        reproducible for resume to be meaningful, so the fingerprint
        pins it.
    flush_every:
        Completed chunks per journal rewrite.  ``1`` (default) persists
        after every chunk — maximum durability; raise it to trade
        durability for fewer writes on fast chunks.
    """

    VERSION = 1

    def __init__(
        self, path: str | FilePath, fingerprint: dict, flush_every: int = 1
    ):
        if flush_every < 1:
            raise ValueError(f"flush_every must be >= 1, got {flush_every}")
        self.path = FilePath(path)
        self.fingerprint = fingerprint
        self.flush_every = int(flush_every)
        self._chunks: dict[int, list[tuple[int, int, float]]] = {}
        self._pending = 0
        if self.path.exists():
            data = _read_json(self.path, "pairwise")
            _check_fingerprint(
                data.get("fingerprint"), fingerprint, self.path, "pairwise"
            )
            self._chunks = {
                int(k): [(int(i), int(j), float(s)) for i, j, s in triples]
                for k, triples in data.get("chunks", {}).items()
            }

    # ------------------------------------------------------------------
    @property
    def completed(self) -> dict[int, list[tuple[int, int, float]]]:
        """Journaled chunks (``chunk index -> triples``), a copy."""
        return {k: list(v) for k, v in self._chunks.items()}

    def record(self, chunk_index: int, triples) -> None:
        """Journal one completed chunk (flushes per ``flush_every``)."""
        self._chunks[int(chunk_index)] = [
            (int(i), int(j), float(s)) for i, j, s in triples
        ]
        self._pending += 1
        if self._pending >= self.flush_every:
            self.flush()

    def flush(self) -> None:
        """Persist the journal atomically."""
        write_json_atomic(
            self.path,
            {
                "version": self.VERSION,
                "fingerprint": self.fingerprint,
                "chunks": {
                    str(k): [[i, j, s] for i, j, s in triples]
                    for k, triples in sorted(self._chunks.items())
                },
            },
        )
        self._pending = 0


class ExperimentCheckpoint:
    """Per-experiment journal for :func:`~repro.eval.runner.run_all_experiments`.

    One ``<exp_id>-<fp>.json`` file per completed experiment under
    ``directory``, where ``<fp>`` is a short hash of the run fingerprint
    (dataset name and seed).  Hashing the fingerprint into the filename
    lets runs with *different* configurations share one checkpoint
    directory — each resumes its own journal — instead of colliding and
    erroring only at resume time.  Each file carries the full
    fingerprint (still validated on load, guarding against hash
    collisions and hand-renamed files), the experiment's
    :meth:`~repro.eval.experiments.SweepResult.to_dict` payload, and its
    wall-clock runtime.

    Journals written by earlier versions under the bare ``<exp_id>.json``
    name are still picked up when they match the fingerprint.
    """

    VERSION = 1

    def __init__(self, directory: str | FilePath, fingerprint: dict):
        self.directory = FilePath(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fingerprint = fingerprint
        self.fingerprint_hash = fingerprint_digest(fingerprint)

    def _path(self, exp_id: str) -> FilePath:
        return self.directory / f"{exp_id}-{self.fingerprint_hash}.json"

    def _legacy_path(self, exp_id: str) -> FilePath:
        return self.directory / f"{exp_id}.json"

    def load(self, exp_id: str) -> tuple[dict, float] | None:
        """The stored ``(result_dict, runtime)`` for ``exp_id``, or ``None``.

        Raises :class:`~repro.errors.CheckpointError` if a file exists
        but is unreadable or fingerprinted for a different run.
        """
        path = self._path(exp_id)
        if not path.exists():
            # Fall back to the pre-hash filename, but only when it really
            # belongs to this run: a legacy journal from a different
            # configuration is simply not ours, not an error.
            legacy = self._legacy_path(exp_id)
            if not legacy.exists():
                return None
            data = _read_json(legacy, "experiment")
            if data.get("fingerprint") != self.fingerprint:
                return None
            return data["result"], float(data["runtime"])
        data = _read_json(path, "experiment")
        _check_fingerprint(
            data.get("fingerprint"), self.fingerprint, path, "experiment"
        )
        return data["result"], float(data["runtime"])

    def load_stages(self, exp_id: str) -> dict[str, float]:
        """The stored per-stage wall-second breakdown for ``exp_id``.

        Empty for journals written before stage accounting existed (the
        field is additive; :meth:`load`'s payload is unchanged).
        """
        path = self._path(exp_id)
        if not path.exists():
            path = self._legacy_path(exp_id)
            if not path.exists():
                return {}
        data = _read_json(path, "experiment")
        if data.get("fingerprint") != self.fingerprint:
            return {}
        stages = data.get("stage_times") or {}
        return {str(k): float(v) for k, v in stages.items()}

    def store(
        self,
        exp_id: str,
        result_dict: dict,
        runtime: float,
        stage_times: dict[str, float] | None = None,
    ) -> None:
        """Journal one completed experiment atomically.

        ``stage_times`` optionally records the experiment's per-stage
        wall-second breakdown (from the metrics registry's
        ``repro_stage_seconds_total`` deltas); it rides along in the
        journal and is read back with :meth:`load_stages`.
        """
        payload = {
            "version": self.VERSION,
            "fingerprint": self.fingerprint,
            "result": result_dict,
            "runtime": float(runtime),
        }
        if stage_times:
            payload["stage_times"] = {str(k): float(v) for k, v in stage_times.items()}
        write_json_atomic(self._path(exp_id), payload)
