"""Per-figure experiment runners (Section VI of the paper).

Each function reproduces one figure family of the paper's evaluation and
returns a :class:`SweepResult` — the x-axis values and, per metric, one
series per method — which the benchmark harness prints in the same
rows/series layout as the paper's plots.

Every runner takes the corpus as a
:class:`~repro.datasets.synthetic.TrajectoryDataset` (synthetic by
default; a loaded Porto corpus wrapped in the same dataclass works
identically), an explicit seed, and size knobs, so the full sweep can be
scaled from smoke-test to paper-scale without code changes.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

import numpy as np

from ..core.grid import Grid
from ..core.noise import GaussianNoiseModel
from ..core.sts import STS, sts_f, sts_g, sts_n
from ..core.trajectory import Trajectory
from ..datasets.synthetic import TrajectoryDataset
from ..similarity import APM, CATS, KF, SST, WGM, EDwP
from ..simulation.sampling import distort, downsample
from .matching import build_matching_pair, evaluate_matching
from .metrics import cross_similarity_deviation

__all__ = [
    "SweepResult",
    "median_sampling_interval",
    "grid_covering",
    "default_measures",
    "sampling_rate_experiment",
    "heterogeneous_rate_experiment",
    "noise_experiment",
    "ablation_experiment",
    "cross_similarity_experiment",
    "grid_size_experiment",
    "parameter_sensitivity_experiment",
]


@dataclass
class SweepResult:
    """Result of one parameter sweep: series of metric values per method."""

    experiment: str
    dataset: str
    x_label: str
    x_values: list[float]
    #: metric name -> method name -> one value per x.
    metrics: dict[str, dict[str, list[float]]] = field(default_factory=dict)

    def record(self, metric: str, method: str, value: float) -> None:
        """Append ``value`` to the (metric, method) series."""
        self.metrics.setdefault(metric, {}).setdefault(method, []).append(value)

    def series(self, metric: str, method: str) -> list[float]:
        """The recorded series for one metric and method."""
        return self.metrics[metric][method]

    def to_dict(self) -> dict:
        """JSON-serializable form (round-trips via :meth:`from_dict`)."""
        return {
            "experiment": self.experiment,
            "dataset": self.dataset,
            "x_label": self.x_label,
            "x_values": list(self.x_values),
            "metrics": {
                metric: {method: list(series) for method, series in methods.items()}
                for metric, methods in self.metrics.items()
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SweepResult":
        """Inverse of :meth:`to_dict`."""
        return cls(
            experiment=data["experiment"],
            dataset=data["dataset"],
            x_label=data["x_label"],
            x_values=[float(x) for x in data["x_values"]],
            metrics={
                metric: {method: [float(v) for v in series] for method, series in methods.items()}
                for metric, methods in data["metrics"].items()
            },
        )

    def save(self, path) -> None:
        """Write the result as JSON."""
        import json

        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2)

    @classmethod
    def load(cls, path) -> "SweepResult":
        """Read a result written by :meth:`save`."""
        import json

        with open(path, encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))

    def format_table(self, metric: str, precision_digits: int = 4) -> str:
        """Plain-text table: one row per method, one column per x value."""
        methods = self.metrics[metric]
        header_cells = [f"{x:g}" for x in self.x_values]
        # Pre-render values with general formatting so huge/tiny numbers
        # stay readable, then size columns to the widest cell.
        rendered = {
            method: [f"{v:.{precision_digits}g}" for v in values]
            for method, values in methods.items()
        }
        all_cells = [c for row in rendered.values() for c in row] + header_cells
        width = max(8, *(len(c) + 2 for c in all_cells))
        name_width = max(10, *(len(m) + 2 for m in methods))
        lines = [
            f"{self.experiment} [{self.dataset}] — {metric} vs {self.x_label}",
            f"{'method':<{name_width}}" + "".join(f"{c:>{width}}" for c in header_cells),
        ]
        for method, cells in rendered.items():
            lines.append(f"{method:<{name_width}}" + "".join(f"{c:>{width}}" for c in cells))
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Shared setup helpers
# ----------------------------------------------------------------------
def median_sampling_interval(trajectories: list[Trajectory]) -> float:
    """Median gap between consecutive observations across a corpus."""
    gaps = np.concatenate(
        [np.diff(t.timestamps) for t in trajectories if len(t) >= 2]
    )
    gaps = gaps[gaps > 0]
    if gaps.size == 0:
        raise ValueError("corpus has no positive sampling gaps")
    return float(np.median(gaps))


def grid_covering(trajectories: list[Trajectory], cell_size: float, margin: float) -> Grid:
    """Grid covering every observation of the (possibly treated) corpus."""
    points = np.vstack([t.xy for t in trajectories])
    return Grid.covering(points, cell_size, margin=margin)


def default_measures(
    grid: Grid,
    corpus: list[Trajectory],
    location_error: float,
    include: list[str] | None = None,
) -> dict[str, object]:
    """The paper's seven methods, parameterized for the corpus at hand.

    The baselines' manually-set parameters follow the conventions the STS
    paper attributes to the original works, derived from corpus statistics
    rather than hard-coded per dataset: spatial scales from the grid cell /
    location error, temporal scales from the median sampling interval.
    ``include`` restricts to a subset of method names.
    """
    interval = median_sampling_interval(corpus)
    speeds = np.concatenate([t.speeds() for t in corpus if len(t) >= 2])
    mean_speed = float(speeds.mean()) if speeds.size else 1.0

    catalog: dict[str, object] = {
        "STS": STS(grid, noise_model=GaussianNoiseModel(max(location_error, 1e-6))),
        "CATS": CATS(epsilon=2.0 * grid.cell_size, tau=2.0 * interval),
        "SST": SST(spatial_scale=grid.cell_size, temporal_scale=2.0 * interval),
        "WGM": WGM(spatial_scale=2.0 * grid.cell_size, temporal_scale=2.0 * interval),
        "APM": APM(grid),
        "EDwP": EDwP(),
        "KF": KF(
            measurement_std=max(location_error, 1e-3),
            accel_std=max(0.2, mean_speed / 5.0),
        ),
    }
    if include is None:
        return catalog
    unknown = [name for name in include if name not in catalog]
    if unknown:
        raise KeyError(f"unknown measures {unknown}; available: {sorted(catalog)}")
    return {name: catalog[name] for name in include}


def _effective_sigma(location_error: float, beta: float) -> float:
    """Noise σ the sensing system would report after extra distortion β.

    The intrinsic localization error and the injected Eq. 14 noise are
    independent Gaussians, so they compose in quadrature.
    """
    return math.sqrt(location_error**2 + beta**2)


# ----------------------------------------------------------------------
# Figs. 4 & 5 — precision / mean rank vs (low) data sampling rate
# ----------------------------------------------------------------------
def sampling_rate_experiment(
    dataset: TrajectoryDataset,
    rates: list[float] | None = None,
    seed: int = 0,
    methods: list[str] | None = None,
    n_jobs: int | None = None,
) -> SweepResult:
    """Both sub-trajectory sets downsampled at the same rate ρ (Figs. 4–5)."""
    rates = rates if rates is not None else [0.1, 0.3, 0.5, 0.7, 0.9]
    rng = np.random.default_rng(seed)
    d1_full, d2_full = build_matching_pair(dataset.trajectories)
    result = SweepResult(
        experiment="fig04_05_sampling_rate",
        dataset=dataset.name,
        x_label="data sampling rate",
        x_values=list(rates),
    )
    for rate in rates:
        d1 = [downsample(t, rate, rng) for t in d1_full]
        d2 = [downsample(t, rate, rng) for t in d2_full]
        corpus = d1 + d2
        grid = grid_covering(corpus, dataset.cell_size, dataset.margin)
        for name, measure in default_measures(
            grid, corpus, dataset.location_error, include=methods
        ).items():
            outcome = evaluate_matching(measure, d1, d2, n_jobs=n_jobs)
            result.record("precision", name, outcome.precision)
            result.record("mean_rank", name, outcome.mean_rank)
    return result


# ----------------------------------------------------------------------
# Figs. 6 & 7 — precision / mean rank vs heterogeneous sampling rate α
# ----------------------------------------------------------------------
def heterogeneous_rate_experiment(
    dataset: TrajectoryDataset,
    alphas: list[float] | None = None,
    seed: int = 0,
    methods: list[str] | None = None,
    n_jobs: int | None = None,
) -> SweepResult:
    """Only D² downsampled at α, making the two systems' rates differ
    (Figs. 6–7); smaller α = more heterogeneous."""
    alphas = alphas if alphas is not None else [0.1, 0.3, 0.5, 0.7, 0.9]
    rng = np.random.default_rng(seed)
    d1, d2_full = build_matching_pair(dataset.trajectories)
    result = SweepResult(
        experiment="fig06_07_heterogeneous_rate",
        dataset=dataset.name,
        x_label="heterogeneous sampling rate alpha",
        x_values=list(alphas),
    )
    for alpha in alphas:
        d2 = [downsample(t, alpha, rng) for t in d2_full]
        corpus = d1 + d2
        grid = grid_covering(corpus, dataset.cell_size, dataset.margin)
        for name, measure in default_measures(
            grid, corpus, dataset.location_error, include=methods
        ).items():
            outcome = evaluate_matching(measure, d1, d2, n_jobs=n_jobs)
            result.record("precision", name, outcome.precision)
            result.record("mean_rank", name, outcome.mean_rank)
    return result


# ----------------------------------------------------------------------
# Figs. 8 & 9 — precision / mean rank vs location noise β
# ----------------------------------------------------------------------
def noise_experiment(
    dataset: TrajectoryDataset,
    betas: list[float] | None = None,
    seed: int = 0,
    methods: list[str] | None = None,
    n_jobs: int | None = None,
) -> SweepResult:
    """Eq. 14 Gaussian distortion of radius β applied to both sets
    (Figs. 8–9).  β=0 is included as the clean reference point."""
    betas = betas if betas is not None else [0.0, *dataset.noise_levels]
    rng = np.random.default_rng(seed)
    d1_clean, d2_clean = build_matching_pair(dataset.trajectories)
    result = SweepResult(
        experiment="fig08_09_noise",
        dataset=dataset.name,
        x_label="location noise beta (m)",
        x_values=list(betas),
    )
    for beta in betas:
        d1 = [distort(t, beta, rng) for t in d1_clean]
        d2 = [distort(t, beta, rng) for t in d2_clean]
        corpus = d1 + d2
        grid = grid_covering(corpus, dataset.cell_size, dataset.margin)
        sigma = _effective_sigma(dataset.location_error, beta)
        for name, measure in default_measures(grid, corpus, sigma, include=methods).items():
            outcome = evaluate_matching(measure, d1, d2, n_jobs=n_jobs)
            result.record("precision", name, outcome.precision)
            result.record("mean_rank", name, outcome.mean_rank)
    return result


# ----------------------------------------------------------------------
# Fig. 10 — ablation: STS vs STS-N / STS-G / STS-F
# ----------------------------------------------------------------------
def ablation_experiment(
    dataset: TrajectoryDataset,
    beta: float | None = None,
    rate: float | None = None,
    seed: int = 0,
    n_jobs: int | None = None,
) -> SweepResult:
    """Component ablation under fixed distortion (Fig. 10; 6 m mall, 20 m
    taxi in the paper — the dataset's ``location_error``-scaled default).

    ``rate`` optionally downsamples both sets first.  The paper's galleries
    are three orders of magnitude larger than the synthetic benchmark's;
    a sub-1.0 rate restores comparable task difficulty at small scale by
    stressing the interpolation path where the variants actually differ.
    """
    if beta is None:
        beta = 6.0 if dataset.name == "mall" else 20.0
    rng = np.random.default_rng(seed)
    d1_clean, d2_clean = build_matching_pair(dataset.trajectories)
    if rate is not None:
        d1_clean = [downsample(t, rate, rng) for t in d1_clean]
        d2_clean = [downsample(t, rate, rng) for t in d2_clean]
    d1 = [distort(t, beta, rng) for t in d1_clean]
    d2 = [distort(t, beta, rng) for t in d2_clean]
    corpus = d1 + d2
    grid = grid_covering(corpus, dataset.cell_size, dataset.margin)
    sigma = _effective_sigma(dataset.location_error, beta)
    noise = GaussianNoiseModel(sigma)

    variants = {
        "STS": STS(grid, noise_model=noise),
        "STS-N": sts_n(grid),
        "STS-G": sts_g(grid, corpus, noise_model=noise),
        "STS-F": sts_f(grid, corpus, noise_model=noise),
    }
    result = SweepResult(
        experiment="fig10_ablation",
        dataset=dataset.name,
        x_label=f"variant (beta={beta:g} m)",
        x_values=[beta],
    )
    for name, measure in variants.items():
        outcome = evaluate_matching(measure, d1, d2, n_jobs=n_jobs)
        result.record("precision", name, outcome.precision)
        result.record("mean_rank", name, outcome.mean_rank)
    return result


# ----------------------------------------------------------------------
# Fig. 11 — cross-similarity deviation vs sampling rate
# ----------------------------------------------------------------------
def cross_similarity_experiment(
    dataset: TrajectoryDataset,
    rates: list[float] | None = None,
    n_pairs: int = 50,
    seed: int = 0,
    methods: list[str] | None = None,
) -> SweepResult:
    """How stable each measure is when one trajectory of a random pair is
    downsampled (Fig. 11).  The paper compares STS, CATS, WGM and SST."""
    rates = rates if rates is not None else [0.1, 0.3, 0.5, 0.7, 0.9]
    methods = methods if methods is not None else ["STS", "CATS", "WGM", "SST"]
    rng = np.random.default_rng(seed)
    trajectories = dataset.trajectories
    if len(trajectories) < 2:
        raise ValueError("cross-similarity needs at least two trajectories")

    corpus = list(trajectories)
    grid = grid_covering(corpus, dataset.cell_size, dataset.margin)
    measures = default_measures(grid, corpus, dataset.location_error, include=methods)

    # Eq. 13 divides by the reference value; for similarity-type measures
    # a pair with no shared time or space scores ~0 and the ratio is
    # unbounded noise.  So pairs are sampled until ``n_pairs`` of them are
    # *meaningfully scored by every method* (reference > 1e-3 on the
    # methods' [0, 1] scale) — the regime the paper's dense same-site
    # corpora put almost all random pairs in.
    min_reference = 1e-3
    pairs: list[tuple[Trajectory, Trajectory]] = []
    references: dict[str, list[float]] = {name: [] for name in measures}
    attempts = 0
    while len(pairs) < n_pairs and attempts < 50 * n_pairs:
        attempts += 1
        i, j = rng.choice(len(trajectories), size=2, replace=False)
        a, b = trajectories[int(i)], trajectories[int(j)]
        if min(a.end_time, b.end_time) <= max(a.start_time, b.start_time):
            continue
        refs = {name: float(measure(a, b)) for name, measure in measures.items()}
        if all(abs(v) > min_reference for v in refs.values()):
            pairs.append((a, b))
            for name, v in refs.items():
                references[name].append(v)
    if not pairs:
        raise ValueError(
            "no pair is scored meaningfully by every method; enlarge the "
            "corpus or tighten its time window"
        )

    result = SweepResult(
        experiment="fig11_cross_similarity",
        dataset=dataset.name,
        x_label="data sampling rate",
        x_values=list(rates),
    )
    result.metrics["n_pairs"] = {"all": [float(len(pairs))] * len(rates)}
    for rate in rates:
        subsampled = [downsample(b, rate, rng) for _a, b in pairs]
        for name, measure in measures.items():
            deviations = [
                cross_similarity_deviation(ref, measure(a, b_sub))
                for ref, (a, _b), b_sub in zip(references[name], pairs, subsampled)
            ]
            result.record("deviation", name, float(np.mean(deviations)))
    return result


# ----------------------------------------------------------------------
# Extension: parameter sensitivity (Section II claim, no paper figure)
# ----------------------------------------------------------------------
def parameter_sensitivity_experiment(
    dataset: TrajectoryDataset,
    multipliers: list[float] | None = None,
    rate: float = 0.5,
    seed: int = 0,
    n_jobs: int | None = None,
) -> SweepResult:
    """How much each method's precision moves when its scale parameters do.

    The paper argues (Section II) that threshold/scale-based measures
    "heavily rely on the parameter settings, which are difficult to
    determine", while STS only needs the sensing system's noise level.
    This experiment multiplies each method's scale parameters by a factor
    and records matching precision: a flat curve means a forgiving method.
    STS's analogous knob — the noise-model σ — is swept the same way.
    """
    multipliers = multipliers if multipliers is not None else [0.25, 0.5, 1.0, 2.0, 4.0]
    rng = np.random.default_rng(seed)
    d1_full, d2_full = build_matching_pair(dataset.trajectories)
    d1 = [downsample(t, rate, rng) for t in d1_full]
    d2 = [downsample(t, rate, rng) for t in d2_full]
    corpus = d1 + d2
    grid = grid_covering(corpus, dataset.cell_size, dataset.margin)
    interval = median_sampling_interval(corpus)
    sigma = max(dataset.location_error, 1e-6)

    result = SweepResult(
        experiment="parameter_sensitivity",
        dataset=dataset.name,
        x_label="scale-parameter multiplier",
        x_values=list(multipliers),
    )
    for m in multipliers:
        variants = {
            "STS": STS(grid, noise_model=GaussianNoiseModel(sigma * m)),
            "CATS": CATS(epsilon=2.0 * grid.cell_size * m, tau=2.0 * interval * m),
            "SST": SST(spatial_scale=grid.cell_size * m, temporal_scale=2.0 * interval * m),
            "WGM": WGM(spatial_scale=2.0 * grid.cell_size * m, temporal_scale=2.0 * interval * m),
        }
        for name, measure in variants.items():
            outcome = evaluate_matching(measure, d1, d2, n_jobs=n_jobs)
            result.record("precision", name, outcome.precision)
            result.record("mean_rank", name, outcome.mean_rank)
    return result


# ----------------------------------------------------------------------
# Figs. 12–14 — grid size vs running time / precision / mean rank
# ----------------------------------------------------------------------
def grid_size_experiment(
    dataset: TrajectoryDataset,
    grid_sizes: list[float] | None = None,
    rate: float | None = None,
    seed: int = 0,
    n_jobs: int | None = None,
) -> SweepResult:
    """STS's effectiveness/efficiency trade-off across grid cell sizes
    (Figs. 12–14).  Running time covers the full matching computation.

    ``rate`` optionally downsamples both sets first — at benchmark-scale
    galleries the base task saturates at precision 1.0 for every grid, so
    a sub-1.0 rate restores the effectiveness differences Figs. 13–14
    show (the paper's full-size galleries are hard enough on their own).
    """
    grid_sizes = grid_sizes if grid_sizes is not None else list(dataset.grid_sizes)
    rng = np.random.default_rng(seed)
    d1, d2 = build_matching_pair(dataset.trajectories)
    if rate is not None:
        d1 = [downsample(t, rate, rng) for t in d1]
        d2 = [downsample(t, rate, rng) for t in d2]
    corpus = d1 + d2
    result = SweepResult(
        experiment="fig12_13_14_grid_size",
        dataset=dataset.name,
        x_label="grid size (m)",
        x_values=list(grid_sizes),
    )
    for cell in grid_sizes:
        grid = grid_covering(corpus, cell, dataset.margin)
        measure = STS(grid, noise_model=GaussianNoiseModel(dataset.location_error))
        start = time.perf_counter()
        outcome = evaluate_matching(measure, d1, d2, n_jobs=n_jobs)
        elapsed = time.perf_counter() - start
        result.record("precision", "STS", outcome.precision)
        result.record("mean_rank", "STS", outcome.mean_rank)
        result.record("running_time_s", "STS", elapsed)
    return result
