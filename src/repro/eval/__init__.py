"""Evaluation harness: metrics, matching task, per-figure experiments."""

from .experiments import (
    SweepResult,
    ablation_experiment,
    cross_similarity_experiment,
    default_measures,
    grid_covering,
    grid_size_experiment,
    heterogeneous_rate_experiment,
    median_sampling_interval,
    noise_experiment,
    sampling_rate_experiment,
)
from .companion import (
    CompanionCorpus,
    DetectionResult,
    average_precision,
    companion_corpus,
    evaluate_companion_detection,
    roc_auc,
)
from .matching import MatchingResult, build_matching_pair, evaluate_matching
from .metrics import cross_similarity_deviation, mean_rank, precision, ranks_from_scores
from .queries import RankedMatch, most_similar, rank_gallery, top_k
from .runner import ExperimentReport, render_markdown, run_all_experiments
from .stats import ConfidenceInterval, PairedComparison, bootstrap_ci, compare_ranks

__all__ = [
    "ranks_from_scores",
    "precision",
    "mean_rank",
    "cross_similarity_deviation",
    "MatchingResult",
    "build_matching_pair",
    "evaluate_matching",
    "RankedMatch",
    "rank_gallery",
    "top_k",
    "most_similar",
    "ExperimentReport",
    "run_all_experiments",
    "render_markdown",
    "ConfidenceInterval",
    "bootstrap_ci",
    "PairedComparison",
    "compare_ranks",
    "CompanionCorpus",
    "companion_corpus",
    "DetectionResult",
    "evaluate_companion_detection",
    "roc_auc",
    "average_precision",
    "SweepResult",
    "default_measures",
    "median_sampling_interval",
    "grid_covering",
    "sampling_rate_experiment",
    "heterogeneous_rate_experiment",
    "noise_experiment",
    "ablation_experiment",
    "cross_similarity_experiment",
    "grid_size_experiment",
]
