"""Run the full evaluation and render a markdown report.

One call reproduces every figure family of the paper's Section VI on a
given corpus and formats the results as the per-experiment tables
EXPERIMENTS.md records.  Used by the CLI (``repro-sts report``) and by the
repository's own EXPERIMENTS.md regeneration.
"""

from __future__ import annotations

import inspect
import re
import time
from dataclasses import dataclass, field

from ..checkpoint import ExperimentCheckpoint
from ..datasets.synthetic import TrajectoryDataset
from ..obs import get_registry, trace_span
from .experiments import (
    SweepResult,
    ablation_experiment,
    cross_similarity_experiment,
    grid_size_experiment,
    heterogeneous_rate_experiment,
    noise_experiment,
    parameter_sensitivity_experiment,
    sampling_rate_experiment,
)

__all__ = ["ExperimentReport", "run_all_experiments", "render_markdown"]

#: Experiment id -> (runner, figure label) in paper order, plus extensions.
_EXPERIMENTS = {
    "fig04_05": (sampling_rate_experiment, "Figs. 4-5: low data sampling rates"),
    "fig06_07": (heterogeneous_rate_experiment, "Figs. 6-7: heterogeneous sampling rates"),
    "fig08_09": (noise_experiment, "Figs. 8-9: location noise"),
    "fig10": (ablation_experiment, "Fig. 10: component ablation"),
    "fig11": (cross_similarity_experiment, "Fig. 11: cross-similarity deviation"),
    "fig12_14": (grid_size_experiment, "Figs. 12-14: grid size trade-off"),
    "ext_sensitivity": (
        parameter_sensitivity_experiment,
        "Extension: parameter sensitivity (Section II claim)",
    ),
}


_LABEL_RE = re.compile(r'(\w+)="([^"]*)"')


def _stage_deltas(before: dict[str, float], after: dict[str, float]) -> dict[str, float]:
    """Per-stage wall seconds accrued between two counter readings.

    Readings come from the registry's ``repro_stage_seconds_total``
    counter; keys are its label strings.  The delta is reported under
    ``component/stage`` (e.g. ``"stp/bridge-interp"``).
    """
    deltas: dict[str, float] = {}
    for key, value in after.items():
        delta = value - before.get(key, 0.0)
        if delta <= 0.0:
            continue
        labels = dict(_LABEL_RE.findall(key))
        name = f"{labels.get('component', '?')}/{labels.get('stage', key)}"
        deltas[name] = deltas.get(name, 0.0) + delta
    return deltas


@dataclass
class ExperimentReport:
    """All sweep results for one corpus, plus wall-clock accounting.

    ``resumed`` lists the experiment ids that were loaded from a
    checkpoint instead of recomputed (empty for a clean run — and for a
    resumed run the loaded results are identical to what recomputation
    would produce, so the report content does not depend on it).

    ``stage_times`` holds, per experiment, the pipeline-stage wall
    seconds the metrics registry accumulated while that experiment ran
    (``"stp/bridge-interp"``-style keys; empty when observability is
    off).  For resumed experiments the breakdown is read back from the
    journal, so it reflects the run that actually computed the result.
    """

    dataset: str
    results: dict[str, SweepResult] = field(default_factory=dict)
    runtimes: dict[str, float] = field(default_factory=dict)
    resumed: list[str] = field(default_factory=list)
    stage_times: dict[str, dict[str, float]] = field(default_factory=dict)

    @property
    def total_runtime(self) -> float:
        return sum(self.runtimes.values())


def run_all_experiments(
    dataset: TrajectoryDataset,
    seed: int = 0,
    only: list[str] | None = None,
    n_jobs: int | None = None,
    checkpoint_dir: str | None = None,
) -> ExperimentReport:
    """Run every (or a subset of) figure experiment on ``dataset``.

    ``only`` takes experiment ids (``"fig04_05"``, ..., ``"fig12_14"``);
    an unknown id raises :class:`ValueError` listing the valid ones.
    ``n_jobs`` parallelizes the score matrices of experiments that support
    it (forwarded to :func:`~repro.eval.matching.evaluate_matching`).

    ``checkpoint_dir`` journals every completed experiment to disk
    (atomic write-rename, one file per experiment, fingerprinted with
    the dataset name and seed).  A rerun pointed at the same directory
    skips the experiments already journaled — so a run killed halfway
    (even with ``SIGKILL``) resumes from the last completed experiment
    and produces an identical report.
    """
    if only is not None:
        unknown = [k for k in only if k not in _EXPERIMENTS]
        if unknown:
            raise ValueError(
                f"unknown experiment id(s) {unknown}; "
                f"valid ids: {sorted(_EXPERIMENTS)}"
            )
    selected = _EXPERIMENTS if only is None else {k: _EXPERIMENTS[k] for k in only}
    checkpoint = (
        ExperimentCheckpoint(
            checkpoint_dir, {"dataset": dataset.name, "seed": seed}
        )
        if checkpoint_dir is not None
        else None
    )
    report = ExperimentReport(dataset=dataset.name)
    registry = get_registry()
    for exp_id, (runner, _label) in selected.items():
        if checkpoint is not None:
            stored = checkpoint.load(exp_id)
            if stored is not None:
                result_dict, runtime = stored
                report.results[exp_id] = SweepResult.from_dict(result_dict)
                report.runtimes[exp_id] = runtime
                report.resumed.append(exp_id)
                stages = checkpoint.load_stages(exp_id)
                if stages:
                    report.stage_times[exp_id] = stages
                continue
        kwargs: dict = {"seed": seed}
        if n_jobs is not None and "n_jobs" in inspect.signature(runner).parameters:
            kwargs["n_jobs"] = n_jobs
        stage_before = registry.value("repro_stage_seconds_total")
        start = time.perf_counter()
        with trace_span(f"experiment.{exp_id}", dataset=dataset.name):
            report.results[exp_id] = runner(dataset, **kwargs)
        report.runtimes[exp_id] = time.perf_counter() - start
        stages = _stage_deltas(
            stage_before, registry.value("repro_stage_seconds_total")
        )
        if stages:
            report.stage_times[exp_id] = stages
        if checkpoint is not None:
            checkpoint.store(
                exp_id,
                report.results[exp_id].to_dict(),
                report.runtimes[exp_id],
                stage_times=stages or None,
            )
    return report


def render_markdown(report: ExperimentReport) -> str:
    """The report as a markdown document (tables in paper order)."""
    lines = [
        f"# Evaluation report — {report.dataset} corpus",
        "",
        f"Total experiment wall-clock: {report.total_runtime:.1f} s.",
        "",
    ]
    for exp_id, result in report.results.items():
        label = _EXPERIMENTS[exp_id][1]
        lines.append(f"## {label}")
        lines.append("")
        for metric in result.metrics:
            lines.append("```")
            lines.append(result.format_table(metric))
            lines.append("```")
            lines.append("")
        lines.append(f"_Runtime: {report.runtimes[exp_id]:.1f} s._")
        lines.append("")
        stages = report.stage_times.get(exp_id)
        if stages:
            breakdown = ", ".join(
                f"{name} {secs:.2f} s"
                for name, secs in sorted(stages.items(), key=lambda kv: -kv[1])
            )
            lines.append(f"_Stage breakdown: {breakdown}._")
            lines.append("")
    return "\n".join(lines)
