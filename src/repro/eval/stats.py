"""Statistical support for experiment results.

The paper reports point estimates; at reproduction scale (tens of queries
per gallery instead of thousands) sampling noise matters, so the harness
provides bootstrap confidence intervals for precision/mean-rank and a
paired significance test for "method A beats method B" claims.

All routines operate on the per-query rank vectors
:func:`~repro.eval.metrics.ranks_from_scores` produces, so they compose
with any measure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np
from scipy import stats as scipy_stats

from .metrics import mean_rank, precision

__all__ = ["ConfidenceInterval", "bootstrap_ci", "PairedComparison", "compare_ranks"]


@dataclass(frozen=True)
class ConfidenceInterval:
    """A point estimate with a bootstrap percentile interval."""

    estimate: float
    low: float
    high: float
    confidence: float

    def __str__(self) -> str:
        return f"{self.estimate:.3f} [{self.low:.3f}, {self.high:.3f}] @{self.confidence:.0%}"

    def __contains__(self, value: float) -> bool:
        return self.low <= value <= self.high


def bootstrap_ci(
    ranks: np.ndarray,
    metric: Callable[[np.ndarray], float] | str = "precision",
    confidence: float = 0.95,
    n_resamples: int = 2000,
    seed: int = 0,
) -> ConfidenceInterval:
    """Percentile-bootstrap confidence interval for a rank metric.

    Parameters
    ----------
    ranks:
        Per-query ranks of the true match (from
        :func:`~repro.eval.metrics.ranks_from_scores`).
    metric:
        ``"precision"``, ``"mean_rank"``, or any callable mapping a rank
        vector to a scalar.
    confidence:
        Interval mass, e.g. 0.95.
    n_resamples:
        Bootstrap resamples (with replacement, same size as ``ranks``).
    """
    ranks = np.asarray(ranks, dtype=float)
    if ranks.size == 0:
        raise ValueError("cannot bootstrap an empty rank vector")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    if n_resamples < 1:
        raise ValueError(f"n_resamples must be >= 1, got {n_resamples}")
    if metric == "precision":
        fn: Callable[[np.ndarray], float] = precision
    elif metric == "mean_rank":
        fn = mean_rank
    elif callable(metric):
        fn = metric
    else:
        raise ValueError(f"unknown metric {metric!r}")

    rng = np.random.default_rng(seed)
    n = ranks.size
    samples = np.empty(n_resamples)
    for k in range(n_resamples):
        samples[k] = fn(ranks[rng.integers(0, n, size=n)])
    tail = (1.0 - confidence) / 2.0
    low, high = np.quantile(samples, [tail, 1.0 - tail])
    return ConfidenceInterval(
        estimate=float(fn(ranks)),
        low=float(low),
        high=float(high),
        confidence=confidence,
    )


@dataclass(frozen=True)
class PairedComparison:
    """Outcome of a paired test between two methods' rank vectors."""

    wins_a: int
    wins_b: int
    ties: int
    p_value: float

    @property
    def n(self) -> int:
        return self.wins_a + self.wins_b + self.ties

    def significant(self, alpha: float = 0.05) -> bool:
        """Whether the difference is significant at level ``alpha``."""
        return self.p_value < alpha

    def __str__(self) -> str:
        return (
            f"A better on {self.wins_a}, B better on {self.wins_b}, "
            f"tied on {self.ties} queries (p={self.p_value:.4f})"
        )


def compare_ranks(ranks_a: np.ndarray, ranks_b: np.ndarray) -> PairedComparison:
    """Paired sign test: does method A rank the truth better than B?

    Both vectors must come from the *same* queries in the same order (the
    matching harness guarantees this).  Ties are discarded, as usual for
    the sign test; the p-value is two-sided binomial.  With zero non-tied
    queries the methods are indistinguishable and ``p = 1``.
    """
    a = np.asarray(ranks_a, dtype=float)
    b = np.asarray(ranks_b, dtype=float)
    if a.shape != b.shape:
        raise ValueError(f"rank vectors must align, got {a.shape} vs {b.shape}")
    if a.size == 0:
        raise ValueError("cannot compare empty rank vectors")
    wins_a = int((a < b).sum())  # lower rank = better
    wins_b = int((a > b).sum())
    ties = int((a == b).sum())
    decisive = wins_a + wins_b
    if decisive == 0:
        p_value = 1.0
    else:
        test = scipy_stats.binomtest(wins_a, decisive, p=0.5, alternative="two-sided")
        p_value = float(test.pvalue)
    return PairedComparison(wins_a=wins_a, wins_b=wins_b, ties=ties, p_value=p_value)
