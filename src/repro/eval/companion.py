"""Companion-detection evaluation: the paper's application as a task.

Section I motivates STS with companion detection and contact tracing, but
Section VI only evaluates trajectory *matching* (same object, two sensing
systems).  This harness evaluates the application directly: a corpus
contains labeled companion pairs (distinct objects moving together) among
independent objects; a measure scores every temporally-overlapping pair;
detection quality is summarized as ROC-AUC and average precision over the
pair labels.

Generation lives here too (:func:`companion_corpus`) so the task is
reproducible end-to-end from a seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.trajectory import Trajectory
from ..simulation.floorplan import FloorPlan
from ..simulation.pedestrian import simulate_companions, simulate_visitors
from ..simulation.sampling import poisson_times, sample_path

__all__ = [
    "CompanionCorpus",
    "companion_corpus",
    "DetectionResult",
    "evaluate_companion_detection",
    "roc_auc",
    "average_precision",
]


@dataclass
class CompanionCorpus:
    """Trajectories plus ground-truth companion pair labels."""

    trajectories: list[Trajectory]
    #: Index pairs (i, j), i < j, that are true companions.
    companion_pairs: set[tuple[int, int]]
    location_error: float

    def is_companion(self, i: int, j: int) -> bool:
        """Whether collection indices ``i`` and ``j`` moved together."""
        return (min(i, j), max(i, j)) in self.companion_pairs


def companion_corpus(
    n_companion_pairs: int = 4,
    n_independents: int = 8,
    n_route_followers: int = 0,
    seed: int = 0,
    noise_std: float = 3.0,
    mean_sampling_interval: float = 15.0,
    time_window: float = 600.0,
    lateral_offset: float = 1.5,
    follower_delay: tuple[float, float] = (240.0, 600.0),
) -> CompanionCorpus:
    """Labeled mall corpus: companion pairs among independent visitors.

    Every visit starts within ``time_window`` seconds, so independents
    genuinely overlap the companions in time — the detector cannot win on
    temporal disjointness alone.  ``n_route_followers`` adds the hard
    negatives that defeat spatial-only measures: visitors who walk the
    *same route* as a companion pair but ``follower_delay`` seconds later
    (think of a popular anchor-store circuit).  Geometrically they are
    indistinguishable from the true companions; only the temporal
    dimension separates them.
    """
    if n_companion_pairs < 1:
        raise ValueError(f"n_companion_pairs must be >= 1, got {n_companion_pairs}")
    if n_independents < 0:
        raise ValueError(f"n_independents must be >= 0, got {n_independents}")
    if n_route_followers < 0:
        raise ValueError(f"n_route_followers must be >= 0, got {n_route_followers}")
    rng = np.random.default_rng(seed)
    plan = FloorPlan.generate(rng=rng)

    paths = []
    labels: set[tuple[int, int]] = set()
    leaders = []
    for k in range(n_companion_pairs):
        start = float(rng.uniform(0.0, time_window))
        leader, follower = simulate_companions(
            plan, rng, start_time=start, lateral_offset=lateral_offset
        )
        labels.add((len(paths), len(paths) + 1))
        paths.extend([leader, follower])
        leaders.append(leader)
    for k in range(n_route_followers):
        template = leaders[int(rng.integers(len(leaders)))]
        delay = float(rng.uniform(*follower_delay))
        from ..core.trajectory import Path as _Path

        paths.append(
            _Path(
                template.xy.copy(),
                template.t + delay,
                object_id=f"route-follower-{k}",
            )
        )
    if n_independents > 0:
        paths.extend(simulate_visitors(plan, n_independents, rng, time_window=time_window))

    trajectories = []
    for idx, path in enumerate(paths):
        times = poisson_times(path.start_time, path.end_time, mean_sampling_interval, rng)
        trajectories.append(
            sample_path(path, times, noise_std=noise_std, rng=rng, object_id=f"obj-{idx:03d}")
        )
    return CompanionCorpus(
        trajectories=trajectories, companion_pairs=labels, location_error=noise_std
    )


# ----------------------------------------------------------------------
# Binary-detection metrics (implemented here — no sklearn offline)
# ----------------------------------------------------------------------
def roc_auc(labels: np.ndarray, scores: np.ndarray) -> float:
    """Area under the ROC curve via the rank (Mann-Whitney) formulation.

    Tied scores contribute half, as usual.  Requires at least one positive
    and one negative label.
    """
    labels = np.asarray(labels, dtype=bool)
    scores = np.asarray(scores, dtype=float)
    if labels.shape != scores.shape:
        raise ValueError("labels and scores must align")
    n_pos = int(labels.sum())
    n_neg = int((~labels).sum())
    if n_pos == 0 or n_neg == 0:
        raise ValueError("ROC-AUC needs at least one positive and one negative")
    order = np.argsort(scores, kind="mergesort")
    ranks = np.empty(len(scores))
    ranks[order] = np.arange(1, len(scores) + 1)
    # competition-average ranks for ties
    sorted_scores = scores[order]
    k = 0
    while k < len(scores):
        j = k
        while j + 1 < len(scores) and sorted_scores[j + 1] == sorted_scores[k]:
            j += 1
        if j > k:
            ranks[order[k : j + 1]] = (k + 1 + j + 1) / 2.0
        k = j + 1
    rank_sum_pos = float(ranks[labels].sum())
    u = rank_sum_pos - n_pos * (n_pos + 1) / 2.0
    return u / (n_pos * n_neg)


def average_precision(labels: np.ndarray, scores: np.ndarray) -> float:
    """Average precision (area under the precision-recall curve, step-wise)."""
    labels = np.asarray(labels, dtype=bool)
    scores = np.asarray(scores, dtype=float)
    if labels.shape != scores.shape:
        raise ValueError("labels and scores must align")
    if not labels.any():
        raise ValueError("average precision needs at least one positive")
    order = np.argsort(-scores, kind="mergesort")
    hits = labels[order]
    cum_hits = np.cumsum(hits)
    precision_at = cum_hits / np.arange(1, len(hits) + 1)
    return float(precision_at[hits].mean())


@dataclass(frozen=True)
class DetectionResult:
    """Companion-detection quality of one measure on one corpus."""

    measure: str
    auc: float
    average_precision: float
    n_positive: int
    n_scored: int

    def __str__(self) -> str:
        return (
            f"{self.measure}: AUC={self.auc:.3f} AP={self.average_precision:.3f} "
            f"({self.n_positive} companions among {self.n_scored} scored pairs)"
        )


def evaluate_companion_detection(measure, corpus: CompanionCorpus) -> DetectionResult:
    """Score all temporally-overlapping pairs; summarize as AUC and AP.

    Pairs without temporal overlap are excluded from scoring (every
    sensible detector would discard them for free); companion pairs always
    overlap by construction.
    """
    trajectories = corpus.trajectories
    labels: list[bool] = []
    scores: list[float] = []
    n = len(trajectories)
    for i in range(n):
        for j in range(i + 1, n):
            a, b = trajectories[i], trajectories[j]
            if min(a.end_time, b.end_time) <= max(a.start_time, b.start_time):
                continue
            labels.append(corpus.is_companion(i, j))
            scores.append(float(measure.score(a, b)))
    labels_arr = np.asarray(labels, dtype=bool)
    scores_arr = np.asarray(scores, dtype=float)
    return DetectionResult(
        measure=getattr(measure, "name", type(measure).__name__),
        auc=roc_auc(labels_arr, scores_arr),
        average_precision=average_precision(labels_arr, scores_arr),
        n_positive=int(labels_arr.sum()),
        n_scored=len(labels),
    )
