"""Evaluation metrics (Section VI-B of the paper).

Three metrics drive the whole evaluation:

* **precision** (Eq. 11) — fraction of queries whose true counterpart is
  ranked first;
* **mean rank** (Eq. 12) — average rank of the true counterpart;
* **cross-similarity deviation** (Eq. 13) — relative change of a measure's
  value when one trajectory of a pair is downsampled.

Ranks are computed with *competition-average* tie handling: a query whose
true match ties with ``k`` other gallery items gets the mean of the tied
positions.  This makes degenerate measures (e.g. one returning a constant)
score the chance-level mean rank ``(n+1)/2`` instead of a lucky 1.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "ranks_from_scores",
    "precision",
    "mean_rank",
    "cross_similarity_deviation",
]


def ranks_from_scores(scores: np.ndarray) -> np.ndarray:
    """Rank of the true match for each query, from a square score matrix.

    ``scores[i, j]`` is the (higher = more similar) score of query ``i``
    against gallery item ``j``; the true match of query ``i`` is gallery
    item ``i``.  Returns a float array of competition-average ranks
    (1 = unambiguously ranked first).
    """
    scores = np.asarray(scores, dtype=float)
    if scores.ndim != 2 or scores.shape[0] != scores.shape[1]:
        raise ValueError(f"expected a square score matrix, got shape {scores.shape}")
    n = scores.shape[0]
    ranks = np.zeros(n)
    for i in range(n):
        true_score = scores[i, i]
        others = np.delete(scores[i], i)
        better = int((others > true_score).sum())
        ties = int((others == true_score).sum())
        ranks[i] = 1.0 + better + 0.5 * ties
    return ranks


def precision(ranks: np.ndarray) -> float:
    """Eq. 11: fraction of queries with the true match ranked first."""
    ranks = np.asarray(ranks, dtype=float)
    if ranks.size == 0:
        raise ValueError("precision is undefined for zero queries")
    return float((ranks <= 1.0 + 1e-12).mean())


def mean_rank(ranks: np.ndarray) -> float:
    """Eq. 12: average rank of the true match."""
    ranks = np.asarray(ranks, dtype=float)
    if ranks.size == 0:
        raise ValueError("mean rank is undefined for zero queries")
    return float(ranks.mean())


def cross_similarity_deviation(
    reference: float, subsampled: float, epsilon: float = 1e-12
) -> float:
    """Eq. 13: ``|d(T1, T2') - d(T1, T2)| / |d(T1, T2)|``.

    ``reference`` is the measure on the original pair, ``subsampled`` on
    the pair with one trajectory downsampled.  A reference of exactly zero
    (identical trajectories under a distance measure) is guarded with
    ``epsilon``: the deviation is 0 when the subsampled value is also
    (near) zero, else the ratio against ``epsilon``.
    """
    denom = abs(reference)
    if denom < epsilon:
        return 0.0 if abs(subsampled) < epsilon else abs(subsampled - reference) / epsilon
    return abs(subsampled - reference) / denom
