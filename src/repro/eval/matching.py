"""Trajectory-matching task (Section VI-C of the paper).

The evaluation protocol: every trajectory of a corpus is alternately split
(Fig. 3) into two sub-trajectories, forming datasets ``D¹`` and ``D²``
that simulate two sensing systems observing the same objects.  A measure
is scored on how well it re-identifies each ``Tra₁ᵢ ∈ D¹`` with its true
counterpart ``Tra₂ᵢ ∈ D²`` among all of ``D²``.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass

import numpy as np

from ..core.trajectory import Trajectory
from ..simulation.sampling import alternate_split
from .metrics import mean_rank, precision, ranks_from_scores

__all__ = ["MatchingResult", "build_matching_pair", "evaluate_matching", "score_matrix"]


@dataclass(frozen=True)
class MatchingResult:
    """Outcome of one matching run for one measure."""

    measure: str
    precision: float
    mean_rank: float
    ranks: np.ndarray

    @property
    def n_queries(self) -> int:
        return len(self.ranks)

    def __str__(self) -> str:
        return (
            f"{self.measure}: precision={self.precision:.3f} "
            f"mean_rank={self.mean_rank:.2f} (n={self.n_queries})"
        )


def build_matching_pair(
    trajectories: list[Trajectory],
) -> tuple[list[Trajectory], list[Trajectory]]:
    """Alternate-split every trajectory into the (D¹, D²) dataset pair."""
    if not trajectories:
        raise ValueError("cannot build matching datasets from an empty corpus")
    d1, d2 = [], []
    for traj in trajectories:
        first, second = alternate_split(traj)
        d1.append(first)
        d2.append(second)
    return d1, d2


def _supports_parallel_pairwise(measure) -> bool:
    """Whether the measure exposes the STS-style batched/parallel matrix.

    The STS signature is ``pairwise(gallery, queries=None, n_jobs=None)``
    returning oriented scores; the generic
    :meth:`~repro.similarity.base.Measure.pairwise` takes ``(queries,
    gallery)`` and returns *raw* values, so the two are distinguished by
    the ``n_jobs`` keyword rather than by name.
    """
    pairwise = getattr(measure, "pairwise", None)
    if pairwise is None:
        return False
    try:
        return "n_jobs" in inspect.signature(pairwise).parameters
    except (TypeError, ValueError):
        return False


def score_matrix(
    measure,
    queries: list[Trajectory],
    gallery: list[Trajectory],
    n_jobs: int | None = None,
) -> np.ndarray:
    """``S[i, j] = measure.score(queries[i], gallery[j])`` for the task.

    Measures exposing the STS-style ``pairwise(gallery, queries=...,
    n_jobs=...)`` entry point go through it — one batched (optionally
    multi-worker) pass instead of ``n²`` cold scoring calls.  Everything
    else falls back to the generic ``score`` loop.
    """
    if _supports_parallel_pairwise(measure):
        return np.asarray(measure.pairwise(gallery, queries=queries, n_jobs=n_jobs))
    scores = np.zeros((len(queries), len(gallery)))
    for i, q in enumerate(queries):
        for j, g in enumerate(gallery):
            scores[i, j] = measure.score(q, g)
    return scores


def evaluate_matching(
    measure,
    queries: list[Trajectory],
    gallery: list[Trajectory],
    n_jobs: int | None = None,
) -> MatchingResult:
    """Run the matching task for one measure.

    ``measure`` is anything exposing the :class:`~repro.similarity.base.
    Measure` protocol (``score(a, b)`` oriented higher = more similar, and
    a ``name``); ``queries[i]`` and ``gallery[i]`` must belong to the same
    object.  ``n_jobs`` parallelizes the score matrix for measures that
    support it (see :class:`repro.parallel.ParallelSTS`).
    """
    if len(queries) != len(gallery):
        raise ValueError(
            f"queries and gallery must pair up 1:1, got {len(queries)} vs {len(gallery)}"
        )
    scores = score_matrix(measure, queries, gallery, n_jobs=n_jobs)
    ranks = ranks_from_scores(scores)
    return MatchingResult(
        measure=getattr(measure, "name", type(measure).__name__),
        precision=precision(ranks),
        mean_rank=mean_rank(ranks),
        ranks=ranks,
    )
