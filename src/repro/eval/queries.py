"""Similarity-query helpers: rank a gallery against a query trajectory.

The building blocks applications actually call: "which of these N
trajectories most likely belongs to the same object as this one?"
(trajectory linking, user re-identification) and "give me the top-k
candidates with scores" (candidate generation for a human analyst).
Works with any measure following the :class:`~repro.similarity.base.
Measure` protocol, including :class:`~repro.core.sts.STS`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..core.trajectory import Trajectory

__all__ = ["RankedMatch", "rank_gallery", "top_k", "most_similar"]


@dataclass(frozen=True)
class RankedMatch:
    """One gallery candidate with its oriented score (higher = more similar)."""

    index: int
    trajectory: Trajectory
    score: float

    def __str__(self) -> str:
        oid = self.trajectory.object_id or f"#{self.index}"
        return f"{oid}: {self.score:.4f}"


def rank_gallery(measure, query: Trajectory, gallery: Sequence[Trajectory]) -> list[RankedMatch]:
    """All gallery candidates, sorted most-similar first.

    Ties keep gallery order (stable sort), so results are deterministic.
    """
    if len(gallery) == 0:
        raise ValueError("cannot rank an empty gallery")
    matches = [
        RankedMatch(index=i, trajectory=g, score=float(measure.score(query, g)))
        for i, g in enumerate(gallery)
    ]
    return sorted(matches, key=lambda m: -m.score)


def top_k(measure, query: Trajectory, gallery: Sequence[Trajectory], k: int) -> list[RankedMatch]:
    """The ``k`` most similar gallery candidates (fewer if the gallery is small)."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    return rank_gallery(measure, query, gallery)[:k]


def most_similar(measure, query: Trajectory, gallery: Sequence[Trajectory]) -> RankedMatch:
    """The single best match — the paper's trajectory-linking decision."""
    return rank_gallery(measure, query, gallery)[0]
