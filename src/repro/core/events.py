"""Co-location event detection (the paper's application layer).

The STS scalar answers "how much did these two trajectories overlap
overall?"; applications like contact tracing and companion detection
(Section I of the paper) also need *when* the overlap happened.  This
module scans the co-location probability ``CP(t)`` over time and extracts
contiguous intervals where it stays above a threshold — co-location
events — with their peak probability and a probability-mass "exposure"
integral.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .colocation import colocation_probability
from .sts import STS
from .trajectory import Trajectory

__all__ = ["ColocationEvent", "detect_colocation_events", "colocation_timeline"]


@dataclass(frozen=True)
class ColocationEvent:
    """One contiguous interval of probable co-location.

    Attributes
    ----------
    start, end:
        Interval bounds (seconds; inclusive at both ends, on the scan
        lattice).
    peak_probability:
        Maximum co-location probability inside the interval.
    peak_time:
        Time of that maximum.
    exposure:
        Time-integral of the co-location probability over the interval
        (probability-weighted seconds of contact — the quantity a contact
        tracer would threshold on).
    """

    start: float
    end: float
    peak_probability: float
    peak_time: float
    exposure: float

    @property
    def duration(self) -> float:
        return self.end - self.start

    def __str__(self) -> str:
        return (
            f"co-location [{self.start:.0f}s, {self.end:.0f}s] "
            f"peak={self.peak_probability:.3f}@{self.peak_time:.0f}s "
            f"exposure={self.exposure:.1f}"
        )


def colocation_timeline(
    measure: STS,
    a: Trajectory,
    b: Trajectory,
    time_step: float | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Co-location probability on a regular time lattice.

    The lattice spans the overlap of the two trajectories' time spans and
    additionally includes every observed timestamp inside the overlap, so
    nothing visible in :meth:`STS.colocation_profile` is missed between
    lattice points.  ``time_step`` defaults to half the corpus's median
    sampling gap.  Returns ``(times, probabilities)``; both empty when the
    spans do not overlap.
    """
    lo = max(a.start_time, b.start_time)
    hi = min(a.end_time, b.end_time)
    if hi < lo:
        return np.empty(0), np.empty(0)
    if hi == lo:
        # the spans touch at a single instant — evaluate just that instant
        t = float(lo)
        cp = colocation_probability(measure.stp_for(a), measure.stp_for(b), t)
        return np.array([t]), np.array([cp])
    if time_step is None:
        gaps = np.concatenate([np.diff(a.timestamps), np.diff(b.timestamps)])
        gaps = gaps[gaps > 0]
        time_step = float(np.median(gaps)) / 2.0 if gaps.size else (hi - lo) / 20.0
    if time_step <= 0:
        raise ValueError(f"time_step must be positive, got {time_step}")
    lattice = np.arange(lo, hi + time_step / 2, time_step)
    observed = np.concatenate([a.timestamps, b.timestamps])
    observed = observed[(observed >= lo) & (observed <= hi)]
    times = np.union1d(lattice, observed)
    stp_a = measure.stp_for(a)
    stp_b = measure.stp_for(b)
    cps = np.array([colocation_probability(stp_a, stp_b, float(t)) for t in times])
    return times, cps


def detect_colocation_events(
    measure: STS,
    a: Trajectory,
    b: Trajectory,
    threshold: float = 0.05,
    time_step: float | None = None,
    min_duration: float = 0.0,
) -> list[ColocationEvent]:
    """Contiguous intervals where ``CP(t) >= threshold``.

    Parameters
    ----------
    measure:
        A configured :class:`~repro.core.sts.STS` instance (its grid and
        noise model define what "same place" means).
    threshold:
        Minimum co-location probability.  Note that CP compares two
        distributions over cells, so even perfectly co-located objects
        rarely reach 1.0 under noise — calibrate against
        ``measure.similarity(a, a)``.
    time_step:
        Scan resolution; see :func:`colocation_timeline`.
    min_duration:
        Drop events shorter than this (seconds).
    """
    if threshold <= 0:
        raise ValueError(f"threshold must be positive, got {threshold}")
    times, cps = colocation_timeline(measure, a, b, time_step=time_step)
    if times.size == 0:
        return []
    above = cps >= threshold
    events: list[ColocationEvent] = []
    start_idx: int | None = None
    for k in range(len(times)):
        if above[k] and start_idx is None:
            start_idx = k
        if start_idx is not None and (not above[k] or k == len(times) - 1):
            end_idx = k if above[k] else k - 1
            segment = slice(start_idx, end_idx + 1)
            seg_times = times[segment]
            seg_cps = cps[segment]
            peak = int(np.argmax(seg_cps))
            exposure = float(np.trapezoid(seg_cps, seg_times)) if len(seg_times) > 1 else 0.0
            event = ColocationEvent(
                start=float(seg_times[0]),
                end=float(seg_times[-1]),
                peak_probability=float(seg_cps[peak]),
                peak_time=float(seg_times[peak]),
                exposure=exposure,
            )
            if event.duration >= min_duration:
                events.append(event)
            start_idx = None
    return events
