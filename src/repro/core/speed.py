"""Personalized speed models (Section IV-B, Eq. 6 of the paper).

STS models an object's transition probability through the distribution of
its own speed.  Speeds between consecutive observations form a sample set
``S``; a kernel density estimator with a Gaussian kernel and Silverman's
rule-of-thumb bandwidth

    h = (4 σ̂^5 / (3 |S|))^{1/5}

gives a *personalized*, non-parametric speed density ``Q̂(v)`` per
trajectory — no training data from other objects is needed.

The ablation variants reuse this machinery with different sample sets:

* STS-G pools the speed samples of every trajectory in the dataset into a
  single *global* model (:meth:`KDESpeedModel.from_trajectories`).
* Brownian-bridge interpolation (related work, Section II) corresponds to a
  Gaussian speed law, provided here as :class:`GaussianSpeedModel`.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Iterable, Sequence

import numpy as np

from ..errors import MalformedRecordError
from .trajectory import Trajectory

__all__ = [
    "SpeedModel",
    "KDESpeedModel",
    "GaussianSpeedModel",
    "silverman_bandwidth",
]

_INV_SQRT_2PI = 1.0 / math.sqrt(2.0 * math.pi)


def silverman_bandwidth(samples: np.ndarray, floor: float = 1e-3) -> float:
    """Silverman's rule-of-thumb bandwidth ``(4 σ̂^5 / (3 n))^{1/5}``.

    ``floor`` guards the degenerate cases the paper does not discuss:
    fewer than two samples, or samples with zero variance (e.g. a perfectly
    steady walker, or a length-2 trajectory).  Without a positive bandwidth
    Eq. 7 would be a Dirac comb and the transition probability ill-defined.
    """
    samples = np.asarray(samples, dtype=float)
    n = len(samples)
    if n == 0:
        return floor
    sigma = float(samples.std())
    if n < 2 or sigma == 0.0:
        # Scale the floor with the speed magnitude so fast movers (taxis)
        # do not get an absurdly spiky kernel.
        scale = float(np.abs(samples).mean()) if n else 0.0
        return max(floor, 0.05 * scale)
    return max(floor, (4.0 * sigma**5 / (3.0 * n)) ** 0.2)


class SpeedModel(ABC):
    """A probability model of an object's movement speed (m/s)."""

    @abstractmethod
    def density(self, v: np.ndarray | float) -> np.ndarray | float:
        """Probability density ``Q̂(v)`` of the speed(s) ``v``."""

    @abstractmethod
    def transition_weight(self, v: np.ndarray | float) -> np.ndarray | float:
        """Transition probability term of Eq. 7: ``h · Q̂(v)``.

        This is the quantity STS plugs in for ``P(ℓ', t' | ℓ, t)`` with
        ``v = dis(ℓ, ℓ') / |t - t'|``.  It is a *score* in ``[0, K(0)]``,
        not a normalized probability — Algorithm 1 renormalizes over the
        grid, so only relative weights matter.
        """

    @abstractmethod
    def max_plausible_speed(self) -> float:
        """Speed beyond which the density is negligible (used for pruning)."""


class KDESpeedModel(SpeedModel):
    """Kernel density speed model with a Gaussian kernel (Eq. 6).

    Parameters
    ----------
    samples:
        Speed samples (m/s).  Non-finite and negative values are rejected.
    bandwidth:
        Kernel bandwidth; defaults to Silverman's rule (Eq. 6 in the paper).
    truncate:
        Number of bandwidths beyond the extreme samples at which the density
        is treated as zero (for the pruned evaluation only; the density
        itself is never truncated).
    """

    def __init__(
        self,
        samples: Sequence[float] | np.ndarray,
        bandwidth: float | None = None,
        truncate: float = 4.0,
        approx: bool = True,
        table_size: int = 2048,
    ):
        arr = np.asarray(samples, dtype=float).ravel()
        if arr.size and (not np.isfinite(arr).all() or (arr < 0).any()):
            raise MalformedRecordError("speed samples must be finite and non-negative")
        self.samples = arr
        self.bandwidth = float(bandwidth) if bandwidth is not None else silverman_bandwidth(arr)
        if self.bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {self.bandwidth}")
        self.truncate = float(truncate)
        # Large batched evaluations (the S-T probability inner loops ask for
        # thousands of speeds at once) go through a precomputed lookup table
        # with linear interpolation instead of the exact O(|S|) sum per
        # query.  The table spans [0, max plausible speed]; beyond it the
        # density is below the truncation level and treated as 0.
        self.approx = bool(approx)
        if table_size < 16:
            raise ValueError(f"table_size must be >= 16, got {table_size}")
        self.table_size = int(table_size)
        self._table: tuple[np.ndarray, np.ndarray] | None = None

    # ------------------------------------------------------------------
    @classmethod
    def from_trajectory(cls, trajectory: Trajectory, **kwargs) -> "KDESpeedModel":
        """Personalized model from a single trajectory's own speed samples.

        A trajectory with fewer than two (time-separated) points yields no
        samples; the model then degenerates to a point mass at speed 0 with
        the floor bandwidth, i.e. "an object we know nothing about is
        assumed nearly stationary".
        """
        return cls(trajectory.speeds(), **kwargs)

    @classmethod
    def from_trajectories(cls, trajectories: Iterable[Trajectory], **kwargs) -> "KDESpeedModel":
        """Global model pooling samples from many trajectories (STS-G)."""
        pools = [t.speeds() for t in trajectories]
        samples = np.concatenate(pools) if pools else np.empty(0)
        return cls(samples, **kwargs)

    # ------------------------------------------------------------------
    def density(self, v: np.ndarray | float) -> np.ndarray | float:
        """Eq. 6: ``Q̂(v) = (1 / (h |S|)) Σ K((v - v') / h)``."""
        return self._kernel_mean(v) / self.bandwidth

    def transition_weight(self, v: np.ndarray | float) -> np.ndarray | float:
        """Eq. 7: ``h · Q̂(v) = (1 / |S|) Σ K((v - v') / h)``."""
        return self._kernel_mean(v)

    def _kernel_mean(self, v: np.ndarray | float) -> np.ndarray | float:
        v_arr = np.atleast_1d(np.asarray(v, dtype=float))
        if self.approx and v_arr.size > 64:
            out = self._kernel_mean_interp(v_arr)
        else:
            out = self._kernel_mean_exact(v_arr)
        return float(out[0]) if np.isscalar(v) or np.ndim(v) == 0 else out

    def _kernel_mean_exact(self, v_arr: np.ndarray) -> np.ndarray:
        if self.samples.size == 0:
            # Degenerate model: a single pseudo-sample at 0 m/s.
            z = v_arr / self.bandwidth
            return _INV_SQRT_2PI * np.exp(-0.5 * z * z)
        z = (v_arr[:, None] - self.samples[None, :]) / self.bandwidth
        return (_INV_SQRT_2PI * np.exp(-0.5 * z * z)).mean(axis=1)

    def _kernel_mean_interp(self, v_arr: np.ndarray) -> np.ndarray:
        if self._table is None:
            top = self.max_plausible_speed()
            xs = np.linspace(0.0, max(top, self.bandwidth), self.table_size)
            self._table = (xs, self._kernel_mean_exact(xs))
        xs, ys = self._table
        return np.interp(v_arr, xs, ys, left=float(ys[0]), right=0.0)

    def max_plausible_speed(self) -> float:
        top = float(self.samples.max()) if self.samples.size else 0.0
        return top + self.truncate * self.bandwidth

    def __repr__(self) -> str:
        return f"KDESpeedModel(n={self.samples.size}, h={self.bandwidth:.4g})"


class GaussianSpeedModel(SpeedModel):
    """Parametric Gaussian speed law ``v ~ N(mean, std²)``.

    With this model the Eq. 4 interpolation reduces to the Brownian-bridge
    style estimate of the related work (Section II of the paper notes the
    Brownian bridge is the special case of STS where the speed distribution
    is assumed Gaussian).  Also handy as a fixed "universal" speed prior.
    """

    def __init__(self, mean: float, std: float, truncate: float = 4.0):
        if std <= 0:
            raise ValueError(f"std must be positive, got {std}")
        self.mean = float(mean)
        self.std = float(std)
        self.truncate = float(truncate)

    def density(self, v: np.ndarray | float) -> np.ndarray | float:
        z = (np.asarray(v, dtype=float) - self.mean) / self.std
        out = _INV_SQRT_2PI / self.std * np.exp(-0.5 * z * z)
        return float(out) if np.ndim(v) == 0 else out

    def transition_weight(self, v: np.ndarray | float) -> np.ndarray | float:
        # Mirror Eq. 7's h·Q̂(v) with h := std, giving the same [0, K(0)]
        # range as the KDE model.
        z = (np.asarray(v, dtype=float) - self.mean) / self.std
        out = _INV_SQRT_2PI * np.exp(-0.5 * z * z)
        return float(out) if np.ndim(v) == 0 else out

    def max_plausible_speed(self) -> float:
        return self.mean + self.truncate * self.std

    def __repr__(self) -> str:
        return f"GaussianSpeedModel(mean={self.mean}, std={self.std})"
