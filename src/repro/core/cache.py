"""Bounded LRU caches for the hot evaluation paths.

The S-T probability machinery memoizes several families of intermediate
results (query distributions, FFT kernel stacks, noise-plane transforms,
per-segment candidate geometry).  Unbounded dictionaries would grow with
the number of distinct query timestamps — effectively without limit in a
production matching service — so every memo table is an :class:`LRUCache`
with a configurable capacity.

The cache is thread-safe (a single lock around the ordered dict) because
the thread backend of :mod:`repro.parallel` shares one measure instance —
and therefore one set of caches — across worker threads.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Callable, Hashable, Iterator

__all__ = ["LRUCache"]

_MISSING = object()


class LRUCache:
    """A bounded mapping evicting the least-recently-used entry.

    Parameters
    ----------
    maxsize:
        Capacity.  ``0`` disables caching entirely (every lookup misses);
        ``None`` means unbounded.  Negative sizes are rejected.
    """

    __slots__ = ("maxsize", "_data", "_lock", "hits", "misses", "evictions")

    def __init__(self, maxsize: int | None = 128):
        if maxsize is not None and maxsize < 0:
            raise ValueError(f"maxsize must be >= 0 or None, got {maxsize}")
        self.maxsize = maxsize
        self._data: OrderedDict[Hashable, Any] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    def get(self, key: Hashable, default: Any = None) -> Any:
        """Look up ``key``, marking it most-recently-used on a hit."""
        with self._lock:
            value = self._data.get(key, _MISSING)
            if value is _MISSING:
                self.misses += 1
                return default
            self._data.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert ``key``, evicting the oldest entry when over capacity."""
        if self.maxsize == 0:
            return
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
            self._data[key] = value
            if self.maxsize is not None and len(self._data) > self.maxsize:
                self._data.popitem(last=False)
                self.evictions += 1

    def get_or_compute(self, key: Hashable, compute: Callable[[], Any]) -> Any:
        """``get`` with a fallback factory; the computed value is cached.

        The factory runs outside the lock, so concurrent threads may
        compute the same value redundantly — wasteful but correct, and it
        keeps arbitrary user code (noise/transition models) from running
        under the cache lock.
        """
        value = self.get(key, _MISSING)
        if value is not _MISSING:
            return value
        value = compute()
        self.put(key, value)
        return value

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._data

    def __iter__(self) -> Iterator[Hashable]:
        with self._lock:
            return iter(list(self._data))

    def clear(self) -> None:
        """Drop every cached entry (capacity and counters are kept)."""
        with self._lock:
            self._data.clear()

    def __eq__(self, other: object) -> bool:
        """Compare contents against a plain mapping (ignoring order)."""
        if isinstance(other, LRUCache):
            return dict(self._data) == dict(other._data)
        if isinstance(other, dict):
            return dict(self._data) == other
        return NotImplemented

    def values(self) -> list[Any]:
        """Snapshot of the cached values (oldest first)."""
        with self._lock:
            return list(self._data.values())

    def counts(self) -> tuple[int, int, int, int]:
        """``(hits, misses, evictions, size)`` without taking the lock.

        Monitoring-grade reads: each field is one atomic load, but the
        four are not mutually consistent under concurrent writes.  Used
        by snapshot collectors that walk many caches per scrape.
        """
        return self.hits, self.misses, self.evictions, len(self._data)

    def stats(self) -> dict[str, int | None]:
        """Size, capacity and lifetime hit/miss/eviction counters."""
        with self._lock:
            return {
                "size": len(self._data),
                "max": self.maxsize,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }

    # Locks don't pickle; a cache crossing a process boundary restarts cold.
    def __getstate__(self) -> dict:
        with self._lock:
            return {"maxsize": self.maxsize}

    def __setstate__(self, state: dict) -> None:
        self.maxsize = state["maxsize"]
        self._data = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __repr__(self) -> str:
        return (
            f"LRUCache(maxsize={self.maxsize}, len={len(self)}, "
            f"hits={self.hits}, misses={self.misses}, evictions={self.evictions})"
        )
