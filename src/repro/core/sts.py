"""The STS measure (Section V-B, Eq. 10) and its ablation variants.

``STS(Tra, Tra')`` is the average co-location probability over the union of
the two trajectories' timestamps:

    STS = ( Σ_i CP(t_i) + Σ_j CP(t'_j) ) / ( |Tra| + |Tra'| )

Averaging (rather than summing) makes the measure insensitive to trajectory
length, which varies under sporadic sampling.

:class:`STS` is configured once with a grid, a noise model and a transition
policy, then applied to any number of trajectory pairs.  The ablation
variants of Section VI-C are thin configurations of the same machinery:

* :func:`sts_n` — no noise model (deterministic locations);
* :func:`sts_g` — one global speed distribution pooled from a corpus
  instead of a personalized one per trajectory;
* :func:`sts_f` — frequency-based Markov transitions fitted on a corpus.
"""

from __future__ import annotations

from time import perf_counter
from typing import Callable, Iterable, Sequence

import numpy as np

from ..errors import DegenerateTrajectoryError
from ..obs import get_registry, trace_span
from .cache import LRUCache
from .colocation import colocation_batch
from .grid import Grid
from .noise import DeterministicNoiseModel, GaussianNoiseModel, NoiseModel
from .speed import GaussianSpeedModel, KDESpeedModel
from .stprob import TrajectorySTP
from .transition import FrequencyTransitionModel, SpeedTransitionModel, TransitionModel
from .trajectory import Trajectory

__all__ = ["STS", "sts_n", "sts_g", "sts_f", "sts_b"]

TransitionFactory = Callable[[Trajectory], TransitionModel]


def _personalized_transition(trajectory: Trajectory) -> TransitionModel:
    """Default policy: Eq. 6–7, a KDE speed model from the trajectory itself."""
    return SpeedTransitionModel(KDESpeedModel.from_trajectory(trajectory))


class _SharedTransition:
    """Factory returning one shared model for every trajectory.

    A named class rather than a lambda so that measures configured with a
    shared transition model (STS-G, STS-F) stay picklable — the process
    backend of :mod:`repro.parallel` ships the measure to each worker.
    """

    def __init__(self, model: TransitionModel):
        self.model = model

    def __call__(self, _trajectory: Trajectory) -> TransitionModel:
        return self.model

    def __repr__(self) -> str:
        return f"_SharedTransition({self.model!r})"


def _brownian_transition(trajectory: Trajectory) -> TransitionModel:
    """Per-trajectory Gaussian speed law (the STS-B ablation policy)."""
    speeds = trajectory.speeds()
    if speeds.size == 0:
        return SpeedTransitionModel(GaussianSpeedModel(mean=0.0, std=1e-3))
    mean = float(speeds.mean())
    std = max(float(speeds.std()), 0.05 * max(mean, 1e-3), 1e-3)
    return SpeedTransitionModel(GaussianSpeedModel(mean=mean, std=std))


class STS:
    """Spatial-Temporal Similarity measure for trajectory pairs.

    Parameters
    ----------
    grid:
        Spatial partition of the area of interest.  The paper recommends a
        cell size close to the localization error (Section VI-E).
    noise_model:
        Location-noise distribution of the sensing system.  Defaults to a
        Gaussian with ``sigma = grid.cell_size`` (the paper's "grid size ≈
        location error" operating point).
    transition:
        One of: ``None`` (default — personalized KDE speed transitions per
        trajectory, Eq. 6–7); a :class:`TransitionModel` instance shared by
        all trajectories (the STS-G / STS-F ablations); or a callable
        ``Trajectory -> TransitionModel`` for custom policies.
    mode:
        ``"auto"`` (default), ``"fft"``, ``"pruned"`` or ``"dense"`` —
        passed to :class:`TrajectorySTP`; see :mod:`repro.core.stprob`.
    cache_size:
        Maximum number of trajectories whose estimator state is kept alive
        at once (LRU eviction beyond that).  ``None`` means unbounded — the
        pre-bounded historical behaviour.  Size it to the working set: a
        pairwise matrix over a gallery wants ``cache_size >= len(gallery)``
        to avoid rebuilding estimators, while a streaming service matching
        one query at a time is happy with a small cache.
    stp_cache_size:
        Per-trajectory query/kernel cache capacity, forwarded to
        :class:`TrajectorySTP` (``0`` disables memoization entirely).
    registry:
        Metrics registry receiving similarity-call counters, latency
        histograms and stage timings, and forwarded to every estimator
        this measure builds.  Defaults to the process-wide registry
        (:func:`repro.obs.get_registry`); a no-op when ``REPRO_OBS=off``.

    Notes
    -----
    Similarities lie in ``[0, 1]`` and the measure is symmetric.  Instances
    cache per-trajectory state (noise distributions, speed models,
    interpolation results) keyed by trajectory identity, so reusing one
    instance across a whole similarity matrix is much cheaper than
    constructing it per pair.  Call :meth:`clear_cache` between unrelated
    datasets to release memory.
    """

    name = "STS"
    #: STS is a similarity (duck-types :class:`repro.similarity.base.Measure`).
    higher_is_better = True

    def __init__(
        self,
        grid: Grid,
        noise_model: NoiseModel | None = None,
        transition: TransitionModel | TransitionFactory | None = None,
        mode: str = "auto",
        cache_size: int | None = 512,
        stp_cache_size: int | None = 4096,
        registry=None,
    ):
        self.grid = grid
        self.noise_model = noise_model if noise_model is not None else GaussianNoiseModel(grid.cell_size)
        if transition is None:
            self._transition_factory: TransitionFactory = _personalized_transition
        elif isinstance(transition, TransitionModel):
            self._transition_factory = _SharedTransition(transition)
        elif callable(transition):
            self._transition_factory = transition
        else:
            raise TypeError(
                "transition must be None, a TransitionModel, or a callable "
                f"Trajectory -> TransitionModel; got {type(transition).__name__}"
            )
        self.mode = mode
        self.stp_cache_size = stp_cache_size
        self._stp_cache = LRUCache(cache_size)  # id -> (Trajectory, TrajectorySTP)
        self._init_obs(registry)

    # ------------------------------------------------------------------
    def _init_obs(self, registry=None) -> None:
        """Bind metric handles once (hot paths pay one dict-add each)."""
        reg = registry if registry is not None else get_registry()
        self._registry = reg
        self._m_calls = reg.counter(
            "repro_sts_similarity_calls_total", "similarity() evaluations (Eq. 10)"
        ).child()
        self._h_similarity = reg.histogram(
            "repro_similarity_seconds", "Wall seconds per similarity() call"
        ).child()
        self._h_pairwise = reg.histogram(
            "repro_pairwise_seconds", "Wall seconds per pairwise() call"
        ).child()
        stage = reg.counter(
            "repro_stage_seconds_total", "Wall seconds spent per pipeline stage"
        )
        self._t_prewarm = stage.child(component="sts", stage="prewarm")
        self._t_pairloop = stage.child(component="sts", stage="pair-loop")
        reg.register_collector(self._collect_cache_samples)

    def _collect_cache_samples(self):
        """Snapshot-time cache samples, aggregated across the estimator pool.

        Estimators built by :meth:`stp_for` skip their own collectors
        (``cache_collector=False``); this single collector walks them and
        sums their cache counters in plain Python, so a registry snapshot
        folds ~30 samples instead of ~25 per live estimator — the
        difference between a 0.1 ms and a 2 ms worker delta on a hot
        gallery shard.  Eviction from ``_stp_cache`` drops an estimator's
        contribution, matching the old weak-collector lifetime.
        """
        stats = self._stp_cache.stats()
        labels = {"cache": "sts-estimators"}
        samples = [
            ("counter", "repro_cache_hits_total", labels, stats["hits"]),
            ("counter", "repro_cache_misses_total", labels, stats["misses"]),
            ("counter", "repro_cache_evictions_total", labels, stats["evictions"]),
            ("gauge", "repro_cache_entries", labels, stats["size"]),
        ]
        if stats["max"] is not None:
            samples.append(("gauge", "repro_cache_capacity", labels, stats["max"]))
        totals: dict[str, list] = {}
        for entry in self._stp_cache.values():
            for name, cache in entry[1]._named_caches():
                agg = totals.get(name)
                if agg is None:
                    totals[name] = agg = [0, 0, 0, 0, 0, False]
                hits, misses, evictions, size = cache.counts()
                agg[0] += hits
                agg[1] += misses
                agg[2] += evictions
                agg[3] += size
                if cache.maxsize is not None:
                    agg[4] += cache.maxsize
                    agg[5] = True
        for name, (hits, misses, evictions, size, cap, has_cap) in totals.items():
            labels = {"cache": name}
            samples.append(("counter", "repro_cache_hits_total", labels, hits))
            samples.append(("counter", "repro_cache_misses_total", labels, misses))
            samples.append(
                ("counter", "repro_cache_evictions_total", labels, evictions)
            )
            samples.append(("gauge", "repro_cache_entries", labels, size))
            if has_cap:
                samples.append(("gauge", "repro_cache_capacity", labels, cap))
        return samples

    def stp_for(self, trajectory: Trajectory) -> TrajectorySTP:
        """The (cached) S-T probability estimator for ``trajectory``."""
        key = id(trajectory)
        hit = self._stp_cache.get(key)
        if hit is not None and hit[0] is trajectory:
            return hit[1]
        stp = TrajectorySTP(
            trajectory,
            self.grid,
            self.noise_model,
            self._transition_factory(trajectory),
            mode=self.mode,
            cache_size=self.stp_cache_size,
            registry=self._registry,
            cache_collector=False,
        )
        self._stp_cache.put(key, (trajectory, stp))
        return stp

    def clear_cache(self) -> None:
        """Release all cached per-trajectory state."""
        self._stp_cache.clear()

    # ------------------------------------------------------------------
    def similarity(self, tra1: Trajectory, tra2: Trajectory, budget=None) -> float:
        """Eq. 10: average co-location probability over both timestamp sets.

        Timestamps at which one trajectory is outside its observed span
        contribute 0 (Eq. 5 case 3) but still count in the denominator,
        exactly as the paper defines the average.

        ``budget`` (a :class:`repro.serving.Budget`) routes the call
        through the anytime evaluator: if the budget expires mid-pair the
        returned float is the midpoint of a rigorous ``[lower, upper]``
        interval around the exact score (use
        :func:`repro.serving.anytime_similarity` directly to see the
        bound).  An exhausted-free budget returns the exact score,
        bitwise identical to the unbudgeted path.
        """
        t0 = perf_counter()
        try:
            if budget is not None and budget.bounded:
                from ..serving.anytime import anytime_similarity

                return anytime_similarity(self, tra1, tra2, budget=budget).value
            if len(tra1) == 0 or len(tra2) == 0:
                raise DegenerateTrajectoryError("STS is undefined for empty trajectories")
            with trace_span("sts.similarity"):
                stp1 = self.stp_for(tra1)
                stp2 = self.stp_for(tra2)
                times = np.concatenate([tra1.timestamps, tra2.timestamps])
                cps = colocation_batch(stp1, stp2, times)
                return float(cps.sum()) / (len(tra1) + len(tra2))
        finally:
            self._m_calls.inc()
            self._h_similarity.observe(perf_counter() - t0)

    def __call__(self, tra1: Trajectory, tra2: Trajectory) -> float:
        return self.similarity(tra1, tra2)

    def score(self, tra1: Trajectory, tra2: Trajectory) -> float:
        """Measure-protocol alias: STS already orients higher = more similar."""
        return self.similarity(tra1, tra2)

    def colocation_profile(self, tra1: Trajectory, tra2: Trajectory) -> tuple[np.ndarray, np.ndarray]:
        """Per-timestamp co-location probabilities (for inspection/plots).

        Returns the sorted union of both timestamp sets and the co-location
        probability at each — the terms whose average is Eq. 10.

        .. warning::
           The union **deduplicates** timestamps shared by both
           trajectories, so ``cps.mean()`` is *not* Eq. 10 when the two
           timestamp sets overlap: :meth:`similarity` follows the paper and
           counts a shared timestamp once per trajectory (i.e. twice — once
           in ``Σ_i CP(t_i)`` and once in ``Σ_j CP(t'_j)``, with the
           denominator ``|Tra| + |Tra'|``), while the profile lists it
           once.  The profile is an inspection view of *where in time* the
           co-location mass lives, not a term-for-term expansion of the
           measure.  ``tests/test_sts.py`` pins both behaviours.
        """
        stp1 = self.stp_for(tra1)
        stp2 = self.stp_for(tra2)
        times = np.union1d(tra1.timestamps, tra2.timestamps)
        cps = colocation_batch(stp1, stp2, times)
        return times, cps

    def pairwise(
        self,
        gallery: Sequence[Trajectory],
        queries: Sequence[Trajectory] | None = None,
        n_jobs: int | None = None,
        backend: str = "auto",
        checkpoint: str | None = None,
        deadline: float | None = None,
        shm: bool | str | None = None,
        chunking: str | None = None,
        cluster=None,
    ) -> np.ndarray:
        """Similarity matrix between two trajectory collections.

        Returns ``S[i, j] = STS(queries[i], gallery[j])``.  With
        ``queries=None`` the matrix is ``gallery`` against itself, computed
        symmetrically (each unordered pair once).

        ``n_jobs`` > 1 shards the pair list across worker processes (or
        threads — see :class:`repro.parallel.ParallelSTS` and ``backend``);
        ``-1`` uses every available core.  The parallel matrix matches the
        serial one to float round-off regardless of worker count, and the
        pool is supervised: dead/hung workers are retried and the backend
        degrades rather than failing the run.

        ``shm`` controls the corpus transport for the process backend:
        ``"auto"`` (default) broadcasts the trajectories once through a
        shared-memory arena instead of pickling them per worker;
        ``False`` forces the pickling path.  ``chunking="cost"`` balances
        chunks by estimated per-pair work instead of pair count.

        ``checkpoint`` names a chunk journal file (atomic write-rename);
        an interrupted run pointed at the same file resumes from the last
        completed chunk.  Resume requires the same ``n_jobs`` and
        ``chunking``.

        ``deadline`` caps the whole call at that many wall-clock seconds;
        pairs not scored in time come back NaN (see
        :meth:`repro.parallel.ParallelSTS.pairwise`, which deadlined
        calls always route through).

        ``cluster`` (a :class:`repro.cluster.ClusterService` built from
        this exact ``gallery``) scatter-gathers each row across the
        service's shard workers instead of scoring in-process: replica
        death fails over, and entries owned by a shard the service had to
        skip come back NaN — the same partial-result convention as
        ``deadline``.  Healthy cluster → bitwise identical to the serial
        matrix.
        """
        if cluster is not None:
            if not cluster.matches_gallery(gallery):
                raise ValueError(
                    "cluster service was packed from a different gallery than "
                    "the one passed to pairwise(); rebuild the ClusterService"
                )
            from ..serving.budget import Budget

            rows = list(gallery) if queries is None else list(queries)
            budget = (
                Budget(deadline_ms=deadline * 1000.0) if deadline is not None else None
            )
            t_start = perf_counter()
            out, _reports = cluster.pairwise(rows, budget=budget)
            self._h_pairwise.observe(perf_counter() - t_start)
            return out
        if (n_jobs is not None and n_jobs != 1) or checkpoint is not None or deadline is not None:
            from ..parallel import ParallelSTS

            return ParallelSTS(
                self, n_jobs=n_jobs, backend=backend, shm=shm, chunking=chunking
            ).pairwise(gallery, queries, checkpoint=checkpoint, deadline=deadline)
        t_start = perf_counter()
        with trace_span(
            "sts.pairwise",
            gallery=len(gallery),
            queries=len(queries) if queries is not None else len(gallery),
        ):
            everything = list(gallery) if queries is None else list(gallery) + list(queries)
            with trace_span("sts.prewarm"):
                t0 = perf_counter()
                self._prewarm(everything)
                self._t_prewarm.inc(perf_counter() - t0)
            t0 = perf_counter()
            with trace_span("sts.pair-loop"):
                if queries is None:
                    n = len(gallery)
                    out = np.zeros((n, n))
                    for i in range(n):
                        for j in range(i, n):
                            out[i, j] = out[j, i] = self.similarity(gallery[i], gallery[j])
                else:
                    out = np.zeros((len(queries), len(gallery)))
                    for i, q in enumerate(queries):
                        for j, g in enumerate(gallery):
                            out[i, j] = self.similarity(q, g)
            self._t_pairloop.inc(perf_counter() - t0)
        self._h_pairwise.observe(perf_counter() - t_start)
        return out

    def _prewarm(self, trajectories: Sequence[Trajectory]) -> None:
        """Resolve every STP query the pairwise loop will make, batched.

        Per-pair evaluation presents each estimator with the partner's
        timestamps a handful at a time — too few per bracketing segment to
        amortize the vectorized segment pass.  One ``stp_batch`` per
        trajectory over the *union* of all timestamps in play turns that
        into one pass with every query of the whole matrix, and the pair
        loop then runs entirely off the per-query cache.  With caches
        disabled (or too small to hold the working set) this is skipped /
        degrades to the plain per-pair path — results are identical either
        way, because ``stp_batch`` and ``stp`` share one evaluation core.
        """
        if not trajectories or self.stp_cache_size == 0:
            return
        all_times = np.unique(np.concatenate([t.timestamps for t in trajectories]))
        for trajectory in trajectories:
            stp = self.stp_for(trajectory)
            inside = all_times[
                (all_times >= trajectory.start_time) & (all_times <= trajectory.end_time)
            ]
            if inside.size:
                stp.stp_batch(inside)

    # Metric handles hold locks, which do not pickle; a measure shipped to
    # a process worker rebinds to that worker's own registry on arrival.
    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        for key in (
            "_registry", "_m_calls", "_h_similarity", "_h_pairwise",
            "_t_prewarm", "_t_pairloop",
        ):
            state.pop(key, None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._init_obs()

    def __repr__(self) -> str:
        return f"<{self.name} grid={self.grid!r} noise={self.noise_model!r} mode={self.mode!r}>"


# ----------------------------------------------------------------------
# Ablation variants (Section VI-C, Figure 10)
# ----------------------------------------------------------------------
def sts_n(grid: Grid, mode: str = "auto") -> STS:
    """STS-N: locations are deterministic points (no noise model)."""
    measure = STS(grid, noise_model=DeterministicNoiseModel(), mode=mode)
    measure.name = "STS-N"
    return measure


def sts_g(
    grid: Grid,
    corpus: Iterable[Trajectory],
    noise_model: NoiseModel | None = None,
    mode: str = "auto",
) -> STS:
    """STS-G: one global speed distribution pooled from ``corpus``."""
    global_speed = KDESpeedModel.from_trajectories(corpus)
    measure = STS(
        grid,
        noise_model=noise_model,
        transition=SpeedTransitionModel(global_speed),
        mode=mode,
    )
    measure.name = "STS-G"
    return measure


def sts_f(
    grid: Grid,
    corpus: Iterable[Trajectory],
    noise_model: NoiseModel | None = None,
    mode: str = "auto",
    max_steps: int = 8,
) -> STS:
    """STS-F: frequency-based Markov transitions fitted on ``corpus``."""
    freq = FrequencyTransitionModel(grid, max_steps=max_steps).fit(corpus)
    measure = STS(grid, noise_model=noise_model, transition=freq, mode=mode)
    measure.name = "STS-F"
    return measure


def sts_b(grid: Grid, noise_model: NoiseModel | None = None, mode: str = "auto") -> STS:
    """STS-B: Brownian-bridge-style Gaussian speed law per trajectory.

    Section II of the paper notes the Brownian bridge is the special case
    of STS where the speed distribution is assumed Gaussian.  This variant
    fits a per-trajectory Gaussian to the speed samples (mean/std) instead
    of the non-parametric KDE — an extra ablation isolating what the
    arbitrary-distribution property of Eq. 6 buys (e.g. under the bimodal
    walk/dwell speeds of mall visitors).
    """
    measure = STS(grid, noise_model=noise_model, transition=_brownian_transition, mode=mode)
    measure.name = "STS-B"
    return measure
