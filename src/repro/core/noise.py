"""Location-noise models (Section IV-A, Eq. 3 of the paper).

An observed location ``ℓ`` in a trajectory is not a certain position: the
localization process is noisy, so the paper models each observation as an
outcome of a probability distribution ``f(r, ℓ)`` over grid cells — the
likelihood that the *true* position is cell ``r`` given the observation
``ℓ``.  The distribution may be arbitrary; the paper (and our default) uses
an isotropic Gaussian on the distance between ``ℓ`` and the cell center.

Every model exposes two evaluation modes:

* :meth:`NoiseModel.cell_distribution` — sparse/truncated support (the cells
  where the probability is non-negligible), which the default pruned STS
  evaluation uses;
* :meth:`NoiseModel.dense_distribution` — the full ``|R|``-vector, used by
  the exact mode and by tests that verify pruning is faithful.

Both return distributions normalized to sum to 1 over their support, as
required by Algorithm 1 of the paper.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

import numpy as np

from .grid import Grid

__all__ = [
    "NoiseModel",
    "GaussianNoiseModel",
    "DeterministicNoiseModel",
    "UniformDiskNoiseModel",
]


class NoiseModel(ABC):
    """Maps an observed location to a probability distribution over cells."""

    @abstractmethod
    def support_radius(self, grid: Grid) -> float:
        """Radius (meters) beyond which the density is treated as zero."""

    @abstractmethod
    def _weight(self, distances: np.ndarray) -> np.ndarray:
        """Unnormalized density at cell centers at the given distances."""

    # ------------------------------------------------------------------
    def cell_distribution(self, grid: Grid, x: float, y: float) -> tuple[np.ndarray, np.ndarray]:
        """Sparse distribution over cells for an observation at ``(x, y)``.

        Returns ``(cells, probs)`` where ``cells`` are flat grid indices
        (sorted ascending) and ``probs`` sums to 1.  The support always
        contains at least the cell holding ``(x, y)``, so the result is
        well-defined even for very tight noise.
        """
        radius = self.support_radius(grid)
        cells = grid.cells_within(x, y, radius)
        if len(cells) == 0:
            cells = np.array([grid.cell_of(x, y)], dtype=int)
        dist = grid.distances_from(x, y, cells)
        weights = self._weight(dist)
        total = weights.sum()
        if total <= 0 or not np.isfinite(total):
            # Degenerate support (e.g. zero-width noise): point mass on the
            # containing cell.
            cells = np.array([grid.cell_of(x, y)], dtype=int)
            return cells, np.ones(1)
        return cells, weights / total

    def dense_distribution(self, grid: Grid, x: float, y: float) -> np.ndarray:
        """Full ``|R|``-vector distribution (normalized), for exact mode."""
        dist = grid.distances_from(x, y)
        weights = self._weight(dist)
        total = weights.sum()
        if total <= 0 or not np.isfinite(total):
            dense = np.zeros(grid.n_cells)
            dense[grid.cell_of(x, y)] = 1.0
            return dense
        return weights / total


class GaussianNoiseModel(NoiseModel):
    """Isotropic Gaussian location noise (Eq. 3 of the paper).

    ``f(r, ℓ) ∝ exp(-dis(ℓ, r) / (2σ²))`` evaluated at cell centers.

    .. note::
       Eq. 3 as printed uses ``dis(ℓ, r)`` (not squared) in the exponent.
       We follow the standard Gaussian form ``dis²`` — the printed form is a
       typo (the paper cites the Gaussian as "widely used to model location
       noise", and a non-squared exponent is a Laplace kernel).  Set
       ``squared=False`` to reproduce the literal printed formula; both are
       normalized over the grid so the difference is a slightly heavier
       tail.

    Parameters
    ----------
    sigma:
        Noise standard deviation in meters (the localization error of the
        sensing system; ~3 m for the mall WiFi system in the paper).
    truncate:
        Support radius in standard deviations.  4σ keeps >99.99% of mass.
    squared:
        Use the standard Gaussian ``exp(-d²/2σ²)`` (default) or the paper's
        literal ``exp(-d/2σ²)``.
    """

    def __init__(self, sigma: float, truncate: float = 4.0, squared: bool = True):
        if sigma <= 0:
            raise ValueError(f"sigma must be positive, got {sigma}")
        if truncate <= 0:
            raise ValueError(f"truncate must be positive, got {truncate}")
        self.sigma = float(sigma)
        self.truncate = float(truncate)
        self.squared = bool(squared)

    def support_radius(self, grid: Grid) -> float:
        # At least one cell diagonal, so tight noise still spans the cell
        # containing the observation and its immediate neighbors.
        return max(self.truncate * self.sigma, grid.cell_size * math.sqrt(2.0))

    def _weight(self, distances: np.ndarray) -> np.ndarray:
        if self.squared:
            z = distances**2 / (2.0 * self.sigma**2)
        else:
            z = distances / (2.0 * self.sigma**2)
        return np.exp(-z)

    def __repr__(self) -> str:
        return f"GaussianNoiseModel(sigma={self.sigma}, truncate={self.truncate})"


class DeterministicNoiseModel(NoiseModel):
    """No noise: a point mass on the cell containing the observation.

    This is the location model of the STS-N ablation variant (Section VI-C),
    where each observed location is treated as a deterministic point.
    """

    def support_radius(self, grid: Grid) -> float:
        return 0.0

    def _weight(self, distances: np.ndarray) -> np.ndarray:
        # Only reached with a non-empty candidate set; mass goes to the
        # nearest center.
        weights = np.zeros_like(distances)
        weights[int(np.argmin(distances))] = 1.0
        return weights

    def cell_distribution(self, grid: Grid, x: float, y: float) -> tuple[np.ndarray, np.ndarray]:
        cell = grid.cell_of(x, y)
        return np.array([cell], dtype=int), np.ones(1)

    def dense_distribution(self, grid: Grid, x: float, y: float) -> np.ndarray:
        dense = np.zeros(grid.n_cells)
        dense[grid.cell_of(x, y)] = 1.0
        return dense

    def __repr__(self) -> str:
        return "DeterministicNoiseModel()"


class UniformDiskNoiseModel(NoiseModel):
    """Uniform noise over a disk of fixed radius.

    Demonstrates the paper's claim that ``f`` may be *any* distribution:
    useful for localization systems that report a confidence radius rather
    than a Gaussian error (e.g. cell-tower positioning).
    """

    def __init__(self, radius: float):
        if radius <= 0:
            raise ValueError(f"radius must be positive, got {radius}")
        self.radius = float(radius)

    def support_radius(self, grid: Grid) -> float:
        return max(self.radius, grid.cell_size * math.sqrt(2.0))

    def _weight(self, distances: np.ndarray) -> np.ndarray:
        return (distances <= self.radius).astype(float)

    def __repr__(self) -> str:
        return f"UniformDiskNoiseModel(radius={self.radius})"
