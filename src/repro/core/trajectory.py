"""Trajectory data model.

The paper (Section III-A) distinguishes a *path* — the continuous ground-truth
movement ``f: T -> L`` — from a *trajectory* — the discrete sequence of
``(location, timestamp)`` pairs sampled from that path.  This module provides
both: :class:`TrajectoryPoint` / :class:`Trajectory` for the discrete
observations the similarity measures consume, and :class:`Path` for the
continuous ground truth the simulators produce.

Coordinates are planar (meters in a local frame).  Geographic inputs should be
projected before constructing trajectories (see :mod:`repro.datasets.porto`
for an equirectangular projection helper).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

import numpy as np

from ..errors import DegenerateTrajectoryError, MalformedRecordError

__all__ = ["TrajectoryPoint", "Trajectory", "Path"]


@dataclass(frozen=True, slots=True)
class TrajectoryPoint:
    """One observation ``(ℓ, t)``: a planar location with its timestamp.

    Coordinates and timestamp must be finite — a NaN smuggled in here
    would silently poison every distance, speed and probability downstream,
    so it is rejected at the door.
    """

    x: float
    y: float
    t: float

    def __post_init__(self) -> None:
        if not (math.isfinite(self.x) and math.isfinite(self.y) and math.isfinite(self.t)):
            raise MalformedRecordError(
                f"observation must be finite, got ({self.x}, {self.y}, {self.t})"
            )

    @property
    def location(self) -> tuple[float, float]:
        """The spatial component ``(x, y)`` of the observation."""
        return (self.x, self.y)

    def distance_to(self, other: "TrajectoryPoint") -> float:
        """Euclidean distance in meters to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def speed_to(self, other: "TrajectoryPoint") -> float:
        """Average speed (m/s) implied by moving to ``other``.

        Raises :class:`ValueError` if the two observations share a timestamp,
        since the implied speed would be undefined.
        """
        dt = abs(other.t - self.t)
        if dt == 0:
            raise DegenerateTrajectoryError(
                "speed between two observations at the same timestamp is undefined"
            )
        return self.distance_to(other) / dt


class Trajectory:
    """A time-ordered sequence of :class:`TrajectoryPoint` observations.

    Instances are immutable: transformations (slicing, resampling,
    distortion) return new trajectories.  Points are stored both as a tuple
    of :class:`TrajectoryPoint` (for ergonomic iteration) and as dense numpy
    arrays (for the vectorized math in :mod:`repro.core.stprob`).  The
    point tuple is materialized lazily when the trajectory was built from
    arrays (:meth:`from_views`), so array-backed trajectories — e.g. the
    zero-copy shared-memory views of :mod:`repro.parallel.shm` — never
    allocate per-point objects unless something iterates them.

    Parameters
    ----------
    points:
        The observations.  They are sorted by timestamp on construction.
    object_id:
        Optional identifier of the moving object (taxi id, MAC address, ...).
    """

    __slots__ = ("_points_cache", "_xy", "_t", "object_id")

    def __init__(self, points: Iterable[TrajectoryPoint], object_id: str | None = None):
        pts = sorted(points, key=lambda p: p.t)
        self._points_cache: tuple[TrajectoryPoint, ...] | None = tuple(pts)
        self._xy = np.array([(p.x, p.y) for p in pts], dtype=float).reshape(len(pts), 2)
        self._t = np.array([p.t for p in pts], dtype=float)
        self.object_id = object_id

    @property
    def _points(self) -> tuple[TrajectoryPoint, ...]:
        """The point tuple, materialized on first access for array-backed
        trajectories (the arrays are the source of truth either way)."""
        pts = self._points_cache
        if pts is None:
            pts = tuple(
                TrajectoryPoint(float(x), float(y), float(t))
                for (x, y), t in zip(self._xy, self._t)
            )
            self._points_cache = pts
        return pts

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_arrays(
        cls,
        xs: Sequence[float],
        ys: Sequence[float],
        ts: Sequence[float],
        object_id: str | None = None,
    ) -> "Trajectory":
        """Build a trajectory from parallel coordinate/timestamp sequences."""
        if not (len(xs) == len(ys) == len(ts)):
            raise ValueError(
                f"coordinate arrays must have equal length, got {len(xs)}, {len(ys)}, {len(ts)}"
            )
        points = [TrajectoryPoint(float(x), float(y), float(t)) for x, y, t in zip(xs, ys, ts)]
        return cls(points, object_id=object_id)

    @classmethod
    def from_views(
        cls,
        xy: np.ndarray,
        t: np.ndarray,
        object_id: str | None = None,
    ) -> "Trajectory":
        """Adopt pre-validated arrays **without copying** them.

        ``xy`` must be ``(n, 2)`` float64 and ``t`` ``(n,)`` float64,
        already sorted by timestamp and all-finite — exactly the invariant
        an existing trajectory's :attr:`xy` / :attr:`timestamps` satisfy.
        The arrays are adopted as-is (they may be views into a shared
        memory block — see :class:`repro.parallel.shm.SharedTrajectoryArena`),
        and the :class:`TrajectoryPoint` tuple is materialized lazily, so
        construction allocates nothing per point.

        This is a trusted fast path: it performs shape/dtype checks only.
        Data from untrusted sources belongs in :meth:`from_arrays`, which
        validates finiteness point by point.
        """
        xy = np.asarray(xy)
        t = np.asarray(t)
        if xy.ndim != 2 or xy.shape[1] != 2 or t.ndim != 1 or len(xy) != len(t):
            raise ValueError(
                f"from_views needs xy (n, 2) and t (n,), got {xy.shape} and {t.shape}"
            )
        if xy.dtype != np.float64 or t.dtype != np.float64:
            raise ValueError(
                f"from_views needs float64 arrays, got {xy.dtype} and {t.dtype}"
            )
        self = cls.__new__(cls)
        self._points_cache = None
        self._xy = xy
        self._t = t
        self.object_id = object_id
        return self

    # ------------------------------------------------------------------
    # Sequence protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._t)

    def __iter__(self) -> Iterator[TrajectoryPoint]:
        return iter(self._points)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return Trajectory(self._points[index], object_id=self.object_id)
        return self._points[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Trajectory):
            return NotImplemented
        return self._points == other._points

    def __hash__(self) -> int:
        return hash(self._points)

    def __repr__(self) -> str:
        oid = f" id={self.object_id!r}" if self.object_id is not None else ""
        span = f" span=[{self.start_time:.1f}, {self.end_time:.1f}]" if len(self._t) else ""
        return f"<Trajectory n={len(self)}{oid}{span}>"

    # ------------------------------------------------------------------
    # Array views
    # ------------------------------------------------------------------
    @property
    def xy(self) -> np.ndarray:
        """``(n, 2)`` array of locations (read-only view)."""
        view = self._xy.view()
        view.flags.writeable = False
        return view

    @property
    def timestamps(self) -> np.ndarray:
        """``(n,)`` array of timestamps (read-only view)."""
        view = self._t.view()
        view.flags.writeable = False
        return view

    @property
    def points(self) -> tuple[TrajectoryPoint, ...]:
        """The observations as an immutable tuple."""
        return self._points

    # ------------------------------------------------------------------
    # Temporal queries
    # ------------------------------------------------------------------
    @property
    def start_time(self) -> float:
        """Timestamp of the first observation."""
        self._require_nonempty()
        return float(self._t[0])

    @property
    def end_time(self) -> float:
        """Timestamp of the last observation."""
        self._require_nonempty()
        return float(self._t[-1])

    @property
    def duration(self) -> float:
        """Observed time span ``t_n - t_1`` in seconds."""
        return self.end_time - self.start_time

    def covers_time(self, t: float) -> bool:
        """Whether ``t`` falls within ``[t_1, t_n]``."""
        return len(self._t) > 0 and self.start_time <= t <= self.end_time

    def index_of_time(self, t: float) -> int | None:
        """Index of the observation taken exactly at ``t``, or ``None``."""
        idx = int(np.searchsorted(self._t, t))
        if idx < len(self._t) and self._t[idx] == t:
            return idx
        return None

    def bracketing_indices(self, t: float) -> tuple[int, int] | None:
        """Indices ``(i, i+1)`` of the observations surrounding time ``t``.

        Returns ``None`` when ``t`` is outside the trajectory span or
        coincides with an observation (use :meth:`index_of_time` for that
        case).  This is the lookup Eq. 4 of the paper needs: the observed
        positions at ``t_i < t < t_{i+1}``.
        """
        if not self.covers_time(t) or self.index_of_time(t) is not None:
            return None
        hi = int(np.searchsorted(self._t, t))
        return hi - 1, hi

    # ------------------------------------------------------------------
    # Geometric / kinematic summaries
    # ------------------------------------------------------------------
    def length(self) -> float:
        """Total polyline length in meters."""
        if len(self) < 2:
            return 0.0
        seg = np.diff(self._xy, axis=0)
        return float(np.hypot(seg[:, 0], seg[:, 1]).sum())

    def speeds(self) -> np.ndarray:
        """Speeds (m/s) between consecutive observations.

        Pairs of observations that share a timestamp are skipped — they
        carry no speed information — so the result may be shorter than
        ``len(self) - 1``.  This is the sample set ``S`` of Eq. 6.
        """
        if len(self) < 2:
            return np.empty(0)
        seg = np.diff(self._xy, axis=0)
        dist = np.hypot(seg[:, 0], seg[:, 1])
        dt = np.diff(self._t)
        valid = dt > 0
        return dist[valid] / dt[valid]

    def bounding_box(self) -> tuple[float, float, float, float]:
        """``(min_x, min_y, max_x, max_y)`` of the observations."""
        self._require_nonempty()
        mn = self._xy.min(axis=0)
        mx = self._xy.max(axis=0)
        return (float(mn[0]), float(mn[1]), float(mx[0]), float(mx[1]))

    # ------------------------------------------------------------------
    # Transformations (all return new trajectories)
    # ------------------------------------------------------------------
    def shifted(self, dx: float = 0.0, dy: float = 0.0, dt: float = 0.0) -> "Trajectory":
        """Translate every observation in space and/or time."""
        return Trajectory(
            (TrajectoryPoint(p.x + dx, p.y + dy, p.t + dt) for p in self._points),
            object_id=self.object_id,
        )

    def with_object_id(self, object_id: str | None) -> "Trajectory":
        """Copy of this trajectory carrying a different object id."""
        return Trajectory(self._points, object_id=object_id)

    def subsample(self, indices: Sequence[int]) -> "Trajectory":
        """Trajectory restricted to the observations at ``indices``."""
        return Trajectory((self._points[i] for i in indices), object_id=self.object_id)

    def interpolate_at(self, t: float) -> tuple[float, float]:
        """Linearly-interpolated location at time ``t``.

        Used by baselines (EDwP projections, Kalman resampling) — the STS
        core never assumes linear motion.  ``t`` must lie within the span.
        """
        if not self.covers_time(t):
            raise ValueError(f"time {t} outside trajectory span [{self.start_time}, {self.end_time}]")
        idx = self.index_of_time(t)
        if idx is not None:
            p = self._points[idx]
            return (p.x, p.y)
        lo, hi = self.bracketing_indices(t)  # type: ignore[misc]
        p0, p1 = self._points[lo], self._points[hi]
        w = (t - p0.t) / (p1.t - p0.t)
        return (p0.x + w * (p1.x - p0.x), p0.y + w * (p1.y - p0.y))

    # ------------------------------------------------------------------
    def _require_nonempty(self) -> None:
        if not len(self._t):
            raise DegenerateTrajectoryError("operation requires a non-empty trajectory")


@dataclass(slots=True)
class Path:
    """Continuous ground-truth movement (Definition 1 of the paper).

    Stored as a dense piecewise-linear curve with fine-grained vertices, so
    ``locate(t)`` approximates the continuous function ``f: T -> L``.  The
    simulators emit :class:`Path` objects; :mod:`repro.simulation.sampling`
    turns them into noisy, sporadically-sampled :class:`Trajectory` objects.
    """

    xy: np.ndarray
    t: np.ndarray
    object_id: str | None = None
    _order_checked: bool = field(default=False, repr=False)

    def __post_init__(self) -> None:
        self.xy = np.asarray(self.xy, dtype=float).reshape(-1, 2)
        self.t = np.asarray(self.t, dtype=float).reshape(-1)
        if len(self.xy) != len(self.t):
            raise ValueError("xy and t must have equal length")
        if len(self.t) and np.any(np.diff(self.t) < 0):
            raise ValueError("path timestamps must be non-decreasing")

    def __len__(self) -> int:
        return len(self.t)

    @property
    def start_time(self) -> float:
        return float(self.t[0])

    @property
    def end_time(self) -> float:
        return float(self.t[-1])

    def locate(self, when: float) -> tuple[float, float]:
        """Ground-truth location at time ``when`` (linear between vertices)."""
        if when < self.start_time or when > self.end_time:
            raise ValueError(f"time {when} outside path span [{self.start_time}, {self.end_time}]")
        x = float(np.interp(when, self.t, self.xy[:, 0]))
        y = float(np.interp(when, self.t, self.xy[:, 1]))
        return (x, y)

    def sample(self, times: Sequence[float], object_id: str | None = None) -> Trajectory:
        """Noise-free trajectory sampled from this path at ``times``."""
        pts = [TrajectoryPoint(*self.locate(float(w)), float(w)) for w in times]
        return Trajectory(pts, object_id=object_id if object_id is not None else self.object_id)
