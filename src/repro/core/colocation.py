"""Co-location probability (Section V-A, Eq. 8–9, Algorithm 1).

The co-location probability of two objects at time ``t`` is the probability
that both are in the same grid cell at ``t``:

    CP(t | Tra₁, Tra₂) = Σ_{r ∈ R} STP(r, t, Tra₁) · STP(r, t, Tra₂)

i.e. the inner product of the two (normalized) spatial-temporal probability
vectors.  Algorithm 1 of the paper distinguishes three cases — ``t``
observed in both trajectories, in one, or implicitly in neither — but all
three reduce to "normalize both STP distributions and take their inner
product", which is exactly what :class:`TrajectorySTP` already hands us.
"""

from __future__ import annotations

import numpy as np

from .stprob import SparseDistribution, TrajectorySTP

__all__ = ["sparse_inner", "colocation_probability", "colocation_series"]


def sparse_inner(a: SparseDistribution, b: SparseDistribution) -> float:
    """Inner product of two sparse cell distributions.

    Both inputs are ``(cells, probs)`` pairs with sorted cell indices; the
    product is summed over the intersection of the supports.  An empty
    distribution (object outside its observed time span) yields 0.
    """
    cells_a, probs_a = a
    cells_b, probs_b = b
    if cells_a.size == 0 or cells_b.size == 0:
        return 0.0
    common, idx_a, idx_b = np.intersect1d(cells_a, cells_b, assume_unique=True, return_indices=True)
    if common.size == 0:
        return 0.0
    return float(np.dot(probs_a[idx_a], probs_b[idx_b]))


def colocation_probability(stp_a: TrajectorySTP, stp_b: TrajectorySTP, t: float) -> float:
    """Eq. 9: co-location probability of two trajectories at time ``t``.

    The value lies in ``[0, 1]``: both STP vectors are probability
    distributions over the same grid, so their inner product is at most 1
    (reached only when both are the same point mass).
    """
    return sparse_inner(stp_a.stp(t), stp_b.stp(t))


def colocation_series(
    stp_a: TrajectorySTP, stp_b: TrajectorySTP, times: np.ndarray
) -> np.ndarray:
    """Co-location probabilities at each of ``times``."""
    return np.array([colocation_probability(stp_a, stp_b, float(t)) for t in np.asarray(times)])
