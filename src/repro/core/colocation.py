"""Co-location probability (Section V-A, Eq. 8–9, Algorithm 1).

The co-location probability of two objects at time ``t`` is the probability
that both are in the same grid cell at ``t``:

    CP(t | Tra₁, Tra₂) = Σ_{r ∈ R} STP(r, t, Tra₁) · STP(r, t, Tra₂)

i.e. the inner product of the two (normalized) spatial-temporal probability
vectors.  Algorithm 1 of the paper distinguishes three cases — ``t``
observed in both trajectories, in one, or implicitly in neither — but all
three reduce to "normalize both STP distributions and take their inner
product", which is exactly what :class:`TrajectorySTP` already hands us.

:func:`colocation_batch` is the vectorized entry point: it resolves both
objects' distributions for *all* query times in one
:meth:`~repro.core.stprob.TrajectorySTP.stp_batch` call each (amortizing
per-segment kernel and FFT work) and then takes the sparse inner products
with a sorted-merge — no per-time ``np.intersect1d`` sort.
"""

from __future__ import annotations

from time import perf_counter

import numpy as np

from .stprob import SparseDistribution, TrajectorySTP

__all__ = [
    "sparse_inner",
    "colocation_probability",
    "colocation_batch",
    "colocation_series",
]


def sparse_inner(a: SparseDistribution, b: SparseDistribution) -> float:
    """Inner product of two sparse cell distributions.

    Both inputs are ``(cells, probs)`` pairs with sorted cell indices; the
    product is summed over the intersection of the supports, found by
    binary-searching the smaller support into the larger one (cheaper than
    ``np.intersect1d``, which re-sorts the concatenation).  An empty
    distribution (object outside its observed time span) yields 0.
    """
    cells_a, probs_a = a
    cells_b, probs_b = b
    if cells_a.size == 0 or cells_b.size == 0:
        return 0.0
    if cells_b.size > cells_a.size:
        cells_a, probs_a, cells_b, probs_b = cells_b, probs_b, cells_a, probs_a
    pos = np.searchsorted(cells_a, cells_b)
    pos[pos == cells_a.size] = 0  # out-of-range probes can never match
    mask = cells_a[pos] == cells_b
    if not mask.any():
        return 0.0
    return float(np.dot(probs_a[pos[mask]], probs_b[mask]))


def colocation_probability(stp_a: TrajectorySTP, stp_b: TrajectorySTP, t: float) -> float:
    """Eq. 9: co-location probability of two trajectories at time ``t``.

    The value lies in ``[0, 1]``: both STP vectors are probability
    distributions over the same grid, so their inner product is at most 1
    (reached only when both are the same point mass).
    """
    return sparse_inner(stp_a.stp(t), stp_b.stp(t))


def colocation_batch(
    stp_a: TrajectorySTP, stp_b: TrajectorySTP, times: np.ndarray
) -> np.ndarray:
    """Eq. 9 at each of ``times``, resolved through the batched STP path.

    Equivalent to ``[colocation_probability(stp_a, stp_b, t) for t in
    times]`` but each object's distributions are computed with one
    :meth:`~repro.core.stprob.TrajectorySTP.stp_batch` call, grouping query
    times by bracketing segment.
    """
    times_arr = np.asarray(times, dtype=float).ravel()
    if times_arr.size == 0:
        return np.empty(0)
    t0 = perf_counter()
    dists_a = stp_a.stp_batch(times_arr)
    dists_b = stp_b.stp_batch(times_arr)
    t1 = perf_counter()
    result = np.array([sparse_inner(a, b) for a, b in zip(dists_a, dists_b)])
    # Stage handles are prebound on the estimator (see TrajectorySTP._init_obs).
    stp_a._t_coloc_resolve.inc(t1 - t0)
    stp_a._t_coloc_inner.inc(perf_counter() - t1)
    return result


def colocation_series(
    stp_a: TrajectorySTP, stp_b: TrajectorySTP, times: np.ndarray
) -> np.ndarray:
    """Co-location probabilities at each of ``times``."""
    return colocation_batch(stp_a, stp_b, np.asarray(times))
