"""Spatial-temporal probability estimation (Section IV, Eq. 4–5).

Given a trajectory, its noise model and its transition model,
:class:`TrajectorySTP` answers: *where was this object at time t, as a
probability distribution over grid cells?*  Following Eq. 5:

* at an observation time, the answer is the (normalized) location-noise
  distribution of that observation;
* strictly between two observations, it is the Markov-bridge interpolation
  of Eq. 4 — forward transition weights from the earlier observation times
  backward weights into the later one, renormalized;
* outside the trajectory's time span, it is zero everywhere.

Four evaluation modes:

* ``"dense"`` — Eq. 4 over every grid cell pair, exactly as written
  (``O(|R|²)`` per query); the reference implementation.
* ``"pruned"`` — restricts the computation to cells both reachable from
  the earlier observation and able to reach the later one within the
  object's plausible speed range (plus the noise supports); the discarded
  cells carry negligible probability.
* ``"fft"`` — for *isotropic* transition models (STS proper: the weight
  depends only on distance), the forward and backward sums of Eq. 4 are
  2-D convolutions of the noise distribution with a radial kernel over the
  grid lattice, evaluated with FFT convolution.  Exact at lattice level
  (agrees with ``"dense"`` to FFT round-off) and much faster on large
  grids.
* ``"auto"`` (default) — ``"fft"`` when the transition model is isotropic,
  else ``"pruned"``.

The test suite verifies all modes agree to tight tolerance.

Batched evaluation
------------------
:meth:`TrajectorySTP.stp_batch` evaluates many query times in one call.
Queries are grouped by the pair of observations bracketing them, and each
group is evaluated in a single vectorized pass:

* FFT mode embeds every transition kernel onto one fixed per-estimator
  canvas (sized for the trajectory's largest observation gap), so each
  noise plane's forward FFT is computed once and reused by a *stack* of
  kernel transforms (one batched ``rfft2``/``irfft2`` round-trip per
  group);
* pruned/dense mode builds the candidate set union and both distance
  matrices once per segment and slices them per query.

Both single-query paths delegate to the same batched cores, so ``stp(t)``
and ``stp_batch([.., t, ..])`` return identical results.  Kernels, noise
planes and their transforms are memoized in bounded LRU caches (see
``cache_size``), so long-lived estimators serving many queries stay fast
without growing memory unboundedly.
"""

from __future__ import annotations

from time import perf_counter

import numpy as np
from scipy import fft as _fft

from ..errors import DegenerateTrajectoryError
from ..obs import get_registry
from .cache import LRUCache
from .grid import Grid
from .noise import NoiseModel
from .transition import TransitionModel
from .trajectory import Trajectory

__all__ = ["TrajectorySTP", "SparseDistribution"]

# A sparse distribution over grid cells: sorted cell indices and their
# probabilities (summing to 1), or a pair of empty arrays meaning
# "zero everywhere" (Eq. 5 case 3).
SparseDistribution = tuple[np.ndarray, np.ndarray]

_EMPTY: SparseDistribution = (np.empty(0, dtype=int), np.empty(0))

#: Normalized probabilities below this are dropped from sparse results.
_SPARSE_EPS = 1e-15


def _dt_key(dt: float) -> float:
    """Cache key for a time gap: quantized to kill float jitter.

    1e-12 s is far below any meaningful timestamp resolution, so distinct
    physical gaps never collide, while gaps that differ only by float
    round-off (``t - t_lo`` computed along different code paths) share one
    kernel.
    """
    return round(dt, 12)


class TrajectorySTP:
    """Spatial-temporal probability of one object given its trajectory.

    Parameters
    ----------
    trajectory:
        The object's observations.  Must be non-empty.
    grid:
        Spatial partition ``R``.
    noise_model:
        Location-noise distribution ``f`` of the sensing system.
    transition_model:
        Transition scorer; for STS proper this is a
        :class:`~repro.core.transition.SpeedTransitionModel` built from the
        trajectory's *own* speed samples (personalized).
    mode:
        ``"auto"`` (default), ``"fft"``, ``"pruned"`` or ``"dense"`` — see
        the module docstring.
    cache_size:
        Capacity of the per-query result cache; the kernel, noise-plane and
        FFT caches are sized proportionally.  ``None`` means unbounded,
        ``0`` disables all memoization (every query recomputes from
        scratch — useful for benchmarking the cold path).
    registry:
        Metrics registry receiving stage timings, FFT canvas-reuse
        counters and (at snapshot time) cache statistics.  Defaults to
        the process-wide registry; a no-op registry when ``REPRO_OBS=off``.
    cache_collector:
        When ``True`` (default) the estimator registers its own
        snapshot-time cache collector.  An owning :class:`~.sts.STS`
        passes ``False`` and sums cache counters across its whole
        estimator pool in one collector instead, keeping registry
        snapshots O(caches) rather than O(estimators × caches).
    """

    _MODES = ("auto", "fft", "pruned", "dense")

    def __init__(
        self,
        trajectory: Trajectory,
        grid: Grid,
        noise_model: NoiseModel,
        transition_model: TransitionModel,
        mode: str = "auto",
        cache_size: int | None = 4096,
        registry=None,
        cache_collector: bool = True,
    ):
        if len(trajectory) == 0:
            raise DegenerateTrajectoryError(
                "cannot estimate S-T probability for an empty trajectory"
            )
        if mode not in self._MODES:
            raise ValueError(f"mode must be one of {self._MODES}, got {mode!r}")
        if mode == "fft" and not transition_model.isotropic:
            raise ValueError(
                "mode='fft' requires an isotropic transition model; "
                f"{type(transition_model).__name__} is not"
            )
        self.trajectory = trajectory
        self.grid = grid
        self.noise_model = noise_model
        self.transition_model = transition_model
        self.mode = mode
        if mode == "auto":
            self._resolved_mode = "fft" if transition_model.isotropic else "pruned"
        else:
            self._resolved_mode = mode
        # An owning STS passes cache_collector=False and publishes one
        # aggregated cache collector for its whole estimator pool; a
        # standalone estimator keeps its own (the plain-int attribute
        # survives pickling, so rebinds honour the choice).
        self._cache_collector = bool(cache_collector)
        self._init_obs(registry)
        # Per-observation noise distributions, precomputed once: these are
        # the f(·, ℓ_i) terms every Eq. 4 evaluation reuses.
        t0 = perf_counter()
        self._observed: list[SparseDistribution] = [
            noise_model.cell_distribution(grid, p.x, p.y) for p in trajectory
        ]
        self._t_noise.inc(perf_counter() - t0)
        self.cache_size = cache_size
        scaled = (lambda frac, floor: None) if cache_size is None else (
            lambda frac, floor: 0 if cache_size == 0 else max(floor, cache_size // frac)
        )
        self._cache = LRUCache(cache_size)  # query time -> SparseDistribution
        self._kernel_cache = LRUCache(scaled(8, 64))  # (dt, span) -> kernel
        self._plane_cache = LRUCache(scaled(16, 16))  # obs index -> dense plane
        self._plane_fft_cache = LRUCache(scaled(16, 16))  # (idx, shape) -> rfft2
        self._segment_cache = LRUCache(scaled(16, 16))  # dense-mode geometry

    # ------------------------------------------------------------------
    def _init_obs(self, registry=None) -> None:
        """Bind metric handles once; hot paths then pay one dict-add each.

        ``bridge-interp`` is the inclusive wall time of segment
        interpolation (Eq. 4); ``kernel-fft`` and ``normalize`` are
        components within it on the FFT path.
        """
        reg = registry if registry is not None else get_registry()
        self._registry = reg
        stage = reg.counter(
            "repro_stage_seconds_total", "Wall seconds spent per pipeline stage"
        )
        self._t_noise = stage.child(component="stp", stage="noise-eval")
        self._t_bridge = stage.child(component="stp", stage="bridge-interp")
        self._t_kernel = stage.child(component="stp", stage="kernel-fft")
        self._t_norm = stage.child(component="stp", stage="normalize")
        # Bound here so colocation_batch pays no per-call instrument lookup.
        self._t_coloc_resolve = stage.child(component="colocation", stage="stp-resolve")
        self._t_coloc_inner = stage.child(component="colocation", stage="inner-product")
        self._m_plane_transforms = reg.counter(
            "repro_fft_plane_transforms_total", "Noise-plane forward FFTs computed"
        ).child()
        self._m_canvas_reuse = reg.counter(
            "repro_fft_canvas_reuse_total",
            "Noise-plane FFTs served from the fixed-canvas cache",
        ).child()
        if getattr(self, "_cache_collector", True):
            reg.register_collector(self._collect_cache_samples)

    def _named_caches(self) -> tuple[tuple[str, LRUCache], ...]:
        return (
            ("stp-results", self._cache),
            ("stp-kernels", self._kernel_cache),
            ("stp-planes", self._plane_cache),
            ("stp-plane-ffts", self._plane_fft_cache),
            ("stp-segments", self._segment_cache),
        )

    def _collect_cache_samples(self):
        """Snapshot-time cache samples; summed across live estimators."""
        samples = []
        for name, cache in self._named_caches():
            stats = cache.stats()
            labels = {"cache": name}
            samples.append(("counter", "repro_cache_hits_total", labels, stats["hits"]))
            samples.append(("counter", "repro_cache_misses_total", labels, stats["misses"]))
            samples.append(
                ("counter", "repro_cache_evictions_total", labels, stats["evictions"])
            )
            samples.append(("gauge", "repro_cache_entries", labels, stats["size"]))
            if stats["max"] is not None:
                samples.append(("gauge", "repro_cache_capacity", labels, stats["max"]))
        return samples

    def stp(self, t: float) -> SparseDistribution:
        """Eq. 5: sparse distribution ``STP(·, t, Tra)`` over grid cells.

        Returns ``(cells, probs)`` with ``probs`` summing to 1, or two empty
        arrays when ``t`` lies outside the trajectory's time span.
        """
        t = float(t)
        cached = self._cache.get(t)
        if cached is not None:
            return cached
        result = self._compute(t)
        self._cache.put(t, result)
        return result

    def stp_batch(self, times) -> list[SparseDistribution]:
        """Eq. 5 at many query times in one vectorized pass.

        ``times`` is any 1-D sequence of timestamps (duplicates allowed).
        Returns one :data:`SparseDistribution` per input time, in input
        order, identical to calling :meth:`stp` per time — but queries that
        share a bracketing segment are evaluated together, reusing one
        kernel canvas / candidate union per segment (see module docstring).
        """
        times_arr = np.asarray(times, dtype=float).ravel()
        results: list[SparseDistribution | None] = [None] * len(times_arr)
        by_segment: dict[int, list[int]] = {}
        traj = self.trajectory
        for i, raw in enumerate(times_arr):
            t = float(raw)
            cached = self._cache.get(t)
            if cached is not None:
                results[i] = cached
                continue
            if not traj.covers_time(t):
                results[i] = _EMPTY
                continue
            idx = traj.index_of_time(t)
            if idx is not None:
                results[i] = self._observed[idx]
                continue
            lo, _hi = traj.bracketing_indices(t)  # type: ignore[misc]
            by_segment.setdefault(lo, []).append(i)
        for lo, positions in by_segment.items():
            ts = times_arr[positions]
            uniq, inverse = np.unique(ts, return_inverse=True)
            computed = self._segment_batch(lo, lo + 1, uniq)
            for j, pos in enumerate(positions):
                result = computed[inverse[j]]
                results[pos] = result
                self._cache.put(float(ts[j]), result)
        return results  # type: ignore[return-value]

    def stp_dense(self, t: float) -> np.ndarray:
        """Eq. 5 as a dense ``|R|``-vector (zeros outside the span)."""
        cells, probs = self.stp(t)
        dense = np.zeros(self.grid.n_cells)
        dense[cells] = probs
        return dense

    def credible_cells(self, t: float, mass: float = 0.9) -> np.ndarray:
        """Smallest set of cells holding at least ``mass`` probability at ``t``.

        The highest-probability cells are accumulated until the requested
        mass is covered — the discrete credible region of the object's
        position, useful for geofencing ("was the object plausibly inside
        this area at time t?") and for visualizing uncertainty.  Returns
        sorted cell indices; empty when ``t`` is outside the time span.
        """
        if not 0.0 < mass <= 1.0:
            raise ValueError(f"mass must be in (0, 1], got {mass}")
        cells, probs = self.stp(t)
        if cells.size == 0:
            return cells
        order = np.argsort(-probs, kind="stable")
        covered = np.cumsum(probs[order])
        # number of cells needed to reach the mass (at least one)
        needed = int(np.searchsorted(covered, mass - 1e-12)) + 1
        return np.sort(cells[order[:needed]])

    def cache_stats(self) -> dict[str, dict[str, int | None]]:
        """Per-cache ``{size, max, hits, misses, evictions}`` stats.

        Observability hook for long-lived estimators on the serving path:
        a memory-ceiling trip (``Budget.max_rss_mb``) says *that* the
        process grew, these counters say *where*.  The same numbers feed
        the registry's ``repro_cache_*`` metrics at snapshot time.  Pair
        with :meth:`clear_cache` to release the memoized state.
        """
        return {
            "results": self._cache.stats(),
            "kernels": self._kernel_cache.stats(),
            "planes": self._plane_cache.stats(),
            "plane_ffts": self._plane_fft_cache.stats(),
            "segments": self._segment_cache.stats(),
        }

    def clear_cache(self) -> None:
        """Drop memoized query results (the noise distributions stay)."""
        self._cache.clear()
        self._kernel_cache.clear()
        self._plane_cache.clear()
        self._plane_fft_cache.clear()
        self._segment_cache.clear()

    # ------------------------------------------------------------------
    def _compute(self, t: float) -> SparseDistribution:
        traj = self.trajectory
        if not traj.covers_time(t):
            return _EMPTY
        idx = traj.index_of_time(t)
        if idx is not None:
            return self._observed[idx]
        lo, hi = traj.bracketing_indices(t)  # type: ignore[misc]
        return self._segment_batch(lo, hi, np.array([t]))[0]

    def _segment_batch(self, lo: int, hi: int, ts: np.ndarray) -> list[SparseDistribution]:
        """All interpolation queries of one segment, in one pass."""
        t0 = perf_counter()
        try:
            if self._resolved_mode == "fft":
                return self._interpolate_fft_batch(lo, hi, ts)
            return self._interpolate_pairwise_batch(lo, hi, ts)
        finally:
            self._t_bridge.inc(perf_counter() - t0)

    # ------------------------------------------------------------------
    # Pairwise evaluation (pruned / dense)
    # ------------------------------------------------------------------
    def _interpolate_pairwise_batch(
        self, lo: int, hi: int, ts: np.ndarray
    ) -> list[SparseDistribution]:
        """Eq. 4 by explicit summation over candidate cells.

        The candidate union and (for isotropic models) both distance
        matrices are built once for the whole segment; each query then only
        evaluates the transition kernel on its slice.
        """
        traj = self.trajectory
        p_lo, p_hi = traj[lo], traj[hi]
        dts1 = ts - p_lo.t
        dts2 = p_hi.t - ts
        candidate_sets = [
            self._candidate_cells(p_lo, p_hi, float(d1), float(d2))
            for d1, d2 in zip(dts1, dts2)
        ]
        if len(candidate_sets) == 1:
            union = candidate_sets[0]
        else:
            union = np.unique(np.concatenate(candidate_sets))
        centers = self.grid.centers()
        centers_union = centers[union]
        cells_lo, probs_lo = self._observed[lo]
        cells_hi, probs_hi = self._observed[hi]
        src_lo = centers[cells_lo]
        src_hi = centers[cells_hi]
        model = self.transition_model
        isotropic = model.isotropic
        if isotropic:
            dist_lo, dist_hi = self._segment_distances(
                lo, src_lo, src_hi, union, centers_union
            )
        results: list[SparseDistribution] = []
        for i, candidates in enumerate(candidate_sets):
            dt1, dt2 = float(dts1[i]), float(dts2[i])
            full = candidates.size == union.size
            # forward(r)  = Σ_j f(r_j, ℓ_i)     · P(r, t | r_j, t_i)
            # backward(r) = Σ_k f(r_k, ℓ_{i+1}) · P(r_k, t_{i+1} | r, t)
            if isotropic:
                sel = slice(None) if full else np.searchsorted(union, candidates)
                forward = probs_lo @ model.distance_weights(dist_lo[:, sel], dt1)
                backward = model.distance_weights(dist_hi[sel, :], dt2) @ probs_hi
            else:
                dst = centers_union if full else centers[candidates]
                forward = probs_lo @ model.weights(src_lo, dst, dt1)
                backward = model.weights(dst, src_hi, dt2) @ probs_hi
            unnorm = forward * backward
            total = float(unnorm.sum())
            if total <= 0.0 or not np.isfinite(total):
                results.append(self._fallback(float(ts[i]), p_lo, p_hi))
            else:
                results.append(self._sparsify(candidates, unnorm / total))
        return results

    def _segment_distances(
        self,
        lo: int,
        src_lo: np.ndarray,
        src_hi: np.ndarray,
        union: np.ndarray,
        centers_union: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Distance matrices from both noise supports to the candidate union.

        In dense mode the union is always the full grid, so the matrices
        are memoized per segment; pruned unions vary per batch and are
        rebuilt (still once per segment *per call*, not per query).
        """

        def build() -> tuple[np.ndarray, np.ndarray]:
            diff_lo = src_lo[:, None, :] - centers_union[None, :, :]
            dist_lo = np.hypot(diff_lo[..., 0], diff_lo[..., 1])
            diff_hi = centers_union[:, None, :] - src_hi[None, :, :]
            dist_hi = np.hypot(diff_hi[..., 0], diff_hi[..., 1])
            return dist_lo, dist_hi

        if self._resolved_mode == "dense":
            return self._segment_cache.get_or_compute(("dense-dist", lo), build)
        return build()

    def _candidate_cells(self, p_lo, p_hi, dt1: float, dt2: float) -> np.ndarray:
        """Cells where Eq. 4 can be non-negligible (pruned mode).

        Cells reachable from the earlier observation within ``dt1`` *and*
        able to reach the later one within ``dt2`` (each radius widened by
        the noise support).  Falls back to the union, then to the merged
        noise supports, so the candidate set is never empty.
        """
        if self._resolved_mode == "dense":
            return np.arange(self.grid.n_cells)
        pad = self.noise_model.support_radius(self.grid) + self.grid.cell_size
        r1 = self.transition_model.reachable_radius(dt1) + pad
        r2 = self.transition_model.reachable_radius(dt2) + pad
        if not (np.isfinite(r1) and np.isfinite(r2)):
            return np.arange(self.grid.n_cells)
        from_lo = self.grid.cells_within(p_lo.x, p_lo.y, r1)
        from_hi = self.grid.cells_within(p_hi.x, p_hi.y, r2)
        both = np.intersect1d(from_lo, from_hi, assume_unique=True)
        if both.size:
            return both
        either = np.union1d(from_lo, from_hi)
        if either.size:
            return either
        supports = [cells for cells, _ in self._observed]
        return np.unique(np.concatenate(supports))

    # ------------------------------------------------------------------
    # FFT-convolution evaluation (isotropic transition models)
    # ------------------------------------------------------------------
    def _interpolate_fft_batch(
        self, lo: int, hi: int, ts: np.ndarray
    ) -> list[SparseDistribution]:
        """Eq. 4 via 2-D convolution over the grid lattice.

        With an isotropic transition model, ``forward = f_lo ⊛ K_{dt1}``
        and ``backward = f_hi ⊛ K_{dt2}`` where ``K_dt`` is the radial
        kernel of transition weights between cell offsets.  Equivalent to
        the dense mode up to FFT round-off.

        Kernel canvases are *bucketed*: each query's kernel is drawn on the
        smallest canvas from a geometric size series covering its own
        transition radius, so kernels are cheap to build and cacheable,
        while each query's canvas depends only on its own ``dt`` — which
        keeps single-query and batched evaluation bitwise identical.  All
        kernels of a batch are then embedded on the estimator's fixed
        convolution canvas and transformed as one stack (see
        :meth:`_convolved_planes`).
        """
        traj = self.trajectory
        p_lo, p_hi = traj[lo], traj[hi]
        dts1 = ts - p_lo.t
        dts2 = p_hi.t - ts
        t0 = perf_counter()
        forward = self._convolved_planes(lo, dts1)
        backward = self._convolved_planes(hi, dts2)
        t1 = perf_counter()
        self._t_kernel.inc(t1 - t0)
        results: list[SparseDistribution] = []
        for i in range(len(ts)):
            unnorm = (forward[i] * backward[i]).ravel()
            np.clip(unnorm, 0.0, None, out=unnorm)
            total = float(unnorm.sum())
            if total <= 0.0 or not np.isfinite(total):
                results.append(self._fallback(float(ts[i]), p_lo, p_hi))
                continue
            probs = unnorm / total
            cells = np.nonzero(probs > _SPARSE_EPS)[0]
            if cells.size == 0:
                results.append(self._fallback(float(ts[i]), p_lo, p_hi))
                continue
            kept = probs[cells]
            results.append((cells, kept / kept.sum()))
        self._t_norm.inc(perf_counter() - t1)
        return results

    def _convolved_planes(self, index: int, dts: np.ndarray) -> np.ndarray:
        """Noise plane ``index`` convolved with the kernel of each ``dt``.

        Returns a ``(len(dts), n_rows, n_cols)`` stack (the "same"-mode
        convolution window).  Queries are grouped by kernel-canvas bucket;
        each group multiplies the cached plane FFT by one stacked kernel
        transform.

        Every kernel is embedded (centered) on one fixed per-estimator
        canvas sized for the trajectory's *largest* inter-observation gap —
        the largest ``dt`` any in-segment query can present — so a *single*
        circular transform shape serves every query: each noise plane's
        forward FFT is computed exactly once per estimator, and a whole
        batch becomes one stacked ``rfft2``/``irfft2`` round-trip.

        The circular transforms are sized ``n + half`` per axis, not the
        full linear-convolution length ``n + 2·half``: the full convolution
        of an ``n``-point plane with a ``2·half + 1`` kernel has support
        ``[0, n + 2·half)``, and the "same" window we keep is
        ``[half, half + n)``.  With circular size ``M ≥ n + half``, the
        aliases of any kept index ``k`` land at ``k ± M`` — below 0 or at
        least ``n + 2·half`` — i.e. outside the support, so the window is
        alias-free while the transforms stay at ~``2n`` instead of ~``3n``
        per axis.
        """
        grid = self.grid
        n_rows, n_cols = grid.n_rows, grid.n_cols
        model = self.transition_model
        cell = grid.cell_size
        radii = np.array([model.reachable_radius(float(d)) for d in dts])
        spans = np.ceil(radii / cell).astype(np.int64) + 1
        series = self._span_buckets()
        buckets = series[np.minimum(np.searchsorted(series, spans), series.size - 1)]
        rows_halves = np.minimum(n_rows - 1, buckets)
        cols_halves = np.minimum(n_cols - 1, buckets)
        half_r, half_c, fft_shape = self._fft_geometry()
        plane_fft = self._plane_fft(index, fft_shape)
        stack = np.zeros((len(dts), 2 * half_r + 1, 2 * half_c + 1))
        for i in range(len(dts)):
            h_r, h_c = int(rows_halves[i]), int(cols_halves[i])
            kernel = self._radial_kernel(float(dts[i]), h_r, h_c)
            stack[i, half_r - h_r : half_r + h_r + 1, half_c - h_c : half_c + h_c + 1] = kernel
        conv = _fft.irfft2(_fft.rfft2(stack, s=fft_shape) * plane_fft, s=fft_shape)
        return conv[:, half_r : half_r + n_rows, half_c : half_c + n_cols]

    def _fft_geometry(self) -> tuple[int, int, tuple[int, int]]:
        """Fixed canvas half-extents and circular-transform shape.

        The canvas is sized for the transition radius of the trajectory's
        largest gap between consecutive observations — no in-segment query
        can have a larger ``dt``, so every kernel fits (clipped to the grid,
        like everything else, at worst).
        """
        geom = getattr(self, "_fft_geometry_cached", None)
        if geom is None:
            grid = self.grid
            gaps = np.diff(self.trajectory.timestamps)
            max_gap = float(gaps.max()) if gaps.size else 0.0
            radius = self.transition_model.reachable_radius(max_gap)
            span = int(np.ceil(radius / grid.cell_size)) + 1
            series = self._span_buckets()
            bucket = int(series[min(int(np.searchsorted(series, span)), series.size - 1)])
            half_r = min(grid.n_rows - 1, bucket)
            half_c = min(grid.n_cols - 1, bucket)
            geom = self._fft_geometry_cached = (
                half_r,
                half_c,
                (
                    _fft.next_fast_len(grid.n_rows + half_r, True),
                    _fft.next_fast_len(grid.n_cols + half_c, True),
                ),
            )
        return geom

    def _span_buckets(self) -> np.ndarray:
        """Ascending canvas-size bucket series covering the grid."""
        series = getattr(self, "_span_bucket_series", None)
        if series is None:
            top = max(self.grid.n_rows, self.grid.n_cols)
            vals = [1]
            while vals[-1] < top:
                vals.append(max(vals[-1] + 1, (vals[-1] * 3 + 1) // 2))
            series = self._span_bucket_series = np.array(vals, dtype=np.int64)
        return series

    def _kernel_span(self, radius: float) -> tuple[int, int]:
        """Half-extent (rows, cols) of the kernel canvas covering ``radius``.

        The natural half-extent is rounded up to a geometric bucket series
        (1, 2, 3, 5, 8, 12, ...) so that only a handful of distinct canvas
        shapes — and therefore cached plane FFTs — exist per grid.
        """
        grid = self.grid
        span = int(np.ceil(radius / grid.cell_size)) + 1
        series = self._span_buckets()
        bucket = int(series[min(int(np.searchsorted(series, span)), series.size - 1)])
        return min(grid.n_rows - 1, bucket), min(grid.n_cols - 1, bucket)

    def _dense_plane(self, index: int) -> np.ndarray:
        """Observation ``index``'s noise distribution as a 2-D grid plane."""

        def build() -> np.ndarray:
            cells, probs = self._observed[index]
            plane = np.zeros((self.grid.n_rows, self.grid.n_cols))
            plane[cells // self.grid.n_cols, cells % self.grid.n_cols] = probs
            return plane

        return self._plane_cache.get_or_compute(index, build)

    def _plane_fft(self, index: int, fft_shape: tuple[int, int]) -> np.ndarray:
        """Forward real FFT of observation ``index``'s noise plane."""
        cached = self._plane_fft_cache.get((index, fft_shape))
        if cached is not None:
            self._m_canvas_reuse.inc()
            return cached
        value = _fft.rfft2(self._dense_plane(index), s=fft_shape)
        self._plane_fft_cache.put((index, fft_shape), value)
        self._m_plane_transforms.inc()
        return value

    def _canvas_lattice(
        self, rows_half: int, cols_half: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Offset-distance lattice of a kernel canvas, with its unique values.

        Returns ``(dist, unique, inverse)``: the dense distance canvas, its
        sorted unique distances and the inverse mapping (``unique[inverse]``
        rebuilds ``dist.ravel()``).  The lattice depends only on the canvas
        shape, so it is cached across every ``dt`` sharing a bucket.
        """

        def build() -> tuple[np.ndarray, np.ndarray, np.ndarray]:
            dx = np.arange(-cols_half, cols_half + 1)
            dy = np.arange(-rows_half, rows_half + 1)
            dist = np.hypot(dx[None, :], dy[:, None]) * self.grid.cell_size
            unique, inverse = np.unique(dist.ravel(), return_inverse=True)
            return dist, unique, inverse

        return self._kernel_cache.get_or_compute(("lattice", rows_half, cols_half), build)

    def _radial_kernel(self, dt: float, rows_half: int, cols_half: int) -> np.ndarray:
        """Transition weights between cell offsets, as an odd-sized kernel.

        ``rows_half``/``cols_half`` fix the canvas (the segment-level
        full-gap extent), so kernels for every ``dt`` within a segment
        share one shape.  Memoized by quantized ``(dt, canvas)``.

        The canvas holds far fewer *distinct* distances than points (the
        lattice is 8-fold symmetric), so the transition model is evaluated
        on the unique distances and scattered back — but only when the
        unique set is large enough (> 64) to take the same vectorized path
        a full-canvas evaluation would, keeping results bitwise identical.
        """

        def build() -> np.ndarray:
            dist, unique, inverse = self._canvas_lattice(rows_half, cols_half)
            if unique.size > 64:
                weights = self.transition_model.distance_weights(unique, dt)
                return weights[inverse].reshape(dist.shape)
            return self.transition_model.distance_weights(dist, dt)

        return self._kernel_cache.get_or_compute(
            (_dt_key(dt), rows_half, cols_half), build
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _sparsify(cells: np.ndarray, probs: np.ndarray) -> SparseDistribution:
        """Drop negligible entries and renormalize."""
        keep = probs > _SPARSE_EPS
        if not keep.all():
            cells = cells[keep]
            probs = probs[keep]
            probs = probs / probs.sum()
        return cells, probs

    def _fallback(self, t: float, p_lo, p_hi) -> SparseDistribution:
        """Numerical-underflow fallback.

        When every candidate weight underflows (the object moved far faster
        than its speed model considers plausible — e.g. after heavy
        downsampling of a single long gap), Eq. 4 is 0/0.  We resolve it by
        placing the mass at the time-weighted linear interpolation between
        the two bracketing observations, the least-informative consistent
        answer.
        """
        span = p_hi.t - p_lo.t
        w = (t - p_lo.t) / span if span > 0 else 0.5
        x = p_lo.x + w * (p_hi.x - p_lo.x)
        y = p_lo.y + w * (p_hi.y - p_lo.y)
        cell = self.grid.cell_of(x, y)
        return np.array([cell], dtype=int), np.ones(1)

    # Metric handles hold locks, which do not pickle; an estimator
    # crossing a process boundary rebinds to the worker's own registry.
    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        for key in (
            "_registry", "_t_noise", "_t_bridge", "_t_kernel", "_t_norm",
            "_t_coloc_resolve", "_t_coloc_inner",
            "_m_plane_transforms", "_m_canvas_reuse",
        ):
            state.pop(key, None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._init_obs()

    def __repr__(self) -> str:
        return (
            f"<TrajectorySTP n={len(self.trajectory)} mode={self.mode!r} "
            f"grid={self.grid.n_cols}x{self.grid.n_rows}>"
        )
