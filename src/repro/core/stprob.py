"""Spatial-temporal probability estimation (Section IV, Eq. 4–5).

Given a trajectory, its noise model and its transition model,
:class:`TrajectorySTP` answers: *where was this object at time t, as a
probability distribution over grid cells?*  Following Eq. 5:

* at an observation time, the answer is the (normalized) location-noise
  distribution of that observation;
* strictly between two observations, it is the Markov-bridge interpolation
  of Eq. 4 — forward transition weights from the earlier observation times
  backward weights into the later one, renormalized;
* outside the trajectory's time span, it is zero everywhere.

Four evaluation modes:

* ``"dense"`` — Eq. 4 over every grid cell pair, exactly as written
  (``O(|R|²)`` per query); the reference implementation.
* ``"pruned"`` — restricts the computation to cells both reachable from
  the earlier observation and able to reach the later one within the
  object's plausible speed range (plus the noise supports); the discarded
  cells carry negligible probability.
* ``"fft"`` — for *isotropic* transition models (STS proper: the weight
  depends only on distance), the forward and backward sums of Eq. 4 are
  2-D convolutions of the noise distribution with a radial kernel over the
  grid lattice, evaluated with FFT convolution.  Exact at lattice level
  (agrees with ``"dense"`` to FFT round-off) and much faster on large
  grids.
* ``"auto"`` (default) — ``"fft"`` when the transition model is isotropic,
  else ``"pruned"``.

The test suite verifies all modes agree to tight tolerance.
"""

from __future__ import annotations

import numpy as np
from scipy import signal

from .grid import Grid
from .noise import NoiseModel
from .transition import TransitionModel
from .trajectory import Trajectory

__all__ = ["TrajectorySTP", "SparseDistribution"]

# A sparse distribution over grid cells: sorted cell indices and their
# probabilities (summing to 1), or a pair of empty arrays meaning
# "zero everywhere" (Eq. 5 case 3).
SparseDistribution = tuple[np.ndarray, np.ndarray]

_EMPTY: SparseDistribution = (np.empty(0, dtype=int), np.empty(0))

#: Normalized probabilities below this are dropped from sparse results.
_SPARSE_EPS = 1e-15


class TrajectorySTP:
    """Spatial-temporal probability of one object given its trajectory.

    Parameters
    ----------
    trajectory:
        The object's observations.  Must be non-empty.
    grid:
        Spatial partition ``R``.
    noise_model:
        Location-noise distribution ``f`` of the sensing system.
    transition_model:
        Transition scorer; for STS proper this is a
        :class:`~repro.core.transition.SpeedTransitionModel` built from the
        trajectory's *own* speed samples (personalized).
    mode:
        ``"auto"`` (default), ``"fft"``, ``"pruned"`` or ``"dense"`` — see
        the module docstring.
    """

    _MODES = ("auto", "fft", "pruned", "dense")

    def __init__(
        self,
        trajectory: Trajectory,
        grid: Grid,
        noise_model: NoiseModel,
        transition_model: TransitionModel,
        mode: str = "auto",
    ):
        if len(trajectory) == 0:
            raise ValueError("cannot estimate S-T probability for an empty trajectory")
        if mode not in self._MODES:
            raise ValueError(f"mode must be one of {self._MODES}, got {mode!r}")
        if mode == "fft" and not transition_model.isotropic:
            raise ValueError(
                "mode='fft' requires an isotropic transition model; "
                f"{type(transition_model).__name__} is not"
            )
        self.trajectory = trajectory
        self.grid = grid
        self.noise_model = noise_model
        self.transition_model = transition_model
        self.mode = mode
        if mode == "auto":
            self._resolved_mode = "fft" if transition_model.isotropic else "pruned"
        else:
            self._resolved_mode = mode
        # Per-observation noise distributions, precomputed once: these are
        # the f(·, ℓ_i) terms every Eq. 4 evaluation reuses.
        self._observed: list[SparseDistribution] = [
            noise_model.cell_distribution(grid, p.x, p.y) for p in trajectory
        ]
        self._cache: dict[float, SparseDistribution] = {}

    # ------------------------------------------------------------------
    def stp(self, t: float) -> SparseDistribution:
        """Eq. 5: sparse distribution ``STP(·, t, Tra)`` over grid cells.

        Returns ``(cells, probs)`` with ``probs`` summing to 1, or two empty
        arrays when ``t`` lies outside the trajectory's time span.
        """
        t = float(t)
        cached = self._cache.get(t)
        if cached is not None:
            return cached
        result = self._compute(t)
        self._cache[t] = result
        return result

    def stp_dense(self, t: float) -> np.ndarray:
        """Eq. 5 as a dense ``|R|``-vector (zeros outside the span)."""
        cells, probs = self.stp(t)
        dense = np.zeros(self.grid.n_cells)
        dense[cells] = probs
        return dense

    def credible_cells(self, t: float, mass: float = 0.9) -> np.ndarray:
        """Smallest set of cells holding at least ``mass`` probability at ``t``.

        The highest-probability cells are accumulated until the requested
        mass is covered — the discrete credible region of the object's
        position, useful for geofencing ("was the object plausibly inside
        this area at time t?") and for visualizing uncertainty.  Returns
        sorted cell indices; empty when ``t`` is outside the time span.
        """
        if not 0.0 < mass <= 1.0:
            raise ValueError(f"mass must be in (0, 1], got {mass}")
        cells, probs = self.stp(t)
        if cells.size == 0:
            return cells
        order = np.argsort(-probs, kind="stable")
        covered = np.cumsum(probs[order])
        # number of cells needed to reach the mass (at least one)
        needed = int(np.searchsorted(covered, mass - 1e-12)) + 1
        return np.sort(cells[order[:needed]])

    def clear_cache(self) -> None:
        """Drop memoized query results (the noise distributions stay)."""
        self._cache.clear()

    # ------------------------------------------------------------------
    def _compute(self, t: float) -> SparseDistribution:
        traj = self.trajectory
        if not traj.covers_time(t):
            return _EMPTY
        idx = traj.index_of_time(t)
        if idx is not None:
            return self._observed[idx]
        lo, hi = traj.bracketing_indices(t)  # type: ignore[misc]
        if self._resolved_mode == "fft":
            return self._interpolate_fft(t, lo, hi)
        return self._interpolate_pairwise(t, lo, hi)

    # ------------------------------------------------------------------
    # Pairwise evaluation (pruned / dense)
    # ------------------------------------------------------------------
    def _interpolate_pairwise(self, t: float, lo: int, hi: int) -> SparseDistribution:
        """Eq. 4 by explicit summation over candidate cells."""
        traj = self.trajectory
        p_lo, p_hi = traj[lo], traj[hi]
        dt1 = t - p_lo.t
        dt2 = p_hi.t - t
        candidates = self._candidate_cells(p_lo, p_hi, dt1, dt2)
        centers = self.grid.centers()[candidates]

        cells_lo, probs_lo = self._observed[lo]
        cells_hi, probs_hi = self._observed[hi]
        # forward(r)  = Σ_j f(r_j, ℓ_i)     · P(r, t | r_j, t_i)
        # backward(r) = Σ_k f(r_k, ℓ_{i+1}) · P(r_k, t_{i+1} | r, t)
        forward = probs_lo @ self.transition_model.weights(
            self.grid.centers()[cells_lo], centers, dt1
        )
        backward = self.transition_model.weights(
            centers, self.grid.centers()[cells_hi], dt2
        ) @ probs_hi
        unnorm = forward * backward
        total = float(unnorm.sum())
        if total <= 0.0 or not np.isfinite(total):
            return self._fallback(t, p_lo, p_hi)
        return self._sparsify(candidates, unnorm / total)

    def _candidate_cells(self, p_lo, p_hi, dt1: float, dt2: float) -> np.ndarray:
        """Cells where Eq. 4 can be non-negligible (pruned mode).

        Cells reachable from the earlier observation within ``dt1`` *and*
        able to reach the later one within ``dt2`` (each radius widened by
        the noise support).  Falls back to the union, then to the merged
        noise supports, so the candidate set is never empty.
        """
        if self._resolved_mode == "dense":
            return np.arange(self.grid.n_cells)
        pad = self.noise_model.support_radius(self.grid) + self.grid.cell_size
        r1 = self.transition_model.reachable_radius(dt1) + pad
        r2 = self.transition_model.reachable_radius(dt2) + pad
        if not (np.isfinite(r1) and np.isfinite(r2)):
            return np.arange(self.grid.n_cells)
        from_lo = self.grid.cells_within(p_lo.x, p_lo.y, r1)
        from_hi = self.grid.cells_within(p_hi.x, p_hi.y, r2)
        both = np.intersect1d(from_lo, from_hi, assume_unique=True)
        if both.size:
            return both
        either = np.union1d(from_lo, from_hi)
        if either.size:
            return either
        supports = [cells for cells, _ in self._observed]
        return np.unique(np.concatenate(supports))

    # ------------------------------------------------------------------
    # FFT-convolution evaluation (isotropic transition models)
    # ------------------------------------------------------------------
    def _interpolate_fft(self, t: float, lo: int, hi: int) -> SparseDistribution:
        """Eq. 4 via 2-D convolution over the grid lattice.

        With an isotropic transition model, ``forward = f_lo ⊛ K_{dt1}``
        and ``backward = f_hi ⊛ K_{dt2}`` where ``K_dt`` is the radial
        kernel of transition weights between cell offsets.  Equivalent to
        the dense mode up to FFT round-off.
        """
        traj = self.trajectory
        p_lo, p_hi = traj[lo], traj[hi]
        dt1 = t - p_lo.t
        dt2 = p_hi.t - t
        forward = signal.convolve(
            self._dense_plane(lo), self._radial_kernel(dt1), mode="same", method="auto"
        )
        backward = signal.convolve(
            self._dense_plane(hi), self._radial_kernel(dt2), mode="same", method="auto"
        )
        unnorm = (forward * backward).ravel()
        np.clip(unnorm, 0.0, None, out=unnorm)
        total = float(unnorm.sum())
        if total <= 0.0 or not np.isfinite(total):
            return self._fallback(t, p_lo, p_hi)
        probs = unnorm / total
        cells = np.nonzero(probs > _SPARSE_EPS)[0]
        if cells.size == 0:
            return self._fallback(t, p_lo, p_hi)
        kept = probs[cells]
        return cells, kept / kept.sum()

    def _dense_plane(self, index: int) -> np.ndarray:
        """Observation ``index``'s noise distribution as a 2-D grid plane."""
        cells, probs = self._observed[index]
        plane = np.zeros((self.grid.n_rows, self.grid.n_cols))
        plane[cells // self.grid.n_cols, cells % self.grid.n_cols] = probs
        return plane

    def _radial_kernel(self, dt: float) -> np.ndarray:
        """Transition weights between cell offsets, as an odd-sized kernel."""
        grid = self.grid
        radius = self.transition_model.reachable_radius(dt)
        span = int(np.ceil(radius / grid.cell_size)) + 1
        rc = min(grid.n_cols - 1, span)
        rr = min(grid.n_rows - 1, span)
        dx = np.arange(-rc, rc + 1)
        dy = np.arange(-rr, rr + 1)
        dist = np.hypot(dx[None, :], dy[:, None]) * grid.cell_size
        return self.transition_model.distance_weights(dist, dt)

    # ------------------------------------------------------------------
    @staticmethod
    def _sparsify(cells: np.ndarray, probs: np.ndarray) -> SparseDistribution:
        """Drop negligible entries and renormalize."""
        keep = probs > _SPARSE_EPS
        if not keep.all():
            cells = cells[keep]
            probs = probs[keep]
            probs = probs / probs.sum()
        return cells, probs

    def _fallback(self, t: float, p_lo, p_hi) -> SparseDistribution:
        """Numerical-underflow fallback.

        When every candidate weight underflows (the object moved far faster
        than its speed model considers plausible — e.g. after heavy
        downsampling of a single long gap), Eq. 4 is 0/0.  We resolve it by
        placing the mass at the time-weighted linear interpolation between
        the two bracketing observations, the least-informative consistent
        answer.
        """
        span = p_hi.t - p_lo.t
        w = (t - p_lo.t) / span if span > 0 else 0.5
        x = p_lo.x + w * (p_hi.x - p_lo.x)
        y = p_lo.y + w * (p_hi.y - p_lo.y)
        cell = self.grid.cell_of(x, y)
        return np.array([cell], dtype=int), np.ones(1)

    def __repr__(self) -> str:
        return (
            f"<TrajectorySTP n={len(self.trajectory)} mode={self.mode!r} "
            f"grid={self.grid.n_cols}x{self.grid.n_rows}>"
        )
