"""Uniform spatial grid (Section IV-A of the paper).

The area of interest is partitioned into ``n`` disjoint, equal-sized square
cells ``R = {r_1, ..., r_n}``; the paper represents each cell by its center.
:class:`Grid` provides the point→cell and cell→center mappings plus the
range queries the pruned S-T probability evaluation relies on.

Cells are identified by a flat integer index in ``[0, n_cells)``; row-major
over ``(col, row)`` with ``index = row * n_cols + col``.
"""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

__all__ = ["Grid"]


class Grid:
    """A uniform square grid over a rectangular bounding box.

    Parameters
    ----------
    min_x, min_y, max_x, max_y:
        Bounding box of the area of interest, in meters.
    cell_size:
        Side length of each square cell, in meters (e.g. 3 m for the mall
        dataset, 100 m for the taxi dataset in the paper).

    The box is expanded to a whole number of cells; points outside the box
    are clamped to the border cells, so every point maps to some cell.
    """

    __slots__ = ("min_x", "min_y", "cell_size", "n_cols", "n_rows", "_centers")

    def __init__(self, min_x: float, min_y: float, max_x: float, max_y: float, cell_size: float):
        if cell_size <= 0:
            raise ValueError(f"cell_size must be positive, got {cell_size}")
        if max_x <= min_x or max_y <= min_y:
            raise ValueError("bounding box must have positive extent")
        self.min_x = float(min_x)
        self.min_y = float(min_y)
        self.cell_size = float(cell_size)
        self.n_cols = max(1, math.ceil((max_x - min_x) / cell_size))
        self.n_rows = max(1, math.ceil((max_y - min_y) / cell_size))
        self._centers: np.ndarray | None = None

    # ------------------------------------------------------------------
    @classmethod
    def covering(cls, points: np.ndarray, cell_size: float, margin: float = 0.0) -> "Grid":
        """Grid covering an ``(n, 2)`` array of points, with optional margin.

        ``margin`` extends the box on every side; experiments use a margin
        of a few noise standard deviations so distorted points stay inside.
        """
        pts = np.asarray(points, dtype=float).reshape(-1, 2)
        if len(pts) == 0:
            raise ValueError("cannot build a grid covering zero points")
        mn = pts.min(axis=0) - margin
        mx = pts.max(axis=0) + margin
        # Guarantee positive extent even for degenerate (single-point) input.
        mx = np.maximum(mx, mn + cell_size)
        return cls(mn[0], mn[1], mx[0], mx[1], cell_size)

    # ------------------------------------------------------------------
    @property
    def n_cells(self) -> int:
        """Total number of cells ``|R|``."""
        return self.n_cols * self.n_rows

    @property
    def max_x(self) -> float:
        return self.min_x + self.n_cols * self.cell_size

    @property
    def max_y(self) -> float:
        return self.min_y + self.n_rows * self.cell_size

    def coarsen(self, factor: int) -> "Grid":
        """A grid over the same area with ``factor``× larger cells.

        The origin is preserved, so every coarse cell is the union of (up
        to) ``factor²`` fine cells and any point maps consistently between
        the two resolutions.  Used by the serving degradation ladder:
        quadratically fewer cells make STP evaluation quadratically
        cheaper at the cost of spatial resolution.
        """
        if int(factor) != factor or factor < 1:
            raise ValueError(f"coarsen factor must be an integer >= 1, got {factor}")
        if factor == 1:
            return self
        return Grid(self.min_x, self.min_y, self.max_x, self.max_y, self.cell_size * factor)

    def __repr__(self) -> str:
        return (
            f"<Grid {self.n_cols}x{self.n_rows} cells of {self.cell_size}m "
            f"over [{self.min_x:.0f},{self.min_y:.0f}]-[{self.max_x:.0f},{self.max_y:.0f}]>"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Grid):
            return NotImplemented
        return (
            self.min_x == other.min_x
            and self.min_y == other.min_y
            and self.cell_size == other.cell_size
            and self.n_cols == other.n_cols
            and self.n_rows == other.n_rows
        )

    def __hash__(self) -> int:
        return hash((self.min_x, self.min_y, self.cell_size, self.n_cols, self.n_rows))

    # ------------------------------------------------------------------
    # Point <-> cell mapping
    # ------------------------------------------------------------------
    def cell_of(self, x: float, y: float) -> int:
        """Flat index of the cell containing ``(x, y)`` (clamped to border)."""
        col = min(max(int((x - self.min_x) // self.cell_size), 0), self.n_cols - 1)
        row = min(max(int((y - self.min_y) // self.cell_size), 0), self.n_rows - 1)
        return row * self.n_cols + col

    def cells_of(self, xy: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`cell_of` for an ``(n, 2)`` array."""
        pts = np.asarray(xy, dtype=float).reshape(-1, 2)
        cols = np.clip(((pts[:, 0] - self.min_x) // self.cell_size).astype(int), 0, self.n_cols - 1)
        rows = np.clip(((pts[:, 1] - self.min_y) // self.cell_size).astype(int), 0, self.n_rows - 1)
        return rows * self.n_cols + cols

    def center_of(self, index: int) -> tuple[float, float]:
        """Center coordinates of cell ``index``."""
        self._check_index(index)
        row, col = divmod(index, self.n_cols)
        return (
            self.min_x + (col + 0.5) * self.cell_size,
            self.min_y + (row + 0.5) * self.cell_size,
        )

    def centers(self) -> np.ndarray:
        """``(n_cells, 2)`` array of all cell centers (cached, read-only)."""
        if self._centers is None:
            cols = np.arange(self.n_cols)
            rows = np.arange(self.n_rows)
            cx = self.min_x + (cols + 0.5) * self.cell_size
            cy = self.min_y + (rows + 0.5) * self.cell_size
            xx, yy = np.meshgrid(cx, cy)
            centers = np.column_stack([xx.ravel(), yy.ravel()])
            centers.flags.writeable = False
            self._centers = centers
        return self._centers

    # ------------------------------------------------------------------
    # Range queries (used by the pruned STP evaluation)
    # ------------------------------------------------------------------
    def cells_within(self, x: float, y: float, radius: float) -> np.ndarray:
        """Indices of cells whose *centers* lie within ``radius`` of ``(x, y)``.

        Returns them sorted ascending.  The candidate rectangle is computed
        in grid coordinates first, so the cost is proportional to the number
        of returned cells, not ``n_cells``.
        """
        if radius < 0:
            raise ValueError(f"radius must be non-negative, got {radius}")
        lo_col = max(int((x - radius - self.min_x) // self.cell_size), 0)
        hi_col = min(int((x + radius - self.min_x) // self.cell_size), self.n_cols - 1)
        lo_row = max(int((y - radius - self.min_y) // self.cell_size), 0)
        hi_row = min(int((y + radius - self.min_y) // self.cell_size), self.n_rows - 1)
        if hi_col < lo_col or hi_row < lo_row:
            return np.empty(0, dtype=int)
        cols = np.arange(lo_col, hi_col + 1)
        rows = np.arange(lo_row, hi_row + 1)
        cx = self.min_x + (cols + 0.5) * self.cell_size
        cy = self.min_y + (rows + 0.5) * self.cell_size
        xx, yy = np.meshgrid(cx, cy)
        dist2 = (xx - x) ** 2 + (yy - y) ** 2
        mask = dist2 <= radius * radius
        rr, cc = np.nonzero(mask)
        return np.sort((rows[rr] * self.n_cols + cols[cc]).astype(int))

    def distances_from(self, x: float, y: float, cells: Iterable[int] | None = None) -> np.ndarray:
        """Euclidean distances from ``(x, y)`` to cell centers.

        With ``cells=None`` the distances to *all* centers are returned
        (dense mode); otherwise only to the listed cells (pruned mode).
        """
        centers = self.centers()
        if cells is not None:
            centers = centers[np.asarray(list(cells) if not isinstance(cells, np.ndarray) else cells, dtype=int)]
        return np.hypot(centers[:, 0] - x, centers[:, 1] - y)

    # ------------------------------------------------------------------
    def _check_index(self, index: int) -> None:
        if not 0 <= index < self.n_cells:
            raise IndexError(f"cell index {index} out of range [0, {self.n_cells})")
