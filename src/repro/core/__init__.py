"""Core STS machinery: data model, grid, noise, speed, transitions, measure."""

from .cache import LRUCache
from .colocation import colocation_batch, colocation_probability, colocation_series, sparse_inner
from .events import ColocationEvent, colocation_timeline, detect_colocation_events
from .grid import Grid
from .noise import (
    DeterministicNoiseModel,
    GaussianNoiseModel,
    NoiseModel,
    UniformDiskNoiseModel,
)
from .speed import GaussianSpeedModel, KDESpeedModel, SpeedModel, silverman_bandwidth
from .stprob import TrajectorySTP
from .sts import STS, sts_b, sts_f, sts_g, sts_n
from .transition import FrequencyTransitionModel, SpeedTransitionModel, TransitionModel
from .trajectory import Path, Trajectory, TrajectoryPoint

__all__ = [
    "Grid",
    "NoiseModel",
    "GaussianNoiseModel",
    "DeterministicNoiseModel",
    "UniformDiskNoiseModel",
    "SpeedModel",
    "KDESpeedModel",
    "GaussianSpeedModel",
    "silverman_bandwidth",
    "TransitionModel",
    "SpeedTransitionModel",
    "FrequencyTransitionModel",
    "TrajectorySTP",
    "colocation_probability",
    "colocation_batch",
    "colocation_series",
    "sparse_inner",
    "LRUCache",
    "ColocationEvent",
    "colocation_timeline",
    "detect_colocation_events",
    "STS",
    "sts_n",
    "sts_g",
    "sts_f",
    "sts_b",
    "Trajectory",
    "TrajectoryPoint",
    "Path",
]
