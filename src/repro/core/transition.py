"""Transition probability estimators (Section IV-B of the paper).

A transition model scores ``P(ℓ', t' | ℓ, t)`` — how plausible it is that an
object at location ``ℓ`` at time ``t`` is at ``ℓ'`` at time ``t'``.  STS
proper derives this from the object's *personalized* speed distribution
(Eq. 7, :class:`SpeedTransitionModel` over a
:class:`~repro.core.speed.KDESpeedModel`).  The STS-F ablation instead uses
the frequency-based Markov estimate of prior work ([24], [25], [34] in the
paper): transition probabilities between grid cells counted from historical
trajectories, universal across objects
(:class:`FrequencyTransitionModel`).

All models consume and produce *cell centers* — the paper represents cells
by their centers (Section IV-A) — and evaluate a ``(k, m)`` weight matrix
between ``k`` origin and ``m`` destination locations for a time gap ``dt``.
Weights are relative scores; Algorithm 1's normalization makes the absolute
scale irrelevant.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Iterable

import numpy as np
from scipy import sparse

from .grid import Grid
from .speed import SpeedModel
from .trajectory import Trajectory

__all__ = ["TransitionModel", "SpeedTransitionModel", "FrequencyTransitionModel"]


class TransitionModel(ABC):
    """Scores transitions between locations over a time gap."""

    #: Whether the weight depends on the locations only through their
    #: distance.  Isotropic models unlock the FFT-convolution evaluation of
    #: Eq. 4 (see :mod:`repro.core.stprob`), which must then implement
    #: :meth:`distance_weights`.
    isotropic: bool = False

    @abstractmethod
    def weights(self, from_xy: np.ndarray, to_xy: np.ndarray, dt: float) -> np.ndarray:
        """``(k, m)`` matrix of transition weights for time gap ``dt >= 0``."""

    def distance_weights(self, distances: np.ndarray, dt: float) -> np.ndarray:
        """Weights as a function of distance alone (isotropic models only)."""
        raise NotImplementedError(f"{type(self).__name__} is not isotropic")

    @abstractmethod
    def reachable_radius(self, dt: float) -> float:
        """Distance beyond which a transition over ``dt`` is negligible."""


class SpeedTransitionModel(TransitionModel):
    """Eq. 7: the transition weight is the speed-density score.

    ``P(ℓ', t' | ℓ, t) = h · Q̂(dis(ℓ, ℓ') / |t - t'|)`` — the probability of
    the object moving at the speed the displacement implies, under its own
    speed model.

    A zero time gap is degenerate (the implied speed is infinite unless the
    displacement is zero); we resolve it as "the object cannot move in zero
    time": weight 1 within half a reference distance, else 0.
    """

    isotropic = True

    def __init__(self, speed_model: SpeedModel, zero_dt_tolerance: float = 1e-9):
        self.speed_model = speed_model
        self.zero_dt_tolerance = float(zero_dt_tolerance)

    def weights(self, from_xy: np.ndarray, to_xy: np.ndarray, dt: float) -> np.ndarray:
        src = np.asarray(from_xy, dtype=float).reshape(-1, 2)
        dst = np.asarray(to_xy, dtype=float).reshape(-1, 2)
        diff = src[:, None, :] - dst[None, :, :]
        dist = np.hypot(diff[..., 0], diff[..., 1])
        return self.distance_weights(dist, dt)

    def distance_weights(self, distances: np.ndarray, dt: float) -> np.ndarray:
        if dt < 0:
            raise ValueError(f"time gap must be non-negative, got {dt}")
        distances = np.asarray(distances, dtype=float)
        if dt <= self.zero_dt_tolerance:
            return (distances <= self.zero_dt_tolerance).astype(float)
        flat = np.asarray(self.speed_model.transition_weight(distances.ravel() / dt))
        return flat.reshape(distances.shape)

    def reachable_radius(self, dt: float) -> float:
        return self.speed_model.max_plausible_speed() * max(dt, 0.0)

    def __repr__(self) -> str:
        return f"SpeedTransitionModel({self.speed_model!r})"


class FrequencyTransitionModel(TransitionModel):
    """Frequency-based first-order Markov transitions over grid cells (STS-F).

    Fitted from a corpus of trajectories: every pair of consecutive
    observations contributes one count to ``N[cell_i → cell_{i+1}]``.  The
    one-step transition matrix is the row-normalized count matrix with
    Laplace smoothing toward self-transition.  A transition over an
    arbitrary gap ``dt`` uses ``k = round(dt / step_duration)`` steps, i.e.
    the ``k``-th power of the one-step matrix (computed sparsely and cached).

    This reproduces the "universal for all users" estimator the paper
    ablates against: it ignores who is moving and how fast they personally
    move, and it suffers from data sparsity exactly as Section II describes.

    Parameters
    ----------
    grid:
        The spatial partition; transitions are between its cells.
    step_duration:
        Time represented by one Markov step.  Defaults (at fit time) to the
        median inter-observation gap of the corpus.
    max_steps:
        Cap on the matrix power ``k`` — beyond this the chain is close to
        its local stationary behaviour and further powers cost more than
        they inform.
    """

    def __init__(self, grid: Grid, step_duration: float | None = None, max_steps: int = 8):
        if max_steps < 1:
            raise ValueError(f"max_steps must be >= 1, got {max_steps}")
        self.grid = grid
        self.step_duration = step_duration
        self.max_steps = int(max_steps)
        self._one_step: sparse.csr_matrix | None = None
        self._powers: dict[int, sparse.csr_matrix] = {}
        self._max_jump = grid.cell_size  # refined during fit

    # ------------------------------------------------------------------
    def fit(self, trajectories: Iterable[Trajectory]) -> "FrequencyTransitionModel":
        """Count cell-to-cell transitions from the corpus."""
        n = self.grid.n_cells
        rows: list[np.ndarray] = []
        cols: list[np.ndarray] = []
        gaps: list[np.ndarray] = []
        max_jump = self.grid.cell_size
        for traj in trajectories:
            if len(traj) < 2:
                continue
            cells = self.grid.cells_of(traj.xy)
            rows.append(cells[:-1])
            cols.append(cells[1:])
            gaps.append(np.diff(traj.timestamps))
            seg = np.diff(traj.xy, axis=0)
            jumps = np.hypot(seg[:, 0], seg[:, 1])
            if jumps.size:
                max_jump = max(max_jump, float(jumps.max()))
        if not rows:
            raise ValueError("cannot fit a frequency transition model from an empty corpus")
        row = np.concatenate(rows)
        col = np.concatenate(cols)
        all_gaps = np.concatenate(gaps)
        if self.step_duration is None:
            positive = all_gaps[all_gaps > 0]
            self.step_duration = float(np.median(positive)) if positive.size else 1.0
        counts = sparse.coo_matrix(
            (np.ones(len(row)), (row, col)), shape=(n, n)
        ).tocsr()
        # Laplace-style smoothing toward self-transition: cells never seen
        # as origins stay put rather than becoming absorbing zero rows.
        counts = counts + sparse.identity(n, format="csr") * 0.5
        row_sums = np.asarray(counts.sum(axis=1)).ravel()
        inv = sparse.diags(1.0 / row_sums)
        self._one_step = (inv @ counts).tocsr()
        self._powers = {1: self._one_step}
        self._max_jump = max_jump
        return self

    @property
    def is_fitted(self) -> bool:
        return self._one_step is not None

    # ------------------------------------------------------------------
    def _steps_for(self, dt: float) -> int:
        assert self.step_duration is not None
        k = int(round(dt / self.step_duration))
        return min(max(k, 1), self.max_steps)

    def _power(self, k: int) -> sparse.csr_matrix:
        if self._one_step is None:
            raise RuntimeError("FrequencyTransitionModel must be fitted before use")
        if k not in self._powers:
            self._powers[k] = (self._power(k - 1) @ self._one_step).tocsr()
        return self._powers[k]

    def weights(self, from_xy: np.ndarray, to_xy: np.ndarray, dt: float) -> np.ndarray:
        if dt < 0:
            raise ValueError(f"time gap must be non-negative, got {dt}")
        if not self.is_fitted:
            raise RuntimeError("FrequencyTransitionModel must be fitted before use")
        src_cells = self.grid.cells_of(np.asarray(from_xy, dtype=float).reshape(-1, 2))
        dst_cells = self.grid.cells_of(np.asarray(to_xy, dtype=float).reshape(-1, 2))
        matrix = self._power(self._steps_for(dt))
        block = matrix[src_cells, :][:, dst_cells]
        return np.asarray(block.todense(), dtype=float)

    def reachable_radius(self, dt: float) -> float:
        # After k steps the chain cannot plausibly have traveled farther
        # than k of the largest observed single-step jumps.
        return self._steps_for(dt) * self._max_jump if self.is_fitted else math.inf

    def __repr__(self) -> str:
        state = "fitted" if self.is_fitted else "unfitted"
        return f"FrequencyTransitionModel(step={self.step_duration}, max_steps={self.max_steps}, {state})"
