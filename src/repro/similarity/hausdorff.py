"""Symmetric Hausdorff distance between trajectory point sets.

The Hausdorff distance ignores ordering and time entirely: it is the
largest distance from any point of one set to its nearest neighbour in the
other.  Included as the canonical shape-only reference measure.
"""

from __future__ import annotations

import numpy as np

from ..core.trajectory import Trajectory
from .base import Measure

__all__ = ["Hausdorff", "hausdorff_distance"]


def hausdorff_distance(a: np.ndarray, b: np.ndarray) -> float:
    """Symmetric Hausdorff distance between two ``(n, 2)`` point arrays."""
    a = np.asarray(a, dtype=float).reshape(-1, 2)
    b = np.asarray(b, dtype=float).reshape(-1, 2)
    if len(a) == 0 or len(b) == 0:
        raise ValueError("Hausdorff distance is undefined for empty sequences")
    diff = a[:, None, :] - b[None, :, :]
    cost = np.hypot(diff[..., 0], diff[..., 1])
    forward = cost.min(axis=1).max()
    backward = cost.min(axis=0).max()
    return float(max(forward, backward))


class Hausdorff(Measure):
    """Hausdorff as a :class:`Measure` (distance)."""

    name = "Hausdorff"
    higher_is_better = False

    def __call__(self, a: Trajectory, b: Trajectory) -> float:
        return hausdorff_distance(a.xy, b.xy)
