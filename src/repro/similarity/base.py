"""Common protocol for trajectory similarity/distance measures.

The library mixes two conventions: *similarities* (higher = more alike;
STS, CATS, WGM, SST, LCSS) and *distances* (lower = more alike; DTW, EDR,
ERP, EDwP, Fréchet, Hausdorff).  :class:`Measure` records which convention
an implementation uses, and :meth:`Measure.score` exposes a uniform
"higher = more similar" orientation so the evaluation harness can rank
candidates identically for every method.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from ..core.trajectory import Trajectory

__all__ = ["Measure", "register_measure", "available_measures", "get_measure_factory"]


class Measure(ABC):
    """A pairwise trajectory measure with a known orientation."""

    #: Human-readable name used in experiment reports.
    name: str = "measure"
    #: True when larger raw values mean more similar trajectories.
    higher_is_better: bool = True

    @abstractmethod
    def __call__(self, a: Trajectory, b: Trajectory) -> float:
        """Raw measure value for the pair (native orientation)."""

    def score(self, a: Trajectory, b: Trajectory) -> float:
        """The raw value oriented so that higher always means more similar."""
        value = self(a, b)
        return value if self.higher_is_better else -value

    def pairwise(self, queries, gallery) -> np.ndarray:
        """Matrix of raw values, ``M[i, j] = measure(queries[i], gallery[j])``."""
        out = np.zeros((len(queries), len(gallery)))
        for i, q in enumerate(queries):
            for j, g in enumerate(gallery):
                out[i, j] = self(q, g)
        return out

    def __repr__(self) -> str:
        return f"<{type(self).__name__} name={self.name!r}>"


_REGISTRY: dict[str, type | object] = {}


def register_measure(name: str, factory) -> None:
    """Register a measure factory under ``name`` (used by the CLI)."""
    key = name.lower()
    if key in _REGISTRY:
        raise ValueError(f"measure {name!r} is already registered")
    _REGISTRY[key] = factory


def available_measures() -> list[str]:
    """Names of all registered measures."""
    return sorted(_REGISTRY)


def get_measure_factory(name: str):
    """Factory registered under ``name`` (case-insensitive)."""
    try:
        return _REGISTRY[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown measure {name!r}; available: {', '.join(available_measures())}"
        ) from None
