"""Edit distance with Real Penalty (Chen & Ng, VLDB 2004).

ERP fixes DTW's lack of the triangle inequality and EDR's coarse unit costs
by pricing every gap against a constant reference point ``g``: a skipped
point costs its distance to ``g``, a matched pair costs their mutual
distance.  ERP is a metric when ``g`` is fixed.
"""

from __future__ import annotations

import numpy as np

from ..core.trajectory import Trajectory
from .base import Measure

__all__ = ["ERP", "erp_distance"]


def erp_distance(a: np.ndarray, b: np.ndarray, gap: tuple[float, float] | None = None) -> float:
    """ERP between two ``(n, 2)`` point arrays.

    Parameters
    ----------
    gap:
        The reference point ``g``.  Defaults to the centroid of both
        sequences combined (a common practical choice; pass an explicit
        point for metric guarantees across many comparisons).
    """
    a = np.asarray(a, dtype=float).reshape(-1, 2)
    b = np.asarray(b, dtype=float).reshape(-1, 2)
    n, m = len(a), len(b)
    if n == 0 or m == 0:
        raise ValueError("ERP is undefined for empty sequences")
    g = np.mean(np.vstack([a, b]), axis=0) if gap is None else np.asarray(gap, dtype=float)

    gap_a = np.hypot(a[:, 0] - g[0], a[:, 1] - g[1])
    gap_b = np.hypot(b[:, 0] - g[0], b[:, 1] - g[1])
    diff = a[:, None, :] - b[None, :, :]
    cost = np.hypot(diff[..., 0], diff[..., 1])

    table = np.zeros((n + 1, m + 1))
    table[1:, 0] = np.cumsum(gap_a)
    table[0, 1:] = np.cumsum(gap_b)
    for i in range(1, n + 1):
        for j in range(1, m + 1):
            table[i, j] = min(
                table[i - 1, j - 1] + cost[i - 1, j - 1],  # match
                table[i - 1, j] + gap_a[i - 1],  # gap in b
                table[i, j - 1] + gap_b[j - 1],  # gap in a
            )
    return float(table[n, m])


class ERP(Measure):
    """ERP as a :class:`Measure` (distance: lower = more similar)."""

    name = "ERP"
    higher_is_better = False

    def __init__(self, gap: tuple[float, float] | None = None):
        self.gap = gap

    def __call__(self, a: Trajectory, b: Trajectory) -> float:
        return erp_distance(a.xy, b.xy, gap=self.gap)
