"""Longest Common SubSequence similarity (Vlachos et al., ICDE 2002).

Two points "match" when they are within a spatial threshold ``epsilon`` and
their indices within a window ``delta``; LCSS is the length of the longest
common subsequence of matching points, normalized by the shorter
trajectory's length.  The STS paper cites LCSS as a threshold-dependent
measure whose performance "heavily relies on the parameter settings".
"""

from __future__ import annotations

import numpy as np

from ..core.trajectory import Trajectory
from .base import Measure

__all__ = ["LCSS", "lcss_similarity"]


def lcss_similarity(
    a: np.ndarray,
    b: np.ndarray,
    epsilon: float,
    delta: int | None = None,
) -> float:
    """Normalized LCSS in ``[0, 1]`` between two ``(n, 2)`` point arrays.

    Parameters
    ----------
    epsilon:
        Spatial matching threshold in meters.
    delta:
        Maximum index offset ``|i - j|`` allowed for a match; ``None``
        disables the temporal-index constraint.
    """
    if epsilon <= 0:
        raise ValueError(f"epsilon must be positive, got {epsilon}")
    a = np.asarray(a, dtype=float).reshape(-1, 2)
    b = np.asarray(b, dtype=float).reshape(-1, 2)
    n, m = len(a), len(b)
    if n == 0 or m == 0:
        raise ValueError("LCSS is undefined for empty sequences")

    table = np.zeros((n + 1, m + 1), dtype=int)
    for i in range(1, n + 1):
        for j in range(1, m + 1):
            within_window = delta is None or abs(i - j) <= delta
            if within_window and np.hypot(*(a[i - 1] - b[j - 1])) <= epsilon:
                table[i, j] = table[i - 1, j - 1] + 1
            else:
                table[i, j] = max(table[i - 1, j], table[i, j - 1])
    return float(table[n, m]) / min(n, m)


class LCSS(Measure):
    """LCSS as a :class:`Measure` (similarity in ``[0, 1]``)."""

    name = "LCSS"
    higher_is_better = True

    def __init__(self, epsilon: float, delta: int | None = None):
        if epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        self.epsilon = float(epsilon)
        self.delta = delta

    def __call__(self, a: Trajectory, b: Trajectory) -> float:
        return lcss_similarity(a.xy, b.xy, self.epsilon, self.delta)
