"""Dynamic Time Warping distance (Yi, Jagadish & Faloutsos, ICDE 1998).

DTW aligns every point of one trajectory to at least one point of the other
with a monotone, continuity-preserving warping path, and sums the Euclidean
distances along the best alignment.  It is the classic spatial-only measure
(Section II of the STS paper) and the post-calibration metric the paper
plugs in after APM and KF.
"""

from __future__ import annotations

import numpy as np

from ..core.trajectory import Trajectory
from .base import Measure

__all__ = ["DTW", "dtw_distance"]


def dtw_distance(a: np.ndarray, b: np.ndarray, window: int | None = None) -> float:
    """DTW distance between two ``(n, 2)`` point arrays.

    Parameters
    ----------
    a, b:
        Point sequences.  Must both be non-empty.
    window:
        Optional Sakoe-Chiba band half-width (in index units) constraining
        ``|i - j| <= window``; ``None`` means unconstrained.
    """
    a = np.asarray(a, dtype=float).reshape(-1, 2)
    b = np.asarray(b, dtype=float).reshape(-1, 2)
    n, m = len(a), len(b)
    if n == 0 or m == 0:
        raise ValueError("DTW is undefined for empty sequences")
    # Pairwise Euclidean cost matrix, vectorized.
    diff = a[:, None, :] - b[None, :, :]
    cost = np.hypot(diff[..., 0], diff[..., 1])

    acc = np.full((n + 1, m + 1), np.inf)
    acc[0, 0] = 0.0
    for i in range(1, n + 1):
        lo, hi = 1, m
        if window is not None:
            lo = max(1, i - window)
            hi = min(m, i + window)
        # Row-wise vectorized relaxation: acc[i, j] = cost + min of the
        # three predecessors.  The running minimum over acc[i, j-1] has a
        # sequential dependency, so that term is folded in a short loop.
        prev = acc[i - 1]
        for j in range(lo, hi + 1):
            best = min(prev[j], prev[j - 1], acc[i, j - 1])
            acc[i, j] = cost[i - 1, j - 1] + best
    return float(acc[n, m])


class DTW(Measure):
    """DTW as a :class:`Measure` (distance: lower = more similar)."""

    name = "DTW"
    higher_is_better = False

    def __init__(self, window: int | None = None):
        self.window = window

    def __call__(self, a: Trajectory, b: Trajectory) -> float:
        return dtw_distance(a.xy, b.xy, window=self.window)
