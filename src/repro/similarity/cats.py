"""CATS — Clue-Aware Trajectory Similarity (Hung, Peng & Lee, VLDBJ 2015).

CATS scores how many data points of one trajectory find spatially and
temporally co-located "clues" in the other.  A point ``p`` of ``Tra₁``
collects clues from the points of ``Tra₂`` whose timestamps fall within a
temporal window ``tau`` of ``p``; each clue contributes a spatial proximity
score that decays linearly from 1 (zero distance) to 0 (at the spatial
threshold ``epsilon``).  The per-point score is the best clue available,
and CATS is the average over the points of both trajectories (symmetric).

The two manually-set parameters — exactly the dependency the STS paper
criticizes (Section II) — default to values matching the original work's
guidance: ``epsilon`` a few multiples of the location error, ``tau`` on the
order of the sampling interval.
"""

from __future__ import annotations

import numpy as np

from ..core.trajectory import Trajectory
from .base import Measure

__all__ = ["CATS", "cats_similarity"]


def _directed_score(
    xy_a: np.ndarray,
    t_a: np.ndarray,
    xy_b: np.ndarray,
    t_b: np.ndarray,
    epsilon: float,
    tau: float,
) -> float:
    """Mean best-clue score of A's points against B's points."""
    scores = np.zeros(len(xy_a))
    for i in range(len(xy_a)):
        in_window = np.abs(t_b - t_a[i]) <= tau
        if not in_window.any():
            continue
        d = np.hypot(xy_b[in_window, 0] - xy_a[i, 0], xy_b[in_window, 1] - xy_a[i, 1])
        proximity = np.clip(1.0 - d / epsilon, 0.0, None)
        scores[i] = float(proximity.max())
    return float(scores.mean())


def cats_similarity(a: Trajectory, b: Trajectory, epsilon: float, tau: float) -> float:
    """Symmetric CATS similarity in ``[0, 1]``."""
    if epsilon <= 0:
        raise ValueError(f"epsilon must be positive, got {epsilon}")
    if tau <= 0:
        raise ValueError(f"tau must be positive, got {tau}")
    if len(a) == 0 or len(b) == 0:
        raise ValueError("CATS is undefined for empty trajectories")
    forward = _directed_score(a.xy, a.timestamps, b.xy, b.timestamps, epsilon, tau)
    backward = _directed_score(b.xy, b.timestamps, a.xy, a.timestamps, epsilon, tau)
    return 0.5 * (forward + backward)


class CATS(Measure):
    """CATS as a :class:`Measure` (similarity in ``[0, 1]``).

    Parameters
    ----------
    epsilon:
        Spatial clue threshold in meters.
    tau:
        Temporal clue window in seconds.
    """

    name = "CATS"
    higher_is_better = True

    def __init__(self, epsilon: float, tau: float):
        if epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        if tau <= 0:
            raise ValueError(f"tau must be positive, got {tau}")
        self.epsilon = float(epsilon)
        self.tau = float(tau)

    def __call__(self, a: Trajectory, b: Trajectory) -> float:
        return cats_similarity(a, b, self.epsilon, self.tau)
