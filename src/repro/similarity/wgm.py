"""WGM — Weighted Geometric Mean similarity (Ketabi, Alipour & Helmy,
SIGSPATIAL 2018).

WGM compares two trips through a small set of point-wise correspondences
(canonically origin↔origin and destination↔destination): each pair's
spatial similarity (exponentially decaying Euclidean proximity) and
temporal similarity (decaying timestamp gap) are combined as a weighted
geometric mean, and the trip similarity is the arithmetic mean over pairs.

The STS paper notes the underlying assumption — corresponding indices
represent corresponding moments — breaks down when trajectory lengths vary
under sporadic sampling, which is why WGM degrades fastest in the
experiments.  We align ``n_points`` positions at equal relative indices
(``n_points=2`` reproduces the origin/destination form).
"""

from __future__ import annotations

import numpy as np

from ..core.trajectory import Trajectory
from .base import Measure

__all__ = ["WGM", "wgm_similarity"]


def wgm_similarity(
    a: Trajectory,
    b: Trajectory,
    spatial_scale: float,
    temporal_scale: float,
    weight: float = 0.5,
    n_points: int = 2,
) -> float:
    """WGM similarity in ``[0, 1]``.

    Parameters
    ----------
    spatial_scale:
        Distance (meters) at which spatial similarity decays to ``1/e``.
    temporal_scale:
        Time gap (seconds) at which temporal similarity decays to ``1/e``.
    weight:
        Spatial weight ``w`` of the geometric mean (temporal gets ``1-w``).
    n_points:
        Number of aligned positions at equal relative indices; 2 compares
        origin and destination only, as in the original formulation.
    """
    if spatial_scale <= 0 or temporal_scale <= 0:
        raise ValueError("spatial_scale and temporal_scale must be positive")
    if not 0.0 <= weight <= 1.0:
        raise ValueError(f"weight must be in [0, 1], got {weight}")
    if n_points < 1:
        raise ValueError(f"n_points must be >= 1, got {n_points}")
    if len(a) == 0 or len(b) == 0:
        raise ValueError("WGM is undefined for empty trajectories")

    idx_a = np.round(np.linspace(0, len(a) - 1, n_points)).astype(int)
    idx_b = np.round(np.linspace(0, len(b) - 1, n_points)).astype(int)
    total = 0.0
    for i, j in zip(idx_a, idx_b):
        pa, pb = a[int(i)], b[int(j)]
        spatial = np.exp(-pa.distance_to(pb) / spatial_scale)
        temporal = np.exp(-abs(pa.t - pb.t) / temporal_scale)
        total += spatial**weight * temporal ** (1.0 - weight)
    return float(total / n_points)


class WGM(Measure):
    """WGM as a :class:`Measure` (similarity in ``[0, 1]``)."""

    name = "WGM"
    higher_is_better = True

    def __init__(
        self,
        spatial_scale: float,
        temporal_scale: float,
        weight: float = 0.5,
        n_points: int = 2,
    ):
        if spatial_scale <= 0 or temporal_scale <= 0:
            raise ValueError("spatial_scale and temporal_scale must be positive")
        self.spatial_scale = float(spatial_scale)
        self.temporal_scale = float(temporal_scale)
        self.weight = float(weight)
        self.n_points = int(n_points)

    def __call__(self, a: Trajectory, b: Trajectory) -> float:
        return wgm_similarity(
            a, b, self.spatial_scale, self.temporal_scale, self.weight, self.n_points
        )
