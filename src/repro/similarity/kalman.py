"""KF baseline — Kalman smoothing + resampling + DTW (Section VI-A).

The STS paper's KF baseline uses a Kalman filter "to estimate the object
location at a given time", then compares the estimated trajectories with
DTW.  We implement the standard constant-velocity model with white-noise
acceleration, a forward filter over the (irregularly spaced) observations,
a Rauch–Tung–Striebel backward smoother, and prediction-based location
estimates at arbitrary times.  Each trajectory is resampled at a fixed
number of uniformly spaced times over its own span before DTW, which
removes sampling heterogeneity but — unlike STS — commits to a single
point estimate and a linear-Gaussian motion model.
"""

from __future__ import annotations

import numpy as np

from ..core.trajectory import Trajectory
from .base import Measure
from .dtw import dtw_distance

__all__ = ["KalmanSmoother", "KF"]


def _transition(dt: float) -> np.ndarray:
    """Constant-velocity state transition over ``dt`` seconds."""
    f = np.eye(4)
    f[0, 2] = dt
    f[1, 3] = dt
    return f


def _process_noise(dt: float, accel_var: float) -> np.ndarray:
    """White-noise-acceleration process covariance over ``dt`` seconds."""
    dt2, dt3 = dt * dt, dt * dt * dt
    q = np.zeros((4, 4))
    q[0, 0] = q[1, 1] = dt3 / 3.0
    q[0, 2] = q[2, 0] = dt2 / 2.0
    q[1, 3] = q[3, 1] = dt2 / 2.0
    q[2, 2] = q[3, 3] = dt
    return accel_var * q


class KalmanSmoother:
    """Constant-velocity Kalman filter/smoother for one trajectory.

    Parameters
    ----------
    trajectory:
        Observations ``(x, y, t)``; at least one point.
    measurement_std:
        Localization error of the sensing system (meters).
    accel_std:
        Strength of the white-noise acceleration driving the motion model
        (m/s²); larger values let the estimate follow sharp turns.
    """

    _H = np.array([[1.0, 0.0, 0.0, 0.0], [0.0, 1.0, 0.0, 0.0]])

    def __init__(self, trajectory: Trajectory, measurement_std: float = 5.0, accel_std: float = 1.0):
        if len(trajectory) == 0:
            raise ValueError("cannot smooth an empty trajectory")
        if measurement_std <= 0 or accel_std <= 0:
            raise ValueError("measurement_std and accel_std must be positive")
        self.trajectory = trajectory
        self.measurement_std = float(measurement_std)
        self.accel_var = float(accel_std) ** 2
        self._times = trajectory.timestamps.copy()
        self._smoothed_means, self._smoothed_covs = self._run()

    # ------------------------------------------------------------------
    def _run(self) -> tuple[np.ndarray, np.ndarray]:
        xy = self.trajectory.xy
        times = self._times
        n = len(times)
        r = self.measurement_std**2 * np.eye(2)
        h = self._H

        means = np.zeros((n, 4))
        covs = np.zeros((n, 4, 4))
        pred_means = np.zeros((n, 4))
        pred_covs = np.zeros((n, 4, 4))

        # Initial state: first observation, zero velocity, broad covariance.
        mean = np.array([xy[0, 0], xy[0, 1], 0.0, 0.0])
        cov = np.diag([r[0, 0], r[1, 1], 25.0, 25.0])
        pred_means[0], pred_covs[0] = mean, cov
        mean, cov = self._update(mean, cov, xy[0], r, h)
        means[0], covs[0] = mean, cov

        for k in range(1, n):
            dt = float(times[k] - times[k - 1])
            f = _transition(dt)
            q = _process_noise(dt, self.accel_var)
            mean = f @ mean
            cov = f @ cov @ f.T + q
            pred_means[k], pred_covs[k] = mean, cov
            mean, cov = self._update(mean, cov, xy[k], r, h)
            means[k], covs[k] = mean, cov

        # Rauch–Tung–Striebel backward pass.
        smoothed_means = means.copy()
        smoothed_covs = covs.copy()
        for k in range(n - 2, -1, -1):
            dt = float(times[k + 1] - times[k])
            f = _transition(dt)
            gain = covs[k] @ f.T @ np.linalg.pinv(pred_covs[k + 1])
            smoothed_means[k] = means[k] + gain @ (smoothed_means[k + 1] - pred_means[k + 1])
            smoothed_covs[k] = covs[k] + gain @ (smoothed_covs[k + 1] - pred_covs[k + 1]) @ gain.T
        return smoothed_means, smoothed_covs

    @staticmethod
    def _update(mean, cov, z, r, h):
        innovation = z - h @ mean
        s = h @ cov @ h.T + r
        gain = cov @ h.T @ np.linalg.inv(s)
        mean = mean + gain @ innovation
        cov = (np.eye(4) - gain @ h) @ cov
        return mean, cov

    # ------------------------------------------------------------------
    @property
    def smoothed_positions(self) -> np.ndarray:
        """``(n, 2)`` smoothed locations at the observation times."""
        return self._smoothed_means[:, :2].copy()

    def estimate(self, t: float) -> tuple[float, float]:
        """Estimated location at an arbitrary time ``t``.

        Within the span: constant-velocity prediction from the most recent
        smoothed state.  Before/after the span: prediction from the first/
        last smoothed state (extrapolation).
        """
        times = self._times
        if t <= times[0]:
            base = 0
        else:
            base = int(np.searchsorted(times, t, side="right") - 1)
            base = min(base, len(times) - 1)
        state = self._smoothed_means[base]
        dt = float(t - times[base])
        return (float(state[0] + state[2] * dt), float(state[1] + state[3] * dt))

    def resample(self, n_points: int) -> np.ndarray:
        """``(n_points, 2)`` locations at uniform times over the span."""
        if n_points < 1:
            raise ValueError(f"n_points must be >= 1, got {n_points}")
        if len(self._times) == 1 or self._times[0] == self._times[-1]:
            return np.tile(self.smoothed_positions[0], (n_points, 1))
        times = np.linspace(self._times[0], self._times[-1], n_points)
        return np.array([self.estimate(float(t)) for t in times])


class KF(Measure):
    """Kalman-estimate + DTW baseline as a :class:`Measure` (distance).

    Parameters
    ----------
    measurement_std, accel_std:
        Passed to :class:`KalmanSmoother`.
    n_resample:
        Number of uniformly spaced estimates per trajectory fed to DTW.
    """

    name = "KF"
    higher_is_better = False

    def __init__(self, measurement_std: float = 5.0, accel_std: float = 1.0, n_resample: int = 30):
        self.measurement_std = float(measurement_std)
        self.accel_std = float(accel_std)
        self.n_resample = int(n_resample)
        self._cache: dict[int, tuple[Trajectory, np.ndarray]] = {}

    def _resampled(self, trajectory: Trajectory) -> np.ndarray:
        key = id(trajectory)
        hit = self._cache.get(key)
        if hit is not None and hit[0] is trajectory:
            return hit[1]
        smoother = KalmanSmoother(trajectory, self.measurement_std, self.accel_std)
        points = smoother.resample(self.n_resample)
        self._cache[key] = (trajectory, points)
        return points

    def __call__(self, a: Trajectory, b: Trajectory) -> float:
        return dtw_distance(self._resampled(a), self._resampled(b))

    def clear_cache(self) -> None:
        """Release cached smoothed resamplings."""
        self._cache.clear()
