"""SST — Synchronized Spatial-Temporal trajectory similarity (Zhao et al.,
GeoInformatica 2020).

SST matches points of one trajectory against the other *synchronously*:
each point ``p`` of ``Tra₁`` is compared against where ``Tra₂`` was at
``p``'s own timestamp.  Within the other trajectory's time span this is a
point-to-segment comparison (the bracketing segment, linearly traversed —
the "minimal point-to-segment" strategy); outside the span, the nearest
endpoint is used with an additional temporal decay ("maximal
point-to-point").  Spatial and temporal proximities decay exponentially,
and the similarity is the symmetric average over both trajectories'
points.
"""

from __future__ import annotations

import numpy as np

from ..core.trajectory import Trajectory
from .base import Measure

__all__ = ["SST", "sst_similarity"]


def _directed_score(a: Trajectory, b: Trajectory, spatial_scale: float, temporal_scale: float) -> float:
    scores = np.zeros(len(a))
    for i, p in enumerate(a):
        if b.covers_time(p.t):
            # Synchronized point-to-segment: compare with B's position at
            # p's own timestamp.
            bx, by = b.interpolate_at(p.t)
            d = float(np.hypot(p.x - bx, p.y - by))
            scores[i] = np.exp(-d / spatial_scale)
        else:
            # Outside B's span: nearest endpoint, penalized by the time gap.
            endpoint = b[0] if p.t < b.start_time else b[-1]
            d = p.distance_to(endpoint)
            gap = abs(p.t - endpoint.t)
            scores[i] = np.exp(-d / spatial_scale) * np.exp(-gap / temporal_scale)
    return float(scores.mean())


def sst_similarity(
    a: Trajectory, b: Trajectory, spatial_scale: float, temporal_scale: float
) -> float:
    """Symmetric SST similarity in ``[0, 1]``."""
    if spatial_scale <= 0 or temporal_scale <= 0:
        raise ValueError("spatial_scale and temporal_scale must be positive")
    if len(a) == 0 or len(b) == 0:
        raise ValueError("SST is undefined for empty trajectories")
    forward = _directed_score(a, b, spatial_scale, temporal_scale)
    backward = _directed_score(b, a, spatial_scale, temporal_scale)
    return 0.5 * (forward + backward)


class SST(Measure):
    """SST as a :class:`Measure` (similarity in ``[0, 1]``).

    Parameters
    ----------
    spatial_scale:
        Distance (meters) at which spatial proximity decays to ``1/e``.
    temporal_scale:
        Time gap (seconds) at which the out-of-span penalty decays to
        ``1/e``.
    """

    name = "SST"
    higher_is_better = True

    def __init__(self, spatial_scale: float, temporal_scale: float):
        if spatial_scale <= 0 or temporal_scale <= 0:
            raise ValueError("spatial_scale and temporal_scale must be positive")
        self.spatial_scale = float(spatial_scale)
        self.temporal_scale = float(temporal_scale)

    def __call__(self, a: Trajectory, b: Trajectory) -> float:
        return sst_similarity(a, b, self.spatial_scale, self.temporal_scale)
