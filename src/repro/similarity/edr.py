"""Edit Distance on Real sequence (Chen, Özsu & Oria, SIGMOD 2005).

EDR counts the minimum number of edit operations (insert, delete,
substitute) needed to transform one trajectory into the other, where two
points are "equal" when within a spatial threshold ``epsilon``.  Unlike
DTW it assigns unit cost to unmatched points, making it robust to outliers
but still threshold-dependent (Section II of the STS paper).
"""

from __future__ import annotations

import numpy as np

from ..core.trajectory import Trajectory
from .base import Measure

__all__ = ["EDR", "edr_distance"]


def edr_distance(a: np.ndarray, b: np.ndarray, epsilon: float) -> float:
    """EDR between two ``(n, 2)`` point arrays (integer-valued edit count)."""
    if epsilon <= 0:
        raise ValueError(f"epsilon must be positive, got {epsilon}")
    a = np.asarray(a, dtype=float).reshape(-1, 2)
    b = np.asarray(b, dtype=float).reshape(-1, 2)
    n, m = len(a), len(b)
    if n == 0 or m == 0:
        raise ValueError("EDR is undefined for empty sequences")

    diff = a[:, None, :] - b[None, :, :]
    match = np.hypot(diff[..., 0], diff[..., 1]) <= epsilon

    table = np.zeros((n + 1, m + 1), dtype=float)
    table[:, 0] = np.arange(n + 1)
    table[0, :] = np.arange(m + 1)
    for i in range(1, n + 1):
        for j in range(1, m + 1):
            subcost = 0.0 if match[i - 1, j - 1] else 1.0
            table[i, j] = min(
                table[i - 1, j - 1] + subcost,  # match / substitute
                table[i - 1, j] + 1.0,  # delete from a
                table[i, j - 1] + 1.0,  # insert from b
            )
    return float(table[n, m])


class EDR(Measure):
    """EDR as a :class:`Measure` (distance: lower = more similar)."""

    name = "EDR"
    higher_is_better = False

    def __init__(self, epsilon: float):
        if epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        self.epsilon = float(epsilon)

    def __call__(self, a: Trajectory, b: Trajectory) -> float:
        return edr_distance(a.xy, b.xy, self.epsilon)
