"""Trajectory similarity measures: classics and the paper's baselines.

Classic spatial measures (Section II background): DTW, LCSS, EDR, ERP,
discrete Fréchet, Hausdorff.  Baselines evaluated against STS in the paper
(Section VI-A): CATS, EDwP, APM, KF, WGM, SST.
"""

from .apm import APM, calibrate_to_anchors
from .base import Measure, available_measures, get_measure_factory, register_measure
from .cats import CATS, cats_similarity
from .dtw import DTW, dtw_distance
from .edr import EDR, edr_distance
from .edwp import EDwP, edwp_distance
from .erp import ERP, erp_distance
from .frechet import Frechet, frechet_distance
from .hausdorff import Hausdorff, hausdorff_distance
from .kalman import KF, KalmanSmoother
from .lcss import LCSS, lcss_similarity
from .sst import SST, sst_similarity
from .stlip import STLIP, lip_distance, stlip_distance
from .wgm import WGM, wgm_similarity

__all__ = [
    "Measure",
    "register_measure",
    "available_measures",
    "get_measure_factory",
    "DTW",
    "dtw_distance",
    "LCSS",
    "lcss_similarity",
    "EDR",
    "edr_distance",
    "ERP",
    "erp_distance",
    "Frechet",
    "frechet_distance",
    "Hausdorff",
    "hausdorff_distance",
    "CATS",
    "cats_similarity",
    "EDwP",
    "edwp_distance",
    "APM",
    "calibrate_to_anchors",
    "KF",
    "KalmanSmoother",
    "WGM",
    "wgm_similarity",
    "SST",
    "sst_similarity",
    "STLIP",
    "stlip_distance",
    "lip_distance",
]

for _name, _factory in [
    ("dtw", DTW),
    ("lcss", LCSS),
    ("edr", EDR),
    ("erp", ERP),
    ("frechet", Frechet),
    ("hausdorff", Hausdorff),
    ("cats", CATS),
    ("edwp", EDwP),
    ("apm", APM),
    ("kf", KF),
    ("wgm", WGM),
    ("sst", SST),
    ("stlip", STLIP),
]:
    register_measure(_name, _factory)
del _name, _factory
