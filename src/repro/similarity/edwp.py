"""EDwP — Edit Distance with Projections (Ranu et al., ICDE 2015).

EDwP compares trajectories as sequences of *segments* rather than points,
which makes it robust to inconsistent sampling rates: before matching, a
point of one trajectory may be *projected* onto a segment of the other,
effectively inserting the sample the other trajectory "missed".  Two
operations drive the dynamic program:

* **replacement** — match segment ``e₁ = (p_i, p_{i+1})`` of one trajectory
  against segment ``e₂ = (q_j, q_{j+1})`` of the other at cost
  ``rep(e₁, e₂) · cov(e₁, e₂)``, where ``rep`` is the sum of distances
  between corresponding endpoints and ``cov`` (coverage) is the total
  length of the two segments — long mismatched segments cost more;
* **insertion** — advance one trajectory by a segment while the other
  stays on its current point, matching against the projection of that
  point onto the advancing segment.

The authors' reference implementation is Java (the STS paper used it
as-is); this is a from-scratch Python realization of the published
recursion.  EDwP is spatial-only — timestamps are ignored — which is why
the STS paper finds it competitive outdoors but weak indoors.
"""

from __future__ import annotations

import numpy as np

from ..core.trajectory import Trajectory
from .base import Measure

__all__ = ["EDwP", "edwp_distance"]


def _projection_tables(p: np.ndarray, q: np.ndarray):
    """Vectorized projection geometry of every point onto every edge.

    For each edge ``(p_i, p_{i+1})`` and each point ``q_j`` returns:

    * ``along[i, j]`` — distance from ``p_i`` to the clamped projection;
    * ``remain[i, j]`` — distance from the projection to ``p_{i+1}``;
    * ``perp[i, j]`` — distance from ``q_j`` to its projection.
    """
    seg = p[1:] - p[:-1]  # (n-1, 2)
    seg_len2 = np.einsum("ij,ij->i", seg, seg)  # (n-1,)
    rel = q[None, :, :] - p[:-1, None, :]  # (n-1, m, 2)
    with np.errstate(invalid="ignore", divide="ignore"):
        w = np.einsum("imj,ij->im", rel, seg) / seg_len2[:, None]
    w = np.nan_to_num(w, nan=0.0)
    w = np.clip(w, 0.0, 1.0)
    proj = p[:-1, None, :] + w[:, :, None] * seg[None, :, :].transpose(1, 0, 2)
    seg_len = np.sqrt(seg_len2)
    along = w * seg_len[:, None]
    remain = (1.0 - w) * seg_len[:, None]
    perp = np.hypot(q[None, :, 0] - proj[:, :, 0], q[None, :, 1] - proj[:, :, 1])
    return along, remain, perp


def edwp_distance(a: np.ndarray, b: np.ndarray) -> float:
    """EDwP distance between two ``(n, 2)`` point arrays.

    Dynamic program over three alignment states per ``(i, j)``:

    * ``N[i, j]`` — both trajectories are at original points ``p_i``, ``q_j``;
    * ``P[i, j]`` — ``q`` is at ``q_j`` while ``p`` is mid-edge ``(p_i,
      p_{i+1})`` at the projection of ``q_j`` (an insertion split ``p``'s
      edge there);
    * ``Q[i, j]`` — symmetric, ``q``'s edge was split.

    An insertion matches the other trajectory's next edge against the
    sub-edge up to the projection, and the remainder of the split edge is
    carried forward — which is what lets a downsampled trajectory align
    with its dense original at (near-)zero cost.  Zero for identical
    sequences; grows with both displacement and mismatched edge length.

    All geometry (pairwise distances, projections) is precomputed in
    vectorized tables; repeated splits of the same edge project onto the
    full original edge, so the split position depends only on ``(i, j)``.
    Each transition charges ``rep·cov`` (endpoint distances × covered
    length); when both edges are degenerate points, ``rep`` alone is
    charged so lone points still cost their displacement.
    """
    p = np.asarray(a, dtype=float).reshape(-1, 2)
    q = np.asarray(b, dtype=float).reshape(-1, 2)
    if len(p) == 0 or len(q) == 0:
        raise ValueError("EDwP is undefined for empty sequences")
    # A lone point acts as a degenerate edge so the DP below is uniform.
    if len(p) == 1:
        p = np.vstack([p, p])
    if len(q) == 1:
        q = np.vstack([q, q])
    n, m = len(p), len(q)

    # Precomputed geometry, converted to nested lists: plain-float
    # indexing is several times faster than numpy scalars in the DP loop.
    dist_pq = np.hypot(
        p[:, None, 0] - q[None, :, 0], p[:, None, 1] - q[None, :, 1]
    ).tolist()
    lp = np.hypot(*(p[1:] - p[:-1]).T).tolist()
    lq = np.hypot(*(q[1:] - q[:-1]).T).tolist()
    # q_j projected onto p-edges, and p_i projected onto q-edges.
    ap, bp, dp_perp = (t.tolist() for t in _projection_tables(p, q))
    aq, bq, dq_perp = (t.tolist() for t in _projection_tables(q, p))

    big = float("inf")
    state_n = [[big] * m for _ in range(n)]
    state_p = [[big] * m for _ in range(n)]  # p split on edge (i, i+1), q at j
    state_q = [[big] * m for _ in range(n)]  # q split on edge (j, j+1), p at i
    state_n[0][0] = 0.0

    for i in range(n):
        row_n = state_n[i]
        row_p = state_p[i]
        row_q = state_q[i]
        has_p_edge = i + 1 < n
        for j in range(m):
            has_q_edge = j + 1 < m
            base = row_n[j]
            if base < big:
                d_ij = dist_pq[i][j]
                if has_p_edge and has_q_edge:
                    # Replacement: consume one edge on each side.
                    rep = d_ij + dist_pq[i + 1][j + 1]
                    cov = lp[i] + lq[j]
                    cost = base + (rep * cov if cov > 0.0 else rep)
                    if cost < state_n[i + 1][j + 1]:
                        state_n[i + 1][j + 1] = cost
                    # Insertion into p: match q's edge against the p
                    # sub-edge up to the projection of q_{j+1}.
                    rep = d_ij + dp_perp[i][j + 1]
                    cov = ap[i][j + 1] + lq[j]
                    cost = base + (rep * cov if cov > 0.0 else rep)
                    if cost < row_p[j + 1]:
                        row_p[j + 1] = cost
                    # Insertion into q (symmetric).
                    rep = d_ij + dq_perp[j][i + 1]
                    cov = lp[i] + aq[j][i + 1]
                    cost = base + (rep * cov if cov > 0.0 else rep)
                    if cost < state_q[i + 1][j]:
                        state_q[i + 1][j] = cost
                if has_p_edge:
                    # Degenerate advance: p's edge vs the stationary q_j.
                    rep = d_ij + dist_pq[i + 1][j]
                    cost = base + (rep * lp[i] if lp[i] > 0.0 else rep)
                    if cost < state_n[i + 1][j]:
                        state_n[i + 1][j] = cost
                if has_q_edge:
                    rep = d_ij + dist_pq[i][j + 1]
                    cost = base + (rep * lq[j] if lq[j] > 0.0 else rep)
                    if cost < row_n[j + 1]:
                        row_n[j + 1] = cost

            base = row_p[j]
            if base < big and has_p_edge:
                # p is mid-edge at the projection of q_j.
                s_to_qj = dp_perp[i][j]
                s_to_end = bp[i][j]
                if has_q_edge:
                    # Close the split edge against q's next edge.
                    rep = s_to_qj + dist_pq[i + 1][j + 1]
                    cov = s_to_end + lq[j]
                    cost = base + (rep * cov if cov > 0.0 else rep)
                    if cost < state_n[i + 1][j + 1]:
                        state_n[i + 1][j + 1] = cost
                    # Or split the same p-edge again for q_{j+1}.
                    rep = s_to_qj + dp_perp[i][j + 1]
                    cov = abs(ap[i][j + 1] - ap[i][j]) + lq[j]
                    cost = base + (rep * cov if cov > 0.0 else rep)
                    if cost < row_p[j + 1]:
                        row_p[j + 1] = cost
                # Close against the stationary endpoint when q is exhausted.
                rep = s_to_qj + dist_pq[i + 1][j]
                cost = base + (rep * s_to_end if s_to_end > 0.0 else rep)
                if cost < state_n[i + 1][j]:
                    state_n[i + 1][j] = cost

            base = row_q[j]
            if base < big and j + 1 < m:
                s_to_pi = dq_perp[j][i]
                s_to_end = bq[j][i]
                if has_p_edge:
                    rep = s_to_pi + dist_pq[i + 1][j + 1]
                    cov = s_to_end + lp[i]
                    cost = base + (rep * cov if cov > 0.0 else rep)
                    if cost < state_n[i + 1][j + 1]:
                        state_n[i + 1][j + 1] = cost
                    rep = s_to_pi + dq_perp[j][i + 1]
                    cov = abs(aq[j][i + 1] - aq[j][i]) + lp[i]
                    cost = base + (rep * cov if cov > 0.0 else rep)
                    if cost < state_q[i + 1][j]:
                        state_q[i + 1][j] = cost
                rep = s_to_pi + dist_pq[i][j + 1]
                cost = base + (rep * s_to_end if s_to_end > 0.0 else rep)
                if cost < row_n[j + 1]:
                    row_n[j + 1] = cost

    return float(state_n[n - 1][m - 1])


class EDwP(Measure):
    """EDwP as a :class:`Measure` (distance: lower = more similar)."""

    name = "EDwP"
    higher_is_better = False

    def __call__(self, a: Trajectory, b: Trajectory) -> float:
        return edwp_distance(a.xy, b.xy)
