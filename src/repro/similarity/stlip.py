"""STLIP — Spatio-Temporal Locality In-between Polylines (Pelekis et al.,
TIME 2007).

LIP measures the area enclosed *between* two polylines: co-located routes
enclose almost nothing, diverging routes enclose a lot.  STLIP scales the
spatial LIP by a temporal penalty so that routes traversed at different
times drift apart even when their geometry matches.

This implementation computes LIP by uniform arc-length parameterization:
both polylines are resampled at ``n_samples`` equal arc-length fractions
and the enclosed area is integrated as the trapezoid of the distances
between corresponding samples.  For non-self-intersecting, similarly
oriented routes this equals the polygon-decomposition LIP of the original
paper up to discretization; it is the standard simplification when the
full polygon arrangement machinery is not needed.  The temporal penalty
follows the paper's multiplicative form: ``STLIP = LIP · (1 + κ·TD)``
with ``TD`` the mean normalized time difference of corresponding samples.
"""

from __future__ import annotations

import numpy as np

from ..core.trajectory import Trajectory
from .base import Measure

__all__ = ["STLIP", "stlip_distance", "lip_distance"]


def _arc_length_parameterize(xy: np.ndarray, ts: np.ndarray, n_samples: int):
    """Resample a polyline at equal arc-length fractions.

    Returns ``(points, times)`` at ``n_samples`` positions.  A degenerate
    (stationary) polyline resamples to copies of its single location with
    times spread over its span.
    """
    seg = np.diff(xy, axis=0)
    seg_len = np.hypot(seg[:, 0], seg[:, 1]) if len(seg) else np.empty(0)
    cum = np.concatenate([[0.0], np.cumsum(seg_len)])
    total = cum[-1]
    fractions = np.linspace(0.0, 1.0, n_samples)
    if total == 0.0:
        points = np.tile(xy[0], (n_samples, 1))
        times = np.linspace(ts[0], ts[-1], n_samples)
        return points, times
    targets = fractions * total
    xs = np.interp(targets, cum, xy[:, 0])
    ys = np.interp(targets, cum, xy[:, 1])
    times = np.interp(targets, cum, ts)
    return np.column_stack([xs, ys]), times


def lip_distance(a: Trajectory, b: Trajectory, n_samples: int = 50) -> float:
    """Approximate area (m²) enclosed between the two routes."""
    if len(a) == 0 or len(b) == 0:
        raise ValueError("LIP is undefined for empty trajectories")
    if n_samples < 2:
        raise ValueError(f"n_samples must be >= 2, got {n_samples}")
    pa, _ = _arc_length_parameterize(a.xy, a.timestamps, n_samples)
    pb, _ = _arc_length_parameterize(b.xy, b.timestamps, n_samples)
    gaps = np.hypot(pa[:, 0] - pb[:, 0], pa[:, 1] - pb[:, 1])
    # Arc-length step of the midline between the two parameterizations.
    mid = 0.5 * (pa + pb)
    steps = np.hypot(*np.diff(mid, axis=0).T)
    return float(np.sum(0.5 * (gaps[:-1] + gaps[1:]) * steps))


def stlip_distance(
    a: Trajectory,
    b: Trajectory,
    kappa: float = 1.0,
    n_samples: int = 50,
) -> float:
    """STLIP: LIP scaled by the temporal-difference penalty.

    ``kappa`` weights how strongly time misalignment inflates the spatial
    distance; 0 reduces STLIP to LIP.
    """
    if kappa < 0:
        raise ValueError(f"kappa must be non-negative, got {kappa}")
    if len(a) == 0 or len(b) == 0:
        raise ValueError("STLIP is undefined for empty trajectories")
    pa, ta = _arc_length_parameterize(a.xy, a.timestamps, n_samples)
    pb, tb = _arc_length_parameterize(b.xy, b.timestamps, n_samples)
    gaps = np.hypot(pa[:, 0] - pb[:, 0], pa[:, 1] - pb[:, 1])
    mid = 0.5 * (pa + pb)
    steps = np.hypot(*np.diff(mid, axis=0).T)
    lip = float(np.sum(0.5 * (gaps[:-1] + gaps[1:]) * steps))
    span = max(a.duration, b.duration)
    if span == 0.0:
        temporal = 0.0 if ta[0] == tb[0] else 1.0
    else:
        temporal = float(np.mean(np.abs(ta - tb)) / span)
    return lip * (1.0 + kappa * temporal)


class STLIP(Measure):
    """STLIP as a :class:`Measure` (distance: lower = more similar)."""

    name = "STLIP"
    higher_is_better = False

    def __init__(self, kappa: float = 1.0, n_samples: int = 50):
        if kappa < 0:
            raise ValueError(f"kappa must be non-negative, got {kappa}")
        self.kappa = float(kappa)
        self.n_samples = int(n_samples)

    def __call__(self, a: Trajectory, b: Trajectory) -> float:
        return stlip_distance(a, b, kappa=self.kappa, n_samples=self.n_samples)
