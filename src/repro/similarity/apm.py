"""APM — Anchor-Point calibration + DTW (Su et al., SIGMOD 2013).

APM tackles heterogeneous sampling by *calibrating* every trajectory onto a
shared set of anchor points before comparison: each raw trajectory is
rewritten as the sequence of anchors it passes, so two trajectories of the
same path end up with (nearly) the same calibrated form regardless of how
they were sampled.  Following the STS paper's experimental setup
(Section VI-A), the anchors are the centers of the spatial grid, the
calibration is the geometry-based variant (walk each segment, emit the
nearest anchor at sub-cell steps, drop consecutive duplicates), and DTW is
the similarity metric applied afterwards.
"""

from __future__ import annotations

import numpy as np

from ..core.grid import Grid
from ..core.trajectory import Trajectory
from .base import Measure
from .dtw import dtw_distance

__all__ = ["APM", "calibrate_to_anchors"]


def calibrate_to_anchors(trajectory: Trajectory, grid: Grid, step_fraction: float = 0.5) -> np.ndarray:
    """Geometry-based calibration of a trajectory onto grid-center anchors.

    Each segment is traversed at steps of ``step_fraction × cell_size`` and
    the nearest anchor (cell center) recorded; consecutive duplicates are
    merged.  Returns the ``(k, 2)`` anchor sequence.
    """
    if len(trajectory) == 0:
        raise ValueError("cannot calibrate an empty trajectory")
    if not 0 < step_fraction <= 1:
        raise ValueError(f"step_fraction must be in (0, 1], got {step_fraction}")
    step = step_fraction * grid.cell_size
    xy = trajectory.xy
    cells: list[int] = [int(grid.cell_of(xy[0, 0], xy[0, 1]))]
    for k in range(len(xy) - 1):
        seg = xy[k + 1] - xy[k]
        length = float(np.hypot(seg[0], seg[1]))
        n_steps = max(1, int(np.ceil(length / step)))
        for s in range(1, n_steps + 1):
            point = xy[k] + (s / n_steps) * seg
            cell = int(grid.cell_of(point[0], point[1]))
            if cell != cells[-1]:
                cells.append(cell)
    return np.array([grid.center_of(c) for c in cells])


class APM(Measure):
    """APM as a :class:`Measure` (DTW distance after anchor calibration).

    Parameters
    ----------
    grid:
        The anchor lattice (the experiments reuse the STS grid).
    step_fraction:
        Segment traversal resolution as a fraction of the cell size.
    """

    name = "APM"
    higher_is_better = False

    def __init__(self, grid: Grid, step_fraction: float = 0.5):
        self.grid = grid
        self.step_fraction = float(step_fraction)
        self._cache: dict[int, tuple[Trajectory, np.ndarray]] = {}

    def _calibrated(self, trajectory: Trajectory) -> np.ndarray:
        key = id(trajectory)
        hit = self._cache.get(key)
        if hit is not None and hit[0] is trajectory:
            return hit[1]
        anchors = calibrate_to_anchors(trajectory, self.grid, self.step_fraction)
        self._cache[key] = (trajectory, anchors)
        return anchors

    def __call__(self, a: Trajectory, b: Trajectory) -> float:
        return dtw_distance(self._calibrated(a), self._calibrated(b))

    def clear_cache(self) -> None:
        """Release cached calibrations."""
        self._cache.clear()
