"""Discrete Fréchet distance (after Eiter & Mannila, 1994).

The Fréchet distance is the classic "dog-leash" measure: the smallest leash
length that lets a walker traverse one curve while the dog traverses the
other, both moving monotonically.  The STS paper (Section II) notes it is
very sensitive to noise and sporadic sampling — a single outlier point sets
the whole distance — which is exactly the behaviour our robustness
experiments exhibit.
"""

from __future__ import annotations

import numpy as np

from ..core.trajectory import Trajectory
from .base import Measure

__all__ = ["Frechet", "frechet_distance"]


def frechet_distance(a: np.ndarray, b: np.ndarray) -> float:
    """Discrete Fréchet distance between two ``(n, 2)`` point arrays."""
    a = np.asarray(a, dtype=float).reshape(-1, 2)
    b = np.asarray(b, dtype=float).reshape(-1, 2)
    n, m = len(a), len(b)
    if n == 0 or m == 0:
        raise ValueError("Fréchet distance is undefined for empty sequences")

    diff = a[:, None, :] - b[None, :, :]
    cost = np.hypot(diff[..., 0], diff[..., 1])

    table = np.full((n, m), np.inf)
    table[0, 0] = cost[0, 0]
    for i in range(1, n):
        table[i, 0] = max(table[i - 1, 0], cost[i, 0])
    for j in range(1, m):
        table[0, j] = max(table[0, j - 1], cost[0, j])
    for i in range(1, n):
        for j in range(1, m):
            reach = min(table[i - 1, j], table[i - 1, j - 1], table[i, j - 1])
            table[i, j] = max(reach, cost[i, j])
    return float(table[n - 1, m - 1])


class Frechet(Measure):
    """Discrete Fréchet as a :class:`Measure` (distance)."""

    name = "Frechet"
    higher_is_better = False

    def __call__(self, a: Trajectory, b: Trajectory) -> float:
        return frechet_distance(a.xy, b.xy)
