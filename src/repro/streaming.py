"""Online co-location detection over a stream of location events.

The batch pipeline (trajectories in, STS out) assumes data at rest.  Live
deployments — group monitoring, real-time contact tracing ([6], [7] in the
paper) — instead see an unordered stream of ``(object, x, y, t)`` sighting
events.  :class:`StreamingColocationDetector` maintains a sliding window
of recent observations per object and, on demand, evaluates the STS
machinery over the windows of every concurrently-active pair.

The detector is deliberately windowed: the personalized speed model
(Eq. 6) is re-estimated from each window, so an object whose behaviour
changes (walk → drive) is re-personalized as old samples age out.

Serving hardening (admission control and graceful degradation):

* **Sanitized ingest** — events with non-finite coordinates or
  timestamps are rejected *before* they can touch stream time or a
  window (``on_error="raise"`` raises :class:`MalformedRecordError`,
  ``"skip"``/``"repair"`` drop and count them).
* **Bounded ingest queue** — :meth:`offer` enqueues into a bounded
  buffer instead of applying events inline; when the buffer is full the
  stalest sighting is shed and counted, so a producer outrunning the
  consumer degrades the data, never the memory.
* **Deadline-aware evaluation** — :meth:`evaluate` takes a ``deadline``
  (seconds) or a full :class:`~repro.serving.Budget` and scores pairs
  freshest-first through the :class:`~repro.serving.DeadlineScorer`
  degradation ladder; pairs that miss the cut are shed, and everything
  that happened lands in the :class:`~repro.serving.ServiceHealth`
  exposed as :attr:`last_health`.
* **Per-pair circuit breaker** — a pair that repeatedly fails to finish
  within its slice trips open and is skipped (with capped-backoff
  cooldown) instead of starving every other pair each tick.

Durability (crash-safe streaming):

* **Write-ahead journaling** — attach a
  :class:`~repro.streaming_wal.StreamingWAL` and every mutating command
  (:meth:`offer`, :meth:`ingest`, :meth:`drain`) is journaled *before*
  it touches detector state; shed/malformed/duplicate decisions are
  reproduced deterministically from the command stream on replay.
* **Snapshots** — detector state (windows, pending queue, stream
  clock, admission counters, breaker states, last pair scores) is
  snapshotted every ``snapshot_every`` journaled commands with the
  atomic write-rename idiom, bounding replay length.
* **Recovery** — :meth:`StreamingColocationDetector.recover` rebuilds a
  detector from a WAL directory: newest valid snapshot + deterministic
  replay of the journal tail.  The recovered detector's windows, queue
  and counters are bitwise-identical to an uncrashed run, and so are
  the :class:`PairScore` values it produces.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from math import isfinite
from typing import TYPE_CHECKING, Callable

from time import perf_counter

from .core.grid import Grid
from .core.noise import GaussianNoiseModel, NoiseModel
from .core.sts import STS
from .core.trajectory import Trajectory, TrajectoryPoint
from .errors import MalformedRecordError, ReproError, WALError, validate_policy
from .obs import MetricsRegistry, get_registry, merge_into_registry, trace_span
from .serving.breaker import CircuitBreaker
from .serving.budget import Budget
from .serving.health import ServiceEvent, ServiceHealth
from .serving.ladder import DeadlineScorer

if TYPE_CHECKING:  # pragma: no cover
    from .streaming_wal import RecoveryReport, StreamingWAL

__all__ = ["SightingEvent", "PairScore", "StreamingColocationDetector"]


@dataclass(frozen=True)
class SightingEvent:
    """One stream record: an object seen at a location at a time."""

    object_id: str
    x: float
    y: float
    t: float


@dataclass(frozen=True)
class PairScore:
    """STS of two objects' current windows at evaluation time.

    ``similarity`` is exact when ``completed`` is true; otherwise it is
    the midpoint of the rigorous ``[lower, upper]`` interval produced by
    whichever degradation ``rung`` answered before the deadline.
    """

    object_a: str
    object_b: str
    similarity: float
    lower: float | None = None
    upper: float | None = None
    rung: str = "full"
    completed: bool = True

    def __str__(self) -> str:
        base = f"{self.object_a} ~ {self.object_b}: {self.similarity:.4f}"
        if not self.completed and self.lower is not None:
            base += f" ∈ [{self.lower:.4f}, {self.upper:.4f}] ({self.rung})"
        return base


class StreamingColocationDetector:
    """Sliding-window co-location detection.

    Parameters
    ----------
    grid:
        Spatial partition of the monitored area.
    window:
        Sliding-window length in seconds; observations older than
        ``now - window`` are evicted.
    noise_model:
        Sensing noise; defaults to a Gaussian at the grid cell size.
    min_points:
        Minimum observations a window needs before the object is scored
        (below this the speed model is too degenerate to be meaningful).
    on_error:
        What to do with a malformed sighting (non-finite coordinate or
        timestamp): ``"raise"`` (default) raises
        :class:`MalformedRecordError`; ``"skip"``/``"repair"`` drop it
        and count it in :attr:`malformed_dropped`.
    max_pending:
        Capacity of the :meth:`offer` admission queue (``None`` =
        unbounded).  When full, the stalest sighting is shed and counted
        in :attr:`shed_events`.
    breaker:
        Per-pair :class:`~repro.serving.CircuitBreaker` for deadline
        evaluation; defaults to a fresh one (3 consecutive misses trip,
        capped exponential cooldown).
    measure_factory:
        Zero-argument callable building the per-evaluation measure;
        defaults to ``STS(grid, noise_model=noise_model)``.  An
        injection point for tests and for custom STS configurations.
    wal:
        Optional :class:`~repro.streaming_wal.StreamingWAL` for durable
        ingest (equivalent to calling :meth:`attach_wal` right after
        construction).

    Events may arrive slightly out of order; each object's window is kept
    time-sorted.  Eviction happens on ingest and on evaluation, driven by
    the newest timestamp seen so far ("stream time").

    Out-of-order and duplicate timestamps (pinned policy):

    * an event *older than the window horizon* is dropped outright
      (counted as ``late``), under every ``on_error`` policy;
    * an in-window, out-of-order event is accepted and the window
      re-sorted;
    * an event whose timestamp *exactly equals* an in-window observation
      of the same object is a **duplicate**: ``on_error="raise"``
      rejects it with :class:`MalformedRecordError` (after stream time
      advanced — the timestamp itself is valid), ``"skip"`` drops it
      (:attr:`duplicate_dropped`), ``"repair"`` keeps the *newer*
      sighting, overwriting the stored coordinates
      (:attr:`duplicate_repaired`, last-write-wins).  The decision is a
      pure function of prior state, so it replays identically across a
      crash-recovery boundary.
    """

    def __init__(
        self,
        grid: Grid,
        window: float = 600.0,
        noise_model: NoiseModel | None = None,
        min_points: int = 3,
        on_error: str = "raise",
        max_pending: int | None = None,
        breaker: CircuitBreaker | None = None,
        measure_factory: Callable[[], STS] | None = None,
        registry=None,
        wal: "StreamingWAL | None" = None,
    ):
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        if min_points < 1:
            raise ValueError(f"min_points must be >= 1, got {min_points}")
        if max_pending is not None and max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        self.grid = grid
        self.window = float(window)
        self.noise_model = noise_model if noise_model is not None else GaussianNoiseModel(grid.cell_size)
        self.min_points = int(min_points)
        self.on_error = validate_policy(on_error)
        self.max_pending = max_pending
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self._measure_factory = measure_factory
        self._windows: dict[str, deque[TrajectoryPoint]] = {}
        self._pending: deque[SightingEvent] = deque()
        self._now = float("-inf")
        #: Malformed sightings dropped at ingest (``on_error != "raise"``).
        self.malformed_dropped = 0
        #: Sightings shed by the bounded admission queue.
        self.shed_events = 0
        #: Duplicate-timestamp sightings dropped (``on_error="skip"``).
        self.duplicate_dropped = 0
        #: Duplicate-timestamp sightings that overwrote the stored
        #: observation (``on_error="repair"``, last-write-wins).
        self.duplicate_repaired = 0
        #: :class:`~repro.serving.ServiceHealth` of the last evaluation.
        self.last_health: ServiceHealth | None = None
        #: Scores returned by the last :meth:`evaluate` call (snapshotted
        #: into the WAL, restored by :meth:`recover`).
        self.last_scores: list[PairScore] = []
        #: :class:`~repro.streaming_wal.RecoveryReport` when this
        #: detector was built by :meth:`recover`.
        self.last_recovery: "RecoveryReport | None" = None
        self._wal: "StreamingWAL | None" = None
        self._wal_suspended = 0
        self._init_obs(registry if registry is not None else get_registry())
        if wal is not None:
            self.attach_wal(wal)

    def _init_obs(self, reg) -> None:
        """(Re)bind this detector's instruments to ``reg``.

        Called at construction, and again by :meth:`recover` to swap the
        replay onto a scratch registry and back: replayed commands are
        *recovery* work, not live ingest, so their increments must not
        inflate the live series (they are folded back under
        ``process="recovery"`` instead).
        """
        self._registry = reg
        events_counter = reg.counter(
            "repro_stream_events_total", "Sighting events by ingest outcome"
        )
        self._m_ingested = events_counter.child(outcome="ingested")
        self._m_malformed = events_counter.child(outcome="malformed")
        self._m_evt_shed = events_counter.child(outcome="shed")
        self._m_late = events_counter.child(outcome="late")
        self._m_duplicate = events_counter.child(outcome="duplicate")
        self._h_evaluate = reg.histogram(
            "repro_stream_evaluate_seconds", "Wall seconds per evaluate() call"
        ).child()
        reg.register_collector(self._collect_gauge_samples)

    def _collect_gauge_samples(self):
        """Snapshot-time queue-depth / active-window gauges."""
        active = sum(1 for win in self._windows.values() if win)
        return [
            ("gauge", "repro_stream_queue_depth", {}, len(self._pending)),
            ("gauge", "repro_stream_active_windows", {}, active),
        ]

    # ------------------------------------------------------------------
    # Durability (write-ahead log)
    # ------------------------------------------------------------------
    def attach_wal(self, wal: "StreamingWAL") -> "StreamingColocationDetector":
        """Journal every mutating command to ``wal`` from now on.

        Binds the WAL directory to this detector's configuration
        fingerprint (:class:`~repro.errors.WALError` on mismatch, or if
        the directory already holds history that only :meth:`recover`
        may consume).  Returns ``self`` for chaining.
        """
        if self._wal is not None:
            raise WALError("a WAL is already attached to this detector")
        wal.bind(self._durable_config())
        self._wal = wal
        return self

    @property
    def wal(self) -> "StreamingWAL | None":
        """The attached write-ahead log, if any."""
        return self._wal

    def close(self) -> None:
        """Flush and release the attached WAL (no-op without one)."""
        if self._wal is not None:
            self._wal.close()

    def __enter__(self) -> "StreamingColocationDetector":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _durable_config(self) -> dict:
        """JSON-serializable, RNG-free identity of this configuration.

        Fingerprinted into the WAL directory so recovery refuses to
        splice a journal into a detector with different semantics.
        """
        noise = self.noise_model
        if isinstance(noise, GaussianNoiseModel):
            noise_cfg = {
                "kind": "GaussianNoiseModel",
                "sigma": noise.sigma,
                "truncate": noise.truncate,
                "squared": noise.squared,
            }
        else:
            noise_cfg = {
                "kind": type(noise).__name__,
                "params": {
                    k: v
                    for k, v in sorted(vars(noise).items())
                    if isinstance(v, (int, float, str, bool))
                },
            }
        return {
            "grid": [
                self.grid.min_x,
                self.grid.min_y,
                self.grid.max_x,
                self.grid.max_y,
                self.grid.cell_size,
            ],
            "window": self.window,
            "min_points": self.min_points,
            "on_error": self.on_error,
            "max_pending": self.max_pending,
            "noise": noise_cfg,
            "custom_measure": self._measure_factory is not None,
        }

    def _journal(self, op: tuple) -> None:
        """Append one command to the WAL *before* applying it.

        Raises :class:`~repro.errors.WALWriteError` (and the caller must
        not mutate state) when the journal cannot accept the record.
        Suspended during :meth:`drain`'s internal ingests and during
        replay — those commands are consequences of already-journaled
        ones.
        """
        if self._wal is not None and not self._wal_suspended:
            self._wal.append(op)

    def _maybe_snapshot(self) -> None:
        if (
            self._wal is not None
            and not self._wal_suspended
            and self._wal.should_snapshot()
        ):
            self.snapshot()

    def snapshot(self):
        """Force a durable snapshot of detector state into the WAL."""
        if self._wal is None:
            raise WALError("no WAL attached; nothing to snapshot into")
        return self._wal.write_snapshot(self._state_dict())

    def _state_dict(self) -> dict:
        """Full mutable state, JSON-serializable, bitwise round-trippable.

        Floats survive exactly (JSON emits ``repr``, lossless for IEEE
        754 doubles; non-finite values use Python's ``Infinity``/``NaN``
        extension), so a restored detector is indistinguishable from the
        one that snapshotted.  Windows are stored raw — no eviction or
        normalization — to keep replay after the snapshot bit-exact.
        """
        return {
            "now": self._now,
            "windows": {
                oid: [[p.x, p.y, p.t] for p in win]
                for oid, win in self._windows.items()
            },
            "pending": [[e.object_id, e.x, e.y, e.t] for e in self._pending],
            "malformed_dropped": self.malformed_dropped,
            "shed_events": self.shed_events,
            "duplicate_dropped": self.duplicate_dropped,
            "duplicate_repaired": self.duplicate_repaired,
            "breaker": self.breaker.snapshot_states(),
            "last_scores": [
                [s.object_a, s.object_b, s.similarity, s.lower, s.upper, s.rung,
                 s.completed]
                for s in self.last_scores
            ],
        }

    def _restore_state(self, state: dict) -> None:
        self._now = float(state["now"])
        self._windows = {
            oid: deque(TrajectoryPoint(x, y, t) for x, y, t in points)
            for oid, points in state["windows"].items()
        }
        self._pending = deque(
            SightingEvent(oid, x, y, t) for oid, x, y, t in state["pending"]
        )
        self.malformed_dropped = int(state["malformed_dropped"])
        self.shed_events = int(state["shed_events"])
        self.duplicate_dropped = int(state.get("duplicate_dropped", 0))
        self.duplicate_repaired = int(state.get("duplicate_repaired", 0))
        self.breaker.restore_states(state.get("breaker", []))
        self.last_scores = [
            PairScore(a, b, sim, lower=lo, upper=up, rung=rung, completed=done)
            for a, b, sim, lo, up, rung, done in state.get("last_scores", [])
        ]

    def _apply_op(self, op: tuple) -> None:
        """Re-execute one journaled command during replay."""
        kind = op[0]
        try:
            if kind == "offer":
                self.offer(SightingEvent(op[1], op[2], op[3], op[4]))
            elif kind == "ingest":
                self.ingest(SightingEvent(op[1], op[2], op[3], op[4]))
            elif kind == "drain":
                limit = op[1]
                self.drain(None if limit < 0 else limit)
            else:  # pragma: no cover - load_wal rejects unknown op codes
                raise WALError(f"unknown journaled op {kind!r}")
        except MalformedRecordError:
            # The live run raised at exactly this point too (a malformed
            # or duplicate sighting under on_error="raise"); state had
            # advanced identically before the raise, so replay continues.
            pass

    @classmethod
    def recover(
        cls,
        wal_dir,
        *,
        noise_model: NoiseModel | None = None,
        measure_factory: Callable[[], STS] | None = None,
        breaker: CircuitBreaker | None = None,
        registry=None,
        fsync_every: int = 1,
        segment_max_records: int = 2048,
        snapshot_every: int | None = 512,
        keep_snapshots: int = 2,
    ) -> "StreamingColocationDetector":
        """Rebuild a detector from a WAL directory and resume ingest.

        Restores the newest valid snapshot, replays the journaled
        command tail deterministically (windows, pending queue, stream
        clock and admission counters come back bitwise-identical to an
        uncrashed run), truncates torn tail records (counted in
        ``repro_wal_records_total{outcome="truncated"}`` and in
        :attr:`last_recovery`), re-attaches the WAL at the next LSN and
        takes a fresh snapshot so a second crash replays almost nothing.
        Exactly-once: every command acknowledged durable before the
        crash is applied exactly once, and nothing else.

        Raises :class:`~repro.errors.WALError` when the directory holds
        no journal (or was written by a custom ``noise_model`` /
        ``measure_factory`` that must be passed back in), and
        :class:`~repro.errors.WALCorruptionError` on non-tail damage.
        """
        from .streaming_wal import StreamingWAL, load_wal

        t0 = perf_counter()
        reg = registry if registry is not None else get_registry()
        recovery = load_wal(wal_dir, registry=reg)
        config = recovery.config
        if noise_model is None:
            noise_cfg = config.get("noise", {})
            if noise_cfg.get("kind") != "GaussianNoiseModel":
                raise WALError(
                    f"WAL {wal_dir} was written with a "
                    f"{noise_cfg.get('kind', 'unknown')} noise model; pass "
                    "the same noise_model to recover()"
                )
            noise_model = GaussianNoiseModel(
                noise_cfg["sigma"],
                truncate=noise_cfg["truncate"],
                squared=noise_cfg["squared"],
            )
        if config.get("custom_measure") and measure_factory is None:
            raise WALError(
                f"WAL {wal_dir} was written with a custom measure_factory; "
                "pass the same factory to recover()"
            )
        detector = cls(
            Grid(*config["grid"]),
            window=config["window"],
            noise_model=noise_model,
            min_points=config["min_points"],
            on_error=config["on_error"],
            max_pending=config["max_pending"],
            breaker=breaker,
            measure_factory=measure_factory,
            registry=registry,
        )
        # Replay under a scratch registry: the journaled tail re-runs the
        # ingest path, and crediting those increments to the live series
        # would double-count every event that survived the crash.  The
        # scratch snapshot is folded back under process="recovery" so the
        # replay work stays visible without polluting live ingest series.
        scratch = MetricsRegistry() if getattr(reg, "enabled", False) else None
        if scratch is not None:
            detector._init_obs(scratch)
        if recovery.state is not None:
            detector._restore_state(recovery.state)
        detector._wal_suspended += 1
        try:
            for op in recovery.ops:
                detector._apply_op(op)
        finally:
            detector._wal_suspended -= 1
            if scratch is not None:
                detector._init_obs(reg)
        if scratch is not None:
            merge_into_registry(reg, scratch.snapshot(), {"process": "recovery"})
        wal = StreamingWAL(
            wal_dir,
            fsync_every=fsync_every,
            segment_max_records=segment_max_records,
            snapshot_every=snapshot_every,
            keep_snapshots=keep_snapshots,
            registry=registry,
        )
        wal.resume_at(recovery.next_lsn)
        detector.attach_wal(wal)
        detector.snapshot()
        recovery.report.elapsed_s = perf_counter() - t0
        detector.last_recovery = recovery.report
        reg.gauge(
            "repro_wal_recovery_seconds", "Wall seconds of the last recover()"
        ).set(recovery.report.elapsed_s)
        return detector

    # ------------------------------------------------------------------
    @property
    def stream_time(self) -> float:
        """Newest timestamp ingested so far (-inf before the first event)."""
        return self._now

    @property
    def active_objects(self) -> list[str]:
        """Objects currently holding at least one in-window observation."""
        for oid in self._windows:
            self._evict(oid)
        return sorted(oid for oid, win in self._windows.items() if win)

    # ------------------------------------------------------------------
    # Admission control
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Sightings accepted by :meth:`offer` but not yet applied."""
        return len(self._pending)

    @property
    def accepted_through(self) -> float:
        """Newest finite timestamp this detector has taken responsibility for.

        Covers both applied sightings (:attr:`stream_time`) and sightings
        still waiting in the admission queue.  A producer resuming after
        :meth:`recover` should skip everything at or before this mark:
        those events are already journaled, so re-offering them would
        double-apply (and trip the duplicate-timestamp policy).  ``-inf``
        until the first finite sighting is offered or ingested.
        """
        mark = self._now
        for event in self._pending:
            if isfinite(event.t) and event.t > mark:
                mark = event.t
        return mark

    def offer(self, event: SightingEvent) -> bool:
        """Enqueue a sighting without applying it (bounded admission).

        The producer-facing entry point: O(1), never scores anything,
        and never grows past ``max_pending``.  When the queue is full
        the *stalest* sighting — the older of the queue head and the
        incoming event — is shed and counted in :attr:`shed_events`.
        Returns ``True`` when ``event`` itself was admitted.

        With a WAL attached the command is journaled (and, per the
        fsync policy, made durable) before the queue changes; a journal
        failure raises :class:`~repro.errors.WALWriteError` and leaves
        the queue untouched.

        Queued events are applied by :meth:`drain` (called automatically
        at the start of :meth:`evaluate`).
        """
        self._journal(("offer", event.object_id, event.x, event.y, event.t))
        admitted = True
        if self.max_pending is not None and len(self._pending) >= self.max_pending:
            self.shed_events += 1
            self._m_evt_shed.inc()
            if self._pending and self._pending[0].t <= event.t:
                self._pending.popleft()
            else:
                admitted = False  # the incoming event is the stalest: shed it
        if admitted:
            self._pending.append(event)
        self._maybe_snapshot()
        return admitted

    def drain(self, limit: int | None = None) -> int:
        """Apply up to ``limit`` queued sightings (all by default).

        Returns the number applied.  Malformed queued events follow the
        detector's ``on_error`` policy, exactly as direct :meth:`ingest`.

        One ``drain`` journal record covers the whole batch: the queued
        events were journaled when offered, and applying them is a
        deterministic consequence, so replay re-executes the drain
        instead of re-journaling each event (exactly-once).
        """
        if self._pending:
            self._journal(("drain", -1 if limit is None else int(limit)))
        applied = 0
        self._wal_suspended += 1
        try:
            while self._pending and (limit is None or applied < limit):
                self.ingest(self._pending.popleft())
                applied += 1
        finally:
            self._wal_suspended -= 1
        self._maybe_snapshot()
        return applied

    # ------------------------------------------------------------------
    def ingest(self, event: SightingEvent) -> None:
        """Add one sighting; evicts expired observations as time advances.

        Malformed events (non-finite ``x``/``y``/``t``) are rejected
        *before* stream time advances — a single ``t=inf`` sighting must
        not poison the window horizon forever.  Events older than the
        current window lower bound are dropped outright (too late to
        matter).  Duplicate timestamps follow the pinned policy in the
        class docstring.  With a WAL attached, every state-changing
        command is journaled first.
        """
        ok = isfinite(event.x) and isfinite(event.y) and isfinite(event.t)
        if not ok and self.on_error == "raise":
            # Rejected before any mutation: nothing to journal.
            raise MalformedRecordError(
                f"sighting of {event.object_id!r} has non-finite fields: "
                f"x={event.x}, y={event.y}, t={event.t}"
            )
        self._journal(("ingest", event.object_id, event.x, event.y, event.t))
        if not ok:
            self.malformed_dropped += 1
            self._m_malformed.inc()
            return
        self._now = max(self._now, event.t)
        horizon = self._now - self.window
        if event.t < horizon:
            self._m_late.inc()
            self._maybe_snapshot()
            return
        window = self._windows.setdefault(event.object_id, deque())
        if window and event.t <= window[-1].t:
            # Out-of-order arrival: check the pinned duplicate policy.
            # Windows hold unique timestamps (this very check maintains
            # the invariant), so scanning back to the first older point
            # suffices.
            duplicate = None
            for i in range(len(window) - 1, -1, -1):
                if window[i].t == event.t:
                    duplicate = i
                    break
                if window[i].t < event.t:
                    break
            if duplicate is not None:
                if self.on_error == "raise":
                    raise MalformedRecordError(
                        f"duplicate timestamp t={event.t} for "
                        f"{event.object_id!r}: an observation at this instant "
                        "is already in the window"
                    )
                self._m_duplicate.inc()
                if self.on_error == "repair":
                    # Last-write-wins: the fresher sighting supersedes.
                    window[duplicate] = TrajectoryPoint(event.x, event.y, event.t)
                    self.duplicate_repaired += 1
                else:
                    self.duplicate_dropped += 1
                self._evict(event.object_id)
                self._maybe_snapshot()
                return
        self._m_ingested.inc()
        window.append(TrajectoryPoint(event.x, event.y, event.t))
        # Keep the window time-sorted under slight out-of-order arrival.
        if len(window) >= 2 and window[-2].t > window[-1].t:
            ordered = sorted(window, key=lambda p: p.t)
            window.clear()
            window.extend(ordered)
        self._evict(event.object_id)
        self._maybe_snapshot()

    def ingest_many(self, events) -> None:
        """Ingest an iterable of events."""
        for event in events:
            self.ingest(event)

    def _evict(self, object_id: str) -> None:
        horizon = self._now - self.window
        window = self._windows[object_id]
        while window and window[0].t < horizon:
            window.popleft()

    # ------------------------------------------------------------------
    def window_of(self, object_id: str) -> Trajectory:
        """The object's current window as a trajectory (may be empty)."""
        self._windows.setdefault(object_id, deque())
        self._evict(object_id)
        return Trajectory(list(self._windows[object_id]), object_id=object_id)

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def _make_measure(self) -> STS:
        if self._measure_factory is not None:
            return self._measure_factory()
        return STS(self.grid, noise_model=self.noise_model)

    @staticmethod
    def _resolve_budget(deadline: float | None, budget: Budget | None) -> Budget:
        if deadline is not None and budget is not None:
            raise ValueError("pass either deadline or budget, not both")
        if deadline is not None:
            if deadline < 0:
                raise ValueError(f"deadline must be >= 0 seconds, got {deadline}")
            budget = Budget(deadline_ms=deadline * 1000.0)
        elif budget is None:
            budget = Budget.unbounded()
        return budget.start()

    def _collect_windows(self) -> dict[str, Trajectory]:
        return {oid: self.window_of(oid) for oid in list(self._windows)}

    def _new_health(self, budget: Budget, windows: dict[str, Trajectory]) -> ServiceHealth:
        health = ServiceHealth(deadline_ms=budget.deadline_ms)
        # Lifetime admission counters, snapshotted at evaluation time.
        health.malformed_events = self.malformed_dropped
        health.shed_events = self.shed_events
        for oid, win in sorted(windows.items()):
            if 0 < len(win) < self.min_points:
                health.degenerate_objects += 1
                health.record(
                    ServiceEvent(
                        "degenerate",
                        oid,
                        f"{len(win)} point(s) < min_points={self.min_points}",
                    )
                )
        return health

    def _score_pairs(
        self,
        pairs: list[tuple[str, str]],
        windows: dict[str, Trajectory],
        budget: Budget,
        health: ServiceHealth,
        threshold: float,
    ) -> list[PairScore]:
        """Score ``pairs`` in order under ``budget``; the shared engine of
        :meth:`evaluate` and :meth:`companions_of`."""
        measure = self._make_measure()
        scorer = (
            DeadlineScorer(measure, registry=self._registry) if budget.bounded else None
        )
        scores: list[PairScore] = []
        for idx, (a, b) in enumerate(pairs):
            if budget.bounded and budget.expired():
                shed = len(pairs) - idx
                health.pairs_shed += shed
                health.deadline_hit = True
                for sa, sb in pairs[idx:]:
                    health.record(
                        ServiceEvent("shed-pair", f"{sa}~{sb}", "deadline expired")
                    )
                break
            key = (a, b)
            if not self.breaker.allow(key):
                health.breaker_skips += 1
                health.record(ServiceEvent("breaker-open", f"{a}~{b}"))
                continue
            try:
                if scorer is not None:
                    # Equal share of what is left for every unscored pair.
                    pair_budget = budget.sub_budget(
                        1.0 / (len(pairs) - idx), max_terms=budget.max_terms
                    )
                    result = scorer.score(
                        windows[a], windows[b],
                        budget=pair_budget, health=health, subject=f"{a}~{b}",
                    )
                    if result.completed:
                        self.breaker.record_success(key)
                    else:
                        health.pairs_partial += 1
                        if self.breaker.record_timeout(key):
                            health.breaker_trips += 1
                            health.record(
                                ServiceEvent(
                                    "breaker-trip", f"{a}~{b}",
                                    f"missed its slice on rung {result.rung}",
                                )
                            )
                    pair_score = PairScore(
                        a, b, result.value,
                        lower=result.lower, upper=result.upper,
                        rung=result.rung, completed=result.completed,
                    )
                else:
                    value = measure.similarity(windows[a], windows[b])
                    health.take_rung("full", f"{a}~{b}")
                    self.breaker.record_success(key)
                    pair_score = PairScore(a, b, value)
            except ReproError as exc:
                # A window eviction reduced below what STS can score —
                # skip and count, never crash the serving loop.
                health.degenerate_pairs += 1
                health.record(
                    ServiceEvent(
                        "degenerate", f"{a}~{b}", f"{type(exc).__name__}: {exc}"
                    )
                )
                continue
            health.pairs_scored += 1
            if pair_score.similarity > threshold:
                scores.append(pair_score)
        health.elapsed_ms = budget.elapsed_ms()
        if budget.deadline_ms is not None and health.elapsed_ms >= budget.deadline_ms:
            health.deadline_hit = True
        scores.sort(key=lambda s: -s.similarity)
        return scores

    def _freshest_first(
        self, pairs: list[tuple[str, str]], windows: dict[str, Trajectory]
    ) -> list[tuple[str, str]]:
        """Order pairs so the stalest are scored last (and shed first)."""
        return sorted(
            pairs,
            key=lambda ab: (
                -min(windows[ab[0]].end_time, windows[ab[1]].end_time),
                ab,
            ),
        )

    def evaluate(
        self,
        threshold: float = 0.0,
        deadline: float | None = None,
        budget: Budget | None = None,
    ) -> list[PairScore]:
        """STS over every scorable pair of active objects, best first.

        A fresh :class:`STS` instance is built per evaluation so windows
        are re-personalized; only pairs scoring above ``threshold`` are
        returned.

        ``deadline`` (seconds) or ``budget`` bounds the call: pairs are
        scored freshest-first through the degradation ladder, each in an
        equal share of the remaining time; pairs the deadline cannot
        reach are shed (stalest first).  The full account — rungs taken,
        partial bounds, shed pairs, breaker activity — is in
        :attr:`last_health` after the call.
        """
        t0 = perf_counter()
        with trace_span("stream.evaluate"):
            self.drain()
            budget = self._resolve_budget(deadline, budget)
            windows = self._collect_windows()
            health = self._new_health(budget, windows)
            scorable = sorted(
                oid for oid, w in windows.items() if len(w) >= self.min_points
            )
            pairs = [(a, b) for i, a in enumerate(scorable) for b in scorable[i + 1 :]]
            pairs = self._freshest_first(pairs, windows)
            scores = self._score_pairs(pairs, windows, budget, health, threshold)
        self._h_evaluate.observe(perf_counter() - t0)
        if getattr(self._registry, "enabled", False):
            health.metrics = self._registry.snapshot()
        self.last_health = health
        self.last_scores = scores
        return scores

    def companions_of(
        self,
        object_id: str,
        threshold: float = 0.0,
        deadline: float | None = None,
        budget: Budget | None = None,
    ) -> list[PairScore]:
        """Pairs involving ``object_id`` above ``threshold``, best first.

        Accepts the same ``deadline``/``budget`` bounds as
        :meth:`evaluate`.
        """
        self.drain()
        budget = self._resolve_budget(deadline, budget)
        windows = self._collect_windows()
        health = self._new_health(budget, windows)
        target = windows.get(object_id)
        if target is None or len(target) < self.min_points:
            self.last_health = health
            return []
        pairs = [
            (object_id, oid)
            for oid in sorted(windows)
            if oid != object_id and len(windows[oid]) >= self.min_points
        ]
        pairs = self._freshest_first(pairs, windows)
        scores = self._score_pairs(pairs, windows, budget, health, threshold)
        self.last_health = health
        self.last_scores = scores
        return scores
