"""Online co-location detection over a stream of location events.

The batch pipeline (trajectories in, STS out) assumes data at rest.  Live
deployments — group monitoring, real-time contact tracing ([6], [7] in the
paper) — instead see an unordered stream of ``(object, x, y, t)`` sighting
events.  :class:`StreamingColocationDetector` maintains a sliding window
of recent observations per object and, on demand, evaluates the STS
machinery over the windows of every concurrently-active pair.

The detector is deliberately windowed: the personalized speed model
(Eq. 6) is re-estimated from each window, so an object whose behaviour
changes (walk → drive) is re-personalized as old samples age out.

Serving hardening (admission control and graceful degradation):

* **Sanitized ingest** — events with non-finite coordinates or
  timestamps are rejected *before* they can touch stream time or a
  window (``on_error="raise"`` raises :class:`MalformedRecordError`,
  ``"skip"``/``"repair"`` drop and count them).
* **Bounded ingest queue** — :meth:`offer` enqueues into a bounded
  buffer instead of applying events inline; when the buffer is full the
  stalest sighting is shed and counted, so a producer outrunning the
  consumer degrades the data, never the memory.
* **Deadline-aware evaluation** — :meth:`evaluate` takes a ``deadline``
  (seconds) or a full :class:`~repro.serving.Budget` and scores pairs
  freshest-first through the :class:`~repro.serving.DeadlineScorer`
  degradation ladder; pairs that miss the cut are shed, and everything
  that happened lands in the :class:`~repro.serving.ServiceHealth`
  exposed as :attr:`last_health`.
* **Per-pair circuit breaker** — a pair that repeatedly fails to finish
  within its slice trips open and is skipped (with capped-backoff
  cooldown) instead of starving every other pair each tick.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from math import isfinite
from typing import Callable

from time import perf_counter

from .core.grid import Grid
from .core.noise import GaussianNoiseModel, NoiseModel
from .core.sts import STS
from .core.trajectory import Trajectory, TrajectoryPoint
from .errors import MalformedRecordError, ReproError, validate_policy
from .obs import get_registry, trace_span
from .serving.breaker import CircuitBreaker
from .serving.budget import Budget
from .serving.health import ServiceEvent, ServiceHealth
from .serving.ladder import DeadlineScorer

__all__ = ["SightingEvent", "PairScore", "StreamingColocationDetector"]


@dataclass(frozen=True)
class SightingEvent:
    """One stream record: an object seen at a location at a time."""

    object_id: str
    x: float
    y: float
    t: float


@dataclass(frozen=True)
class PairScore:
    """STS of two objects' current windows at evaluation time.

    ``similarity`` is exact when ``completed`` is true; otherwise it is
    the midpoint of the rigorous ``[lower, upper]`` interval produced by
    whichever degradation ``rung`` answered before the deadline.
    """

    object_a: str
    object_b: str
    similarity: float
    lower: float | None = None
    upper: float | None = None
    rung: str = "full"
    completed: bool = True

    def __str__(self) -> str:
        base = f"{self.object_a} ~ {self.object_b}: {self.similarity:.4f}"
        if not self.completed and self.lower is not None:
            base += f" ∈ [{self.lower:.4f}, {self.upper:.4f}] ({self.rung})"
        return base


class StreamingColocationDetector:
    """Sliding-window co-location detection.

    Parameters
    ----------
    grid:
        Spatial partition of the monitored area.
    window:
        Sliding-window length in seconds; observations older than
        ``now - window`` are evicted.
    noise_model:
        Sensing noise; defaults to a Gaussian at the grid cell size.
    min_points:
        Minimum observations a window needs before the object is scored
        (below this the speed model is too degenerate to be meaningful).
    on_error:
        What to do with a malformed sighting (non-finite coordinate or
        timestamp): ``"raise"`` (default) raises
        :class:`MalformedRecordError`; ``"skip"``/``"repair"`` drop it
        and count it in :attr:`malformed_dropped`.
    max_pending:
        Capacity of the :meth:`offer` admission queue (``None`` =
        unbounded).  When full, the stalest sighting is shed and counted
        in :attr:`shed_events`.
    breaker:
        Per-pair :class:`~repro.serving.CircuitBreaker` for deadline
        evaluation; defaults to a fresh one (3 consecutive misses trip,
        capped exponential cooldown).
    measure_factory:
        Zero-argument callable building the per-evaluation measure;
        defaults to ``STS(grid, noise_model=noise_model)``.  An
        injection point for tests and for custom STS configurations.

    Events may arrive slightly out of order; each object's window is kept
    time-sorted.  Eviction happens on ingest and on evaluation, driven by
    the newest timestamp seen so far ("stream time").
    """

    def __init__(
        self,
        grid: Grid,
        window: float = 600.0,
        noise_model: NoiseModel | None = None,
        min_points: int = 3,
        on_error: str = "raise",
        max_pending: int | None = None,
        breaker: CircuitBreaker | None = None,
        measure_factory: Callable[[], STS] | None = None,
        registry=None,
    ):
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        if min_points < 1:
            raise ValueError(f"min_points must be >= 1, got {min_points}")
        if max_pending is not None and max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        self.grid = grid
        self.window = float(window)
        self.noise_model = noise_model if noise_model is not None else GaussianNoiseModel(grid.cell_size)
        self.min_points = int(min_points)
        self.on_error = validate_policy(on_error)
        self.max_pending = max_pending
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self._measure_factory = measure_factory
        self._windows: dict[str, deque[TrajectoryPoint]] = {}
        self._pending: deque[SightingEvent] = deque()
        self._now = float("-inf")
        #: Malformed sightings dropped at ingest (``on_error != "raise"``).
        self.malformed_dropped = 0
        #: Sightings shed by the bounded admission queue.
        self.shed_events = 0
        #: :class:`~repro.serving.ServiceHealth` of the last evaluation.
        self.last_health: ServiceHealth | None = None
        reg = registry if registry is not None else get_registry()
        self._registry = reg
        events_counter = reg.counter(
            "repro_stream_events_total", "Sighting events by ingest outcome"
        )
        self._m_ingested = events_counter.child(outcome="ingested")
        self._m_malformed = events_counter.child(outcome="malformed")
        self._m_evt_shed = events_counter.child(outcome="shed")
        self._m_late = events_counter.child(outcome="late")
        self._h_evaluate = reg.histogram(
            "repro_stream_evaluate_seconds", "Wall seconds per evaluate() call"
        ).child()
        reg.register_collector(self._collect_gauge_samples)

    def _collect_gauge_samples(self):
        """Snapshot-time queue-depth / active-window gauges."""
        active = sum(1 for win in self._windows.values() if win)
        return [
            ("gauge", "repro_stream_queue_depth", {}, len(self._pending)),
            ("gauge", "repro_stream_active_windows", {}, active),
        ]

    # ------------------------------------------------------------------
    @property
    def stream_time(self) -> float:
        """Newest timestamp ingested so far (-inf before the first event)."""
        return self._now

    @property
    def active_objects(self) -> list[str]:
        """Objects currently holding at least one in-window observation."""
        for oid in self._windows:
            self._evict(oid)
        return sorted(oid for oid, win in self._windows.items() if win)

    # ------------------------------------------------------------------
    # Admission control
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Sightings accepted by :meth:`offer` but not yet applied."""
        return len(self._pending)

    def offer(self, event: SightingEvent) -> bool:
        """Enqueue a sighting without applying it (bounded admission).

        The producer-facing entry point: O(1), never scores anything,
        and never grows past ``max_pending``.  When the queue is full
        the *stalest* sighting — the older of the queue head and the
        incoming event — is shed and counted in :attr:`shed_events`.
        Returns ``True`` when ``event`` itself was admitted.

        Queued events are applied by :meth:`drain` (called automatically
        at the start of :meth:`evaluate`).
        """
        if self.max_pending is not None and len(self._pending) >= self.max_pending:
            self.shed_events += 1
            self._m_evt_shed.inc()
            if self._pending and self._pending[0].t <= event.t:
                self._pending.popleft()
            else:
                return False  # the incoming event is the stalest: shed it
        self._pending.append(event)
        return True

    def drain(self, limit: int | None = None) -> int:
        """Apply up to ``limit`` queued sightings (all by default).

        Returns the number applied.  Malformed queued events follow the
        detector's ``on_error`` policy, exactly as direct :meth:`ingest`.
        """
        applied = 0
        while self._pending and (limit is None or applied < limit):
            self.ingest(self._pending.popleft())
            applied += 1
        return applied

    # ------------------------------------------------------------------
    def ingest(self, event: SightingEvent) -> None:
        """Add one sighting; evicts expired observations as time advances.

        Malformed events (non-finite ``x``/``y``/``t``) are rejected
        *before* stream time advances — a single ``t=inf`` sighting must
        not poison the window horizon forever.  Events older than the
        current window lower bound are dropped outright (too late to
        matter).
        """
        if not (isfinite(event.x) and isfinite(event.y) and isfinite(event.t)):
            if self.on_error == "raise":
                raise MalformedRecordError(
                    f"sighting of {event.object_id!r} has non-finite fields: "
                    f"x={event.x}, y={event.y}, t={event.t}"
                )
            self.malformed_dropped += 1
            self._m_malformed.inc()
            return
        self._now = max(self._now, event.t)
        horizon = self._now - self.window
        if event.t < horizon:
            self._m_late.inc()
            return
        self._m_ingested.inc()
        window = self._windows.setdefault(event.object_id, deque())
        window.append(TrajectoryPoint(event.x, event.y, event.t))
        # Keep the window time-sorted under slight out-of-order arrival.
        if len(window) >= 2 and window[-2].t > window[-1].t:
            ordered = sorted(window, key=lambda p: p.t)
            window.clear()
            window.extend(ordered)
        self._evict(event.object_id)

    def ingest_many(self, events) -> None:
        """Ingest an iterable of events."""
        for event in events:
            self.ingest(event)

    def _evict(self, object_id: str) -> None:
        horizon = self._now - self.window
        window = self._windows[object_id]
        while window and window[0].t < horizon:
            window.popleft()

    # ------------------------------------------------------------------
    def window_of(self, object_id: str) -> Trajectory:
        """The object's current window as a trajectory (may be empty)."""
        self._windows.setdefault(object_id, deque())
        self._evict(object_id)
        return Trajectory(list(self._windows[object_id]), object_id=object_id)

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def _make_measure(self) -> STS:
        if self._measure_factory is not None:
            return self._measure_factory()
        return STS(self.grid, noise_model=self.noise_model)

    @staticmethod
    def _resolve_budget(deadline: float | None, budget: Budget | None) -> Budget:
        if deadline is not None and budget is not None:
            raise ValueError("pass either deadline or budget, not both")
        if deadline is not None:
            if deadline < 0:
                raise ValueError(f"deadline must be >= 0 seconds, got {deadline}")
            budget = Budget(deadline_ms=deadline * 1000.0)
        elif budget is None:
            budget = Budget.unbounded()
        return budget.start()

    def _collect_windows(self) -> dict[str, Trajectory]:
        return {oid: self.window_of(oid) for oid in list(self._windows)}

    def _new_health(self, budget: Budget, windows: dict[str, Trajectory]) -> ServiceHealth:
        health = ServiceHealth(deadline_ms=budget.deadline_ms)
        # Lifetime admission counters, snapshotted at evaluation time.
        health.malformed_events = self.malformed_dropped
        health.shed_events = self.shed_events
        for oid, win in sorted(windows.items()):
            if 0 < len(win) < self.min_points:
                health.degenerate_objects += 1
                health.record(
                    ServiceEvent(
                        "degenerate",
                        oid,
                        f"{len(win)} point(s) < min_points={self.min_points}",
                    )
                )
        return health

    def _score_pairs(
        self,
        pairs: list[tuple[str, str]],
        windows: dict[str, Trajectory],
        budget: Budget,
        health: ServiceHealth,
        threshold: float,
    ) -> list[PairScore]:
        """Score ``pairs`` in order under ``budget``; the shared engine of
        :meth:`evaluate` and :meth:`companions_of`."""
        measure = self._make_measure()
        scorer = (
            DeadlineScorer(measure, registry=self._registry) if budget.bounded else None
        )
        scores: list[PairScore] = []
        for idx, (a, b) in enumerate(pairs):
            if budget.bounded and budget.expired():
                shed = len(pairs) - idx
                health.pairs_shed += shed
                health.deadline_hit = True
                for sa, sb in pairs[idx:]:
                    health.record(
                        ServiceEvent("shed-pair", f"{sa}~{sb}", "deadline expired")
                    )
                break
            key = (a, b)
            if not self.breaker.allow(key):
                health.breaker_skips += 1
                health.record(ServiceEvent("breaker-open", f"{a}~{b}"))
                continue
            try:
                if scorer is not None:
                    # Equal share of what is left for every unscored pair.
                    pair_budget = budget.sub_budget(
                        1.0 / (len(pairs) - idx), max_terms=budget.max_terms
                    )
                    result = scorer.score(
                        windows[a], windows[b],
                        budget=pair_budget, health=health, subject=f"{a}~{b}",
                    )
                    if result.completed:
                        self.breaker.record_success(key)
                    else:
                        health.pairs_partial += 1
                        if self.breaker.record_timeout(key):
                            health.breaker_trips += 1
                            health.record(
                                ServiceEvent(
                                    "breaker-trip", f"{a}~{b}",
                                    f"missed its slice on rung {result.rung}",
                                )
                            )
                    pair_score = PairScore(
                        a, b, result.value,
                        lower=result.lower, upper=result.upper,
                        rung=result.rung, completed=result.completed,
                    )
                else:
                    value = measure.similarity(windows[a], windows[b])
                    health.take_rung("full", f"{a}~{b}")
                    self.breaker.record_success(key)
                    pair_score = PairScore(a, b, value)
            except ReproError as exc:
                # A window eviction reduced below what STS can score —
                # skip and count, never crash the serving loop.
                health.degenerate_pairs += 1
                health.record(
                    ServiceEvent(
                        "degenerate", f"{a}~{b}", f"{type(exc).__name__}: {exc}"
                    )
                )
                continue
            health.pairs_scored += 1
            if pair_score.similarity > threshold:
                scores.append(pair_score)
        health.elapsed_ms = budget.elapsed_ms()
        if budget.deadline_ms is not None and health.elapsed_ms >= budget.deadline_ms:
            health.deadline_hit = True
        scores.sort(key=lambda s: -s.similarity)
        return scores

    def _freshest_first(
        self, pairs: list[tuple[str, str]], windows: dict[str, Trajectory]
    ) -> list[tuple[str, str]]:
        """Order pairs so the stalest are scored last (and shed first)."""
        return sorted(
            pairs,
            key=lambda ab: (
                -min(windows[ab[0]].end_time, windows[ab[1]].end_time),
                ab,
            ),
        )

    def evaluate(
        self,
        threshold: float = 0.0,
        deadline: float | None = None,
        budget: Budget | None = None,
    ) -> list[PairScore]:
        """STS over every scorable pair of active objects, best first.

        A fresh :class:`STS` instance is built per evaluation so windows
        are re-personalized; only pairs scoring above ``threshold`` are
        returned.

        ``deadline`` (seconds) or ``budget`` bounds the call: pairs are
        scored freshest-first through the degradation ladder, each in an
        equal share of the remaining time; pairs the deadline cannot
        reach are shed (stalest first).  The full account — rungs taken,
        partial bounds, shed pairs, breaker activity — is in
        :attr:`last_health` after the call.
        """
        t0 = perf_counter()
        with trace_span("stream.evaluate"):
            self.drain()
            budget = self._resolve_budget(deadline, budget)
            windows = self._collect_windows()
            health = self._new_health(budget, windows)
            scorable = sorted(
                oid for oid, w in windows.items() if len(w) >= self.min_points
            )
            pairs = [(a, b) for i, a in enumerate(scorable) for b in scorable[i + 1 :]]
            pairs = self._freshest_first(pairs, windows)
            scores = self._score_pairs(pairs, windows, budget, health, threshold)
        self._h_evaluate.observe(perf_counter() - t0)
        if getattr(self._registry, "enabled", False):
            health.metrics = self._registry.snapshot()
        self.last_health = health
        return scores

    def companions_of(
        self,
        object_id: str,
        threshold: float = 0.0,
        deadline: float | None = None,
        budget: Budget | None = None,
    ) -> list[PairScore]:
        """Pairs involving ``object_id`` above ``threshold``, best first.

        Accepts the same ``deadline``/``budget`` bounds as
        :meth:`evaluate`.
        """
        self.drain()
        budget = self._resolve_budget(deadline, budget)
        windows = self._collect_windows()
        health = self._new_health(budget, windows)
        target = windows.get(object_id)
        if target is None or len(target) < self.min_points:
            self.last_health = health
            return []
        pairs = [
            (object_id, oid)
            for oid in sorted(windows)
            if oid != object_id and len(windows[oid]) >= self.min_points
        ]
        pairs = self._freshest_first(pairs, windows)
        scores = self._score_pairs(pairs, windows, budget, health, threshold)
        self.last_health = health
        return scores
