"""Online co-location detection over a stream of location events.

The batch pipeline (trajectories in, STS out) assumes data at rest.  Live
deployments — group monitoring, real-time contact tracing ([6], [7] in the
paper) — instead see an unordered stream of ``(object, x, y, t)`` sighting
events.  :class:`StreamingColocationDetector` maintains a sliding window
of recent observations per object and, on demand, evaluates the STS
machinery over the windows of every concurrently-active pair.

The detector is deliberately windowed: the personalized speed model
(Eq. 6) is re-estimated from each window, so an object whose behaviour
changes (walk → drive) is re-personalized as old samples age out.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from .core.grid import Grid
from .core.noise import GaussianNoiseModel, NoiseModel
from .core.sts import STS
from .core.trajectory import Trajectory, TrajectoryPoint

__all__ = ["SightingEvent", "PairScore", "StreamingColocationDetector"]


@dataclass(frozen=True)
class SightingEvent:
    """One stream record: an object seen at a location at a time."""

    object_id: str
    x: float
    y: float
    t: float


@dataclass(frozen=True)
class PairScore:
    """STS of two objects' current windows at evaluation time."""

    object_a: str
    object_b: str
    similarity: float

    def __str__(self) -> str:
        return f"{self.object_a} ~ {self.object_b}: {self.similarity:.4f}"


class StreamingColocationDetector:
    """Sliding-window co-location detection.

    Parameters
    ----------
    grid:
        Spatial partition of the monitored area.
    window:
        Sliding-window length in seconds; observations older than
        ``now - window`` are evicted.
    noise_model:
        Sensing noise; defaults to a Gaussian at the grid cell size.
    min_points:
        Minimum observations a window needs before the object is scored
        (below this the speed model is too degenerate to be meaningful).

    Events may arrive slightly out of order; each object's window is kept
    time-sorted.  Eviction happens on ingest and on evaluation, driven by
    the newest timestamp seen so far ("stream time").
    """

    def __init__(
        self,
        grid: Grid,
        window: float = 600.0,
        noise_model: NoiseModel | None = None,
        min_points: int = 3,
    ):
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        if min_points < 1:
            raise ValueError(f"min_points must be >= 1, got {min_points}")
        self.grid = grid
        self.window = float(window)
        self.noise_model = noise_model if noise_model is not None else GaussianNoiseModel(grid.cell_size)
        self.min_points = int(min_points)
        self._windows: dict[str, deque[TrajectoryPoint]] = {}
        self._now = float("-inf")

    # ------------------------------------------------------------------
    @property
    def stream_time(self) -> float:
        """Newest timestamp ingested so far (-inf before the first event)."""
        return self._now

    @property
    def active_objects(self) -> list[str]:
        """Objects currently holding at least one in-window observation."""
        for oid in self._windows:
            self._evict(oid)
        return sorted(oid for oid, win in self._windows.items() if win)

    def ingest(self, event: SightingEvent) -> None:
        """Add one sighting; evicts expired observations as time advances.

        Events older than the current window lower bound are dropped
        outright (too late to matter).
        """
        self._now = max(self._now, event.t)
        horizon = self._now - self.window
        if event.t < horizon:
            return
        window = self._windows.setdefault(event.object_id, deque())
        window.append(TrajectoryPoint(event.x, event.y, event.t))
        # Keep the window time-sorted under slight out-of-order arrival.
        if len(window) >= 2 and window[-2].t > window[-1].t:
            ordered = sorted(window, key=lambda p: p.t)
            window.clear()
            window.extend(ordered)
        self._evict(event.object_id)

    def ingest_many(self, events) -> None:
        """Ingest an iterable of events."""
        for event in events:
            self.ingest(event)

    def _evict(self, object_id: str) -> None:
        horizon = self._now - self.window
        window = self._windows[object_id]
        while window and window[0].t < horizon:
            window.popleft()

    # ------------------------------------------------------------------
    def window_of(self, object_id: str) -> Trajectory:
        """The object's current window as a trajectory (may be empty)."""
        self._windows.setdefault(object_id, deque())
        self._evict(object_id)
        return Trajectory(list(self._windows[object_id]), object_id=object_id)

    def evaluate(self, threshold: float = 0.0) -> list[PairScore]:
        """STS over every scorable pair of active objects, best first.

        A fresh :class:`STS` instance is built per evaluation so windows
        are re-personalized; only pairs scoring above ``threshold`` are
        returned.
        """
        measure = STS(self.grid, noise_model=self.noise_model)
        windows = {
            oid: self.window_of(oid)
            for oid in list(self._windows)
        }
        scorable = sorted(oid for oid, w in windows.items() if len(w) >= self.min_points)
        scores: list[PairScore] = []
        for i, a in enumerate(scorable):
            for b in scorable[i + 1 :]:
                value = measure.similarity(windows[a], windows[b])
                if value > threshold:
                    scores.append(PairScore(a, b, value))
        scores.sort(key=lambda s: -s.similarity)
        return scores

    def companions_of(self, object_id: str, threshold: float = 0.0) -> list[PairScore]:
        """Pairs involving ``object_id`` above ``threshold``, best first."""
        target = self.window_of(object_id)
        if len(target) < self.min_points:
            return []
        measure = STS(self.grid, noise_model=self.noise_model)
        scores = []
        for oid in self.active_objects:
            if oid == object_id:
                continue
            other = self.window_of(oid)
            if len(other) < self.min_points:
                continue
            value = measure.similarity(target, other)
            if value > threshold:
                scores.append(PairScore(object_id, oid, value))
        scores.sort(key=lambda s: -s.similarity)
        return scores
