"""Filter-and-refine candidate search for large galleries."""

from .filters import bounding_box_filter, cell_signature_filter, time_overlap_filter
from .inverted import TrajectoryIndex
from .matcher import FilteredMatcher, MatchReport

__all__ = [
    "time_overlap_filter",
    "bounding_box_filter",
    "cell_signature_filter",
    "FilteredMatcher",
    "MatchReport",
    "TrajectoryIndex",
]
