"""Candidate pre-filters for large-gallery similarity search.

STS costs `O(|Tra|·|Tra'|·|R|²)` per pair in the worst case (Section V-C
of the paper), so an exhaustive scan over a large gallery is wasteful:
most candidates share no time span or no spatial region with the query and
are guaranteed to score 0 (Eq. 5 case 3 zeroes every co-location term).
These filters discard such candidates *exactly* (no false negatives for
the time filter; configurable slack for the spatial one) before the
expensive measure runs.
"""

from __future__ import annotations

import numpy as np

from ..core.trajectory import Trajectory

__all__ = ["time_overlap_filter", "bounding_box_filter", "cell_signature_filter"]


def time_overlap_filter(
    query: Trajectory,
    gallery: list[Trajectory],
    min_overlap: float = 0.0,
) -> np.ndarray:
    """Indices of gallery trajectories whose time span overlaps the query's.

    A candidate with zero temporal overlap has ``STP = 0`` at every one of
    the query's timestamps and vice versa, so its STS is exactly 0 — the
    filter is lossless for ranking positives.  ``min_overlap`` (seconds)
    additionally requires that much shared time.
    """
    if min_overlap < 0:
        raise ValueError(f"min_overlap must be non-negative, got {min_overlap}")
    keep = []
    for i, candidate in enumerate(gallery):
        overlap = min(query.end_time, candidate.end_time) - max(
            query.start_time, candidate.start_time
        )
        if overlap >= min_overlap and overlap >= 0:
            keep.append(i)
    return np.array(keep, dtype=int)


def bounding_box_filter(
    query: Trajectory,
    gallery: list[Trajectory],
    slack: float = 0.0,
) -> np.ndarray:
    """Indices of gallery trajectories whose bounding box is within
    ``slack`` meters of the query's.

    ``slack`` should cover the location-noise support plus the plausible
    drift between observations (e.g. ``4σ + v_max·max_gap``); candidates
    farther away than that cannot produce any overlapping probability
    mass.
    """
    if slack < 0:
        raise ValueError(f"slack must be non-negative, got {slack}")
    q_min_x, q_min_y, q_max_x, q_max_y = query.bounding_box()
    keep = []
    for i, candidate in enumerate(gallery):
        c_min_x, c_min_y, c_max_x, c_max_y = candidate.bounding_box()
        separated = (
            c_min_x > q_max_x + slack
            or q_min_x > c_max_x + slack
            or c_min_y > q_max_y + slack
            or q_min_y > c_max_y + slack
        )
        if not separated:
            keep.append(i)
    return np.array(keep, dtype=int)


def cell_signature_filter(
    query: Trajectory,
    gallery: list[Trajectory],
    grid,
    dilation: int = 1,
    min_shared: int = 1,
) -> np.ndarray:
    """Indices of candidates sharing grid cells with the (dilated) query.

    Each trajectory's *signature* is the set of cells its observations
    fall in; the query's signature is dilated by ``dilation`` cells in
    every direction to absorb noise and interpolation drift.  Candidates
    sharing fewer than ``min_shared`` cells with the dilated signature are
    dropped.  Tighter than the bounding box for L-shaped or sparse
    trajectories, at the cost of a small per-candidate set intersection.
    """
    if dilation < 0:
        raise ValueError(f"dilation must be non-negative, got {dilation}")
    if min_shared < 1:
        raise ValueError(f"min_shared must be >= 1, got {min_shared}")
    signature = _dilated_signature(query, grid, dilation)
    keep = []
    for i, candidate in enumerate(gallery):
        cells = set(grid.cells_of(candidate.xy).tolist())
        if len(cells & signature) >= min_shared:
            keep.append(i)
    return np.array(keep, dtype=int)


def _dilated_signature(trajectory: Trajectory, grid, dilation: int) -> set[int]:
    base = np.unique(grid.cells_of(trajectory.xy))
    if dilation == 0:
        return set(base.tolist())
    out: set[int] = set()
    for cell in base:
        row, col = divmod(int(cell), grid.n_cols)
        for dr in range(-dilation, dilation + 1):
            for dc in range(-dilation, dilation + 1):
                rr, cc = row + dr, col + dc
                if 0 <= rr < grid.n_rows and 0 <= cc < grid.n_cols:
                    out.add(rr * grid.n_cols + cc)
    return out
