"""Filtered gallery matching: pre-filter, then score only the survivors.

:class:`FilteredMatcher` wires the lossless/cheap candidate filters of
:mod:`repro.index.filters` in front of any similarity measure.  For the
trajectory-linking workload (one query against a large gallery) this
replaces ``n`` expensive measure calls with ``n`` cheap interval/box
checks plus ``k ≪ n`` measure calls — the standard filter-and-refine
pattern of spatial databases.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.grid import Grid
from ..core.trajectory import Trajectory
from ..eval.queries import RankedMatch
from .filters import bounding_box_filter, cell_signature_filter, time_overlap_filter

__all__ = ["FilteredMatcher", "MatchReport"]


@dataclass(frozen=True)
class MatchReport:
    """Outcome of one filtered query: ranked survivors plus filter stats."""

    matches: list[RankedMatch]
    gallery_size: int
    candidates_scored: int

    @property
    def filter_rate(self) -> float:
        """Fraction of the gallery discarded before scoring."""
        if self.gallery_size == 0:
            return 0.0
        return 1.0 - self.candidates_scored / self.gallery_size

    def __str__(self) -> str:
        return (
            f"scored {self.candidates_scored}/{self.gallery_size} candidates "
            f"({self.filter_rate:.0%} filtered)"
        )


class FilteredMatcher:
    """Filter-and-refine matcher around any trajectory measure.

    Parameters
    ----------
    measure:
        Anything with ``score(a, b)`` oriented higher = more similar
        (e.g. :class:`~repro.core.sts.STS` or any
        :class:`~repro.similarity.base.Measure`).
    grid:
        Optional grid enabling the cell-signature filter (``None``
        disables that stage).
    spatial_slack:
        Bounding-box slack in meters (cover noise support + drift); pass
        ``None`` to disable the bounding-box stage.
    min_time_overlap:
        Minimum shared seconds required by the time filter.
    signature_dilation:
        Dilation (in cells) of the query signature for the cell filter;
        only used when ``grid`` is given.
    n_jobs:
        Worker count for scoring the surviving candidates, for measures
        exposing the STS-style ``pairwise(..., n_jobs=...)`` entry point
        (see :class:`repro.parallel.ParallelSTS`).  ``None``/``1`` scores
        serially — still through the batched path when available.
    """

    def __init__(
        self,
        measure,
        grid: Grid | None = None,
        spatial_slack: float | None = 0.0,
        min_time_overlap: float = 0.0,
        signature_dilation: int = 2,
        n_jobs: int | None = None,
    ):
        self.measure = measure
        self.grid = grid
        self.spatial_slack = spatial_slack
        self.min_time_overlap = float(min_time_overlap)
        self.signature_dilation = int(signature_dilation)
        self.n_jobs = n_jobs

    # ------------------------------------------------------------------
    def candidates(self, query: Trajectory, gallery: list[Trajectory]) -> np.ndarray:
        """Indices of gallery entries surviving every enabled filter."""
        surviving = time_overlap_filter(query, gallery, min_overlap=self.min_time_overlap)
        if self.spatial_slack is not None and surviving.size:
            subset = [gallery[i] for i in surviving]
            box_keep = bounding_box_filter(query, subset, slack=self.spatial_slack)
            surviving = surviving[box_keep]
        if self.grid is not None and surviving.size:
            subset = [gallery[i] for i in surviving]
            sig_keep = cell_signature_filter(
                query, subset, self.grid, dilation=self.signature_dilation
            )
            surviving = surviving[sig_keep]
        return surviving

    def query(self, query: Trajectory, gallery: list[Trajectory], k: int | None = None) -> MatchReport:
        """Rank the surviving candidates; optionally keep only the top ``k``.

        Filtered-out candidates are *omitted* from the result (their score
        is a guaranteed/near-guaranteed zero), so an empty ``matches`` list
        means "nothing in the gallery plausibly overlaps this query".
        """
        if k is not None and k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        surviving = self.candidates(query, gallery)
        subset = [gallery[int(i)] for i in surviving]
        scores = self._score_survivors(query, subset)
        matches = [
            RankedMatch(index=int(i), trajectory=traj, score=float(s))
            for i, traj, s in zip(surviving, subset, scores)
        ]
        matches.sort(key=lambda m: -m.score)
        if k is not None:
            matches = matches[:k]
        return MatchReport(
            matches=matches,
            gallery_size=len(gallery),
            candidates_scored=int(surviving.size),
        )

    def _score_survivors(self, query: Trajectory, subset: list[Trajectory]) -> list[float]:
        """Oriented scores of the query against each surviving candidate.

        Routes through the measure's batched/parallel ``pairwise`` when it
        offers the STS-style ``n_jobs`` entry point and parallel scoring
        was requested; otherwise falls back to the ``score`` loop (which,
        for STS, already uses the batched co-location path per pair).
        """
        if not subset:
            return []
        if self.n_jobs not in (None, 1):
            from ..eval.matching import _supports_parallel_pairwise

            if _supports_parallel_pairwise(self.measure):
                row = self.measure.pairwise(subset, queries=[query], n_jobs=self.n_jobs)
                return [float(s) for s in np.asarray(row)[0]]
        return [float(self.measure.score(query, candidate)) for candidate in subset]
