"""Filtered gallery matching: pre-filter, then score only the survivors.

:class:`FilteredMatcher` wires the lossless/cheap candidate filters of
:mod:`repro.index.filters` in front of any similarity measure.  For the
trajectory-linking workload (one query against a large gallery) this
replaces ``n`` expensive measure calls with ``n`` cheap interval/box
checks plus ``k ≪ n`` measure calls — the standard filter-and-refine
pattern of spatial databases.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter

import numpy as np

from ..core.grid import Grid
from ..core.trajectory import Trajectory
from ..eval.queries import RankedMatch
from ..obs import Span, get_registry, spans_to_chrome, trace_span
from ..serving.budget import Budget
from ..serving.health import ServiceEvent, ServiceHealth
from .filters import bounding_box_filter, cell_signature_filter, time_overlap_filter

__all__ = ["FilteredMatcher", "MatchReport"]


@dataclass(frozen=True)
class MatchReport:
    """Outcome of one filtered query: ranked survivors plus filter stats.

    ``health`` is populated only by deadline-bounded queries; it records
    the degradation rungs taken per candidate and any candidates shed
    when the deadline expired (shed candidates are absent from
    ``matches`` and excluded from ``candidates_scored``).
    """

    matches: list[RankedMatch]
    gallery_size: int
    candidates_scored: int
    health: ServiceHealth | None = None
    #: Metrics snapshot taken when the query finished (None when obs is off).
    metrics: dict | None = None
    #: Fraction of the gallery actually consulted.  1.0 on the
    #: single-process path; below 1.0 only when a cluster query had to
    #: skip shards — the skipped candidates are *absent* from ``matches``,
    #: never silently zero-scored.
    coverage: float = 1.0
    #: Cluster shards that could not be consulted at all.
    shards_skipped: tuple[int, ...] = ()
    #: Cluster shards that answered only via failover/hedge/restart.
    shards_degraded: tuple[int, ...] = ()
    #: Full per-query cluster account (None off the cluster path).
    cluster: object | None = None
    #: Chrome ``trace_event`` list for this query (None when obs is off):
    #: the ``matcher.query`` span with its filter/refine children and —
    #: on the cluster path — every replica's stitched scoring subtree.
    trace: list | None = None

    @property
    def filter_rate(self) -> float:
        """Fraction of the gallery discarded before scoring."""
        if self.gallery_size == 0:
            return 0.0
        return 1.0 - self.candidates_scored / self.gallery_size

    @property
    def complete(self) -> bool:
        """Whether every shard of the gallery was consulted."""
        return self.coverage >= 1.0

    def __str__(self) -> str:
        base = (
            f"scored {self.candidates_scored}/{self.gallery_size} candidates "
            f"({self.filter_rate:.0%} filtered)"
        )
        if self.coverage < 1.0:
            base += (
                f"; PARTIAL coverage {self.coverage:.2%}, "
                f"shards skipped {list(self.shards_skipped)}"
            )
        elif self.shards_degraded:
            base += f"; degraded shards {list(self.shards_degraded)}"
        return base


class FilteredMatcher:
    """Filter-and-refine matcher around any trajectory measure.

    Parameters
    ----------
    measure:
        Anything with ``score(a, b)`` oriented higher = more similar
        (e.g. :class:`~repro.core.sts.STS` or any
        :class:`~repro.similarity.base.Measure`).
    grid:
        Optional grid enabling the cell-signature filter (``None``
        disables that stage).
    spatial_slack:
        Bounding-box slack in meters (cover noise support + drift); pass
        ``None`` to disable the bounding-box stage.
    min_time_overlap:
        Minimum shared seconds required by the time filter.
    signature_dilation:
        Dilation (in cells) of the query signature for the cell filter;
        only used when ``grid`` is given.
    n_jobs:
        Worker count for scoring the surviving candidates, for measures
        exposing the STS-style ``pairwise(..., n_jobs=...)`` entry point
        (see :class:`repro.parallel.ParallelSTS`).  ``None``/``1`` scores
        serially — still through the batched path when available.
    shm, chunking:
        Transport and chunk-balancing policy for parallel refine, passed
        through to :class:`~repro.parallel.ParallelSTS` (``shm="auto"``
        broadcasts the corpus through a shared-memory arena;
        ``chunking="cost"`` balances chunks by estimated pair cost).
    persistent_pool:
        Keep one warm worker pool (and the gallery's shared-memory
        arena) alive across :meth:`query` calls — the serving pattern:
        the gallery is broadcast once, then every query ships only its
        own trajectory plus surviving indices.  Call :meth:`close` (or
        use the matcher as a context manager) to release the pool.
        Reuse requires the same gallery *objects* across calls; a
        different gallery transparently invalidates the warm pool and
        re-broadcasts (or, with ``shm=False``, re-pickles) — on every
        transport, never silently scoring the old corpus.
    """

    def __init__(
        self,
        measure,
        grid: Grid | None = None,
        spatial_slack: float | None = 0.0,
        min_time_overlap: float = 0.0,
        signature_dilation: int = 2,
        n_jobs: int | None = None,
        shm: bool | str | None = None,
        chunking: str | None = None,
        persistent_pool: bool = False,
        cluster=None,
        registry=None,
    ):
        self.measure = measure
        self.grid = grid
        self.spatial_slack = spatial_slack
        self.min_time_overlap = float(min_time_overlap)
        self.signature_dilation = int(signature_dilation)
        self.n_jobs = n_jobs
        self.shm = shm
        self.chunking = chunking
        self.persistent_pool = bool(persistent_pool)
        #: Optional :class:`~repro.cluster.ClusterService` — when set,
        #: survivor refinement is scatter-gathered across its shard
        #: workers (with failover/hedging) instead of scored in-process,
        #: and MatchReports carry the cluster's coverage semantics.
        self.cluster = cluster
        self._parallel = None  # lazy ParallelSTS, cached when persistent
        # Share the measure's registry when it has one, so filter and
        # refine metrics land next to the scoring metrics.
        if registry is not None:
            self._registry = registry
        else:
            self._registry = getattr(measure, "_registry", None) or get_registry()
        candidates_counter = self._registry.counter(
            "repro_matcher_candidates_total", "Gallery candidates by filter outcome"
        )
        self._m_considered = candidates_counter.child(stage="considered")
        self._m_survived = candidates_counter.child(stage="survived")
        self._m_scored = candidates_counter.child(stage="scored")
        self._h_query = self._registry.histogram(
            "repro_matcher_query_seconds", "Wall seconds per FilteredMatcher.query call"
        ).child()

    # ------------------------------------------------------------------
    def candidates(self, query: Trajectory, gallery: list[Trajectory]) -> np.ndarray:
        """Indices of gallery entries surviving every enabled filter."""
        surviving = time_overlap_filter(query, gallery, min_overlap=self.min_time_overlap)
        if self.spatial_slack is not None and surviving.size:
            subset = [gallery[i] for i in surviving]
            box_keep = bounding_box_filter(query, subset, slack=self.spatial_slack)
            surviving = surviving[box_keep]
        if self.grid is not None and surviving.size:
            subset = [gallery[i] for i in surviving]
            sig_keep = cell_signature_filter(
                query, subset, self.grid, dilation=self.signature_dilation
            )
            surviving = surviving[sig_keep]
        return surviving

    def query(
        self,
        query: Trajectory,
        gallery: list[Trajectory],
        k: int | None = None,
        deadline: float | None = None,
        budget: Budget | None = None,
    ) -> MatchReport:
        """Rank the surviving candidates; optionally keep only the top ``k``.

        Filtered-out candidates are *omitted* from the result (their score
        is a guaranteed/near-guaranteed zero), so an empty ``matches`` list
        means "nothing in the gallery plausibly overlaps this query".

        ``deadline`` (wall-clock seconds) or ``budget`` bounds the
        refine stage: candidates are scored through the
        :class:`~repro.serving.DeadlineScorer` degradation ladder in an
        equal share of the remaining time each; candidates the deadline
        cannot reach are shed (recorded in the report's ``health``, and
        absent from ``matches``).  The filter stage always runs — it is
        the cheap part and every later rung depends on it.
        """
        if k is not None and k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if deadline is not None and budget is not None:
            raise ValueError("pass either deadline or budget, not both")
        if deadline is not None:
            if deadline < 0:
                raise ValueError(f"deadline must be >= 0 seconds, got {deadline}")
            budget = Budget(deadline_ms=deadline * 1000.0)
        t0 = perf_counter()
        with trace_span("matcher.query", gallery=len(gallery)) as qspan:
            with trace_span("matcher.filter", gallery=len(gallery)) as fspan:
                surviving = self.candidates(query, gallery)
                if isinstance(fspan, Span):
                    fspan.attrs["survivors"] = int(surviving.size)
            self._m_considered.inc(len(gallery))
            self._m_survived.inc(int(surviving.size))
            subset = [gallery[int(i)] for i in surviving]
            health: ServiceHealth | None = None
            creport = None
            with trace_span("matcher.refine", survivors=int(surviving.size)):
                if self.cluster is not None:
                    keep, scores, creport, health = self._score_survivors_cluster(
                        query, gallery, surviving, budget
                    )
                    surviving = surviving[keep]
                    subset = [subset[i] for i in keep]
                elif budget is not None and budget.bounded:
                    budget.start()
                    health = ServiceHealth(deadline_ms=budget.deadline_ms)
                    keep, scores = self._score_survivors_budgeted(query, subset, budget, health)
                    surviving = surviving[keep]
                    subset = [subset[i] for i in keep]
                else:
                    scores = self._score_survivors(query, gallery, surviving, subset)
            self._m_scored.inc(int(surviving.size))
            matches = [
                RankedMatch(index=int(i), trajectory=traj, score=float(s))
                for i, traj, s in zip(surviving, subset, scores)
            ]
            matches.sort(key=lambda m: -m.score)
            if k is not None:
                matches = matches[:k]
        self._h_query.observe(perf_counter() - t0)
        return MatchReport(
            matches=matches,
            gallery_size=len(gallery),
            candidates_scored=int(surviving.size),
            health=health,
            metrics=(
                self._registry.snapshot()
                if getattr(self._registry, "enabled", False)
                else None
            ),
            coverage=creport.coverage if creport is not None else 1.0,
            shards_skipped=creport.shards_skipped if creport is not None else (),
            shards_degraded=creport.shards_degraded if creport is not None else (),
            cluster=creport,
            trace=(
                spans_to_chrome([qspan]) if isinstance(qspan, Span) else None
            ),
        )

    def _refine_engine(self):
        """The (lazily built, possibly cached) parallel scoring engine."""
        if self._parallel is not None:
            return self._parallel
        from ..parallel import ParallelSTS

        engine = ParallelSTS(
            self.measure,
            n_jobs=self.n_jobs,
            shm=self.shm,
            chunking=self.chunking,
            persistent=self.persistent_pool,
            registry=self._registry,
        )
        if self.persistent_pool:
            self._parallel = engine
        return engine

    def close(self) -> None:
        """Release the persistent worker pool and gallery arena, if any."""
        if self._parallel is not None:
            self._parallel.close()
            self._parallel = None

    def __enter__(self) -> "FilteredMatcher":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _score_survivors(
        self,
        query: Trajectory,
        gallery: list[Trajectory],
        surviving: np.ndarray,
        subset: list[Trajectory],
    ) -> list[float]:
        """Oriented scores of the query against each surviving candidate.

        Routes through :meth:`repro.parallel.ParallelSTS.query` when the
        measure offers the STS-style parallel entry point and parallel
        scoring was requested: the *full gallery* rides the shared-memory
        arena (reused across calls under ``persistent_pool``) and only
        the surviving indices are dispatched.  Otherwise falls back to
        the ``score`` loop (which, for STS, already uses the batched
        co-location path per pair).
        """
        if not subset:
            return []
        if self.n_jobs not in (None, 1):
            from ..eval.matching import _supports_parallel_pairwise

            if _supports_parallel_pairwise(self.measure) and hasattr(
                self.measure, "similarity"
            ):
                engine = self._refine_engine()
                try:
                    row = engine.query(
                        query, gallery, cols=[int(i) for i in surviving]
                    )
                finally:
                    if not self.persistent_pool:
                        engine.close()
                return [float(s) for s in np.asarray(row)]
        return [float(self.measure.score(query, candidate)) for candidate in subset]

    def _score_survivors_cluster(
        self,
        query: Trajectory,
        gallery: list[Trajectory],
        surviving: np.ndarray,
        budget: Budget | None,
    ):
        """Scatter-gather the survivors across the cluster's shard workers.

        Returns ``(keep_positions, scores, ClusterReport, health)``.
        Candidates on skipped shards are dropped from the result (their
        score is *unknown*, not zero) — the report's ``coverage`` and
        ``shards_skipped`` make the gap explicit.  Kept positions stay in
        ascending gallery order, so with a healthy cluster the assembled
        ``matches`` list is bitwise identical to the single-process path.
        """
        if not self.cluster.matches_gallery(gallery):
            raise ValueError(
                "cluster service was packed from a different gallery than "
                "the one queried; rebuild the ClusterService for this corpus"
            )
        scores_by_index, creport = self.cluster.query_scores(
            query, cols=[int(i) for i in surviving], budget=budget
        )
        keep: list[int] = []
        scores: list[float] = []
        for pos, global_idx in enumerate(int(i) for i in surviving):
            if global_idx in scores_by_index:
                keep.append(pos)
                scores.append(scores_by_index[global_idx])
        health: ServiceHealth | None = None
        if budget is not None and budget.bounded:
            health = ServiceHealth(deadline_ms=budget.deadline_ms)
            health.pairs_scored = len(keep)
            shed = int(surviving.size) - len(keep)
            if shed:
                health.pairs_shed = shed
                health.deadline_hit = any(
                    "budget expired" in e for e in creport.events
                )
                for shard in creport.shards_skipped:
                    health.record(
                        ServiceEvent(
                            "shed-shard", f"shard-{shard}", "cluster shard skipped"
                        )
                    )
            health.elapsed_ms = budget.elapsed_ms()
        return keep, scores, creport, health

    def _score_survivors_budgeted(
        self,
        query: Trajectory,
        subset: list[Trajectory],
        budget: Budget,
        health: ServiceHealth,
    ) -> tuple[list[int], list[float]]:
        """Budgeted refine: positions kept (into ``subset``) and their scores.

        STS-style measures (anything exposing ``stp_for`` and a grid) go
        through the degradation ladder; other measures are scored
        directly until the budget expires.  Either way, candidates left
        when time runs out are shed and counted, never silently zeroed.
        """
        from ..serving.ladder import DeadlineScorer

        scorer = (
            DeadlineScorer(self.measure, registry=self._registry)
            if hasattr(self.measure, "stp_for") and hasattr(self.measure, "grid")
            else None
        )
        keep: list[int] = []
        scores: list[float] = []
        for idx, candidate in enumerate(subset):
            if budget.expired():
                shed = len(subset) - idx
                health.pairs_shed += shed
                health.deadline_hit = True
                for pos in range(idx, len(subset)):
                    subject = getattr(subset[pos], "object_id", None) or f"candidate-{pos}"
                    health.record(
                        ServiceEvent("shed-pair", str(subject), "deadline expired")
                    )
                break
            subject = getattr(candidate, "object_id", None) or f"candidate-{idx}"
            slice_budget = budget.sub_budget(
                1.0 / (len(subset) - idx), max_terms=budget.max_terms
            )
            if scorer is not None:
                result = scorer.score(
                    query, candidate, budget=slice_budget,
                    health=health, subject=str(subject),
                )
                if not result.completed:
                    health.pairs_partial += 1
                score = result.value
            else:
                score = float(self.measure.score(query, candidate))
                health.take_rung("full", str(subject))
            keep.append(idx)
            scores.append(score)
            health.pairs_scored += 1
        health.elapsed_ms = budget.elapsed_ms()
        if budget.deadline_ms is not None and health.elapsed_ms >= budget.deadline_ms:
            health.deadline_hit = True
        return keep, scores
