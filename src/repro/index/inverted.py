"""Inverted spatio-temporal index for trajectory collections.

:class:`FilteredMatcher` scans the gallery per query; fine for hundreds of
trajectories, wasteful for hundreds of thousands.  :class:`TrajectoryIndex`
is the batch counterpart: it ingests a collection once, building

* an **inverted cell index** — grid cell → ids of trajectories observed
  there — so spatial candidate generation touches only the query's
  (dilated) cells instead of the whole collection; and
* a **time-span table** — parallel arrays of start/end times — so the
  temporal filter is a vectorized interval-overlap test.

Querying intersects the two candidate sets and optionally scores the
survivors with a measure.  Both filters inherit the guarantees of
:mod:`repro.index.filters`: no temporal false negatives, spatial recall
controlled by the dilation radius.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from ..core.grid import Grid
from ..core.trajectory import Trajectory
from ..eval.queries import RankedMatch
from .filters import _dilated_signature

__all__ = ["TrajectoryIndex"]


class TrajectoryIndex:
    """Build-once, query-many spatio-temporal candidate index.

    Parameters
    ----------
    grid:
        Spatial partition used for the inverted cell index.
    dilation:
        How many cells the *query's* signature is dilated at query time;
        covers noise and interpolation drift (2 cells ≈ 2 cell sizes).
    """

    def __init__(self, grid: Grid, dilation: int = 2):
        if dilation < 0:
            raise ValueError(f"dilation must be non-negative, got {dilation}")
        self.grid = grid
        self.dilation = int(dilation)
        self._trajectories: list[Trajectory] = []
        self._cell_to_ids: dict[int, list[int]] = defaultdict(list)
        self._starts: list[float] = []
        self._ends: list[float] = []

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._trajectories)

    def add(self, trajectory: Trajectory) -> int:
        """Index one trajectory; returns its id within the index."""
        if len(trajectory) == 0:
            raise ValueError("cannot index an empty trajectory")
        tid = len(self._trajectories)
        self._trajectories.append(trajectory)
        self._starts.append(trajectory.start_time)
        self._ends.append(trajectory.end_time)
        for cell in np.unique(self.grid.cells_of(trajectory.xy)):
            self._cell_to_ids[int(cell)].append(tid)
        return tid

    def add_all(self, trajectories) -> list[int]:
        """Index an iterable of trajectories; returns their ids."""
        return [self.add(t) for t in trajectories]

    def get(self, tid: int) -> Trajectory:
        """The trajectory stored under ``tid``."""
        return self._trajectories[tid]

    # ------------------------------------------------------------------
    def candidates(self, query: Trajectory, min_time_overlap: float = 0.0) -> np.ndarray:
        """Ids of indexed trajectories passing both cheap filters.

        Spatial: shares at least one cell with the query's dilated
        signature (looked up in the inverted index — cost proportional to
        the signature size and its postings, not the collection size).
        Temporal: time spans overlap by at least ``min_time_overlap``.
        """
        if min_time_overlap < 0:
            raise ValueError(f"min_time_overlap must be non-negative, got {min_time_overlap}")
        if not self._trajectories:
            return np.empty(0, dtype=int)
        signature = _dilated_signature(query, self.grid, self.dilation)
        spatial: set[int] = set()
        for cell in signature:
            spatial.update(self._cell_to_ids.get(cell, ()))
        if not spatial:
            return np.empty(0, dtype=int)
        ids = np.fromiter(spatial, dtype=int)
        starts = np.asarray(self._starts)[ids]
        ends = np.asarray(self._ends)[ids]
        overlap = np.minimum(ends, query.end_time) - np.maximum(starts, query.start_time)
        return np.sort(ids[overlap >= min_time_overlap])

    def query(
        self,
        query: Trajectory,
        measure,
        k: int | None = None,
        min_time_overlap: float = 0.0,
    ) -> list[RankedMatch]:
        """Score the candidates with ``measure``; best first, top-``k``.

        ``measure`` follows the usual protocol (``score`` oriented higher
        = more similar).  The returned indices are index ids (usable with
        :meth:`get`).
        """
        if k is not None and k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        ids = self.candidates(query, min_time_overlap=min_time_overlap)
        matches = [
            RankedMatch(
                index=int(tid),
                trajectory=self._trajectories[int(tid)],
                score=float(measure.score(query, self._trajectories[int(tid)])),
            )
            for tid in ids
        ]
        matches.sort(key=lambda m: -m.score)
        return matches if k is None else matches[:k]

    def __repr__(self) -> str:
        return (
            f"<TrajectoryIndex n={len(self)} cells={len(self._cell_to_ids)} "
            f"dilation={self.dilation}>"
        )
