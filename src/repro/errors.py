"""Structured error taxonomy for the whole library.

Production runs die for three distinct reasons, and callers need to tell
them apart to react correctly:

* **bad input** — a malformed CSV row, a NaN coordinate, a single-point
  trajectory where two are required.  Recoverable by skipping or
  repairing the offending record (see :mod:`repro.preprocess` and the
  ``on_error`` policy knob).
* **infrastructure failure** — a worker process killed by the OOM
  killer, a hung chunk, a broken pool.  Recoverable by retrying or
  degrading to a more conservative backend (see
  :mod:`repro.parallel.supervisor`).
* **operator error** — resuming from a checkpoint that belongs to a
  different run.  Not recoverable; fail loudly.

Every exception this library raises deliberately derives from
:class:`ReproError`, so ``except ReproError`` catches exactly the
library's own failures and nothing else.  Input errors additionally
derive from :class:`ValueError` (and infrastructure errors from
:class:`RuntimeError` / :class:`TimeoutError`), so existing callers that
catch the builtin types keep working unchanged.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "MalformedRecordError",
    "DegenerateTrajectoryError",
    "WorkerCrashError",
    "ChunkTimeoutError",
    "ScoreCorruptionError",
    "CheckpointError",
    "WALError",
    "WALWriteError",
    "WALCorruptionError",
    "ERROR_POLICIES",
    "validate_policy",
]


class ReproError(Exception):
    """Base class of every error the library raises on purpose."""


class MalformedRecordError(ReproError, ValueError):
    """An input record is unusable: non-finite coordinates, a row that
    does not parse, a missing column.  The record carries no usable
    information and can only be dropped (``on_error="skip"``/``"repair"``)
    or rejected (``on_error="raise"``)."""


class DegenerateTrajectoryError(ReproError, ValueError):
    """A trajectory is structurally valid but too degenerate for the
    requested operation: empty, shorter than a required minimum, or all
    observations at one timestamp where a time span is needed.  Some
    degeneracies are repairable (duplicate timestamps collapse to their
    centroid); others are not (an empty trajectory)."""


class WorkerCrashError(ReproError, RuntimeError):
    """A pool worker died (segfault, OOM kill, ``os._exit``) while
    scoring a chunk.  Raised only after the supervisor exhausted its
    retry/degradation ladder; the :class:`~repro.parallel.supervisor.
    RunHealth` attached to the run records every intermediate crash."""


class ChunkTimeoutError(ReproError, TimeoutError):
    """No chunk made progress within the configured timeout — a worker
    is hung (deadlock, runaway input).  Like :class:`WorkerCrashError`,
    surfaced only once recovery options are exhausted."""


class ScoreCorruptionError(ReproError, RuntimeError):
    """A worker returned a non-finite similarity score.  STS scores are
    probabilities in ``[0, 1]``; NaN/inf coming back from a chunk means
    the worker's state is corrupt and the chunk must be re-scored."""


class CheckpointError(ReproError, RuntimeError):
    """A checkpoint file is unreadable or belongs to a different run
    (fingerprint mismatch).  Never silently ignored: resuming the wrong
    checkpoint would splice two unrelated result sets together."""


class WALError(ReproError, RuntimeError):
    """Base class of write-ahead-log failures (:mod:`repro.streaming_wal`).

    Raised for misuse of the durable streaming layer: attaching a fresh
    detector to a directory that already holds journaled history,
    recovering against a directory whose configuration fingerprint does
    not match, or recovering a directory with no journal at all."""


class WALWriteError(WALError):
    """An append or fsync failed (disk full, revoked mount, bad fd).

    The contract is journal-before-apply: when an append fails the
    sighting that triggered it was *not* applied to detector state, so
    the producer can retry or shed it.  The partial frame (if any) is
    truncated away immediately, and would otherwise be detected and
    truncated by CRC on recovery."""


class WALCorruptionError(WALError):
    """A *non-tail* WAL record failed its CRC or framing check.

    A torn final record is the expected signature of a crash mid-append
    and is silently truncated (with a metric).  A bad record in the
    middle of the journal — with acknowledged records after it — means
    bit rot or tampering; replaying past it would silently drop
    acknowledged events, so recovery refuses loudly instead."""


#: The valid ``on_error`` policies, in increasing order of leniency.
ERROR_POLICIES = ("raise", "skip", "repair")


def validate_policy(on_error: str) -> str:
    """Check an ``on_error`` knob and return it.

    * ``"raise"`` — propagate the structured error (default everywhere);
    * ``"skip"`` — drop the offending record/trajectory/pair and count it;
    * ``"repair"`` — fix what is fixable (e.g. collapse duplicate
      timestamps), skip what is not.
    """
    if on_error not in ERROR_POLICIES:
        raise ValueError(
            f"on_error must be one of {ERROR_POLICIES}, got {on_error!r}"
        )
    return on_error
