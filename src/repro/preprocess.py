"""Trajectory preprocessing: the cleaning real sensing data needs.

The similarity measures assume reasonably sane trajectories; raw sensing
logs are not.  This module provides the standard cleaning pipeline:

* :func:`deduplicate_timestamps` — collapse same-instant observations
  (duplicate rows, multi-AP WiFi sightings);
* :func:`split_on_gaps` — cut a long device log into trips/visits at big
  temporal gaps (the device left the instrumented area);
* :func:`remove_speed_outliers` — drop fixes implying impossible speeds
  (GPS multipath jumps), iteratively;
* :func:`smooth` — moving-average positional smoothing;
* :func:`clean` — the composed pipeline with sensible defaults.

On top of the cleaning pipeline sits the *sanitization* pass
(:func:`sanitize_trajectory` / :func:`sanitize_trajectories`): a
policy-driven gate that classifies degenerate inputs through the
structured error taxonomy of :mod:`repro.errors` and either raises,
skips, or repairs them, always accounting for what it did in a
:class:`SanitizationReport`.  The CSV loader
(:func:`repro.datasets.io.load_trajectories_csv`) and the CLI route raw
data through this gate.

All functions are pure: they return new trajectories (or lists of them)
and never mutate their input.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .core.trajectory import Trajectory, TrajectoryPoint
from .errors import DegenerateTrajectoryError, validate_policy

__all__ = [
    "deduplicate_timestamps",
    "split_on_gaps",
    "remove_speed_outliers",
    "smooth",
    "clean",
    "SanitizationIssue",
    "SanitizationReport",
    "sanitize_trajectory",
    "sanitize_trajectories",
]


@dataclass(frozen=True)
class SanitizationIssue:
    """One problem found (and possibly fixed) during sanitization."""

    kind: str  # "malformed-record" | "empty" | "too-short" | "duplicate-timestamps"
    subject: str  # object id, or "path:line" for record-level issues
    action: str  # "raised" | "skipped" | "repaired"
    detail: str = ""

    def __str__(self) -> str:
        note = f" ({self.detail})" if self.detail else ""
        return f"{self.kind} on {self.subject}: {self.action}{note}"


@dataclass
class SanitizationReport:
    """Account of everything a sanitization pass touched.

    ``n_seen`` counts trajectories (or raw records, for the CSV loader)
    presented to the gate; the ``skipped_*``/``repaired`` counters say
    what happened to the problematic ones, and ``issues`` carries the
    per-item detail.  A report with ``clean`` true means the input
    passed untouched.
    """

    policy: str = "raise"
    n_seen: int = 0
    skipped_records: int = 0
    skipped_trajectories: int = 0
    repaired: int = 0
    issues: list[SanitizationIssue] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.issues

    def record(self, issue: SanitizationIssue) -> None:
        """Append one issue, bumping the repair counter when applicable."""
        self.issues.append(issue)
        if issue.action == "repaired":
            self.repaired += 1

    def to_dict(self) -> dict:
        """JSON-serializable form of the report."""
        return {
            "policy": self.policy,
            "n_seen": self.n_seen,
            "skipped_records": self.skipped_records,
            "skipped_trajectories": self.skipped_trajectories,
            "repaired": self.repaired,
            "issues": [
                {
                    "kind": i.kind,
                    "subject": i.subject,
                    "action": i.action,
                    "detail": i.detail,
                }
                for i in self.issues
            ],
        }

    def __str__(self) -> str:
        return (
            f"SanitizationReport(policy={self.policy!r}, seen={self.n_seen}, "
            f"skipped_records={self.skipped_records}, "
            f"skipped_trajectories={self.skipped_trajectories}, "
            f"repaired={self.repaired})"
        )


def _subject(trajectory: Trajectory, index: int) -> str:
    return trajectory.object_id if trajectory.object_id is not None else f"#{index}"


def sanitize_trajectory(
    trajectory: Trajectory,
    on_error: str = "raise",
    min_points: int = 1,
    report: SanitizationReport | None = None,
    _index: int = 0,
) -> Trajectory | None:
    """Gate one trajectory through the degenerate-input policy.

    Checks, in order: emptiness, minimum length, duplicate timestamps.
    Under ``on_error="raise"`` the first problem raises a
    :class:`~repro.errors.DegenerateTrajectoryError`; under ``"skip"``
    the trajectory is dropped (``None`` returned); under ``"repair"``
    duplicate timestamps are collapsed to their centroid
    (:func:`deduplicate_timestamps`) and only unrepairable problems
    (empty / too short after repair) drop the trajectory.

    Single-point trajectories and zero-variance speeds are *not* errors:
    per Eq. 5 the STP at the lone observation is just the noise
    distribution, and the KDE bandwidth floor keeps a zero-variance
    speed model well-defined — the core computes defined scores for
    both.  They only fail the gate if ``min_points`` says so.
    """
    validate_policy(on_error)
    if report is not None:
        report.n_seen += 1
    subject = _subject(trajectory, _index)

    def reject(kind: str, detail: str) -> None:
        if on_error == "raise":
            if report is not None:
                report.record(SanitizationIssue(kind, subject, "raised", detail))
            raise DegenerateTrajectoryError(f"{subject}: {detail}")
        if report is not None:
            report.skipped_trajectories += 1
            report.record(SanitizationIssue(kind, subject, "skipped", detail))

    if len(trajectory) == 0:
        reject("empty", "trajectory has no observations")
        return None
    if len(trajectory) < min_points:
        reject(
            "too-short",
            f"{len(trajectory)} observation(s), {min_points} required",
        )
        return None
    ts = trajectory.timestamps
    if len(ts) > 1 and bool(np.any(np.diff(ts) == 0)):
        if on_error == "repair":
            repaired = deduplicate_timestamps(trajectory)
            if report is not None:
                report.record(
                    SanitizationIssue(
                        "duplicate-timestamps",
                        subject,
                        "repaired",
                        f"{len(trajectory)} -> {len(repaired)} observations",
                    )
                )
            if len(repaired) < min_points:
                reject(
                    "too-short",
                    f"{len(repaired)} observation(s) after repair, {min_points} required",
                )
                return None
            return repaired
        reject("duplicate-timestamps", "observations share a timestamp")
        return None
    return trajectory


def sanitize_trajectories(
    trajectories,
    on_error: str = "raise",
    min_points: int = 1,
) -> tuple[list[Trajectory], SanitizationReport]:
    """Gate a whole corpus; returns the survivors and the account.

    The survivors keep their input order.  With ``on_error="raise"``
    this either returns every trajectory untouched or raises on the
    first degenerate one.
    """
    validate_policy(on_error)
    report = SanitizationReport(policy=on_error)
    kept = []
    for index, trajectory in enumerate(trajectories):
        result = sanitize_trajectory(
            trajectory,
            on_error=on_error,
            min_points=min_points,
            report=report,
            _index=index,
        )
        if result is not None:
            kept.append(result)
    return kept, report


def deduplicate_timestamps(trajectory: Trajectory) -> Trajectory:
    """Collapse observations sharing a timestamp into their centroid.

    Multiple fixes at one instant (duplicate log rows, simultaneous
    sightings by several access points) carry one position's worth of
    information; averaging them is the standard resolution.
    """
    if len(trajectory) == 0:
        return trajectory
    ts = trajectory.timestamps
    xy = trajectory.xy
    points = []
    start = 0
    for k in range(1, len(ts) + 1):
        if k == len(ts) or ts[k] != ts[start]:
            block = xy[start:k]
            points.append(
                TrajectoryPoint(float(block[:, 0].mean()), float(block[:, 1].mean()), float(ts[start]))
            )
            start = k
    return Trajectory(points, object_id=trajectory.object_id)


def split_on_gaps(trajectory: Trajectory, max_gap: float, min_points: int = 2) -> list[Trajectory]:
    """Split at temporal gaps larger than ``max_gap`` seconds.

    A device silent for a long stretch most likely left the instrumented
    area; treating the log as one trajectory would make the interpolation
    bridge places the object never plausibly connected.  Segments with
    fewer than ``min_points`` observations are dropped.  Segment ids get a
    ``#k`` suffix (only when a split actually happened).
    """
    if max_gap <= 0:
        raise ValueError(f"max_gap must be positive, got {max_gap}")
    if min_points < 1:
        raise ValueError(f"min_points must be >= 1, got {min_points}")
    if len(trajectory) == 0:
        return []
    ts = trajectory.timestamps
    boundaries = [0, *(int(i) + 1 for i in np.nonzero(np.diff(ts) > max_gap)[0]), len(ts)]
    segments = []
    for lo, hi in zip(boundaries[:-1], boundaries[1:]):
        if hi - lo >= min_points:
            segments.append(trajectory[lo:hi])
    if len(segments) <= 1:
        return segments
    base = trajectory.object_id
    return [
        seg.with_object_id(f"{base}#{k}" if base is not None else None)
        for k, seg in enumerate(segments)
    ]


def remove_speed_outliers(
    trajectory: Trajectory, max_speed: float, max_passes: int = 5
) -> Trajectory:
    """Drop fixes implying speeds above ``max_speed`` m/s (GPS jumps).

    A single bad fix creates *two* impossible segments (into it and out of
    it); removing the fix mends both.  A fix is removed when the segment
    into it is impossible; the pass repeats (up to ``max_passes``) because
    removals create new adjacencies.  The first observation is always
    kept, matching the usual forward-pass filter.
    """
    if max_speed <= 0:
        raise ValueError(f"max_speed must be positive, got {max_speed}")
    if max_passes < 1:
        raise ValueError(f"max_passes must be >= 1, got {max_passes}")
    points = list(trajectory.points)
    for _ in range(max_passes):
        if len(points) < 2:
            break
        kept = [points[0]]
        removed_any = False
        for point in points[1:]:
            dt = point.t - kept[-1].t
            dist = point.distance_to(kept[-1])
            if dt > 0 and dist / dt > max_speed:
                removed_any = True
                continue
            kept.append(point)
        points = kept
        if not removed_any:
            break
    return Trajectory(points, object_id=trajectory.object_id)


def smooth(trajectory: Trajectory, window: int = 3) -> Trajectory:
    """Centered moving-average smoothing of the positions.

    Timestamps are untouched; ``window`` must be odd so the average is
    centered.  Ends use the available one-sided neighborhood.  Note this
    is a *display/cleanup* aid — the STS noise model is the principled way
    to handle localization error, and smoothing before STS would double-
    count it.
    """
    if window < 1 or window % 2 == 0:
        raise ValueError(f"window must be a positive odd integer, got {window}")
    if len(trajectory) <= 2 or window == 1:
        return trajectory
    xy = trajectory.xy
    half = window // 2
    points = []
    for k, p in enumerate(trajectory):
        lo = max(0, k - half)
        hi = min(len(trajectory), k + half + 1)
        block = xy[lo:hi]
        points.append(TrajectoryPoint(float(block[:, 0].mean()), float(block[:, 1].mean()), p.t))
    return Trajectory(points, object_id=trajectory.object_id)


def clean(
    trajectory: Trajectory,
    max_speed: float,
    max_gap: float,
    min_points: int = 2,
) -> list[Trajectory]:
    """The standard pipeline: dedup → de-spike → split into trips.

    Returns the cleaned trip segments (possibly empty if nothing
    survives).  Smoothing is deliberately not included — see
    :func:`smooth`.
    """
    deduped = deduplicate_timestamps(trajectory)
    despiked = remove_speed_outliers(deduped, max_speed=max_speed)
    return split_on_gaps(despiked, max_gap=max_gap, min_points=min_points)
