"""Group detection: from pairwise similarity to co-moving groups.

The paper motivates STS with companion detection and group analytics
(GruMon-style monitoring, [6]-[7]).  A *group* is more than one pair: this
module builds the pairwise similarity graph over a trajectory collection
(pre-filtered by temporal overlap so the quadratic scoring only touches
plausible pairs), thresholds it, and reports connected components as
groups.  Components are the standard group notion when co-movement is
transitive-ish (A with B, B with C ⇒ one shopping party); for stricter
semantics a caller can post-process the returned edge list.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from .core.trajectory import Trajectory
from .index.filters import time_overlap_filter

__all__ = ["GroupResult", "similarity_graph", "detect_groups"]


@dataclass(frozen=True)
class GroupResult:
    """Outcome of group detection over a collection."""

    #: Each group as a tuple of indices into the input collection (size >= 2).
    groups: tuple[tuple[int, ...], ...]
    #: Scored edges above threshold: (i, j, similarity).
    edges: tuple[tuple[int, int, float], ...]
    #: Number of pairs actually scored (after the temporal pre-filter).
    pairs_scored: int

    def group_of(self, index: int) -> tuple[int, ...] | None:
        """The group containing ``index``, or ``None`` if it is alone."""
        for group in self.groups:
            if index in group:
                return group
        return None


def similarity_graph(
    measure,
    trajectories: list[Trajectory],
    threshold: float,
    min_time_overlap: float = 0.0,
) -> tuple[nx.Graph, int]:
    """Thresholded pairwise similarity graph over the collection.

    Nodes are collection indices; an edge ``(i, j)`` with attribute
    ``similarity`` exists when ``measure.score`` exceeds ``threshold``.
    Pairs without temporal overlap are skipped without scoring.  Returns
    the graph and the number of pairs scored.
    """
    if threshold <= 0:
        raise ValueError(f"threshold must be positive, got {threshold}")
    graph = nx.Graph()
    graph.add_nodes_from(range(len(trajectories)))
    scored = 0
    for i, anchor in enumerate(trajectories):
        rest = trajectories[i + 1 :]
        overlapping = time_overlap_filter(anchor, rest, min_overlap=min_time_overlap)
        for offset in overlapping:
            j = i + 1 + int(offset)
            scored += 1
            value = float(measure.score(anchor, trajectories[j]))
            if value > threshold:
                graph.add_edge(i, j, similarity=value)
    return graph, scored


def detect_groups(
    measure,
    trajectories: list[Trajectory],
    threshold: float,
    min_time_overlap: float = 0.0,
) -> GroupResult:
    """Co-moving groups as connected components of the similarity graph.

    ``threshold`` is in the measure's score units; for STS a practical
    choice is a fraction of the typical self-similarity (e.g. 20% of
    ``measure.similarity(t, t)`` averaged over the collection), since even
    perfect companions cannot exceed the self level under noise.
    """
    graph, scored = similarity_graph(
        measure, trajectories, threshold, min_time_overlap=min_time_overlap
    )
    groups = tuple(
        tuple(sorted(component))
        for component in sorted(nx.connected_components(graph), key=min)
        if len(component) >= 2
    )
    edges = tuple(
        (int(i), int(j), float(data["similarity"]))
        for i, j, data in sorted(graph.edges(data=True))
    )
    return GroupResult(groups=groups, edges=edges, pairs_scored=scored)
